// ttr_tuning — how to choose the network-wide T_TR parameter (§3.4, eq. 15).
//
// T_TR trades real-time guarantees against background bandwidth: a larger
// value admits more low-priority traffic per token rotation but inflates
// T_cycle and with it every worst-case response. This example sweeps T_TR
// over and past the feasible range and reports, for each policy, whether the
// stream set stays schedulable and how much low-priority budget remains.
//
//   $ ./ttr_tuning
#include <cstdio>

#include "profibus/dispatching.hpp"
#include "profibus/ttr_setting.hpp"
#include "workload/scenarios.hpp"

using namespace profisched;
using namespace profisched::profibus;

namespace {

double ms(Ticks v) { return static_cast<double>(v) / 500.0; }

/// Low-priority budget per rotation in the steady (token on time) case:
/// T_TR minus the ring latency minus the *rate-weighted* high-priority
/// demand of one rotation (each stream sends Ch every T, so it consumes
/// Ch·(T_cycle/T) per rotation on average).
double lp_budget_per_rotation(const Network& net) {
  const double rotation = static_cast<double>(t_cycle(net));
  double hp_demand = static_cast<double>(net.ring_latency());
  for (const Master& m : net.masters) {
    for (const MessageStream& s : m.high_streams) {
      hp_demand += static_cast<double>(s.Ch) * rotation / static_cast<double>(s.T);
    }
  }
  return std::max(static_cast<double>(net.ttr) - hp_demand, 0.0);
}

}  // namespace

int main() {
  Network net = workload::scenarios::factory_cell();
  const TtrRange range = ttr_range_fcfs(net);
  std::printf("factory_cell: T_del = %.2f ms\n", ms(t_del(net)));
  std::printf("eq. 15 feasible T_TR range for FCFS: [%.2f, %.2f] ms\n\n", ms(range.min),
              ms(range.max));

  std::printf("%10s %10s | %5s %4s %4s | %18s\n", "T_TR (ms)", "T_cyc (ms)", "FCFS", "DM",
              "EDF", "LP budget/rot (ms)");
  for (double frac : {0.25, 0.5, 0.75, 1.0, 1.25, 2.0, 3.0, 5.0}) {
    net.ttr = std::max<Ticks>(static_cast<Ticks>(static_cast<double>(range.max) * frac),
                              range.min);
    const auto ok = [&](ApPolicy p) {
      return analyze_network(net, p).schedulable ? "yes" : "NO";
    };
    std::printf("%10.2f %10.2f | %5s %4s %4s | %18.2f\n", ms(net.ttr), ms(t_cycle(net)),
                ok(ApPolicy::Fcfs), ok(ApPolicy::Dm), ok(ApPolicy::Edf),
                lp_budget_per_rotation(net) / 500.0);
  }

  std::printf("\nReading the table: FCFS dies exactly past the eq.-15 maximum; the\n"
              "priority-based queues keep the guarantees alive while T_TR (and with it\n"
              "the background-traffic budget) grows several-fold — the practical payoff\n"
              "of the paper's architecture.\n");
  return 0;
}
