// distributed_loop — a control loop that crosses three masters: sense on the
// conveyor PLC, decide on the cell controller, actuate through the robot
// controller. Shows the holistic analysis (§4.2 extended per the paper's
// references [33,34]) and the per-stage latency budget it produces.
//
//   $ ./distributed_loop
#include <cstdio>

#include "profibus/holistic.hpp"
#include "workload/scenarios.hpp"

using namespace profisched;
using namespace profisched::profibus;

namespace {
double ms(Ticks v) { return static_cast<double>(v) / 500.0; }
}  // namespace

int main() {
  const Network net = workload::scenarios::factory_cell();

  Transaction loop;
  loop.name = "pick-and-place";
  loop.period = 100'000;   // 200 ms
  loop.deadline = 90'000;  // 180 ms end-to-end
  loop.stages = {
      TransactionStage{.master = 2, .stream = 0, .task_c = 500},   // conveyor.photo-eye
      TransactionStage{.master = 0, .stream = 0, .task_c = 1'500}, // cell decision
      TransactionStage{.master = 1, .stream = 2, .task_c = 700},   // robot.gripper-cmd
  };

  std::printf("pick-and-place loop across %zu masters, period %.0f ms, deadline %.0f ms\n\n",
              net.n_masters(), ms(loop.period), ms(loop.deadline));

  for (const ApPolicy policy : {ApPolicy::Dm, ApPolicy::Edf}) {
    HolisticOptions opt;
    opt.policy = policy;
    const HolisticResult r = analyze_holistic(net, {loop}, opt);
    std::printf("--- %s AP queues ---\n", std::string(to_string(policy)).c_str());
    if (!r.converged) {
      std::printf("  holistic iteration diverged: the loop cannot be guaranteed\n\n");
      continue;
    }
    const char* stage_names[] = {"sense  (conveyor.photo-eye)", "decide (cell.production-status)",
                                 "act    (robot.gripper-cmd)"};
    Ticks prev = 0;
    for (std::size_t s = 0; s < r.stage_response[0].size(); ++s) {
      std::printf("  %-32s +%7.2f ms  (cumulative %7.2f ms)\n", stage_names[s],
                  ms(r.stage_response[0][s] - prev), ms(r.stage_response[0][s]));
      prev = r.stage_response[0][s];
    }
    std::printf("  end-to-end worst case: %.2f ms vs deadline %.0f ms — %s\n"
                "  (fixed point in %d iterations)\n\n",
                ms(r.response[0]), ms(loop.deadline),
                r.schedulable ? "GUARANTEED" : "NOT guaranteed", r.iterations);
  }

  std::printf("The per-stage figures are a latency budget: they show where the\n"
              "end-to-end time goes (token rotations dominate; host tasks are minor),\n"
              "which is what you need when tightening a distributed control loop.\n");
  return 0;
}
