// fcfs_vs_priority — the paper's concluding claim, demonstrated live: the
// same network, the same traffic, three dispatching policies side by side in
// the discrete-event simulator, with the analytic bounds alongside.
//
//   $ ./fcfs_vs_priority
#include <cstdio>

#include "profibus/dispatching.hpp"
#include "sim/network_sim.hpp"
#include "workload/scenarios.hpp"

using namespace profisched;
using namespace profisched::profibus;

namespace {

double ms(Ticks v) { return static_cast<double>(v) / 500.0; }

}  // namespace

int main() {
  const Network net = workload::scenarios::tight_deadline_mix();
  std::printf("tight_deadline_mix: one master, %zu streams; the e-stop stream's\n"
              "deadline (%.0f ms) is far below the FCFS bound nh*T_cycle = %.0f ms.\n\n",
              net.masters[0].nh(), ms(net.masters[0].high_streams[0].D),
              ms(4 * t_cycle(net)));

  // Adversarial traffic: every lax stream releases just before the urgent
  // one (maximizing the FCFS priority inversion), and a saturating stream of
  // low-priority parametrisation traffic keeps the token budget exhausted —
  // the regime in which the analysis's one-HP-message-per-visit worst case
  // actually materializes on the wire.
  sim::SimConfig cfg;
  cfg.net = net;
  cfg.horizon = 2'500'000;  // 5 s
  cfg.hp_traffic = {{
      sim::TrafficConfig{.phase = 10},  // urgent released last
      sim::TrafficConfig{.phase = 0},
      sim::TrafficConfig{.phase = 0},
      sim::TrafficConfig{.phase = 0},
  }};
  cfg.lp_traffic = {{sim::LpTraffic{
      .period = 1'000, .cycle_len = net.masters[0].longest_low_cycle, .phase = 0}}};

  std::printf("%-20s | %-22s | %-22s | %-22s\n", "stream (D ms)", "FCFS obs/bound (ms)",
              "DM obs/bound (ms)", "EDF obs/bound (ms)");
  const ApPolicy policies[] = {ApPolicy::Fcfs, ApPolicy::Dm, ApPolicy::Edf};
  NetworkAnalysis analyses[3];
  sim::SimReport reports[3];
  for (int p = 0; p < 3; ++p) {
    analyses[p] = analyze_network(net, policies[p]);
    cfg.policy = policies[p];
    reports[p] = sim::simulate(cfg);
  }
  for (std::size_t i = 0; i < net.masters[0].nh(); ++i) {
    const auto& s = net.masters[0].high_streams[i];
    char label[64];
    std::snprintf(label, sizeof label, "%s (%.0f)", s.name.c_str(), ms(s.D));
    std::printf("%-20s |", label);
    for (int p = 0; p < 3; ++p) {
      std::printf(" %8.2f / %-11.2f |", ms(reports[p].hp[0][i].max_response),
                  ms(analyses[p].masters[0].streams[i].response));
    }
    std::printf("\n");
  }

  std::printf("\nDeadline misses over 5 simulated seconds: FCFS=%llu DM=%llu EDF=%llu\n",
              static_cast<unsigned long long>(reports[0].total_misses()),
              static_cast<unsigned long long>(reports[1].total_misses()),
              static_cast<unsigned long long>(reports[2].total_misses()));
  std::printf("\nThe analysis is the verdict that matters for hard real-time: FCFS cannot\n"
              "GUARANTEE the 30 ms e-stop deadline (bound 50 ms), while the DM/EDF AP\n"
              "queues can (bound 25 ms). The simulation shows the same ordering in the\n"
              "observed tails — and every observation stays under its bound — but a\n"
              "finite run can never prove a deadline safe; only the analysis can.\n");
  return 0;
}
