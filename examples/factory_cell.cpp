// factory_cell — a full design pass over a three-master manufacturing cell:
// analysis, end-to-end budgeting with an application-task layer, and a
// discrete-event simulation cross-check.
//
//   $ ./factory_cell
#include <cstdio>

#include "apptask/release_jitter.hpp"
#include "profibus/dispatching.hpp"
#include "profibus/end_to_end.hpp"
#include "profibus/ttr_setting.hpp"
#include "sim/network_sim.hpp"
#include "workload/scenarios.hpp"

using namespace profisched;
using namespace profisched::profibus;

namespace {

double ms(Ticks v) { return static_cast<double>(v) / 500.0; }

void print_analysis(const Network& net, const NetworkAnalysis& a, const char* label) {
  std::printf("\n--- %s (schedulable: %s, T_cycle = %.2f ms) ---\n", label,
              a.schedulable ? "yes" : "NO", ms(a.tcycle));
  for (std::size_t k = 0; k < net.n_masters(); ++k) {
    for (std::size_t i = 0; i < net.masters[k].nh(); ++i) {
      const auto& s = net.masters[k].high_streams[i];
      std::printf("  %-24s D=%6.1f ms  R=%6.2f ms  %s\n", s.name.c_str(), ms(s.D),
                  ms(a.masters[k].streams[i].response),
                  a.masters[k].streams[i].meets_deadline ? "ok" : "MISS");
    }
  }
}

}  // namespace

int main() {
  Network net = workload::scenarios::factory_cell();
  std::printf("factory_cell: %zu masters, %zu high-priority streams\n", net.n_masters(),
              net.total_high_streams());
  std::printf("T_TR = %.2f ms (eq. 15 maximum), T_del = %.2f ms\n", ms(net.ttr), ms(t_del(net)));

  // 1. Worst-case analysis under each dispatching policy.
  print_analysis(net, analyze_network(net, ApPolicy::Fcfs), "FCFS (stock PROFIBUS)");
  print_analysis(net, analyze_network(net, ApPolicy::Dm), "DM AP queue (paper, eq. 16)");
  print_analysis(net, analyze_network(net, ApPolicy::Edf), "EDF AP queue (paper, eqs. 17-18)");

  // 2. End-to-end budgets for the robot controller: an application-task
  //    layer generates the requests; its response times become the message
  //    release jitter (model A) and the g term of E = g + Q + C + d.
  std::vector<apptask::SenderTask> senders;
  for (const MessageStream& s : net.masters[1].high_streams) {
    senders.push_back(apptask::SenderTask{.C_pre = 600, .C_post = 900, .D = s.D, .T = s.T});
  }
  const apptask::JitterResult jr = apptask::derive_release_jitter(
      senders, apptask::TaskModel::AutoSuspend, Policy::DeadlineMonotonic);
  for (std::size_t i = 0; i < net.masters[1].nh(); ++i) {
    net.masters[1].high_streams[i].J = jr.jitter[i];
  }
  const NetworkAnalysis dm = analyze_network(net, ApPolicy::Dm);
  std::printf("\n--- end-to-end (robot controller, DM queue, d = 100 ticks) ---\n");
  for (std::size_t i = 0; i < net.masters[1].nh(); ++i) {
    const auto& s = net.masters[1].high_streams[i];
    const HostDelays host{.generation = jr.generation[i], .delivery = 100};
    const Ticks e = end_to_end_bound(host, dm.masters[1].streams[i]);
    std::printf("  %-24s g=%5.2f  Q+C=%6.2f  d=%4.2f  E=%6.2f ms  (D=%5.1f) %s\n",
                s.name.c_str(), ms(host.generation), ms(dm.masters[1].streams[i].response),
                ms(host.delivery), ms(e), ms(s.D), e <= s.D ? "ok" : "MISS");
  }

  // 3. Simulation cross-check: 2 simulated seconds, synchronous release,
  //    worst-case cycle durations.
  sim::SimConfig cfg;
  cfg.net = net;
  cfg.policy = ApPolicy::Dm;
  cfg.horizon = 1'000'000;  // 2 s at 500 kbit/s
  const sim::SimReport report = sim::simulate(cfg);
  std::printf("\n--- simulation cross-check (DM, 2 s, synchronous) ---\n");
  for (std::size_t k = 0; k < net.n_masters(); ++k) {
    std::printf("  %s: token visits=%llu, max TRR=%.2f ms (bound %.2f), overruns=%llu\n",
                net.masters[k].name.c_str(),
                static_cast<unsigned long long>(report.token[k].visits),
                ms(report.token[k].max_trr), ms(t_cycle(net)),
                static_cast<unsigned long long>(report.token[k].tth_overruns));
    for (std::size_t i = 0; i < net.masters[k].nh(); ++i) {
      const auto& s = net.masters[k].high_streams[i];
      std::printf("    %-24s observed max R=%6.2f ms  bound=%6.2f ms  misses=%llu\n",
                  s.name.c_str(), ms(report.hp[k][i].max_response),
                  ms(dm.masters[k].streams[i].response),
                  static_cast<unsigned long long>(report.hp[k][i].deadline_misses));
    }
  }
  std::printf("\nEvery observed maximum sits below its analytic bound — the §4\n"
              "architecture holds up in execution, not just on paper.\n");
  return 0;
}
