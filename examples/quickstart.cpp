// quickstart — the 5-minute tour of profisched.
//
// Builds a one-master PROFIBUS network from frame-level message specs,
// derives the worst-case message cycle lengths, sets T_TR by eq. 15, and
// compares the three dispatching policies' worst-case response times.
//
//   $ ./quickstart
#include <cstdio>

#include "profibus/dispatching.hpp"
#include "profibus/ttr_setting.hpp"

using namespace profisched;
using namespace profisched::profibus;

int main() {
  // 1. Bus parameters: 11-bit chars, 1 retry, defaults sized for a
  //    500 kbit/s segment. One tick = one bit-time.
  BusParameters bus;

  // 2. Message streams: a sensor poll, an actuator update, a status read.
  //    Ch (worst-case cycle incl. retries) comes from the frame sizes.
  const auto make_stream = [&](const char* name, Ticks req_chars, Ticks resp_chars,
                               Ticks period_ms, Ticks deadline_ms) {
    MessageStream s;
    s.Ch = worst_case_cycle_time(bus, MessageCycleSpec{req_chars, resp_chars});
    s.T = period_ms * 500;  // 500 ticks per ms at 500 kbit/s
    s.D = deadline_ms * 500;
    s.name = name;
    return s;
  };

  Master plc;
  plc.name = "plc";
  plc.high_streams = {
      make_stream("pressure-sensor", 10, 14, 50, 25),
      make_stream("valve-actuator", 16, 8, 80, 60),
      make_stream("status-read", 12, 30, 200, 200),
  };
  plc.longest_low_cycle = worst_case_cycle_time(bus, MessageCycleSpec{30, 30});

  Network net;
  net.bus = bus;
  net.masters = {plc};
  net.ttr = 1;  // placeholder until eq. 15 picks the real value

  // 3. Set T_TR to the eq.-15 maximum (largest low-priority bandwidth that
  //    keeps the FCFS analysis schedulable), if one exists.
  if (const auto best = max_schedulable_ttr(net)) {
    net.ttr = *best;
    std::printf("T_TR set by eq. 15: %lld ticks (%.2f ms)\n", static_cast<long long>(net.ttr),
                static_cast<double>(net.ttr) / 500.0);
  } else {
    net.ttr = net.ring_latency() + 1'000;
    std::printf("FCFS-infeasible for any T_TR; using fallback %lld ticks\n",
                static_cast<long long>(net.ttr));
  }
  std::printf("T_del = %lld ticks, T_cycle = %lld ticks (%.2f ms)\n\n",
              static_cast<long long>(t_del(net)), static_cast<long long>(t_cycle(net)),
              static_cast<double>(t_cycle(net)) / 500.0);

  // 4. Compare dispatching policies.
  std::printf("%-16s %10s | %12s %12s %12s\n", "stream", "D (ms)", "R FCFS (ms)", "R DM (ms)",
              "R EDF (ms)");
  const NetworkAnalysis fcfs = analyze_network(net, ApPolicy::Fcfs);
  const NetworkAnalysis dm = analyze_network(net, ApPolicy::Dm);
  const NetworkAnalysis edf = analyze_network(net, ApPolicy::Edf);
  for (std::size_t i = 0; i < plc.nh(); ++i) {
    const auto ms = [](Ticks v) { return static_cast<double>(v) / 500.0; };
    std::printf("%-16s %10.1f | %12.2f %12.2f %12.2f\n", plc.high_streams[i].name.c_str(),
                ms(plc.high_streams[i].D), ms(fcfs.masters[0].streams[i].response),
                ms(dm.masters[0].streams[i].response), ms(edf.masters[0].streams[i].response));
  }
  std::printf("\nschedulable: FCFS=%s DM=%s EDF=%s\n", fcfs.schedulable ? "yes" : "no",
              dm.schedulable ? "yes" : "no", edf.schedulable ? "yes" : "no");
  std::printf("\nNote how the tight-deadline pressure-sensor stream improves under the\n"
              "priority-based AP queues, at the cost of the lax status-read stream —\n"
              "the paper's central trade-off.\n");
  return 0;
}
