#!/usr/bin/env python3
"""Validate a --metrics run-manifest sidecar (see src/obs/manifest.hpp).

Usage: metrics_check.py MANIFEST.json [--scenarios N]

Checks, in order:
  1. schema and required run keys (tool, subcommand, argv, config_digest,
     scenarios, points, policies, replications, threads, elapsed_s);
  2. series hygiene — every section sorted by unique name, all values
     non-negative integers;
  3. phase accounting — the `phase.*` timers are sequential sub-intervals
     of the command, so their total_ns must sum to <= elapsed_s (plus a
     small slack for clock granularity);
  4. cache coherence — when the record-level cache series are present,
     cache.hits + cache.misses == cache.lookups, and the file-level
     cache.file.corruption_heals <= cache.file.misses;
  5. histogram internal consistency — count == sum(bins) for every
     histogram;
  6. optionally (--scenarios N) that runner.scenarios_completed matches the
     scenario count the caller expected the process to execute.

Exit code 0 = pass, 1 = fail (reasons on stderr).
"""
import json
import sys

SCHEMA = "profisched-metrics-v1"
RUN_KEYS = [
    "schema",
    "tool",
    "subcommand",
    "argv",
    "config_digest",
    "scenarios",
    "points",
    "policies",
    "replications",
    "threads",
    "elapsed_s",
]
# Fraction of elapsed_s the phase sum may exceed it by: steady-clock reads at
# phase edges land nanoseconds apart from the whole-command bracket.
PHASE_SLACK = 0.05


def fail(msg):
    print(f"metrics_check: FAIL: {msg}", file=sys.stderr)
    return 1


def check_section(doc, section, value_keys):
    """Sorted unique names + non-negative integer values; returns name->entry."""
    entries = doc.get(section)
    if not isinstance(entries, list):
        raise ValueError(f"'{section}' missing or not a list")
    names = [e["name"] for e in entries]
    if names != sorted(names):
        raise ValueError(f"'{section}' not sorted by name")
    if len(names) != len(set(names)):
        raise ValueError(f"'{section}' has duplicate names")
    for e in entries:
        for k in value_keys:
            v = e.get(k)
            if not isinstance(v, int) or v < 0:
                raise ValueError(f"{section}/{e['name']}: '{k}' not a non-negative integer")
    return {e["name"]: e for e in entries}


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = argv[1]
    expect_scenarios = None
    if len(argv) >= 4 and argv[2] == "--scenarios":
        expect_scenarios = int(argv[3])

    with open(path) as f:
        doc = json.load(f)

    missing = [k for k in RUN_KEYS if k not in doc]
    if missing:
        return fail(f"missing run keys: {', '.join(missing)}")
    if doc["schema"] != SCHEMA:
        return fail(f"schema is '{doc['schema']}', expected '{SCHEMA}'")
    if doc["tool"] != "profisched":
        return fail(f"tool is '{doc['tool']}'")
    if not isinstance(doc["argv"], list):
        return fail("argv is not a list")
    if not isinstance(doc["elapsed_s"], (int, float)) or doc["elapsed_s"] < 0:
        return fail("elapsed_s is not a non-negative number")

    try:
        counters = check_section(doc, "counters", ["value"])
        check_section(doc, "gauges", ["value"])
        timers = check_section(doc, "timers", ["count", "total_ns"])
        histograms = check_section(doc, "histograms", ["count", "sum"])
    except (ValueError, KeyError, TypeError) as e:
        return fail(str(e))

    phase_ns = sum(t["total_ns"] for name, t in timers.items() if name.startswith("phase."))
    budget_ns = doc["elapsed_s"] * 1e9 * (1.0 + PHASE_SLACK) + 1e6
    if phase_ns > budget_ns:
        return fail(
            f"phase.* timers sum to {phase_ns} ns > wall time "
            f"{doc['elapsed_s']} s (phases must be sequential sub-intervals)"
        )

    if "cache.lookups" in counters:
        hits = counters.get("cache.hits", {"value": 0})["value"]
        misses = counters.get("cache.misses", {"value": 0})["value"]
        lookups = counters["cache.lookups"]["value"]
        if hits + misses != lookups:
            return fail(
                f"cache.hits ({hits}) + cache.misses ({misses}) != cache.lookups ({lookups})"
            )
    if "cache.file.corruption_heals" in counters:
        heals = counters["cache.file.corruption_heals"]["value"]
        file_misses = counters.get("cache.file.misses", {"value": 0})["value"]
        if heals > file_misses:
            return fail(
                f"cache.file.corruption_heals ({heals}) > cache.file.misses ({file_misses})"
            )

    for name, h in histograms.items():
        bins = h.get("bins")
        if not isinstance(bins, list) or any(not isinstance(b, int) or b < 0 for b in bins):
            return fail(f"histogram {name}: bad bins")
        if sum(bins) != h["count"]:
            return fail(f"histogram {name}: count {h['count']} != sum(bins) {sum(bins)}")

    if expect_scenarios is not None:
        done = counters.get("runner.scenarios_completed", {"value": 0})["value"]
        if done != expect_scenarios:
            return fail(f"runner.scenarios_completed is {done}, expected {expect_scenarios}")

    print(
        f"metrics_check: OK: {doc['subcommand']} manifest, "
        f"{len(counters)} counters, {len(timers)} timers, "
        f"phase sum {phase_ns / 1e9:.3f} s / wall {doc['elapsed_s']:.3f} s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
