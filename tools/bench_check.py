#!/usr/bin/env python3
"""Gate a bench_runner result against the committed baseline.

Usage: bench_check.py CURRENT.json BASELINE.json

Checks, in order:
  1. schema match;
  2. deterministic sanity — warm-started sweeps must do strictly less
     fixed-point work than cold ones, and (same-config runs only) the
     simulator must process exactly the baseline's event count: a drift
     means the simulation behaved differently, not just slower;
  3. the headline acceptance: at least one in-binary speedup pair
     (reference vs optimized analyze, cold vs warm sweep) must show >= 2x;
  4. regression: no tracked speedup ratio may fall below half its baseline
     value, and no throughput metric below half the baseline (the ">2x
     regression fails" contract — ratios are machine-independent, the two
     throughput floors are the coarse backstop);
  5. SIMD dispatch: when the current run had a vector backend live
     (simd_active == 1) every scalar/vector ratio key must be present, show
     the vector path at least as fast as scalar (>= 0.9, noise margin), and
     not regress below half its baseline ratio. Runs without an active
     backend (-DPROFISCHED_NO_SIMD=ON builds, non-SIMD hosts) skip these
     gates — bench_runner itself exits non-zero on any scalar/vector result
     divergence, so CI still covers exactness there.

Exit code 0 = pass, 1 = fail (reasons on stderr).
"""
import json
import sys

SPEEDUP_PAIRS = [
    ("core_np_dm_analyze_ns_ref", "core_np_dm_analyze_ns_opt", "NP-DM analyze"),
    ("core_edf_analyze_ns_ref", "core_edf_analyze_ns_opt", "EDF analyze"),
    ("usweep_fp_cold_ms", "usweep_fp_warm_ms", "FP u-grid sweep"),
    ("usweep_fp_cold_iters", "usweep_fp_warm_iters", "FP u-grid iterations"),
]
THROUGHPUT_KEYS = ["engine_scenarios_per_sec", "sim_events_per_sec"]
SIMD_RATIO_KEYS = [
    ("core_np_dm_simd_ratio", "NP-DM analyze scalar/vector"),
    ("core_edf_simd_ratio", "EDF analyze scalar/vector"),
    ("core_busy_simd_ratio", "busy period scalar/vector"),
    ("usweep_fp_warm_simd_ratio", "FP u-grid warm sweep scalar/vector"),
]
# The vector path may not be slower than scalar beyond timing noise.
SIMD_RATIO_FLOOR = 0.9
WARM_LESS_THAN_COLD = [
    ("usweep_warm_fp_iters", "usweep_cold_fp_iters"),
    ("usweep_warm_busy_iters", "usweep_cold_busy_iters"),
    ("usweep_fp_warm_iters", "usweep_fp_cold_iters"),
]


def fail(msg):
    print(f"bench_check: FAIL: {msg}", file=sys.stderr)
    return 1


def speedup(data, hi_key, lo_key):
    hi, lo = data.get(hi_key), data.get(lo_key)
    if hi is None or lo is None or lo <= 0:
        return None
    return hi / lo


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        cur = json.load(f)
    with open(sys.argv[2]) as f:
        base = json.load(f)

    rc = 0
    if cur.get("schema") != base.get("schema"):
        rc |= fail(f"schema mismatch: {cur.get('schema')} vs {base.get('schema')}")

    for warm_key, cold_key in WARM_LESS_THAN_COLD:
        warm, cold = cur.get(warm_key), cur.get(cold_key)
        if warm is None or cold is None:
            rc |= fail(f"missing iteration counters {warm_key}/{cold_key}")
        elif warm >= cold:
            rc |= fail(f"warm start did not help: {warm_key}={warm} >= {cold_key}={cold}")

    same_config = cur.get("quick") == base.get("quick")
    if same_config and "sim_events_per_run" in base:
        if cur.get("sim_events_per_run") != base["sim_events_per_run"]:
            rc |= fail(
                "simulator event count drifted: "
                f"{cur.get('sim_events_per_run')} != {base['sim_events_per_run']} "
                "(behavioural change, not a perf regression)"
            )

    best = 0.0
    for hi, lo, label in SPEEDUP_PAIRS:
        cur_s = speedup(cur, hi, lo)
        if cur_s is None:
            rc |= fail(f"missing metric pair for {label}")
            continue
        best = max(best, cur_s)
        base_s = speedup(base, hi, lo)
        if base_s is not None and cur_s < base_s / 2.0:
            rc |= fail(
                f"{label} speedup regressed >2x: {cur_s:.2f}x now vs {base_s:.2f}x baseline"
            )
        base_txt = f"{base_s:.2f}x" if base_s is not None else "n/a"
        print(f"bench_check: {label}: {cur_s:.2f}x (baseline {base_txt})")

    if best < 2.0:
        rc |= fail(f"no tracked kernel reached the 2x acceptance bar (best {best:.2f}x)")

    if cur.get("simd_active") == 1:
        for key, label in SIMD_RATIO_KEYS:
            cur_r = cur.get(key)
            if cur_r is None:
                rc |= fail(f"simd_active but missing ratio {key}")
                continue
            if cur_r < SIMD_RATIO_FLOOR:
                rc |= fail(f"{label} ratio {cur_r:.2f} below floor {SIMD_RATIO_FLOOR}")
            base_r = base.get(key) if base.get("simd_active") == 1 else None
            if base_r is not None and cur_r < base_r / 2.0:
                rc |= fail(
                    f"{label} regressed >2x: {cur_r:.2f}x now vs {base_r:.2f}x baseline"
                )
            base_txt = f"{base_r:.2f}x" if base_r is not None else "n/a"
            print(f"bench_check: {label}: {cur_r:.2f}x (baseline {base_txt})")
    else:
        print(
            f"bench_check: no vector backend active "
            f"(backend={cur.get('simd_backend')!r}) — SIMD ratio gates skipped"
        )

    for key in THROUGHPUT_KEYS:
        cur_v, base_v = cur.get(key), base.get(key)
        if cur_v is None or base_v is None:
            rc |= fail(f"missing throughput metric {key}")
        elif cur_v < base_v / 2.0:
            rc |= fail(f"{key} regressed >2x: {cur_v:.0f} vs baseline {base_v:.0f}")
        else:
            print(f"bench_check: {key}: {cur_v:.0f} (baseline {base_v:.0f})")

    if rc == 0:
        print(f"bench_check: PASS (best in-binary speedup {best:.2f}x)")
    return rc


if __name__ == "__main__":
    sys.exit(main())
