// profisched — command-line front end: analyze, simulate, or tune a network
// described in an INI file (format: src/config/network_loader.hpp; examples
// under configs/).
//
//   profisched analyze  <file> [--policy fcfs|dm|edf|opa|all]
//   profisched simulate <file> [--policy fcfs|dm|edf] [--ms N] [--seed N]
//                              [--histograms] [--trace N]
//   profisched simulate [--scenarios N] [--reps N] [--masters N[,N,...]]
//                       [--streams N] [--u LO:HI:STEPS] [--beta LO:HI:STEPS]
//                       [--beta-lo X] [--beta-hi X] [--split w1,...,wK] [--skew S]
//                       [--policies fcfs,dm,edf] [--threads N] [--seed N]
//                       [--ttr TICKS] [--horizon TICKS] [--cycles X]
//                       [--model worst|uniform|frame] [--lp]
//                       [--faults loss=P,recovery=T,corrupt=P,retrans=N,
//                                 churn=P,offline=T,burst=C] [--combined]
//                       [--csv FILE] [--json FILE]
//     (no INI file: fan simulation runs over UUniFast-generated scenarios;
//      --combined also analyses each scenario and emits joined rows. --faults
//      injects token loss / frame corruption / ring churn / release bursts;
//      combined runs then check the simulation against degraded-mode bounds.)
//   profisched ttr      <file>
//   profisched sweep    [--scenarios N] [--masters N[,N,...]] [--streams N]
//                       [--u LO:HI:STEPS] [--beta LO:HI:STEPS] [--beta-lo X]
//                       [--beta-hi X] [--split w1,...,wK] [--skew S]
//                       [--policies fcfs,dm,edf,opa,token,holistic] [--threads N]
//                       [--seed N] [--ttr TICKS] [--method paper|refined]
//                       [--csv FILE] [--json FILE] [--cache DIR]
//     (--u / --beta / --masters each expand to an axis; the sweep runs their
//      full cross product. --split/--skew shape the per-master load division.)
//   profisched optimize [--scenarios N] [--masters N[,N,...]] [--streams N]
//                       [--u LO:HI:STEPS] [--beta LO:HI:STEPS] [--beta-lo X]
//                       [--beta-hi X] [--split w1,...,wK] [--skew S]
//                       [--policies fcfs,dm,edf,opa] [--threads N] [--seed N]
//                       [--ttr TICKS] [--method paper|refined]
//                       [--scale-lo X] [--scale-hi X] [--ttr-cap TICKS]
//                       [--dratio-lo X] [--dratio-hi X]
//                       [--csv FILE] [--json FILE] [--cache DIR]
//     (per scenario and policy, bisect the exact breakdown utilization, the
//      largest schedulable T_TR, and the smallest sustainable D/T ratio;
//      emits per-point distribution quantiles)
//   profisched shard    --shard k/K --out FILE
//                       [--mode sweep|simulate|combined|optimize]
//                       [--cache DIR] [every sweep/simulate/optimize flag]
//     (runs shard k's contiguous slice of the sweep's N scenario ids —
//      near-equal slices, the first N mod K shards one scenario larger
//      (dist::ShardPlan::split) — and writes one artifact; K artifacts
//      merge into the single-process result)
//   profisched merge    [--csv FILE] [--json FILE] SHARD_FILE...
//     (validates that the artifacts tile the sweep exactly and emits output
//      byte-identical to the equivalent single-process run)
//   profisched serve    --socket PATH [--threads N] [--cache DIR]
//                       [--metrics FILE]
//     (resident sweep service: accepts framed jobs over an AF_UNIX socket,
//      runs them one at a time as oversplit shard ranges through the same
//      ranged runner + merge path, so served output files are byte-identical
//      to the batch subcommands')
//   profisched submit   --socket PATH [--mode sweep|simulate|combined|optimize]
//                       [--priority N] [--oversplit K] [--wait]
//                       [every matching sweep/optimize flag; --csv/--json/
//                        --metrics name server-side destinations]
//   profisched submit   --socket PATH --status | --cancel ID | --stats |
//                       --shutdown
//     (thin client: enqueue one job, or poke the daemon; --stats prints the
//      daemon's metrics manifest JSON, --wait polls until the job settles)
//
// Every sweep-style subcommand additionally accepts --metrics FILE (write a
// versioned metrics + run-manifest JSON sidecar, see obs/manifest.hpp) and
// --progress (opt-in stderr heartbeat). Both are strictly out-of-band: the
// primary CSV/JSON/artifact bytes are identical with or without them.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "config/network_loader.hpp"
#include "dist/dist_cli.hpp"
#include "dist/result_cache.hpp"
#include "dist/shard.hpp"
#include "engine/aggregate.hpp"
#include "engine/detail/hash.hpp"
#include "engine/detail/serialize.hpp"
#include "engine/sim_aggregate.hpp"
#include "engine/sim_cli.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "opt/opt_aggregate.hpp"
#include "opt/opt_cli.hpp"
#include "profibus/dispatching.hpp"
#include "profibus/priority_assignment.hpp"
#include "profibus/ttr_setting.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/serve_cli.hpp"
#include "serve/server.hpp"
#include "sim/network_sim.hpp"

namespace {

using namespace profisched;
using namespace profisched::profibus;
using config::LoadedNetwork;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  profisched analyze  <file.ini> [--policy fcfs|dm|edf|opa|all]\n"
               "  profisched simulate <file.ini> [--policy fcfs|dm|edf] [--ms N]\n"
               "                      [--seed N] [--histograms] [--trace N]\n"
               "  profisched simulate [--scenarios N] [--reps N] [--masters N[,N,...]]\n"
               "                      [--streams N] [--u LO:HI:STEPS] [--beta LO:HI:STEPS]\n"
               "                      [--beta-lo X] [--beta-hi X] [--split w1,...,wK]\n"
               "                      [--skew S] [--policies fcfs,dm,edf] [--threads N]\n"
               "                      [--seed N] [--ttr TICKS] [--horizon TICKS] [--cycles X]\n"
               "                      [--model worst|uniform|frame] [--quantile Q] [--lp]\n"
               "                      [--faults loss=P,recovery=T,corrupt=P,retrans=N,\n"
               "                                churn=P,offline=T,burst=C]\n"
               "                      [--combined] [--csv FILE] [--json FILE] [--cache DIR]\n"
               "                      [--metrics FILE] [--progress]\n"
               "  profisched ttr      <file.ini>\n"
               "  profisched optimize [--scenarios N] [--masters N[,N,...]] [--streams N]\n"
               "                      [--u LO:HI:STEPS] [--beta LO:HI:STEPS] [--beta-lo X]\n"
               "                      [--beta-hi X] [--split w1,...,wK] [--skew S]\n"
               "                      [--policies fcfs,dm,edf,opa] [--threads N] [--seed N]\n"
               "                      [--ttr TICKS] [--method paper|refined]\n"
               "                      [--scale-lo X] [--scale-hi X] [--ttr-cap TICKS]\n"
               "                      [--dratio-lo X] [--dratio-hi X]\n"
               "                      [--csv FILE] [--json FILE] [--cache DIR]\n"
               "                      [--metrics FILE] [--progress]\n"
               "  profisched sweep    [--scenarios N] [--masters N[,N,...]] [--streams N]\n"
               "                      [--u LO:HI:STEPS] [--beta LO:HI:STEPS] [--beta-lo X]\n"
               "                      [--beta-hi X] [--split w1,...,wK] [--skew S]\n"
               "                      [--policies fcfs,dm,edf,opa,token,holistic]\n"
               "                      [--threads N] [--seed N] [--ttr TICKS]\n"
               "                      [--method paper|refined] [--csv FILE] [--json FILE]\n"
               "                      [--cache DIR] [--metrics FILE] [--progress]\n"
               "  profisched shard    --shard k/K --out FILE\n"
               "                      [--mode sweep|simulate|combined|optimize]\n"
               "                      [--cache DIR] [--metrics FILE] [--progress]\n"
               "                      [sweep/simulate/optimize flags]\n"
               "  profisched merge    [--csv FILE] [--json FILE] [--metrics FILE]\n"
               "                      SHARD_FILE...\n"
               "  profisched serve    --socket PATH [--threads N] [--cache DIR]\n"
               "                      [--metrics FILE]\n"
               "  profisched submit   --socket PATH [--mode sweep|simulate|combined|\n"
               "                      optimize] [--priority N] [--oversplit K] [--wait]\n"
               "                      [sweep/optimize flags; --csv/--json/--metrics\n"
               "                      name server-side destinations]\n"
               "  profisched submit   --socket PATH --status | --cancel ID | --stats |\n"
               "                      --shutdown\n");
  return 2;
}

double to_ms(Ticks v, Ticks ticks_per_ms) {
  return static_cast<double>(v) / static_cast<double>(ticks_per_ms);
}

void print_analysis(const LoadedNetwork& ln, const NetworkAnalysis& a, const char* label) {
  std::printf("\n%s: %s (T_cycle = %.3f ms)\n", label, a.schedulable ? "SCHEDULABLE" : "NOT schedulable",
              to_ms(a.tcycle, ln.ticks_per_ms));
  for (std::size_t k = 0; k < ln.net.n_masters(); ++k) {
    std::printf("  [%s]\n", ln.net.masters[k].name.c_str());
    for (std::size_t i = 0; i < ln.net.masters[k].nh(); ++i) {
      const auto& s = ln.net.masters[k].high_streams[i];
      const auto& r = a.masters[k].streams[i];
      if (r.response == kNoBound) {
        std::printf("    %-24s D=%8.2f ms  R=unbounded  MISS\n", s.name.c_str(),
                    to_ms(s.D, ln.ticks_per_ms));
      } else {
        std::printf("    %-24s D=%8.2f ms  R=%8.2f ms  %s\n", s.name.c_str(),
                    to_ms(s.D, ln.ticks_per_ms), to_ms(r.response, ln.ticks_per_ms),
                    r.meets_deadline ? "ok" : "MISS");
      }
    }
  }
}

int cmd_analyze(const LoadedNetwork& ln, const std::string& policy) {
  bool any = false;
  int rc = 0;
  const auto run = [&](ApPolicy p) {
    const NetworkAnalysis a = analyze_network(ln.net, p);
    print_analysis(ln, a, std::string(to_string(p)).c_str());
    if (!a.schedulable) rc = 1;
    any = true;
  };
  if (policy == "fcfs" || policy == "all") run(ApPolicy::Fcfs);
  if (policy == "dm" || policy == "all") run(ApPolicy::Dm);
  if (policy == "edf" || policy == "all") run(ApPolicy::Edf);
  if (policy == "opa" || policy == "all") {
    const auto orders = audsley_stream_orders(ln.net);
    if (orders.has_value()) {
      print_analysis(ln, analyze_fixed_priority(ln.net, *orders), "OPA");
      std::printf("  OPA priority order (highest first):\n");
      for (std::size_t k = 0; k < ln.net.n_masters(); ++k) {
        std::printf("    [%s]:", ln.net.masters[k].name.c_str());
        for (const std::size_t i : (*orders)[k]) {
          std::printf(" %s", ln.net.masters[k].high_streams[i].name.c_str());
        }
        std::printf("\n");
      }
    } else {
      std::printf("\nOPA: no fixed priority order schedules this set\n");
      rc = 1;
    }
    any = true;
  }
  if (!any) return usage();
  return rc;
}

int cmd_simulate(const LoadedNetwork& ln, const std::string& policy, Ticks milliseconds,
                 std::uint64_t seed, bool histograms, std::size_t trace_events) {
  sim::SimConfig cfg;
  cfg.net = ln.net;
  cfg.horizon = milliseconds * ln.ticks_per_ms;
  cfg.seed = seed;
  cfg.collect_histograms = histograms;
  if (policy == "dm") cfg.policy = ApPolicy::Dm;
  else if (policy == "edf") cfg.policy = ApPolicy::Edf;
  else if (policy == "fcfs") cfg.policy = ApPolicy::Fcfs;
  else return usage();

  sim::Trace trace(trace_events == 0 ? 1 : trace_events);
  if (trace_events > 0) cfg.trace = &trace;

  const sim::SimReport r = sim::simulate(cfg);
  std::printf("simulated %lld ms under %s (seed %llu): %llu events, %llu LP cycles\n",
              static_cast<long long>(milliseconds), policy.c_str(),
              static_cast<unsigned long long>(seed), static_cast<unsigned long long>(r.events),
              static_cast<unsigned long long>(r.lp_cycles_completed));
  for (std::size_t k = 0; k < ln.net.n_masters(); ++k) {
    std::printf("[%s] token visits=%llu max TRR=%.3f ms overruns=%llu late=%llu\n",
                ln.net.masters[k].name.c_str(),
                static_cast<unsigned long long>(r.token[k].visits),
                to_ms(r.token[k].max_trr, ln.ticks_per_ms),
                static_cast<unsigned long long>(r.token[k].tth_overruns),
                static_cast<unsigned long long>(r.token[k].late_tokens));
    for (std::size_t i = 0; i < ln.net.masters[k].nh(); ++i) {
      const auto& s = r.hp[k][i];
      std::printf("  %-24s n=%llu max=%.3f ms mean=%.3f ms misses=%llu dropped=%llu\n",
                  ln.net.masters[k].high_streams[i].name.c_str(),
                  static_cast<unsigned long long>(s.completed),
                  to_ms(s.max_response, ln.ticks_per_ms),
                  s.mean_response() / static_cast<double>(ln.ticks_per_ms),
                  static_cast<unsigned long long>(s.deadline_misses),
                  static_cast<unsigned long long>(s.dropped));
      if (histograms) {
        std::printf("    hist: %s\n", r.response_hist[k][i].summary().c_str());
      }
    }
  }
  if (trace_events > 0) {
    std::printf("\n--- first %zu trace events ---\n%s", trace.events().size(),
                trace.render().c_str());
  }
  return 0;
}

int cmd_ttr(const LoadedNetwork& ln) {
  const TtrRange range = ttr_range_fcfs(ln.net);
  std::printf("T_del = %.3f ms; current T_TR = %.3f ms%s\n",
              to_ms(t_del(ln.net), ln.ticks_per_ms), to_ms(ln.net.ttr, ln.ticks_per_ms),
              ln.ttr_auto ? " (auto, eq. 15)" : "");
  if (range.feasible()) {
    std::printf("eq. 15 feasible T_TR range: [%.3f, %.3f] ms ([%lld, %lld] ticks)\n",
                to_ms(range.min, ln.ticks_per_ms), to_ms(range.max, ln.ticks_per_ms),
                static_cast<long long>(range.min), static_cast<long long>(range.max));
    return 0;
  }
  std::printf("no T_TR makes the FCFS analysis schedulable (try --policy dm/edf)\n");
  return 1;
}

// The strict scalar parsers (full-string, bounded, negative/overflow-
// rejecting) live in engine/detail/cli_parse.hpp so every sweep-style
// subcommand (sweep, simulate, shard) shares one implementation and the
// validation stays unit-tested.
using engine::parse_cli_count;
using engine::parse_cli_policies;

/// Banner text for the masters dimension: the axis values ("1,8") when the
/// points carry per-point ring sizes, else the single base count.
std::string masters_banner(const workload::NetworkParams& base,
                           const std::vector<engine::SweepPoint>& points) {
  std::string axis;
  std::size_t last = 0;
  for (const engine::SweepPoint& pt : points) {
    if (pt.n_masters != 0 && pt.n_masters != last) {
      if (!axis.empty()) axis += ',';
      axis += std::to_string(pt.n_masters);
      last = pt.n_masters;
    }
  }
  return axis.empty() ? std::to_string(base.n_masters) : axis;
}

/// The sequential top-level command stages. These are the only `phase.*`
/// series, so their totals sum to at most the command's wall time — the
/// invariant tools/metrics_check.py enforces on every --metrics sidecar.
struct PhaseMetrics {
  obs::Timer run = obs::Registry::global().timer("phase.run");
  obs::Timer aggregate = obs::Registry::global().timer("phase.aggregate");
  obs::Timer write = obs::Registry::global().timer("phase.write");
};

PhaseMetrics& phase_metrics() {
  static PhaseMetrics m;
  return m;
}

/// Arms the telemetry switches right after a subcommand's flags parse:
/// --metrics turns on the timed instrumentation (Span clock reads, task
/// latency), --progress the stderr heartbeat. Returns the wall-clock start
/// for the manifest's elapsed_s (taken only when a sidecar was requested, so
/// a flags-off run stays clock-read-free).
std::int64_t arm_observability(const std::string& metrics_path, bool progress) {
  obs::set_enabled(!metrics_path.empty());
  obs::set_progress_enabled(progress);
  return metrics_path.empty() ? -1 : obs::now_ns();
}

/// Builds and writes the --metrics sidecar. The config digest hashes the
/// same canonical spec block `merge` compares byte-for-byte, so identical
/// sweeps digest identically whether run whole, sharded, or merged.
bool emit_manifest(const std::string& path, const char* subcommand, int argc, char** argv,
                   const dist::ShardSpec& spec, std::uint64_t scenarios, unsigned threads,
                   std::int64_t t0_ns) {
  obs::Manifest m;
  m.run.subcommand = subcommand;
  m.run.argv.assign(argv, argv + argc);
  const std::string spec_text = dist::serialize_spec(spec);
  m.run.config_digest =
      engine::detail::Fnv1a64().bytes(spec_text.data(), spec_text.size()).digest();
  m.run.scenarios = scenarios;
  m.run.points = spec.spec.sweep.points.size();
  m.run.policies = spec.spec.sweep.policies.size();
  m.run.replications = spec.spec.replications;
  m.run.threads = threads;
  m.run.elapsed_s = static_cast<double>(obs::now_ns() - t0_ns) / 1e9;
  m.metrics = obs::Registry::global().snapshot();
  if (!obs::write_manifest_file(path, m)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// The one cache summary the CLI prints, fed from the registry's record-
/// level counters — the same `cache.*` series the --metrics sidecar carries,
/// so the console line and the sidecar can never disagree.
void print_cache_line(const dist::ResultCache& cache) {
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  std::printf("result cache: %llu hits / %llu misses (%s)\n",
              static_cast<unsigned long long>(snap.counter("cache.hits")),
              static_cast<unsigned long long>(snap.counter("cache.misses")),
              cache.dir().c_str());
}

int cmd_sweep(int argc, char** argv) {
  engine::SweepSpec spec;
  spec.base.n_masters = 1;
  spec.base.streams_per_master = 5;
  spec.base.ttr = 3'000;
  spec.scenarios_per_point = 100;
  spec.policies = {engine::Policy::Fcfs, engine::Policy::Dm, engine::Policy::Edf};
  engine::GridCliArgs grid;
  unsigned threads = 0;
  std::string csv_path, json_path, cache_dir, metrics_path;
  bool progress = false;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    const char* v = nullptr;
    std::size_t count = 0;
    if (arg == "--scenarios" && (v = next())) {
      if (!parse_cli_count(v, spec.scenarios_per_point, 100'000'000) ||
          spec.scenarios_per_point == 0) {
        return usage();
      }
    // Grid flags demand a non-empty value: an unset shell variable must not
    // silently fall back to the default grid (expand_cli_grid reads "" as
    // flag-absent).
    } else if (arg == "--masters" && (v = next()) && *v != '\0') {
      grid.masters = v;
    } else if (arg == "--split" && (v = next()) && *v != '\0') {
      grid.split = v;
    } else if (arg == "--skew" && (v = next()) && *v != '\0') {
      grid.skew = v;
    } else if (arg == "--streams" && (v = next())) {
      if (!parse_cli_count(v, spec.base.streams_per_master, 4'096) ||
          spec.base.streams_per_master == 0) {
        return usage();
      }
    } else if (arg == "--u" && (v = next()) && *v != '\0') {
      grid.u = v;
    } else if (arg == "--beta" && (v = next()) && *v != '\0') {
      grid.beta = v;
    } else if (arg == "--beta-lo" && (v = next()) && *v != '\0') {
      grid.beta_lo = v;
    } else if (arg == "--beta-hi" && (v = next()) && *v != '\0') {
      grid.beta_hi = v;
    } else if (arg == "--policies" && (v = next())) {
      if (!parse_cli_policies(v, /*simulable_only=*/false, spec.policies)) return usage();
    } else if (arg == "--threads" && (v = next())) {
      if (!parse_cli_count(v, count) || count > 1024) return usage();
      threads = static_cast<unsigned>(count);
    } else if (arg == "--seed" && (v = next())) {
      if (!parse_cli_count(v, count)) return usage();
      spec.seed = count;
    } else if (arg == "--ttr" && (v = next())) {
      if (!parse_cli_count(v, count, 1'000'000'000'000'000ULL)) return usage();
      spec.base.ttr = static_cast<Ticks>(count);
    } else if (arg == "--method" && (v = next())) {
      if (std::strcmp(v, "paper") == 0) spec.engine.method = TcycleMethod::PaperEq13;
      else if (std::strcmp(v, "refined") == 0) spec.engine.method = TcycleMethod::PerMasterRefined;
      else return usage();
    } else if (arg == "--csv" && (v = next())) {
      csv_path = v;
    } else if (arg == "--json" && (v = next())) {
      json_path = v;
    } else if (arg == "--cache" && (v = next())) {
      cache_dir = v;
    } else if (arg == "--metrics" && (v = next()) && *v != '\0') {
      metrics_path = v;
    } else if (arg == "--progress") {
      progress = true;
    } else {
      return usage();
    }
  }
  // Doomed output destinations fail here, before a single scenario runs.
  std::string path_error;
  if ((!csv_path.empty() && !engine::validate_cli_output_file(csv_path, "--csv", path_error)) ||
      (!json_path.empty() && !engine::validate_cli_output_file(json_path, "--json", path_error)) ||
      (!metrics_path.empty() &&
       !engine::validate_cli_output_file(metrics_path, "--metrics", path_error)) ||
      (!cache_dir.empty() && !engine::validate_cli_output_dir(cache_dir, "--cache", path_error))) {
    std::fprintf(stderr, "error: %s\n", path_error.c_str());
    return 2;
  }
  const std::int64_t t0_ns = arm_observability(metrics_path, progress);

  std::string grid_error;
  if (!engine::expand_cli_grid(grid, spec.base, spec.points, grid_error)) {
    std::fprintf(stderr, "error: %s\n", grid_error.c_str());
    return usage();
  }
  if (spec.total_scenarios() > 100'000'000) {
    std::fprintf(stderr, "error: sweep too large (%zu scenarios); shrink the grid axes or "
                         "--scenarios\n",
                 spec.total_scenarios());
    return 2;
  }

  engine::SweepRunner runner(threads);
  std::printf("sweep: %zu scenarios (%zu points x %zu), %s masters x %zu streams, "
              "%u thread%s, seed %llu\n",
              spec.total_scenarios(), spec.points.size(), spec.scenarios_per_point,
              masters_banner(spec.base, spec.points).c_str(), spec.base.streams_per_master,
              runner.threads(), runner.threads() == 1 ? "" : "s",
              static_cast<unsigned long long>(spec.seed));
  std::unique_ptr<dist::ResultCache> cache;
  if (!cache_dir.empty()) cache = std::make_unique<dist::ResultCache>(cache_dir);
  obs::Span run_span(phase_metrics().run);
  const engine::SweepResult result = runner.run(spec, cache.get());
  run_span.stop();
  obs::Span agg_span(phase_metrics().aggregate);
  const engine::SweepCurves curves = engine::aggregate(spec, result);
  agg_span.stop();

  std::printf("\n%-8s", "U");
  for (const std::string& p : curves.policies) std::printf(" %9s", p.c_str());
  std::printf("\n");
  for (const engine::CurvePoint& pt : curves.points) {
    std::printf("%-8.3f", pt.total_u);
    for (std::size_t p = 0; p < curves.policies.size(); ++p) {
      std::printf(" %8.1f%%", 100.0 * pt.ratio(p));
    }
    std::printf("\n");
  }
  std::printf("\n%zu scenarios in %.3f s (%.0f scenario-analyses/s); timing memo: "
              "%zu hits / %zu misses\n",
              result.outcomes.size(), result.elapsed_s,
              static_cast<double>(result.outcomes.size() * spec.policies.size()) /
                  (result.elapsed_s > 0 ? result.elapsed_s : 1.0),
              result.memo_hits, result.memo_misses);
  if (cache) print_cache_line(*cache);

  const auto write_file = [](const std::string& path, const std::string& content) {
    std::ofstream os(path, std::ios::binary);
    os << content;
    os.flush();  // surface ENOSPC-style errors now, not in the destructor
    return os.good();
  };
  obs::Span write_span(phase_metrics().write);
  if (!csv_path.empty()) {
    if (!write_file(csv_path, curves.to_csv())) {
      std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", csv_path.c_str());
  }
  if (!json_path.empty()) {
    if (!write_file(json_path, curves.to_json())) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  write_span.stop();
  if (!metrics_path.empty()) {
    dist::ShardSpec ds;
    ds.mode = dist::SweepMode::Analysis;
    ds.spec.sweep = spec;
    if (!emit_manifest(metrics_path, "sweep", argc, argv, ds, spec.total_scenarios(),
                       runner.threads(), t0_ns)) {
      return 1;
    }
  }
  return 0;
}

bool write_output_file(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary);
  os << content;
  os.flush();  // surface ENOSPC-style errors now, not in the destructor
  return os.good();
}

int cmd_simulate_sweep(int argc, char** argv) {
  engine::SimSweepCli cli;
  std::string error;
  if (!engine::parse_sim_sweep_args(std::vector<std::string>(argv, argv + argc), cli, error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return usage();
  }
  const std::int64_t t0_ns = arm_observability(cli.metrics_path, cli.progress);

  engine::SweepRunner runner(cli.threads);
  std::printf("simulate sweep%s: %zu scenarios (%zu points x %zu) x %zu rep%s, "
              "%s masters x %zu streams, %u thread%s, seed %llu\n",
              cli.combined ? " (combined with analysis)" : "",
              cli.spec.sweep.total_scenarios(), cli.spec.sweep.points.size(),
              cli.spec.sweep.scenarios_per_point, cli.spec.replications,
              cli.spec.replications == 1 ? "" : "s",
              masters_banner(cli.spec.sweep.base, cli.spec.sweep.points).c_str(),
              cli.spec.sweep.base.streams_per_master, runner.threads(),
              runner.threads() == 1 ? "" : "s",
              static_cast<unsigned long long>(cli.spec.sweep.seed));
  std::unique_ptr<dist::ResultCache> cache;
  if (!cli.cache_dir.empty()) cache = std::make_unique<dist::ResultCache>(cli.cache_dir);

  if (cli.combined) {
    obs::Span run_span(phase_metrics().run);
    const engine::CombinedResult result = runner.run_combined(cli.spec, cache.get());
    run_span.stop();
    obs::Span agg_span(phase_metrics().aggregate);
    const engine::ConsistencyTable table = engine::consistency_table(cli.spec, result);
    agg_span.stop();

    // Per-point analysis-accept vs simulation-miss-free ratios side by side,
    // bucketed in one pass over the outcomes (a per-point rescan would be
    // O(points x scenarios) — hours on the biggest accepted grids).
    const std::size_t n_pol = cli.spec.sweep.policies.size();
    const std::size_t n_pts = cli.spec.sweep.points.size();
    std::vector<std::size_t> accepted(n_pts * n_pol, 0), miss_free(n_pts * n_pol, 0),
        scenarios(n_pts, 0);
    for (const engine::CombinedOutcome& o : result.outcomes) {
      ++scenarios[o.sim.point];
      for (std::size_t p = 0; p < n_pol; ++p) {
        if (o.analytic_schedulable[p]) ++accepted[o.sim.point * n_pol + p];
        if (o.sim.misses[p] == 0 && o.sim.dropped[p] == 0) {
          ++miss_free[o.sim.point * n_pol + p];
        }
      }
    }
    std::printf("\n%-8s", "U");
    for (const engine::Policy p : cli.spec.sweep.policies) {
      std::printf(" %9s:an %9s:sim", std::string(to_string(p)).c_str(),
                  std::string(to_string(p)).c_str());
    }
    std::printf("\n");
    for (std::size_t pt = 0; pt < n_pts; ++pt) {
      const double n = scenarios[pt] == 0 ? 1.0 : static_cast<double>(scenarios[pt]);
      std::printf("%-8.3f", cli.spec.sweep.points[pt].total_u);
      for (std::size_t p = 0; p < n_pol; ++p) {
        std::printf(" %11.1f%% %12.1f%%",
                    100.0 * static_cast<double>(accepted[pt * n_pol + p]) / n,
                    100.0 * static_cast<double>(miss_free[pt * n_pol + p]) / n);
      }
      std::printf("\n");
    }

    double max_pessimism = 0.0;
    for (const engine::ConsistencyRow& r : table.rows) {
      max_pessimism = std::max(max_pessimism, r.pessimism());
    }
    std::printf("\n%zu joined rows in %.3f s; bound violations: %llu; "
                "analysis-accepts-but-sim-misses: %zu; max pessimism %.3f\n",
                table.rows.size(), result.elapsed_s,
                static_cast<unsigned long long>(result.total_bound_violations()),
                table.accept_but_miss_count(), max_pessimism);
    if (cache) print_cache_line(*cache);

    obs::Span write_span(phase_metrics().write);
    if (!cli.csv_path.empty()) {
      if (!write_output_file(cli.csv_path, table.to_csv())) {
        std::fprintf(stderr, "error: cannot write %s\n", cli.csv_path.c_str());
        return 1;
      }
      std::printf("wrote %s\n", cli.csv_path.c_str());
    }
    if (!cli.json_path.empty()) {
      if (!write_output_file(cli.json_path, table.to_json())) {
        std::fprintf(stderr, "error: cannot write %s\n", cli.json_path.c_str());
        return 1;
      }
      std::printf("wrote %s\n", cli.json_path.c_str());
    }
    write_span.stop();
    if (!cli.metrics_path.empty()) {
      dist::ShardSpec ds;
      ds.mode = dist::SweepMode::Combined;
      ds.spec = cli.spec;
      if (!emit_manifest(cli.metrics_path, "simulate", argc, argv, ds,
                         cli.spec.sweep.total_scenarios(), runner.threads(), t0_ns)) {
        return 1;
      }
    }
    // A consistency violation falsifies the corresponding analysis — make the
    // run fail loudly so CI catches it.
    return (table.accept_but_miss_count() > 0 || result.total_bound_violations() > 0) ? 1 : 0;
  }

  obs::Span run_span(phase_metrics().run);
  const engine::SimSweepResult result = runner.run_sim(cli.spec, cache.get());
  run_span.stop();
  obs::Span agg_span(phase_metrics().aggregate);
  const engine::SimCurves curves = engine::aggregate_sim(cli.spec, result);
  agg_span.stop();

  std::printf("\n%-8s", "U");
  for (const std::string& p : curves.policies) std::printf(" %9s", p.c_str());
  std::printf("\n");
  for (const engine::SimCurvePoint& pt : curves.points) {
    std::printf("%-8.3f", pt.total_u);
    for (std::size_t p = 0; p < curves.policies.size(); ++p) {
      std::printf(" %8.1f%%", 100.0 * pt.ratio(p));
    }
    std::printf("\n");
  }
  std::printf("\n%zu scenarios x %zu reps in %.3f s (%.0f sim-runs/s)\n",
              result.outcomes.size(), cli.spec.replications, result.elapsed_s,
              static_cast<double>(result.outcomes.size() * cli.spec.sweep.policies.size() *
                                  cli.spec.replications) /
                  (result.elapsed_s > 0 ? result.elapsed_s : 1.0));
  if (cache) print_cache_line(*cache);

  obs::Span write_span(phase_metrics().write);
  if (!cli.csv_path.empty()) {
    if (!write_output_file(cli.csv_path, curves.to_csv())) {
      std::fprintf(stderr, "error: cannot write %s\n", cli.csv_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", cli.csv_path.c_str());
  }
  if (!cli.json_path.empty()) {
    if (!write_output_file(cli.json_path, curves.to_json())) {
      std::fprintf(stderr, "error: cannot write %s\n", cli.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", cli.json_path.c_str());
  }
  write_span.stop();
  if (!cli.metrics_path.empty()) {
    dist::ShardSpec ds;
    ds.mode = dist::SweepMode::Sim;
    ds.spec = cli.spec;
    if (!emit_manifest(cli.metrics_path, "simulate", argc, argv, ds,
                       cli.spec.sweep.total_scenarios(), runner.threads(), t0_ns)) {
      return 1;
    }
  }
  return 0;
}

int cmd_optimize(int argc, char** argv) {
  opt::OptimizeCli cli;
  std::string error;
  if (!opt::parse_optimize_args(std::vector<std::string>(argv, argv + argc), cli, error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return usage();
  }
  const std::int64_t t0_ns = arm_observability(cli.metrics_path, cli.progress);

  engine::SweepRunner runner(cli.threads);
  std::printf("optimize: %zu scenarios (%zu points x %zu), %s masters x %zu streams, "
              "%u thread%s, seed %llu\n",
              cli.spec.sweep.total_scenarios(), cli.spec.sweep.points.size(),
              cli.spec.sweep.scenarios_per_point,
              masters_banner(cli.spec.sweep.base, cli.spec.sweep.points).c_str(),
              cli.spec.sweep.base.streams_per_master, runner.threads(),
              runner.threads() == 1 ? "" : "s",
              static_cast<unsigned long long>(cli.spec.sweep.seed));
  std::unique_ptr<dist::ResultCache> cache;
  if (!cli.cache_dir.empty()) cache = std::make_unique<dist::ResultCache>(cli.cache_dir);
  obs::Span run_span(phase_metrics().run);
  const opt::OptimizeResult result = opt::run_optimize(runner, cli.spec, cache.get());
  run_span.stop();
  obs::Span agg_span(phase_metrics().aggregate);
  const opt::OptimizeTable table = opt::aggregate_optimize(cli.spec, result);
  agg_span.stop();

  // Median breakdown utilization per policy — the headline synthesis answer;
  // the full distributions go to --csv/--json.
  std::printf("\n%-8s", "U");
  for (const std::string& p : table.policies) std::printf(" %12s", (p + ":bu").c_str());
  std::printf("\n");
  for (const opt::OptimizePoint& pt : table.points) {
    std::printf("%-8.3f", pt.total_u);
    for (std::size_t p = 0; p < table.policies.size(); ++p) {
      std::printf(" %12.3f", pt.stats[p].breakdown_u_p50);
    }
    std::printf("\n");
  }
  std::printf("\n%zu scenarios x %zu policies in %.3f s (3 bisections each)\n",
              result.outcomes.size(), cli.spec.sweep.policies.size(), result.elapsed_s);
  if (cache) print_cache_line(*cache);

  obs::Span write_span(phase_metrics().write);
  if (!cli.csv_path.empty()) {
    if (!write_output_file(cli.csv_path, table.to_csv())) {
      std::fprintf(stderr, "error: cannot write %s\n", cli.csv_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", cli.csv_path.c_str());
  }
  if (!cli.json_path.empty()) {
    if (!write_output_file(cli.json_path, table.to_json())) {
      std::fprintf(stderr, "error: cannot write %s\n", cli.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", cli.json_path.c_str());
  }
  write_span.stop();
  if (!cli.metrics_path.empty()) {
    dist::ShardSpec ds;
    ds.mode = dist::SweepMode::Optimize;
    ds.spec.sweep = cli.spec.sweep;
    ds.optimize = cli.spec.options;
    if (!emit_manifest(cli.metrics_path, "optimize", argc, argv, ds,
                       cli.spec.sweep.total_scenarios(), runner.threads(), t0_ns)) {
      return 1;
    }
  }
  return 0;
}

int cmd_shard(int argc, char** argv) {
  dist::ShardCli cli;
  std::string error;
  if (!dist::parse_shard_args(std::vector<std::string>(argv, argv + argc), cli, error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return usage();
  }
  const std::int64_t t0_ns = arm_observability(cli.metrics_path, cli.progress);

  dist::ShardRunner runner(cli.threads);
  std::unique_ptr<dist::ResultCache> cache;
  if (!cli.cache_dir.empty()) cache = std::make_unique<dist::ResultCache>(cli.cache_dir);

  std::printf("shard %llu/%llu (%s mode): %llu scenarios total, %u thread%s, seed %llu\n",
              static_cast<unsigned long long>(cli.index + 1),
              static_cast<unsigned long long>(cli.count),
              std::string(dist::to_string(cli.shard.mode)).c_str(),
              static_cast<unsigned long long>(cli.shard.total_scenarios()), runner.threads(),
              runner.threads() == 1 ? "" : "s",
              static_cast<unsigned long long>(cli.shard.spec.sweep.seed));

  obs::Span run_span(phase_metrics().run);
  const dist::ShardArtifact artifact = runner.run(cli.shard, cli.index, cli.count, cache.get());
  run_span.stop();
  obs::Span write_span(phase_metrics().write);
  if (!write_output_file(cli.out_path, artifact.to_text())) {
    std::fprintf(stderr, "error: cannot write %s\n", cli.out_path.c_str());
    return 1;
  }
  write_span.stop();
  // Registry-fed like every other subcommand: the record-level cache.*
  // counters — unlike the ResultCache's raw load statistics — count an
  // undecodable or mismatched entry as the recompute it was.
  if (cache) print_cache_line(*cache);
  // The range comes from the artifact itself, so what we report is exactly
  // what a merge will validate — not a second ShardPlan computation.
  std::printf("wrote %s (scenarios [%llu, %llu))\n", cli.out_path.c_str(),
              static_cast<unsigned long long>(artifact.range.begin),
              static_cast<unsigned long long>(artifact.range.end));
  if (!cli.metrics_path.empty()) {
    if (!emit_manifest(cli.metrics_path, "shard", argc, argv, cli.shard,
                       artifact.range.size(), runner.threads(), t0_ns)) {
      return 1;
    }
  }
  return 0;
}

int cmd_merge(int argc, char** argv) {
  dist::MergeCli cli;
  std::string error;
  if (!dist::parse_merge_args(std::vector<std::string>(argv, argv + argc), cli, error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return usage();
  }
  const std::int64_t t0_ns = arm_observability(cli.metrics_path, /*progress=*/false);

  obs::Span run_span(phase_metrics().run);
  std::vector<dist::ShardArtifact> artifacts;
  artifacts.reserve(cli.inputs.size());
  for (const std::string& path : cli.inputs) {
    std::ifstream is(path, std::ios::binary);
    if (!is) {
      std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << is.rdbuf();
    artifacts.push_back(dist::ShardArtifact::from_text(text.str()));
  }

  const dist::MergedSweep merged = dist::merge_shards(artifacts);
  run_span.stop();
  const engine::SimSweepSpec& spec = merged.spec.spec;
  std::printf("merged %zu shard%s: %llu scenarios (%s mode)\n", artifacts.size(),
              artifacts.size() == 1 ? "" : "s",
              static_cast<unsigned long long>(merged.spec.total_scenarios()),
              std::string(dist::to_string(merged.spec.mode)).c_str());

  // Serialize lazily: a multi-million-row combined merge should not pay for
  // (or hold in memory) a JSON string nobody asked for.
  const auto emit = [&](const std::string& path, const std::string& content) {
    if (!write_output_file(path, content)) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
  };
  const auto emit_both = [&](const auto& serializable) {
    const obs::Span write_span(phase_metrics().write);
    if (!cli.csv_path.empty() && !emit(cli.csv_path, serializable.to_csv())) return 1;
    if (!cli.json_path.empty() && !emit(cli.json_path, serializable.to_json())) return 1;
    return 0;
  };
  int rc = 0;
  switch (merged.spec.mode) {
    case dist::SweepMode::Analysis:
      rc = emit_both(engine::aggregate(spec.sweep, merged.analysis));
      break;
    case dist::SweepMode::Sim:
      rc = emit_both(engine::aggregate_sim(spec, merged.sim));
      break;
    case dist::SweepMode::Combined: {
      const engine::ConsistencyTable table = engine::consistency_table(spec, merged.combined);
      std::printf("bound violations: %llu; analysis-accepts-but-sim-misses: %zu\n",
                  static_cast<unsigned long long>(table.total_bound_violations()),
                  table.accept_but_miss_count());
      rc = emit_both(table);
      // Same contract as `simulate --combined`: a consistency violation
      // falsifies the corresponding analysis, so the merge fails loudly too.
      if (rc == 0 &&
          (table.accept_but_miss_count() > 0 || table.total_bound_violations() > 0)) {
        rc = 1;
      }
      break;
    }
    case dist::SweepMode::Optimize:
      rc = emit_both(opt::aggregate_optimize(
          opt::OptimizeSpec{spec.sweep, merged.spec.optimize}, merged.optimize));
      break;
  }
  if (!cli.metrics_path.empty()) {
    if (!emit_manifest(cli.metrics_path, "merge", argc, argv, merged.spec,
                       merged.spec.total_scenarios(), /*threads=*/1, t0_ns)) {
      return 1;
    }
  }
  return rc;
}

int cmd_serve(int argc, char** argv) {
  serve::ServeCli cli;
  std::string error;
  if (!serve::parse_serve_args(std::vector<std::string>(argv, argv + argc), cli, error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return usage();
  }
  serve::ServeOptions opts;
  opts.socket_path = cli.socket_path;
  opts.threads = cli.threads;
  opts.cache_dir = cli.cache_dir;
  opts.argv.assign(argv, argv + argc);
  serve::Server server(std::move(opts));
  std::printf("serve: listening on %s\n", cli.socket_path.c_str());
  std::fflush(stdout);  // the CI smoke job greps this line for readiness
  const std::uint64_t done = server.run();
  std::printf("serve: shutdown after %llu completed job%s\n",
              static_cast<unsigned long long>(done), done == 1 ? "" : "s");
  if (!cli.metrics_path.empty()) {
    if (!obs::write_manifest_file(cli.metrics_path, server.stats_manifest())) {
      std::fprintf(stderr, "error: cannot write %s\n", cli.metrics_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", cli.metrics_path.c_str());
  }
  return 0;
}

/// Find our job's line in an `ok jobs N` STATUS payload; empty when missing.
std::string status_line_for(const std::string& payload, std::uint64_t id) {
  const std::string needle = "job " + std::to_string(id) + ' ';
  std::size_t pos = payload.find('\n');
  while (pos != std::string::npos) {
    const std::size_t start = pos + 1;
    std::size_t end = payload.find('\n', start);
    const std::string line =
        payload.substr(start, end == std::string::npos ? end : end - start);
    if (line.rfind(needle, 0) == 0) return line;
    pos = end;
  }
  return {};
}

int cmd_submit(int argc, char** argv) {
  serve::SubmitCli cli;
  std::string error;
  if (!serve::parse_submit_args(std::vector<std::string>(argv, argv + argc), cli, error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return usage();
  }
  const serve::Client client(cli.socket_path);
  // The daemon may still be binding when CI fires the first submit; retry
  // the connect briefly instead of making every caller script a sleep.
  constexpr int kConnectRetryMs = 5'000;
  const auto call_ok = [&](const std::string& payload, std::string& response) {
    response = client.call(payload, kConnectRetryMs);
    if (response.rfind("err ", 0) == 0 || response == "err") {
      std::fprintf(stderr, "error: server: %s\n",
                   response.size() > 4 ? response.c_str() + 4 : "(no detail)");
      return false;
    }
    return true;
  };

  std::string response;
  switch (cli.action) {
    case serve::SubmitCli::Action::Status:
      if (!call_ok(serve::format_status(), response)) return 1;
      std::printf("%s\n", response.c_str());
      return 0;
    case serve::SubmitCli::Action::Cancel:
      if (!call_ok(serve::format_cancel(cli.cancel_id), response)) return 1;
      std::printf("%s\n", response.c_str());
      return 0;
    case serve::SubmitCli::Action::Stats: {
      if (!call_ok(serve::format_stats(), response)) return 1;
      // Payload is `ok stats\n<json>`; print only the JSON so the output
      // pipes straight into tools/metrics_check.py.
      const std::size_t nl = response.find('\n');
      std::printf("%s\n", nl == std::string::npos ? "" : response.c_str() + nl + 1);
      return 0;
    }
    case serve::SubmitCli::Action::Shutdown:
      if (!call_ok(serve::format_shutdown(), response)) return 1;
      std::printf("%s\n", response.c_str());
      return 0;
    case serve::SubmitCli::Action::Submit:
      break;
  }

  if (!call_ok(serve::format_submit(cli.job), response)) return 1;
  std::size_t id = 0;
  if (response.rfind("ok id ", 0) != 0 ||
      !engine::parse_cli_count(response.substr(6), id, std::numeric_limits<std::size_t>::max() / 2)) {
    std::fprintf(stderr, "error: unexpected submit response '%s'\n", response.c_str());
    return 1;
  }
  std::printf("submitted job %llu\n", static_cast<unsigned long long>(id));
  if (!cli.wait) return 0;

  for (;;) {
    if (!call_ok(serve::format_status(), response)) return 1;
    const std::string line = status_line_for(response, id);
    if (line.empty()) {
      std::fprintf(stderr, "error: job %llu vanished from STATUS\n",
                   static_cast<unsigned long long>(id));
      return 1;
    }
    const std::vector<std::string> fields = engine::detail::split(line, ' ');
    const std::string& state = fields.size() > 2 ? fields[2] : line;
    if (state == "queued" || state == "running") {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      continue;
    }
    std::printf("%s\n", line.c_str());
    if (state == "done") return 0;
    if (state == "cancelled") return 3;
    return 1;  // failed (or an unknown state, which is its own failure)
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "sweep") == 0) {
    try {
      return cmd_sweep(argc - 2, argv + 2);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (std::strcmp(argv[1], "optimize") == 0) {
    try {
      return cmd_optimize(argc - 2, argv + 2);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (std::strcmp(argv[1], "shard") == 0) {
    try {
      return cmd_shard(argc - 2, argv + 2);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (std::strcmp(argv[1], "merge") == 0) {
    try {
      return cmd_merge(argc - 2, argv + 2);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (std::strcmp(argv[1], "serve") == 0) {
    try {
      return cmd_serve(argc - 2, argv + 2);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (std::strcmp(argv[1], "submit") == 0) {
    try {
      return cmd_submit(argc - 2, argv + 2);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  // `simulate` without an INI file (nothing or a --flag next) is the
  // generated-scenario sweep mode; with a file it simulates that network.
  if (std::strcmp(argv[1], "simulate") == 0 &&
      (argc == 2 || std::strncmp(argv[2], "--", 2) == 0)) {
    try {
      return cmd_simulate_sweep(argc - 2, argv + 2);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string path = argv[2];

  std::string policy = command == "simulate" ? "fcfs" : "all";
  Ticks milliseconds = 1'000;
  std::uint64_t seed = 1;
  bool histograms = false;
  std::size_t trace_events = 0;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--policy") {
      const char* v = next();
      if (v == nullptr) return usage();
      policy = v;
    } else if (arg == "--ms") {
      const char* v = next();
      if (v == nullptr) return usage();
      milliseconds = std::atoll(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return usage();
      seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--histograms") {
      histograms = true;
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return usage();
      trace_events = static_cast<std::size_t>(std::atoll(v));
    } else {
      return usage();
    }
  }

  try {
    const LoadedNetwork ln = profisched::config::load_network_file(path);
    std::printf("loaded %s: %zu masters, %zu streams, T_TR = %lld ticks\n", path.c_str(),
                ln.net.n_masters(), ln.net.total_high_streams(),
                static_cast<long long>(ln.net.ttr));
    if (command == "analyze") return cmd_analyze(ln, policy);
    if (command == "simulate") {
      return cmd_simulate(ln, policy, milliseconds, seed, histograms, trace_events);
    }
    if (command == "ttr") return cmd_ttr(ln);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
