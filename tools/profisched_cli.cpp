// profisched — command-line front end: analyze, simulate, or tune a network
// described in an INI file (format: src/config/network_loader.hpp; examples
// under configs/).
//
//   profisched analyze  <file> [--policy fcfs|dm|edf|opa|all]
//   profisched simulate <file> [--policy fcfs|dm|edf] [--ms N] [--seed N]
//                              [--histograms] [--trace N]
//   profisched ttr      <file>
#include <cstdio>
#include <cstring>
#include <string>

#include "config/network_loader.hpp"
#include "profibus/dispatching.hpp"
#include "profibus/priority_assignment.hpp"
#include "profibus/ttr_setting.hpp"
#include "sim/network_sim.hpp"

namespace {

using namespace profisched;
using namespace profisched::profibus;
using config::LoadedNetwork;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  profisched analyze  <file.ini> [--policy fcfs|dm|edf|opa|all]\n"
               "  profisched simulate <file.ini> [--policy fcfs|dm|edf] [--ms N]\n"
               "                      [--seed N] [--histograms] [--trace N]\n"
               "  profisched ttr      <file.ini>\n");
  return 2;
}

double to_ms(Ticks v, Ticks ticks_per_ms) {
  return static_cast<double>(v) / static_cast<double>(ticks_per_ms);
}

void print_analysis(const LoadedNetwork& ln, const NetworkAnalysis& a, const char* label) {
  std::printf("\n%s: %s (T_cycle = %.3f ms)\n", label, a.schedulable ? "SCHEDULABLE" : "NOT schedulable",
              to_ms(a.tcycle, ln.ticks_per_ms));
  for (std::size_t k = 0; k < ln.net.n_masters(); ++k) {
    std::printf("  [%s]\n", ln.net.masters[k].name.c_str());
    for (std::size_t i = 0; i < ln.net.masters[k].nh(); ++i) {
      const auto& s = ln.net.masters[k].high_streams[i];
      const auto& r = a.masters[k].streams[i];
      if (r.response == kNoBound) {
        std::printf("    %-24s D=%8.2f ms  R=unbounded  MISS\n", s.name.c_str(),
                    to_ms(s.D, ln.ticks_per_ms));
      } else {
        std::printf("    %-24s D=%8.2f ms  R=%8.2f ms  %s\n", s.name.c_str(),
                    to_ms(s.D, ln.ticks_per_ms), to_ms(r.response, ln.ticks_per_ms),
                    r.meets_deadline ? "ok" : "MISS");
      }
    }
  }
}

int cmd_analyze(const LoadedNetwork& ln, const std::string& policy) {
  bool any = false;
  int rc = 0;
  const auto run = [&](ApPolicy p) {
    const NetworkAnalysis a = analyze_network(ln.net, p);
    print_analysis(ln, a, std::string(to_string(p)).c_str());
    if (!a.schedulable) rc = 1;
    any = true;
  };
  if (policy == "fcfs" || policy == "all") run(ApPolicy::Fcfs);
  if (policy == "dm" || policy == "all") run(ApPolicy::Dm);
  if (policy == "edf" || policy == "all") run(ApPolicy::Edf);
  if (policy == "opa" || policy == "all") {
    const auto orders = audsley_stream_orders(ln.net);
    if (orders.has_value()) {
      print_analysis(ln, analyze_fixed_priority(ln.net, *orders), "OPA");
      std::printf("  OPA priority order (highest first):\n");
      for (std::size_t k = 0; k < ln.net.n_masters(); ++k) {
        std::printf("    [%s]:", ln.net.masters[k].name.c_str());
        for (const std::size_t i : (*orders)[k]) {
          std::printf(" %s", ln.net.masters[k].high_streams[i].name.c_str());
        }
        std::printf("\n");
      }
    } else {
      std::printf("\nOPA: no fixed priority order schedules this set\n");
      rc = 1;
    }
    any = true;
  }
  if (!any) return usage();
  return rc;
}

int cmd_simulate(const LoadedNetwork& ln, const std::string& policy, Ticks milliseconds,
                 std::uint64_t seed, bool histograms, std::size_t trace_events) {
  sim::SimConfig cfg;
  cfg.net = ln.net;
  cfg.horizon = milliseconds * ln.ticks_per_ms;
  cfg.seed = seed;
  cfg.collect_histograms = histograms;
  if (policy == "dm") cfg.policy = ApPolicy::Dm;
  else if (policy == "edf") cfg.policy = ApPolicy::Edf;
  else if (policy == "fcfs") cfg.policy = ApPolicy::Fcfs;
  else return usage();

  sim::Trace trace(trace_events == 0 ? 1 : trace_events);
  if (trace_events > 0) cfg.trace = &trace;

  const sim::SimReport r = sim::simulate(cfg);
  std::printf("simulated %lld ms under %s (seed %llu): %llu events, %llu LP cycles\n",
              static_cast<long long>(milliseconds), policy.c_str(),
              static_cast<unsigned long long>(seed), static_cast<unsigned long long>(r.events),
              static_cast<unsigned long long>(r.lp_cycles_completed));
  for (std::size_t k = 0; k < ln.net.n_masters(); ++k) {
    std::printf("[%s] token visits=%llu max TRR=%.3f ms overruns=%llu late=%llu\n",
                ln.net.masters[k].name.c_str(),
                static_cast<unsigned long long>(r.token[k].visits),
                to_ms(r.token[k].max_trr, ln.ticks_per_ms),
                static_cast<unsigned long long>(r.token[k].tth_overruns),
                static_cast<unsigned long long>(r.token[k].late_tokens));
    for (std::size_t i = 0; i < ln.net.masters[k].nh(); ++i) {
      const auto& s = r.hp[k][i];
      std::printf("  %-24s n=%llu max=%.3f ms mean=%.3f ms misses=%llu dropped=%llu\n",
                  ln.net.masters[k].high_streams[i].name.c_str(),
                  static_cast<unsigned long long>(s.completed),
                  to_ms(s.max_response, ln.ticks_per_ms),
                  s.mean_response() / static_cast<double>(ln.ticks_per_ms),
                  static_cast<unsigned long long>(s.deadline_misses),
                  static_cast<unsigned long long>(s.dropped));
      if (histograms) {
        std::printf("    hist: %s\n", r.response_hist[k][i].summary().c_str());
      }
    }
  }
  if (trace_events > 0) {
    std::printf("\n--- first %zu trace events ---\n%s", trace.events().size(),
                trace.render().c_str());
  }
  return 0;
}

int cmd_ttr(const LoadedNetwork& ln) {
  const TtrRange range = ttr_range_fcfs(ln.net);
  std::printf("T_del = %.3f ms; current T_TR = %.3f ms%s\n",
              to_ms(t_del(ln.net), ln.ticks_per_ms), to_ms(ln.net.ttr, ln.ticks_per_ms),
              ln.ttr_auto ? " (auto, eq. 15)" : "");
  if (range.feasible()) {
    std::printf("eq. 15 feasible T_TR range: [%.3f, %.3f] ms ([%lld, %lld] ticks)\n",
                to_ms(range.min, ln.ticks_per_ms), to_ms(range.max, ln.ticks_per_ms),
                static_cast<long long>(range.min), static_cast<long long>(range.max));
    return 0;
  }
  std::printf("no T_TR makes the FCFS analysis schedulable (try --policy dm/edf)\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string path = argv[2];

  std::string policy = command == "simulate" ? "fcfs" : "all";
  Ticks milliseconds = 1'000;
  std::uint64_t seed = 1;
  bool histograms = false;
  std::size_t trace_events = 0;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--policy") {
      const char* v = next();
      if (v == nullptr) return usage();
      policy = v;
    } else if (arg == "--ms") {
      const char* v = next();
      if (v == nullptr) return usage();
      milliseconds = std::atoll(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return usage();
      seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--histograms") {
      histograms = true;
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return usage();
      trace_events = static_cast<std::size_t>(std::atoll(v));
    } else {
      return usage();
    }
  }

  try {
    const LoadedNetwork ln = profisched::config::load_network_file(path);
    std::printf("loaded %s: %zu masters, %zu streams, T_TR = %lld ticks\n", path.c_str(),
                ln.net.n_masters(), ln.net.total_high_streams(),
                static_cast<long long>(ln.net.ttr));
    if (command == "analyze") return cmd_analyze(ln, policy);
    if (command == "simulate") {
      return cmd_simulate(ln, policy, milliseconds, seed, histograms, trace_events);
    }
    if (command == "ttr") return cmd_ttr(ln);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
