// network_loader.hpp — build a profibus::Network (plus the frame specs the
// FrameLevel simulation model needs) from an INI description.
//
// File format (see configs/*.ini for complete examples):
//
//   [bus]                       # optional; defaults = BusParameters{}
//   bits_per_char = 11
//   t_id1 = 37
//   t_sl  = 100
//   min_tsdr = 11
//   max_tsdr = 60
//   max_retry = 1
//
//   [network]
//   ticks_per_ms = 500          # time unit for *_ms keys (default 500)
//   ttr = auto                  # eq.-15 maximum, or an explicit tick count
//
//   [master]                    # one per station, ring order = file order
//   name = robot
//   low_request_chars = 30      # optional background-traffic frame sizes
//   low_response_chars = 30
//
//   [stream]                    # belongs to the most recent [master]
//   name = e-stop
//   request_chars = 8
//   response_chars = 8
//   period_ms = 50              # or period = <ticks>
//   deadline_ms = 40            # or deadline = <ticks>
//   jitter = 0                  # optional, ticks
#pragma once

#include "config/ini.hpp"
#include "profibus/network.hpp"

namespace profisched::config {

struct LoadedNetwork {
  profibus::Network net;
  std::vector<std::vector<profibus::MessageCycleSpec>> specs;  ///< per master/stream
  Ticks ticks_per_ms = 500;
  bool ttr_auto = false;  ///< true when "ttr = auto" resolved via eq. 15
};

/// Build a network from parsed INI. Throws IniError / std::invalid_argument
/// with actionable messages on inconsistent input.
[[nodiscard]] LoadedNetwork load_network(const IniFile& file);

/// Convenience: parse + load from a path.
[[nodiscard]] LoadedNetwork load_network_file(const std::string& path);

}  // namespace profisched::config
