// ini.hpp — a minimal INI reader for network description files.
//
// Grammar (deliberately tiny, no external dependencies):
//   * sections:   [name]          — repeatable; order preserved
//   * entries:    key = value     — whitespace-trimmed, value up to EOL
//   * comments:   '#' or ';' to end of line (start of line or after value)
//   * blank lines ignored
//
// The reader keeps sections in file order because the network format relies
// on it ("a [stream] belongs to the most recent [master]"). Errors carry
// 1-based line numbers.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/time_types.hpp"

namespace profisched::config {

/// Parse error with location.
class IniError : public std::runtime_error {
 public:
  IniError(std::size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what), line_(line) {}
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

struct IniEntry {
  std::string key;
  std::string value;
  std::size_t line = 0;
};

struct IniSection {
  std::string name;
  std::size_t line = 0;
  std::vector<IniEntry> entries;

  /// First value for `key`, if present.
  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;

  /// Typed accessors; throw IniError (with the entry's line) on bad syntax.
  [[nodiscard]] std::optional<Ticks> get_ticks(std::string_view key) const;
  [[nodiscard]] std::optional<double> get_double(std::string_view key) const;

  /// Required variants: throw IniError when the key is missing.
  [[nodiscard]] std::string require(std::string_view key) const;
  [[nodiscard]] Ticks require_ticks(std::string_view key) const;
};

/// Parsed file: sections in order of appearance.
struct IniFile {
  std::vector<IniSection> sections;

  [[nodiscard]] const IniSection* find(std::string_view name) const;
};

/// Parse INI text. Throws IniError on malformed input.
[[nodiscard]] IniFile parse_ini(std::string_view text);

/// Read and parse a file. Throws std::runtime_error if unreadable.
[[nodiscard]] IniFile parse_ini_file(const std::string& path);

}  // namespace profisched::config
