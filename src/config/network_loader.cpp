#include "config/network_loader.hpp"

#include "profibus/ttr_setting.hpp"

namespace profisched::config {

namespace {

using profibus::BusParameters;
using profibus::Master;
using profibus::MessageCycleSpec;
using profibus::MessageStream;

BusParameters load_bus(const IniFile& file) {
  BusParameters bus;
  const IniSection* s = file.find("bus");
  if (s == nullptr) return bus;
  if (auto v = s->get_ticks("bits_per_char")) bus.bits_per_char = *v;
  if (auto v = s->get_ticks("t_id1")) bus.t_id1 = *v;
  if (auto v = s->get_ticks("t_sl")) bus.t_sl = *v;
  if (auto v = s->get_ticks("min_tsdr")) bus.min_tsdr = *v;
  if (auto v = s->get_ticks("max_tsdr")) bus.max_tsdr = *v;
  if (auto v = s->get_ticks("max_retry")) bus.max_retry = static_cast<int>(*v);
  if (auto v = s->get_ticks("token_frame_chars")) bus.token_frame_chars = *v;
  bus.validate();
  return bus;
}

/// Read a duration that may be given in ticks (`key`) or in milliseconds
/// (`key_ms`), exactly one of the two.
Ticks duration(const IniSection& s, const std::string& key, Ticks ticks_per_ms) {
  const auto ticks = s.get_ticks(key);
  const auto msv = s.get_double(key + "_ms");
  if (ticks.has_value() == msv.has_value()) {
    throw IniError(s.line, "section [" + s.name + "] needs exactly one of '" + key + "' or '" +
                               key + "_ms'");
  }
  if (ticks.has_value()) return *ticks;
  return static_cast<Ticks>(*msv * static_cast<double>(ticks_per_ms));
}

}  // namespace

LoadedNetwork load_network(const IniFile& file) {
  LoadedNetwork out;
  out.net.bus = load_bus(file);

  const IniSection* netsec = file.find("network");
  if (netsec == nullptr) throw std::invalid_argument("missing [network] section");
  if (auto v = netsec->get_ticks("ticks_per_ms")) out.ticks_per_ms = *v;

  for (const IniSection& s : file.sections) {
    if (s.name == "master") {
      Master m;
      m.name = s.get("name").value_or("master" + std::to_string(out.net.masters.size()));
      const auto lreq = s.get_ticks("low_request_chars");
      const auto lresp = s.get_ticks("low_response_chars");
      if (lreq.has_value() != lresp.has_value()) {
        throw IniError(s.line, "[master] needs both or neither of low_request_chars / "
                               "low_response_chars");
      }
      if (lreq.has_value()) {
        m.longest_low_cycle =
            profibus::worst_case_cycle_time(out.net.bus, MessageCycleSpec{*lreq, *lresp});
      }
      out.net.masters.push_back(std::move(m));
      out.specs.emplace_back();
    } else if (s.name == "stream") {
      if (out.net.masters.empty()) {
        throw IniError(s.line, "[stream] before any [master]");
      }
      const MessageCycleSpec spec{s.require_ticks("request_chars"),
                                  s.require_ticks("response_chars")};
      MessageStream ms;
      ms.name = s.get("name").value_or("stream");
      ms.Ch = profibus::worst_case_cycle_time(out.net.bus, spec);
      ms.T = duration(s, "period", out.ticks_per_ms);
      ms.D = duration(s, "deadline", out.ticks_per_ms);
      ms.J = s.get_ticks("jitter").value_or(0);
      out.net.masters.back().high_streams.push_back(std::move(ms));
      out.specs.back().push_back(spec);
    }
  }
  if (out.net.masters.empty()) throw std::invalid_argument("no [master] sections");

  const std::string ttr = netsec->require("ttr");
  if (ttr == "auto") {
    out.ttr_auto = true;
    out.net.ttr = 1;
    const auto best = profibus::max_schedulable_ttr(out.net);
    if (best.has_value() && *best >= 1) {
      out.net.ttr = *best;
    } else {
      // FCFS-infeasible: functional fallback (ring latency + longest cycles).
      Ticks fallback = out.net.ring_latency();
      for (const Master& m : out.net.masters) fallback = sat_add(fallback, m.longest_cycle());
      out.net.ttr = fallback;
    }
  } else {
    out.net.ttr = netsec->require_ticks("ttr");
  }

  out.net.validate();
  return out;
}

LoadedNetwork load_network_file(const std::string& path) {
  return load_network(parse_ini_file(path));
}

}  // namespace profisched::config
