#include "config/ini.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

namespace profisched::config {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

std::string_view strip_comment(std::string_view s) {
  const std::size_t pos = s.find_first_of("#;");
  return pos == std::string_view::npos ? s : s.substr(0, pos);
}

}  // namespace

std::optional<std::string> IniSection::get(std::string_view key) const {
  for (const IniEntry& e : entries) {
    if (e.key == key) return e.value;
  }
  return std::nullopt;
}

std::optional<Ticks> IniSection::get_ticks(std::string_view key) const {
  for (const IniEntry& e : entries) {
    if (e.key != key) continue;
    Ticks v = 0;
    const char* first = e.value.data();
    const char* last = first + e.value.size();
    const auto [ptr, ec] = std::from_chars(first, last, v);
    if (ec != std::errc{} || ptr != last) {
      throw IniError(e.line, "expected an integer for '" + e.key + "', got '" + e.value + "'");
    }
    return v;
  }
  return std::nullopt;
}

std::optional<double> IniSection::get_double(std::string_view key) const {
  for (const IniEntry& e : entries) {
    if (e.key != key) continue;
    try {
      std::size_t consumed = 0;
      const double v = std::stod(e.value, &consumed);
      if (consumed != e.value.size()) throw std::invalid_argument("");
      return v;
    } catch (const std::exception&) {
      throw IniError(e.line, "expected a number for '" + e.key + "', got '" + e.value + "'");
    }
  }
  return std::nullopt;
}

std::string IniSection::require(std::string_view key) const {
  if (auto v = get(key)) return *v;
  throw IniError(line, "section [" + name + "] is missing required key '" + std::string(key) +
                           "'");
}

Ticks IniSection::require_ticks(std::string_view key) const {
  if (auto v = get_ticks(key)) return *v;
  throw IniError(line, "section [" + name + "] is missing required key '" + std::string(key) +
                           "'");
}

const IniSection* IniFile::find(std::string_view name) const {
  for (const IniSection& s : sections) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

IniFile parse_ini(std::string_view text) {
  IniFile file;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t eol = text.find('\n', start);
    std::string_view raw = text.substr(
        start, eol == std::string_view::npos ? text.size() - start : eol - start);
    start = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    const std::string_view line = trim(strip_comment(raw));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        throw IniError(line_no, "malformed section header '" + std::string(line) + "'");
      }
      IniSection section;
      section.name = std::string(trim(line.substr(1, line.size() - 2)));
      section.line = line_no;
      if (section.name.empty()) throw IniError(line_no, "empty section name");
      file.sections.push_back(std::move(section));
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw IniError(line_no, "expected 'key = value', got '" + std::string(line) + "'");
    }
    if (file.sections.empty()) {
      throw IniError(line_no, "entry before any [section]");
    }
    IniEntry entry;
    entry.key = std::string(trim(line.substr(0, eq)));
    entry.value = std::string(trim(line.substr(eq + 1)));
    entry.line = line_no;
    if (entry.key.empty()) throw IniError(line_no, "empty key");
    file.sections.back().entries.push_back(std::move(entry));
  }
  return file;
}

IniFile parse_ini_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_ini(buf.str());
}

}  // namespace profisched::config
