// serve/client.hpp — the blocking one-shot client under `profisched submit`.
//
// The protocol is strictly request/response, one frame each way, so the
// client keeps no connection state: every call() opens a fresh AF_UNIX
// connection, sends one framed request, reads one framed response, and
// closes. Connect retries (for the daemon-still-starting race in CI) are the
// only policy it carries; interpreting `ok`/`err` payloads is the caller's
// job.
#pragma once

#include <string>
#include <string_view>

namespace profisched::serve {

class Client {
 public:
  explicit Client(std::string socket_path) : socket_path_(std::move(socket_path)) {}

  /// Round-trip one request payload; returns the response payload. Retries
  /// the connect for up to `connect_retry_ms` (0 = one attempt) in 50 ms
  /// steps. Throws std::runtime_error on connect, send, or framing failures.
  [[nodiscard]] std::string call(std::string_view payload, int connect_retry_ms = 0) const;

  [[nodiscard]] const std::string& socket_path() const noexcept { return socket_path_; }

 private:
  std::string socket_path_;
};

}  // namespace profisched::serve
