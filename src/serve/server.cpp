#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "engine/aggregate.hpp"
#include "engine/detail/cli_parse.hpp"
#include "engine/detail/hash.hpp"
#include "engine/sim_aggregate.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "opt/opt_aggregate.hpp"

namespace profisched::serve {

namespace {

bool write_output_file(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary);
  os << content;
  os.flush();  // surface ENOSPC-style errors now, not in the destructor
  return os.good();
}

/// Send one framed payload; loops over partial sends. MSG_NOSIGNAL keeps a
/// client that hung up from killing the daemon with SIGPIPE.
bool send_frame(int fd, std::string_view payload) {
  const std::string wire = encode_frame(payload);
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(ServeOptions opts) : opts_(std::move(opts)), runner_(opts_.threads) {
  sockaddr_un addr{};
  if (opts_.socket_path.empty() || opts_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path must be 1.." +
                             std::to_string(sizeof(addr.sun_path) - 1) + " bytes, got '" +
                             opts_.socket_path + "'");
  }
  if (!opts_.cache_dir.empty()) {
    cache_ = std::make_unique<dist::ResultCache>(opts_.cache_dir);
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("serve: socket(): ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(), opts_.socket_path.size() + 1);
  ::unlink(opts_.socket_path.c_str());  // replace a stale socket from a dead daemon
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot listen on '" + opts_.socket_path + "': " + why);
  }

  // The daemon is resident: observability is always on, so STATS and per-job
  // --metrics sidecars have real series to report. Sequential scheduling
  // keeps the phase.* timers valid sub-intervals of the uptime this records.
  obs::set_enabled(true);
  t0_ns_ = obs::now_ns();
}

Server::~Server() {
  reap_connections(/*all=*/true);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(opts_.socket_path.c_str());
  }
}

double Server::uptime_s() const {
  return static_cast<double>(obs::now_ns() - t0_ns_) / 1e9;
}

void Server::reap_connections(bool all) {
  std::vector<std::thread> joinable;
  {
    std::lock_guard lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (all || it->done->load(std::memory_order_acquire)) {
        joinable.push_back(std::move(it->thread));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::thread& t : joinable) t.join();
}

std::uint64_t Server::run() {
  std::thread scheduler(&Server::scheduler_loop, this);

  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (rc <= 0) continue;  // timeout or EINTR; re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    obs::Registry::global().counter("serve.connections").add(1);
    reap_connections(/*all=*/false);
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard lock(conns_mu_);
    conns_.push_back(Conn{std::thread(&Server::handle_connection, this, fd, done), done});
  }

  // SHUTDOWN already closed the queue (cancelling queued jobs and raising
  // the running one's flag); wait for the scheduler to yield, then for the
  // connection that delivered the shutdown (and any stragglers) to finish.
  scheduler.join();
  reap_connections(/*all=*/true);

  std::uint64_t done_jobs = 0;
  for (const JobInfo& info : queue_.snapshot()) {
    if (info.state == JobState::Done) ++done_jobs;
  }
  return done_jobs;
}

void Server::handle_connection(int fd, std::shared_ptr<std::atomic<bool>> done) {
  std::string buffer;
  char chunk[64 * 1024];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    for (;;) {
      const FrameDecode frame = decode_frame(buffer);
      if (frame.status == FrameDecode::Status::NeedMore) break;
      if (frame.status == FrameDecode::Status::Error) {
        // The stream is unsynced past a framing violation: answer and hang up.
        send_frame(fd, "err " + frame.error);
        open = false;
        break;
      }
      buffer.erase(0, frame.consumed);
      if (!send_frame(fd, handle_request(frame.payload))) {
        open = false;
        break;
      }
    }
  }
  ::close(fd);
  done->store(true, std::memory_order_release);
}

std::string Server::handle_request(const std::string& payload) {
  Request req;
  try {
    req = parse_request(payload);
  } catch (const std::exception& e) {
    return std::string("err ") + e.what();
  }
  switch (req.kind) {
    case Request::Kind::Submit:
      return handle_submit(std::move(req));
    case Request::Kind::Status:
      return handle_status();
    case Request::Kind::Cancel: {
      std::string error;
      if (!queue_.cancel(req.cancel_id, error)) return "err " + error;
      return "ok cancelled " + std::to_string(req.cancel_id);
    }
    case Request::Kind::Stats:
      return handle_stats();
    case Request::Kind::Shutdown:
      stop_.store(true, std::memory_order_release);
      queue_.close();
      return "ok bye";
  }
  return "err unreachable";
}

std::string Server::handle_submit(Request req) {
  if (stop_.load(std::memory_order_acquire) || queue_.closed()) {
    return "err server is shutting down";
  }
  // Same up-front destination validation the batch subcommands do, so a bad
  // path is a submit-time error, not a job that fails an hour later.
  std::string error;
  if (!req.csv_path.empty() && !engine::validate_cli_output_file(req.csv_path, "csv", error)) {
    return "err " + error;
  }
  if (!req.json_path.empty() && !engine::validate_cli_output_file(req.json_path, "json", error)) {
    return "err " + error;
  }
  if (!req.metrics_path.empty() &&
      !engine::validate_cli_output_file(req.metrics_path, "metrics", error)) {
    return "err " + error;
  }
  const std::uint64_t id = queue_.submit(std::move(req));
  obs::Registry::global().counter("serve.jobs_submitted").add(1);
  return "ok id " + std::to_string(id);
}

std::string Server::handle_status() {
  const std::vector<JobInfo> jobs = queue_.snapshot();
  std::string out = "ok jobs " + std::to_string(jobs.size());
  for (const JobInfo& j : jobs) {
    out += "\njob " + std::to_string(j.id) + ' ' + to_string(j.state) + ' ' +
           std::string(dist::to_string(j.mode)) + ' ' + std::to_string(j.priority);
    if (!j.detail.empty()) out += ' ' + j.detail;
  }
  return out;
}

obs::Manifest Server::stats_manifest() const {
  obs::Manifest m;
  m.run.subcommand = "serve";
  m.run.argv = opts_.argv;
  m.run.scenarios = queue_.scenarios_completed();
  m.run.threads = runner_.threads();
  m.run.elapsed_s = uptime_s();
  m.metrics = obs::Registry::global().snapshot();
  return m;
}

std::string Server::handle_stats() { return "ok stats\n" + obs::to_json(stats_manifest()); }

bool Server::emit_job_manifest(const Request& job) {
  obs::Manifest m;
  m.run.subcommand = "serve";
  m.run.argv = {"submit", std::string(dist::to_string(job.spec.mode))};
  const std::string spec_text = dist::serialize_spec(job.spec);
  m.run.config_digest =
      engine::detail::Fnv1a64().bytes(spec_text.data(), spec_text.size()).digest();
  m.run.scenarios = job.spec.total_scenarios();
  m.run.points = job.spec.spec.sweep.points.size();
  m.run.policies = job.spec.spec.sweep.policies.size();
  m.run.replications = job.spec.spec.replications;
  m.run.threads = runner_.threads();
  // Manifests use daemon uptime, not per-job time: the registry snapshot is
  // cumulative across jobs, and uptime is the bracket whose phase.* sums
  // metrics_check.py can actually validate.
  m.run.elapsed_s = uptime_s();
  m.metrics = obs::Registry::global().snapshot();
  return obs::write_manifest_file(job.metrics_path, m);
}

void Server::scheduler_loop() {
  while (auto claimed = queue_.claim_next()) {
    obs::set_progress_enabled(claimed->job.progress);
    JobOutcome outcome;
    try {
      outcome = run_job(*claimed);
    } catch (const std::exception& e) {
      outcome = JobOutcome{JobState::Failed, e.what()};
    }
    obs::set_progress_enabled(false);
    queue_.complete(claimed->id, outcome.state, outcome.detail);
    const char* counter = outcome.state == JobState::Done      ? "serve.jobs_done"
                          : outcome.state == JobState::Failed  ? "serve.jobs_failed"
                                                               : "serve.jobs_cancelled";
    obs::Registry::global().counter(counter).add(1);
  }
}

Server::JobOutcome Server::run_job(const JobQueue::Claimed& claimed) {
  const Request& job = claimed.job;
  std::vector<dist::ShardArtifact> artifacts;
  artifacts.reserve(job.oversplit);
  {
    // Same phase names as the batch CLI: phase.run brackets compute+merge,
    // phase.write brackets aggregation and file output.
    const obs::Span run_span(obs::Registry::global().timer("phase.run"));
    for (std::uint64_t k = 0; k < job.oversplit; ++k) {
      if (claimed.cancelled->load(std::memory_order_relaxed)) {
        return JobOutcome{JobState::Cancelled,
                          "cancelled at range boundary " + std::to_string(k) + "/" +
                              std::to_string(job.oversplit)};
      }
      artifacts.push_back(runner_.run(job.spec, k, job.oversplit, cache_.get()));
    }
  }
  const dist::MergedSweep merged = dist::merge_shards(artifacts);
  const engine::SimSweepSpec& spec = merged.spec.spec;

  // The exact reducer + serialization calls `profisched merge` makes — this
  // is the byte-identity guarantee, not a reimplementation of it.
  const auto emit_both = [&](const auto& table) {
    const obs::Span write_span(obs::Registry::global().timer("phase.write"));
    if (!job.csv_path.empty() && !write_output_file(job.csv_path, table.to_csv())) {
      throw std::runtime_error("cannot write " + job.csv_path);
    }
    if (!job.json_path.empty() && !write_output_file(job.json_path, table.to_json())) {
      throw std::runtime_error("cannot write " + job.json_path);
    }
  };

  JobOutcome outcome;
  outcome.detail = "completed " + std::to_string(merged.spec.total_scenarios()) +
                   " scenarios in " + std::to_string(job.oversplit) + " range" +
                   (job.oversplit == 1 ? "" : "s");
  switch (merged.spec.mode) {
    case dist::SweepMode::Analysis:
      emit_both(engine::aggregate(spec.sweep, merged.analysis));
      break;
    case dist::SweepMode::Sim:
      emit_both(engine::aggregate_sim(spec, merged.sim));
      break;
    case dist::SweepMode::Combined: {
      const engine::ConsistencyTable table = engine::consistency_table(spec, merged.combined);
      emit_both(table);
      // Same contract as the batch paths: a consistency violation falsifies
      // the analysis, so the job fails loudly — after writing its outputs,
      // exactly like `merge` does before exiting 1.
      if (table.accept_but_miss_count() > 0 || table.total_bound_violations() > 0) {
        outcome.state = JobState::Failed;
        outcome.detail =
            "bound violations: " + std::to_string(table.total_bound_violations()) +
            "; analysis-accepts-but-sim-misses: " +
            std::to_string(table.accept_but_miss_count());
      }
      break;
    }
    case dist::SweepMode::Optimize:
      emit_both(opt::aggregate_optimize(opt::OptimizeSpec{spec.sweep, merged.spec.optimize},
                                        merged.optimize));
      break;
  }

  if (!job.metrics_path.empty() && !emit_job_manifest(job)) {
    return JobOutcome{JobState::Failed, "cannot write " + job.metrics_path};
  }
  return outcome;
}

}  // namespace profisched::serve
