// serve/server.hpp — the resident sweep service behind `profisched serve`.
//
// One Server owns: an AF_UNIX listening socket, a poll-based accept loop,
// short-lived connection threads speaking the framed protocol, and a single
// scheduler thread that drains the JobQueue. A claimed job is executed as K
// oversplit contiguous shard ranges through dist::ShardRunner — the same
// ranged entry points `profisched shard` uses — merged with
// dist::merge_shards, and reduced by the same aggregate()/aggregate_sim()/
// consistency_table()/aggregate_optimize() calls the batch CLI makes. That
// shared path is the service's load-bearing guarantee: a served job's output
// files are byte-identical to the batch subcommand's (CI cmp-checks it).
//
// The scheduler is deliberately sequential (one job at a time; parallelism
// lives inside the job via the runner's thread pool). That choice is what
// keeps the daemon's `phase.*` timers valid sequential sub-intervals of its
// uptime, so every manifest it emits passes tools/metrics_check.py.
//
// Cancellation is cooperative at oversplit-range boundaries: CANCEL on a
// running job raises its flag, the executor notices between ranges, and no
// output file is written for a cancelled job — partial results never escape.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/result_cache.hpp"
#include "dist/shard.hpp"
#include "obs/manifest.hpp"
#include "serve/job_queue.hpp"
#include "serve/protocol.hpp"

namespace profisched::serve {

struct ServeOptions {
  std::string socket_path;       ///< AF_UNIX path; stale files are replaced
  unsigned threads = 0;          ///< per-job runner threads (0 = default)
  std::string cache_dir;         ///< optional shared ResultCache directory
  std::vector<std::string> argv; ///< provenance for the STATS manifest
};

class Server {
 public:
  /// Binds and listens (replacing any stale socket file) and opens the cache
  /// when configured. Throws std::runtime_error on socket or cache failures;
  /// after the constructor returns, clients may connect (the backlog queues
  /// them until run() starts accepting).
  explicit Server(ServeOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serve until a SHUTDOWN request: accepts connections, schedules jobs,
  /// then drains — cancels queued work, joins every thread, closes and
  /// unlinks the socket. Returns the number of jobs that reached Done.
  std::uint64_t run();

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return opts_.socket_path;
  }

  /// The daemon-wide manifest STATS serves — also what `serve --metrics`
  /// writes at exit. scenarios counts completed-job scenarios; elapsed_s is
  /// daemon uptime (the bracket the phase.* invariant is checked against).
  [[nodiscard]] obs::Manifest stats_manifest() const;

 private:
  void scheduler_loop();
  void handle_connection(int fd, std::shared_ptr<std::atomic<bool>> done);
  /// Map one request payload to one response payload (`ok ...` / `err ...`).
  [[nodiscard]] std::string handle_request(const std::string& payload);
  [[nodiscard]] std::string handle_submit(Request req);
  [[nodiscard]] std::string handle_status();
  [[nodiscard]] std::string handle_stats();

  /// Run one claimed job end to end; returns the terminal state it earned.
  struct JobOutcome {
    JobState state = JobState::Done;
    std::string detail;
  };
  [[nodiscard]] JobOutcome run_job(const JobQueue::Claimed& claimed);

  [[nodiscard]] double uptime_s() const;
  bool emit_job_manifest(const Request& job);

  /// Join connection threads whose handlers have finished (called from the
  /// accept loop so a long-lived daemon does not hoard dead threads).
  void reap_connections(bool all);

  ServeOptions opts_;
  int listen_fd_ = -1;
  std::unique_ptr<dist::ResultCache> cache_;
  dist::ShardRunner runner_;
  JobQueue queue_;
  std::atomic<bool> stop_{false};
  std::int64_t t0_ns_ = 0;  ///< daemon start; every manifest's elapsed_s base

  struct Conn {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex conns_mu_;
  std::vector<Conn> conns_;
};

}  // namespace profisched::serve
