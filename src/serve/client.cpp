#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "serve/protocol.hpp"

namespace profisched::serve {

namespace {

/// RAII socket so every throw path below closes the fd.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

std::string Client::call(std::string_view payload, int connect_retry_ms) const {
  sockaddr_un addr{};
  if (socket_path_.empty() || socket_path_.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("submit: socket path must be 1.." +
                             std::to_string(sizeof(addr.sun_path) - 1) + " bytes, got '" +
                             socket_path_ + "'");
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  Fd sock;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(connect_retry_ms);
  for (;;) {
    sock.fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (sock.fd < 0) {
      throw std::runtime_error(std::string("submit: socket(): ") + std::strerror(errno));
    }
    if (::connect(sock.fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      break;
    }
    const std::string why = std::strerror(errno);
    ::close(sock.fd);
    sock.fd = -1;
    if (std::chrono::steady_clock::now() >= deadline) {
      throw std::runtime_error("submit: cannot connect to '" + socket_path_ + "': " + why);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  const std::string wire = encode_frame(payload);
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(sock.fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      throw std::runtime_error("submit: connection lost while sending request");
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string buffer;
  char chunk[64 * 1024];
  for (;;) {
    const FrameDecode frame = decode_frame(buffer);
    if (frame.status == FrameDecode::Status::Ok) return frame.payload;
    if (frame.status == FrameDecode::Status::Error) {
      throw std::runtime_error("submit: malformed response frame: " + frame.error);
    }
    const ssize_t n = ::recv(sock.fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      throw std::runtime_error("submit: connection closed before a full response arrived");
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace profisched::serve
