// serve/protocol.hpp — the wire protocol of the resident sweep service.
//
// Transport framing is deliberately primitive: every message (request or
// response) is one frame, `<decimal byte count>\n<payload>`. The ASCII length
// prefix keeps the protocol debuggable with nc/socat while still letting
// payloads carry arbitrary bytes (spec blocks are multi-line text). The
// decoder is incremental — feed it whatever bytes have arrived and it answers
// "complete frame", "need more", or "protocol error" — and total: no input,
// however truncated, oversized, or junk-filled, may crash or hang it
// (tests/serve/test_protocol.cpp hammers exactly that contract).
//
// Request payloads are line-oriented, first line = verb:
//   submit <mode> <priority> <oversplit>   mode: sweep|simulate|combined|optimize
//     [csv <path>] [json <path>] [metrics <path>] [progress]
//     spec                                  then a dist::serialize_spec block,
//                                           verbatim, to end of payload
//   status
//   cancel <id>
//   stats
//   shutdown
// Responses start with `ok` or `err <message>`; see Server for the per-verb
// shapes. The spec block rides the same canonical serialization `profisched
// shard`/`merge` byte-compare, which is what lets a served job inherit the
// batch pipeline's byte-identity guarantee end to end.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "dist/shard.hpp"

namespace profisched::serve {

/// Frames above this are a protocol error, not an allocation: a hostile or
/// corrupt length prefix must not let one connection OOM the daemon.
constexpr std::size_t kMaxFrameBytes = 16 * 1024 * 1024;

/// Longest admissible length prefix, digits only ("16777216" is 8; leave
/// headroom so the limit trips on kMaxFrameBytes, not prefix length).
constexpr std::size_t kMaxLengthDigits = 10;

/// Wrap a payload in a wire frame. Throws std::invalid_argument above
/// kMaxFrameBytes (the encoder refuses to produce what the decoder rejects).
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// One step of incremental decoding over the bytes received so far.
struct FrameDecode {
  enum class Status {
    Ok,        ///< `payload` holds one complete frame; `consumed` bytes used
    NeedMore,  ///< prefix of a valid frame — read more bytes and retry
    Error,     ///< unrecoverable framing violation; `error` says why
  };
  Status status = Status::NeedMore;
  std::string payload;
  std::size_t consumed = 0;
  std::string error;
};

/// Decode the first frame of `buffer`. Never throws; garbage in, Error out.
[[nodiscard]] FrameDecode decode_frame(std::string_view buffer);

/// A parsed request payload (frame already stripped).
struct Request {
  enum class Kind { Submit, Status, Cancel, Stats, Shutdown };
  Kind kind = Kind::Status;

  // Submit fields.
  dist::ShardSpec spec;            ///< mode + full sweep spec (parsed block)
  std::uint64_t priority = 0;      ///< higher drains first
  std::uint64_t oversplit = 1;     ///< K contiguous ranges; cancel granularity
  std::string csv_path;            ///< server-side output destinations
  std::string json_path;
  std::string metrics_path;
  bool progress = false;

  std::uint64_t cancel_id = 0;  ///< Cancel only
};

/// Parse a request payload. Throws std::invalid_argument (with a message fit
/// for an `err` response) on any malformed input.
[[nodiscard]] Request parse_request(const std::string& payload);

/// Client-side builders — the exact inverse of parse_request.
[[nodiscard]] std::string format_submit(const Request& req);
[[nodiscard]] std::string format_status();
[[nodiscard]] std::string format_cancel(std::uint64_t id);
[[nodiscard]] std::string format_stats();
[[nodiscard]] std::string format_shutdown();

}  // namespace profisched::serve
