// serve/job_queue.hpp — the persistent work queue behind `profisched serve`.
//
// Connection threads submit and cancel; one scheduler thread claims jobs and
// reports completions. Ordering is (priority descending, id ascending): a
// higher --priority job always drains first, ties run in submission order.
// Cancellation is two-sided: a still-queued job flips straight to Cancelled,
// a running job gets its shared cancel flag raised and the executor honours
// it at the next oversplit-range boundary (that is the documented cancel
// granularity — ranges are never torn mid-way, so a partially-cancelled job
// can never emit output).
//
// The queue deliberately does NOT own threads or sockets; it is plain
// mutex+cv state, which is what makes it unit-testable without a daemon.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace profisched::serve {

enum class JobState { Queued, Running, Done, Failed, Cancelled };

[[nodiscard]] const char* to_string(JobState s);

/// A snapshot row for STATUS responses.
struct JobInfo {
  std::uint64_t id = 0;
  JobState state = JobState::Queued;
  dist::SweepMode mode = dist::SweepMode::Analysis;
  std::uint64_t priority = 0;
  std::string detail;  ///< failure/cancel reason or completion note
};

class JobQueue {
 public:
  /// Enqueue one submitted job; returns its id (monotonic from 1).
  std::uint64_t submit(Request job);

  /// Cancel a job. Queued jobs flip to Cancelled immediately; running jobs
  /// get their flag raised (state stays Running until the executor yields).
  /// Returns false with a diagnostic for unknown ids and jobs already in a
  /// terminal state.
  bool cancel(std::uint64_t id, std::string& error);

  /// Every job ever submitted, id order — STATUS shows the full lifecycle.
  [[nodiscard]] std::vector<JobInfo> snapshot() const;

  /// Fetch one job's info; nullopt for unknown ids.
  [[nodiscard]] std::optional<JobInfo> info(std::uint64_t id) const;

  /// What the scheduler claimed: the job plus its live cancel flag.
  struct Claimed {
    std::uint64_t id = 0;
    Request job;
    std::shared_ptr<std::atomic<bool>> cancelled;
  };

  /// Block until a queued job exists (returning the best one, now Running) or
  /// the queue is closed and drained (returning nullopt — the scheduler's
  /// exit signal).
  [[nodiscard]] std::optional<Claimed> claim_next();

  /// Report the outcome of a claimed job.
  void complete(std::uint64_t id, JobState terminal, std::string detail);

  /// Shutdown: cancel every queued job, raise the running job's flag, and
  /// wake the scheduler so claim_next() returns nullopt.
  void close();

  [[nodiscard]] bool closed() const;

  /// Total scenarios of every job that reached Done (feeds the STATS
  /// manifest's run.scenarios).
  [[nodiscard]] std::uint64_t scenarios_completed() const;

 private:
  struct Entry {
    Request job;
    JobState state = JobState::Queued;
    std::uint64_t priority = 0;
    std::string detail;
    std::shared_ptr<std::atomic<bool>> cancelled = std::make_shared<std::atomic<bool>>(false);
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;  // signalled on submit/close
  std::map<std::uint64_t, Entry> jobs_;  // id-ordered, also the STATUS order
  std::uint64_t next_id_ = 1;
  std::uint64_t scenarios_done_ = 0;
  bool closed_ = false;
};

}  // namespace profisched::serve
