#include "serve/job_queue.hpp"

namespace profisched::serve {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
  }
  return "?";
}

std::uint64_t JobQueue::submit(Request job) {
  std::uint64_t id = 0;
  {
    std::lock_guard lock(mu_);
    id = next_id_++;
    Entry e;
    e.priority = job.priority;
    e.job = std::move(job);
    jobs_.emplace(id, std::move(e));
  }
  cv_.notify_one();
  return id;
}

bool JobQueue::cancel(std::uint64_t id, std::string& error) {
  std::lock_guard lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    error = "unknown job " + std::to_string(id);
    return false;
  }
  Entry& e = it->second;
  switch (e.state) {
    case JobState::Queued:
      e.state = JobState::Cancelled;
      e.detail = "cancelled while queued";
      return true;
    case JobState::Running:
      // The executor checks the flag at every oversplit-range boundary; the
      // state flips to Cancelled when it yields.
      e.cancelled->store(true, std::memory_order_relaxed);
      return true;
    case JobState::Done:
    case JobState::Failed:
    case JobState::Cancelled:
      error = "job " + std::to_string(id) + " already " + to_string(e.state);
      return false;
  }
  return false;
}

std::vector<JobInfo> JobQueue::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<JobInfo> out;
  out.reserve(jobs_.size());
  for (const auto& [id, e] : jobs_) {
    out.push_back(JobInfo{id, e.state, e.job.spec.mode, e.priority, e.detail});
  }
  return out;
}

std::optional<JobInfo> JobQueue::info(std::uint64_t id) const {
  std::lock_guard lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const Entry& e = it->second;
  return JobInfo{id, e.state, e.job.spec.mode, e.priority, e.detail};
}

std::optional<JobQueue::Claimed> JobQueue::claim_next() {
  std::unique_lock lock(mu_);
  for (;;) {
    // Best queued job: highest priority, lowest id within it. The map is id-
    // ordered, so the first match at the top priority wins the FIFO tie.
    auto best = jobs_.end();
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (it->second.state != JobState::Queued) continue;
      if (best == jobs_.end() || it->second.priority > best->second.priority) best = it;
    }
    if (best != jobs_.end()) {
      best->second.state = JobState::Running;
      return Claimed{best->first, best->second.job, best->second.cancelled};
    }
    if (closed_) return std::nullopt;
    cv_.wait(lock);
  }
}

void JobQueue::complete(std::uint64_t id, JobState terminal, std::string detail) {
  std::lock_guard lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  it->second.state = terminal;
  it->second.detail = std::move(detail);
  if (terminal == JobState::Done) {
    scenarios_done_ += it->second.job.spec.total_scenarios();
  }
}

void JobQueue::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
    for (auto& [id, e] : jobs_) {
      if (e.state == JobState::Queued) {
        e.state = JobState::Cancelled;
        e.detail = "cancelled by shutdown";
      } else if (e.state == JobState::Running) {
        e.cancelled->store(true, std::memory_order_relaxed);
      }
    }
  }
  cv_.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

std::uint64_t JobQueue::scenarios_completed() const {
  std::lock_guard lock(mu_);
  return scenarios_done_;
}

}  // namespace profisched::serve
