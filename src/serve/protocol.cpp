#include "serve/protocol.hpp"

#include <stdexcept>
#include <vector>

#include "engine/detail/cli_parse.hpp"
#include "engine/detail/serialize.hpp"

namespace profisched::serve {

std::string encode_frame(std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::invalid_argument("serve frame: payload exceeds " +
                                std::to_string(kMaxFrameBytes) + " bytes");
  }
  std::string out = std::to_string(payload.size());
  out += '\n';
  out += payload;
  return out;
}

FrameDecode decode_frame(std::string_view buffer) {
  FrameDecode r;
  const auto error = [&](std::string msg) {
    r.status = FrameDecode::Status::Error;
    r.error = std::move(msg);
    return r;
  };

  const std::size_t nl = buffer.find('\n');
  if (nl == std::string_view::npos) {
    // No terminator yet: only a plausible prefix-in-progress may wait for
    // more bytes — junk or an over-long run of digits errors immediately so
    // a stream of garbage can never stall a reader forever.
    if (buffer.size() > kMaxLengthDigits) return error("length prefix too long");
    for (const char c : buffer) {
      if (c < '0' || c > '9') return error("length prefix is not a decimal number");
    }
    r.status = FrameDecode::Status::NeedMore;
    return r;
  }

  if (nl == 0) return error("empty length prefix");
  if (nl > kMaxLengthDigits) return error("length prefix too long");
  std::size_t len = 0;
  for (const char c : buffer.substr(0, nl)) {
    if (c < '0' || c > '9') return error("length prefix is not a decimal number");
    len = len * 10 + static_cast<std::size_t>(c - '0');
  }
  if (len > kMaxFrameBytes) {
    return error("frame of " + std::to_string(len) + " bytes exceeds the " +
                 std::to_string(kMaxFrameBytes) + "-byte cap");
  }
  if (buffer.size() - nl - 1 < len) {
    r.status = FrameDecode::Status::NeedMore;
    return r;
  }
  r.status = FrameDecode::Status::Ok;
  r.payload = std::string(buffer.substr(nl + 1, len));
  r.consumed = nl + 1 + len;
  return r;
}

namespace {

[[nodiscard]] dist::SweepMode parse_mode_word(const std::string& s) {
  if (s == "sweep") return dist::SweepMode::Analysis;
  if (s == "simulate") return dist::SweepMode::Sim;
  if (s == "combined") return dist::SweepMode::Combined;
  if (s == "optimize") return dist::SweepMode::Optimize;
  throw std::invalid_argument("submit: unknown mode '" + s +
                              "' (want sweep|simulate|combined|optimize)");
}

[[nodiscard]] const char* mode_word(dist::SweepMode m) {
  switch (m) {
    case dist::SweepMode::Analysis: return "sweep";
    case dist::SweepMode::Sim: return "simulate";
    case dist::SweepMode::Combined: return "combined";
    case dist::SweepMode::Optimize: return "optimize";
  }
  return "?";
}

/// Pop [start, next '\n') and advance start past the newline (or to npos-end).
[[nodiscard]] std::string next_line(const std::string& s, std::size_t& start) {
  const std::size_t nl = s.find('\n', start);
  const std::string line = s.substr(start, nl == std::string::npos ? nl : nl - start);
  start = nl == std::string::npos ? s.size() : nl + 1;
  return line;
}

[[nodiscard]] std::uint64_t parse_u64_field(const std::string& s, const char* what,
                                            std::uint64_t min, std::uint64_t max) {
  std::size_t v = 0;
  if (!engine::parse_cli_count(s, v, max) || v < min) {
    throw std::invalid_argument(std::string("submit: ") + what + " '" + s +
                                "' is not an integer in [" + std::to_string(min) + ", " +
                                std::to_string(max) + "]");
  }
  return v;
}

Request parse_submit(const std::string& payload, std::size_t pos,
                     const std::vector<std::string>& head) {
  if (head.size() != 4) {
    throw std::invalid_argument("submit: header needs 'submit <mode> <priority> <oversplit>'");
  }
  Request req;
  req.kind = Request::Kind::Submit;
  const dist::SweepMode mode = parse_mode_word(head[1]);
  req.priority = parse_u64_field(head[2], "priority", 0, 1'000'000);
  req.oversplit = parse_u64_field(head[3], "oversplit", 1, 1'000'000);

  // Optional output lines until the `spec` sentinel; the rest of the payload
  // is the canonical spec block, verbatim.
  for (;;) {
    if (pos >= payload.size()) throw std::invalid_argument("submit: missing 'spec' block");
    const std::string line = next_line(payload, pos);
    if (line == "spec") break;
    const std::size_t space = line.find(' ');
    const std::string key = line.substr(0, space);
    const std::string value = space == std::string::npos ? "" : line.substr(space + 1);
    if (key == "csv" && !value.empty()) req.csv_path = value;
    else if (key == "json" && !value.empty()) req.json_path = value;
    else if (key == "metrics" && !value.empty()) req.metrics_path = value;
    else if (key == "progress" && value.empty()) req.progress = true;
    else throw std::invalid_argument("submit: unknown job option line '" + line + "'");
  }
  req.spec = dist::parse_spec(payload.substr(pos));
  if (req.spec.mode != mode) {
    throw std::invalid_argument("submit: header mode disagrees with the spec block");
  }
  return req;
}

}  // namespace

Request parse_request(const std::string& payload) {
  std::size_t pos = 0;
  const std::string first = next_line(payload, pos);
  const std::vector<std::string> head = engine::detail::split(first, ' ');
  if (head.empty() || head[0].empty()) throw std::invalid_argument("empty request");
  const std::string& verb = head[0];

  const auto bare = [&](Request::Kind kind) {
    if (head.size() != 1 || pos < payload.size()) {
      throw std::invalid_argument(verb + ": takes no arguments");
    }
    Request req;
    req.kind = kind;
    return req;
  };

  if (verb == "submit") return parse_submit(payload, pos, head);
  if (verb == "status") return bare(Request::Kind::Status);
  if (verb == "stats") return bare(Request::Kind::Stats);
  if (verb == "shutdown") return bare(Request::Kind::Shutdown);
  if (verb == "cancel") {
    if (head.size() != 2 || pos < payload.size()) {
      throw std::invalid_argument("cancel: needs exactly one job id");
    }
    Request req;
    req.kind = Request::Kind::Cancel;
    req.cancel_id = parse_u64_field(head[1], "job id", 0, UINT64_MAX / 2);
    return req;
  }
  throw std::invalid_argument("unknown verb '" + verb + "'");
}

std::string format_submit(const Request& req) {
  std::string out = "submit ";
  out += mode_word(req.spec.mode);
  out += ' ' + std::to_string(req.priority) + ' ' + std::to_string(req.oversplit) + '\n';
  if (!req.csv_path.empty()) out += "csv " + req.csv_path + '\n';
  if (!req.json_path.empty()) out += "json " + req.json_path + '\n';
  if (!req.metrics_path.empty()) out += "metrics " + req.metrics_path + '\n';
  if (req.progress) out += "progress\n";
  out += "spec\n";
  out += dist::serialize_spec(req.spec);
  return out;
}

std::string format_status() { return "status"; }

std::string format_cancel(std::uint64_t id) { return "cancel " + std::to_string(id); }

std::string format_stats() { return "stats"; }

std::string format_shutdown() { return "shutdown"; }

}  // namespace profisched::serve
