#include "serve/serve_cli.hpp"

#include <utility>

#include "engine/sim_cli.hpp"
#include "opt/opt_cli.hpp"

namespace profisched::serve {

bool parse_serve_args(const std::vector<std::string>& args, ServeCli& out, std::string& error) {
  ServeCli cli;
  const auto fail = [&](const std::string& msg) {
    error = msg;
    return false;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto next = [&](std::string& v) {
      if (i + 1 >= args.size()) return false;
      v = args[++i];
      return true;
    };
    std::string v;
    if (arg == "--socket") {
      if (!next(v) || v.empty()) return fail("--socket needs a path");
      cli.socket_path = v;
    } else if (arg == "--threads") {
      std::size_t n = 0;
      if (!next(v) || !engine::parse_cli_count(v, n, 4096) || n == 0) {
        return fail("--threads needs an integer in [1, 4096]");
      }
      cli.threads = static_cast<unsigned>(n);
    } else if (arg == "--cache") {
      if (!next(v) || v.empty()) return fail("--cache needs a directory path");
      cli.cache_dir = v;
    } else if (arg == "--metrics") {
      if (!next(v) || v.empty()) return fail("--metrics needs a file path");
      cli.metrics_path = v;
    } else {
      return fail("unknown serve flag '" + arg + "'");
    }
  }
  if (cli.socket_path.empty()) return fail("--socket PATH is required");
  if (!engine::validate_cli_output_file(cli.socket_path, "--socket", error)) return false;
  if (!cli.cache_dir.empty() &&
      !engine::validate_cli_output_dir(cli.cache_dir, "--cache", error)) {
    return false;
  }
  if (!cli.metrics_path.empty() &&
      !engine::validate_cli_output_file(cli.metrics_path, "--metrics", error)) {
    return false;
  }
  out = std::move(cli);
  error.clear();
  return true;
}

bool parse_submit_args(const std::vector<std::string>& args, SubmitCli& out, std::string& error) {
  SubmitCli cli;
  cli.job.kind = Request::Kind::Submit;
  dist::SweepMode mode = dist::SweepMode::Analysis;
  engine::EngineOptions engine_opts;  // --method survives the delegated parse
  int actions = 0;
  const auto fail = [&](const std::string& msg) {
    error = msg;
    return false;
  };

  // First pass: peel off the submit-specific flags, leaving the sweep flags
  // for the shared batch parsers — the same delegation `shard` does, and for
  // the same reason: a submitted job must describe its sweep exactly as the
  // batch subcommand it is byte-compared against.
  std::vector<std::string> sweep_args;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto next = [&](std::string& v) {
      if (i + 1 >= args.size()) return false;
      v = args[++i];
      return true;
    };
    std::string v;
    if (arg == "--socket") {
      if (!next(v) || v.empty()) return fail("--socket needs a path");
      cli.socket_path = v;
    } else if (arg == "--mode") {
      if (!next(v)) return fail("--mode needs sweep|simulate|combined|optimize");
      if (v == "sweep") mode = dist::SweepMode::Analysis;
      else if (v == "simulate") mode = dist::SweepMode::Sim;
      else if (v == "combined") mode = dist::SweepMode::Combined;
      else if (v == "optimize") mode = dist::SweepMode::Optimize;
      else return fail("--mode needs sweep|simulate|combined|optimize");
    } else if (arg == "--priority") {
      std::size_t n = 0;
      if (!next(v) || !engine::parse_cli_count(v, n, 1'000'000)) {
        return fail("--priority needs an integer in [0, 1000000]");
      }
      cli.job.priority = n;
    } else if (arg == "--oversplit") {
      std::size_t n = 0;
      if (!next(v) || !engine::parse_cli_count(v, n, 1'000'000) || n == 0) {
        return fail("--oversplit needs an integer in [1, 1000000]");
      }
      cli.job.oversplit = n;
    } else if (arg == "--method") {
      if (!next(v)) return fail("--method needs paper|refined");
      if (v == "paper") engine_opts.method = profibus::TcycleMethod::PaperEq13;
      else if (v == "refined") engine_opts.method = profibus::TcycleMethod::PerMasterRefined;
      else return fail("--method needs paper|refined");
    } else if (arg == "--wait") {
      cli.wait = true;
    } else if (arg == "--status") {
      cli.action = SubmitCli::Action::Status;
      ++actions;
    } else if (arg == "--stats") {
      cli.action = SubmitCli::Action::Stats;
      ++actions;
    } else if (arg == "--shutdown") {
      cli.action = SubmitCli::Action::Shutdown;
      ++actions;
    } else if (arg == "--cancel") {
      std::size_t n = 0;
      if (!next(v) || !engine::parse_cli_count(v, n, 1'000'000'000) || n == 0) {
        return fail("--cancel needs a job id");
      }
      cli.action = SubmitCli::Action::Cancel;
      cli.cancel_id = n;
      ++actions;
    } else {
      sweep_args.push_back(arg);
    }
  }

  if (cli.socket_path.empty()) return fail("--socket PATH is required");
  if (actions > 1) {
    return fail("--status, --cancel, --stats, and --shutdown are mutually exclusive");
  }
  if (cli.action != SubmitCli::Action::Submit) {
    if (!sweep_args.empty()) {
      return fail("control action takes no sweep flags (got '" + sweep_args.front() + "')");
    }
    if (cli.wait) return fail("--wait only applies when submitting a job");
    out = std::move(cli);
    error.clear();
    return true;
  }

  if (mode == dist::SweepMode::Optimize) {
    opt::OptimizeCli opt_cli;
    if (!opt::parse_optimize_args(sweep_args, opt_cli, error)) return false;
    if (!opt_cli.cache_dir.empty() || opt_cli.threads != 0) {
      return fail("--cache/--threads are serve-side flags; pass them to `profisched serve`");
    }
    cli.job.spec.spec.sweep = std::move(opt_cli.spec.sweep);
    cli.job.spec.optimize = opt_cli.spec.options;
    cli.job.csv_path = std::move(opt_cli.csv_path);
    cli.job.json_path = std::move(opt_cli.json_path);
    cli.job.metrics_path = std::move(opt_cli.metrics_path);
    cli.job.progress = opt_cli.progress;
  } else {
    engine::SimSweepCli sweep_cli;
    if (!engine::parse_sim_sweep_args(sweep_args, sweep_cli, error,
                                      /*simulable_only=*/mode != dist::SweepMode::Analysis)) {
      return false;
    }
    if (!sweep_cli.cache_dir.empty() || sweep_cli.threads != 0) {
      return fail("--cache/--threads are serve-side flags; pass them to `profisched serve`");
    }
    if (sweep_cli.combined) return fail("use --mode combined instead of --combined");
    cli.job.spec.spec = std::move(sweep_cli.spec);
    cli.job.csv_path = std::move(sweep_cli.csv_path);
    cli.job.json_path = std::move(sweep_cli.json_path);
    cli.job.metrics_path = std::move(sweep_cli.metrics_path);
    cli.job.progress = sweep_cli.progress;
  }
  cli.job.spec.mode = mode;
  cli.job.spec.spec.sweep.engine = engine_opts;
  out = std::move(cli);
  error.clear();
  return true;
}

}  // namespace profisched::serve
