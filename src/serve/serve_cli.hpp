// serve/serve_cli.hpp — argument parsing for the `profisched serve` and
// `profisched submit` subcommands, kept in the library so the validation is
// unit-testable (tests/serve/test_serve_cli.cpp) exactly like the shard
// parser in dist/dist_cli.hpp.
//
// `submit` reuses the whole sweep-flag surface by the same two-pass
// delegation `shard` uses: peel the serve-specific flags, hand the rest to
// parse_sim_sweep_args / parse_optimize_args. That is what guarantees a
// submitted job describes its sweep byte-identically to the batch subcommand
// it will be cmp-compared against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace profisched::serve {

/// Everything `profisched serve` needs to come up.
struct ServeCli {
  std::string socket_path;   ///< --socket PATH (required)
  unsigned threads = 0;      ///< --threads N: per-job runner threads (0 = auto)
  std::string cache_dir;     ///< --cache DIR: shared result cache
  std::string metrics_path;  ///< --metrics FILE: final STATS manifest on exit
};

/// Parse the flags after `profisched serve`. Returns true on success; false
/// with a one-line diagnostic in `error` (never throws).
[[nodiscard]] bool parse_serve_args(const std::vector<std::string>& args, ServeCli& out,
                                    std::string& error);

/// Everything `profisched submit` needs: where the daemon lives plus either
/// one control action or one job to enqueue.
struct SubmitCli {
  enum class Action { Submit, Status, Cancel, Stats, Shutdown };

  std::string socket_path;  ///< --socket PATH (required)
  Action action = Action::Submit;
  std::uint64_t cancel_id = 0;  ///< --cancel ID
  bool wait = false;            ///< --wait: poll STATUS until the job settles
  Request job;                  ///< Action::Submit: the fully-built request
};

/// Parse the flags after `profisched submit`. Accepts --socket PATH
/// (required), one of the control actions --status | --cancel ID | --stats |
/// --shutdown (mutually exclusive, no sweep flags allowed alongside), or a
/// job: --mode sweep|simulate|combined|optimize (default sweep),
/// --priority N, --oversplit K, --method paper|refined, --wait, plus every
/// sweep/optimize flag of the matching batch subcommand (--csv/--json/
/// --metrics name server-side destinations). --threads and --cache are
/// serve-side flags and are rejected here with a pointer to `serve`.
[[nodiscard]] bool parse_submit_args(const std::vector<std::string>& args, SubmitCli& out,
                                     std::string& error);

}  // namespace profisched::serve
