#include "profibus/dm_analysis.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "profibus/detail/fp_message_rta.hpp"

namespace profisched::profibus {

NetworkAnalysis analyze_dm(const Network& net, TcycleMethod method, Formulation form, int fuel) {
  return analyze_dm(net, compute_timing(net, method), form, fuel);
}

NetworkAnalysis analyze_dm(const Network& net, const TimingMemo& memo, Formulation form,
                           int fuel, AnalysisScratch* scratch) {
  net.validate();
  NetworkAnalysis out;
  out.tcycle = memo.tcycle;
  out.schedulable = true;

  const std::vector<Ticks>& tc = memo.per_master;
  out.masters.resize(net.n_masters());

  std::vector<std::size_t> local_ranks;
  std::vector<std::size_t>& by_deadline = scratch != nullptr ? scratch->ranks : local_ranks;

  for (std::size_t k = 0; k < net.n_masters(); ++k) {
    const Master& master = net.masters[k];
    MasterAnalysis& ma = out.masters[k];
    ma.schedulable = true;
    ma.streams.resize(master.nh());

    by_deadline.resize(master.nh());
    std::iota(by_deadline.begin(), by_deadline.end(), std::size_t{0});
    std::ranges::stable_sort(by_deadline, [&](std::size_t a, std::size_t b) {
      return master.high_streams[a].D < master.high_streams[b].D;
    });

    for (std::size_t rank = 0; rank < by_deadline.size(); ++rank) {
      const std::size_t i = by_deadline[rank];
      ma.streams[i] = detail::fp_stream_response(master, by_deadline, rank, tc[k], form, fuel);
      if (!ma.streams[i].meets_deadline) ma.schedulable = false;
    }
    if (!ma.schedulable) out.schedulable = false;
  }
  return out;
}

}  // namespace profisched::profibus
