#include "profibus/priority_assignment.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "profibus/detail/fp_message_rta.hpp"
#include "profibus/token_ring_analysis.hpp"

namespace profisched::profibus {

NetworkOrders deadline_monotonic_orders(const Network& net) {
  NetworkOrders orders(net.n_masters());
  for (std::size_t k = 0; k < net.n_masters(); ++k) {
    StreamOrder& order = orders[k];
    order.resize(net.masters[k].nh());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::ranges::stable_sort(order, [&](std::size_t a, std::size_t b) {
      return net.masters[k].high_streams[a].D < net.masters[k].high_streams[b].D;
    });
  }
  return orders;
}

NetworkAnalysis analyze_fixed_priority(const Network& net, const NetworkOrders& orders,
                                       TcycleMethod method, Formulation form, int fuel) {
  return analyze_fixed_priority(net, orders, compute_timing(net, method), form, fuel);
}

NetworkAnalysis analyze_fixed_priority(const Network& net, const NetworkOrders& orders,
                                       const TimingMemo& memo, Formulation form, int fuel) {
  net.validate();
  if (orders.size() != net.n_masters()) {
    throw std::invalid_argument("analyze_fixed_priority: orders shape mismatch");
  }
  NetworkAnalysis out;
  out.tcycle = memo.tcycle;
  out.schedulable = true;

  const std::vector<Ticks>& tc = memo.per_master;
  out.masters.resize(net.n_masters());

  for (std::size_t k = 0; k < net.n_masters(); ++k) {
    const Master& master = net.masters[k];
    if (orders[k].size() != master.nh()) {
      throw std::invalid_argument("analyze_fixed_priority: order size mismatch at master " +
                                  master.name);
    }
    MasterAnalysis& ma = out.masters[k];
    ma.schedulable = true;
    ma.streams.resize(master.nh());
    for (std::size_t rank = 0; rank < orders[k].size(); ++rank) {
      const std::size_t i = orders[k][rank];
      ma.streams[i] = detail::fp_stream_response(master, orders[k], rank, tc[k], form, fuel);
      if (!ma.streams[i].meets_deadline) ma.schedulable = false;
    }
    if (!ma.schedulable) out.schedulable = false;
  }
  return out;
}

namespace {

/// OPA for one master: fill priority levels bottom-up. A stream is feasible
/// at the lowest remaining level iff its eq.-16 response — with all other
/// unassigned streams above it — meets its deadline. The response at a level
/// depends only on the *set* of higher-priority streams (the interference
/// sum is order-independent) and on whether lower-priority streams exist
/// (they do, except at the very bottom), so OPA's optimality applies.
std::optional<StreamOrder> opa_master(const Master& master, Ticks tcycle, Formulation form,
                                      int fuel) {
  std::vector<std::size_t> unassigned(master.nh());
  std::iota(unassigned.begin(), unassigned.end(), std::size_t{0});
  StreamOrder reversed;  // lowest level first

  while (!unassigned.empty()) {
    bool placed = false;
    for (std::size_t pos = 0; pos < unassigned.size(); ++pos) {
      // Evaluate candidate at the lowest remaining level: higher-priority
      // set = all other unassigned; lower-priority = already placed.
      std::vector<std::size_t> order = unassigned;
      std::rotate(order.begin() + static_cast<std::ptrdiff_t>(pos),
                  order.begin() + static_cast<std::ptrdiff_t>(pos) + 1, order.end());
      // `order` now has the candidate last among the unassigned; append the
      // already-placed (lower) streams below it so blocking applies.
      for (auto it = reversed.rbegin(); it != reversed.rend(); ++it) order.push_back(*it);
      const std::size_t rank = unassigned.size() - 1;
      const StreamResponse r = detail::fp_stream_response(master, order, rank, tcycle, form, fuel);
      if (r.meets_deadline) {
        reversed.push_back(order[rank]);
        unassigned.erase(std::ranges::find(unassigned, order[rank]));
        placed = true;
        break;
      }
    }
    if (!placed) return std::nullopt;
  }
  std::ranges::reverse(reversed);
  return reversed;
}

}  // namespace

std::optional<NetworkOrders> audsley_stream_orders(const Network& net, TcycleMethod method,
                                                   Formulation form, int fuel) {
  return audsley_stream_orders(net, compute_timing(net, method), form, fuel);
}

std::optional<NetworkOrders> audsley_stream_orders(const Network& net, const TimingMemo& memo,
                                                   Formulation form, int fuel) {
  net.validate();
  const std::vector<Ticks>& tc = memo.per_master;
  NetworkOrders out(net.n_masters());
  for (std::size_t k = 0; k < net.n_masters(); ++k) {
    auto order = opa_master(net.masters[k], tc[k], form, fuel);
    if (!order.has_value()) return std::nullopt;
    out[k] = std::move(*order);
  }
  return out;
}

}  // namespace profisched::profibus
