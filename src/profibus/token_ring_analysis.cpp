#include "profibus/token_ring_analysis.hpp"

#include <algorithm>

namespace profisched::profibus {

Ticks t_del(const Network& net) {
  Ticks sum = 0;
  for (const Master& m : net.masters) sum = sat_add(sum, m.longest_cycle());
  return sum;
}

Ticks t_cycle(const Network& net) { return sat_add(net.ttr, t_del(net)); }

std::vector<Ticks> t_cycle_per_master(const Network& net, TcycleMethod method) {
  const std::size_t n = net.n_masters();
  std::vector<Ticks> out(n, 0);

  if (method == TcycleMethod::PaperEq13) {
    const Ticks uniform = t_cycle(net);
    std::ranges::fill(out, uniform);
    return out;
  }

  // PerMasterRefined: lateness seen by master k = max over the overrunning
  // master j of [ C_M^j + Σ_{m between j and k (exclusive, ring order)}
  // Ch-max^m ]. The overrunner contributes its longest cycle (the overrun);
  // intermediate masters received a late token, so each contributes at most
  // its one guaranteed high-priority cycle.
  for (std::size_t k = 0; k < n; ++k) {
    Ticks worst = 0;
    for (std::size_t j = 0; j < n; ++j) {
      Ticks lateness = net.masters[j].longest_cycle();
      for (std::size_t m = (j + 1) % n; m != k; m = (m + 1) % n) {
        if (m == j) break;  // full loop (k == j case handled by ring walk)
        lateness = sat_add(lateness, net.masters[m].longest_high_cycle());
      }
      worst = std::max(worst, lateness);
    }
    out[k] = sat_add(net.ttr, worst);
  }
  return out;
}

TimingMemo compute_timing(const Network& net, TcycleMethod method) {
  TimingMemo memo;
  memo.method = method;
  memo.tdel = t_del(net);
  memo.tcycle = sat_add(net.ttr, memo.tdel);
  memo.per_master = t_cycle_per_master(net, method);
  return memo;
}

}  // namespace profisched::profibus
