// fault_model.hpp — the seeded fault-injection model the simulator executes
// and the degraded-mode analysis (fault_bounds.hpp) bounds.
//
// Tovar & Vasques' analysis assumes a steady-state token ring; this struct
// opens the failure axis the ROADMAP names: token loss with a bounded
// recovery delay, frame corruption with bounded retransmission, station
// leave/rejoin churn, and bursty (correlated) release phases. Every knob
// defaults to "off", and the simulator consults its dedicated fault RNG only
// behind `knob > 0` gates, so a default FaultModel leaves the event sequence,
// RNG draws, traces and serialized outputs of a run byte-identical to a
// fault-free build — the zero-fault golden guarantee.
//
// The models are deliberately *bounded* so degraded guarantees remain
// derivable (fault_bounds.hpp):
//  * token loss   — a lost pass is recovered out-of-band after exactly
//                   `token_recovery` ticks (GAP-list / claim-token recovery
//                   with a known worst case); the token always re-arrives, so
//                   each pass costs at most one recovery delay;
//  * corruption   — a corrupted message cycle is retransmitted, at most
//                   `max_retransmissions` times, and the final attempt always
//                   delivers: corruption delays completions (up to
//                   (1 + R) x the cycle length) but never drops them;
//  * churn        — a master other than 0 may leave the ring after a token
//                   visit and rejoins `churn_offline` ticks later; its
//                   pending requests are abandoned (counted as dropped, never
//                   as misses) and passing over it costs a slot time plus a
//                   re-addressed pass per skip. Master 0 never leaves, so the
//                   ring always has a token holder;
//  * bursts       — replications >= 1 blend their random per-stream release
//                   phases toward one network-wide phase draw, aligning
//                   releases across masters (any phasing is admissible to the
//                   analysis, so this needs no bound of its own).
#pragma once

#include <stdexcept>

#include "core/time_types.hpp"

namespace profisched::profibus {

/// All fault-injection knobs. Probabilities are per-event Bernoulli draws
/// from the simulator's dedicated fault RNG stream.
struct FaultModel {
  double token_loss_prob = 0.0;   ///< per token pass: pass suffers a loss
  Ticks token_recovery = 0;       ///< dead time per lost pass (bounded recovery)
  double corruption_prob = 0.0;   ///< per transmission attempt of a cycle
  int max_retransmissions = 2;    ///< bounded resends; the last always delivers
  double churn_prob = 0.0;        ///< per token visit of masters k >= 1: leave
  Ticks churn_offline = 0;        ///< ticks a churned master stays off the ring
  double burst_correlation = 0.0; ///< [0,1]: phase correlation across streams

  /// True when any knob can alter a run. Gating on this (and per-knob `> 0`
  /// checks) is what keeps zero-fault runs byte-identical.
  [[nodiscard]] bool any() const noexcept {
    return token_loss_prob > 0.0 || corruption_prob > 0.0 || churn_prob > 0.0 ||
           burst_correlation > 0.0;
  }

  void validate() const {
    const auto prob = [](double p, const char* what) {
      if (!(p >= 0.0 && p <= 1.0)) {
        throw std::invalid_argument(std::string("FaultModel: ") + what + " must be in [0, 1]");
      }
    };
    prob(token_loss_prob, "token_loss_prob");
    prob(corruption_prob, "corruption_prob");
    prob(churn_prob, "churn_prob");
    prob(burst_correlation, "burst_correlation");
    if (token_recovery < 0) {
      throw std::invalid_argument("FaultModel: token_recovery must be >= 0");
    }
    if (churn_offline < 0) throw std::invalid_argument("FaultModel: churn_offline must be >= 0");
    if (max_retransmissions < 0) {
      throw std::invalid_argument("FaultModel: max_retransmissions must be >= 0");
    }
  }
};

}  // namespace profisched::profibus
