// end_to_end.hpp — the end-to-end communication delay of §4.2:
//
//     E = g + Q + C + d
//
// g — worst-case generation delay: the sending application task's response
//     time up to (and including) placing the request in the AP queue. Under
//     the inheritance model of §4.1 this is also the stream's release jitter
//     J used inside the Q analyses (derive it with apptask/, or set it
//     directly).
// Q — worst-case queuing delay from AP-queue insertion to the start of the
//     message cycle, from the FCFS/DM/EDF analysis of choice.
// C — the message cycle itself: request + slave turnaround + response +
//     retries (the stream's Ch). The Q analyses bound Q + C together by
//     charging a full T_cycle for the final service slot, so the pair
//     (Q, C) is taken from a single analysis record to avoid double counting.
// d — delivery delay: processing of the response and hand-off to the
//     destination task (same host processor as the sender in PROFIBUS).
#pragma once

#include "profibus/fcfs_analysis.hpp"

namespace profisched::profibus {

/// Host-side delays bounding one stream's end-to-end path.
struct HostDelays {
  Ticks generation = 0;  ///< g: sender task worst-case response up to queuing
  Ticks delivery = 0;    ///< d: response processing + hand-off
};

/// End-to-end bound for one stream: E = g + R + d, where R = Q + C comes from
/// the analysis record (the analyses bound Q + C jointly via T_cycle).
[[nodiscard]] constexpr Ticks end_to_end_bound(const HostDelays& host, const StreamResponse& r) {
  if (r.response == kNoBound) return kNoBound;
  return sat_add(sat_add(host.generation, r.response), host.delivery);
}

/// Whole-network end-to-end verdict: every stream's E within its deadline.
/// `host[k][i]` pairs with stream i of master k; `deadline_is_end_to_end`
/// states whether stream deadlines bound E (true) or only the network part R
/// (false, the §3 interpretation).
[[nodiscard]] bool end_to_end_schedulable(const Network& net, const NetworkAnalysis& analysis,
                                          const std::vector<std::vector<HostDelays>>& host);

}  // namespace profisched::profibus
