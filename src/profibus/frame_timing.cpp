#include "profibus/frame_timing.hpp"

#include <algorithm>

namespace profisched::profibus {

Ticks worst_case_cycle_time(const BusParameters& bus, const MessageCycleSpec& spec) {
  bus.validate();
  spec.validate();
  const Ticks request = frame_time(bus, spec.request_chars);
  const Ticks response = frame_time(bus, spec.response_chars);
  const Ticks failed_attempt = sat_add(request, bus.t_sl);

  // Success after max_retry failed attempts…
  Ticks success_path = sat_add(sat_add(sat_add(request, bus.max_tsdr), response), bus.t_id1);
  for (int r = 0; r < bus.max_retry; ++r) success_path = sat_add(success_path, failed_attempt);
  // …or every attempt (original + max_retry retries) timing out. Whichever is
  // longer bounds the cycle: with a short response frame the all-timeout path
  // can dominate (t_sl > max_tsdr + response).
  Ticks all_fail_path = bus.t_id1;
  for (int r = 0; r < bus.max_retry + 1; ++r) all_fail_path = sat_add(all_fail_path, failed_attempt);

  return std::max(success_path, all_fail_path);
}

Ticks best_case_cycle_time(const BusParameters& bus, const MessageCycleSpec& spec) {
  bus.validate();
  spec.validate();
  return sat_add(sat_add(sat_add(frame_time(bus, spec.request_chars), bus.min_tsdr),
                         frame_time(bus, spec.response_chars)),
                 bus.t_id1);
}

Ticks token_pass_time(const BusParameters& bus) {
  return sat_add(frame_time(bus, bus.token_frame_chars), bus.t_id1);
}

}  // namespace profisched::profibus
