// ttr_setting.hpp — choosing the network-wide T_TR parameter (§3.4, eq. 15).
//
// Rearranging the schedulability condition Dh_i^k >= nh^k (T_TR + T_del):
//
//     0 < T_TR <= min_{master k, stream i} ( Dh_i^k / nh^k − T_del )    (15)
//
// T_del does not depend on T_TR (it is a pure function of message-cycle
// lengths), so the feasible T_TR range — if non-empty — can be computed in
// one pass. A larger T_TR admits more low-priority (background) bandwidth per
// rotation, so the *maximum* feasible value is the interesting one.
#pragma once

#include <optional>

#include "profibus/token_ring_analysis.hpp"

namespace profisched::profibus {

/// Feasible T_TR range for the FCFS analysis.
struct TtrRange {
  Ticks min = 1;  ///< smallest usable value (must at least cover ring latency)
  Ticks max = 0;  ///< eq.-15 upper bound
  [[nodiscard]] bool feasible() const noexcept { return max >= min; }
};

/// Evaluate eq. 15. `min_ttr` lets the caller impose a floor (e.g. the ring
/// latency τ plus one message cycle, without which the token starves);
/// by default the floor is the network's ring latency + 1.
[[nodiscard]] TtrRange ttr_range_fcfs(const Network& net, std::optional<Ticks> min_ttr = {});

/// The largest T_TR satisfying eq. 15, or std::nullopt when the stream set is
/// unschedulable under FCFS for *any* T_TR.
[[nodiscard]] std::optional<Ticks> max_schedulable_ttr(const Network& net,
                                                       std::optional<Ticks> min_ttr = {});

}  // namespace profisched::profibus
