// dispatching.hpp — the three AP-level dispatching policies the paper
// compares, plus a single entry point that routes to the corresponding
// analysis. Shared by the analyses, the simulator and the benches.
#pragma once

#include <string_view>

#include "profibus/dm_analysis.hpp"
#include "profibus/edf_analysis.hpp"

namespace profisched::profibus {

/// How pending high-priority requests are ordered at a master.
enum class ApPolicy {
  Fcfs,  ///< stock PROFIBUS: stack FCFS queue, no AP reordering (§3)
  Dm,    ///< AP priority queue ordered by relative deadline (§4, eq. 16)
  Edf,   ///< AP priority queue ordered by absolute deadline (§4, eqs. 17–18)
};

[[nodiscard]] constexpr std::string_view to_string(ApPolicy p) {
  switch (p) {
    case ApPolicy::Fcfs: return "FCFS";
    case ApPolicy::Dm: return "DM";
    case ApPolicy::Edf: return "EDF";
  }
  return "?";
}

/// Run the worst-case response-time analysis for `policy` over the network.
[[nodiscard]] inline NetworkAnalysis analyze_network(const Network& net, ApPolicy policy,
                                                     TcycleMethod method = TcycleMethod::PaperEq13) {
  switch (policy) {
    case ApPolicy::Fcfs: return analyze_fcfs(net, method);
    case ApPolicy::Dm: return analyze_dm(net, method);
    case ApPolicy::Edf: return analyze_edf(net, method);
  }
  return {};
}

}  // namespace profisched::profibus
