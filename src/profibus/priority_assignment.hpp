// priority_assignment.hpp — fixed-priority assignment for the AP-level
// message queue, beyond deadline-monotonic.
//
// Eq. 16 analyses the DM order, but the underlying analysis (non-preemptive,
// blocking-afflicted) is one for which DM is NOT optimal: Audsley's optimal
// priority assignment (OPA) can schedule stream sets DM cannot, because the
// level-i verdict depends only on *which* streams sit above/below, not on
// their relative order — exactly OPA's applicability condition. This module
// generalizes dm_analysis.hpp to an arbitrary priority order and provides the
// OPA search, giving the library the complete fixed-priority story at the
// message level (and bench_e14 the DM-vs-OPA ablation).
#pragma once

#include <optional>
#include <vector>

#include "core/formulation.hpp"
#include "profibus/fcfs_analysis.hpp"

namespace profisched::profibus {

/// Priority order of one master's high-priority streams: a permutation of
/// stream indices, highest priority first.
using StreamOrder = std::vector<std::size_t>;

/// Per-master orders for a whole network (indexed like Network::masters).
using NetworkOrders = std::vector<StreamOrder>;

/// DM orders for every master (ties by index) — what analyze_dm uses.
[[nodiscard]] NetworkOrders deadline_monotonic_orders(const Network& net);

/// Eq.-16 analysis under an arbitrary fixed priority order per master.
/// `orders[k]` must be a permutation of master k's stream indices.
[[nodiscard]] NetworkAnalysis analyze_fixed_priority(
    const Network& net, const NetworkOrders& orders,
    TcycleMethod method = TcycleMethod::PaperEq13,
    Formulation form = Formulation::PaperLiteral, int fuel = 1 << 16);

/// Memoized form: reuse a precomputed TimingMemo (see compute_timing).
[[nodiscard]] NetworkAnalysis analyze_fixed_priority(
    const Network& net, const NetworkOrders& orders, const TimingMemo& memo,
    Formulation form = Formulation::PaperLiteral, int fuel = 1 << 16);

/// Audsley's OPA at the message level: per master, find some priority order
/// under which every stream meets its deadline (eq.-16 analysis), bottom-up.
/// Returns std::nullopt if no fixed order schedules some master.
[[nodiscard]] std::optional<NetworkOrders> audsley_stream_orders(
    const Network& net, TcycleMethod method = TcycleMethod::PaperEq13,
    Formulation form = Formulation::PaperLiteral, int fuel = 1 << 16);

/// Memoized form: reuse a precomputed TimingMemo (see compute_timing).
[[nodiscard]] std::optional<NetworkOrders> audsley_stream_orders(
    const Network& net, const TimingMemo& memo,
    Formulation form = Formulation::PaperLiteral, int fuel = 1 << 16);

}  // namespace profisched::profibus
