// network.hpp — the PROFIBUS network model the analyses operate on: message
// streams, masters, and the logical ring (§3 of the paper).
//
// A message stream Sh_i^k is "a temporal sequence of message cycles related,
// for instance, with the reading of a process sensor or the updating of a
// process actuator" (paper footnote 6). High-priority streams carry the
// real-time traffic the schedulability analysis guarantees; low-priority
// streams model the background traffic that contributes blocking (Cl^k in
// eq. 13).
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/time_types.hpp"
#include "profibus/frame_timing.hpp"

namespace profisched::profibus {

/// One message stream of a master. Mirrors the paper's (Ch, Dh, Th, J)
/// characterisation; Ch is the *worst-case* message-cycle length including
/// retries (use worst_case_cycle_time to derive it from frame sizes).
struct MessageStream {
  Ticks Ch = 0;  ///< worst-case message cycle length
  Ticks D = 0;   ///< relative deadline of each request
  Ticks T = 0;   ///< period / minimum inter-arrival of requests
  Ticks J = 0;   ///< release jitter inherited from the generating task (§4.1)
  std::string name;

  void validate() const {
    if (Ch < 1) throw std::invalid_argument("MessageStream " + name + ": Ch must be >= 1");
    if (D < 1) throw std::invalid_argument("MessageStream " + name + ": D must be >= 1");
    if (T < 1) throw std::invalid_argument("MessageStream " + name + ": T must be >= 1");
    if (J < 0) throw std::invalid_argument("MessageStream " + name + ": J must be >= 0");
  }
};

/// One master station: its high-priority (guaranteed) streams and the longest
/// low-priority message cycle it may emit (Cl^k). Low-priority traffic needs
/// no deadlines — only its maximum cycle length matters to the analysis.
struct Master {
  std::vector<MessageStream> high_streams;
  Ticks longest_low_cycle = 0;  ///< Cl^k; 0 if the master sends no LP traffic
  std::string name;

  /// nh^k — the number of high-priority streams (paper §3.2).
  [[nodiscard]] std::size_t nh() const noexcept { return high_streams.size(); }

  /// max_i Ch_i^k (0 when the master has no HP streams).
  [[nodiscard]] Ticks longest_high_cycle() const;

  /// C_M^k = max{ max_i Ch_i^k, Cl^k } (paper, below eq. 13).
  [[nodiscard]] Ticks longest_cycle() const;

  void validate() const;
};

/// The whole network: the logical ring of masters (index order = ring order),
/// the shared bus parameters, and the target token rotation time T_TR common
/// to all masters.
struct Network {
  std::vector<Master> masters;
  BusParameters bus;
  Ticks ttr = 0;  ///< T_TR, the PROFIBUS target rotation time parameter

  [[nodiscard]] std::size_t n_masters() const noexcept { return masters.size(); }

  /// Total number of HP streams across the ring.
  [[nodiscard]] std::size_t total_high_streams() const;

  /// Σ_k (token pass + per-master protocol overhead): the paper's τ term
  /// (footnote 7, "ring latency and other protocol and network overheads").
  [[nodiscard]] Ticks ring_latency() const;

  void validate() const;
};

}  // namespace profisched::profibus
