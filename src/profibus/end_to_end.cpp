#include "profibus/end_to_end.hpp"

#include <stdexcept>

namespace profisched::profibus {

bool end_to_end_schedulable(const Network& net, const NetworkAnalysis& analysis,
                            const std::vector<std::vector<HostDelays>>& host) {
  if (host.size() != net.n_masters() || analysis.masters.size() != net.n_masters()) {
    throw std::invalid_argument("end_to_end_schedulable: shape mismatch with network");
  }
  for (std::size_t k = 0; k < net.n_masters(); ++k) {
    const Master& master = net.masters[k];
    if (host[k].size() != master.nh() || analysis.masters[k].streams.size() != master.nh()) {
      throw std::invalid_argument("end_to_end_schedulable: shape mismatch at master " +
                                  master.name);
    }
    for (std::size_t i = 0; i < master.nh(); ++i) {
      const Ticks e = end_to_end_bound(host[k][i], analysis.masters[k].streams[i]);
      if (e == kNoBound || e > master.high_streams[i].D) return false;
    }
  }
  return true;
}

}  // namespace profisched::profibus
