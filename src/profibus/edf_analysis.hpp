// edf_analysis.hpp — worst-case message response time with an EDF-ordered
// priority queue at the application-process level (§4.3, paper eqs. 17–18).
//
// Same architecture as dm_analysis.hpp, but the AP queue is ordered by the
// earliness of each request's absolute deadline. The paper adapts the
// non-preemptive EDF response-time analysis (eqs. 9–10) by replacing every C
// with T_cycle — one token visit serves one request — and the blocking max
// with T*_cycle:
//
//   R_i(a) = max{ T_cycle, T_cycle + L_i(a) − a }                      (17)
//   L_i^{m+1}(a) = T*_cycle(a) + W_i(a, L_i^m(a)) + ⌊a/T_i⌋·T_cycle
//   W_i(a, t)  = Σ_{j≠i, D_j−J_j <= a+D_i}
//                 min{ 1 + ⌊(t+J_j)/T_j⌋,
//                      1 + ⌊(a + D_i − D_j + J_j)/T_j⌋ } · T_cycle      (18)
//
// with T*_cycle(a) = T_cycle when some other stream can have a pending
// request with a *later* absolute deadline (∃ j : D_j − J_j > a + D_i) —
// that request may occupy the one-deep stack queue when ours arrives — and 0
// otherwise (the EDF analogue of eq. 16's lowest-priority exception).
//
// Candidate offsets follow eq. 10's set, shifted by jitter:
// a ∈ ∪_j { k·T_j + D_j − J_j − D_i } ∩ [0, L], with L the synchronous busy
// period of the master's streams under one-T_cycle-per-request service. If
// Σ_i T_cycle/T_i >= 1 for a master, its busy period is unbounded and the
// master is reported unschedulable under the EDF queue (token visits cannot
// keep up with request arrivals).
//
// As with DM, R_i is measured from AP-queue insertion; g/J_i belong to the
// end-to-end bound of §4.2.
#pragma once

#include "profibus/fcfs_analysis.hpp"

namespace profisched::profibus {

/// Per-stream extension of StreamResponse with the critical offset found.
struct EdfStreamDetail {
  Ticks critical_offset = 0;
  std::size_t offsets_examined = 0;
};

/// EDF-queue analysis of the whole network (eqs. 17–18).
/// `detail`, when non-null, receives per-master per-stream diagnostics with
/// the same indexing as the returned analysis.
[[nodiscard]] NetworkAnalysis analyze_edf(
    const Network& net, TcycleMethod method = TcycleMethod::PaperEq13,
    std::vector<std::vector<EdfStreamDetail>>* detail = nullptr, int fuel = 1 << 16);

/// Per-master synchronous busy period under one-T_cycle-per-request service
/// (the offset-candidate horizon of eq. 10): L = Σ_i ⌈(L + J_i)/T_i⌉·T_cycle.
/// kNoBound where the iteration diverges (token supply < request demand).
[[nodiscard]] std::vector<Ticks> edf_busy_periods(const Network& net, const TimingMemo& memo,
                                                  int fuel = 1 << 16);

/// Memoized form: reuse a precomputed TimingMemo — and, when `busy` is
/// non-null, precomputed edf_busy_periods — instead of re-deriving them.
/// `scratch`, when non-null, supplies the candidate-offset buffer (see
/// AnalysisScratch).
[[nodiscard]] NetworkAnalysis analyze_edf(
    const Network& net, const TimingMemo& memo,
    std::vector<std::vector<EdfStreamDetail>>* detail = nullptr, int fuel = 1 << 16,
    const std::vector<Ticks>* busy = nullptr, AnalysisScratch* scratch = nullptr);

}  // namespace profisched::profibus
