#include "profibus/ttr_setting.hpp"

#include <algorithm>

namespace profisched::profibus {

TtrRange ttr_range_fcfs(const Network& net, std::optional<Ticks> min_ttr) {
  TtrRange out;
  out.min = min_ttr.value_or(sat_add(net.ring_latency(), 1));
  const Ticks tdel = t_del(net);

  Ticks upper = kNoBound;
  for (const Master& master : net.masters) {
    const Ticks nh = static_cast<Ticks>(master.nh());
    if (nh == 0) continue;
    for (const MessageStream& s : master.high_streams) {
      // T_TR <= Dh/nh − T_del, integer-safe: floor division is the tight bound
      // because T_cycle multiplies back by nh.
      upper = std::min(upper, floor_div(s.D, nh) - tdel);
    }
  }
  out.max = upper == kNoBound ? kNoBound : upper;
  return out;
}

std::optional<Ticks> max_schedulable_ttr(const Network& net, std::optional<Ticks> min_ttr) {
  const TtrRange range = ttr_range_fcfs(net, min_ttr);
  if (!range.feasible()) return std::nullopt;
  return range.max;
}

}  // namespace profisched::profibus
