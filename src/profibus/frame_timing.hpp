// frame_timing.hpp — PROFIBUS (DIN 19245) frame and message-cycle timing.
//
// One tick = one bit-time on the bus. PROFIBUS transmits 11-bit UART
// characters (start + 8 data + even parity + stop). A message cycle (§3.1 of
// the paper, footnote 2) is the master's action frame plus the responder's
// immediate acknowledgement/response frame, separated by the slave's station
// delay (turnaround), and followed by the master's idle time before the next
// transmission. If the response does not arrive within the slot time T_SL the
// master retries, up to max_retry times — the paper requires the worst-case
// cycle length Ch to include "request, response, turnaround time and maximum
// allowable retries".
#pragma once

#include <stdexcept>

#include "core/time_types.hpp"

namespace profisched::profibus {

using profisched::Ticks;

/// Physical/link-layer parameters shared by every station on the segment.
/// Defaults follow common DP practice at 500 kbit/s-class segments; all
/// values are in bit-times so they scale with baud rate automatically.
struct BusParameters {
  Ticks bits_per_char = 11;  ///< UART character length on the wire
  Ticks t_id1 = 37;          ///< idle time after an acknowledgement / response
  Ticks t_sl = 100;          ///< slot time: response timeout before a retry
  Ticks max_tsdr = 60;       ///< max responder turnaround (station delay)
  Ticks min_tsdr = 11;       ///< min responder turnaround
  int max_retry = 1;         ///< retries allowed per message cycle
  Ticks token_frame_chars = 3;  ///< SD4 token frame: SD + DA + SA

  void validate() const {
    if (bits_per_char < 1 || t_id1 < 0 || t_sl < 1 || max_tsdr < 0 || min_tsdr < 0 ||
        max_retry < 0 || token_frame_chars < 1) {
      throw std::invalid_argument("BusParameters: negative or zero field");
    }
    if (min_tsdr > max_tsdr) throw std::invalid_argument("BusParameters: min_tsdr > max_tsdr");
    if (t_sl <= max_tsdr) {
      throw std::invalid_argument("BusParameters: slot time must exceed max_tsdr "
                                  "(otherwise every cycle times out)");
    }
  }
};

/// Shape of one request/response exchange, in characters on the wire.
struct MessageCycleSpec {
  Ticks request_chars = 0;   ///< action frame length (header + user data)
  Ticks response_chars = 0;  ///< response frame length

  void validate() const {
    if (request_chars < 1 || response_chars < 1) {
      throw std::invalid_argument("MessageCycleSpec: frames must be at least one char");
    }
  }
};

/// Wire time of a frame of `chars` characters.
[[nodiscard]] constexpr Ticks frame_time(const BusParameters& bus, Ticks chars) {
  return sat_mul(chars, bus.bits_per_char);
}

/// Worst-case message-cycle length Ch (paper §3.2): max_retry failed attempts
/// (request + slot-time timeout each) followed by one successful exchange
/// (request + max turnaround + response), plus the idle time closing the
/// cycle.
[[nodiscard]] Ticks worst_case_cycle_time(const BusParameters& bus, const MessageCycleSpec& spec);

/// Best-case message-cycle length (no retries, minimum turnaround) — used by
/// the simulator when sampling actual cycle durations.
[[nodiscard]] Ticks best_case_cycle_time(const BusParameters& bus, const MessageCycleSpec& spec);

/// Time to pass the token to the ring successor (token frame + idle).
[[nodiscard]] Ticks token_pass_time(const BusParameters& bus);

}  // namespace profisched::profibus
