// token_ring_analysis.hpp — the timed-token cycle-time analysis of §3.3
// (paper eqs. 13–14, after Tovar & Vasques [13,14]).
//
// PROFIBUS gives no per-master synchronous bandwidth: when the token is late
// a master may still transmit one high-priority message cycle, and T_TH is
// only tested at message-cycle *starts*, so a cycle started just before
// expiry overruns it. The worst-case token lateness T_del therefore composes
// one T_TH overrun (the longest cycle of the overrunning master) with one
// message cycle from every following master that received the late token:
//
//     T_del = Σ_{k=1..n} C_M^k,     C_M^k = max{ max_i Ch_i^k, Cl^k }   (13)
//     T_cycle = T_TR + T_del                                            (14)
//
// The PerMasterRefined method implements the per-position sharpening in the
// spirit of [14]: the lateness *as seen by master k* is maximised over which
// master j caused the overrun, counting the full C_M^j for the overrunner but
// only one *high-priority* cycle (Ch-max) for the masters strictly between j
// and k on the ring — those can only have used the late token for their one
// guaranteed HP message.
#pragma once

#include <vector>

#include "profibus/network.hpp"

namespace profisched::profibus {

enum class TcycleMethod {
  PaperEq13,         ///< uniform bound, eqs. 13–14
  PerMasterRefined,  ///< per-position refinement (see header comment)
};

/// Worst-case token lateness T_del (eq. 13).
[[nodiscard]] Ticks t_del(const Network& net);

/// Uniform upper bound on consecutive token arrivals at any master
/// (eq. 14): T_cycle = T_TR + T_del.
[[nodiscard]] Ticks t_cycle(const Network& net);

/// Per-master T_cycle. PaperEq13 returns the uniform eq.-14 value for every
/// master; PerMasterRefined returns a (never larger) position-aware bound.
[[nodiscard]] std::vector<Ticks> t_cycle_per_master(const Network& net,
                                                    TcycleMethod method = TcycleMethod::PaperEq13);

/// The timed-token timing facts every policy analysis needs. All of
/// analyze_fcfs / analyze_dm / analyze_edf / analyze_fixed_priority re-derive
/// T_del and the per-master T_cycle vector from scratch; when one scenario is
/// analysed under several policies (the batch engine's core loop) the memo is
/// computed once and passed to the memo-taking analysis overloads instead.
struct TimingMemo {
  TcycleMethod method = TcycleMethod::PaperEq13;
  Ticks tdel = 0;                 ///< worst-case token lateness (eq. 13)
  Ticks tcycle = 0;               ///< uniform eq.-14 bound T_TR + T_del
  std::vector<Ticks> per_master;  ///< t_cycle_per_master(net, method)
};

/// Compute the memo in one pass over the network.
[[nodiscard]] TimingMemo compute_timing(const Network& net,
                                        TcycleMethod method = TcycleMethod::PaperEq13);

}  // namespace profisched::profibus
