#include "profibus/fcfs_analysis.hpp"

namespace profisched::profibus {

NetworkAnalysis analyze_fcfs(const Network& net, TcycleMethod method) {
  return analyze_fcfs(net, compute_timing(net, method));
}

NetworkAnalysis analyze_fcfs(const Network& net, const TimingMemo& memo) {
  net.validate();
  NetworkAnalysis out;
  out.tcycle = memo.tcycle;
  out.schedulable = true;

  const std::vector<Ticks>& tc = memo.per_master;
  out.masters.resize(net.n_masters());

  for (std::size_t k = 0; k < net.n_masters(); ++k) {
    const Master& master = net.masters[k];
    MasterAnalysis& ma = out.masters[k];
    ma.schedulable = true;
    ma.streams.resize(master.nh());

    const Ticks nh = static_cast<Ticks>(master.nh());
    for (std::size_t i = 0; i < master.nh(); ++i) {
      const MessageStream& s = master.high_streams[i];
      StreamResponse& r = ma.streams[i];
      r.response = sat_mul(nh, tc[k]);                 // eq. 11
      r.Q = sat_add(r.response, -s.Ch);                // Q = nh·T_cycle − Ch
      r.meets_deadline = r.response != kNoBound && r.response <= s.D;  // eq. 12
      if (!r.meets_deadline) ma.schedulable = false;
    }
    if (!ma.schedulable) out.schedulable = false;
  }
  return out;
}

}  // namespace profisched::profibus
