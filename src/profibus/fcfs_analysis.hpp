// fcfs_analysis.hpp — worst-case response time of PROFIBUS high-priority
// messages under the standard FCFS outgoing queue (§3.2, paper eqs. 11–12).
//
// Because a master transmits at least one HP message per token visit, and at
// most nh^k messages can be pending (one per stream — two pending requests of
// the same stream would already imply a missed deadline), a request queued
// behind every other stream's request needs nh^k token visits:
//
//     Q_i^k = nh^k · T_cycle − Ch_i^k,      R_i^k = Q_i^k + Ch_i^k
//           => R_i^k = nh^k · T_cycle                                   (11)
//
// and the stream set is schedulable iff Dh_i^k >= R_i^k for every stream of
// every master (12). Note R is identical for every stream of a master — FCFS
// cannot favour tight deadlines, which is precisely the limitation §4
// removes.
#pragma once

#include <vector>

#include "profibus/token_ring_analysis.hpp"

namespace profisched::profibus {

/// Per-stream analysis record.
struct StreamResponse {
  Ticks Q = kNoBound;         ///< worst-case queuing delay
  Ticks response = kNoBound;  ///< worst-case response time R
  bool meets_deadline = false;
};

/// Per-master analysis record.
struct MasterAnalysis {
  std::vector<StreamResponse> streams;  ///< indexed like Master::high_streams
  bool schedulable = false;
};

/// Whole-network verdict.
struct NetworkAnalysis {
  std::vector<MasterAnalysis> masters;
  bool schedulable = false;
  Ticks tcycle = 0;  ///< the T_cycle used (eq. 14)
};

/// Reusable per-worker scratch for the network analyses: the buffers
/// analyze_dm / analyze_edf would otherwise allocate per master (or per
/// stream) per call. One instance per thread — the engine keeps one per
/// AnalysisEngine — makes repeated analyses allocation-free in steady state.
/// Purely an optimization: results are identical with or without.
struct AnalysisScratch {
  std::vector<std::size_t> ranks;  ///< DM deadline-rank permutation buffer
  std::vector<Ticks> offsets;      ///< EDF candidate-offset buffer
};

/// FCFS analysis of the whole network (eqs. 11–12).
[[nodiscard]] NetworkAnalysis analyze_fcfs(const Network& net,
                                           TcycleMethod method = TcycleMethod::PaperEq13);

/// Memoized form: reuse a precomputed TimingMemo (see compute_timing) instead
/// of re-deriving T_del / T_cycle for this call.
[[nodiscard]] NetworkAnalysis analyze_fcfs(const Network& net, const TimingMemo& memo);

}  // namespace profisched::profibus
