// detail/fp_message_rta.hpp — the eq.-16 per-stream fixed point, shared by
// the DM analysis and the arbitrary-order / OPA analyses. Internal header.
#pragma once

#include "core/formulation.hpp"
#include "profibus/fcfs_analysis.hpp"

namespace profisched::profibus::detail {

/// Response time of the stream at position `rank` of `order` (highest
/// priority first) within `master`, under the eq.-16 model: one T_cycle per
/// service slot, blocking T* = T_cycle unless the stream is the master's
/// lowest-priority one, jitter-inflated interference from higher-priority
/// streams.
inline StreamResponse fp_stream_response(const Master& master,
                                         const std::vector<std::size_t>& order,
                                         std::size_t rank, Ticks tcycle, Formulation form,
                                         int fuel) {
  StreamResponse out;
  const MessageStream& si = master.high_streams[order[rank]];

  const bool has_lower = rank + 1 < order.size();
  const Ticks blocking = has_lower ? tcycle : 0;

  Ticks w = sat_add(blocking, sat_mul(static_cast<Ticks>(rank), tcycle));
  for (int it = 0; it < fuel; ++it) {
    Ticks next = blocking;
    for (std::size_t p = 0; p < rank; ++p) {
      const MessageStream& sj = master.high_streams[order[p]];
      const Ticks arg = sat_add(w, sj.J);
      const Ticks jobs = (form == Formulation::PaperLiteral) ? ceil_div_plus(arg, sj.T)
                                                             : floor_div_plus1(arg, sj.T);
      next = sat_add(next, sat_mul(jobs, tcycle));
    }
    if (next == w) {
      out.Q = w;
      out.response = sat_add(w, tcycle);
      out.meets_deadline = out.response != kNoBound && out.response <= si.D;
      return out;
    }
    if (next == kNoBound) break;
    w = next;
  }
  return out;  // diverged
}

}  // namespace profisched::profibus::detail
