// dm_analysis.hpp — worst-case message response time with a DM-ordered
// priority queue at the application-process level (§4.3, paper eq. 16).
//
// Architecture (§4): requests wait in a deadline-monotonic priority queue in
// the AP; the communication-stack FCFS queue is limited to ONE pending
// request (enforced through the local management service). Every token visit
// then serves exactly the request at the head of the AP order, so the
// "processor" of the uniprocessor analogy serves one unit of T_cycle per
// request: the paper instructs to take the non-preemptive fixed-priority
// analysis (eqs. 1–2) and "replace the Cs by T_cycle", with a blocking term
//
//     T*_cycle = T_cycle   if lower-priority streams exist (a lax request may
//                          occupy the stack slot just before ours arrives)
//              = 0         for the lowest-priority stream                 (16)
//
// and with requests able to appear "marginally after receiving the token and
// marginally before passing the token" — which is exactly what charging a
// full T_cycle per service slot accounts for. Release jitter J_j inherited
// from the generating tasks (§4.1) inflates the interference terms as in
// Tindell's analysis:
//
//     w_i = T*_cycle + Σ_{j ∈ hp(i)} ⌈(w_i + J_j)/T_j⌉ · T_cycle
//     R_i = w_i + T_cycle
//
// R_i is measured from the instant the request enters the AP queue; the
// generation delay g (and hence J_i itself) belongs to the end-to-end bound
// E = g + Q + C + d of §4.2 (see end_to_end.hpp).
//
// Unlike FCFS (R = nh·T_cycle for everyone), R_i now depends on the stream's
// deadline rank and on the *periods* of the interfering streams — the paper's
// central observation.
#pragma once

#include "core/formulation.hpp"
#include "profibus/fcfs_analysis.hpp"

namespace profisched::profibus {

/// DM-queue analysis of the whole network (eq. 16). Streams within each
/// master are ranked deadline-monotonically (ties by index). `form` selects
/// the interference step: PaperLiteral ⌈(w+J)/T⌉ (the printed eq. 16) or
/// Refined ⌊(w+J)/T⌋+1 (start-time form). The fixed point is searched from
/// w⁰ = T*_cycle + |hp(i)|·T_cycle, mirroring response_time_fp.cpp.
[[nodiscard]] NetworkAnalysis analyze_dm(const Network& net,
                                         TcycleMethod method = TcycleMethod::PaperEq13,
                                         Formulation form = Formulation::PaperLiteral,
                                         int fuel = 1 << 16);

/// Memoized form: reuse a precomputed TimingMemo (see compute_timing) instead
/// of re-deriving T_del / T_cycle for this call. `scratch`, when non-null,
/// supplies the per-master rank buffer (see AnalysisScratch).
[[nodiscard]] NetworkAnalysis analyze_dm(const Network& net, const TimingMemo& memo,
                                         Formulation form = Formulation::PaperLiteral,
                                         int fuel = 1 << 16,
                                         AnalysisScratch* scratch = nullptr);

}  // namespace profisched::profibus
