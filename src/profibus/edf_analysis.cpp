#include "profibus/edf_analysis.hpp"

#include <algorithm>
#include <vector>

namespace profisched::profibus {

namespace {

/// Busy period of a master under one-T_cycle-per-request service:
/// L = Σ_i ⌈(L + J_i)/T_i⌉ · T_cycle from L⁰ = nh·T_cycle.
/// Returns kNoBound when the iteration diverges (token supply < demand).
Ticks master_busy_period(const Master& master, Ticks tcycle, int fuel) {
  Ticks L = sat_mul(static_cast<Ticks>(master.nh()), tcycle);
  for (int it = 0; it < fuel; ++it) {
    Ticks next = 0;
    for (const MessageStream& s : master.high_streams) {
      next = sat_add(next, sat_mul(ceil_div_plus(sat_add(L, s.J), s.T), tcycle));
    }
    if (next == L) return L;
    if (next == kNoBound) return kNoBound;
    L = next;
  }
  return kNoBound;
}

/// Candidate offsets a (paper eq. 10, jitter-shifted) within [0, horizon],
/// into a reused buffer.
void candidate_offsets(const Master& master, std::size_t i, Ticks horizon,
                       std::vector<Ticks>& offsets) {
  offsets.clear();
  offsets.push_back(0);
  const Ticks di = master.high_streams[i].D;
  for (const MessageStream& sj : master.high_streams) {
    const Ticks base = sj.D - sj.J - di;
    const Ticks k0 = base >= 0 ? 0 : ceil_div(-base, sj.T);
    for (Ticks k = k0;; ++k) {
      const Ticks a = sat_add(sat_mul(k, sj.T), base);
      if (a > horizon || a == kNoBound) break;
      offsets.push_back(a);
    }
  }
  std::ranges::sort(offsets);
  const auto dup = std::ranges::unique(offsets);
  offsets.erase(dup.begin(), dup.end());
}

struct OffsetOutcome {
  bool converged = false;
  Ticks response = kNoBound;
};

/// R_i(a) per eqs. 17–18.
OffsetOutcome response_at_offset(const Master& master, std::size_t i, Ticks a, Ticks tcycle,
                                 int fuel) {
  const MessageStream& si = master.high_streams[i];
  const Ticks abs_deadline = sat_add(a, si.D);

  // T*_cycle(a): a later-deadline request from another stream may already
  // occupy the one-deep stack queue.
  Ticks blocking = 0;
  for (std::size_t j = 0; j < master.nh(); ++j) {
    if (j == i) continue;
    const MessageStream& sj = master.high_streams[j];
    if (sj.D - sj.J > abs_deadline) {
      blocking = tcycle;
      break;
    }
  }

  const Ticks own_prior = sat_mul(floor_div(a, si.T), tcycle);

  Ticks L = 0;
  for (int it = 0; it < fuel; ++it) {
    Ticks next = sat_add(blocking, own_prior);
    for (std::size_t j = 0; j < master.nh(); ++j) {
      if (j == i) continue;
      const MessageStream& sj = master.high_streams[j];
      if (sj.D - sj.J > abs_deadline) continue;  // later deadline: lower priority
      const Ticks by_time = floor_div_plus1(sat_add(L, sj.J), sj.T);
      const Ticks by_deadline = floor_div_plus1(abs_deadline - sj.D + sj.J, sj.T);
      next = sat_add(next, sat_mul(std::min(by_time, by_deadline), tcycle));
    }
    if (next == L) return {true, sat_add(tcycle, std::max<Ticks>(0, L - a))};
    if (next == kNoBound) return {};
    L = next;
  }
  return {};
}

}  // namespace

std::vector<Ticks> edf_busy_periods(const Network& net, const TimingMemo& memo, int fuel) {
  std::vector<Ticks> out(net.n_masters());
  for (std::size_t k = 0; k < net.n_masters(); ++k) {
    out[k] = master_busy_period(net.masters[k], memo.per_master[k], fuel);
  }
  return out;
}

NetworkAnalysis analyze_edf(const Network& net, TcycleMethod method,
                            std::vector<std::vector<EdfStreamDetail>>* detail, int fuel) {
  return analyze_edf(net, compute_timing(net, method), detail, fuel);
}

NetworkAnalysis analyze_edf(const Network& net, const TimingMemo& memo,
                            std::vector<std::vector<EdfStreamDetail>>* detail, int fuel,
                            const std::vector<Ticks>* busy, AnalysisScratch* scratch) {
  net.validate();
  NetworkAnalysis out;
  out.tcycle = memo.tcycle;
  out.schedulable = true;

  std::vector<Ticks> local_offsets;
  std::vector<Ticks>& offsets = scratch != nullptr ? scratch->offsets : local_offsets;

  const std::vector<Ticks>& tc = memo.per_master;
  out.masters.resize(net.n_masters());
  if (detail) detail->assign(net.n_masters(), {});

  for (std::size_t k = 0; k < net.n_masters(); ++k) {
    const Master& master = net.masters[k];
    MasterAnalysis& ma = out.masters[k];
    ma.schedulable = true;
    ma.streams.resize(master.nh());
    if (detail) (*detail)[k].resize(master.nh());

    const Ticks horizon = busy ? (*busy)[k] : master_busy_period(master, tc[k], fuel);
    for (std::size_t i = 0; i < master.nh(); ++i) {
      StreamResponse& r = ma.streams[i];
      if (horizon == kNoBound) {
        ma.schedulable = false;
        continue;  // r stays kNoBound / not schedulable
      }
      Ticks best = 0;
      Ticks best_a = 0;
      std::size_t examined = 0;
      bool ok = true;
      candidate_offsets(master, i, horizon, offsets);
      for (const Ticks a : offsets) {
        ++examined;
        const OffsetOutcome o = response_at_offset(master, i, a, tc[k], fuel);
        if (!o.converged) {
          ok = false;
          break;
        }
        if (o.response > best) {
          best = o.response;
          best_a = a;
        }
      }
      if (ok) {
        r.response = best;
        r.Q = best - tc[k];
        r.meets_deadline = r.response <= master.high_streams[i].D;
      }
      if (detail) (*detail)[k][i] = {best_a, examined};
      if (!r.meets_deadline) ma.schedulable = false;
    }
    if (!ma.schedulable) out.schedulable = false;
  }
  return out;
}

}  // namespace profisched::profibus
