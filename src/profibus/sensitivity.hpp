// sensitivity.hpp (profibus) — network-level sensitivity analysis: the
// margins a fieldbus engineer actually asks about. How much can every frame
// grow (firmware update adds fields to each PDU) before the guarantees
// break? How tight could one stream's deadline go? Exact binary searches
// against the library's own network analyses, mirroring core/sensitivity.hpp.
#pragma once

#include <optional>

#include "profibus/dispatching.hpp"

namespace profisched::profibus {

/// Largest factor (q/1024 fixed point) by which EVERY message-cycle length —
/// each stream's Ch and each master's Cl — can be multiplied with the network
/// staying schedulable under `policy`. T_del and T_cycle grow along. Returns
/// std::nullopt when already unschedulable; caps at `max_factor_q1024`.
[[nodiscard]] std::optional<Ticks> frame_growth_headroom(const Network& net, ApPolicy policy,
                                                         Ticks max_factor_q1024 = 64 * 1024);

/// Smallest deadline stream (k, i) can sustain under `policy`, all else
/// fixed — the exact value D_min schedulable at D_min but not at D_min − 1.
/// Monotone for all three policies (FCFS's bound ignores D except in the
/// verdict; DM reordering is deadline-sustainable; EDF windows shrink with D).
/// Returns std::nullopt when unschedulable even at D = 64·T.
[[nodiscard]] std::optional<Ticks> stream_deadline_margin(const Network& net, ApPolicy policy,
                                                          std::size_t master,
                                                          std::size_t stream);

/// Largest T_TR keeping the network schedulable under `policy` (the DM/EDF
/// generalization of eq. 15's FCFS-only bound; computed by exact search since
/// no closed form exists for eqs. 16–18). Searches [net.ttr-independent
/// floor, cap]; std::nullopt when even the floor fails.
[[nodiscard]] std::optional<Ticks> max_schedulable_ttr_for(const Network& net, ApPolicy policy,
                                                           Ticks cap = 1 << 24);

}  // namespace profisched::profibus
