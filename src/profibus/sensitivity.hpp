// sensitivity.hpp (profibus) — network-level sensitivity analysis: the
// margins a fieldbus engineer actually asks about. How much can every frame
// grow (firmware update adds fields to each PDU) before the guarantees
// break? How tight could one stream's deadline go? How high can T_TR be set?
//
// All searches are exact binary searches through the unified core of
// core/sensitivity_search.hpp, driven by a caller-supplied NetworkTest
// predicate — so the same functions serve plain analyze_network verdicts,
// alternative T_cycle methods, and the optimizer's engine-matched dispatch.
// The network mutators (with_scaled_frames / with_deadline_ratio / with_ttr)
// are exported so callers can evaluate the configuration the boundary value
// denotes (e.g. its message utilization).
#pragma once

#include <functional>

#include "core/sensitivity_search.hpp"
#include "profibus/dispatching.hpp"

namespace profisched::profibus {

/// A predicate deciding schedulability of a (modified) network.
using NetworkTest = std::function<bool(const Network&)>;

/// Standard test for a policy under a T_cycle method, as a reusable predicate.
[[nodiscard]] NetworkTest network_test_for(ApPolicy policy,
                                           TcycleMethod method = TcycleMethod::PaperEq13);

// ---- network mutators (the parameter axes the searches walk) ----------

/// Every message-cycle length — each stream's Ch and each master's Cl —
/// multiplied by q/1024, rounding up (pessimistic), Ch floored at 1.
/// T_del and T_cycle grow along via the analyses.
[[nodiscard]] Network with_scaled_frames(const Network& net, Ticks q1024);

/// Every stream's deadline set to ratio beta = q/1024 of its period:
/// D_i = max(Ch_i, ceil(T_i · q / 1024)). Smaller q = tighter deadlines.
[[nodiscard]] Network with_deadline_ratio(const Network& net, Ticks beta_q1024);

/// The network with its target token rotation time replaced.
[[nodiscard]] Network with_ttr(const Network& net, Ticks ttr);

/// Total high-priority message utilization: sum of Ch/T over every stream of
/// every master (master order, then stream order — deterministic).
[[nodiscard]] double message_utilization(const Network& net);

// ---- exact searches ---------------------------------------------------

/// Largest frame-scaling factor (q/1024) keeping `test` true. Infeasible when
/// the unscaled network already fails; cap_hit when `max_factor_q1024` still
/// passes. The breakdown utilization is
/// message_utilization(with_scaled_frames(net, result.value)).
[[nodiscard]] sensitivity::SensitivityResult frame_scaling_headroom(
    const Network& net, const NetworkTest& test,
    Ticks max_factor_q1024 = sensitivity::kDefaultMaxScaleQ);

/// Smallest deadline stream (master, stream) can sustain, all else fixed —
/// the exact value passing at D_min but failing at D_min − 1. Monotone for
/// all shipped policies (FCFS's bound ignores D except in the verdict; DM
/// reordering is deadline-sustainable; EDF windows shrink with D).
/// Infeasible when even D = 64·T fails; cap_hit when D = Ch already passes.
[[nodiscard]] sensitivity::SensitivityResult stream_deadline_margin(const Network& net,
                                                                    const NetworkTest& test,
                                                                    std::size_t master,
                                                                    std::size_t stream);

/// Largest T_TR keeping `test` true (the DM/EDF generalization of eq. 15's
/// FCFS-only bound; exact search since no closed form exists for eqs. 16–18).
/// Bracket floor is ring_latency + 1 (below that the token starves).
/// Distinct from ttr_setting.hpp's closed-form max_schedulable_ttr(net): this
/// overload requires the predicate.
[[nodiscard]] sensitivity::SensitivityResult max_schedulable_ttr(
    const Network& net, const NetworkTest& test, Ticks cap = sensitivity::kDefaultTtrCap);

/// Smallest uniform D/T ratio beta = q/1024 (applied via with_deadline_ratio)
/// keeping `test` true — how tight can every deadline go, relative to its
/// period? Infeasible when even beta = hi_q/1024 fails; cap_hit when the
/// floor lo_q already passes.
[[nodiscard]] sensitivity::SensitivityResult min_deadline_ratio(
    const Network& net, const NetworkTest& test, Ticks lo_q1024 = 64,
    Ticks hi_q1024 = sensitivity::kDefaultMaxScaleQ);

}  // namespace profisched::profibus
