// holistic.hpp — holistic schedulability analysis for transactions that span
// several masters of one PROFIBUS ring (the distributed extension of §4.2;
// the paper cites Tindell & Clark [33] and Spuri [34] for exactly this
// attribute-inheritance scheme).
//
// A transaction is a chain of stages, each stage being "a task on the
// master's host processor prepares a request, then one message cycle of a
// given stream carries it". The classic holistic fixed point applies:
//
//   * the release jitter of a stage's task is the response time of the
//     previous stage (0 for the first);
//   * the release jitter of a stage's message is the response time of its
//     task (§4.1, task model B);
//   * message response times come from the chosen AP-queue analysis
//     (eq. 16 / eqs. 17–18), whose interference terms grow with the jitters
//     of *all* streams of the master;
//   * task response times come from the preemptive fixed-priority analysis
//     of the host CPU, whose interference also grows with jitter.
//
// Every quantity is monotone non-decreasing in every jitter, so iterating
// release-jitter assignment → analysis → new jitters converges to the least
// fixed point, or some response exceeds its transaction deadline and the set
// is reported unschedulable (the standard holistic argument).
#pragma once

#include <string>
#include <vector>

#include "profibus/dispatching.hpp"

namespace profisched::profibus {

/// One stage of a distributed transaction.
struct TransactionStage {
  std::size_t master = 0;  ///< which master's host runs the task / sends
  std::size_t stream = 0;  ///< index into that master's high_streams
  Ticks task_c = 1;        ///< host-task execution time preparing the request
};

/// A periodic end-to-end activity across the ring.
struct Transaction {
  std::vector<TransactionStage> stages;
  Ticks period = 0;    ///< transaction period (stages inherit it)
  Ticks deadline = 0;  ///< end-to-end deadline for the whole chain
  std::string name;

  void validate(const Network& net) const;
};

struct HolisticOptions {
  ApPolicy policy = ApPolicy::Dm;  ///< AP-queue analysis used for messages
  int max_iterations = 256;        ///< fixed-point iteration cap
};

/// Outcome of the holistic iteration.
struct HolisticResult {
  bool converged = false;    ///< fixed point found (false: diverged/cap hit)
  bool schedulable = false;  ///< every transaction meets its deadline
  std::vector<Ticks> response;  ///< end-to-end response per transaction
  std::vector<std::vector<Ticks>> stage_response;  ///< cumulative, per stage
  NetworkAnalysis network;   ///< message analysis at the fixed point
  int iterations = 0;
};

/// Run the holistic analysis. The network's streams referenced by stages get
/// their T overridden by the transaction period and their J by the iteration;
/// unreferenced streams keep their configured T/J and participate as
/// interference. The host CPU of each master schedules the stage tasks
/// preemptively, deadline-monotonic (D = transaction deadline).
[[nodiscard]] HolisticResult analyze_holistic(Network net,
                                              const std::vector<Transaction>& transactions,
                                              const HolisticOptions& opt = {});

}  // namespace profisched::profibus
