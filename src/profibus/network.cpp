#include "profibus/network.hpp"

#include <algorithm>

namespace profisched::profibus {

Ticks Master::longest_high_cycle() const {
  Ticks m = 0;
  for (const MessageStream& s : high_streams) m = std::max(m, s.Ch);
  return m;
}

Ticks Master::longest_cycle() const { return std::max(longest_high_cycle(), longest_low_cycle); }

void Master::validate() const {
  if (longest_low_cycle < 0) {
    throw std::invalid_argument("Master " + name + ": longest_low_cycle must be >= 0");
  }
  for (const MessageStream& s : high_streams) s.validate();
}

std::size_t Network::total_high_streams() const {
  std::size_t n = 0;
  for (const Master& m : masters) n += m.nh();
  return n;
}

Ticks Network::ring_latency() const {
  return sat_mul(static_cast<Ticks>(masters.size()), token_pass_time(bus));
}

void Network::validate() const {
  if (masters.empty()) throw std::invalid_argument("Network: needs at least one master");
  bus.validate();
  if (ttr < 1) throw std::invalid_argument("Network: T_TR must be >= 1");
  for (const Master& m : masters) m.validate();
}

}  // namespace profisched::profibus
