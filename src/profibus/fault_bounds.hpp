// fault_bounds.hpp — degraded-mode schedulability bounds under a FaultModel.
//
// The timed-token derivation of eqs. 13–14 bounds the gap between consecutive
// token arrivals at a master by T_TR plus the time the ring spends outside
// the rotation budget (one T_TH overrun / guaranteed HP cycle per master,
// eq. 13's T_del). The bounded fault models add exactly two further kinds of
// non-budgeted time per rotation, and stretch message cycles by a known
// factor:
//
//  * token loss    — each of the n token passes of a rotation suffers at most
//                    one loss, recovered after `token_recovery`:
//                        + n · token_recovery  per rotation;
//  * ring churn    — between two consecutive visits to any master, each of
//                    the other n−1 stations is either visited or skipped
//                    once; a skip costs one slot timeout plus the
//                    re-addressed pass:
//                        + (n−1) · (t_sl + token_pass_time)  per rotation
//                    (an offline master only *removes* interference — its
//                    streams stop competing — so charging the full clean
//                    T_del stays conservative);
//  * corruption    — every message cycle is transmitted at most
//                    1 + max_retransmissions times and the last attempt
//                    delivers, so each Ch / Cl inflates to at most
//                    (1 + R) · Ch — which with_scaled_frames applies to the
//                    network, growing both the interference terms and T_del
//                    through the unmodified analyses.
//
// So: degraded analysis = the stock per-policy analysis, run on the
// retransmission-scaled network with a TimingMemo whose tdel / tcycle /
// per-master bounds carry the per-rotation dead time. A verdict from
// analyze_degraded is a guarantee the *faulted* simulation must not violate
// — the combined sweep's must-never-fire flags check exactly that.
#pragma once

#include "core/formulation.hpp"
#include "profibus/dispatching.hpp"
#include "profibus/fault_model.hpp"

namespace profisched::profibus {

/// The network the degraded analysis runs on: every Ch and Cl scaled by
/// (1 + max_retransmissions) when corruption is enabled, unchanged otherwise.
[[nodiscard]] Network degraded_network(const Network& net, const FaultModel& faults);

/// Worst-case non-budgeted dead time one token rotation can accumulate under
/// `faults` (loss recoveries + churn skip penalties); 0 when neither is on.
[[nodiscard]] Ticks degraded_dead_time(const Network& net, const FaultModel& faults);

/// compute_timing over the degraded network, with degraded_dead_time added to
/// tdel, tcycle and every per-master bound.
[[nodiscard]] TimingMemo degraded_timing(const Network& degraded_net, const FaultModel& faults,
                                         TcycleMethod method = TcycleMethod::PaperEq13);

/// Memo-taking core: run `policy`'s analysis on an already-degraded network
/// and timing memo (share them across policies, as the combined sweep does).
[[nodiscard]] NetworkAnalysis analyze_degraded(const Network& degraded_net,
                                               const TimingMemo& degraded_memo, ApPolicy policy,
                                               Formulation form = Formulation::PaperLiteral,
                                               int fuel = 1 << 16);

/// Convenience form over the clean network: derives the degraded network and
/// memo internally. Returns the clean analysis verbatim when !faults.any().
[[nodiscard]] NetworkAnalysis analyze_degraded(const Network& net, const FaultModel& faults,
                                               ApPolicy policy,
                                               TcycleMethod method = TcycleMethod::PaperEq13,
                                               Formulation form = Formulation::PaperLiteral,
                                               int fuel = 1 << 16);

}  // namespace profisched::profibus
