#include "profibus/holistic.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/response_time_fp.hpp"

namespace profisched::profibus {

void Transaction::validate(const Network& net) const {
  if (stages.empty()) throw std::invalid_argument("Transaction " + name + ": no stages");
  if (period < 1 || deadline < 1) {
    throw std::invalid_argument("Transaction " + name + ": period/deadline must be >= 1");
  }
  for (const TransactionStage& st : stages) {
    if (st.master >= net.n_masters() || st.stream >= net.masters[st.master].nh()) {
      throw std::invalid_argument("Transaction " + name + ": stage references missing stream");
    }
    if (st.task_c < 1) throw std::invalid_argument("Transaction " + name + ": task_c must be >= 1");
  }
}

namespace {

/// Host-CPU task record: one per (transaction, stage), grouped by master.
struct HostTask {
  std::size_t transaction;
  std::size_t stage;
  Ticks C;
  Ticks D;  // transaction deadline (DM key on the host)
  Ticks T;  // transaction period
};

}  // namespace

HolisticResult analyze_holistic(Network net, const std::vector<Transaction>& transactions,
                                const HolisticOptions& opt) {
  net.validate();
  for (const Transaction& tr : transactions) tr.validate(net);

  // Stage periods: the transaction's.
  for (const Transaction& tr : transactions) {
    for (const TransactionStage& st : tr.stages) {
      net.masters[st.master].high_streams[st.stream].T = tr.period;
    }
  }

  // Group stage tasks by host (master).
  std::vector<std::vector<HostTask>> host_tasks(net.n_masters());
  for (std::size_t t = 0; t < transactions.size(); ++t) {
    const Transaction& tr = transactions[t];
    for (std::size_t s = 0; s < tr.stages.size(); ++s) {
      host_tasks[tr.stages[s].master].push_back(
          HostTask{t, s, tr.stages[s].task_c, tr.deadline, tr.period});
    }
  }

  HolisticResult out;
  out.response.assign(transactions.size(), 0);
  out.stage_response.resize(transactions.size());
  for (std::size_t t = 0; t < transactions.size(); ++t) {
    out.stage_response[t].assign(transactions[t].stages.size(), 0);
  }

  // Jitter state: per (transaction, stage), the task jitter (response of the
  // previous stage) and the message jitter (response of the stage's task).
  std::vector<std::vector<Ticks>> task_jitter(transactions.size());
  std::vector<std::vector<Ticks>> task_response(transactions.size());
  for (std::size_t t = 0; t < transactions.size(); ++t) {
    task_jitter[t].assign(transactions[t].stages.size(), 0);
    task_response[t].assign(transactions[t].stages.size(), 0);
  }

  const Ticks cap = [&] {
    Ticks c = 0;
    for (const Transaction& tr : transactions) c = std::max(c, tr.deadline);
    return sat_mul(c, 64);
  }();

  for (int iteration = 1; iteration <= opt.max_iterations; ++iteration) {
    out.iterations = iteration;

    // 1. Host CPU analysis per master: stage tasks with their current
    //    jitters, preemptive DM (deadline = transaction deadline).
    bool host_bounded = true;
    for (std::size_t k = 0; k < net.n_masters(); ++k) {
      if (host_tasks[k].empty()) continue;
      std::vector<Task> tasks;
      tasks.reserve(host_tasks[k].size());
      for (const HostTask& ht : host_tasks[k]) {
        tasks.push_back(Task{.C = ht.C,
                             .D = std::max(ht.D, ht.C),
                             .T = ht.T,
                             .J = std::min(task_jitter[ht.transaction][ht.stage], cap),
                             .name = ""});
      }
      const TaskSet ts{std::move(tasks)};
      const FpAnalysis fp = analyze_preemptive_fp(ts, deadline_monotonic_order(ts));
      for (std::size_t j = 0; j < host_tasks[k].size(); ++j) {
        const HostTask& ht = host_tasks[k][j];
        const Ticks r = fp.per_task[j].converged ? fp.per_task[j].response : kNoBound;
        task_response[ht.transaction][ht.stage] = r;
        if (r == kNoBound) host_bounded = false;
      }
    }
    if (!host_bounded) return out;  // CPU saturated: diverged

    // 2. Message jitters = task responses (model B inheritance).
    for (std::size_t t = 0; t < transactions.size(); ++t) {
      for (std::size_t s = 0; s < transactions[t].stages.size(); ++s) {
        const TransactionStage& st = transactions[t].stages[s];
        net.masters[st.master].high_streams[st.stream].J =
            std::min(task_response[t][s], cap);
      }
    }

    // 3. Message analysis under the chosen policy.
    out.network = analyze_network(net, opt.policy);

    // 4. New task jitters from cumulative stage responses; detect both the
    //    fixed point and divergence past the cap.
    bool changed = false;
    bool within_cap = true;
    for (std::size_t t = 0; t < transactions.size(); ++t) {
      Ticks cumulative = 0;
      for (std::size_t s = 0; s < transactions[t].stages.size(); ++s) {
        const TransactionStage& st = transactions[t].stages[s];
        if (task_jitter[t][s] != cumulative) {
          task_jitter[t][s] = cumulative;
          changed = true;
        }
        const Ticks msg_r = out.network.masters[st.master].streams[st.stream].response;
        const Ticks task_r = task_response[t][s];
        if (msg_r == kNoBound || task_r == kNoBound) {
          within_cap = false;
          break;
        }
        // Stage response from transaction release: previous stages' end +
        // this stage's task response (which excludes its jitter? No — core
        // RTA includes J in R, i.e. measures from event arrival = previous
        // stage end... it measures from the *nominal* release; here the
        // jitter IS the previous stages' contribution, so task R already
        // spans [transaction release, task completion]) + message response
        // measured from queue insertion.
        const Ticks stage_end = sat_add(task_r, msg_r);
        out.stage_response[t][s] = stage_end;
        cumulative = stage_end;
        if (cumulative > cap) {
          within_cap = false;
          break;
        }
      }
      if (!within_cap) break;
      out.response[t] = cumulative;
    }
    if (!within_cap) return out;  // diverged

    if (!changed && iteration > 1) {
      out.converged = true;
      out.schedulable = true;
      for (std::size_t t = 0; t < transactions.size(); ++t) {
        if (out.response[t] > transactions[t].deadline) out.schedulable = false;
      }
      return out;
    }
  }
  return out;  // iteration cap: report non-converged
}

}  // namespace profisched::profibus
