#include "profibus/sensitivity.hpp"

#include <algorithm>

namespace profisched::profibus {

NetworkTest network_test_for(ApPolicy policy, TcycleMethod method) {
  return [policy, method](const Network& net) {
    return analyze_network(net, policy, method).schedulable;
  };
}

Network with_scaled_frames(const Network& net, Ticks q1024) {
  Network out = net;
  for (Master& m : out.masters) {
    for (MessageStream& s : m.high_streams) {
      s.Ch = std::max<Ticks>(ceil_div(sat_mul(s.Ch, q1024), sensitivity::kScaleOne), 1);
    }
    m.longest_low_cycle = ceil_div(sat_mul(m.longest_low_cycle, q1024), sensitivity::kScaleOne);
  }
  return out;
}

Network with_deadline_ratio(const Network& net, Ticks beta_q1024) {
  Network out = net;
  for (Master& m : out.masters) {
    for (MessageStream& s : m.high_streams) {
      s.D = std::max(s.Ch, ceil_div(sat_mul(s.T, beta_q1024), sensitivity::kScaleOne));
    }
  }
  return out;
}

Network with_ttr(const Network& net, Ticks ttr) {
  Network out = net;
  out.ttr = ttr;
  return out;
}

double message_utilization(const Network& net) {
  double u = 0.0;
  for (const Master& m : net.masters) {
    for (const MessageStream& s : m.high_streams) {
      u += static_cast<double>(s.Ch) / static_cast<double>(s.T);
    }
  }
  return u;
}

sensitivity::SensitivityResult frame_scaling_headroom(const Network& net,
                                                      const NetworkTest& test,
                                                      Ticks max_factor_q1024) {
  // q = kScaleOne is the identity scaling, so the floor probe doubles as the
  // "schedulable to begin with" check.
  return sensitivity::max_satisfying(
      sensitivity::kScaleOne, max_factor_q1024,
      [&](Ticks q) { return test(with_scaled_frames(net, q)); });
}

sensitivity::SensitivityResult stream_deadline_margin(const Network& net,
                                                      const NetworkTest& test,
                                                      std::size_t master, std::size_t stream) {
  const MessageStream& target = net.masters.at(master).high_streams.at(stream);
  const auto with_deadline = [&](Ticks d) {
    Network modified = net;
    modified.masters[master].high_streams[stream].D = d;
    return modified;
  };
  const Ticks cap = sat_mul(target.T, sensitivity::kDefaultDeadlineCapMultiple);
  return sensitivity::min_satisfying(target.Ch, cap,
                                     [&](Ticks d) { return test(with_deadline(d)); });
}

sensitivity::SensitivityResult max_schedulable_ttr(const Network& net, const NetworkTest& test,
                                                   Ticks cap) {
  const Ticks floor = sat_add(net.ring_latency(), 1);
  return sensitivity::max_satisfying(floor, std::max(floor, cap),
                                     [&](Ticks ttr) { return test(with_ttr(net, ttr)); });
}

sensitivity::SensitivityResult min_deadline_ratio(const Network& net, const NetworkTest& test,
                                                  Ticks lo_q1024, Ticks hi_q1024) {
  return sensitivity::min_satisfying(
      lo_q1024, hi_q1024, [&](Ticks q) { return test(with_deadline_ratio(net, q)); });
}

}  // namespace profisched::profibus
