#include "profibus/sensitivity.hpp"

#include <algorithm>

namespace profisched::profibus {

namespace {

/// Scale every cycle length by q/1024, rounding up (pessimistic).
Network with_scaled_frames(const Network& net, Ticks q1024) {
  Network out = net;
  for (Master& m : out.masters) {
    for (MessageStream& s : m.high_streams) {
      s.Ch = std::max<Ticks>(ceil_div(sat_mul(s.Ch, q1024), 1024), 1);
    }
    m.longest_low_cycle = ceil_div(sat_mul(m.longest_low_cycle, q1024), 1024);
  }
  return out;
}

bool schedulable(const Network& net, ApPolicy policy) {
  return analyze_network(net, policy).schedulable;
}

}  // namespace

std::optional<Ticks> frame_growth_headroom(const Network& net, ApPolicy policy,
                                           Ticks max_factor_q1024) {
  if (!schedulable(net, policy)) return std::nullopt;
  Ticks lo = 1024;  // known schedulable
  Ticks hi = max_factor_q1024;
  if (schedulable(with_scaled_frames(net, hi), policy)) return hi;
  while (hi - lo > 1) {
    const Ticks mid = lo + (hi - lo) / 2;
    (schedulable(with_scaled_frames(net, mid), policy) ? lo : hi) = mid;
  }
  return lo;
}

std::optional<Ticks> stream_deadline_margin(const Network& net, ApPolicy policy,
                                            std::size_t master, std::size_t stream) {
  const MessageStream& target = net.masters.at(master).high_streams.at(stream);
  const auto with_deadline = [&](Ticks d) {
    Network modified = net;
    modified.masters[master].high_streams[stream].D = d;
    return modified;
  };
  const Ticks floor = target.Ch;
  const Ticks cap = sat_mul(target.T, 64);
  if (!schedulable(with_deadline(cap), policy)) return std::nullopt;
  if (schedulable(with_deadline(floor), policy)) return floor;

  Ticks lo = floor;  // known unschedulable
  Ticks hi = cap;    // known schedulable
  while (hi - lo > 1) {
    const Ticks mid = lo + (hi - lo) / 2;
    (schedulable(with_deadline(mid), policy) ? hi : lo) = mid;
  }
  return hi;
}

std::optional<Ticks> max_schedulable_ttr_for(const Network& net, ApPolicy policy, Ticks cap) {
  const auto with_ttr = [&](Ticks ttr) {
    Network modified = net;
    modified.ttr = ttr;
    return modified;
  };
  const Ticks floor = sat_add(net.ring_latency(), 1);
  if (!schedulable(with_ttr(floor), policy)) return std::nullopt;
  if (schedulable(with_ttr(cap), policy)) return cap;

  Ticks lo = floor;  // known schedulable
  Ticks hi = cap;    // known unschedulable
  while (hi - lo > 1) {
    const Ticks mid = lo + (hi - lo) / 2;
    (schedulable(with_ttr(mid), policy) ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace profisched::profibus
