#include "profibus/fault_bounds.hpp"

#include "profibus/sensitivity.hpp"

namespace profisched::profibus {

Network degraded_network(const Network& net, const FaultModel& faults) {
  if (faults.corruption_prob <= 0.0 || faults.max_retransmissions == 0) return net;
  const Ticks q = sat_mul(static_cast<Ticks>(1 + faults.max_retransmissions),
                          sensitivity::kScaleOne);
  return with_scaled_frames(net, q);
}

Ticks degraded_dead_time(const Network& net, const FaultModel& faults) {
  const auto n = static_cast<Ticks>(net.n_masters());
  Ticks dead = 0;
  if (faults.token_loss_prob > 0.0) {
    dead = sat_add(dead, sat_mul(n, faults.token_recovery));
  }
  if (faults.churn_prob > 0.0 && n > 1) {
    const Ticks per_skip = sat_add(net.bus.t_sl, token_pass_time(net.bus));
    dead = sat_add(dead, sat_mul(n - 1, per_skip));
  }
  return dead;
}

TimingMemo degraded_timing(const Network& degraded_net, const FaultModel& faults,
                           TcycleMethod method) {
  TimingMemo memo = compute_timing(degraded_net, method);
  const Ticks dead = degraded_dead_time(degraded_net, faults);
  if (dead > 0) {
    memo.tdel = sat_add(memo.tdel, dead);
    memo.tcycle = sat_add(memo.tcycle, dead);
    for (Ticks& t : memo.per_master) t = sat_add(t, dead);
  }
  return memo;
}

NetworkAnalysis analyze_degraded(const Network& degraded_net, const TimingMemo& degraded_memo,
                                 ApPolicy policy, Formulation form, int fuel) {
  switch (policy) {
    case ApPolicy::Fcfs: return analyze_fcfs(degraded_net, degraded_memo);
    case ApPolicy::Dm: return analyze_dm(degraded_net, degraded_memo, form, fuel);
    case ApPolicy::Edf: return analyze_edf(degraded_net, degraded_memo, nullptr, fuel);
  }
  return {};
}

NetworkAnalysis analyze_degraded(const Network& net, const FaultModel& faults, ApPolicy policy,
                                 TcycleMethod method, Formulation form, int fuel) {
  const Network dnet = degraded_network(net, faults);
  const TimingMemo memo = degraded_timing(dnet, faults, method);
  return analyze_degraded(dnet, memo, policy, form, fuel);
}

}  // namespace profisched::profibus
