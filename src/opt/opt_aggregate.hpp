// opt_aggregate.hpp — fold per-scenario optimize outcomes into per-(point,
// policy) breakdown distributions, and serialize them as the `optimize`
// output kind (CSV / JSON through detail/serialize.hpp, golden-locked).
//
// Quantiles are nearest-rank over the sorted feasible values (min / p50 /
// p90 / max for breakdown utilization, p50 / max for T_TR, p50 / min for the
// D/T ratio), so every emitted number is one of the exact per-scenario
// values — no interpolation, and the tables stay byte-identical for any
// thread or shard count. Points with no feasible scenario emit zeros.
#pragma once

#include <string>
#include <vector>

#include "opt/optimizer.hpp"

namespace profisched::opt {

/// Distribution summary of one (point, policy) cell. The *_feasible counters
/// say how many scenarios each quantile set is over; when one is 0 its
/// quantiles are all 0.
struct OptimumStats {
  std::size_t schedulable = 0;  ///< scenarios accepting at the base config
  std::size_t breakdown_feasible = 0;
  double breakdown_u_min = 0.0;
  double breakdown_u_p50 = 0.0;
  double breakdown_u_p90 = 0.0;
  double breakdown_u_max = 0.0;
  std::size_t ttr_feasible = 0;
  Ticks max_ttr_p50 = 0;
  Ticks max_ttr_max = 0;
  std::size_t dratio_feasible = 0;
  double min_dratio_p50 = 0.0;  ///< ratios as plain D/T (q / 1024)
  double min_dratio_min = 0.0;
};

/// One grid point of the optimize table.
struct OptimizePoint {
  double total_u = 0.0;
  double beta_lo = 1.0;
  double beta_hi = 1.0;
  std::size_t n_masters = 0;  ///< 0 = no masters axis
  std::size_t scenarios = 0;
  std::vector<OptimumStats> stats;  ///< indexed like OptimizeTable::policies
};

/// The optimize output kind. Serialized layouts mirror SweepCurves: the
/// masters column appears exactly when some point carries an explicit ring
/// size, so single-axis runs keep the classic column set.
struct OptimizeTable {
  std::vector<std::string> policies;
  std::vector<OptimizePoint> points;

  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] static OptimizeTable from_csv(const std::string& csv);
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static OptimizeTable from_json(const std::string& json);
};

/// Nearest-rank quantile index into a sorted vector of n values: the
/// smallest index covering at least p% of them (p in (0, 100]).
[[nodiscard]] std::size_t quantile_index(std::size_t n, std::size_t p);

/// Fold a ranged or whole-run result into the per-point table. Outcomes may
/// cover any subset of the sweep's scenarios (a shard); `scenarios` counts
/// what the outcomes actually hold.
[[nodiscard]] OptimizeTable aggregate_optimize(const OptimizeSpec& spec,
                                               const OptimizeResult& result);

}  // namespace profisched::opt
