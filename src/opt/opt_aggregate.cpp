#include "opt/opt_aggregate.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "engine/detail/serialize.hpp"

namespace profisched::opt {

using engine::detail::fmt_double;
using engine::detail::JsonCursor;
using engine::detail::split;
using engine::detail::to_double;
using engine::detail::to_ll;
using engine::detail::to_size;

namespace {

bool table_has_masters(const std::vector<OptimizePoint>& points) {
  for (const OptimizePoint& pt : points) {
    if (pt.n_masters != 0) return true;
  }
  return false;
}

constexpr std::size_t kClassicCols = 17;
constexpr std::size_t kMastersCols = 18;

std::string stats_csv(const OptimumStats& s) {
  return std::to_string(s.schedulable) + ',' + std::to_string(s.breakdown_feasible) + ',' +
         fmt_double(s.breakdown_u_min) + ',' + fmt_double(s.breakdown_u_p50) + ',' +
         fmt_double(s.breakdown_u_p90) + ',' + fmt_double(s.breakdown_u_max) + ',' +
         std::to_string(s.ttr_feasible) + ',' + std::to_string(s.max_ttr_p50) + ',' +
         std::to_string(s.max_ttr_max) + ',' + std::to_string(s.dratio_feasible) + ',' +
         fmt_double(s.min_dratio_p50) + ',' + fmt_double(s.min_dratio_min);
}

OptimumStats stats_from_cells(const std::vector<std::string>& cells, std::size_t base) {
  OptimumStats s;
  s.schedulable = to_size(cells[base]);
  s.breakdown_feasible = to_size(cells[base + 1]);
  s.breakdown_u_min = to_double(cells[base + 2]);
  s.breakdown_u_p50 = to_double(cells[base + 3]);
  s.breakdown_u_p90 = to_double(cells[base + 4]);
  s.breakdown_u_max = to_double(cells[base + 5]);
  s.ttr_feasible = to_size(cells[base + 6]);
  s.max_ttr_p50 = to_ll(cells[base + 7]);
  s.max_ttr_max = to_ll(cells[base + 8]);
  s.dratio_feasible = to_size(cells[base + 9]);
  s.min_dratio_p50 = to_double(cells[base + 10]);
  s.min_dratio_min = to_double(cells[base + 11]);
  return s;
}

}  // namespace

std::size_t quantile_index(std::size_t n, std::size_t p) {
  // Nearest-rank: ceil(p·n / 100) − 1, clamped into [0, n).
  if (n == 0) return 0;
  const std::size_t rank = (p * n + 99) / 100;
  return rank == 0 ? 0 : std::min(rank - 1, n - 1);
}

std::string OptimizeTable::to_csv() const {
  const bool masters = table_has_masters(points);
  std::string out = masters ? "u,beta_lo,beta_hi,masters," : "u,beta_lo,beta_hi,";
  out +=
      "scenarios,policy,schedulable,breakdown_feasible,breakdown_u_min,breakdown_u_p50,"
      "breakdown_u_p90,breakdown_u_max,ttr_feasible,max_ttr_p50,max_ttr_max,dratio_feasible,"
      "min_dratio_p50,min_dratio_min\n";
  for (const OptimizePoint& pt : points) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      out += fmt_double(pt.total_u) + ',' + fmt_double(pt.beta_lo) + ',' +
             fmt_double(pt.beta_hi) + ',';
      if (masters) out += std::to_string(pt.n_masters) + ',';
      out += std::to_string(pt.scenarios) + ',' + policies[p] + ',' + stats_csv(pt.stats[p]) +
             '\n';
    }
  }
  return out;
}

OptimizeTable OptimizeTable::from_csv(const std::string& csv) {
  OptimizeTable out;
  std::istringstream is(csv);
  std::string line;
  if (!std::getline(is, line)) {
    throw std::invalid_argument("OptimizeTable: missing/short CSV header");
  }
  const std::size_t n_cols = split(line, ',').size();
  if (n_cols != kClassicCols && n_cols != kMastersCols) {
    throw std::invalid_argument("OptimizeTable: missing/short CSV header");
  }
  const bool masters = n_cols == kMastersCols;
  // Filled-tracking mirrors SweepCurves::from_csv: a repeated policy starts a
  // new point even when the grid keys repeat.
  std::vector<bool> filled;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> cells = split(line, ',');
    if (cells.size() != n_cols) {
      throw std::invalid_argument("OptimizeTable: bad CSV row '" + line + "'");
    }
    const double u = to_double(cells[0]);
    const double blo = to_double(cells[1]);
    const double bhi = to_double(cells[2]);
    const std::size_t nm = masters ? to_size(cells[3]) : 0;
    const std::size_t base = masters ? 4 : 3;
    const std::size_t scenarios = to_size(cells[base]);
    const std::string& policy = cells[base + 1];

    std::size_t p = 0;
    while (p < out.policies.size() && out.policies[p] != policy) ++p;
    if (p == out.policies.size()) out.policies.push_back(policy);

    const bool same_key = !out.points.empty() && out.points.back().total_u == u &&
                          out.points.back().beta_lo == blo && out.points.back().beta_hi == bhi &&
                          out.points.back().n_masters == nm;
    if (!same_key || (p < filled.size() && filled[p])) {
      out.points.push_back(OptimizePoint{u, blo, bhi, nm, scenarios, {}});
      filled.assign(out.policies.size(), false);
    }
    OptimizePoint& pt = out.points.back();
    pt.stats.resize(out.policies.size());
    filled.resize(out.policies.size(), false);
    pt.stats[p] = stats_from_cells(cells, base + 2);
    filled[p] = true;
  }
  for (OptimizePoint& pt : out.points) pt.stats.resize(out.policies.size());
  return out;
}

std::string OptimizeTable::to_json() const {
  const bool masters = table_has_masters(points);
  std::string out = "{\n  \"policies\": [";
  for (std::size_t p = 0; p < policies.size(); ++p) {
    out += (p == 0 ? "" : ", ");
    out += '"' + policies[p] + '"';
  }
  out += "],\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const OptimizePoint& pt = points[i];
    out += "    {\"u\": " + fmt_double(pt.total_u) + ", \"beta_lo\": " + fmt_double(pt.beta_lo) +
           ", \"beta_hi\": " + fmt_double(pt.beta_hi);
    if (masters) out += ", \"masters\": " + std::to_string(pt.n_masters);
    out += ", \"scenarios\": " + std::to_string(pt.scenarios) + ", \"optima\": {";
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const OptimumStats& s = pt.stats[p];
      out += (p == 0 ? "" : ", ");
      out += '"' + policies[p] + "\": {\"schedulable\": " + std::to_string(s.schedulable) +
             ", \"breakdown_feasible\": " + std::to_string(s.breakdown_feasible) +
             ", \"breakdown_u\": [" + fmt_double(s.breakdown_u_min) + ", " +
             fmt_double(s.breakdown_u_p50) + ", " + fmt_double(s.breakdown_u_p90) + ", " +
             fmt_double(s.breakdown_u_max) + "], \"ttr_feasible\": " +
             std::to_string(s.ttr_feasible) + ", \"max_ttr\": [" +
             std::to_string(s.max_ttr_p50) + ", " + std::to_string(s.max_ttr_max) +
             "], \"dratio_feasible\": " + std::to_string(s.dratio_feasible) +
             ", \"min_dratio\": [" + fmt_double(s.min_dratio_p50) + ", " +
             fmt_double(s.min_dratio_min) + "]}";
    }
    out += "}}";
    out += (i + 1 < points.size() ? ",\n" : "\n");
  }
  out += "  ]\n}\n";
  return out;
}

OptimizeTable OptimizeTable::from_json(const std::string& json) {
  OptimizeTable out;
  JsonCursor c(json);
  c.expect('{');
  c.key("policies");
  c.expect('[');
  if (!c.peek(']')) {
    for (;;) {
      out.policies.push_back(c.string());
      if (!c.peek(',')) break;
      c.expect(',');
    }
  }
  c.expect(']');
  c.expect(',');
  c.key("points");
  c.expect('[');
  if (!c.peek(']')) {
    for (;;) {
      OptimizePoint pt;
      c.expect('{');
      c.key("u");
      pt.total_u = c.number();
      c.expect(',');
      c.key("beta_lo");
      pt.beta_lo = c.number();
      c.expect(',');
      c.key("beta_hi");
      pt.beta_hi = c.number();
      c.expect(',');
      if (c.try_key("masters")) {
        pt.n_masters = static_cast<std::size_t>(c.number());
        c.expect(',');
      }
      c.key("scenarios");
      pt.scenarios = static_cast<std::size_t>(c.number());
      c.expect(',');
      c.key("optima");
      c.expect('{');
      pt.stats.assign(out.policies.size(), OptimumStats{});
      if (!c.peek('}')) {
        for (;;) {
          const std::string policy = c.string();
          c.expect(':');
          std::size_t p = 0;
          while (p < out.policies.size() && out.policies[p] != policy) ++p;
          if (p == out.policies.size()) {
            throw std::invalid_argument("OptimizeTable: unknown policy '" + policy +
                                        "' in point");
          }
          OptimumStats& s = pt.stats[p];
          c.expect('{');
          c.key("schedulable");
          s.schedulable = static_cast<std::size_t>(c.number());
          c.expect(',');
          c.key("breakdown_feasible");
          s.breakdown_feasible = static_cast<std::size_t>(c.number());
          c.expect(',');
          c.key("breakdown_u");
          c.expect('[');
          s.breakdown_u_min = c.number();
          c.expect(',');
          s.breakdown_u_p50 = c.number();
          c.expect(',');
          s.breakdown_u_p90 = c.number();
          c.expect(',');
          s.breakdown_u_max = c.number();
          c.expect(']');
          c.expect(',');
          c.key("ttr_feasible");
          s.ttr_feasible = static_cast<std::size_t>(c.number());
          c.expect(',');
          c.key("max_ttr");
          c.expect('[');
          s.max_ttr_p50 = static_cast<Ticks>(c.number());
          c.expect(',');
          s.max_ttr_max = static_cast<Ticks>(c.number());
          c.expect(']');
          c.expect(',');
          c.key("dratio_feasible");
          s.dratio_feasible = static_cast<std::size_t>(c.number());
          c.expect(',');
          c.key("min_dratio");
          c.expect('[');
          s.min_dratio_p50 = c.number();
          c.expect(',');
          s.min_dratio_min = c.number();
          c.expect(']');
          c.expect('}');
          if (!c.peek(',')) break;
          c.expect(',');
        }
      }
      c.expect('}');
      c.expect('}');
      out.points.push_back(std::move(pt));
      if (!c.peek(',')) break;
      c.expect(',');
    }
  }
  c.expect(']');
  c.expect('}');
  return out;
}

OptimizeTable aggregate_optimize(const OptimizeSpec& spec, const OptimizeResult& result) {
  OptimizeTable out;
  out.policies.reserve(spec.sweep.policies.size());
  for (const engine::Policy p : spec.sweep.policies) {
    out.policies.emplace_back(engine::to_string(p));
  }

  out.points.resize(spec.sweep.points.size());
  // Per-cell distributions, gathered then sorted — sorting makes the
  // aggregation independent of outcome order (threads, shard concatenation).
  std::vector<std::vector<std::vector<double>>> breakdown(spec.sweep.points.size());
  std::vector<std::vector<std::vector<Ticks>>> ttrs(spec.sweep.points.size());
  std::vector<std::vector<std::vector<Ticks>>> dratios(spec.sweep.points.size());
  for (std::size_t i = 0; i < spec.sweep.points.size(); ++i) {
    out.points[i].total_u = spec.sweep.points[i].total_u;
    out.points[i].beta_lo = spec.sweep.points[i].beta_lo;
    out.points[i].beta_hi = spec.sweep.points[i].beta_hi;
    out.points[i].n_masters = spec.sweep.points[i].n_masters;
    out.points[i].stats.assign(spec.sweep.policies.size(), OptimumStats{});
    breakdown[i].resize(spec.sweep.policies.size());
    ttrs[i].resize(spec.sweep.policies.size());
    dratios[i].resize(spec.sweep.policies.size());
  }

  for (const OptimizeOutcome& o : result.outcomes) {
    OptimizePoint& pt = out.points.at(o.point);
    ++pt.scenarios;
    for (std::size_t p = 0; p < o.per_policy.size(); ++p) {
      const PolicyOptimum& po = o.per_policy[p];
      if (po.schedulable) ++pt.stats[p].schedulable;
      if (po.breakdown_q > 0) breakdown[o.point][p].push_back(po.breakdown_u);
      if (po.max_ttr > 0) ttrs[o.point][p].push_back(po.max_ttr);
      if (po.min_dratio_q > 0) dratios[o.point][p].push_back(po.min_dratio_q);
    }
  }

  for (std::size_t i = 0; i < out.points.size(); ++i) {
    for (std::size_t p = 0; p < out.policies.size(); ++p) {
      OptimumStats& s = out.points[i].stats[p];
      auto& bu = breakdown[i][p];
      std::sort(bu.begin(), bu.end());
      s.breakdown_feasible = bu.size();
      if (!bu.empty()) {
        s.breakdown_u_min = bu.front();
        s.breakdown_u_p50 = bu[quantile_index(bu.size(), 50)];
        s.breakdown_u_p90 = bu[quantile_index(bu.size(), 90)];
        s.breakdown_u_max = bu.back();
      }
      auto& tt = ttrs[i][p];
      std::sort(tt.begin(), tt.end());
      s.ttr_feasible = tt.size();
      if (!tt.empty()) {
        s.max_ttr_p50 = tt[quantile_index(tt.size(), 50)];
        s.max_ttr_max = tt.back();
      }
      auto& dr = dratios[i][p];
      std::sort(dr.begin(), dr.end());
      s.dratio_feasible = dr.size();
      if (!dr.empty()) {
        s.min_dratio_p50 =
            static_cast<double>(dr[quantile_index(dr.size(), 50)]) / sensitivity::kScaleOne;
        s.min_dratio_min = static_cast<double>(dr.front()) / sensitivity::kScaleOne;
      }
    }
  }
  return out;
}

}  // namespace profisched::opt
