#include "opt/optimizer.hpp"

#include <stdexcept>
#include <string>

#include "engine/detail/hash.hpp"
#include "engine/detail/record.hpp"
#include "obs/metrics.hpp"
#include "profibus/dm_analysis.hpp"
#include "profibus/edf_analysis.hpp"
#include "profibus/fcfs_analysis.hpp"
#include "profibus/priority_assignment.hpp"

namespace profisched::opt {

namespace {

/// Probe accounting per bisection axis: each counter totals the exact
/// analysis evaluations that axis's binary search spent, straight from
/// SensitivityResult::probes. `bisections` counts searches run.
struct OptMetrics {
  obs::Counter bisections = obs::Registry::global().counter("opt.bisections");
  obs::Counter probes_breakdown = obs::Registry::global().counter("opt.probes.breakdown");
  obs::Counter probes_ttr = obs::Registry::global().counter("opt.probes.ttr");
  obs::Counter probes_dratio = obs::Registry::global().counter("opt.probes.dratio");
  obs::Counter cache_lookups = obs::Registry::global().counter("cache.lookups");
  obs::Counter cache_hits = obs::Registry::global().counter("cache.hits");
  obs::Counter cache_misses = obs::Registry::global().counter("cache.misses");
};

OptMetrics& opt_metrics() {
  static OptMetrics m;
  return m;
}

}  // namespace

bool optimizable(engine::Policy policy) {
  switch (policy) {
    case engine::Policy::Fcfs:
    case engine::Policy::Dm:
    case engine::Policy::Edf:
    case engine::Policy::Opa:
      return true;
    default:
      return false;
  }
}

profibus::NetworkTest optimize_network_test(engine::Policy policy,
                                            const engine::EngineOptions& engine) {
  // Mirror AnalysisEngine::analyze_with exactly, minus the per-scenario memo
  // (probes run on mutated networks, which a Scenario-id-keyed memo would
  // poison): same method, formulation and fuel per policy, so the base
  // verdict here equals the sweep's verdict for the same scenario.
  switch (policy) {
    case engine::Policy::Fcfs:
      return [engine](const profibus::Network& net) {
        return profibus::analyze_fcfs(net, engine.method).schedulable;
      };
    case engine::Policy::Dm:
      return [engine](const profibus::Network& net) {
        return profibus::analyze_dm(net, engine.method, engine.formulation, engine.fuel)
            .schedulable;
      };
    case engine::Policy::Edf:
      return [engine](const profibus::Network& net) {
        return profibus::analyze_edf(net, engine.method, nullptr, engine.fuel).schedulable;
      };
    case engine::Policy::Opa:
      return [engine](const profibus::Network& net) {
        const auto orders =
            profibus::audsley_stream_orders(net, engine.method, engine.formulation, engine.fuel);
        if (!orders) return false;
        return profibus::analyze_fixed_priority(net, *orders, engine.method, engine.formulation,
                                                engine.fuel)
            .schedulable;
      };
    default:
      throw std::invalid_argument(std::string("optimize: policy ") +
                                  std::string(engine::to_string(policy)) +
                                  " has no verdict to bisect against");
  }
}

double breakdown_utilization_at(const profibus::Network& net, Ticks q1024) {
  if (q1024 <= 0) return 0.0;
  return profibus::message_utilization(profibus::with_scaled_frames(net, q1024));
}

PolicyOptimum optimize_policy(const profibus::Network& net, const profibus::NetworkTest& test,
                              const OptimizeOptions& options) {
  OptMetrics& m = opt_metrics();
  PolicyOptimum o;
  o.schedulable = test(net);

  const auto breakdown = sensitivity::max_satisfying(
      options.scale_lo_q, options.scale_hi_q,
      [&](Ticks q) { return test(profibus::with_scaled_frames(net, q)); });
  m.bisections.add(1);
  m.probes_breakdown.add(breakdown.probes);
  if (breakdown) {
    o.breakdown_q = breakdown.value;
    o.breakdown_cap = breakdown.cap_hit;
    o.breakdown_u = breakdown_utilization_at(net, breakdown.value);
  }

  const auto ttr = profibus::max_schedulable_ttr(net, test, options.ttr_cap);
  m.bisections.add(1);
  m.probes_ttr.add(ttr.probes);
  if (ttr) {
    o.max_ttr = ttr.value;
    o.ttr_cap_hit = ttr.cap_hit;
  }

  const auto dratio =
      profibus::min_deadline_ratio(net, test, options.dratio_lo_q, options.dratio_hi_q);
  m.bisections.add(1);
  m.probes_dratio.add(dratio.probes);
  if (dratio) {
    o.min_dratio_q = dratio.value;
    o.dratio_floor = dratio.cap_hit;
  }
  return o;
}

namespace {

using engine::detail::append_i64;
using engine::detail::append_u64;
using engine::detail::RecordReader;

// Cache record kind 4 ("z1"): the optimizer's entry in the shared ResultCache
// namespace (1 = analysis, 2 = sim, 3 = combined). The payload stores only
// integers — breakdown_u is a derived double and is recomputed from the
// regenerated scenario on hits, keeping cached == recomputed exact.
constexpr std::uint64_t kOptimizeRecordKind = 4;
/// Bump when the record layout or search semantics change: old entries then
/// miss cleanly instead of being misread.
constexpr std::uint64_t kOptimizeRecordVersion = 1;

std::uint64_t optimize_params_digest(engine::Policy policy, const engine::EngineOptions& eng,
                                     const OptimizeOptions& opt) {
  engine::detail::Fnv1a64 h;
  h.u64(kOptimizeRecordKind)
      .u64(kOptimizeRecordVersion)
      .u64(static_cast<std::uint64_t>(policy))
      .u64(static_cast<std::uint64_t>(eng.method))
      .u64(static_cast<std::uint64_t>(eng.formulation))
      .i64(eng.fuel)
      .i64(opt.scale_lo_q)
      .i64(opt.scale_hi_q)
      .i64(opt.ttr_cap)
      .i64(opt.dratio_lo_q)
      .i64(opt.dratio_hi_q);
  return h.digest();
}

std::string encode_optimize_record(const PolicyOptimum& o) {
  std::string out = "z1";
  append_u64(out, o.schedulable ? 1 : 0);
  append_i64(out, o.breakdown_q);
  append_u64(out, o.breakdown_cap ? 1 : 0);
  append_i64(out, o.max_ttr);
  append_u64(out, o.ttr_cap_hit ? 1 : 0);
  append_i64(out, o.min_dratio_q);
  append_u64(out, o.dratio_floor ? 1 : 0);
  return out;
}

bool decode_optimize_record(const std::string& payload, PolicyOptimum& o) {
  RecordReader r(payload);
  long long bq = 0, ttr = 0, dq = 0;
  unsigned long long sched = 0, bcap = 0, tcap = 0, dfloor = 0;
  if (!r.tag("z1") || !r.u64(sched) || !r.i64(bq) || !r.u64(bcap) || !r.i64(ttr) ||
      !r.u64(tcap) || !r.i64(dq) || !r.u64(dfloor) || !r.done() || sched > 1 || bcap > 1 ||
      tcap > 1 || dfloor > 1) {
    return false;
  }
  o.schedulable = sched == 1;
  o.breakdown_q = bq;
  o.breakdown_cap = bcap == 1;
  o.max_ttr = ttr;
  o.ttr_cap_hit = tcap == 1;
  o.min_dratio_q = dq;
  o.dratio_floor = dfloor == 1;
  return true;
}

void validate_spec(const OptimizeSpec& spec) {
  if (spec.sweep.policies.empty()) {
    throw std::invalid_argument("OptimizeSpec: needs >= 1 policy");
  }
  for (const engine::Policy p : spec.sweep.policies) {
    if (!optimizable(p)) {
      throw std::invalid_argument(std::string("OptimizeSpec: policy ") +
                                  std::string(engine::to_string(p)) + " cannot be optimized");
    }
  }
  if (spec.sweep.points.empty() || spec.sweep.scenarios_per_point == 0) {
    throw std::invalid_argument("OptimizeSpec: needs >= 1 point and >= 1 scenario per point");
  }
  const OptimizeOptions& o = spec.options;
  if (o.scale_lo_q < 1 || o.scale_lo_q > o.scale_hi_q) {
    throw std::invalid_argument("OptimizeOptions: scale bracket needs 1 <= lo <= hi");
  }
  if (o.dratio_lo_q < 1 || o.dratio_lo_q > o.dratio_hi_q) {
    throw std::invalid_argument("OptimizeOptions: dratio bracket needs 1 <= lo <= hi");
  }
  if (o.ttr_cap < 1) {
    throw std::invalid_argument("OptimizeOptions: ttr cap needs >= 1");
  }
}

}  // namespace

OptimizeResult run_optimize(engine::SweepRunner& runner, const OptimizeSpec& spec,
                            engine::ScenarioCache* cache) {
  return run_optimize(runner, spec, engine::IdRange{0, spec.sweep.total_scenarios()}, cache);
}

OptimizeResult run_optimize(engine::SweepRunner& runner, const OptimizeSpec& spec,
                            engine::IdRange range, engine::ScenarioCache* cache) {
  validate_spec(spec);
  if (range.begin > range.end || range.end > spec.sweep.total_scenarios()) {
    throw std::out_of_range("run_optimize: shard range outside the sweep");
  }
  OptimizeResult out;
  out.outcomes.resize(static_cast<std::size_t>(range.size()));

  // One predicate per policy, shared by every worker: the tests are stateless
  // closures over pure analysis calls, safe to probe concurrently.
  std::vector<profibus::NetworkTest> tests;
  tests.reserve(spec.sweep.policies.size());
  for (const engine::Policy p : spec.sweep.policies) {
    tests.push_back(optimize_network_test(p, spec.sweep.engine));
  }

  std::vector<std::uint64_t> params(spec.sweep.policies.size(), 0);
  if (cache != nullptr) {
    for (std::size_t p = 0; p < spec.sweep.policies.size(); ++p) {
      params[p] = optimize_params_digest(spec.sweep.policies[p], spec.sweep.engine, spec.options);
    }
  }
  OptMetrics& m = opt_metrics();
  const std::uint64_t hits0 = m.cache_hits.value(), misses0 = m.cache_misses.value();

  const auto per_scenario = [&](std::uint64_t id, std::size_t i, unsigned) {
    const engine::Scenario sc = engine::SweepRunner::make_scenario(spec.sweep, id);
    // Optima are a pure function of network content + options (no RNG use
    // past generation), so the scenario half of the key is the plain content
    // hash — equal-content scenarios share entries like analysis records do.
    const std::uint64_t content = cache != nullptr ? engine::canonical_hash(sc) : 0;

    OptimizeOutcome& o = out.outcomes[i];  // disjoint slot per index
    o.id = sc.id;
    o.seed = sc.seed;
    o.point = static_cast<std::size_t>(id) / spec.sweep.scenarios_per_point;
    o.per_policy.reserve(spec.sweep.policies.size());
    for (std::size_t p = 0; p < spec.sweep.policies.size(); ++p) {
      const engine::CacheKey key{content, params[p]};
      std::string payload;
      PolicyOptimum po;
      if (cache != nullptr) m.cache_lookups.add(1);
      if (cache != nullptr && cache->load(key, payload) &&
          decode_optimize_record(payload, po)) {
        m.cache_hits.add(1);
        po.breakdown_u = breakdown_utilization_at(sc.net, po.breakdown_q);
        o.per_policy.push_back(po);
        continue;
      }
      po = optimize_policy(sc.net, tests[p], spec.options);
      o.per_policy.push_back(po);
      if (cache != nullptr) {
        m.cache_misses.add(1);
        cache->store(key, encode_optimize_record(po));
      }
    }
  };
  runner.run_scenarios(spec.sweep.total_scenarios(), range, out, per_scenario);
  out.cache_hits = m.cache_hits.value() - hits0;
  out.cache_misses = m.cache_misses.value() - misses0;
  return out;
}

}  // namespace profisched::opt
