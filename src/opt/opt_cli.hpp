// opt_cli.hpp — argument parsing for the `profisched optimize` subcommand,
// in the library (rather than the CLI translation unit) so the validation is
// unit-testable: tests/opt/test_opt_cli.cpp feeds it the same argv slices
// the tool does. Grid flags and scalar parsers are shared with every other
// sweep-style subcommand via engine/detail/cli_parse.hpp.
#pragma once

#include <string>
#include <vector>

#include "engine/detail/cli_parse.hpp"
#include "opt/optimizer.hpp"

namespace profisched::opt {

/// Everything `profisched optimize` needs beyond the spec.
struct OptimizeCli {
  OptimizeSpec spec;
  unsigned threads = 0;  ///< 0 = auto
  std::string csv_path;
  std::string json_path;
  std::string cache_dir;     ///< --cache DIR: persistent scenario-result cache
  std::string metrics_path;  ///< --metrics FILE: metrics + run-manifest JSON sidecar
  bool progress = false;     ///< --progress: stderr heartbeat while scenarios run
};

/// Parse the flags after `profisched optimize` into `out`. Returns true on
/// success; on failure returns false with a one-line diagnostic in `error`
/// (never throws). Accepted flags:
///   --scenarios N  --masters N[,N,...]  --streams N
///   --u LO:HI:STEPS  --beta LO:HI:STEPS  --beta-lo X  --beta-hi X
///   --split w1,...,wK  --skew S
///   --policies fcfs,dm,edf,opa  --threads N  --seed N  --ttr TICKS
///   --method paper|refined
///   --scale-lo X  --scale-hi X     frame-scaling bracket (factors, e.g. 0.25)
///   --ttr-cap TICKS                upper bracket of the max-T_TR search
///   --dratio-lo X  --dratio-hi X   D/T-ratio bracket
///   --csv FILE  --json FILE  --cache DIR  --metrics FILE  --progress
/// Fractional bracket flags are rounded to the q/1024 fixed point the
/// searches run in; bracket sanity (1 <= lo <= hi after rounding) is checked
/// here so run_optimize never throws on CLI-built specs.
[[nodiscard]] bool parse_optimize_args(const std::vector<std::string>& args, OptimizeCli& out,
                                       std::string& error);

}  // namespace profisched::opt
