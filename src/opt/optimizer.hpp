// optimizer.hpp — `profisched optimize`: per-scenario parameter synthesis.
//
// The paper (conf_ipps_TovarV99) is ultimately about *setting* PROFIBUS
// parameters — choosing T_TR and deadline assignments so the token ring
// stays schedulable — not just checking one fixed configuration. This module
// answers the synthesis questions per generated scenario and policy, each by
// exact bisection through core/sensitivity_search.hpp:
//
//   breakdown utilization — largest uniform frame-scaling factor q/1024 (and
//     the message utilization it lands at) the analysis still accepts;
//   max T_TR — largest target token rotation time that keeps the verdict;
//   min D/T ratio — smallest uniform deadline-to-period ratio sustainable.
//
// Determinism contract matches the sweep runner: scenarios are regenerated
// from (seed, id) alone, outcomes land in slot id - range.begin, and every
// probe calls the same profibus analyses AnalysisEngine dispatches (same
// method / formulation / fuel), so the base verdict here equals the sweep's
// verdict for the same scenario. Results are byte-identical for any thread
// count and any shard split (src/dist/ carries an Optimize mode), and cache
// through ScenarioCache with a versioned params digest (record kind 4).
#pragma once

#include "engine/sweep_runner.hpp"
#include "profibus/sensitivity.hpp"

namespace profisched::opt {

/// Search brackets for the three per-policy bisections. All fixed-point
/// factors are q/1024 (sensitivity::kScaleOne) like the sensitivity layer.
struct OptimizeOptions {
  /// Frame-scaling bracket for the breakdown search. The floor sits below
  /// 1024 so networks unschedulable at the base configuration still report
  /// the (sub-1.0) scaling they would break down at.
  Ticks scale_lo_q = 64;         ///< 1/16 of the generated frame sizes
  Ticks scale_hi_q = 16 * 1024;  ///< 16x
  /// Upper bracket for the max-T_TR search (floor is ring latency + 1).
  Ticks ttr_cap = 1 << 24;
  /// D/T-ratio bracket for the min-deadline-ratio search.
  Ticks dratio_lo_q = 64;         ///< D = T/16
  Ticks dratio_hi_q = 64 * 1024;  ///< D = 64·T
};

/// The three synthesis answers for one (scenario, policy). A value of 0 in
/// breakdown_q / max_ttr / min_dratio_q means that search found no feasible
/// value inside its bracket (every real boundary is >= 1).
struct PolicyOptimum {
  bool schedulable = false;   ///< verdict at the base configuration
  Ticks breakdown_q = 0;      ///< largest accepting frame scale (q/1024)
  bool breakdown_cap = false; ///< bracket ceiling still accepted
  double breakdown_u = 0.0;   ///< message utilization at breakdown_q
  Ticks max_ttr = 0;          ///< largest accepting T_TR
  bool ttr_cap_hit = false;   ///< ttr_cap still accepted
  Ticks min_dratio_q = 0;     ///< smallest accepting D/T ratio (q/1024)
  bool dratio_floor = false;  ///< bracket floor already accepted
};

/// Per-scenario result: one PolicyOptimum per requested policy (indexed like
/// the sweep's policies).
struct OptimizeOutcome {
  std::uint64_t id = 0;
  std::uint64_t seed = 0;
  std::size_t point = 0;  ///< index into the sweep's points
  std::vector<PolicyOptimum> per_policy;
};

/// Whole-run result; outcomes indexed by global scenario id minus the
/// range's begin, exactly like the other sweep modes.
struct OptimizeResult : engine::RunStats {
  std::vector<OptimizeOutcome> outcomes;
};

/// Everything that defines an optimize run: the scenario grid (points ×
/// scenarios_per_point × policies, identical to a sweep) plus the brackets.
struct OptimizeSpec {
  engine::SweepSpec sweep;
  OptimizeOptions options;
};

/// Policies the optimizer can synthesize parameters for (the four
/// AP-queue analyses; TokenRing/Holistic have no per-policy verdict to
/// bisect against).
[[nodiscard]] bool optimizable(engine::Policy policy);

/// The feasibility predicate the optimizer probes with: the SAME analysis
/// dispatch (method / formulation / fuel) AnalysisEngine uses for `policy`,
/// as a profibus::NetworkTest over arbitrary (mutated) networks. Throws
/// std::invalid_argument for non-optimizable policies.
[[nodiscard]] profibus::NetworkTest optimize_network_test(engine::Policy policy,
                                                          const engine::EngineOptions& engine);

/// Message utilization of `net` with frames scaled to q/1024 — the
/// "breakdown utilization" once q is a breakdown boundary. 0.0 for q == 0
/// (the infeasible sentinel).
[[nodiscard]] double breakdown_utilization_at(const profibus::Network& net, Ticks q1024);

/// Run the three searches for one network under one predicate.
[[nodiscard]] PolicyOptimum optimize_policy(const profibus::Network& net,
                                            const profibus::NetworkTest& test,
                                            const OptimizeOptions& options);

/// Optimize the scenarios with ids in `range`, fanned across `runner`'s pool
/// through the same ranged core as every sweep mode. With a cache, each
/// (scenario, policy) optimum is looked up by content address first and only
/// misses are bisected (and stored); breakdown_u is recomputed from the
/// regenerated scenario on both paths, so outcomes are bit-identical either
/// way.
[[nodiscard]] OptimizeResult run_optimize(engine::SweepRunner& runner, const OptimizeSpec& spec,
                                          engine::IdRange range,
                                          engine::ScenarioCache* cache = nullptr);

/// Whole-run wrapper: optimize over [0, total_scenarios()).
[[nodiscard]] OptimizeResult run_optimize(engine::SweepRunner& runner, const OptimizeSpec& spec,
                                          engine::ScenarioCache* cache = nullptr);

}  // namespace profisched::opt
