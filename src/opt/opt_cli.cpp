#include "opt/opt_cli.hpp"

#include <cmath>

namespace profisched::opt {

namespace {

// Fractional CLI bracket → q/1024 fixed point (nearest). parse_optimize_args
// re-checks the 1 <= lo <= hi invariant after rounding, so a sub-1/2048
// factor fails loudly instead of collapsing to 0.
bool parse_cli_q1024(const std::string& s, Ticks& out) {
  double x = 0.0;
  if (!engine::parse_cli_nonneg_double(s, x) || x <= 0.0 || x > 1e12) return false;
  out = static_cast<Ticks>(std::llround(x * sensitivity::kScaleOne));
  return out >= 1;
}

}  // namespace

bool parse_optimize_args(const std::vector<std::string>& args, OptimizeCli& out,
                         std::string& error) {
  OptimizeCli cli;
  cli.spec.sweep.base.n_masters = 1;
  cli.spec.sweep.base.streams_per_master = 5;
  cli.spec.sweep.base.ttr = 3'000;
  cli.spec.sweep.scenarios_per_point = 100;
  cli.spec.sweep.policies = {engine::Policy::Fcfs, engine::Policy::Dm, engine::Policy::Edf};
  engine::GridCliArgs grid;

  const auto fail = [&](const std::string& msg) {
    error = msg;
    return false;
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto next = [&](std::string& v) {
      if (i + 1 >= args.size()) return false;
      v = args[++i];
      return true;
    };
    std::string v;
    std::size_t count = 0;
    if (arg == "--scenarios") {
      if (!next(v) || !engine::parse_cli_count(v, cli.spec.sweep.scenarios_per_point,
                                               100'000'000) ||
          cli.spec.sweep.scenarios_per_point == 0) {
        return fail("--scenarios needs an integer in [1, 1e8]");
      }
    } else if (arg == "--masters") {
      if (!next(v) || v.empty()) {
        return fail("--masters needs a comma list of integers in [1, 4096]");
      }
      grid.masters = v;
    } else if (arg == "--split") {
      if (!next(v) || v.empty()) return fail("--split needs a comma list of weights");
      grid.split = v;
    } else if (arg == "--skew") {
      if (!next(v) || v.empty()) return fail("--skew needs a number >= 0");
      grid.skew = v;
    } else if (arg == "--streams") {
      if (!next(v) || !engine::parse_cli_count(v, cli.spec.sweep.base.streams_per_master, 4'096) ||
          cli.spec.sweep.base.streams_per_master == 0) {
        return fail("--streams needs an integer in [1, 4096]");
      }
    } else if (arg == "--u") {
      if (!next(v) || v.empty()) {
        return fail("--u needs LO:HI:STEPS with numeric LO/HI and integer STEPS");
      }
      grid.u = v;
    } else if (arg == "--beta") {
      if (!next(v) || v.empty()) {
        return fail("--beta needs LO:HI:STEPS with numeric LO/HI and integer STEPS");
      }
      grid.beta = v;
    } else if (arg == "--beta-lo") {
      if (!next(v) || v.empty()) return fail("--beta-lo needs a number >= 0");
      grid.beta_lo = v;
    } else if (arg == "--beta-hi") {
      if (!next(v) || v.empty()) return fail("--beta-hi needs a number >= 0");
      grid.beta_hi = v;
    } else if (arg == "--policies") {
      if (!next(v) || !engine::parse_cli_policies(v, false, cli.spec.sweep.policies)) {
        return fail("--policies needs a comma list drawn from fcfs,dm,edf,opa (no duplicates)");
      }
      for (const engine::Policy p : cli.spec.sweep.policies) {
        if (!optimizable(p)) {
          return fail(std::string("--policies: ") + std::string(engine::to_string(p)) +
                      " has no per-policy verdict to optimize against");
        }
      }
    } else if (arg == "--threads") {
      if (!next(v) || !engine::parse_cli_count(v, count, 1'024)) {
        return fail("--threads needs an integer in [0, 1024]");
      }
      cli.threads = static_cast<unsigned>(count);
    } else if (arg == "--seed") {
      if (!next(v) || !engine::parse_cli_count(v, count)) {
        return fail("--seed needs a non-negative integer");
      }
      cli.spec.sweep.seed = count;
    } else if (arg == "--ttr") {
      if (!next(v) || !engine::parse_cli_count(v, count, 1'000'000'000'000'000ULL)) {
        return fail("--ttr needs a tick count");
      }
      cli.spec.sweep.base.ttr = static_cast<Ticks>(count);
    } else if (arg == "--method") {
      if (!next(v)) return fail("--method needs paper|refined");
      if (v == "paper") {
        cli.spec.sweep.engine.method = profibus::TcycleMethod::PaperEq13;
      } else if (v == "refined") {
        cli.spec.sweep.engine.method = profibus::TcycleMethod::PerMasterRefined;
      } else {
        return fail("--method needs paper|refined");
      }
    } else if (arg == "--scale-lo") {
      if (!next(v) || !parse_cli_q1024(v, cli.spec.options.scale_lo_q)) {
        return fail("--scale-lo needs a factor >= 1/1024");
      }
    } else if (arg == "--scale-hi") {
      if (!next(v) || !parse_cli_q1024(v, cli.spec.options.scale_hi_q)) {
        return fail("--scale-hi needs a factor >= 1/1024");
      }
    } else if (arg == "--ttr-cap") {
      if (!next(v) || !engine::parse_cli_count(v, count, 1'000'000'000'000'000ULL) || count == 0) {
        return fail("--ttr-cap needs a tick count >= 1");
      }
      cli.spec.options.ttr_cap = static_cast<Ticks>(count);
    } else if (arg == "--dratio-lo") {
      if (!next(v) || !parse_cli_q1024(v, cli.spec.options.dratio_lo_q)) {
        return fail("--dratio-lo needs a ratio >= 1/1024");
      }
    } else if (arg == "--dratio-hi") {
      if (!next(v) || !parse_cli_q1024(v, cli.spec.options.dratio_hi_q)) {
        return fail("--dratio-hi needs a ratio >= 1/1024");
      }
    } else if (arg == "--csv") {
      if (!next(v) || v.empty()) return fail("--csv needs a file path");
      cli.csv_path = v;
    } else if (arg == "--json") {
      if (!next(v) || v.empty()) return fail("--json needs a file path");
      cli.json_path = v;
    } else if (arg == "--cache") {
      if (!next(v) || v.empty()) return fail("--cache needs a directory path");
      cli.cache_dir = v;
    } else if (arg == "--metrics") {
      if (!next(v) || v.empty()) return fail("--metrics needs a file path");
      cli.metrics_path = v;
    } else if (arg == "--progress") {
      cli.progress = true;
    } else {
      return fail("unknown optimize flag '" + arg + "'");
    }
  }

  if (cli.spec.options.scale_lo_q > cli.spec.options.scale_hi_q) {
    return fail("--scale-lo must not exceed --scale-hi");
  }
  if (cli.spec.options.dratio_lo_q > cli.spec.options.dratio_hi_q) {
    return fail("--dratio-lo must not exceed --dratio-hi");
  }
  if (!engine::expand_cli_grid(grid, cli.spec.sweep.base, cli.spec.sweep.points, error)) {
    return false;
  }
  if (cli.spec.sweep.total_scenarios() > 100'000'000) {
    return fail("sweep too large (" + std::to_string(cli.spec.sweep.total_scenarios()) +
                " scenarios); shrink the grid axes or --scenarios");
  }
  // Fail doomed output destinations at parse time, not after the search.
  if (!cli.csv_path.empty() && !engine::validate_cli_output_file(cli.csv_path, "--csv", error)) {
    return false;
  }
  if (!cli.json_path.empty() &&
      !engine::validate_cli_output_file(cli.json_path, "--json", error)) {
    return false;
  }
  if (!cli.metrics_path.empty() &&
      !engine::validate_cli_output_file(cli.metrics_path, "--metrics", error)) {
    return false;
  }
  if (!cli.cache_dir.empty() &&
      !engine::validate_cli_output_dir(cli.cache_dir, "--cache", error)) {
    return false;
  }
  out = std::move(cli);
  error.clear();
  return true;
}

}  // namespace profisched::opt
