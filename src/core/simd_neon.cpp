// simd_neon.cpp — NEON kernel table. NEON is baseline on aarch64, so unlike
// AVX2 this needs no per-file flags or runtime cpu check.
#include "core/simd.hpp"
#include "core/simd_lanes.hpp"

namespace profisched::simd {

#if defined(__aarch64__)

const Kernels* neon_kernels() noexcept {
  static const Kernels table = detail::make_kernels<detail::NeonBackend>("neon");
  return &table;
}

#else

const Kernels* neon_kernels() noexcept { return nullptr; }

#endif

}  // namespace profisched::simd
