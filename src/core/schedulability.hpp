// schedulability.hpp — one-call façade over the §2 analyses: pick a policy,
// get per-task worst-case response times and a verdict. Used by the examples
// and benches so that policy comparisons are a loop over an enum rather than
// four differently-shaped call sites.
#pragma once

#include <string_view>
#include <vector>

#include "core/formulation.hpp"
#include "core/response_time_edf.hpp"
#include "core/response_time_fp.hpp"

namespace profisched {

/// The scheduling policies surveyed in §2 of the paper.
enum class Policy {
  RateMonotonic,       ///< fixed priorities by period, preemptive
  DeadlineMonotonic,   ///< fixed priorities by deadline, preemptive
  NpDeadlineMonotonic, ///< fixed priorities by deadline, non-preemptive (eqs. 1–2)
  Edf,                 ///< dynamic priorities, preemptive (eqs. 6–8)
  NpEdf,               ///< dynamic priorities, non-preemptive (eqs. 9–10)
};

[[nodiscard]] std::string_view to_string(Policy p);

/// Uniform per-task record across policies.
struct TaskVerdict {
  Ticks response = kNoBound;  ///< worst-case response time (kNoBound if divergent)
  bool meets_deadline = false;
};

/// Whole-set verdict under one policy.
struct Verdict {
  Policy policy{};
  std::vector<TaskVerdict> per_task;
  bool schedulable = false;

  /// max_i R_i / D_i over the set (>1 means a miss); handy scalar for sweeps.
  [[nodiscard]] double worst_normalized_response(const TaskSet& ts) const;
};

/// Run the worst-case response-time analysis for `policy` over `ts`.
[[nodiscard]] Verdict analyze(const TaskSet& ts, Policy policy,
                              Formulation form = kDefaultFormulation);

/// Convenience: analyse under every policy in the enum order above.
[[nodiscard]] std::vector<Verdict> analyze_all_policies(const TaskSet& ts,
                                                        Formulation form = kDefaultFormulation);

}  // namespace profisched
