// response_time_fp.hpp — fixed-priority worst-case response-time analysis
// (§2.1 of the paper).
//
// Preemptive (Joseph & Pandya, extended with release jitter per Audsley et
// al. / Tindell):
//
//     w_i^{m+1} = C_i + Σ_{j ∈ hp(i)} ⌈(w_i^m + J_j) / T_j⌉ · C_j
//     R_i      = J_i + w_i
//
// Non-preemptive (paper eqs. 1–2, Audsley et al.):
//
//     R_i = w_i + C_i   (paper eq. 1; we additionally add J_i when jitter
//                        is modelled, so R is measured from the *arrival*
//                        of the triggering event)
//     w_i^{m+1} = B_i + Σ_{j ∈ hp(i)} I_j(w_i^m)
//
// where the interference term I_j and blocking factor B_i depend on the
// Formulation:
//   * PaperLiteral: I_j(w) = ⌈(w + J_j)/T_j⌉ · C_j,       B_i = max_{lp} C_j
//   * Refined:      I_j(w) = (⌊(w + J_j)/T_j⌋ + 1) · C_j, B_i = max_{lp} (C_j − 1)
//
// Both iterations start from w^0 = B_i + Σ_{hp} C_j, a value that is (a) a
// lower bound on the fixed point for both formulations and (b) non-zero, so
// the paper-literal ⌈·⌉ form cannot collapse to the degenerate w = B fixed
// point at 0. Iterations are monotone non-decreasing, so the fixed point
// reached is the least one above the start.
//
// Validity: constrained deadlines (D <= T) — exactly one pending instance
// per task, which is also the regime the paper's PROFIBUS adaptation assumes
// ("two messages from the same stream would mean that a deadline ... was
// missed").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/formulation.hpp"
#include "core/priority_assignment.hpp"
#include "core/task.hpp"
#include "core/taskset_view.hpp"

namespace profisched {

/// Outcome of one response-time fixed-point computation.
struct RtaResult {
  bool converged = false;  ///< false => iteration diverged (response = kNoBound)
  Ticks response = kNoBound;  ///< worst-case response time (from event arrival)
  int iterations = 0;         ///< fixed-point iterations used

  /// Schedulability against a deadline: converged and response <= D.
  [[nodiscard]] bool meets(Ticks deadline) const noexcept {
    return converged && response <= deadline;
  }
};

/// Per-set analysis outcome.
struct FpAnalysis {
  std::vector<RtaResult> per_task;  ///< indexed like the TaskSet
  bool schedulable = false;         ///< all tasks meet their deadlines
};

/// Blocking factor B_i (paper eq. 2): the longest lower-priority execution
/// that can delay task `i` in a non-preemptive system. `lower_priority` lists
/// the indices of tasks with priority below i. PaperLiteral: max C_j;
/// Refined: max (C_j − 1) (a lower-priority job must have *started* strictly
/// before the instant of interest).
[[nodiscard]] Ticks blocking_factor(const TaskSet& ts, std::span<const std::size_t> lower_priority,
                                    Formulation form = kDefaultFormulation);

/// Preemptive worst-case response time of task `i` given the set of
/// higher-priority task indices. Jitter-aware; R measured from event arrival
/// (includes J_i).
[[nodiscard]] RtaResult response_time_preemptive(const TaskSet& ts, std::size_t i,
                                                 std::span<const std::size_t> higher_priority,
                                                 int fuel = 1 << 16);

/// Non-preemptive worst-case response time of task `i` (paper eqs. 1–2).
[[nodiscard]] RtaResult response_time_nonpreemptive(const TaskSet& ts, std::size_t i,
                                                    std::span<const std::size_t> higher_priority,
                                                    std::span<const std::size_t> lower_priority,
                                                    Formulation form = kDefaultFormulation,
                                                    int fuel = 1 << 16);

// ---------------------------------------------------------- SoA fast path
//
// The TaskSet/index-span functions above are the retained reference
// implementations (tests/core/test_kernel_equivalence.cpp runs the two
// against each other). The hot path iterates a priority-permuted TaskSetView
// instead: higher-priority tasks are the prefix [0, rank), lower-priority
// ones the suffix (rank, n), so the interference loop streams four flat
// arrays with no index indirection and no per-task vector builds.
//
// `warm_w` seeds the fixed-point iteration: 0 reproduces the reference
// iteration exactly (same iterates, same count); a non-zero seed must be a
// lower bound on the fixed point (e.g. the converged w of the same task at a
// lower utilization — the recurrence is monotone in every C). The iteration
// then converges to the *same* least fixed point in fewer steps; only
// RtaResult::iterations differs. (Starting closer also means a warm run can
// converge within a fuel budget the cold run would exhaust — identical
// verdicts assume fuel large enough for the cold iteration to converge or
// saturate, which the 1 << 16 default is in practice.)

/// Blocking factor over the view suffix [first_lower, n).
[[nodiscard]] Ticks blocking_factor(const TaskSetView& pv, std::size_t first_lower,
                                    Formulation form = kDefaultFormulation);

/// Preemptive response time of the task at view position `rank`.
[[nodiscard]] RtaResult response_time_preemptive(const TaskSetView& pv, std::size_t rank,
                                                 int fuel = 1 << 16, Ticks warm_w = 0);

/// Non-preemptive response time of the task at view position `rank`.
[[nodiscard]] RtaResult response_time_nonpreemptive(const TaskSetView& pv, std::size_t rank,
                                                    Formulation form = kDefaultFormulation,
                                                    int fuel = 1 << 16, Ticks warm_w = 0);

/// Analyse a whole set under a priority order (highest first), preemptive.
/// Runs on the SoA fast path via an internal scratch; bit-identical to
/// calling the reference response_time_preemptive per task.
[[nodiscard]] FpAnalysis analyze_preemptive_fp(const TaskSet& ts, const PriorityOrder& order,
                                               int fuel = 1 << 16);

/// Analyse a whole set under a priority order (highest first), non-preemptive.
[[nodiscard]] FpAnalysis analyze_nonpreemptive_fp(const TaskSet& ts, const PriorityOrder& order,
                                                  Formulation form = kDefaultFormulation,
                                                  int fuel = 1 << 16);

/// Scratch-reusing forms: bind/iterate entirely inside `scratch` (no
/// steady-state allocations across calls). With `warm_start` true and a
/// scratch.warm left by a previous compatible call (same structure and
/// order, parameters only grown — the usweep contract), each task's
/// iteration is seeded from its previous fixed point. Responses are
/// identical either way; iteration counts shrink.
[[nodiscard]] FpAnalysis analyze_preemptive_fp(const TaskSet& ts, const PriorityOrder& order,
                                               int fuel, RtaScratch& scratch,
                                               bool warm_start = false);
[[nodiscard]] FpAnalysis analyze_nonpreemptive_fp(const TaskSet& ts, const PriorityOrder& order,
                                                  Formulation form, int fuel, RtaScratch& scratch,
                                                  bool warm_start = false);

/// Whole-set outcome folded down to what a sweep cell needs — exactly the
/// information run_usweep derives from an FpAnalysis, but computed without
/// materializing the per-task result vector, so a warm sweep step performs
/// zero allocations. The fold is order-independent (sticky kNoBound on any
/// non-convergence, max over responses, summed iterations), hence
/// bit-identical to folding analyze_*_fp's per_task output.
struct FpCellResult {
  bool schedulable = false;
  Ticks worst_response = 0;  ///< kNoBound if any task diverged / ran out of fuel
  std::uint64_t iterations = 0;  ///< Σ per-task fixed-point iterations
};

[[nodiscard]] FpCellResult analyze_fp_cell(const TaskSet& ts, const PriorityOrder& order,
                                           bool preemptive, Formulation form, int fuel,
                                           RtaScratch& scratch, bool warm_start);

/// LevelFeasibility adaptor for Audsley's OPA using the non-preemptive RTA:
/// task `i` is feasible at a level iff its NP response time — interference
/// from `higher_priority`, blocking from `lower_priority` — meets D_i.
[[nodiscard]] bool np_lowest_level_feasible(const TaskSet& ts, std::size_t i,
                                            const std::vector<std::size_t>& higher_priority,
                                            const std::vector<std::size_t>& lower_priority);

}  // namespace profisched
