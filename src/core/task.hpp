// task.hpp — the task / message-stream model of the paper (§2).
//
// A task (or message stream — the paper deliberately uses the same
// characterisation for both) is described by its worst-case execution
// (transmission) time C, relative deadline D, minimum inter-arrival time
// (period) T, and — for the communication adaptation of §4 — a release
// jitter J inherited from the generating application task.
#pragma once

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/time_types.hpp"

namespace profisched {

/// One periodic/sporadic task or message stream.
///
/// Invariants (checked by TaskSet::validate): C >= 1, T >= C, D >= 1, J >= 0.
/// D may be smaller or larger than T (constrained or arbitrary deadlines);
/// individual analyses document which deadline models they support.
struct Task {
  Ticks C = 0;  ///< worst-case execution / transmission time
  Ticks D = 0;  ///< relative deadline
  Ticks T = 0;  ///< period (minimum inter-arrival time for sporadics)
  Ticks J = 0;  ///< release jitter (0 unless inherited, §4.1)
  std::string name;  ///< optional human-readable label

  [[nodiscard]] double utilization() const {
    return static_cast<double>(C) / static_cast<double>(T);
  }
};

/// Immutable-after-construction set of tasks. Analyses take `const TaskSet&`
/// and identify tasks by index into this set; priority orders are expressed
/// as separate permutations (see priority_assignment.hpp) so one set can be
/// analysed under several assignments without copying.
class TaskSet {
 public:
  TaskSet() = default;
  explicit TaskSet(std::vector<Task> tasks) : tasks_(std::move(tasks)) { validate(); }

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }
  [[nodiscard]] const Task& operator[](std::size_t i) const { return tasks_.at(i); }
  [[nodiscard]] std::span<const Task> tasks() const noexcept { return tasks_; }

  [[nodiscard]] auto begin() const noexcept { return tasks_.begin(); }
  [[nodiscard]] auto end() const noexcept { return tasks_.end(); }

  /// Append a task (re-validates the newcomer).
  void push_back(Task t);

  /// Total utilization U = Σ C_i / T_i.
  [[nodiscard]] double utilization() const;

  /// Σ C_i — the initial value of the synchronous busy-period iteration.
  [[nodiscard]] Ticks total_execution() const;

  /// max_i C_i (0 for an empty set).
  [[nodiscard]] Ticks max_execution() const;

  /// min_i D_i (kNoBound for an empty set).
  [[nodiscard]] Ticks min_deadline() const;

  /// max_i D_i (0 for an empty set).
  [[nodiscard]] Ticks max_deadline() const;

  /// lcm of all periods, saturating to kNoBound on overflow.
  [[nodiscard]] Ticks hyperperiod() const;

  /// True iff D_i == T_i for all tasks (the Liu–Layland model).
  [[nodiscard]] bool implicit_deadlines() const;

  /// True iff D_i <= T_i for all tasks (constrained deadlines).
  [[nodiscard]] bool constrained_deadlines() const;

  /// Throws std::invalid_argument on any violated invariant.
  void validate() const;

 private:
  std::vector<Task> tasks_;
};

}  // namespace profisched
