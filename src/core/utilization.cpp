#include "core/utilization.hpp"

#include <cmath>
#include <stdexcept>

namespace profisched {

double liu_layland_bound(std::size_t n) {
  if (n <= 1) return 1.0;
  const double nn = static_cast<double>(n);
  return nn * (std::pow(2.0, 1.0 / nn) - 1.0);
}

bool liu_layland_test(const TaskSet& ts) {
  if (!ts.implicit_deadlines()) {
    throw std::invalid_argument("liu_layland_test requires D == T for all tasks");
  }
  return ts.utilization() <= liu_layland_bound(ts.size());
}

bool hyperbolic_bound_test(const TaskSet& ts) {
  if (!ts.implicit_deadlines()) {
    throw std::invalid_argument("hyperbolic_bound_test requires D == T for all tasks");
  }
  double product = 1.0;
  for (const Task& t : ts) product *= t.utilization() + 1.0;
  return product <= 2.0;
}

bool edf_utilization_test(const TaskSet& ts) { return ts.utilization() <= 1.0; }

}  // namespace profisched
