#include "core/response_time_fp.hpp"

#include <algorithm>

#include "core/simd.hpp"

namespace profisched {

namespace {

/// One step of the interference sum Σ_j I_j(w) for the given formulation.
Ticks interference(const TaskSet& ts, std::span<const std::size_t> higher_priority, Ticks w,
                   Formulation form) {
  Ticks sum = 0;
  for (const std::size_t j : higher_priority) {
    const Task& tj = ts[j];
    const Ticks arg = sat_add(w, tj.J);
    const Ticks jobs = (form == Formulation::PaperLiteral) ? ceil_div_plus(arg, tj.T)
                                                           : floor_div_plus1(arg, tj.T);
    sum = sat_add(sum, sat_mul(jobs, tj.C));
  }
  return sum;
}

/// Monotone fixed-point iteration from `w0`; returns the least fixed point
/// >= w0, or kNoBound on divergence / fuel exhaustion.
RtaResult iterate(const TaskSet& ts, std::span<const std::size_t> higher_priority, Ticks base,
                  Ticks w0, Formulation form, int fuel) {
  RtaResult out;
  Ticks w = w0;
  for (int it = 0; it < fuel; ++it) {
    const Ticks next = sat_add(base, interference(ts, higher_priority, w, form));
    out.iterations = it + 1;
    if (next == w) {
      out.converged = true;
      out.response = w;
      return out;
    }
    if (next == kNoBound) return out;
    w = next;
  }
  return out;
}

}  // namespace

Ticks blocking_factor(const TaskSet& ts, std::span<const std::size_t> lower_priority,
                      Formulation form) {
  Ticks b = 0;
  for (const std::size_t j : lower_priority) {
    const Ticks c = (form == Formulation::PaperLiteral) ? ts[j].C : std::max<Ticks>(ts[j].C - 1, 0);
    b = std::max(b, c);
  }
  return b;
}

RtaResult response_time_preemptive(const TaskSet& ts, std::size_t i,
                                   std::span<const std::size_t> higher_priority, int fuel) {
  const Task& ti = ts[i];
  // Preemptive interference always counts a job released exactly at w, i.e.
  // the ceil form — that is the classic Joseph–Pandya recurrence.
  RtaResult r = iterate(ts, higher_priority, ti.C, ti.C, Formulation::PaperLiteral, fuel);
  if (r.converged) r.response = sat_add(r.response, ti.J);
  return r;
}

RtaResult response_time_nonpreemptive(const TaskSet& ts, std::size_t i,
                                      std::span<const std::size_t> higher_priority,
                                      std::span<const std::size_t> lower_priority, Formulation form,
                                      int fuel) {
  const Task& ti = ts[i];
  const Ticks b = blocking_factor(ts, lower_priority, form);

  // Start from B + Σ_hp C_j: a positive lower bound on the fixed point for
  // both formulations (see header).
  Ticks w0 = b;
  for (const std::size_t j : higher_priority) w0 = sat_add(w0, ts[j].C);

  RtaResult r = iterate(ts, higher_priority, b, w0, form, fuel);
  if (r.converged) r.response = sat_add(sat_add(r.response, ti.C), ti.J);
  return r;
}

// ------------------------------------------------------------ SoA fast path

namespace {

/// Σ_j I_j(w) over the priority prefix [0, hp_count) of a permuted view —
/// the same sum as interference() above, streamed from flat arrays. The
/// Formulation branch is hoisted to a template parameter so the loop body is
/// branch-free (Ceil == PaperLiteral's ceil_div_plus).
template <bool Ceil>
Ticks interference(const TaskSetView& pv, std::size_t hp_count, Ticks w) {
  Ticks sum = 0;
  for (std::size_t j = 0; j < hp_count; ++j) {
    const Ticks arg = sat_add(w, pv.J[j]);
    const Ticks jobs = Ceil ? ceil_div_plus(arg, pv.T[j]) : floor_div_plus1(arg, pv.T[j]);
    sum = sat_add(sum, sat_mul(jobs, pv.C[j]));
  }
  return sum;
}

/// View-based fixed point, additionally exposing the last iterate w itself —
/// the warm-start seed for the next compatible call (the RtaResult response
/// has jitter/C folded in, so it cannot be reused directly). The last
/// iterate is a sound seed even when the iteration diverged or ran out of
/// fuel: every iterate is a lower bound on the (possibly nonexistent) fixed
/// point, and at a higher utilization the recurrence only grows, so a
/// re-diverging task resumes its climb near saturation instead of repeating
/// it from the bottom.
struct FixedPoint {
  RtaResult result;
  Ticks w = 0;
};

template <bool Ceil>
FixedPoint iterate_scalar(const TaskSetView& pv, std::size_t hp_count, Ticks base, Ticks w0,
                          int fuel) {
  FixedPoint out;
  Ticks w = w0;
  for (int it = 0; it < fuel; ++it) {
    out.w = w;
    const Ticks next = sat_add(base, interference<Ceil>(pv, hp_count, w));
    out.result.iterations = it + 1;
    if (next == w) {
      out.result.converged = true;
      out.result.response = w;
      return out;
    }
    if (next == kNoBound) return out;
    w = next;
  }
  return out;
}

FixedPoint iterate(const TaskSetView& pv, const simd::Kernels* k, std::size_t hp_count,
                   Ticks base, Ticks w0, Formulation form, int fuel) {
  const bool ceil_form = form == Formulation::PaperLiteral;
  // Below one full lane block the kernel body degenerates to its scalar tail,
  // so the call is pure overhead — warm sweeps spend most ranks there.
  if (k != nullptr && hp_count >= 4) {
    const simd::FixedPointResult r =
        k->fp_fixed_point(pv.C, pv.T, pv.J, pv.recip_t, hp_count, base, w0, ceil_form, fuel);
    if (r.status == simd::Status::kOk) {
      FixedPoint out;
      out.result.converged = r.converged;
      out.result.iterations = r.iterations;
      if (r.converged) out.result.response = r.value;
      out.w = r.last;
      return out;
    }
    // A gate tripped mid-iteration: recompute entirely from the original seed
    // on the exact scalar path (deterministic, so the result is identical to
    // a scalar-only run).
  }
  return ceil_form ? iterate_scalar<true>(pv, hp_count, base, w0, fuel)
                   : iterate_scalar<false>(pv, hp_count, base, w0, fuel);
}

FixedPoint preemptive_fixed_point(const TaskSetView& pv, const simd::Kernels* k,
                                  std::size_t rank, int fuel, Ticks warm_w) {
  const Ticks ci = pv.C[rank];
  FixedPoint fp =
      iterate(pv, k, rank, ci, std::max(ci, warm_w), Formulation::PaperLiteral, fuel);
  if (fp.result.converged) fp.result.response = sat_add(fp.result.response, pv.J[rank]);
  return fp;
}

/// `b` is blocking_factor(pv, rank + 1, form); `hp_exec` is the saturating
/// Σ_{j < rank} C_j. Both folds are order-insensitive over non-negative
/// operands, so the whole-set drivers precompute them incrementally (suffix
/// max / running prefix) with results identical to the per-rank scans.
FixedPoint nonpreemptive_fixed_point(const TaskSetView& pv, const simd::Kernels* k,
                                     std::size_t rank, Formulation form, int fuel, Ticks warm_w,
                                     Ticks b, Ticks hp_exec) {
  FixedPoint fp = iterate(pv, k, rank, b, std::max(sat_add(b, hp_exec), warm_w), form, fuel);
  if (fp.result.converged) {
    fp.result.response = sat_add(sat_add(fp.result.response, pv.C[rank]), pv.J[rank]);
  }
  return fp;
}

/// Whole-set driver shared by the FpAnalysis and FpCellResult entry points;
/// hands each rank's result to `sink(rank, fp.result, D_rank)`.
template <typename SinkFn>
void analyze_fp_common(const TaskSet& ts, const PriorityOrder& order, bool preemptive,
                       Formulation form, int fuel, RtaScratch& scratch, bool warm_start,
                       SinkFn sink) {
  const TaskSetView& pv = scratch.arena.bind(ts, order);
  const simd::Kernels* k = pv.simd_ok ? simd::active() : nullptr;
  const bool seed = warm_start && scratch.warm.size() == pv.n;
  scratch.warm.resize(pv.n);

  if (!preemptive) {
    // Suffix-max blocking factors: np_blocking[r] == blocking_factor(pv,
    // r + 1, form), filled back-to-front in one pass.
    scratch.np_blocking.resize(pv.n);
    Ticks acc = 0;
    for (std::size_t r = pv.n; r-- > 0;) {
      scratch.np_blocking[r] = acc;
      const Ticks c =
          form == Formulation::PaperLiteral ? pv.C[r] : std::max<Ticks>(pv.C[r] - 1, 0);
      acc = std::max(acc, c);
    }
  }

  Ticks hp_exec = 0;  // running Σ_{j < rank} C_j (saturating)
  for (std::size_t rank = 0; rank < pv.n; ++rank) {
    const Ticks warm_w = seed ? scratch.warm[rank] : 0;
    const FixedPoint fp =
        preemptive ? preemptive_fixed_point(pv, k, rank, fuel, warm_w)
                   : nonpreemptive_fixed_point(pv, k, rank, form, fuel, warm_w,
                                               scratch.np_blocking[rank], hp_exec);
    scratch.warm[rank] = fp.w;  // last iterate: sound even without convergence
    hp_exec = sat_add(hp_exec, pv.C[rank]);
    sink(rank, pv.index[rank], fp.result, pv.D[rank]);
  }
}

FpAnalysis analyze_view(const TaskSet& ts, const PriorityOrder& order, bool preemptive,
                        Formulation form, int fuel, RtaScratch& scratch, bool warm_start) {
  FpAnalysis out;
  out.per_task.resize(ts.size());
  out.schedulable = true;
  analyze_fp_common(ts, order, preemptive, form, fuel, scratch, warm_start,
                    [&](std::size_t, std::size_t i, const RtaResult& r, Ticks d) {
                      out.per_task[i] = r;
                      if (!r.meets(d)) out.schedulable = false;
                    });
  return out;
}

}  // namespace

FpCellResult analyze_fp_cell(const TaskSet& ts, const PriorityOrder& order, bool preemptive,
                             Formulation form, int fuel, RtaScratch& scratch, bool warm_start) {
  FpCellResult out;
  out.schedulable = true;
  Ticks worst = 0;
  analyze_fp_common(ts, order, preemptive, form, fuel, scratch, warm_start,
                    [&](std::size_t, std::size_t, const RtaResult& r, Ticks d) {
                      out.iterations += static_cast<std::uint64_t>(r.iterations);
                      worst = (!r.converged || worst == kNoBound) ? kNoBound
                                                                  : std::max(worst, r.response);
                      if (!r.meets(d)) out.schedulable = false;
                    });
  out.worst_response = worst;
  return out;
}

Ticks blocking_factor(const TaskSetView& pv, std::size_t first_lower, Formulation form) {
  Ticks b = 0;
  for (std::size_t j = first_lower; j < pv.n; ++j) {
    const Ticks c = (form == Formulation::PaperLiteral) ? pv.C[j] : std::max<Ticks>(pv.C[j] - 1, 0);
    b = std::max(b, c);
  }
  return b;
}

RtaResult response_time_preemptive(const TaskSetView& pv, std::size_t rank, int fuel,
                                   Ticks warm_w) {
  const simd::Kernels* k = pv.simd_ok ? simd::active() : nullptr;
  return preemptive_fixed_point(pv, k, rank, fuel, warm_w).result;
}

RtaResult response_time_nonpreemptive(const TaskSetView& pv, std::size_t rank, Formulation form,
                                      int fuel, Ticks warm_w) {
  const simd::Kernels* k = pv.simd_ok ? simd::active() : nullptr;
  Ticks hp_exec = 0;
  for (std::size_t j = 0; j < rank; ++j) hp_exec = sat_add(hp_exec, pv.C[j]);
  return nonpreemptive_fixed_point(pv, k, rank, form, fuel, warm_w,
                                   blocking_factor(pv, rank + 1, form), hp_exec)
      .result;
}

FpAnalysis analyze_preemptive_fp(const TaskSet& ts, const PriorityOrder& order, int fuel) {
  RtaScratch scratch;
  return analyze_view(ts, order, /*preemptive=*/true, kDefaultFormulation, fuel, scratch,
                      /*warm_start=*/false);
}

FpAnalysis analyze_nonpreemptive_fp(const TaskSet& ts, const PriorityOrder& order, Formulation form,
                                    int fuel) {
  RtaScratch scratch;
  return analyze_view(ts, order, /*preemptive=*/false, form, fuel, scratch,
                      /*warm_start=*/false);
}

FpAnalysis analyze_preemptive_fp(const TaskSet& ts, const PriorityOrder& order, int fuel,
                                 RtaScratch& scratch, bool warm_start) {
  return analyze_view(ts, order, /*preemptive=*/true, kDefaultFormulation, fuel, scratch,
                      warm_start);
}

FpAnalysis analyze_nonpreemptive_fp(const TaskSet& ts, const PriorityOrder& order,
                                    Formulation form, int fuel, RtaScratch& scratch,
                                    bool warm_start) {
  return analyze_view(ts, order, /*preemptive=*/false, form, fuel, scratch, warm_start);
}

bool np_lowest_level_feasible(const TaskSet& ts, std::size_t i,
                              const std::vector<std::size_t>& higher_priority,
                              const std::vector<std::size_t>& lower_priority) {
  const RtaResult r = response_time_nonpreemptive(ts, i, higher_priority, lower_priority);
  return r.meets(ts[i].D);
}

}  // namespace profisched
