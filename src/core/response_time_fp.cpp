#include "core/response_time_fp.hpp"

#include <algorithm>

namespace profisched {

namespace {

/// One step of the interference sum Σ_j I_j(w) for the given formulation.
Ticks interference(const TaskSet& ts, std::span<const std::size_t> higher_priority, Ticks w,
                   Formulation form) {
  Ticks sum = 0;
  for (const std::size_t j : higher_priority) {
    const Task& tj = ts[j];
    const Ticks arg = sat_add(w, tj.J);
    const Ticks jobs = (form == Formulation::PaperLiteral) ? ceil_div_plus(arg, tj.T)
                                                           : floor_div_plus1(arg, tj.T);
    sum = sat_add(sum, sat_mul(jobs, tj.C));
  }
  return sum;
}

/// Monotone fixed-point iteration from `w0`; returns the least fixed point
/// >= w0, or kNoBound on divergence / fuel exhaustion.
RtaResult iterate(const TaskSet& ts, std::span<const std::size_t> higher_priority, Ticks base,
                  Ticks w0, Formulation form, int fuel) {
  RtaResult out;
  Ticks w = w0;
  for (int it = 0; it < fuel; ++it) {
    const Ticks next = sat_add(base, interference(ts, higher_priority, w, form));
    out.iterations = it + 1;
    if (next == w) {
      out.converged = true;
      out.response = w;
      return out;
    }
    if (next == kNoBound) return out;
    w = next;
  }
  return out;
}

}  // namespace

Ticks blocking_factor(const TaskSet& ts, std::span<const std::size_t> lower_priority,
                      Formulation form) {
  Ticks b = 0;
  for (const std::size_t j : lower_priority) {
    const Ticks c = (form == Formulation::PaperLiteral) ? ts[j].C : std::max<Ticks>(ts[j].C - 1, 0);
    b = std::max(b, c);
  }
  return b;
}

RtaResult response_time_preemptive(const TaskSet& ts, std::size_t i,
                                   std::span<const std::size_t> higher_priority, int fuel) {
  const Task& ti = ts[i];
  // Preemptive interference always counts a job released exactly at w, i.e.
  // the ceil form — that is the classic Joseph–Pandya recurrence.
  RtaResult r = iterate(ts, higher_priority, ti.C, ti.C, Formulation::PaperLiteral, fuel);
  if (r.converged) r.response = sat_add(r.response, ti.J);
  return r;
}

RtaResult response_time_nonpreemptive(const TaskSet& ts, std::size_t i,
                                      std::span<const std::size_t> higher_priority,
                                      std::span<const std::size_t> lower_priority, Formulation form,
                                      int fuel) {
  const Task& ti = ts[i];
  const Ticks b = blocking_factor(ts, lower_priority, form);

  // Start from B + Σ_hp C_j: a positive lower bound on the fixed point for
  // both formulations (see header).
  Ticks w0 = b;
  for (const std::size_t j : higher_priority) w0 = sat_add(w0, ts[j].C);

  RtaResult r = iterate(ts, higher_priority, b, w0, form, fuel);
  if (r.converged) r.response = sat_add(sat_add(r.response, ti.C), ti.J);
  return r;
}

namespace {

FpAnalysis analyze(const TaskSet& ts, const PriorityOrder& order, bool preemptive,
                   Formulation form, int fuel) {
  FpAnalysis out;
  out.per_task.resize(ts.size());
  out.schedulable = true;
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const std::size_t i = order[pos];
    const std::vector<std::size_t> higher(order.begin(),
                                          order.begin() + static_cast<std::ptrdiff_t>(pos));
    const std::vector<std::size_t> lower(order.begin() + static_cast<std::ptrdiff_t>(pos) + 1,
                                         order.end());
    out.per_task[i] = preemptive
                          ? response_time_preemptive(ts, i, higher, fuel)
                          : response_time_nonpreemptive(ts, i, higher, lower, form, fuel);
    if (!out.per_task[i].meets(ts[i].D)) out.schedulable = false;
  }
  return out;
}

}  // namespace

FpAnalysis analyze_preemptive_fp(const TaskSet& ts, const PriorityOrder& order, int fuel) {
  return analyze(ts, order, /*preemptive=*/true, kDefaultFormulation, fuel);
}

FpAnalysis analyze_nonpreemptive_fp(const TaskSet& ts, const PriorityOrder& order, Formulation form,
                                    int fuel) {
  return analyze(ts, order, /*preemptive=*/false, form, fuel);
}

bool np_lowest_level_feasible(const TaskSet& ts, std::size_t i,
                              const std::vector<std::size_t>& higher_priority,
                              const std::vector<std::size_t>& lower_priority) {
  const RtaResult r = response_time_nonpreemptive(ts, i, higher_priority, lower_priority);
  return r.meets(ts[i].D);
}

}  // namespace profisched
