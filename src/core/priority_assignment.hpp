// priority_assignment.hpp — fixed-priority assignment schemes (§2 of the
// paper): rate monotonic (RM), deadline monotonic (DM), and — as the standard
// completion of the fixed-priority toolbox — Audsley's optimal priority
// assignment (OPA).
//
// A priority order is represented as a permutation of task indices,
// highest priority first. Keeping the order separate from the TaskSet lets
// one set be analysed under several assignments.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/task.hpp"

namespace profisched {

/// Permutation of task indices, element 0 = highest priority.
using PriorityOrder = std::vector<std::size_t>;

/// Rate monotonic: shorter period => higher priority (ties by index, which
/// makes the assignment deterministic and the analysis reproducible).
[[nodiscard]] PriorityOrder rate_monotonic_order(const TaskSet& ts);

/// Deadline monotonic: shorter relative deadline => higher priority
/// (ties by index).
[[nodiscard]] PriorityOrder deadline_monotonic_order(const TaskSet& ts);

/// Inverse view: priority_rank[i] = position of task i in `order`
/// (0 = highest). Useful for O(1) "is j higher priority than i" queries.
[[nodiscard]] std::vector<std::size_t> priority_ranks(const PriorityOrder& order);

/// Predicate type for Audsley's algorithm: decide whether `task_index` is
/// schedulable at the current level given the tasks above it
/// (`higher_priority`, the still-unassigned ones) and below it
/// (`lower_priority`, the already-fixed ones — they matter for non-preemptive
/// blocking).
using LevelFeasibility =
    std::function<bool(const TaskSet& ts, std::size_t task_index,
                       const std::vector<std::size_t>& higher_priority,
                       const std::vector<std::size_t>& lower_priority)>;

/// Audsley's optimal priority assignment. Works bottom-up: finds some task
/// feasible at the lowest priority level given all others above it, fixes it,
/// and recurses on the rest. Returns a full priority order (highest first)
/// iff one exists under `feasible`; std::nullopt otherwise.
///
/// `feasible` must be order-independent w.r.t. the relative order of the
/// higher-priority set (true for all response-time analyses in this library),
/// otherwise OPA's optimality argument does not apply.
[[nodiscard]] std::optional<PriorityOrder> audsley_optimal_order(const TaskSet& ts,
                                                                 const LevelFeasibility& feasible);

}  // namespace profisched
