#include "core/schedulability.hpp"

#include <algorithm>

namespace profisched {

std::string_view to_string(Policy p) {
  switch (p) {
    case Policy::RateMonotonic: return "RM";
    case Policy::DeadlineMonotonic: return "DM";
    case Policy::NpDeadlineMonotonic: return "NP-DM";
    case Policy::Edf: return "EDF";
    case Policy::NpEdf: return "NP-EDF";
  }
  return "?";
}

double Verdict::worst_normalized_response(const TaskSet& ts) const {
  double worst = 0.0;
  for (std::size_t i = 0; i < per_task.size(); ++i) {
    if (per_task[i].response == kNoBound) return std::numeric_limits<double>::infinity();
    worst = std::max(worst, static_cast<double>(per_task[i].response) /
                                static_cast<double>(ts[i].D));
  }
  return worst;
}

namespace {

Verdict from_fp(const TaskSet& ts, Policy policy, const FpAnalysis& fp) {
  Verdict v;
  v.policy = policy;
  v.schedulable = fp.schedulable;
  v.per_task.resize(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    v.per_task[i].response = fp.per_task[i].response;
    v.per_task[i].meets_deadline = fp.per_task[i].meets(ts[i].D);
  }
  return v;
}

Verdict from_edf(const TaskSet& ts, Policy policy, const EdfAnalysis& edf) {
  Verdict v;
  v.policy = policy;
  v.schedulable = edf.schedulable;
  v.per_task.resize(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    v.per_task[i].response = edf.per_task[i].response;
    v.per_task[i].meets_deadline = edf.per_task[i].meets(ts[i].D);
  }
  return v;
}

}  // namespace

Verdict analyze(const TaskSet& ts, Policy policy, Formulation form) {
  switch (policy) {
    case Policy::RateMonotonic:
      return from_fp(ts, policy, analyze_preemptive_fp(ts, rate_monotonic_order(ts)));
    case Policy::DeadlineMonotonic:
      return from_fp(ts, policy, analyze_preemptive_fp(ts, deadline_monotonic_order(ts)));
    case Policy::NpDeadlineMonotonic:
      return from_fp(ts, policy,
                     analyze_nonpreemptive_fp(ts, deadline_monotonic_order(ts), form));
    case Policy::Edf:
      return from_edf(ts, policy, analyze_preemptive_edf(ts));
    case Policy::NpEdf:
      return from_edf(ts, policy, analyze_nonpreemptive_edf(ts));
  }
  return {};
}

std::vector<Verdict> analyze_all_policies(const TaskSet& ts, Formulation form) {
  std::vector<Verdict> out;
  for (const Policy p : {Policy::RateMonotonic, Policy::DeadlineMonotonic,
                         Policy::NpDeadlineMonotonic, Policy::Edf, Policy::NpEdf}) {
    out.push_back(analyze(ts, p, form));
  }
  return out;
}

}  // namespace profisched
