// time_types.hpp — exact integer time arithmetic for schedulability analysis.
//
// All analyses in profisched operate on integer "ticks". In the PROFIBUS
// layers one tick is one bit-time at the configured baud rate; in the generic
// uniprocessor analyses the unit is whatever the caller chooses. Using
// integers keeps every fixed-point iteration and demand-bound comparison
// exact: a schedulability verdict never depends on floating-point rounding.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>

namespace profisched {

/// Integer time. One tick is the caller's base unit (bit-time for PROFIBUS).
using Ticks = std::int64_t;

/// Sentinel for "no bound" / divergence (e.g. a response-time iteration that
/// exceeded its deadline ceiling).
inline constexpr Ticks kNoBound = std::numeric_limits<Ticks>::max();

/// Floor division that is correct for negative numerators (C++ `/` truncates
/// toward zero, which is *not* floor for negatives).
[[nodiscard]] constexpr Ticks floor_div(Ticks a, Ticks b) noexcept {
  assert(b > 0);
  const Ticks q = a / b;
  return (a % b != 0 && a < 0) ? q - 1 : q;
}

/// Ceiling division, correct for negative numerators.
[[nodiscard]] constexpr Ticks ceil_div(Ticks a, Ticks b) noexcept {
  assert(b > 0);
  const Ticks q = a / b;
  return (a % b != 0 && a > 0) ? q + 1 : q;
}

/// The paper's ⌈x⌉⁺ operator: ceil_div clamped at zero (⌈x⌉⁺ = 0 if x < 0).
[[nodiscard]] constexpr Ticks ceil_div_plus(Ticks a, Ticks b) noexcept {
  const Ticks v = ceil_div(a, b);
  return v > 0 ? v : 0;
}

/// (⌊x⌋ + 1)⁺ — the number of jobs of a task with offset `d` and period `b`
/// whose release falls in [0, a]: max(0, floor(a / b) + 1). Used by the
/// standard demand-bound function.
[[nodiscard]] constexpr Ticks floor_div_plus1(Ticks a, Ticks b) noexcept {
  if (a < 0) return 0;
  return floor_div(a, b) + 1;
}

/// Saturating addition: any operand at kNoBound propagates kNoBound, and an
/// overflowing sum saturates to kNoBound instead of wrapping (UB).
[[nodiscard]] constexpr Ticks sat_add(Ticks a, Ticks b) noexcept {
  if (a == kNoBound || b == kNoBound) return kNoBound;
  if (a > 0 && b > std::numeric_limits<Ticks>::max() - a) return kNoBound;
  if (a < 0 && b < std::numeric_limits<Ticks>::min() - a) return std::numeric_limits<Ticks>::min();
  return a + b;
}

/// Saturating multiplication for non-negative operands.
[[nodiscard]] constexpr Ticks sat_mul(Ticks a, Ticks b) noexcept {
  assert(a >= 0 && b >= 0);
  if (a == 0 || b == 0) return 0;
  if (a == kNoBound || b == kNoBound) return kNoBound;
  if (a > std::numeric_limits<Ticks>::max() / b) return kNoBound;
  return a * b;
}

/// Greatest common divisor (Ticks are non-negative here).
[[nodiscard]] constexpr Ticks gcd_ticks(Ticks a, Ticks b) noexcept {
  while (b != 0) {
    const Ticks t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Least common multiple, saturating to kNoBound on overflow. Used for
/// (capped) hyperperiod computation.
[[nodiscard]] constexpr Ticks lcm_ticks(Ticks a, Ticks b) noexcept {
  if (a == 0 || b == 0) return 0;
  if (a == kNoBound || b == kNoBound) return kNoBound;
  const Ticks g = gcd_ticks(a, b);
  return sat_mul(a / g, b);
}

}  // namespace profisched
