// formulation.hpp — selects between the paper's printed equations and the
// standard/refined literature forms where the two differ (see DESIGN.md §1,
// "Paper-literal vs refined formulations").
#pragma once

namespace profisched {

enum class Formulation {
  /// Exactly the equations as printed in Tovar & Vasques (1999):
  ///  * non-preemptive FP interference uses ⌈w/T⌉ and B = max C_lp (eqs. 1–2)
  ///  * the EDF demand function uses ⌈(t−D)/T⌉⁺ (eq. 3 / eq. 4)
  PaperLiteral,

  /// The refined forms from George, Rivierre & Spuri (1996) that later
  /// literature settled on:
  ///  * non-preemptive FP start-time interference uses ⌊w/T⌋ + 1 and
  ///    B = max (C_lp − 1)
  ///  * the demand-bound function uses (⌊(t−D)/T⌋ + 1)⁺
  Refined,
};

/// Library-wide default: Refined (the correct forms). Benches that reproduce
/// the paper's own numbers pass PaperLiteral explicitly.
inline constexpr Formulation kDefaultFormulation = Formulation::Refined;

}  // namespace profisched
