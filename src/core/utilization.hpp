// utilization.hpp — utilization-based pre-run-time schedulability tests
// surveyed in §2 of the paper.
//
//  * Liu & Layland's RM bound:       Σ C/T <= n (2^{1/n} − 1)      (sufficient)
//  * The hyperbolic bound:           Π (U_i + 1) <= 2               (sufficient,
//    strictly less pessimistic than Liu–Layland; included as the standard
//    refinement of the same test family)
//  * EDF utilization test:           Σ C/T <= 1                     (exact for
//    preemptive, implicit deadlines)
//
// These are sufficient-only (except EDF with D=T); the response-time tests in
// response_time_fp.hpp give per-task verdicts, which the paper emphasises.
#pragma once

#include "core/task.hpp"

namespace profisched {

/// n (2^{1/n} − 1), the Liu–Layland least upper bound for RM.
/// Approaches ln 2 ≈ 0.6931 as n → ∞. Returns 1.0 for n <= 1.
[[nodiscard]] double liu_layland_bound(std::size_t n);

/// Liu–Layland sufficient test for preemptive RM with D = T.
/// Precondition (checked): implicit deadlines. Returns false (not "throws")
/// when the bound is not met — the set may still be schedulable.
[[nodiscard]] bool liu_layland_test(const TaskSet& ts);

/// Hyperbolic-bound sufficient test (Bini & Buttazzo): Π (U_i + 1) <= 2.
/// Dominates Liu–Layland (accepts a superset). Same preconditions.
[[nodiscard]] bool hyperbolic_bound_test(const TaskSet& ts);

/// EDF utilization test Σ C/T <= 1 — exact for preemptive EDF with D = T,
/// necessary-only when D < T (use edf_feasibility.hpp then).
[[nodiscard]] bool edf_utilization_test(const TaskSet& ts);

}  // namespace profisched
