// edf_feasibility.hpp — EDF pre-run-time feasibility tests (§2.2, paper
// eqs. 3–5).
//
// Preemptive (eq. 3): the processor-demand criterion. The set is feasible iff
// U <= 1 and for every absolute deadline t in [0, L):  h(t) <= t, where the
// demand function is
//
//   Refined:       h(t) = Σ_i (⌊(t − D_i)/T_i⌋ + 1)⁺ · C_i   (standard DBF)
//   PaperLiteral:  h(t) = Σ_i ⌈(t − D_i)/T_i⌉⁺ · C_i          (as printed;
//                  note it misses the job whose deadline is exactly t)
//
// and L is the synchronous busy period (a valid t_max; the paper discusses
// t_max determination citing [26–29]).
//
// Non-preemptive, Zheng & Shin (eq. 4): adds a blocking term equal to the
// longest execution in the whole set, for every t:
//
//     h(t) + max_i C_i <= t        for all t >= min_i D_i.
//
// Non-preemptive, George et al. refinement (eq. 5): the blocking term only
// involves tasks whose deadline exceeds t, and a blocker must have started
// at least one tick before:
//
//     h(t) + max_{i : D_i > t} (C_i − 1) <= t      (0 when no such i).
//
// The paper's §2.2 argues eq. 5 is strictly less pessimistic than eq. 4;
// experiment E4 regenerates that comparison.
#pragma once

#include <vector>

#include "core/busy_period.hpp"
#include "core/formulation.hpp"
#include "core/task.hpp"
#include "core/taskset_view.hpp"

namespace profisched {

/// Outcome of a feasibility test.
struct FeasibilityResult {
  bool feasible = false;
  Ticks first_violation = kNoBound;  ///< smallest checkpoint t where demand exceeded supply
  Ticks horizon = 0;                 ///< the t_max actually used (busy period)
  std::size_t checkpoints = 0;       ///< number of deadline checkpoints examined
};

/// Processor demand h(t): total execution of jobs released at/after 0 with
/// absolute deadline <= t, under synchronous release at maximum rate.
[[nodiscard]] Ticks demand_bound(const TaskSet& ts, Ticks t,
                                 Formulation form = kDefaultFormulation);

/// All absolute deadlines k·T_i + D_i in [0, limit], sorted, deduplicated.
/// These are the only points where h(t) changes, hence the only checkpoints
/// any of the tests needs (paper: "its value only changes at k·Ti + Di
/// steps").
[[nodiscard]] std::vector<Ticks> deadline_checkpoints(const TaskSet& ts, Ticks limit);

/// Preemptive EDF feasibility (paper eq. 3). Exact for D <= T and D > T alike
/// under the Refined demand function.
[[nodiscard]] FeasibilityResult edf_preemptive_feasible(const TaskSet& ts,
                                                        Formulation form = kDefaultFormulation);

/// Non-preemptive EDF sufficient test of Zheng & Shin (paper eq. 4).
[[nodiscard]] FeasibilityResult np_edf_feasible_zheng_shin(const TaskSet& ts,
                                                           Formulation form = kDefaultFormulation);

/// Non-preemptive EDF test of George, Rivierre & Spuri (paper eq. 5) —
/// exact for sporadic non-concrete task sets.
[[nodiscard]] FeasibilityResult np_edf_feasible_george(const TaskSet& ts,
                                                       Formulation form = kDefaultFormulation);

// ---------------------------------------------------------- SoA fast path
//
// The TaskSet-based tests above are the retained reference implementations.
// The scratch overloads run the same checkpoint scan over an identity-bound
// TaskSetView with reused buffers (checkpoints, busy-period warm seed):
// allocation-free in steady state, bit-identical verdicts. With `warm_start`
// true, the busy-period iteration is seeded from scratch.warm_busy (sound
// under the usweep contract: same structure, parameters only grown).

/// Processor demand h(t) over an identity-bound view.
[[nodiscard]] Ticks demand_bound(const TaskSetView& v, Ticks t,
                                 Formulation form = kDefaultFormulation);

/// deadline_checkpoints into a reused buffer (cleared first).
void deadline_checkpoints(const TaskSetView& v, Ticks limit, std::vector<Ticks>& out);

[[nodiscard]] FeasibilityResult edf_preemptive_feasible(const TaskSet& ts, Formulation form,
                                                        RtaScratch& scratch,
                                                        bool warm_start = false);
[[nodiscard]] FeasibilityResult np_edf_feasible_zheng_shin(const TaskSet& ts, Formulation form,
                                                           RtaScratch& scratch,
                                                           bool warm_start = false);
[[nodiscard]] FeasibilityResult np_edf_feasible_george(const TaskSet& ts, Formulation form,
                                                       RtaScratch& scratch,
                                                       bool warm_start = false);

}  // namespace profisched
