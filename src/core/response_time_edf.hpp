// response_time_edf.hpp — worst-case response-time analysis under EDF
// (§2.2, paper eqs. 6–10).
//
// Spuri showed that under EDF the critical instant is *not* necessarily the
// synchronous release: the worst case for task i appears inside a "deadline
// busy period" in which all other tasks are released synchronously and at
// maximum rate, while i's analysed instance is released at some offset a >= 0
// (with i's earlier instances released as soon as possible).
//
// Preemptive (eqs. 6–8):
//     r_i(a) = max{ C_i, L_i(a) − a }
//     L_i^{m+1}(a) = W_i(a, L_i^m(a)) + (1 + ⌊a/T_i⌋) · C_i
//     W_i(a, t) = Σ_{j≠i, D_j−J_j <= a+D_i}
//                   min{ ⌈(t+J_j)/T_j⌉, 1 + ⌊(a + D_i − D_j + J_j)/T_j⌋ } · C_j
//     R_i = J_i + max_{a ∈ A} r_i(a)
//
// Non-preemptive (eqs. 9–10): a later-deadline instance can block, and the
// busy period of interest is the one preceding the *start* of execution:
//     r_i(a) = C_i + max{ 0, L_i(a) − a }
//     L_i^{m+1}(a) = max_{D_j−J_j > a+D_i}{C_j − 1}
//                    + W*_i(a, L_i^m(a)) + ⌊a/T_i⌋ · C_i
//     W*_i(a, t) = Σ_{j≠i, D_j−J_j <= a+D_i}
//                   min{ 1 + ⌊(t+J_j)/T_j⌋, 1 + ⌊(a + D_i − D_j + J_j)/T_j⌋ } · C_j
//
// Candidate offsets (eqs. 8/10): A = ∪_j { k·T_j + D_j − J_j − D_i : k ∈ ℕ }
// ∩ [0, L], where L is the synchronous busy period — the maximum length of
// any deadline busy period, hence a valid (if slightly generous) horizon.
//
// Release jitter terms follow Spuri's holistic analysis [34]; with all J = 0
// the formulas reduce exactly to the paper's. The same code, with C replaced
// by T_cycle, yields the PROFIBUS message analysis of §4.3 (see
// profibus/edf_analysis.hpp, which reuses these routines via a TaskSet whose
// C fields are T_cycle).
#pragma once

#include <cstdint>
#include <vector>

#include "core/busy_period.hpp"
#include "core/task.hpp"
#include "core/taskset_view.hpp"

namespace profisched {

/// Outcome of an EDF worst-case response-time computation for one task.
struct EdfRtaResult {
  bool converged = false;      ///< false => horizon/iteration budget exhausted
  Ticks response = kNoBound;   ///< worst-case response time (from event arrival)
  Ticks critical_offset = 0;   ///< the offset a achieving the maximum
  std::size_t offsets_examined = 0;

  [[nodiscard]] bool meets(Ticks deadline) const noexcept {
    return converged && response <= deadline;
  }
};

/// Per-set EDF analysis outcome.
struct EdfAnalysis {
  std::vector<EdfRtaResult> per_task;
  bool schedulable = false;
  /// Iterations the (set-wide) synchronous busy-period fixed point took; 0
  /// when the set was rejected before computing it. Warm-started calls
  /// report fewer — the observable the benchmark-regression harness tracks.
  int busy_iterations = 0;
};

/// Options bounding the (potentially large) offset enumeration.
struct EdfRtaOptions {
  std::size_t max_offsets = 1 << 22;  ///< abort (converged=false) beyond this
  int fixed_point_fuel = 1 << 16;     ///< per-offset iteration bound
};

/// Candidate offsets A for task i within [0, horizon] (paper eqs. 8 and 10).
[[nodiscard]] std::vector<Ticks> edf_candidate_offsets(const TaskSet& ts, std::size_t i,
                                                       Ticks horizon);

/// Worst-case response time of task i under preemptive EDF (eqs. 6–8).
[[nodiscard]] EdfRtaResult edf_response_time_preemptive(const TaskSet& ts, std::size_t i,
                                                        const EdfRtaOptions& opt = {});

/// Worst-case response time of task i under non-preemptive EDF (eqs. 9–10).
[[nodiscard]] EdfRtaResult edf_response_time_nonpreemptive(const TaskSet& ts, std::size_t i,
                                                           const EdfRtaOptions& opt = {});

/// Whole-set analyses. These run on the SoA fast path (shared busy period,
/// reused offset buffers, warm-started per-offset fixed points — see the
/// scratch overloads below); the per-task functions above are the retained
/// references, and the two agree bit-for-bit
/// (tests/core/test_kernel_equivalence.cpp). One caveat scopes that claim:
/// a warm-seeded iteration starts closer to the fixed point, so with a fuel
/// budget the reference exhausts mid-climb the fast path could still
/// converge where the reference gave up. Identity therefore assumes fuel
/// large enough for the reference to converge or saturate (the 1 << 16
/// default; a fuel-bound verdict is a resource limit, not an analysis
/// result).
[[nodiscard]] EdfAnalysis analyze_preemptive_edf(const TaskSet& ts, const EdfRtaOptions& opt = {});
[[nodiscard]] EdfAnalysis analyze_nonpreemptive_edf(const TaskSet& ts,
                                                    const EdfRtaOptions& opt = {});

// ---------------------------------------------------------- SoA fast path
//
// Optimizations over the reference, all output-preserving:
//  * the synchronous busy period is computed once per set, not once per task
//    (it does not depend on the analysed task), and can be warm-started from
//    scratch.warm_busy across compatible calls (`warm_start`, usweep
//    contract: same structure, parameters only grown);
//  * candidate offsets land in a reused scratch buffer;
//  * preemptive only: the offset scan seeds each offset's fixed point L(a)
//    from the previous offset's converged value — L(a) is monotone
//    non-decreasing in a (W_i(a,t) and the own-instance term only grow with
//    a), so the seed is a valid lower bound and the least fixed point
//    reached is unchanged. (Non-preemptive L(a) is *not* monotone in a: the
//    blocking term shrinks as a grows — that scan stays cold.)
[[nodiscard]] EdfAnalysis analyze_preemptive_edf(const TaskSet& ts, const EdfRtaOptions& opt,
                                                 RtaScratch& scratch, bool warm_start = false);
[[nodiscard]] EdfAnalysis analyze_nonpreemptive_edf(const TaskSet& ts, const EdfRtaOptions& opt,
                                                    RtaScratch& scratch,
                                                    bool warm_start = false);

/// Whole-set outcome folded down to what a sweep cell needs — exactly what
/// run_usweep derives from an EdfAnalysis, computed without materializing
/// the per-task vector so a warm sweep step performs zero allocations. The
/// fold is order-independent (sticky kNoBound, max over responses, summed
/// counters), hence bit-identical to folding analyze_*_edf's per_task.
struct EdfCellResult {
  bool schedulable = false;
  Ticks worst_response = 0;  ///< kNoBound if any task failed to converge
  int busy_iterations = 0;
  std::uint64_t offsets_examined = 0;  ///< Σ per-task offsets examined
};

[[nodiscard]] EdfCellResult analyze_edf_cell(const TaskSet& ts, bool preemptive,
                                             const EdfRtaOptions& opt, RtaScratch& scratch,
                                             bool warm_start);

}  // namespace profisched
