// simd.hpp — runtime-dispatched data-parallel kernels for the SoA analysis
// fast paths, with the scalar view code retained as the equivalence reference.
//
// Design. The hot inner loops of the analyses are fixed-point sums of
// job-count × execution-time terms. Their divisions (ceil_div_plus /
// floor_div_plus1) have no 64-bit vector instruction on AVX2, so the lane
// kernels compute floor(a/T) as floor(a · (1/T)) in double precision and
// correct the quotient by ±1 with an exact 64-bit low-multiply remainder
// check. That is *exact* — bit-identical to the integer reference — provided
// every operand stays well inside the 2^52 double mantissa:
//
//   - per-bind gate (TaskSetView::simd_ok): C, T, D, J ≤ 2^44, n ≤ 256, and
//     the relational invariant 0 ≤ C ≤ T (T ≥ 1 follows, a TaskSet
//     construction invariant) — all certified once when the arena binds;
//   - per-iteration gate (inside the kernels): every iterate (w, L, t) ≤ 2^44.
//
// Together these statically bound every lane product: jobs ≤ a'/T + 1 with
// |a'| < 2^46, so jobs·C ≤ a'·(C/T) + C < 2^47 and 256-task lane sums stay
// below 2^55 — no per-iteration overflow gate is needed. Inside that region
// |fl(a · fl(1/T)) − a/T| < 0.02 for |a| < 2^46, so the floored quotient is
// off by at most one and the remainder correction makes it exact; saturating
// arithmetic also degenerates to plain arithmetic, so lane sums equal the
// reference's sequential sat_add folds. The moment any check trips, the
// kernel returns Status::kFallback *without* publishing a result and the
// call site re-runs its scalar reference from the original seed —
// divergence, kNoBound saturation, and near-INT64_MAX inputs are therefore
// always produced by the exact scalar code.
//
// One binary serves every machine: the AVX2 bodies live in a dedicated TU
// compiled with -mavx2 and are only selected after a cpuid check; NEON is the
// aarch64 baseline; everything else (and -DPROFISCHED_NO_SIMD=ON builds, and
// PROFISCHED_SIMD=0 environments) gets active() == nullptr, i.e. the scalar
// reference paths.
#pragma once

#include <cstddef>

#include "core/time_types.hpp"

namespace profisched::simd {

/// Per-bind input gate: every C/T/D/J must be ≤ this for the vector kernels
/// to be admissible (keeps every derived quantity exactly representable in
/// double). 2^44 ticks is ~1.5 years at 12 Mbit/s PROFIBUS bit-time.
inline constexpr Ticks kMaxValue = Ticks{1} << 44;

/// Per-iteration gate on fixed-point iterates (w, L, t). Same bound as the
/// inputs so w + J and t − D stay below 2^45.
inline constexpr Ticks kMaxAccum = Ticks{1} << 44;

/// Task-count gate (bounds kernel stack buffers and the lane-sum width).
inline constexpr std::size_t kMaxTasks = 256;

enum class Status : int {
  kOk = 0,        ///< result fields are valid and bit-identical to the reference
  kFallback = 1,  ///< a gate tripped; caller must run the scalar reference
};

/// Result of a monotone fixed-point iteration w → base + Σ jobs(w)·C.
struct FixedPointResult {
  Status status = Status::kFallback;
  bool converged = false;
  Ticks value = 0;     ///< converged fixed point (valid when converged)
  Ticks last = 0;      ///< last finite iterate examined (warm-start seed)
  int iterations = 0;  ///< matches the scalar reference count exactly
};

struct DemandResult {
  Status status = Status::kFallback;
  Ticks demand = 0;
};

/// Four demand-bound evaluations in one pass (lanes = checkpoints).
struct DemandGridResult {
  Status status = Status::kFallback;
  Ticks demand[4] = {0, 0, 0, 0};
};

struct EdfOffsetResult {
  Status status = Status::kFallback;
  bool converged = false;
  Ticks fixed_point = 0;  ///< converged L(a)
};

/// Function-pointer kernel table. Arguments are the raw SoA arrays of a bound
/// TaskSetView (including its recip_t reciprocals); `count` may exceed the
/// logical task count only with the arena's neutral padding (C=0, T=1) in the
/// extra slots.
struct Kernels {
  const char* name;

  /// Least fixed point of w → base + Σ_{j<count} jobs(w + J[j], T[j]) · C[j],
  /// starting from w0; jobs = ceil_div_plus when ceil_form else
  /// floor_div_plus1. Covers the FP-RTA recurrence (preemptive and
  /// non-preemptive) and, with base = 0 over the full set, the synchronous
  /// busy period.
  FixedPointResult (*fp_fixed_point)(const Ticks* C, const Ticks* T, const Ticks* J,
                                     const double* recip_t, std::size_t count, Ticks base,
                                     Ticks w0, bool ceil_form, int fuel);

  /// Σ_{j<count} jobs(t − D[j], T[j]) · C[j] — the EDF demand bound h(t).
  DemandResult (*demand_sum)(const Ticks* C, const Ticks* T, const Ticks* D,
                             const double* recip_t, std::size_t count, Ticks t, bool ceil_form);

  /// h(t) at four checkpoints per pass (lanes = t values, tasks broadcast) —
  /// the profitable shape when the task loop is short.
  DemandGridResult (*demand_grid)(const Ticks* C, const Ticks* T, const Ticks* D,
                                  const double* recip_t, std::size_t count, const Ticks* t4,
                                  bool ceil_form);

  /// EDF per-offset fixed point (eqs. 6 / 9 inner recurrence):
  ///   L → base + Σ_j min(jobs_time(L + J[j], T[j]), by_deadline[j]) · C[j]
  /// where by_deadline[j] = floor_div_plus1(abs_deadline − D[j] + J[j], T[j])
  /// is hoisted once per offset inside the kernel (it is 0 exactly for the
  /// excluded later-deadline tasks, and slot `self` is forced to 0).
  /// jobs_time is floor_div_plus1 when start_time_form else ceil_div_plus.
  EdfOffsetResult (*edf_offset_fixed_point)(const Ticks* C, const Ticks* T, const Ticks* D,
                                            const Ticks* J, const double* recip_t,
                                            std::size_t count, std::size_t self,
                                            Ticks abs_deadline, Ticks base, Ticks l0,
                                            bool start_time_form, int fuel);
};

/// The kernel table for this process, or nullptr when the scalar reference
/// paths should run (unsupported CPU, -DPROFISCHED_NO_SIMD=ON,
/// PROFISCHED_SIMD=0 in the environment, or force_scalar(true)).
[[nodiscard]] const Kernels* active() noexcept;

/// Cross-check override: force active() to nullptr on every thread. Used by
/// bench_runner and the equivalence tests to time/compare the scalar paths
/// from the same binary.
void force_scalar(bool on) noexcept;

/// "avx2", "neon", or "scalar" (what active() would dispatch to absent
/// force_scalar).
[[nodiscard]] const char* backend_name() noexcept;

/// The generic lane bodies instantiated on the portable scalar backend —
/// always available, so the kernel logic is testable on any build (including
/// -DPROFISCHED_NO_SIMD=ON ones).
[[nodiscard]] const Kernels& scalar_lane_kernels() noexcept;

}  // namespace profisched::simd
