// taskset_view.hpp — flat structure-of-arrays view over a TaskSet, plus the
// reusable scratch arena the optimized analysis kernels iterate from.
//
// The AoS TaskSet (core/task.hpp) is the right construction/validation
// surface, but the fixed-point kernels only ever read the four Ticks fields —
// walking Task objects drags each task's std::string name through the cache
// and, in the fixed-priority analyses, forces a `higher_priority` index
// vector per task. Binding a TaskSetView copies C/T/D/J once into four
// contiguous arrays (optionally permuted into priority order, so "all
// higher-priority tasks" is simply the prefix [0, rank)) and the inner loops
// become branch-light streaming passes with no indirection.
//
// Bit-identical guarantee: a bound view preserves the task order it was built
// with, so every kernel that iterates a view performs exactly the arithmetic,
// in exactly the order, of its retained TaskSet-based reference — including
// the double-precision utilization sum, which is order-sensitive.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/task.hpp"

namespace profisched {

/// Non-owning SoA view. Element p of each array describes one task; when the
/// view was bound with a priority order, p is the priority rank (0 highest)
/// and index[p] maps back to the TaskSet position.
struct TaskSetView {
  const Ticks* C = nullptr;
  const Ticks* T = nullptr;
  const Ticks* D = nullptr;
  const Ticks* J = nullptr;
  const std::size_t* index = nullptr;  ///< view position -> TaskSet position
  std::size_t n = 0;

  /// Arena-bound views pad the four arrays out to this count (a multiple of
  /// the widest lane width) with neutral slots (C=0, T=1, D=0, J=0) so the
  /// full-set vector kernels need no tail handling; the padding contributes
  /// exactly zero to every sum. n_padded == n for hand-built views.
  std::size_t n_padded = 0;

  /// Per-element 1.0 / T[i] (padded like the arrays), or nullptr for
  /// hand-built views. Precomputed at bind so the lane kernels never divide.
  const double* recip_t = nullptr;

  /// True when this view satisfies the vector-kernel input gate (every
  /// C/T/D/J ≤ simd::kMaxValue, 0 ≤ C ≤ T, n ≤ simd::kMaxTasks) and recip_t
  /// is bound.
  bool simd_ok = false;

  [[nodiscard]] bool empty() const noexcept { return n == 0; }

  /// Σ C_i / T_i summed in view order (== TaskSet::utilization() for an
  /// identity-bound view; the FP sum is order-sensitive, so permuted views
  /// must not be used where the reference compares against utilization()).
  [[nodiscard]] double utilization() const noexcept {
    double u = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      u += static_cast<double>(C[i]) / static_cast<double>(T[i]);
    }
    return u;
  }

  /// Σ C_i (saturating) in view order.
  [[nodiscard]] Ticks total_execution() const noexcept {
    Ticks sum = 0;
    for (std::size_t i = 0; i < n; ++i) sum = sat_add(sum, C[i]);
    return sum;
  }
};

/// Reusable arena materializing TaskSetViews. Buffers grow to the high-water
/// task count and are then reused: binding is allocation-free in steady
/// state, which is what lets a full sweep run the kernels without touching
/// the allocator. The returned view aliases the arena — it is invalidated by
/// the next bind() on the same arena.
class TaskSetArena {
 public:
  /// Bind in TaskSet order (index[p] == p).
  const TaskSetView& bind(const TaskSet& ts);

  /// Bind permuted: view position p holds the task at order[p]. `order` may
  /// cover a subset of the set (the view then has order.size() elements);
  /// indices are bounds-checked.
  const TaskSetView& bind(const TaskSet& ts, std::span<const std::size_t> order);

 private:
  const TaskSetView& fill(const TaskSet& ts, const std::size_t* order, std::size_t n);

  std::vector<Ticks> c_, t_, d_, j_;
  std::vector<double> recip_t_;
  std::vector<std::size_t> idx_;
  TaskSetView view_;
};

/// Per-worker scratch for the optimized core analyses: one arena plus the
/// buffers the kernels would otherwise allocate per call. Reusing one
/// RtaScratch across calls makes whole-set analyses allocation-free in
/// steady state (only the per-call result vectors remain).
///
/// `warm` carries converged fixed points between *compatible* calls: the
/// same task structure under the same priority order, with parameters that
/// only grew (the utilization-sweep contract, see usweep.hpp). The analyses
/// refresh it on every run; callers opt into seeding from it explicitly.
struct RtaScratch {
  TaskSetArena arena;
  std::vector<Ticks> warm;        ///< per-rank converged queueing fixed points
  Ticks warm_busy = 0;            ///< converged busy-period length
  std::vector<Ticks> offsets;     ///< EDF candidate-offset buffer
  std::vector<Ticks> checkpoints; ///< feasibility deadline-checkpoint buffer
  std::vector<Ticks> np_blocking; ///< per-rank suffix-max blocking factors
};

}  // namespace profisched
