// simd.cpp — kernel-table dispatch. Detection runs once per process:
// compile-time opt-out (-DPROFISCHED_NO_SIMD=ON) and the PROFISCHED_SIMD=0
// environment knob both pin the scalar reference paths; otherwise the AVX2
// table is selected after a cpuid check (the AVX2 TU is the only one built
// with -mavx2, so the rest of the library stays baseline-ISA) and NEON is
// the aarch64 baseline. force_scalar() is a process-wide override the bench
// harness and equivalence tests flip to time/compare both paths in one
// binary.
#include "core/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "core/simd_lanes.hpp"

namespace profisched::simd {

const Kernels* avx2_kernels() noexcept;  // simd_avx2.cpp (nullptr off-x86)
const Kernels* neon_kernels() noexcept;  // simd_neon.cpp (nullptr off-aarch64)

namespace {

std::atomic<bool> g_force_scalar{false};

bool env_disabled() noexcept {
  const char* v = std::getenv("PROFISCHED_SIMD");
  if (v == nullptr) return false;
  return std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
         std::strcmp(v, "scalar") == 0;
}

const Kernels* detect() noexcept {
#if defined(PROFISCHED_NO_SIMD)
  return nullptr;
#else
  if (env_disabled()) return nullptr;
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return avx2_kernels();
  return nullptr;
#else
  return neon_kernels();
#endif
#endif
}

const Kernels* detected() noexcept {
  static const Kernels* table = detect();
  return table;
}

}  // namespace

const Kernels* active() noexcept {
  return g_force_scalar.load(std::memory_order_relaxed) ? nullptr : detected();
}

void force_scalar(bool on) noexcept { g_force_scalar.store(on, std::memory_order_relaxed); }

const char* backend_name() noexcept {
  const Kernels* k = detected();
  return k != nullptr ? k->name : "scalar";
}

const Kernels& scalar_lane_kernels() noexcept {
  static const Kernels table = detail::make_kernels<detail::ScalarBackend>("scalar-lanes");
  return table;
}

}  // namespace profisched::simd
