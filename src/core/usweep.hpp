// usweep.hpp — warm-started utilization-grid sweeps over one task structure.
//
// The standard acceptance-curve experiment fixes a task structure (periods,
// deadlines, jitters) and asks "up to which load is it schedulable?" by
// re-running the §2 analyses at each point of an ascending utilization grid.
// The seed-era way re-iterated every fixed point from cold at every point;
// but the recurrences are monotone in every C, so the converged fixed point
// at u-point k is a valid lower bound — hence a correct iteration seed — for
// the same task at u-point k+1. A warm-started sweep performs the same
// arithmetic from a later starting iterate and reaches the *same* fixed
// points (verdicts and responses are bit-identical, locked in by
// tests/core/test_usweep.cpp); only the iteration counts shrink, typically
// by well over 2x on fine grids (tracked in BENCH_pr4.json).
//
// Scaling contract: only C grows with u (D/T/J fixed, C clamped to
// [1, min(T, D)]), and the grid must be ascending — that is what makes the
// warm seeds lower bounds.
#pragma once

#include <cstdint>
#include <vector>

#include "core/schedulability.hpp"
#include "core/taskset_view.hpp"

namespace profisched {

/// One sweep definition. `policies` uses the §2 policy enum of
/// schedulability.hpp; every listed policy is analysed at every grid point.
struct USweepSpec {
  std::vector<double> u_grid;  ///< ascending target utilizations
  std::vector<Policy> policies{Policy::RateMonotonic, Policy::DeadlineMonotonic,
                               Policy::NpDeadlineMonotonic, Policy::Edf, Policy::NpEdf};
  Formulation form = kDefaultFormulation;
  int fuel = 1 << 16;
  bool warm_start = true;  ///< false re-iterates every point from cold
};

/// One (point, policy) verdict.
struct USweepCell {
  bool schedulable = false;
  Ticks worst_response = kNoBound;  ///< max over tasks; kNoBound if any diverged
};

/// One grid point.
struct USweepPoint {
  double u_target = 0.0;
  double u_actual = 0.0;  ///< utilization after integer scaling/clamping
  std::vector<USweepCell> cells;  ///< indexed like USweepSpec::policies
};

/// Whole-sweep outcome plus the iteration-count observables the benchmark
/// harness compares cold-vs-warm.
struct USweepResult {
  std::vector<USweepPoint> points;
  std::uint64_t fp_iterations = 0;    ///< Σ RtaResult::iterations (FP policies)
  std::uint64_t busy_iterations = 0;  ///< Σ busy-period iterations (EDF policies)
  std::uint64_t edf_offsets = 0;      ///< Σ EdfRtaResult::offsets_examined
};

/// Scale `base`'s execution times to target utilization `u` (relative to the
/// base set's own utilization): C_i -> clamp(ceil(C_i·q)/1, 1, min(T_i, D_i))
/// with q = u / U(base) in 1/1024 units. Monotone in u, exact-integer, and
/// the result always validates.
[[nodiscard]] TaskSet scale_to_utilization(const TaskSet& base, double u);

/// Run the sweep. Throws std::invalid_argument on an empty/descending grid,
/// an empty policy list, or an empty base set.
[[nodiscard]] USweepResult run_usweep(const TaskSet& base, const USweepSpec& spec);

}  // namespace profisched
