#include "core/sensitivity.hpp"

#include <algorithm>

namespace profisched {

SchedulabilityTest test_for(Policy policy, Formulation form) {
  return [policy, form](const TaskSet& ts) { return analyze(ts, policy, form).schedulable; };
}

}  // namespace profisched

namespace profisched::sensitivity {

namespace {

/// Scale C by q/1024, rounding up (pessimistic), clamped to [1, T].
Ticks scale_c(Ticks c, Ticks q1024, Ticks period) {
  const Ticks scaled = ceil_div(sat_mul(c, q1024), kScaleOne);
  return std::clamp<Ticks>(scaled, 1, period);
}

/// Rebuild the set with selected tasks' C scaled by q/1024.
/// `which` < 0 scales every task.
TaskSet with_scaled(const TaskSet& ts, std::ptrdiff_t which, Ticks q1024) {
  std::vector<Task> tasks(ts.begin(), ts.end());
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    if (which >= 0 && static_cast<std::size_t>(which) != j) continue;
    tasks[j].C = scale_c(tasks[j].C, q1024, tasks[j].T);
    tasks[j].D = std::max(tasks[j].D, tasks[j].C);  // keep the set valid
  }
  return TaskSet{std::move(tasks)};
}

SensitivityResult scaling_headroom_impl(const TaskSet& ts, std::ptrdiff_t which,
                                        const SchedulabilityTest& test, Ticks cap) {
  // At q = kScaleOne the scaling is the identity (ceil(C·1024/1024) = C), so
  // the bracket floor probe doubles as the "schedulable to begin with" check.
  return max_satisfying(kScaleOne, cap,
                        [&](Ticks q) { return test(with_scaled(ts, which, q)); });
}

}  // namespace

SensitivityResult execution_scaling_headroom(const TaskSet& ts, std::size_t i,
                                             const SchedulabilityTest& test,
                                             Ticks max_factor_q1024) {
  return scaling_headroom_impl(ts, static_cast<std::ptrdiff_t>(i), test, max_factor_q1024);
}

SensitivityResult breakdown_scaling(const TaskSet& ts, const SchedulabilityTest& test,
                                    Ticks max_factor_q1024) {
  return scaling_headroom_impl(ts, /*which=*/-1, test, max_factor_q1024);
}

SensitivityResult minimum_sustainable_deadline(const TaskSet& ts, std::size_t i,
                                               const SchedulabilityTest& test) {
  const auto with_deadline = [&](Ticks d) {
    std::vector<Task> tasks(ts.begin(), ts.end());
    tasks[i].D = d;
    return TaskSet{std::move(tasks)};
  };
  const Ticks cap = sat_mul(ts[i].T, kDefaultDeadlineCapMultiple);
  // Smallest d in [C_i, cap] with test true; monotone non-decreasing in d.
  return min_satisfying(ts[i].C, cap, [&](Ticks d) { return test(with_deadline(d)); });
}

double utilization_at_scale(const TaskSet& ts, Ticks q1024) {
  double u = 0.0;
  for (const Task& t : ts) {
    u += static_cast<double>(scale_c(t.C, q1024, t.T)) / static_cast<double>(t.T);
  }
  return u;
}

}  // namespace profisched::sensitivity
