#include "core/sensitivity.hpp"

#include <algorithm>

namespace profisched {

namespace {

/// Scale C by q/1024, rounding up (pessimistic), clamped to [1, T].
Ticks scale_c(Ticks c, Ticks q1024, Ticks period) {
  const Ticks scaled = ceil_div(sat_mul(c, q1024), 1024);
  return std::clamp<Ticks>(scaled, 1, period);
}

/// Rebuild the set with selected tasks' C scaled by q/1024.
/// `which` < 0 scales every task.
TaskSet with_scaled(const TaskSet& ts, std::ptrdiff_t which, Ticks q1024) {
  std::vector<Task> tasks(ts.begin(), ts.end());
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    if (which >= 0 && static_cast<std::size_t>(which) != j) continue;
    tasks[j].C = scale_c(tasks[j].C, q1024, tasks[j].T);
    tasks[j].D = std::max(tasks[j].D, tasks[j].C);  // keep the set valid
  }
  return TaskSet{std::move(tasks)};
}

/// Largest q in [1024, cap] with pred(q) true, given pred(1024) true and
/// pred monotone non-increasing. Exact binary search.
template <typename Pred>
Ticks max_true_q(Ticks cap, Pred pred) {
  Ticks lo = 1024;  // known true
  Ticks hi = cap;
  if (pred(hi)) return hi;
  while (hi - lo > 1) {
    const Ticks mid = lo + (hi - lo) / 2;
    (pred(mid) ? lo : hi) = mid;
  }
  return lo;
}

std::optional<Ticks> scaling_headroom_impl(const TaskSet& ts, std::ptrdiff_t which,
                                           const SchedulabilityTest& test, Ticks cap) {
  if (!test(ts)) return std::nullopt;
  return max_true_q(cap, [&](Ticks q) { return test(with_scaled(ts, which, q)); });
}

}  // namespace

SchedulabilityTest test_for(Policy policy, Formulation form) {
  return [policy, form](const TaskSet& ts) { return analyze(ts, policy, form).schedulable; };
}

std::optional<Ticks> execution_scaling_headroom(const TaskSet& ts, std::size_t i,
                                                const SchedulabilityTest& test,
                                                Ticks max_factor_q1024) {
  return scaling_headroom_impl(ts, static_cast<std::ptrdiff_t>(i), test, max_factor_q1024);
}

std::optional<Ticks> breakdown_scaling(const TaskSet& ts, const SchedulabilityTest& test,
                                       Ticks max_factor_q1024) {
  return scaling_headroom_impl(ts, /*which=*/-1, test, max_factor_q1024);
}

std::optional<Ticks> minimum_sustainable_deadline(const TaskSet& ts, std::size_t i,
                                                  const SchedulabilityTest& test) {
  const auto with_deadline = [&](Ticks d) {
    std::vector<Task> tasks(ts.begin(), ts.end());
    tasks[i].D = d;
    return TaskSet{std::move(tasks)};
  };
  const Ticks cap = sat_mul(ts[i].T, 64);
  if (!test(with_deadline(cap))) return std::nullopt;

  // Smallest d in [C_i, cap] with test true; monotone non-decreasing in d.
  Ticks lo = ts[i].C;
  Ticks hi = cap;  // known true
  if (test(with_deadline(lo))) return lo;
  while (hi - lo > 1) {
    const Ticks mid = lo + (hi - lo) / 2;
    (test(with_deadline(mid)) ? hi : lo) = mid;
  }
  return hi;
}

std::optional<double> breakdown_utilization(const TaskSet& ts, const SchedulabilityTest& test) {
  const std::optional<Ticks> q = breakdown_scaling(ts, test);
  if (!q.has_value()) return std::nullopt;
  // Recompute utilization at the breakdown point (respecting clamping).
  double u = 0.0;
  for (const Task& t : ts) {
    const Ticks c = std::clamp<Ticks>(ceil_div(sat_mul(t.C, *q), 1024), 1, t.T);
    u += static_cast<double>(c) / static_cast<double>(t.T);
  }
  return u;
}

}  // namespace profisched
