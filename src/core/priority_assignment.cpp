#include "core/priority_assignment.hpp"

#include <algorithm>
#include <numeric>

namespace profisched {

namespace {

template <typename KeyFn>
PriorityOrder sorted_order(const TaskSet& ts, KeyFn key) {
  PriorityOrder order(ts.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::ranges::stable_sort(order, [&](std::size_t a, std::size_t b) { return key(ts[a]) < key(ts[b]); });
  return order;
}

}  // namespace

PriorityOrder rate_monotonic_order(const TaskSet& ts) {
  return sorted_order(ts, [](const Task& t) { return t.T; });
}

PriorityOrder deadline_monotonic_order(const TaskSet& ts) {
  return sorted_order(ts, [](const Task& t) { return t.D; });
}

std::vector<std::size_t> priority_ranks(const PriorityOrder& order) {
  std::vector<std::size_t> rank(order.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) rank[order[pos]] = pos;
  return rank;
}

std::optional<PriorityOrder> audsley_optimal_order(const TaskSet& ts,
                                                   const LevelFeasibility& feasible) {
  const std::size_t n = ts.size();
  std::vector<std::size_t> unassigned(n);
  std::iota(unassigned.begin(), unassigned.end(), std::size_t{0});

  // Filled lowest level first, reversed at the end.
  PriorityOrder reversed;
  reversed.reserve(n);

  while (!unassigned.empty()) {
    bool placed = false;
    for (std::size_t pos = 0; pos < unassigned.size(); ++pos) {
      const std::size_t candidate = unassigned[pos];
      std::vector<std::size_t> higher = unassigned;
      higher.erase(higher.begin() + static_cast<std::ptrdiff_t>(pos));
      if (feasible(ts, candidate, higher, reversed)) {
        reversed.push_back(candidate);
        unassigned.erase(unassigned.begin() + static_cast<std::ptrdiff_t>(pos));
        placed = true;
        break;
      }
    }
    if (!placed) return std::nullopt;  // no task fits the lowest level: infeasible
  }
  std::ranges::reverse(reversed);
  return reversed;
}

}  // namespace profisched
