#include "core/sensitivity_search.hpp"

#include <stdexcept>

namespace profisched::sensitivity {

SensitivityResult max_satisfying(Ticks lo, Ticks hi, const TicksPredicate& pred) {
  if (lo > hi) throw std::invalid_argument("sensitivity: empty search bracket (lo > hi)");
  SensitivityResult r;
  ++r.probes;
  if (!pred(lo)) return r;  // infeasible on the whole bracket
  r.feasible = true;
  ++r.probes;
  if (pred(hi)) {
    r.value = hi;
    r.cap_hit = true;
    return r;
  }
  Ticks good = lo;  // known true
  Ticks bad = hi;   // known false
  while (bad - good > 1) {
    const Ticks mid = good + (bad - good) / 2;
    ++r.probes;
    (pred(mid) ? good : bad) = mid;
  }
  r.value = good;
  return r;
}

SensitivityResult min_satisfying(Ticks lo, Ticks hi, const TicksPredicate& pred) {
  if (lo > hi) throw std::invalid_argument("sensitivity: empty search bracket (lo > hi)");
  SensitivityResult r;
  ++r.probes;
  if (!pred(hi)) return r;  // infeasible on the whole bracket
  r.feasible = true;
  ++r.probes;
  if (pred(lo)) {
    r.value = lo;
    r.cap_hit = true;
    return r;
  }
  Ticks bad = lo;   // known false
  Ticks good = hi;  // known true
  while (good - bad > 1) {
    const Ticks mid = bad + (good - bad) / 2;
    ++r.probes;
    (pred(mid) ? good : bad) = mid;
  }
  r.value = good;
  return r;
}

}  // namespace profisched::sensitivity
