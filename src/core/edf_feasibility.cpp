#include "core/edf_feasibility.hpp"

#include <algorithm>

#include "core/simd.hpp"

namespace profisched {

namespace {

// Uniform per-index field access over the AoS TaskSet and the SoA view: the
// demand-bound and checkpoint logic below is written once against these, so
// the two public paths cannot drift apart.
inline std::size_t count_of(const TaskSet& ts) { return ts.size(); }
inline std::size_t count_of(const TaskSetView& v) { return v.n; }
inline Ticks c_of(const TaskSet& ts, std::size_t i) { return ts[i].C; }
inline Ticks c_of(const TaskSetView& v, std::size_t i) { return v.C[i]; }
inline Ticks t_of(const TaskSet& ts, std::size_t i) { return ts[i].T; }
inline Ticks t_of(const TaskSetView& v, std::size_t i) { return v.T[i]; }
inline Ticks d_of(const TaskSet& ts, std::size_t i) { return ts[i].D; }
inline Ticks d_of(const TaskSetView& v, std::size_t i) { return v.D[i]; }

/// h(t) with the Formulation branch hoisted to a template parameter
/// (Ceil == PaperLiteral) so the inner loop is branch-free.
template <bool Ceil, class Src>
Ticks demand_bound_impl(const Src& s, Ticks t) {
  Ticks h = 0;
  const std::size_t n = count_of(s);
  for (std::size_t i = 0; i < n; ++i) {
    const Ticks arg = t - d_of(s, i);
    const Ticks jobs = Ceil ? ceil_div_plus(arg, t_of(s, i)) : floor_div_plus1(arg, t_of(s, i));
    h = sat_add(h, sat_mul(jobs, c_of(s, i)));
  }
  return h;
}

template <class Src>
Ticks demand_bound_form(const Src& s, Ticks t, Formulation form) {
  return form == Formulation::PaperLiteral ? demand_bound_impl<true>(s, t)
                                           : demand_bound_impl<false>(s, t);
}

template <class Src>
void deadline_checkpoints_impl(const Src& s, Ticks limit, std::vector<Ticks>& out) {
  out.clear();
  const std::size_t n = count_of(s);
  for (std::size_t i = 0; i < n; ++i) {
    for (Ticks t = d_of(s, i); t <= limit; t = sat_add(t, t_of(s, i))) {
      out.push_back(t);
      if (t == kNoBound) break;
    }
  }
  std::ranges::sort(out);
  const auto dup = std::ranges::unique(out);
  out.erase(dup.begin(), dup.end());
}

}  // namespace

Ticks demand_bound(const TaskSet& ts, Ticks t, Formulation form) {
  return demand_bound_form(ts, t, form);
}

std::vector<Ticks> deadline_checkpoints(const TaskSet& ts, Ticks limit) {
  std::vector<Ticks> points;
  deadline_checkpoints_impl(ts, limit, points);
  return points;
}

namespace {

/// Shared driver: checks `demand_plus_blocking(t) <= t` over all deadline
/// checkpoints within the synchronous busy period.
template <typename DemandFn>
FeasibilityResult check_over_checkpoints(const TaskSet& ts, Ticks min_t, DemandFn demand) {
  FeasibilityResult out;
  if (ts.empty()) {
    out.feasible = true;
    return out;
  }
  if (ts.utilization() > 1.0) {
    out.feasible = false;
    out.first_violation = 0;
    return out;
  }
  const BusyPeriod bp = synchronous_busy_period(ts);
  if (!bp.bounded()) {
    out.feasible = false;
    return out;
  }
  out.horizon = bp.length;
  for (const Ticks t : deadline_checkpoints(ts, bp.length)) {
    if (t < min_t) continue;
    ++out.checkpoints;
    if (demand(t) > t) {
      out.first_violation = t;
      out.feasible = false;
      return out;
    }
  }
  out.feasible = true;
  return out;
}

}  // namespace

FeasibilityResult edf_preemptive_feasible(const TaskSet& ts, Formulation form) {
  return check_over_checkpoints(ts, /*min_t=*/0,
                                [&](Ticks t) { return demand_bound(ts, t, form); });
}

FeasibilityResult np_edf_feasible_zheng_shin(const TaskSet& ts, Formulation form) {
  const Ticks cmax = ts.max_execution();
  // The paper states the condition for t >= min_i D_i; below that no deadline
  // exists, so there is nothing to check.
  return check_over_checkpoints(ts, ts.min_deadline(), [&](Ticks t) {
    return sat_add(demand_bound(ts, t, form), cmax);
  });
}

FeasibilityResult np_edf_feasible_george(const TaskSet& ts, Formulation form) {
  return check_over_checkpoints(ts, /*min_t=*/0, [&](Ticks t) {
    Ticks blocking = 0;
    for (const Task& task : ts) {
      if (task.D > t) blocking = std::max(blocking, task.C - 1);
    }
    return sat_add(demand_bound(ts, t, form), blocking);
  });
}

// ------------------------------------------------------------ SoA fast path

Ticks demand_bound(const TaskSetView& v, Ticks t, Formulation form) {
  if (const simd::Kernels* k = v.simd_ok ? simd::active() : nullptr) {
    const simd::DemandResult r = k->demand_sum(v.C, v.T, v.D, v.recip_t, v.n_padded, t,
                                               form == Formulation::PaperLiteral);
    if (r.status == simd::Status::kOk) return r.demand;
  }
  return demand_bound_form(v, t, form);
}

void deadline_checkpoints(const TaskSetView& v, Ticks limit, std::vector<Ticks>& out) {
  deadline_checkpoints_impl(v, limit, out);
}

namespace {

/// View-based twin of check_over_checkpoints: same guards, same scan order,
/// with the checkpoint buffer and busy-period warm seed living in `scratch`.
/// The demand lambda is split into the shared h(t) — which goes through the
/// vector kernels — and a per-test `addend(t)` blocking term. Where the task
/// loop is short, four checkpoints are evaluated per kernel pass; the
/// violation scan over the four results still runs in checkpoint order, so
/// the first violation and examined-checkpoint count match the reference
/// exactly.
template <typename AddendFn>
FeasibilityResult check_over_checkpoints(const TaskSetView& v, Formulation form, Ticks min_t,
                                         AddendFn addend, RtaScratch& scratch, bool warm_start) {
  FeasibilityResult out;
  if (v.empty()) {
    out.feasible = true;
    return out;
  }
  if (v.utilization() > 1.0) {
    out.feasible = false;
    out.first_violation = 0;
    return out;
  }
  const BusyPeriod bp =
      synchronous_busy_period(v, 1 << 20, warm_start ? scratch.warm_busy : 0);
  if (!bp.bounded()) {
    out.feasible = false;
    return out;
  }
  scratch.warm_busy = bp.length;
  out.horizon = bp.length;
  deadline_checkpoints(v, bp.length, scratch.checkpoints);
  const std::vector<Ticks>& cps = scratch.checkpoints;
  const bool ceil_form = form == Formulation::PaperLiteral;
  const simd::Kernels* k = v.simd_ok ? simd::active() : nullptr;

  // Checkpoints are sorted, so the `t < min_t` skip is a prefix.
  std::size_t idx =
      static_cast<std::size_t>(std::lower_bound(cps.begin(), cps.end(), min_t) - cps.begin());

  const auto check_one = [&](Ticks t, Ticks demand) -> bool {
    ++out.checkpoints;
    if (sat_add(demand, addend(t)) > t) {
      out.first_violation = t;
      out.feasible = false;
      return false;
    }
    return true;
  };

  if (k != nullptr && v.n <= 8) {
    // Short task loop: lanes are checkpoints, tasks broadcast.
    while (idx + 4 <= cps.size()) {
      const simd::DemandGridResult g =
          k->demand_grid(v.C, v.T, v.D, v.recip_t, v.n_padded, cps.data() + idx, ceil_form);
      if (g.status != simd::Status::kOk) break;  // finish on the per-t path
      for (int b = 0; b < 4; ++b) {
        if (!check_one(cps[idx + b], g.demand[b])) return out;
      }
      idx += 4;
    }
  }
  for (; idx < cps.size(); ++idx) {
    const Ticks t = cps[idx];
    Ticks h;
    if (k != nullptr) {
      const simd::DemandResult r = k->demand_sum(v.C, v.T, v.D, v.recip_t, v.n_padded, t,
                                                 ceil_form);
      h = r.status == simd::Status::kOk ? r.demand : demand_bound_form(v, t, form);
    } else {
      h = demand_bound_form(v, t, form);
    }
    if (!check_one(t, h)) return out;
  }
  out.feasible = true;
  return out;
}

}  // namespace

FeasibilityResult edf_preemptive_feasible(const TaskSet& ts, Formulation form,
                                          RtaScratch& scratch, bool warm_start) {
  const TaskSetView& v = scratch.arena.bind(ts);
  return check_over_checkpoints(
      v, form, /*min_t=*/0, [](Ticks) -> Ticks { return 0; }, scratch, warm_start);
}

FeasibilityResult np_edf_feasible_zheng_shin(const TaskSet& ts, Formulation form,
                                             RtaScratch& scratch, bool warm_start) {
  const TaskSetView& v = scratch.arena.bind(ts);
  Ticks cmax = 0;
  Ticks min_d = kNoBound;
  for (std::size_t i = 0; i < v.n; ++i) {
    cmax = std::max(cmax, v.C[i]);
    min_d = std::min(min_d, v.D[i]);
  }
  return check_over_checkpoints(
      v, form, min_d, [cmax](Ticks) { return cmax; }, scratch, warm_start);
}

FeasibilityResult np_edf_feasible_george(const TaskSet& ts, Formulation form, RtaScratch& scratch,
                                         bool warm_start) {
  const TaskSetView& v = scratch.arena.bind(ts);
  return check_over_checkpoints(
      v, form, /*min_t=*/0,
      [&v](Ticks t) {
        Ticks blocking = 0;
        for (std::size_t i = 0; i < v.n; ++i) {
          if (v.D[i] > t) blocking = std::max(blocking, v.C[i] - 1);
        }
        return blocking;
      },
      scratch, warm_start);
}

}  // namespace profisched
