#include "core/edf_feasibility.hpp"

#include <algorithm>

namespace profisched {

Ticks demand_bound(const TaskSet& ts, Ticks t, Formulation form) {
  Ticks h = 0;
  for (const Task& task : ts) {
    const Ticks arg = t - task.D;
    const Ticks jobs = (form == Formulation::PaperLiteral) ? ceil_div_plus(arg, task.T)
                                                           : floor_div_plus1(arg, task.T);
    h = sat_add(h, sat_mul(jobs, task.C));
  }
  return h;
}

std::vector<Ticks> deadline_checkpoints(const TaskSet& ts, Ticks limit) {
  std::vector<Ticks> points;
  for (const Task& task : ts) {
    for (Ticks t = task.D; t <= limit; t = sat_add(t, task.T)) {
      points.push_back(t);
      if (t == kNoBound) break;
    }
  }
  std::ranges::sort(points);
  const auto dup = std::ranges::unique(points);
  points.erase(dup.begin(), dup.end());
  return points;
}

namespace {

/// Shared driver: checks `demand_plus_blocking(t) <= t` over all deadline
/// checkpoints within the synchronous busy period.
template <typename DemandFn>
FeasibilityResult check_over_checkpoints(const TaskSet& ts, Ticks min_t, DemandFn demand) {
  FeasibilityResult out;
  if (ts.empty()) {
    out.feasible = true;
    return out;
  }
  if (ts.utilization() > 1.0) {
    out.feasible = false;
    out.first_violation = 0;
    return out;
  }
  const BusyPeriod bp = synchronous_busy_period(ts);
  if (!bp.bounded()) {
    out.feasible = false;
    return out;
  }
  out.horizon = bp.length;
  for (const Ticks t : deadline_checkpoints(ts, bp.length)) {
    if (t < min_t) continue;
    ++out.checkpoints;
    if (demand(t) > t) {
      out.first_violation = t;
      out.feasible = false;
      return out;
    }
  }
  out.feasible = true;
  return out;
}

}  // namespace

FeasibilityResult edf_preemptive_feasible(const TaskSet& ts, Formulation form) {
  return check_over_checkpoints(ts, /*min_t=*/0,
                                [&](Ticks t) { return demand_bound(ts, t, form); });
}

FeasibilityResult np_edf_feasible_zheng_shin(const TaskSet& ts, Formulation form) {
  const Ticks cmax = ts.max_execution();
  // The paper states the condition for t >= min_i D_i; below that no deadline
  // exists, so there is nothing to check.
  return check_over_checkpoints(ts, ts.min_deadline(), [&](Ticks t) {
    return sat_add(demand_bound(ts, t, form), cmax);
  });
}

FeasibilityResult np_edf_feasible_george(const TaskSet& ts, Formulation form) {
  return check_over_checkpoints(ts, /*min_t=*/0, [&](Ticks t) {
    Ticks blocking = 0;
    for (const Task& task : ts) {
      if (task.D > t) blocking = std::max(blocking, task.C - 1);
    }
    return sat_add(demand_bound(ts, t, form), blocking);
  });
}

}  // namespace profisched
