#include "core/edf_feasibility.hpp"

#include <algorithm>

namespace profisched {

Ticks demand_bound(const TaskSet& ts, Ticks t, Formulation form) {
  Ticks h = 0;
  for (const Task& task : ts) {
    const Ticks arg = t - task.D;
    const Ticks jobs = (form == Formulation::PaperLiteral) ? ceil_div_plus(arg, task.T)
                                                           : floor_div_plus1(arg, task.T);
    h = sat_add(h, sat_mul(jobs, task.C));
  }
  return h;
}

std::vector<Ticks> deadline_checkpoints(const TaskSet& ts, Ticks limit) {
  std::vector<Ticks> points;
  for (const Task& task : ts) {
    for (Ticks t = task.D; t <= limit; t = sat_add(t, task.T)) {
      points.push_back(t);
      if (t == kNoBound) break;
    }
  }
  std::ranges::sort(points);
  const auto dup = std::ranges::unique(points);
  points.erase(dup.begin(), dup.end());
  return points;
}

namespace {

/// Shared driver: checks `demand_plus_blocking(t) <= t` over all deadline
/// checkpoints within the synchronous busy period.
template <typename DemandFn>
FeasibilityResult check_over_checkpoints(const TaskSet& ts, Ticks min_t, DemandFn demand) {
  FeasibilityResult out;
  if (ts.empty()) {
    out.feasible = true;
    return out;
  }
  if (ts.utilization() > 1.0) {
    out.feasible = false;
    out.first_violation = 0;
    return out;
  }
  const BusyPeriod bp = synchronous_busy_period(ts);
  if (!bp.bounded()) {
    out.feasible = false;
    return out;
  }
  out.horizon = bp.length;
  for (const Ticks t : deadline_checkpoints(ts, bp.length)) {
    if (t < min_t) continue;
    ++out.checkpoints;
    if (demand(t) > t) {
      out.first_violation = t;
      out.feasible = false;
      return out;
    }
  }
  out.feasible = true;
  return out;
}

}  // namespace

FeasibilityResult edf_preemptive_feasible(const TaskSet& ts, Formulation form) {
  return check_over_checkpoints(ts, /*min_t=*/0,
                                [&](Ticks t) { return demand_bound(ts, t, form); });
}

FeasibilityResult np_edf_feasible_zheng_shin(const TaskSet& ts, Formulation form) {
  const Ticks cmax = ts.max_execution();
  // The paper states the condition for t >= min_i D_i; below that no deadline
  // exists, so there is nothing to check.
  return check_over_checkpoints(ts, ts.min_deadline(), [&](Ticks t) {
    return sat_add(demand_bound(ts, t, form), cmax);
  });
}

FeasibilityResult np_edf_feasible_george(const TaskSet& ts, Formulation form) {
  return check_over_checkpoints(ts, /*min_t=*/0, [&](Ticks t) {
    Ticks blocking = 0;
    for (const Task& task : ts) {
      if (task.D > t) blocking = std::max(blocking, task.C - 1);
    }
    return sat_add(demand_bound(ts, t, form), blocking);
  });
}

// ------------------------------------------------------------ SoA fast path

Ticks demand_bound(const TaskSetView& v, Ticks t, Formulation form) {
  Ticks h = 0;
  for (std::size_t i = 0; i < v.n; ++i) {
    const Ticks arg = t - v.D[i];
    const Ticks jobs = (form == Formulation::PaperLiteral) ? ceil_div_plus(arg, v.T[i])
                                                           : floor_div_plus1(arg, v.T[i]);
    h = sat_add(h, sat_mul(jobs, v.C[i]));
  }
  return h;
}

void deadline_checkpoints(const TaskSetView& v, Ticks limit, std::vector<Ticks>& out) {
  out.clear();
  for (std::size_t i = 0; i < v.n; ++i) {
    for (Ticks t = v.D[i]; t <= limit; t = sat_add(t, v.T[i])) {
      out.push_back(t);
      if (t == kNoBound) break;
    }
  }
  std::ranges::sort(out);
  const auto dup = std::ranges::unique(out);
  out.erase(dup.begin(), dup.end());
}

namespace {

/// View-based twin of check_over_checkpoints: same guards, same scan, with
/// the checkpoint buffer and busy-period warm seed living in `scratch`.
template <typename DemandFn>
FeasibilityResult check_over_checkpoints(const TaskSetView& v, Ticks min_t, DemandFn demand,
                                         RtaScratch& scratch, bool warm_start) {
  FeasibilityResult out;
  if (v.empty()) {
    out.feasible = true;
    return out;
  }
  if (v.utilization() > 1.0) {
    out.feasible = false;
    out.first_violation = 0;
    return out;
  }
  const BusyPeriod bp =
      synchronous_busy_period(v, 1 << 20, warm_start ? scratch.warm_busy : 0);
  if (!bp.bounded()) {
    out.feasible = false;
    return out;
  }
  scratch.warm_busy = bp.length;
  out.horizon = bp.length;
  deadline_checkpoints(v, bp.length, scratch.checkpoints);
  for (const Ticks t : scratch.checkpoints) {
    if (t < min_t) continue;
    ++out.checkpoints;
    if (demand(t) > t) {
      out.first_violation = t;
      out.feasible = false;
      return out;
    }
  }
  out.feasible = true;
  return out;
}

}  // namespace

FeasibilityResult edf_preemptive_feasible(const TaskSet& ts, Formulation form,
                                          RtaScratch& scratch, bool warm_start) {
  const TaskSetView& v = scratch.arena.bind(ts);
  return check_over_checkpoints(
      v, /*min_t=*/0, [&](Ticks t) { return demand_bound(v, t, form); }, scratch, warm_start);
}

FeasibilityResult np_edf_feasible_zheng_shin(const TaskSet& ts, Formulation form,
                                             RtaScratch& scratch, bool warm_start) {
  const TaskSetView& v = scratch.arena.bind(ts);
  Ticks cmax = 0;
  Ticks min_d = kNoBound;
  for (std::size_t i = 0; i < v.n; ++i) {
    cmax = std::max(cmax, v.C[i]);
    min_d = std::min(min_d, v.D[i]);
  }
  return check_over_checkpoints(
      v, min_d, [&](Ticks t) { return sat_add(demand_bound(v, t, form), cmax); }, scratch,
      warm_start);
}

FeasibilityResult np_edf_feasible_george(const TaskSet& ts, Formulation form, RtaScratch& scratch,
                                         bool warm_start) {
  const TaskSetView& v = scratch.arena.bind(ts);
  return check_over_checkpoints(
      v, /*min_t=*/0,
      [&](Ticks t) {
        Ticks blocking = 0;
        for (std::size_t i = 0; i < v.n; ++i) {
          if (v.D[i] > t) blocking = std::max(blocking, v.C[i] - 1);
        }
        return sat_add(demand_bound(v, t, form), blocking);
      },
      scratch, warm_start);
}

}  // namespace profisched
