// sensitivity_search.hpp — the one search core behind every sensitivity
// analysis in the library (PR 6 API unification).
//
// Historically core/sensitivity.hpp (task sets) and profibus/sensitivity.hpp
// (networks) each carried their own binary-search loops and their own result
// convention (std::optional<Ticks> / std::optional<double>), duplicating the
// bracket handling and losing information the callers want: whether the
// search capped out, and how many probes it spent. This header unifies both
// layers on a single exact-search pair — max_satisfying / min_satisfying over
// a monotone predicate on integer Ticks — returning one SensitivityResult
// type, plus the fixed-point scaling constants everything shares. The
// optimizer (src/opt/) drives its breakdown-utilization, T_TR and D/T-ratio
// bisections through exactly these two functions.
#pragma once

#include <functional>

#include "core/time_types.hpp"

namespace profisched::sensitivity {

/// Fixed-point one: scaling factors are expressed in q/1024 units throughout
/// the sensitivity layer (q = 1024 means "unchanged").
inline constexpr Ticks kScaleOne = 1024;

/// Default upper bracket for growth searches: 64x (the historical cap both
/// sensitivity headers hard-coded).
inline constexpr Ticks kDefaultMaxScaleQ = 64 * kScaleOne;

/// Deadline searches cap at D = multiple · T (the historical 64·T cap).
inline constexpr Ticks kDefaultDeadlineCapMultiple = 64;

/// Default T_TR search cap (profibus-level searches).
inline constexpr Ticks kDefaultTtrCap = 1 << 24;

/// Outcome of one exact search over a monotone predicate.
struct SensitivityResult {
  /// False when the predicate fails on the entire bracket (the search has no
  /// satisfying value); `value` is meaningless then.
  bool feasible = false;
  /// True when the boundary was clipped by the bracket: the optimum of a
  /// max-search is >= `value` (== the bracket's hi), of a min-search <= it.
  bool cap_hit = false;
  /// The exact boundary: largest (max_satisfying) or smallest
  /// (min_satisfying) bracket value with pred(value) true.
  Ticks value = 0;
  /// Predicate evaluations spent (the searches are O(log bracket)).
  std::uint64_t probes = 0;

  explicit operator bool() const noexcept { return feasible; }
};

/// A monotone feasibility predicate over the searched parameter.
using TicksPredicate = std::function<bool(Ticks)>;

/// Largest v in [lo, hi] with pred(v) true, for pred monotone non-increasing
/// (true up to some boundary, false beyond). Infeasible when pred(lo) is
/// false; cap_hit when pred(hi) is true. Exact to one tick; throws
/// std::invalid_argument on an empty bracket (lo > hi).
[[nodiscard]] SensitivityResult max_satisfying(Ticks lo, Ticks hi, const TicksPredicate& pred);

/// Smallest v in [lo, hi] with pred(v) true, for pred monotone non-decreasing
/// (false below some boundary, true from it on). Infeasible when pred(hi) is
/// false; cap_hit when pred(lo) is true. Exact to one tick; throws
/// std::invalid_argument on an empty bracket (lo > hi).
[[nodiscard]] SensitivityResult min_satisfying(Ticks lo, Ticks hi, const TicksPredicate& pred);

}  // namespace profisched::sensitivity
