#include "core/busy_period.hpp"

#include <algorithm>

#include "core/simd.hpp"

namespace profisched {

BusyPeriod synchronous_busy_period(const TaskSet& ts, int fuel) {
  BusyPeriod out;
  if (ts.empty()) return out;
  if (ts.utilization() > 1.0) {
    out.length = kNoBound;
    return out;
  }

  Ticks L = ts.total_execution();
  for (int it = 0; it < fuel; ++it) {
    Ticks next = 0;
    for (const Task& t : ts) {
      next = sat_add(next, sat_mul(ceil_div_plus(sat_add(L, t.J), t.T), t.C));
    }
    out.iterations = it + 1;
    if (next == L) {
      out.length = L;
      return out;
    }
    if (next == kNoBound) break;
    L = next;
  }
  out.length = kNoBound;
  return out;
}

BusyPeriod synchronous_busy_period(const TaskSetView& v, int fuel, Ticks warm_l) {
  BusyPeriod out;
  if (v.empty()) return out;
  if (v.utilization() > 1.0) {
    out.length = kNoBound;
    return out;
  }

  Ticks L = std::max(v.total_execution(), warm_l);
  // The busy-period recurrence is the FP interference sum with base 0 over
  // the full (padded) set — same vector kernel, same fallback contract.
  if (const simd::Kernels* k = v.simd_ok ? simd::active() : nullptr) {
    const simd::FixedPointResult r = k->fp_fixed_point(v.C, v.T, v.J, v.recip_t, v.n_padded,
                                                       /*base=*/0, L, /*ceil_form=*/true, fuel);
    if (r.status == simd::Status::kOk) {
      out.iterations = r.iterations;
      out.length = r.converged ? r.value : kNoBound;
      return out;
    }
  }
  for (int it = 0; it < fuel; ++it) {
    Ticks next = 0;
    for (std::size_t i = 0; i < v.n; ++i) {
      next = sat_add(next, sat_mul(ceil_div_plus(sat_add(L, v.J[i]), v.T[i]), v.C[i]));
    }
    out.iterations = it + 1;
    if (next == L) {
      out.length = L;
      return out;
    }
    if (next == kNoBound) break;
    L = next;
  }
  out.length = kNoBound;
  return out;
}

}  // namespace profisched
