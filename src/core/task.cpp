#include "core/task.hpp"

#include <algorithm>

namespace profisched {

namespace {

void validate_one(const Task& t, std::size_t index) {
  const auto fail = [&](const char* what) {
    throw std::invalid_argument("Task #" + std::to_string(index) +
                                (t.name.empty() ? std::string{} : " (" + t.name + ")") + ": " + what);
  };
  if (t.C < 1) fail("C must be >= 1 tick");
  if (t.T < 1) fail("T must be >= 1 tick");
  if (t.D < 1) fail("D must be >= 1 tick");
  if (t.C > t.T) fail("C must not exceed T (a single task must not saturate the resource)");
  if (t.J < 0) fail("J must be non-negative");
}

}  // namespace

void TaskSet::push_back(Task t) {
  validate_one(t, tasks_.size());
  tasks_.push_back(std::move(t));
}

double TaskSet::utilization() const {
  double u = 0.0;
  for (const Task& t : tasks_) u += t.utilization();
  return u;
}

Ticks TaskSet::total_execution() const {
  Ticks sum = 0;
  for (const Task& t : tasks_) sum = sat_add(sum, t.C);
  return sum;
}

Ticks TaskSet::max_execution() const {
  Ticks m = 0;
  for (const Task& t : tasks_) m = std::max(m, t.C);
  return m;
}

Ticks TaskSet::min_deadline() const {
  Ticks m = kNoBound;
  for (const Task& t : tasks_) m = std::min(m, t.D);
  return m;
}

Ticks TaskSet::max_deadline() const {
  Ticks m = 0;
  for (const Task& t : tasks_) m = std::max(m, t.D);
  return m;
}

Ticks TaskSet::hyperperiod() const {
  Ticks h = 1;
  for (const Task& t : tasks_) {
    h = lcm_ticks(h, t.T);
    if (h == kNoBound) return kNoBound;
  }
  return h;
}

bool TaskSet::implicit_deadlines() const {
  return std::ranges::all_of(tasks_, [](const Task& t) { return t.D == t.T; });
}

bool TaskSet::constrained_deadlines() const {
  return std::ranges::all_of(tasks_, [](const Task& t) { return t.D <= t.T; });
}

void TaskSet::validate() const {
  for (std::size_t i = 0; i < tasks_.size(); ++i) validate_one(tasks_[i], i);
}

}  // namespace profisched
