// simd_avx2.cpp — the only TU compiled with -mavx2 (see CMakeLists). The
// dispatcher calls avx2_kernels() strictly after __builtin_cpu_supports
// confirms AVX2, so no AVX2 instruction ever executes on a host without it.
// On non-x86 targets (or when the build didn't enable AVX2 for this file)
// the symbol still exists and reports "not available".
#include "core/simd.hpp"
#include "core/simd_lanes.hpp"

namespace profisched::simd {

#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))

const Kernels* avx2_kernels() noexcept {
  static const Kernels table = detail::make_kernels<detail::Avx2Backend>("avx2");
  return &table;
}

#else

const Kernels* avx2_kernels() noexcept { return nullptr; }

#endif

}  // namespace profisched::simd
