#include "core/usweep.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/priority_assignment.hpp"
#include "core/response_time_edf.hpp"
#include "core/response_time_fp.hpp"

namespace profisched {

TaskSet scale_to_utilization(const TaskSet& base, double u) {
  const double base_u = base.utilization();
  if (base_u <= 0.0) throw std::invalid_argument("scale_to_utilization: empty base set");
  const Ticks q1024 = static_cast<Ticks>(std::llround(u / base_u * 1024.0));
  std::vector<Task> tasks(base.begin(), base.end());
  for (Task& t : tasks) {
    const Ticks scaled = ceil_div(sat_mul(t.C, std::max<Ticks>(q1024, 0)), 1024);
    t.C = std::clamp<Ticks>(scaled, 1, std::min(t.T, t.D));
  }
  return TaskSet{std::move(tasks)};
}

namespace {

// The cell analyses fold per-task outcomes inside the analysis loop (see
// analyze_fp_cell / analyze_edf_cell): same order-independent fold this file
// used to perform over the per_task vectors, minus the vector.

USweepCell cell_from_fp(const FpCellResult& a, std::uint64_t& fp_iterations) {
  fp_iterations += a.iterations;
  return {a.schedulable, a.worst_response};
}

USweepCell cell_from_edf(const EdfCellResult& a, std::uint64_t& busy_iterations,
                         std::uint64_t& edf_offsets) {
  busy_iterations += static_cast<std::uint64_t>(a.busy_iterations);
  edf_offsets += a.offsets_examined;
  return {a.schedulable, a.worst_response};
}

}  // namespace

USweepResult run_usweep(const TaskSet& base, const USweepSpec& spec) {
  if (base.empty()) throw std::invalid_argument("run_usweep: empty base set");
  if (spec.u_grid.empty()) throw std::invalid_argument("run_usweep: empty u grid");
  if (spec.policies.empty()) throw std::invalid_argument("run_usweep: empty policy list");
  if (!std::is_sorted(spec.u_grid.begin(), spec.u_grid.end())) {
    throw std::invalid_argument("run_usweep: u grid must be ascending (warm-start contract)");
  }

  // T and D never change across the grid, so the priority orders are fixed;
  // computing them per point would yield the same permutations.
  const PriorityOrder rm = rate_monotonic_order(base);
  const PriorityOrder dm = deadline_monotonic_order(base);

  USweepResult out;
  out.points.reserve(spec.u_grid.size());
  // One scratch per policy slot: warm fixed points are only comparable
  // within one recurrence family.
  std::vector<RtaScratch> scratch(spec.policies.size());

  EdfRtaOptions edf_opt;
  edf_opt.fixed_point_fuel = spec.fuel;

  for (std::size_t k = 0; k < spec.u_grid.size(); ++k) {
    const TaskSet ts = scale_to_utilization(base, spec.u_grid[k]);
    const bool warm = spec.warm_start && k > 0;

    USweepPoint pt;
    pt.u_target = spec.u_grid[k];
    pt.u_actual = ts.utilization();
    pt.cells.reserve(spec.policies.size());

    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      RtaScratch& s = scratch[p];
      switch (spec.policies[p]) {
        case Policy::RateMonotonic:
          pt.cells.push_back(cell_from_fp(
              analyze_fp_cell(ts, rm, /*preemptive=*/true, spec.form, spec.fuel, s, warm),
              out.fp_iterations));
          break;
        case Policy::DeadlineMonotonic:
          pt.cells.push_back(cell_from_fp(
              analyze_fp_cell(ts, dm, /*preemptive=*/true, spec.form, spec.fuel, s, warm),
              out.fp_iterations));
          break;
        case Policy::NpDeadlineMonotonic:
          pt.cells.push_back(cell_from_fp(
              analyze_fp_cell(ts, dm, /*preemptive=*/false, spec.form, spec.fuel, s, warm),
              out.fp_iterations));
          break;
        case Policy::Edf:
          pt.cells.push_back(
              cell_from_edf(analyze_edf_cell(ts, /*preemptive=*/true, edf_opt, s, warm),
                            out.busy_iterations, out.edf_offsets));
          break;
        case Policy::NpEdf:
          pt.cells.push_back(
              cell_from_edf(analyze_edf_cell(ts, /*preemptive=*/false, edf_opt, s, warm),
                            out.busy_iterations, out.edf_offsets));
          break;
      }
    }
    out.points.push_back(std::move(pt));
  }
  return out;
}

}  // namespace profisched
