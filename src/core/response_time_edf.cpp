#include "core/response_time_edf.hpp"

#include <algorithm>

#include "core/simd.hpp"

namespace profisched {

std::vector<Ticks> edf_candidate_offsets(const TaskSet& ts, std::size_t i, Ticks horizon) {
  std::vector<Ticks> offsets{0};
  const Ticks di = ts[i].D;
  for (std::size_t j = 0; j < ts.size(); ++j) {
    const Task& tj = ts[j];
    const Ticks base = tj.D - tj.J - di;
    // First k with k·T_j + base >= 0.
    Ticks k0 = base >= 0 ? 0 : ceil_div(-base, tj.T);
    for (Ticks k = k0;; ++k) {
      const Ticks a = sat_add(sat_mul(k, tj.T), base);
      if (a > horizon || a == kNoBound) break;
      offsets.push_back(a);
    }
  }
  std::ranges::sort(offsets);
  const auto dup = std::ranges::unique(offsets);
  offsets.erase(dup.begin(), dup.end());
  return offsets;
}

namespace {

/// Higher-priority workload W_i(a, t) (preemptive) or W*_i(a, t)
/// (non-preemptive start-time form): jobs of other tasks with absolute
/// deadline no later than a + D_i.
Ticks hp_workload(const TaskSet& ts, std::size_t i, Ticks a, Ticks t, bool start_time_form) {
  const Ticks abs_deadline = sat_add(a, ts[i].D);
  Ticks sum = 0;
  for (std::size_t j = 0; j < ts.size(); ++j) {
    if (j == i) continue;
    const Task& tj = ts[j];
    if (tj.D - tj.J > abs_deadline) continue;  // deadline after i's: not higher priority
    const Ticks by_deadline = floor_div_plus1(abs_deadline - tj.D + tj.J, tj.T);
    const Ticks by_time = start_time_form ? floor_div_plus1(sat_add(t, tj.J), tj.T)
                                          : ceil_div_plus(sat_add(t, tj.J), tj.T);
    sum = sat_add(sum, sat_mul(std::min(by_time, by_deadline), tj.C));
  }
  return sum;
}

/// Blocking by a later-deadline (lower-priority) non-preemptable job
/// (eq. 9's leading max term).
Ticks np_blocking(const TaskSet& ts, std::size_t i, Ticks a) {
  const Ticks abs_deadline = sat_add(a, ts[i].D);
  Ticks b = 0;
  for (std::size_t j = 0; j < ts.size(); ++j) {
    if (j == i) continue;
    const Task& tj = ts[j];
    if (tj.D - tj.J > abs_deadline) b = std::max(b, tj.C - 1);
  }
  return b;
}

struct OffsetResult {
  bool converged = false;
  Ticks response = kNoBound;
};

/// r_i(a) for preemptive EDF (eqs. 6).
OffsetResult response_at_offset_preemptive(const TaskSet& ts, std::size_t i, Ticks a, int fuel) {
  const Task& ti = ts[i];
  const Ticks own = sat_mul(floor_div_plus1(a, ti.T), ti.C);  // (1 + ⌊a/T_i⌋)·C_i
  Ticks L = own;
  for (int it = 0; it < fuel; ++it) {
    const Ticks next = sat_add(hp_workload(ts, i, a, L, /*start_time_form=*/false), own);
    if (next == L) return {true, std::max(ti.C, L - a)};
    if (next == kNoBound) return {};
    L = next;
  }
  return {};
}

/// r_i(a) for non-preemptive EDF (eqs. 9).
OffsetResult response_at_offset_nonpreemptive(const TaskSet& ts, std::size_t i, Ticks a,
                                              int fuel) {
  const Task& ti = ts[i];
  const Ticks blocking = np_blocking(ts, i, a);
  const Ticks own_prior = sat_mul(floor_div(a, ti.T), ti.C);  // ⌊a/T_i⌋·C_i
  Ticks L = 0;
  for (int it = 0; it < fuel; ++it) {
    const Ticks next = sat_add(
        blocking, sat_add(hp_workload(ts, i, a, L, /*start_time_form=*/true), own_prior));
    if (next == L) return {true, sat_add(ti.C, std::max<Ticks>(0, L - a))};
    if (next == kNoBound) return {};
    L = next;
  }
  return {};
}

template <typename PerOffsetFn>
EdfRtaResult max_over_offsets(const TaskSet& ts, std::size_t i, const EdfRtaOptions& opt,
                              PerOffsetFn per_offset) {
  EdfRtaResult out;
  if (ts.utilization() > 1.0) return out;  // busy period unbounded: report unschedulable
  const BusyPeriod bp = synchronous_busy_period(ts);
  if (!bp.bounded()) return out;

  const std::vector<Ticks> offsets = edf_candidate_offsets(ts, i, bp.length);
  if (offsets.size() > opt.max_offsets) return out;

  Ticks best = 0;
  Ticks best_a = 0;
  for (const Ticks a : offsets) {
    ++out.offsets_examined;
    const OffsetResult r = per_offset(a);
    if (!r.converged) return out;
    if (r.response > best) {
      best = r.response;
      best_a = a;
    }
  }
  out.converged = true;
  out.response = sat_add(best, ts[i].J);  // measured from event arrival
  out.critical_offset = best_a;
  return out;
}

}  // namespace

EdfRtaResult edf_response_time_preemptive(const TaskSet& ts, std::size_t i,
                                          const EdfRtaOptions& opt) {
  return max_over_offsets(ts, i, opt, [&](Ticks a) {
    return response_at_offset_preemptive(ts, i, a, opt.fixed_point_fuel);
  });
}

EdfRtaResult edf_response_time_nonpreemptive(const TaskSet& ts, std::size_t i,
                                             const EdfRtaOptions& opt) {
  return max_over_offsets(ts, i, opt, [&](Ticks a) {
    return response_at_offset_nonpreemptive(ts, i, a, opt.fixed_point_fuel);
  });
}

// ------------------------------------------------------------ SoA fast path

namespace {

/// Candidate offsets into a reused buffer — same generation order (hence
/// identical sorted/deduplicated content) as edf_candidate_offsets above.
void candidate_offsets_view(const TaskSetView& v, std::size_t i, Ticks horizon,
                            std::vector<Ticks>& out) {
  out.clear();
  out.push_back(0);
  const Ticks di = v.D[i];
  for (std::size_t j = 0; j < v.n; ++j) {
    const Ticks base = v.D[j] - v.J[j] - di;
    const Ticks k0 = base >= 0 ? 0 : ceil_div(-base, v.T[j]);
    for (Ticks k = k0;; ++k) {
      const Ticks a = sat_add(sat_mul(k, v.T[j]), base);
      if (a > horizon || a == kNoBound) break;
      out.push_back(a);
    }
  }
  std::ranges::sort(out);
  const auto dup = std::ranges::unique(out);
  out.erase(dup.begin(), dup.end());
}

/// W_i(a, t) / W*_i(a, t) over the view (abs_deadline = a + D_i, hoisted).
Ticks hp_workload_view(const TaskSetView& v, std::size_t i, Ticks abs_deadline, Ticks t,
                       bool start_time_form) {
  Ticks sum = 0;
  for (std::size_t j = 0; j < v.n; ++j) {
    if (j == i) continue;
    if (v.D[j] - v.J[j] > abs_deadline) continue;
    const Ticks by_deadline = floor_div_plus1(abs_deadline - v.D[j] + v.J[j], v.T[j]);
    const Ticks by_time = start_time_form ? floor_div_plus1(sat_add(t, v.J[j]), v.T[j])
                                          : ceil_div_plus(sat_add(t, v.J[j]), v.T[j]);
    sum = sat_add(sum, sat_mul(std::min(by_time, by_deadline), v.C[j]));
  }
  return sum;
}

/// OffsetResult plus the converged L(a) (the next offset's warm seed).
struct OffsetOutcomeView {
  bool converged = false;
  Ticks response = kNoBound;
  Ticks fixed_point = 0;
};

OffsetOutcomeView offset_preemptive_view(const TaskSetView& v, std::size_t i, Ticks a, int fuel,
                                         Ticks warm_l) {
  const Ticks own = sat_mul(floor_div_plus1(a, v.T[i]), v.C[i]);
  const Ticks abs_deadline = sat_add(a, v.D[i]);
  Ticks L = std::max(own, warm_l);
  if (const simd::Kernels* k = v.simd_ok ? simd::active() : nullptr) {
    const simd::EdfOffsetResult r =
        k->edf_offset_fixed_point(v.C, v.T, v.D, v.J, v.recip_t, v.n_padded, i, abs_deadline,
                                  own, L, /*start_time_form=*/false, fuel);
    if (r.status == simd::Status::kOk) {
      if (!r.converged) return {};
      return {true, std::max(v.C[i], r.fixed_point - a), r.fixed_point};
    }
  }
  for (int it = 0; it < fuel; ++it) {
    const Ticks next = sat_add(hp_workload_view(v, i, abs_deadline, L, false), own);
    if (next == L) return {true, std::max(v.C[i], L - a), L};
    if (next == kNoBound) return {};
    L = next;
  }
  return {};
}

OffsetOutcomeView offset_nonpreemptive_view(const TaskSetView& v, std::size_t i, Ticks a,
                                            int fuel) {
  const Ticks abs_deadline = sat_add(a, v.D[i]);
  Ticks blocking = 0;
  for (std::size_t j = 0; j < v.n; ++j) {
    if (j == i) continue;
    if (v.D[j] - v.J[j] > abs_deadline) blocking = std::max(blocking, v.C[j] - 1);
  }
  const Ticks own_prior = sat_mul(floor_div(a, v.T[i]), v.C[i]);
  if (const simd::Kernels* k = v.simd_ok ? simd::active() : nullptr) {
    // base = blocking + own_prior: sat_add over non-negative terms is
    // order-insensitive, so folding it up front matches the reference sum.
    const simd::EdfOffsetResult r =
        k->edf_offset_fixed_point(v.C, v.T, v.D, v.J, v.recip_t, v.n_padded, i, abs_deadline,
                                  sat_add(blocking, own_prior), /*l0=*/0,
                                  /*start_time_form=*/true, fuel);
    if (r.status == simd::Status::kOk) {
      if (!r.converged) return {};
      return {true, sat_add(v.C[i], std::max<Ticks>(0, r.fixed_point - a)), r.fixed_point};
    }
  }
  Ticks L = 0;
  for (int it = 0; it < fuel; ++it) {
    const Ticks next =
        sat_add(blocking, sat_add(hp_workload_view(v, i, abs_deadline, L, true), own_prior));
    if (next == L) return {true, sat_add(v.C[i], std::max<Ticks>(0, L - a)), L};
    if (next == kNoBound) return {};
    L = next;
  }
  return {};
}

/// Shared candidate-deadline set: every s = k·T_j + D_j − J_j within
/// [0, limit], sorted and deduplicated. Task i's candidate offsets are
/// exactly {0} ∪ {s − D_i : s ∈ S, D_i <= s <= horizon + D_i} — the map
/// a = s − D_i is a bijection between the reference's per-task candidates
/// and the slice elements — so one sort serves all tasks where the
/// reference sorts once per task. Requires limit = horizon + max_j D_j to
/// be unsaturated (callers fall back to per-task generation otherwise: a
/// saturated limit would make this enumeration run to kNoBound even when
/// every per-task horizon is small).
void shared_candidate_deadlines(const TaskSetView& v, Ticks limit, std::vector<Ticks>& out) {
  out.clear();
  for (std::size_t j = 0; j < v.n; ++j) {
    const Ticks base = v.D[j] - v.J[j];
    const Ticks k0 = base >= 0 ? 0 : ceil_div(-base, v.T[j]);
    for (Ticks k = k0;; ++k) {
      const Ticks s = sat_add(sat_mul(k, v.T[j]), base);
      if (s > limit || s == kNoBound) break;
      out.push_back(s);
    }
  }
  std::ranges::sort(out);
  const auto dup = std::ranges::unique(out);
  out.erase(dup.begin(), dup.end());
}

/// max_a r_i(a) over the offsets produced (in ascending order) by
/// `for_each_offset(visit)`, which must call visit per offset and stop when
/// it returns false. Folds exactly like the reference max_over_offsets.
template <typename OffsetsFn>
EdfRtaResult edf_scan_offsets(const TaskSetView& v, std::size_t i, bool preemptive, int fuel,
                              OffsetsFn for_each_offset) {
  EdfRtaResult r;
  Ticks best = 0;
  Ticks best_a = 0;
  Ticks warm_l = 0;
  bool ok = true;
  for_each_offset([&](Ticks a) {
    ++r.offsets_examined;
    const OffsetOutcomeView o = preemptive
                                    ? offset_preemptive_view(v, i, a, fuel, warm_l)
                                    : offset_nonpreemptive_view(v, i, a, fuel);
    if (!o.converged) {
      ok = false;
      return false;
    }
    if (preemptive) warm_l = o.fixed_point;
    if (o.response > best) {
      best = o.response;
      best_a = a;
    }
    return true;
  });
  if (ok) {
    r.converged = true;
    r.response = sat_add(best, v.J[i]);
    r.critical_offset = best_a;
  }
  return r;
}

/// Whole-set driver shared by the EdfAnalysis and EdfCellResult entry
/// points: binds the view, hoists the per-task guards (the reference
/// evaluates them per task, but they are task-independent — identical
/// verdict either way), builds the shared candidate set when usable, and
/// hands each task's EdfRtaResult to `sink(i, r, D_i)`.
template <typename SinkFn>
void analyze_edf_common(const TaskSet& ts, const EdfRtaOptions& opt, RtaScratch& scratch,
                        bool warm_start, bool preemptive, int& busy_iterations, SinkFn sink) {
  const TaskSetView& v = scratch.arena.bind(ts);
  const bool overloaded = v.utilization() > 1.0;
  BusyPeriod bp;
  if (!overloaded) {
    bp = synchronous_busy_period(v, 1 << 20, warm_start ? scratch.warm_busy : 0);
    if (bp.bounded()) scratch.warm_busy = bp.length;
    busy_iterations = bp.iterations;
  }
  const bool have_horizon = !overloaded && bp.bounded();

  Ticks max_d = 0;
  for (std::size_t j = 0; j < v.n; ++j) max_d = std::max(max_d, v.D[j]);
  const Ticks limit = have_horizon ? sat_add(bp.length, max_d) : kNoBound;
  const bool shared = have_horizon && limit != kNoBound;
  if (shared) shared_candidate_deadlines(v, limit, scratch.offsets);
  const std::vector<Ticks>& cand = scratch.offsets;

  for (std::size_t i = 0; i < v.n; ++i) {
    EdfRtaResult r;
    if (have_horizon) {
      if (shared) {
        const Ticks di = v.D[i];
        const auto lo = std::lower_bound(cand.begin(), cand.end(), di);
        const auto hi = std::upper_bound(lo, cand.end(), sat_add(bp.length, di));
        // Offset 0 is prepended; the slice's first element re-yields it when
        // s == D_i, so the deduplicated count drops by one in that case.
        const bool dup0 = lo != hi && *lo == di;
        const std::size_t n_offsets =
            1 + static_cast<std::size_t>(hi - lo) - static_cast<std::size_t>(dup0);
        if (n_offsets <= opt.max_offsets) {
          r = edf_scan_offsets(v, i, preemptive, opt.fixed_point_fuel, [&](auto visit) {
            if (!visit(Ticks{0})) return;
            for (auto it = lo; it != hi; ++it) {
              const Ticks a = *it - di;
              if (a == 0) continue;
              if (!visit(a)) return;
            }
          });
        }
      } else {
        candidate_offsets_view(v, i, bp.length, scratch.offsets);
        if (scratch.offsets.size() <= opt.max_offsets) {
          r = edf_scan_offsets(v, i, preemptive, opt.fixed_point_fuel, [&](auto visit) {
            for (const Ticks a : scratch.offsets) {
              if (!visit(a)) return;
            }
          });
        }
      }
    }
    sink(i, r, v.D[i]);
  }
}

EdfAnalysis analyze_view_edf(const TaskSet& ts, const EdfRtaOptions& opt, RtaScratch& scratch,
                             bool warm_start, bool preemptive) {
  EdfAnalysis out;
  out.per_task.resize(ts.size());
  out.schedulable = true;
  analyze_edf_common(ts, opt, scratch, warm_start, preemptive, out.busy_iterations,
                     [&](std::size_t i, const EdfRtaResult& r, Ticks d) {
                       out.per_task[i] = r;
                       if (!r.meets(d)) out.schedulable = false;
                     });
  return out;
}

}  // namespace

EdfCellResult analyze_edf_cell(const TaskSet& ts, bool preemptive, const EdfRtaOptions& opt,
                               RtaScratch& scratch, bool warm_start) {
  EdfCellResult out;
  out.schedulable = true;
  Ticks worst = 0;
  analyze_edf_common(ts, opt, scratch, warm_start, preemptive, out.busy_iterations,
                     [&](std::size_t, const EdfRtaResult& r, Ticks d) {
                       out.offsets_examined += static_cast<std::uint64_t>(r.offsets_examined);
                       worst = (!r.converged || worst == kNoBound) ? kNoBound
                                                                   : std::max(worst, r.response);
                       if (!r.meets(d)) out.schedulable = false;
                     });
  out.worst_response = worst;
  return out;
}

EdfAnalysis analyze_preemptive_edf(const TaskSet& ts, const EdfRtaOptions& opt) {
  RtaScratch scratch;
  return analyze_view_edf(ts, opt, scratch, /*warm_start=*/false, /*preemptive=*/true);
}

EdfAnalysis analyze_nonpreemptive_edf(const TaskSet& ts, const EdfRtaOptions& opt) {
  RtaScratch scratch;
  return analyze_view_edf(ts, opt, scratch, /*warm_start=*/false, /*preemptive=*/false);
}

EdfAnalysis analyze_preemptive_edf(const TaskSet& ts, const EdfRtaOptions& opt,
                                   RtaScratch& scratch, bool warm_start) {
  return analyze_view_edf(ts, opt, scratch, warm_start, /*preemptive=*/true);
}

EdfAnalysis analyze_nonpreemptive_edf(const TaskSet& ts, const EdfRtaOptions& opt,
                                      RtaScratch& scratch, bool warm_start) {
  return analyze_view_edf(ts, opt, scratch, warm_start, /*preemptive=*/false);
}

}  // namespace profisched
