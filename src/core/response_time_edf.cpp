#include "core/response_time_edf.hpp"

#include <algorithm>

namespace profisched {

std::vector<Ticks> edf_candidate_offsets(const TaskSet& ts, std::size_t i, Ticks horizon) {
  std::vector<Ticks> offsets{0};
  const Ticks di = ts[i].D;
  for (std::size_t j = 0; j < ts.size(); ++j) {
    const Task& tj = ts[j];
    const Ticks base = tj.D - tj.J - di;
    // First k with k·T_j + base >= 0.
    Ticks k0 = base >= 0 ? 0 : ceil_div(-base, tj.T);
    for (Ticks k = k0;; ++k) {
      const Ticks a = sat_add(sat_mul(k, tj.T), base);
      if (a > horizon || a == kNoBound) break;
      offsets.push_back(a);
    }
  }
  std::ranges::sort(offsets);
  const auto dup = std::ranges::unique(offsets);
  offsets.erase(dup.begin(), dup.end());
  return offsets;
}

namespace {

/// Higher-priority workload W_i(a, t) (preemptive) or W*_i(a, t)
/// (non-preemptive start-time form): jobs of other tasks with absolute
/// deadline no later than a + D_i.
Ticks hp_workload(const TaskSet& ts, std::size_t i, Ticks a, Ticks t, bool start_time_form) {
  const Ticks abs_deadline = sat_add(a, ts[i].D);
  Ticks sum = 0;
  for (std::size_t j = 0; j < ts.size(); ++j) {
    if (j == i) continue;
    const Task& tj = ts[j];
    if (tj.D - tj.J > abs_deadline) continue;  // deadline after i's: not higher priority
    const Ticks by_deadline = floor_div_plus1(abs_deadline - tj.D + tj.J, tj.T);
    const Ticks by_time = start_time_form ? floor_div_plus1(sat_add(t, tj.J), tj.T)
                                          : ceil_div_plus(sat_add(t, tj.J), tj.T);
    sum = sat_add(sum, sat_mul(std::min(by_time, by_deadline), tj.C));
  }
  return sum;
}

/// Blocking by a later-deadline (lower-priority) non-preemptable job
/// (eq. 9's leading max term).
Ticks np_blocking(const TaskSet& ts, std::size_t i, Ticks a) {
  const Ticks abs_deadline = sat_add(a, ts[i].D);
  Ticks b = 0;
  for (std::size_t j = 0; j < ts.size(); ++j) {
    if (j == i) continue;
    const Task& tj = ts[j];
    if (tj.D - tj.J > abs_deadline) b = std::max(b, tj.C - 1);
  }
  return b;
}

struct OffsetResult {
  bool converged = false;
  Ticks response = kNoBound;
};

/// r_i(a) for preemptive EDF (eqs. 6).
OffsetResult response_at_offset_preemptive(const TaskSet& ts, std::size_t i, Ticks a, int fuel) {
  const Task& ti = ts[i];
  const Ticks own = sat_mul(floor_div_plus1(a, ti.T), ti.C);  // (1 + ⌊a/T_i⌋)·C_i
  Ticks L = own;
  for (int it = 0; it < fuel; ++it) {
    const Ticks next = sat_add(hp_workload(ts, i, a, L, /*start_time_form=*/false), own);
    if (next == L) return {true, std::max(ti.C, L - a)};
    if (next == kNoBound) return {};
    L = next;
  }
  return {};
}

/// r_i(a) for non-preemptive EDF (eqs. 9).
OffsetResult response_at_offset_nonpreemptive(const TaskSet& ts, std::size_t i, Ticks a,
                                              int fuel) {
  const Task& ti = ts[i];
  const Ticks blocking = np_blocking(ts, i, a);
  const Ticks own_prior = sat_mul(floor_div(a, ti.T), ti.C);  // ⌊a/T_i⌋·C_i
  Ticks L = 0;
  for (int it = 0; it < fuel; ++it) {
    const Ticks next = sat_add(
        blocking, sat_add(hp_workload(ts, i, a, L, /*start_time_form=*/true), own_prior));
    if (next == L) return {true, sat_add(ti.C, std::max<Ticks>(0, L - a))};
    if (next == kNoBound) return {};
    L = next;
  }
  return {};
}

template <typename PerOffsetFn>
EdfRtaResult max_over_offsets(const TaskSet& ts, std::size_t i, const EdfRtaOptions& opt,
                              PerOffsetFn per_offset) {
  EdfRtaResult out;
  if (ts.utilization() > 1.0) return out;  // busy period unbounded: report unschedulable
  const BusyPeriod bp = synchronous_busy_period(ts);
  if (!bp.bounded()) return out;

  const std::vector<Ticks> offsets = edf_candidate_offsets(ts, i, bp.length);
  if (offsets.size() > opt.max_offsets) return out;

  Ticks best = 0;
  Ticks best_a = 0;
  for (const Ticks a : offsets) {
    ++out.offsets_examined;
    const OffsetResult r = per_offset(a);
    if (!r.converged) return out;
    if (r.response > best) {
      best = r.response;
      best_a = a;
    }
  }
  out.converged = true;
  out.response = sat_add(best, ts[i].J);  // measured from event arrival
  out.critical_offset = best_a;
  return out;
}

}  // namespace

EdfRtaResult edf_response_time_preemptive(const TaskSet& ts, std::size_t i,
                                          const EdfRtaOptions& opt) {
  return max_over_offsets(ts, i, opt, [&](Ticks a) {
    return response_at_offset_preemptive(ts, i, a, opt.fixed_point_fuel);
  });
}

EdfRtaResult edf_response_time_nonpreemptive(const TaskSet& ts, std::size_t i,
                                             const EdfRtaOptions& opt) {
  return max_over_offsets(ts, i, opt, [&](Ticks a) {
    return response_at_offset_nonpreemptive(ts, i, a, opt.fixed_point_fuel);
  });
}

namespace {

template <typename PerTaskFn>
EdfAnalysis analyze(const TaskSet& ts, PerTaskFn per_task) {
  EdfAnalysis out;
  out.per_task.resize(ts.size());
  out.schedulable = true;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    out.per_task[i] = per_task(i);
    if (!out.per_task[i].meets(ts[i].D)) out.schedulable = false;
  }
  return out;
}

}  // namespace

EdfAnalysis analyze_preemptive_edf(const TaskSet& ts, const EdfRtaOptions& opt) {
  return analyze(ts, [&](std::size_t i) { return edf_response_time_preemptive(ts, i, opt); });
}

EdfAnalysis analyze_nonpreemptive_edf(const TaskSet& ts, const EdfRtaOptions& opt) {
  return analyze(ts, [&](std::size_t i) { return edf_response_time_nonpreemptive(ts, i, opt); });
}

}  // namespace profisched
