#include "core/taskset_view.hpp"

namespace profisched {

const TaskSetView& TaskSetArena::bind(const TaskSet& ts) {
  return fill(ts, nullptr, ts.size());
}

const TaskSetView& TaskSetArena::bind(const TaskSet& ts, std::span<const std::size_t> order) {
  return fill(ts, order.data(), order.size());
}

const TaskSetView& TaskSetArena::fill(const TaskSet& ts, const std::size_t* order,
                                      std::size_t n) {
  c_.resize(n);
  t_.resize(n);
  d_.resize(n);
  j_.resize(n);
  idx_.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    const std::size_t i = order != nullptr ? order[p] : p;
    const Task& task = ts[i];
    c_[p] = task.C;
    t_[p] = task.T;
    d_[p] = task.D;
    j_[p] = task.J;
    idx_[p] = i;
  }
  view_ = TaskSetView{c_.data(), t_.data(), d_.data(), j_.data(), idx_.data(), n};
  return view_;
}

}  // namespace profisched
