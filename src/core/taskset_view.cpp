#include "core/taskset_view.hpp"

#include <algorithm>

#include "core/simd.hpp"

namespace profisched {

const TaskSetView& TaskSetArena::bind(const TaskSet& ts) {
  return fill(ts, nullptr, ts.size());
}

const TaskSetView& TaskSetArena::bind(const TaskSet& ts, std::span<const std::size_t> order) {
  return fill(ts, order.data(), order.size());
}

const TaskSetView& TaskSetArena::fill(const TaskSet& ts, const std::size_t* order,
                                      std::size_t n) {
  // Pad to the widest lane width so full-set kernels need no tail pass.
  const std::size_t np = (n + 3) & ~std::size_t{3};
  // Reciprocals only depend on the T column, which a utilization sweep never
  // changes — detect unchanged periods and skip the divisions on rebind.
  bool t_changed = t_.size() != np;
  c_.resize(np);
  t_.resize(np);
  d_.resize(np);
  j_.resize(np);
  recip_t_.resize(np);
  idx_.resize(n);
  Ticks max_field = 0;
  bool rel_ok = true;  // 0 ≤ C ≤ T: the kernels' product-exactness invariant
  for (std::size_t p = 0; p < n; ++p) {
    const std::size_t i = order != nullptr ? order[p] : p;
    const Task& task = ts[i];
    c_[p] = task.C;
    if (t_[p] != task.T) {
      t_[p] = task.T;
      t_changed = true;
    }
    d_[p] = task.D;
    j_[p] = task.J;
    idx_[p] = i;
    max_field = std::max({max_field, task.T, task.D, task.J});  // C ≤ T by invariant
    rel_ok = rel_ok && task.C >= 0 && task.C <= task.T;
  }
  for (std::size_t p = n; p < np; ++p) {
    c_[p] = 0;
    if (t_[p] != 1) {
      t_[p] = 1;
      t_changed = true;
    }
    d_[p] = 0;
    j_[p] = 0;
  }
  if (t_changed) {
    for (std::size_t p = 0; p < np; ++p) {
      recip_t_[p] = 1.0 / static_cast<double>(t_[p]);
    }
  }
  view_ = TaskSetView{c_.data(), t_.data(),    d_.data(),
                      j_.data(), idx_.data(),  n,
                      np,        recip_t_.data(),
                      rel_ok && n <= simd::kMaxTasks && max_field <= simd::kMaxValue};
  return view_;
}

}  // namespace profisched
