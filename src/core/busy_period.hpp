// busy_period.hpp — the synchronous (processor) busy period (§2.2 of the
// paper, after eq. 10): the fixed point of
//
//     L^{m+1} = W(L^m),   W(t) = Σ_i ⌈t / T_i⌉ · C_i,   L^0 = Σ_i C_i.
//
// L bounds the interval that EDF feasibility tests must examine and the range
// of release offsets `a` that the EDF response-time analyses enumerate.
// The iteration converges iff U <= 1 (with U == 1 it converges to the
// hyperperiod in the worst case); a fuel bound turns pathological inputs into
// an explicit kNoBound instead of an endless loop.
#pragma once

#include "core/task.hpp"
#include "core/taskset_view.hpp"

namespace profisched {

/// Result of a busy-period computation.
struct BusyPeriod {
  Ticks length = 0;      ///< L, or kNoBound if the iteration diverged
  int iterations = 0;    ///< fixed-point iterations used

  [[nodiscard]] bool bounded() const noexcept { return length != kNoBound; }
};

/// Length of the synchronous busy period. Jitter-aware: with per-task release
/// jitter J the workload becomes W(t) = Σ ⌈(t + J_i) / T_i⌉ C_i (Tindell &
/// Clark holistic analysis), which this uses; for J = 0 it reduces to the
/// paper's form. Returns kNoBound when U > 1 or the iteration exceeds `fuel`.
[[nodiscard]] BusyPeriod synchronous_busy_period(const TaskSet& ts, int fuel = 1 << 20);

/// SoA fast path over an identity-bound view (the reference above is
/// retained for the equivalence suite). `warm_l` seeds the iteration: 0
/// reproduces the reference exactly; otherwise it must be a lower bound on
/// the busy period (e.g. its converged length at a lower utilization — W(t)
/// is monotone in every C), which shortens the iteration without changing
/// the fixed point. The view must be identity-bound: the U > 1 guard
/// compares a double sum whose value is summation-order-sensitive.
[[nodiscard]] BusyPeriod synchronous_busy_period(const TaskSetView& v, int fuel = 1 << 20,
                                                 Ticks warm_l = 0);

}  // namespace profisched
