// sensitivity.hpp — sensitivity analysis over the §2 schedulability verdicts:
// how much can a parameter degrade before the verdict flips?
//
// Pre-run-time engineering practice (and the natural companion to the
// paper's pre-run-time tests): once a set is schedulable, the margin —
// breakdown utilization, per-task execution-time scaling headroom, deadline
// tightening headroom — tells the designer how robust the configuration is.
// All searches are exact binary searches over integer parameters against the
// library's own analyses, so the returned boundary is tight to one tick.
#pragma once

#include <functional>
#include <optional>

#include "core/schedulability.hpp"

namespace profisched {

/// A predicate deciding schedulability of a (modified) task set.
using SchedulabilityTest = std::function<bool(const TaskSet&)>;

/// Standard test for a policy, as a reusable predicate.
[[nodiscard]] SchedulabilityTest test_for(Policy policy,
                                          Formulation form = kDefaultFormulation);

/// Largest factor (in 1/1024 units, i.e. the returned value q means q/1024)
/// by which task `i`'s C can be multiplied with the set staying schedulable.
/// Returns std::nullopt when the set is unschedulable to begin with; the
/// result is >= 1024 iff there is headroom. The search caps at
/// `max_factor_q1024` (default 64x).
[[nodiscard]] std::optional<Ticks> execution_scaling_headroom(
    const TaskSet& ts, std::size_t i, const SchedulabilityTest& test,
    Ticks max_factor_q1024 = 64 * 1024);

/// Largest uniform factor (q/1024) by which EVERY C can be multiplied —
/// the breakdown scaling of the whole set. Same conventions as above.
[[nodiscard]] std::optional<Ticks> breakdown_scaling(const TaskSet& ts,
                                                     const SchedulabilityTest& test,
                                                     Ticks max_factor_q1024 = 64 * 1024);

/// Smallest deadline task `i` can sustain (all else fixed): the exact value
/// D_min such that the set is schedulable with D_i = D_min but not with
/// D_min − 1. Returns std::nullopt when unschedulable even at D_i = T_i·64.
///
/// The binary search relies on schedulability being monotone in D_i, which
/// holds for every policy in this library: EDF tests are demand-based
/// (relaxing a deadline only lowers demand), and DM is sustainable w.r.t.
/// deadline relaxation (the pre-relaxation priority order remains feasible
/// and DM is optimal among fixed-priority orders for constrained deadlines).
[[nodiscard]] std::optional<Ticks> minimum_sustainable_deadline(
    const TaskSet& ts, std::size_t i, const SchedulabilityTest& test);

/// Breakdown utilization by uniform C scaling, as a double in [0, n]:
/// utilization of the set at the breakdown scaling point.
[[nodiscard]] std::optional<double> breakdown_utilization(const TaskSet& ts,
                                                          const SchedulabilityTest& test);

}  // namespace profisched
