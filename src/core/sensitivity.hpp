// sensitivity.hpp — sensitivity analysis over the §2 schedulability verdicts:
// how much can a parameter degrade before the verdict flips?
//
// Pre-run-time engineering practice (and the natural companion to the
// paper's pre-run-time tests): once a set is schedulable, the margin —
// breakdown utilization, per-task execution-time scaling headroom, deadline
// tightening headroom — tells the designer how robust the configuration is.
// All searches run through the unified exact-binary-search core of
// core/sensitivity_search.hpp and return its SensitivityResult (feasible /
// cap_hit / value / probes), so the returned boundary is tight to one tick.
#pragma once

#include <functional>

#include "core/schedulability.hpp"
#include "core/sensitivity_search.hpp"

namespace profisched {

/// A predicate deciding schedulability of a (modified) task set.
using SchedulabilityTest = std::function<bool(const TaskSet&)>;

/// Standard test for a policy, as a reusable predicate.
[[nodiscard]] SchedulabilityTest test_for(Policy policy,
                                          Formulation form = kDefaultFormulation);

}  // namespace profisched

namespace profisched::sensitivity {

/// Largest factor (q/1024 fixed point) by which task `i`'s C can be
/// multiplied with the set staying schedulable. Infeasible when the set is
/// unschedulable to begin with; the boundary is >= kScaleOne iff there is
/// headroom; cap_hit when even `max_factor_q1024` stays schedulable.
[[nodiscard]] SensitivityResult execution_scaling_headroom(
    const TaskSet& ts, std::size_t i, const SchedulabilityTest& test,
    Ticks max_factor_q1024 = kDefaultMaxScaleQ);

/// Largest uniform factor (q/1024) by which EVERY C can be multiplied —
/// the breakdown scaling of the whole set. Same conventions as above.
[[nodiscard]] SensitivityResult breakdown_scaling(const TaskSet& ts,
                                                  const SchedulabilityTest& test,
                                                  Ticks max_factor_q1024 = kDefaultMaxScaleQ);

/// Smallest deadline task `i` can sustain (all else fixed): the exact value
/// D_min such that the set is schedulable with D_i = D_min but not with
/// D_min − 1. Infeasible when unschedulable even at
/// D_i = T_i · kDefaultDeadlineCapMultiple; cap_hit when D_i = C_i (the
/// bracket floor) already works.
///
/// The binary search relies on schedulability being monotone in D_i, which
/// holds for every policy in this library: EDF tests are demand-based
/// (relaxing a deadline only lowers demand), and DM is sustainable w.r.t.
/// deadline relaxation (the pre-relaxation priority order remains feasible
/// and DM is optimal among fixed-priority orders for constrained deadlines).
[[nodiscard]] SensitivityResult minimum_sustainable_deadline(const TaskSet& ts, std::size_t i,
                                                             const SchedulabilityTest& test);

/// Utilization of `ts` with every C uniformly scaled by q/1024 under the
/// sensitivity layer's scaling contract (C -> clamp(ceil(C·q/1024), 1, T)).
/// breakdown_scaling(...).value fed back through this is the set's breakdown
/// utilization.
[[nodiscard]] double utilization_at_scale(const TaskSet& ts, Ticks q1024);

}  // namespace profisched::sensitivity
