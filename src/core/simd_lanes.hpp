// simd_lanes.hpp — lane backends and the generic kernel bodies they
// instantiate. Internal to the simd*.cpp TUs; everything else includes only
// simd.hpp.
//
// The bodies are written once, templated over a backend that supplies
// fixed-width 64-bit integer and double lanes. Three backends exist:
//   - ScalarBackend: plain arrays, compiles everywhere — this is what the
//     equivalence tests exercise, so the shared body logic is verified even
//     on builds without AVX2/NEON.
//   - Avx2Backend: visible only in a TU compiled with -mavx2 (simd_avx2.cpp).
//   - NeonBackend: aarch64 baseline (simd_neon.cpp).
//
// Exactness contract (see simd.hpp): callers certify input magnitudes
// ≤ 2^44 and the relational invariant 0 ≤ C ≤ T (T ≥ 1) — TaskSetView::simd_ok
// checks both at bind time — and the bodies gate every iterate to ≤ 2^44,
// returning Status::kFallback the moment a check trips. Inside that region
// every lane product is statically bounded: jobs ≤ a'/T + 1 with |a'| < 2^46,
// so jobs·C ≤ a'·(C/T) + C < 2^47 — no per-iteration overflow gate is
// needed. The double-reciprocal division plus ±1 remainder correction is
// exact and saturating arithmetic equals plain arithmetic, so every result
// is bit-identical to the scalar reference.
#pragma once

#include <cstdint>
#include <cstring>

#include "core/simd.hpp"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace profisched::simd::detail {

// ------------------------------------------------------------------ scalar

/// Portable 4-lane backend over plain arrays. Uses the same
/// double-reciprocal division as the vector backends so the numeric path
/// (not just the results) matches what AVX2/NEON execute.
struct ScalarBackend {
  static constexpr std::size_t kLanes = 4;
  struct I {
    Ticks v[kLanes];
  };
  struct F {
    double v[kLanes];
  };

  static I load(const Ticks* p) {
    I r;
    std::memcpy(r.v, p, sizeof(r.v));
    return r;
  }
  static void store(Ticks* p, I x) { std::memcpy(p, x.v, sizeof(x.v)); }
  static I set1(Ticks x) {
    I r;
    for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = x;
    return r;
  }
  static I add(I a, I b) {
    I r;
    for (std::size_t l = 0; l < kLanes; ++l) {
      r.v[l] = static_cast<Ticks>(static_cast<std::uint64_t>(a.v[l]) +
                                  static_cast<std::uint64_t>(b.v[l]));
    }
    return r;
  }
  static I sub(I a, I b) {
    I r;
    for (std::size_t l = 0; l < kLanes; ++l) {
      r.v[l] = static_cast<Ticks>(static_cast<std::uint64_t>(a.v[l]) -
                                  static_cast<std::uint64_t>(b.v[l]));
    }
    return r;
  }
  static I mul_lo(I a, I b) {
    I r;
    for (std::size_t l = 0; l < kLanes; ++l) {
      r.v[l] = static_cast<Ticks>(static_cast<std::uint64_t>(a.v[l]) *
                                  static_cast<std::uint64_t>(b.v[l]));
    }
    return r;
  }
  static I cmpgt(I a, I b) {
    I r;
    for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] > b.v[l] ? -1 : 0;
    return r;
  }
  static I and_(I a, I b) {
    I r;
    for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] & b.v[l];
    return r;
  }
  static I or_(I a, I b) {
    I r;
    for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] | b.v[l];
    return r;
  }
  static I blend(I a, I b, I mask) {
    I r;
    for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = mask.v[l] != 0 ? b.v[l] : a.v[l];
    return r;
  }
  static bool any(I m) {
    Ticks acc = 0;
    for (std::size_t l = 0; l < kLanes; ++l) acc |= m.v[l];
    return acc != 0;
  }
  static Ticks reduce_add(I x) {
    Ticks s = 0;
    for (std::size_t l = 0; l < kLanes; ++l) s += x.v[l];
    return s;
  }
  static F to_f64(I x) {
    F r;
    for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = static_cast<double>(x.v[l]);
    return r;
  }
  static I from_f64(F d) {
    I r;
    for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = static_cast<Ticks>(d.v[l]);
    return r;
  }
  static F fload(const double* p) {
    F r;
    std::memcpy(r.v, p, sizeof(r.v));
    return r;
  }
  static F fset1(double x) {
    F r;
    for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = x;
    return r;
  }
  static F fmul(F a, F b) {
    F r;
    for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] * b.v[l];
    return r;
  }
  static F ffloor(F a) {
    F r;
    for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = __builtin_floor(a.v[l]);
    return r;
  }
  static I fcmpgt(F a, F b) {
    I r;
    for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] > b.v[l] ? -1 : 0;
    return r;
  }
};

// ------------------------------------------------------------------- AVX2

#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))
struct Avx2Backend {
  static constexpr std::size_t kLanes = 4;
  using I = __m256i;
  using F = __m256d;

  // int64 ↔ double conversion by mantissa aliasing: valid for |x| < 2^51,
  // far beyond the ≤ 2^46 magnitudes the gated bodies produce.
  static constexpr std::int64_t kMagicBits = 0x4338000000000000LL;  // 2^52 + 2^51
  static constexpr double kMagic = 6755399441055744.0;              // 2^52 + 2^51

  static I load(const Ticks* p) { return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)); }
  static void store(Ticks* p, I x) { _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), x); }
  static I set1(Ticks x) { return _mm256_set1_epi64x(x); }
  static I add(I a, I b) { return _mm256_add_epi64(a, b); }
  static I sub(I a, I b) { return _mm256_sub_epi64(a, b); }
  static I mul_lo(I a, I b) {
    // Exact low 64 bits from 32×32→64 partial products.
    const I lo = _mm256_mul_epu32(a, b);
    const I cross = _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                                     _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
    return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
  }
  static I cmpgt(I a, I b) { return _mm256_cmpgt_epi64(a, b); }
  static I and_(I a, I b) { return _mm256_and_si256(a, b); }
  static I or_(I a, I b) { return _mm256_or_si256(a, b); }
  static I blend(I a, I b, I mask) { return _mm256_blendv_epi8(a, b, mask); }
  static bool any(I m) { return _mm256_movemask_epi8(m) != 0; }
  static Ticks reduce_add(I x) {
    const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(x), _mm256_extracti128_si256(x, 1));
    return _mm_cvtsi128_si64(s) + _mm_extract_epi64(s, 1);
  }
  static F to_f64(I x) {
    const I shifted = _mm256_add_epi64(x, _mm256_set1_epi64x(kMagicBits));
    return _mm256_sub_pd(_mm256_castsi256_pd(shifted), _mm256_set1_pd(kMagic));
  }
  static I from_f64(F d) {
    const F shifted = _mm256_add_pd(d, _mm256_set1_pd(kMagic));
    return _mm256_sub_epi64(_mm256_castpd_si256(shifted), _mm256_set1_epi64x(kMagicBits));
  }
  static F fload(const double* p) { return _mm256_loadu_pd(p); }
  static F fset1(double x) { return _mm256_set1_pd(x); }
  static F fmul(F a, F b) { return _mm256_mul_pd(a, b); }
  static F ffloor(F a) { return _mm256_floor_pd(a); }
  static I fcmpgt(F a, F b) { return _mm256_castpd_si256(_mm256_cmp_pd(a, b, _CMP_GT_OQ)); }
};
#endif  // __AVX2__

// ------------------------------------------------------------------- NEON

#if defined(__aarch64__)
struct NeonBackend {
  static constexpr std::size_t kLanes = 2;
  using I = int64x2_t;
  using F = float64x2_t;

  static I load(const Ticks* p) { return vld1q_s64(p); }
  static void store(Ticks* p, I x) { vst1q_s64(p, x); }
  static I set1(Ticks x) { return vdupq_n_s64(x); }
  static I add(I a, I b) { return vaddq_s64(a, b); }
  static I sub(I a, I b) { return vsubq_s64(a, b); }
  static I mul_lo(I a, I b) {
    // No 64-bit lane multiply on NEON; two exact scalar multiplies.
    const std::uint64_t l0 = static_cast<std::uint64_t>(vgetq_lane_s64(a, 0)) *
                             static_cast<std::uint64_t>(vgetq_lane_s64(b, 0));
    const std::uint64_t l1 = static_cast<std::uint64_t>(vgetq_lane_s64(a, 1)) *
                             static_cast<std::uint64_t>(vgetq_lane_s64(b, 1));
    I r = vdupq_n_s64(static_cast<std::int64_t>(l0));
    return vsetq_lane_s64(static_cast<std::int64_t>(l1), r, 1);
  }
  static I cmpgt(I a, I b) { return vreinterpretq_s64_u64(vcgtq_s64(a, b)); }
  static I and_(I a, I b) { return vandq_s64(a, b); }
  static I or_(I a, I b) { return vorrq_s64(a, b); }
  static I blend(I a, I b, I mask) { return vbslq_s64(vreinterpretq_u64_s64(mask), b, a); }
  static bool any(I m) { return vmaxvq_u32(vreinterpretq_u32_s64(m)) != 0; }
  static Ticks reduce_add(I x) { return vaddvq_s64(x); }
  static F to_f64(I x) { return vcvtq_f64_s64(x); }
  static I from_f64(F d) { return vcvtmq_s64_f64(d); }  // floor-convert; d is integral
  static F fload(const double* p) { return vld1q_f64(p); }
  static F fset1(double x) { return vdupq_n_f64(x); }
  static F fmul(F a, F b) { return vmulq_f64(a, b); }
  static F ffloor(F a) { return vrndmq_f64(a); }
  static I fcmpgt(F a, F b) { return vreinterpretq_s64_u64(vcgtq_f64(a, b)); }
};
#endif  // __aarch64__

// --------------------------------------------------------- generic bodies

/// Lane job count:
///   jobs = max(floor((a + addend) / T) + inc, 0)
/// where Ceil selects addend = T−1, inc = 0 (ceil_div_plus) and otherwise
/// addend = 0, inc = 1 (floor_div_plus1) — the same floor-based identity the
/// scalar helpers satisfy for every integer numerator. floor(a'/T) is the
/// floored double product a'·(1/T), off by at most one for |a'| < 2^46, made
/// exact by the remainder correction.
template <class B, bool Ceil>
typename B::I lane_jobs(typename B::I a, typename B::I tv, typename B::F recip) {
  const typename B::I one = B::set1(1);
  const typename B::I tm1 = B::sub(tv, one);
  const typename B::I a2 = Ceil ? B::add(a, tm1) : a;
  typename B::I q = B::from_f64(B::ffloor(B::fmul(B::to_f64(a2), recip)));
  const typename B::I r = B::sub(a2, B::mul_lo(q, tv));
  q = B::add(q, B::cmpgt(B::set1(0), r));  // r < 0  → q − 1 (mask is −1)
  q = B::sub(q, B::cmpgt(r, tm1));         // r ≥ T  → q + 1
  typename B::I jobs = Ceil ? q : B::add(q, one);
  return B::and_(jobs, B::cmpgt(jobs, B::set1(-1)));  // max(jobs, 0)
}

// The bodies below do not re-verify the caller contract (magnitudes ≤ 2^44,
// 0 ≤ C ≤ T, T ≥ 1): TaskSetView::simd_ok certifies it at bind time, and it
// is what makes every lane product statically exact (jobs·C < 2^47).

template <class B, bool Ceil>
FixedPointResult fp_fixed_point_impl(const Ticks* C, const Ticks* T, const Ticks* J,
                                     const double* recip_t, std::size_t count, Ticks base,
                                     Ticks w0, int fuel) {
  FixedPointResult out;
  if (count > kMaxTasks || base < 0 || base > kMaxAccum || w0 < 0 || w0 > kMaxAccum) return out;
  const std::size_t vec_n = count - count % B::kLanes;

  Ticks w = w0;
  for (int it = 0; it < fuel; ++it) {
    out.last = w;
    typename B::I acc = B::set1(0);
    const typename B::I wv = B::set1(w);
    for (std::size_t j = 0; j < vec_n; j += B::kLanes) {
      const typename B::I tv = B::load(T + j);
      const typename B::I cv = B::load(C + j);
      const typename B::I a = B::add(wv, B::load(J + j));
      const typename B::I jb = lane_jobs<B, Ceil>(a, tv, B::fload(recip_t + j));
      acc = B::add(acc, B::mul_lo(jb, cv));
    }
    Ticks sum = B::reduce_add(acc);
    for (std::size_t j = vec_n; j < count; ++j) {
      const Ticks arg = sat_add(w, J[j]);
      const Ticks jobs = Ceil ? ceil_div_plus(arg, T[j]) : floor_div_plus1(arg, T[j]);
      sum = sat_add(sum, sat_mul(jobs, C[j]));
    }
    const Ticks next = sat_add(base, sum);
    out.iterations = it + 1;
    if (next == w) {
      out.status = Status::kOk;
      out.converged = true;
      out.value = w;
      return out;
    }
    if (next == kNoBound) {
      out.status = Status::kOk;  // reference diverges at the identical iterate
      return out;
    }
    if (next > kMaxAccum) return out;  // kFallback: leaving the exact region
    w = next;
  }
  out.status = Status::kOk;  // fuel exhausted in-region: reference state identical
  return out;
}

template <class B, bool Ceil>
DemandResult demand_sum_impl(const Ticks* C, const Ticks* T, const Ticks* D,
                             const double* recip_t, std::size_t count, Ticks t) {
  DemandResult out;
  if (count > kMaxTasks || t < 0 || t > kMaxAccum) return out;
  const std::size_t vec_n = count - count % B::kLanes;
  const typename B::I tv_b = B::set1(t);

  typename B::I acc = B::set1(0);
  for (std::size_t j = 0; j < vec_n; j += B::kLanes) {
    const typename B::I tv = B::load(T + j);
    const typename B::I cv = B::load(C + j);
    const typename B::I a = B::sub(tv_b, B::load(D + j));
    const typename B::I jb = lane_jobs<B, Ceil>(a, tv, B::fload(recip_t + j));
    acc = B::add(acc, B::mul_lo(jb, cv));
  }
  Ticks h = B::reduce_add(acc);
  for (std::size_t j = vec_n; j < count; ++j) {
    const Ticks arg = t - D[j];
    const Ticks jobs = Ceil ? ceil_div_plus(arg, T[j]) : floor_div_plus1(arg, T[j]);
    h = sat_add(h, sat_mul(jobs, C[j]));
  }
  out.status = Status::kOk;
  out.demand = h;
  return out;
}

template <class B, bool Ceil>
DemandGridResult demand_grid_impl(const Ticks* C, const Ticks* T, const Ticks* D,
                                  const double* recip_t, std::size_t count, const Ticks* t4) {
  DemandGridResult out;
  if (count > kMaxTasks) return out;
  for (int b = 0; b < 4; ++b) {
    if (t4[b] < 0 || t4[b] > kMaxAccum) return out;
  }
  Ticks res[4];
  for (std::size_t b = 0; b < 4; b += B::kLanes) {
    const typename B::I tv_b = B::load(t4 + b);  // lanes = checkpoints
    typename B::I acc = B::set1(0);
    for (std::size_t j = 0; j < count; ++j) {  // tasks broadcast
      const typename B::I tj = B::set1(T[j]);
      const typename B::I cj = B::set1(C[j]);
      const typename B::I a = B::sub(tv_b, B::set1(D[j]));
      const typename B::I jb = lane_jobs<B, Ceil>(a, tj, B::fset1(recip_t[j]));
      acc = B::add(acc, B::mul_lo(jb, cj));
    }
    B::store(res + b, acc);
  }
  out.status = Status::kOk;
  for (int b = 0; b < 4; ++b) out.demand[b] = res[b];
  return out;
}

template <class B, bool StartForm>
EdfOffsetResult edf_offset_impl(const Ticks* C, const Ticks* T, const Ticks* D, const Ticks* J,
                                const double* recip_t, std::size_t count, std::size_t self,
                                Ticks abs_deadline, Ticks base, Ticks l0, int fuel) {
  EdfOffsetResult out;
  if (count > kMaxTasks || self >= count || base < 0 || base > kMaxAccum || l0 < 0 ||
      l0 > kMaxAccum || abs_deadline < 0 || abs_deadline > 2 * kMaxAccum) {
    return out;
  }
  const std::size_t vec_n = count - count % B::kLanes;

  // Hoisted per-offset deadline caps: floor_div_plus1(abs_deadline − D + J, T)
  // is 0 exactly when D − J > abs_deadline — the reference's exclusion test —
  // so no separate mask is needed; only the task's own slot is forced to 0.
  alignas(32) Ticks bd[kMaxTasks];
  const typename B::I adl = B::set1(abs_deadline);
  for (std::size_t j = 0; j < vec_n; j += B::kLanes) {
    const typename B::I a = B::add(B::sub(adl, B::load(D + j)), B::load(J + j));
    B::store(bd + j, lane_jobs<B, false>(a, B::load(T + j), B::fload(recip_t + j)));
  }
  for (std::size_t j = vec_n; j < count; ++j) {
    bd[j] = floor_div_plus1(abs_deadline - D[j] + J[j], T[j]);
  }
  bd[self] = 0;

  Ticks L = l0;
  for (int it = 0; it < fuel; ++it) {
    typename B::I acc = B::set1(0);
    const typename B::I lv = B::set1(L);
    for (std::size_t j = 0; j < vec_n; j += B::kLanes) {
      const typename B::I tv = B::load(T + j);
      const typename B::I cv = B::load(C + j);
      const typename B::I a = B::add(lv, B::load(J + j));
      const typename B::I jb = lane_jobs<B, !StartForm>(a, tv, B::fload(recip_t + j));
      const typename B::I bdv = B::load(bd + j);
      const typename B::I m = B::blend(jb, bdv, B::cmpgt(jb, bdv));  // min
      acc = B::add(acc, B::mul_lo(m, cv));
    }
    Ticks sum = B::reduce_add(acc);
    for (std::size_t j = vec_n; j < count; ++j) {
      const Ticks arg = sat_add(L, J[j]);
      const Ticks by_time = StartForm ? floor_div_plus1(arg, T[j]) : ceil_div_plus(arg, T[j]);
      sum = sat_add(sum, sat_mul(by_time < bd[j] ? by_time : bd[j], C[j]));
    }
    const Ticks next = sat_add(base, sum);
    if (next == L) {
      out.status = Status::kOk;
      out.converged = true;
      out.fixed_point = L;
      return out;
    }
    if (next == kNoBound) {
      out.status = Status::kOk;  // reference diverges identically
      return out;
    }
    if (next > kMaxAccum) return out;  // kFallback
    L = next;
  }
  out.status = Status::kOk;  // fuel exhausted in-region
  return out;
}

// --------------------------------------------------- runtime-bool wrappers

template <class B>
FixedPointResult fp_fixed_point_k(const Ticks* C, const Ticks* T, const Ticks* J,
                                  const double* recip_t, std::size_t count, Ticks base, Ticks w0,
                                  bool ceil_form, int fuel) {
  return ceil_form ? fp_fixed_point_impl<B, true>(C, T, J, recip_t, count, base, w0, fuel)
                   : fp_fixed_point_impl<B, false>(C, T, J, recip_t, count, base, w0, fuel);
}

template <class B>
DemandResult demand_sum_k(const Ticks* C, const Ticks* T, const Ticks* D, const double* recip_t,
                          std::size_t count, Ticks t, bool ceil_form) {
  return ceil_form ? demand_sum_impl<B, true>(C, T, D, recip_t, count, t)
                   : demand_sum_impl<B, false>(C, T, D, recip_t, count, t);
}

template <class B>
DemandGridResult demand_grid_k(const Ticks* C, const Ticks* T, const Ticks* D,
                               const double* recip_t, std::size_t count, const Ticks* t4,
                               bool ceil_form) {
  return ceil_form ? demand_grid_impl<B, true>(C, T, D, recip_t, count, t4)
                   : demand_grid_impl<B, false>(C, T, D, recip_t, count, t4);
}

template <class B>
EdfOffsetResult edf_offset_k(const Ticks* C, const Ticks* T, const Ticks* D, const Ticks* J,
                             const double* recip_t, std::size_t count, std::size_t self,
                             Ticks abs_deadline, Ticks base, Ticks l0, bool start_time_form,
                             int fuel) {
  return start_time_form
             ? edf_offset_impl<B, true>(C, T, D, J, recip_t, count, self, abs_deadline, base, l0,
                                        fuel)
             : edf_offset_impl<B, false>(C, T, D, J, recip_t, count, self, abs_deadline, base, l0,
                                         fuel);
}

template <class B>
constexpr Kernels make_kernels(const char* name) {
  return Kernels{name, &fp_fixed_point_k<B>, &demand_sum_k<B>, &demand_grid_k<B>,
                 &edf_offset_k<B>};
}

}  // namespace profisched::simd::detail
