// record.hpp — tiny space-separated integer record format for result-cache
// payloads. Every cached column is integral, so decode(encode(x)) == x
// exactly; records carry a leading kind+version tag and decode strictly
// (wrong tag, trailing garbage or non-integer tokens all read as "not a
// record", which callers treat as a cache miss). Shared by the sweep runner's
// analysis/sim/combined records and the optimizer's records (src/opt/).
#pragma once

#include <charconv>
#include <string>
#include <system_error>

namespace profisched::engine::detail {

inline void append_i64(std::string& out, long long v) {
  out += ' ';
  out += std::to_string(v);
}

inline void append_u64(std::string& out, unsigned long long v) {
  out += ' ';
  out += std::to_string(v);
}

/// Strict space-separated integer reader over a record payload.
class RecordReader {
 public:
  explicit RecordReader(const std::string& text) : text_(text) {}

  bool tag(const char* expected) {
    std::size_t end = pos_;
    while (end < text_.size() && text_[end] != ' ') ++end;
    if (text_.compare(pos_, end - pos_, expected) != 0) return false;
    pos_ = end < text_.size() ? end + 1 : end;
    return true;
  }

  template <class T>
  bool i64(T& v) { return parse(v); }

  template <class T>
  bool u64(T& v) { return parse(v); }

  [[nodiscard]] bool done() const noexcept { return pos_ >= text_.size(); }

 private:
  template <class T>
  bool parse(T& v) {
    std::size_t end = pos_;
    while (end < text_.size() && text_[end] != ' ') ++end;
    const auto [ptr, ec] = std::from_chars(text_.data() + pos_, text_.data() + end, v);
    if (ec != std::errc{} || ptr != text_.data() + end || end == pos_) return false;
    pos_ = end < text_.size() ? end + 1 : end;
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace profisched::engine::detail
