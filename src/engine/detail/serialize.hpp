// detail/serialize.hpp — locale-independent CSV/JSON primitives shared by the
// engine's result formats (aggregate.cpp, sim_aggregate.cpp). Everything here
// round-trips: what fmt_double/JsonCursor emit and consume is byte-stable
// across hosts, which the thread-count-invariance guarantees depend on.
#pragma once

#include <cctype>
#include <charconv>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace profisched::engine::detail {

// std::to_chars / from_chars, not printf/strtod: the serialized formats must
// not bend to the host's LC_NUMERIC (a ',' decimal separator would corrupt
// both the CSV column count and the JSON grammar).
inline std::string fmt_double(double v) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v, std::chars_format::fixed, 6);
  return ec == std::errc{} ? std::string(buf, end) : std::string("nan");
}

/// Shortest round-trip formatting: from_chars(fmt_double_exact(v)) == v
/// bit-exactly. Used where a serialized spec must restore the original double
/// (shard manifests — a fixed-precision detour there would break the merged
/// output's byte-identity guarantee); the result tables keep fixed-6
/// fmt_double for stable column widths.
inline std::string fmt_double_exact(double v) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return ec == std::errc{} ? std::string(buf, end) : std::string("nan");
}

inline std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::string cell;
  std::istringstream is(line);
  while (std::getline(is, cell, sep)) out.push_back(cell);
  return out;
}

inline double to_double(const std::string& s) {
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr == s.data()) {
    throw std::invalid_argument("engine serialize: bad number '" + s + "'");
  }
  return v;
}

inline std::size_t to_size(const std::string& s) {
  unsigned long long v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::invalid_argument("engine serialize: bad count '" + s + "'");
  }
  return static_cast<std::size_t>(v);
}

/// Signed 64-bit parse (Ticks columns may carry kNoBound = INT64_MAX).
inline long long to_ll(const std::string& s) {
  long long v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::invalid_argument("engine serialize: bad integer '" + s + "'");
  }
  return v;
}

/// Cursor over the engine's own JSON output. Handles exactly the grammar
/// the engine's to_json methods emit (objects, arrays, strings without
/// escapes, numbers) — not a general JSON parser.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      throw std::invalid_argument(std::string("engine serialize: expected '") + c +
                                  "' at offset " + std::to_string(pos_));
    }
    ++pos_;
  }

  [[nodiscard]] bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  [[nodiscard]] std::string string() {
    expect('"');
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
    if (pos_ >= text_.size()) throw std::invalid_argument("engine serialize: unterminated string");
    return text_.substr(start, pos_++ - start);
  }

  [[nodiscard]] double number() {
    skip_ws();
    double v = 0.0;
    const auto [ptr, ec] = std::from_chars(text_.data() + pos_, text_.data() + text_.size(), v);
    if (ec != std::errc{} || ptr == text_.data() + pos_) {
      throw std::invalid_argument("engine serialize: expected number at offset " +
                                  std::to_string(pos_));
    }
    pos_ = static_cast<std::size_t>(ptr - text_.data());
    return v;
  }

  /// Integer-exact variant of number() for 64-bit columns (a double detour
  /// would corrupt kNoBound and large tick values).
  [[nodiscard]] long long integer() {
    skip_ws();
    long long v = 0;
    const auto [ptr, ec] = std::from_chars(text_.data() + pos_, text_.data() + text_.size(), v);
    if (ec != std::errc{} || ptr == text_.data() + pos_) {
      throw std::invalid_argument("engine serialize: expected integer at offset " +
                                  std::to_string(pos_));
    }
    pos_ = static_cast<std::size_t>(ptr - text_.data());
    return v;
  }

  /// Unsigned 64-bit parse (seed columns use the full uint64 range, which a
  /// signed parse would reject above INT64_MAX).
  [[nodiscard]] unsigned long long uinteger() {
    skip_ws();
    unsigned long long v = 0;
    const auto [ptr, ec] = std::from_chars(text_.data() + pos_, text_.data() + text_.size(), v);
    if (ec != std::errc{} || ptr == text_.data() + pos_) {
      throw std::invalid_argument("engine serialize: expected unsigned integer at offset " +
                                  std::to_string(pos_));
    }
    pos_ = static_cast<std::size_t>(ptr - text_.data());
    return v;
  }

  void key(const char* name) {
    const std::string k = string();
    if (k != name) {
      throw std::invalid_argument(std::string("engine serialize: expected key '") + name +
                                  "', got '" + k + "'");
    }
    expect(':');
  }

  /// Optional-key lookahead: consume `"name":` and return true when the next
  /// key matches, otherwise restore the cursor and return false. Lets one
  /// reader accept both the classic and the axis-extended grammars the
  /// engine's multi-axis formats emit.
  [[nodiscard]] bool try_key(const char* name) {
    const std::size_t saved = pos_;
    if (!peek('"')) return false;
    const std::string k = string();
    if (k != name || !peek(':')) {
      pos_ = saved;
      return false;
    }
    expect(':');
    return true;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace profisched::engine::detail
