// detail/cli_parse.hpp — the strict scalar-parser table shared by every
// profisched subcommand (sweep, simulate, shard, merge). Full-string parses
// that reject trailing garbage, negatives and overflow, and bound each value
// to its sane range: atoll's silent 0 / wraparound turned typos into
// pathological sweeps. Lives in the library so the validation stays
// unit-tested (tests/engine/test_sim_cli.cpp, tests/dist/test_dist_cli.cpp)
// and no subcommand grows a private copy.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "engine/sweep_runner.hpp"

namespace profisched::engine {

[[nodiscard]] bool parse_cli_count(const std::string& s, std::size_t& out,
                                   std::size_t max = std::size_t(-1));

[[nodiscard]] bool parse_cli_nonneg_double(const std::string& s, double& out);

/// Comma-separated policy names (duplicates rejected — the serialized column
/// formats key on unique policy names). `simulable_only` restricts the table
/// to the AP-queue policies the simulator implements; otherwise every
/// analysis Policy name is accepted (fcfs,dm,edf,opa,token,holistic).
[[nodiscard]] bool parse_cli_policies(const std::string& list, bool simulable_only,
                                      std::vector<Policy>& out);

/// "LO:HI:STEPS" utilization-grid argument (numeric LO/HI, integer STEPS).
[[nodiscard]] bool parse_cli_u_grid(const std::string& s, double& u_lo, double& u_hi,
                                    std::size_t& u_steps);

/// Up-front check that an output FILE destination (--out/--csv/--json/
/// --metrics) is writable-in-principle: its parent directory must already
/// exist and the path must not name a directory. Checked at parse time so a
/// doomed destination fails before the sweep runs, not after; `error` gets a
/// one-line diagnostic naming `flag`. Deliberately does not create or
/// truncate anything — the subcommand still opens the file itself at emit
/// time.
[[nodiscard]] bool validate_cli_output_file(const std::string& path, const char* flag,
                                            std::string& error);

/// Same idea for an output DIRECTORY destination (--cache): the path, or the
/// nearest existing ancestor that create_directories would build from, must
/// be a directory — a file sitting where a path component should go is the
/// up-front error.
[[nodiscard]] bool validate_cli_output_dir(const std::string& path, const char* flag,
                                           std::string& error);

/// The multi-axis grid flags of a sweep-style subcommand (sweep, simulate,
/// shard), collected raw — an empty string means "flag absent". One struct so
/// every subcommand validates and expands the u × beta × masters cross
/// product identically (the shard/merge byte-identity depends on it).
struct GridCliArgs {
  std::string u;        ///< --u LO:HI:STEPS (default 0.1:0.9:9)
  std::string beta;     ///< --beta LO:HI:STEPS — deadline-ratio axis, D = b·T
  std::string beta_lo;  ///< --beta-lo X — constant spread (conflicts w/ --beta)
  std::string beta_hi;  ///< --beta-hi X
  std::string masters;  ///< --masters N[,N,...] — multi-valued = ring-size axis
  std::string split;    ///< --split w1,...,wK — explicit per-master weights
  std::string skew;     ///< --skew S — geometric per-master imbalance, S >= 0
};

/// Validate + expand the grid flags into sweep points (cross product, masters
/// outermost, beta next, u innermost — so a u-only grid enumerates scenario
/// ids exactly as the pre-multi-axis sweeps did) and apply the structural
/// knobs (single --masters value, --split, --skew) to `base`. Returns false
/// with a one-line diagnostic in `error` on any degenerate or inconsistent
/// spec: inverted ranges (LO > HI), zero-length axes (STEPS == 0),
/// non-positive u / beta lows (u = 0 would silently flip a grid point to the
/// legacy period-driven generator — a different workload distribution),
/// --split weight counts that do not match the master count, --split against
/// a multi-valued --masters axis, and --split combined with --skew.
[[nodiscard]] bool expand_cli_grid(const GridCliArgs& args, workload::NetworkParams& base,
                                   std::vector<SweepPoint>& points, std::string& error);

}  // namespace profisched::engine
