// detail/cli_parse.hpp — the strict scalar-parser table shared by every
// profisched subcommand (sweep, simulate, shard, merge). Full-string parses
// that reject trailing garbage, negatives and overflow, and bound each value
// to its sane range: atoll's silent 0 / wraparound turned typos into
// pathological sweeps. Lives in the library so the validation stays
// unit-tested (tests/engine/test_sim_cli.cpp, tests/dist/test_dist_cli.cpp)
// and no subcommand grows a private copy.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "engine/sweep_runner.hpp"

namespace profisched::engine {

[[nodiscard]] bool parse_cli_count(const std::string& s, std::size_t& out,
                                   std::size_t max = std::size_t(-1));

[[nodiscard]] bool parse_cli_nonneg_double(const std::string& s, double& out);

/// Comma-separated policy names (duplicates rejected — the serialized column
/// formats key on unique policy names). `simulable_only` restricts the table
/// to the AP-queue policies the simulator implements; otherwise every
/// analysis Policy name is accepted (fcfs,dm,edf,opa,token,holistic).
[[nodiscard]] bool parse_cli_policies(const std::string& list, bool simulable_only,
                                      std::vector<Policy>& out);

/// "LO:HI:STEPS" utilization-grid argument (numeric LO/HI, integer STEPS).
[[nodiscard]] bool parse_cli_u_grid(const std::string& s, double& u_lo, double& u_hi,
                                    std::size_t& u_steps);

/// Expand a validated u-grid into sweep points. Rejects u_lo <= 0 (u = 0
/// would silently flip a grid point to the legacy period-driven generator — a
/// different workload distribution), HI < LO, and STEPS == 0.
[[nodiscard]] bool expand_cli_u_grid(double u_lo, double u_hi, std::size_t u_steps,
                                     double beta_lo, double beta_hi,
                                     std::vector<SweepPoint>& points);

}  // namespace profisched::engine
