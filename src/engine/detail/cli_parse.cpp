#include "engine/detail/cli_parse.hpp"

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <system_error>

namespace profisched::engine {

namespace fs = std::filesystem;

bool parse_cli_count(const std::string& s, std::size_t& out, std::size_t max) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || s.find('-') != std::string::npos || errno == ERANGE ||
      v > max) {
    return false;
  }
  out = static_cast<std::size_t>(v);
  return true;
}

bool parse_cli_nonneg_double(const std::string& s, double& out) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  // !(v >= 0) rather than v < 0: strtod accepts "nan", which compares false
  // against everything and would sail through a < check into grid math,
  // cache digests, and shard spec blocks.
  if (end == s.c_str() || *end != '\0' || !(v >= 0)) return false;
  out = v;
  return true;
}

bool parse_cli_policies(const std::string& list, bool simulable_only, std::vector<Policy>& out) {
  out.clear();
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string name = list.substr(start, comma - start);
    if (name == "fcfs") out.push_back(Policy::Fcfs);
    else if (name == "dm") out.push_back(Policy::Dm);
    else if (name == "edf") out.push_back(Policy::Edf);
    else if (!simulable_only && name == "opa") out.push_back(Policy::Opa);
    else if (!simulable_only && name == "token") out.push_back(Policy::TokenRing);
    else if (!simulable_only && name == "holistic") out.push_back(Policy::Holistic);
    else return false;
    // Duplicates would emit repeated policy columns the CSV/JSON formats
    // cannot represent (their parse-back keys on the policy name).
    for (std::size_t i = 0; i + 1 < out.size(); ++i) {
      if (out[i] == out.back()) return false;
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !out.empty();
}

bool parse_cli_u_grid(const std::string& s, double& u_lo, double& u_hi, std::size_t& u_steps) {
  const std::size_t c1 = s.find(':');
  const std::size_t c2 = c1 == std::string::npos ? std::string::npos : s.find(':', c1 + 1);
  return c2 != std::string::npos && parse_cli_nonneg_double(s.substr(0, c1), u_lo) &&
         parse_cli_nonneg_double(s.substr(c1 + 1, c2 - c1 - 1), u_hi) &&
         parse_cli_count(s.substr(c2 + 1), u_steps, 1'000'000);
}

bool validate_cli_output_file(const std::string& path, const char* flag, std::string& error) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    error = std::string(flag) + " destination '" + path + "' is a directory, not a file";
    return false;
  }
  fs::path parent = fs::path(path).parent_path();
  if (parent.empty()) parent = ".";
  if (!fs::is_directory(parent, ec)) {
    error = std::string(flag) + " destination '" + path + "': parent directory '" +
            parent.string() + "' does not exist";
    return false;
  }
  return true;
}

bool validate_cli_output_dir(const std::string& path, const char* flag, std::string& error) {
  // Walk up to the first component that exists; create_directories will build
  // everything below it, so that ancestor being a non-directory is the only
  // statically-detectable failure.
  std::error_code ec;
  fs::path probe = fs::path(path);
  while (!probe.empty() && !fs::exists(probe, ec)) {
    const fs::path up = probe.parent_path();
    if (up == probe) break;
    probe = up;
  }
  if (!probe.empty() && fs::exists(probe, ec) && !fs::is_directory(probe, ec)) {
    error = std::string(flag) + " destination '" + path + "': '" + probe.string() +
            "' exists and is not a directory";
    return false;
  }
  return true;
}

namespace {

/// The s-th of `steps` evenly spaced values in [lo, hi] (steps == 1 -> lo).
double grid_value(double lo, double hi, std::size_t steps, std::size_t s) {
  return steps == 1 ? lo
                    : lo + (hi - lo) * static_cast<double>(s) / static_cast<double>(steps - 1);
}

/// Strict comma tokenizer: every element is returned, including empty ones
/// from doubled or trailing commas (the per-element parsers then reject them
/// — "2,3," must not silently read as "2,3").
std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    out.push_back(s.substr(start, comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Shared LO:HI:STEPS validation with per-flag diagnostics. LO > 0 is
/// demanded on both axes: u = 0 silently flips generation period-driven,
/// beta = 0 collapses every deadline to the clamp floor.
bool check_axis(const char* flag, double lo, double hi, std::size_t steps, std::string& error) {
  if (hi < lo) {
    error = std::string(flag) + " grid is inverted (LO > HI)";
    return false;
  }
  if (steps == 0) {
    error = std::string(flag) + " grid has a zero-length axis (STEPS must be >= 1)";
    return false;
  }
  if (lo <= 0) {
    error = std::string(flag) + " grid needs LO > 0";
    return false;
  }
  return true;
}

}  // namespace

bool expand_cli_grid(const GridCliArgs& args, workload::NetworkParams& base,
                     std::vector<SweepPoint>& points, std::string& error) {
  const auto fail = [&](const std::string& msg) {
    error = msg;
    return false;
  };

  // --u axis (defaulted: the classic 0.1:0.9:9 acceptance grid).
  double u_lo = 0.1, u_hi = 0.9;
  std::size_t u_steps = 9;
  if (!args.u.empty() && !parse_cli_u_grid(args.u, u_lo, u_hi, u_steps)) {
    return fail("--u needs LO:HI:STEPS with numeric LO/HI and integer STEPS");
  }
  if (!check_axis("--u", u_lo, u_hi, u_steps, error)) return false;

  // Deadline-ratio handling: either a constant [beta_lo, beta_hi] spread
  // shared by every point, or a --beta axis where each grid value b pins the
  // ratio to D = b*T exactly (beta_lo = beta_hi = b).
  if (!args.beta.empty() && (!args.beta_lo.empty() || !args.beta_hi.empty())) {
    return fail("--beta is a grid axis; it cannot combine with the constant "
                "--beta-lo/--beta-hi spread");
  }
  double beta_lo = 0.5, beta_hi = 1.0;
  if (!args.beta_lo.empty() && !parse_cli_nonneg_double(args.beta_lo, beta_lo)) {
    return fail("--beta-lo needs a number >= 0");
  }
  if (!args.beta_hi.empty() && !parse_cli_nonneg_double(args.beta_hi, beta_hi)) {
    return fail("--beta-hi needs a number >= 0");
  }
  if (beta_hi < beta_lo) return fail("inverted deadline spread (--beta-lo > --beta-hi)");
  if (beta_lo <= 0) return fail("--beta-lo must be > 0 (D = beta*T needs a positive ratio)");
  double b_ax_lo = 0.0, b_ax_hi = 0.0;
  std::size_t b_steps = 1;
  const bool has_beta_axis = !args.beta.empty();
  if (has_beta_axis) {
    if (!parse_cli_u_grid(args.beta, b_ax_lo, b_ax_hi, b_steps)) {
      return fail("--beta needs LO:HI:STEPS with numeric LO/HI and integer STEPS");
    }
    if (!check_axis("--beta", b_ax_lo, b_ax_hi, b_steps, error)) return false;
  }

  // --masters: one value keeps the classic single-structure sweep (points
  // leave n_masters at 0 so historical grids stay byte-identical); a comma
  // list opens the ring-size axis with explicit per-point overrides.
  std::vector<std::size_t> masters_axis;
  if (!args.masters.empty()) {
    for (const std::string& tok : split_list(args.masters)) {
      std::size_t m = 0;
      if (!parse_cli_count(tok, m, 4'096) || m == 0) {
        return fail("--masters needs a comma list of integers in [1, 4096]");
      }
      masters_axis.push_back(m);
    }
    base.n_masters = masters_axis[0];
  }
  const bool has_masters_axis = masters_axis.size() > 1;

  // --split / --skew: asymmetric per-master load.
  if (!args.split.empty() && !args.skew.empty()) {
    return fail("--split and --skew are mutually exclusive");
  }
  if (!args.split.empty()) {
    if (has_masters_axis) {
      return fail("--split cannot combine with a multi-valued --masters axis "
                  "(one weight list cannot fit every ring size)");
    }
    std::vector<double> weights;
    for (const std::string& tok : split_list(args.split)) {
      double w = 0.0;
      if (!parse_cli_nonneg_double(tok, w) || w <= 0) {
        return fail("--split weights must be positive numbers");
      }
      weights.push_back(w);
    }
    if (weights.size() != base.n_masters) {
      return fail("--split needs exactly one weight per master (got " +
                  std::to_string(weights.size()) + " weights for " +
                  std::to_string(base.n_masters) + " masters)");
    }
    base.master_split = std::move(weights);
  }
  if (!args.skew.empty()) {
    double skew = 0.0;
    if (!parse_cli_nonneg_double(args.skew, skew)) {
      return fail("--skew needs a number >= 0");
    }
    // skew == 0 is the workload layer's "off" sentinel (symmetric mode: every
    // master independently loaded to u), NOT the even network-wide split the
    // S -> 0 limit of the documented weights suggests — accepting it would
    // make a skew sweep through 0 silently jump by a factor of K. Force the
    // caller to say what they mean.
    if (skew == 0) {
      return fail("--skew 0 is ambiguous: omit --skew for the symmetric per-master mode, "
                  "or use --split 1,1,... for an even network-wide division");
    }
    base.master_skew = skew;
  }

  // Bound the point count BEFORE materializing the cross product: each axis
  // independently admits up to 1e6 steps, so a per-axis-valid spec could
  // demand 1e12+ points — that must be this error, not an OOM kill mid-
  // expansion. Every point carries >= 1 scenario, so the sweep-size cap the
  // callers enforce on total_scenarios() is also a valid cap here.
  points.clear();
  const std::size_t m_count = has_masters_axis ? masters_axis.size() : 1;
  constexpr std::uint64_t kMaxPoints = 100'000'000;
  // u_steps, b_steps <= 1e6 and m_count <= 4096: the product fits uint64.
  if (static_cast<std::uint64_t>(u_steps) * b_steps * m_count > kMaxPoints) {
    return fail("grid too large (" + std::to_string(u_steps) + " u x " +
                std::to_string(b_steps) + " beta x " + std::to_string(m_count) +
                " masters points); shrink the axis STEPS");
  }

  // Cross product, masters outermost / u innermost: with both extra axes
  // absent this enumerates exactly the historical u-grid point order (and so
  // the same scenario ids).
  for (std::size_t m = 0; m < m_count; ++m) {
    for (std::size_t b = 0; b < b_steps; ++b) {
      for (std::size_t s = 0; s < u_steps; ++s) {
        SweepPoint pt;
        pt.total_u = grid_value(u_lo, u_hi, u_steps, s);
        if (has_beta_axis) {
          pt.beta_lo = pt.beta_hi = grid_value(b_ax_lo, b_ax_hi, b_steps, b);
        } else {
          pt.beta_lo = beta_lo;
          pt.beta_hi = beta_hi;
        }
        if (has_masters_axis) pt.n_masters = masters_axis[m];
        points.push_back(pt);
      }
    }
  }
  error.clear();
  return true;
}

}  // namespace profisched::engine
