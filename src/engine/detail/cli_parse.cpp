#include "engine/detail/cli_parse.hpp"

#include <cerrno>
#include <cstdlib>

namespace profisched::engine {

bool parse_cli_count(const std::string& s, std::size_t& out, std::size_t max) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || s.find('-') != std::string::npos || errno == ERANGE ||
      v > max) {
    return false;
  }
  out = static_cast<std::size_t>(v);
  return true;
}

bool parse_cli_nonneg_double(const std::string& s, double& out) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  // !(v >= 0) rather than v < 0: strtod accepts "nan", which compares false
  // against everything and would sail through a < check into grid math,
  // cache digests, and shard spec blocks.
  if (end == s.c_str() || *end != '\0' || !(v >= 0)) return false;
  out = v;
  return true;
}

bool parse_cli_policies(const std::string& list, bool simulable_only, std::vector<Policy>& out) {
  out.clear();
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string name = list.substr(start, comma - start);
    if (name == "fcfs") out.push_back(Policy::Fcfs);
    else if (name == "dm") out.push_back(Policy::Dm);
    else if (name == "edf") out.push_back(Policy::Edf);
    else if (!simulable_only && name == "opa") out.push_back(Policy::Opa);
    else if (!simulable_only && name == "token") out.push_back(Policy::TokenRing);
    else if (!simulable_only && name == "holistic") out.push_back(Policy::Holistic);
    else return false;
    // Duplicates would emit repeated policy columns the CSV/JSON formats
    // cannot represent (their parse-back keys on the policy name).
    for (std::size_t i = 0; i + 1 < out.size(); ++i) {
      if (out[i] == out.back()) return false;
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !out.empty();
}

bool parse_cli_u_grid(const std::string& s, double& u_lo, double& u_hi, std::size_t& u_steps) {
  const std::size_t c1 = s.find(':');
  const std::size_t c2 = c1 == std::string::npos ? std::string::npos : s.find(':', c1 + 1);
  return c2 != std::string::npos && parse_cli_nonneg_double(s.substr(0, c1), u_lo) &&
         parse_cli_nonneg_double(s.substr(c1 + 1, c2 - c1 - 1), u_hi) &&
         parse_cli_count(s.substr(c2 + 1), u_steps, 1'000'000);
}

bool expand_cli_u_grid(double u_lo, double u_hi, std::size_t u_steps, double beta_lo,
                       double beta_hi, std::vector<SweepPoint>& points) {
  if (u_steps == 0 || u_hi < u_lo || u_lo <= 0) return false;
  for (std::size_t s = 0; s < u_steps; ++s) {
    const double u = u_steps == 1 ? u_lo
                                  : u_lo + (u_hi - u_lo) * static_cast<double>(s) /
                                               static_cast<double>(u_steps - 1);
    points.push_back(SweepPoint{u, beta_lo, beta_hi});
  }
  return true;
}

}  // namespace profisched::engine
