// detail/hash.hpp — FNV-1a 64-bit hashing for the engine's content digests
// (scenario canonical hashes, result-cache keys). FNV-1a is deliberately
// simple: the digests only need to be stable across hosts and builds — they
// are content addresses, not adversarial-collision-resistant MACs — and a
// byte-serial fold keeps the canonical field walk trivially portable
// (no endianness or struct-padding leaks).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace profisched::engine::detail {

class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x00000100000001b3ULL;

  Fnv1a64& bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) h_ = (h_ ^ p[i]) * kPrime;
    return *this;
  }

  /// Folds the value little-endian byte by byte, so the digest is identical
  /// on every host regardless of native endianness.
  Fnv1a64& u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ = (h_ ^ (v & 0xffu)) * kPrime;
      v >>= 8;
    }
    return *this;
  }

  Fnv1a64& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }

  /// Hashes the IEEE-754 bit pattern (exact, no formatting round trip).
  Fnv1a64& f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    return u64(bits);
  }

  [[nodiscard]] std::uint64_t digest() const noexcept { return h_; }

 private:
  std::uint64_t h_ = kOffsetBasis;
};

}  // namespace profisched::engine::detail
