// thread_pool.hpp — a fixed-size worker pool for the batch-analysis engine.
//
// Deliberately minimal: a bounded set of std::threads draining one FIFO of
// std::function jobs. The engine's hot path is parallel_for, which carves an
// index space [0, n) across the workers through a shared atomic cursor —
// dynamic (work-stealing-ish) load balance with zero per-item allocation.
// Determinism of sweep results does NOT depend on which worker runs which
// index: workers write into disjoint slots of a pre-sized output vector.
//
// Shutdown contract: stop() (also run by the destructor) lets the workers
// drain every job already queued, then retires them. A submit() AFTER stop
// throws std::logic_error — the queue it would push into has no readers left,
// so accepting the job would drop it on the floor silently. Long-running
// callers layering their own queue on top (the serve scheduler) rely on the
// post-stop path being this loud.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace profisched::engine {

class ThreadPool {
 public:
  /// Spin up `threads` workers (clamped to >= 1). The pool is fixed-size for
  /// its whole lifetime.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue one job. Never blocks (unbounded queue). Throws std::logic_error
  /// once stop() has run: the workers are draining out, so the job would sit
  /// in a queue nobody reads — a silent drop this pool refuses to make.
  void submit(std::function<void()> job);

  /// Begin shutdown: already-queued jobs still run to completion, but any
  /// further submit() throws. Idempotent; the destructor calls it and then
  /// joins the workers.
  void stop();

  /// True once stop() has run (further submissions will throw).
  [[nodiscard]] bool stopped() const;

  /// Block until every submitted job has finished.
  void wait_idle();

  /// Run fn(index, worker) for every index in [0, n), spread over the pool.
  /// `worker` is a dense slot id in [0, size()): each concurrently-running
  /// invocation sees a distinct slot, so callers can keep per-worker scratch
  /// state (e.g. one AnalysisEngine each) without locking. Blocks until all
  /// n invocations completed. Exceptions in fn terminate (noexcept workers);
  /// analysis jobs are expected not to throw on validated inputs.
  void parallel_for(std::size_t n, const std::function<void(std::size_t, unsigned)>& fn);

  /// Threads to use when the caller passed 0 = "auto".
  [[nodiscard]] static unsigned default_threads() noexcept;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_job_;   // signalled when a job arrives / stop
  std::condition_variable cv_idle_;  // signalled when the pool drains
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // popped but not yet finished
  bool stop_ = false;
  std::vector<std::thread> workers_;

  // Telemetry handles (relaxed adds; the latency histogram reads the clock
  // only while obs::enabled()). Fetched once here so workers never touch the
  // registry lock.
  obs::Counter tasks_submitted_ = obs::Registry::global().counter("pool.tasks_submitted");
  /// Bumped at dequeue (see worker_loop) so it never trails a finished
  /// parallel_for in a snapshot.
  obs::Counter tasks_executed_ = obs::Registry::global().counter("pool.tasks_executed");
  obs::Gauge queue_hwm_ = obs::Registry::global().gauge("pool.queue_depth_hwm");
  obs::Histogram task_latency_ = obs::Registry::global().histogram("pool.task_latency_ns");
};

}  // namespace profisched::engine
