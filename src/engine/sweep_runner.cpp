#include "engine/sweep_runner.hpp"

#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>

#include "sim/rng.hpp"

namespace profisched::engine {

SweepRunner::SweepRunner(unsigned threads)
    : pool_(threads == 0 ? ThreadPool::default_threads() : threads) {}

unsigned SweepRunner::threads() const noexcept { return pool_.size(); }

std::uint64_t SweepRunner::scenario_seed(std::uint64_t sweep_seed, std::uint64_t id) {
  // SplitMix64 over (seed, id): uncorrelated per-scenario streams whatever
  // the sweep seed, and — crucially — independent of worker assignment.
  std::uint64_t state = sweep_seed ^ (id * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL);
  return sim::splitmix64(state);
}

Scenario SweepRunner::make_scenario(const SweepSpec& spec, std::uint64_t id) {
  if (spec.points.empty() || spec.scenarios_per_point == 0) {
    throw std::invalid_argument("SweepSpec: needs >= 1 point and >= 1 scenario per point");
  }
  if (id >= spec.total_scenarios()) {
    throw std::out_of_range("SweepRunner::make_scenario: id outside the sweep");
  }
  const std::size_t point = static_cast<std::size_t>(id) / spec.scenarios_per_point;
  const SweepPoint& pt = spec.points[point];

  workload::NetworkParams params = spec.base;
  params.total_u = pt.total_u;
  params.deadline_lo = pt.beta_lo;
  params.deadline_hi = pt.beta_hi;

  Scenario sc;
  sc.id = id;
  sc.seed = scenario_seed(spec.seed, id);
  sc.total_u = pt.total_u;
  sc.beta_lo = pt.beta_lo;
  sc.beta_hi = pt.beta_hi;
  sim::Rng rng(sc.seed);
  sc.net = workload::random_network(params, rng).net;
  return sc;
}

SweepResult SweepRunner::run(const SweepSpec& spec) {
  if (spec.policies.empty()) {
    throw std::invalid_argument("SweepSpec: needs >= 1 policy");
  }
  if (spec.points.empty() || spec.scenarios_per_point == 0) {
    throw std::invalid_argument("SweepSpec: needs >= 1 point and >= 1 scenario per point");
  }
  const std::size_t n = spec.total_scenarios();
  SweepResult out;
  out.outcomes.resize(n);

  // One engine per worker slot: the timing memo is reused across this
  // scenario's policies without any cross-thread locking.
  std::vector<AnalysisEngine> engines(pool_.size(), AnalysisEngine(spec.engine));

  // A worker exception (e.g. a generation parameter the workload layer
  // rejects) must surface on the calling thread, not std::terminate the
  // process: capture the first one and rethrow after the pool drains.
  std::exception_ptr first_error;
  std::mutex error_mu;

  const auto t0 = std::chrono::steady_clock::now();
  pool_.parallel_for(n, [&](std::size_t i, unsigned worker) {
    try {
      AnalysisEngine& engine = engines[worker];
      const Scenario sc = make_scenario(spec, i);

      ScenarioOutcome& o = out.outcomes[i];  // disjoint slot per index
      o.id = sc.id;
      o.seed = sc.seed;
      o.point = static_cast<std::size_t>(i) / spec.scenarios_per_point;
      o.schedulable.reserve(spec.policies.size());
      o.worst_slack.reserve(spec.policies.size());
      for (const Policy policy : spec.policies) {
        const Report r = engine.analyze(sc, policy);
        o.tcycle = r.tcycle;
        o.schedulable.push_back(r.schedulable);
        o.worst_slack.push_back(r.worst_slack);
      }
      engine.forget(sc.id);
    } catch (...) {
      std::lock_guard lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  if (first_error) std::rethrow_exception(first_error);
  out.elapsed_s = std::chrono::duration<double>(t1 - t0).count();

  for (const AnalysisEngine& e : engines) {
    out.memo_hits += e.memo_hits();
    out.memo_misses += e.memo_misses();
  }
  return out;
}

}  // namespace profisched::engine
