#include "engine/sweep_runner.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>

#include "sim/rng.hpp"

namespace profisched::engine {

SweepRunner::SweepRunner(unsigned threads)
    : pool_(threads == 0 ? ThreadPool::default_threads() : threads) {}

unsigned SweepRunner::threads() const noexcept { return pool_.size(); }

std::uint64_t SweepRunner::scenario_seed(std::uint64_t sweep_seed, std::uint64_t id) {
  // SplitMix64 over (seed, id): uncorrelated per-scenario streams whatever
  // the sweep seed, and — crucially — independent of worker assignment.
  std::uint64_t state = sweep_seed ^ (id * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL);
  return sim::splitmix64(state);
}

Scenario SweepRunner::make_scenario(const SweepSpec& spec, std::uint64_t id) {
  if (spec.points.empty() || spec.scenarios_per_point == 0) {
    throw std::invalid_argument("SweepSpec: needs >= 1 point and >= 1 scenario per point");
  }
  if (id >= spec.total_scenarios()) {
    throw std::out_of_range("SweepRunner::make_scenario: id outside the sweep");
  }
  const std::size_t point = static_cast<std::size_t>(id) / spec.scenarios_per_point;
  const SweepPoint& pt = spec.points[point];

  workload::NetworkParams params = spec.base;
  params.total_u = pt.total_u;
  params.deadline_lo = pt.beta_lo;
  params.deadline_hi = pt.beta_hi;

  Scenario sc;
  sc.id = id;
  sc.seed = scenario_seed(spec.seed, id);
  sc.total_u = pt.total_u;
  sc.beta_lo = pt.beta_lo;
  sc.beta_hi = pt.beta_hi;
  sim::Rng rng(sc.seed);
  workload::GeneratedNetwork g = workload::random_network(params, rng);
  sc.net = std::move(g.net);
  sc.frame_specs = std::move(g.specs);
  return sc;
}

namespace {

void validate_sim_spec(const SimSweepSpec& spec) {
  if (spec.sweep.policies.empty()) {
    throw std::invalid_argument("SimSweepSpec: needs >= 1 policy");
  }
  if (spec.sweep.points.empty() || spec.sweep.scenarios_per_point == 0) {
    throw std::invalid_argument("SimSweepSpec: needs >= 1 point and >= 1 scenario per point");
  }
  if (spec.replications == 0) {
    throw std::invalid_argument("SimSweepSpec: needs >= 1 replication");
  }
  for (const Policy p : spec.sweep.policies) {
    if (!SimulationEngine::simulable(p)) {
      throw std::invalid_argument(std::string("SimSweepSpec: policy ") +
                                  std::string(to_string(p)) + " cannot be simulated");
    }
  }
}

/// Simulate one (scenario, policy) across every replication, reducing to the
/// sweep's scalar columns. When `per_stream_max` is non-null it receives, per
/// (master, stream), the max observed response over all replications — the
/// quantity the combined mode checks against each analytic bound.
SimSummary simulate_policy(const SimulationEngine& sim, const Scenario& sc, Policy policy,
                           std::size_t replications,
                           std::vector<std::vector<Ticks>>* per_stream_max) {
  SimSummary agg;
  if (per_stream_max != nullptr) {
    per_stream_max->assign(sc.net.n_masters(), {});
    for (std::size_t k = 0; k < sc.net.n_masters(); ++k) {
      (*per_stream_max)[k].assign(sc.net.masters[k].nh(), 0);
    }
  }
  for (std::size_t rep = 0; rep < replications; ++rep) {
    const sim::SimReport r = sim.simulate(sc, policy, rep);
    const SimSummary s = SimulationEngine::summarize(r);
    agg.observed_max = std::max(agg.observed_max, s.observed_max);
    agg.observed_p99 = std::max(agg.observed_p99, s.observed_p99);
    agg.released += s.released;
    agg.completed += s.completed;
    agg.misses += s.misses;
    agg.dropped += s.dropped;
    if (per_stream_max != nullptr) {
      for (std::size_t k = 0; k < r.hp.size(); ++k) {
        for (std::size_t i = 0; i < r.hp[k].size(); ++i) {
          (*per_stream_max)[k][i] = std::max((*per_stream_max)[k][i], r.hp[k][i].max_response);
        }
      }
    }
  }
  return agg;
}

}  // namespace

SweepResult SweepRunner::run(const SweepSpec& spec) {
  if (spec.policies.empty()) {
    throw std::invalid_argument("SweepSpec: needs >= 1 policy");
  }
  if (spec.points.empty() || spec.scenarios_per_point == 0) {
    throw std::invalid_argument("SweepSpec: needs >= 1 point and >= 1 scenario per point");
  }
  const std::size_t n = spec.total_scenarios();
  SweepResult out;
  out.outcomes.resize(n);

  // One engine per worker slot: the timing memo is reused across this
  // scenario's policies without any cross-thread locking.
  std::vector<AnalysisEngine> engines(pool_.size(), AnalysisEngine(spec.engine));

  // A worker exception (e.g. a generation parameter the workload layer
  // rejects) must surface on the calling thread, not std::terminate the
  // process: capture the first one and rethrow after the pool drains.
  std::exception_ptr first_error;
  std::mutex error_mu;

  const auto t0 = std::chrono::steady_clock::now();
  pool_.parallel_for(n, [&](std::size_t i, unsigned worker) {
    try {
      AnalysisEngine& engine = engines[worker];
      const Scenario sc = make_scenario(spec, i);

      ScenarioOutcome& o = out.outcomes[i];  // disjoint slot per index
      o.id = sc.id;
      o.seed = sc.seed;
      o.point = static_cast<std::size_t>(i) / spec.scenarios_per_point;
      o.schedulable.reserve(spec.policies.size());
      o.worst_slack.reserve(spec.policies.size());
      for (const Policy policy : spec.policies) {
        const Report r = engine.analyze(sc, policy);
        o.tcycle = r.tcycle;
        o.schedulable.push_back(r.schedulable);
        o.worst_slack.push_back(r.worst_slack);
      }
      engine.forget(sc.id);
    } catch (...) {
      std::lock_guard lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  if (first_error) std::rethrow_exception(first_error);
  out.elapsed_s = std::chrono::duration<double>(t1 - t0).count();

  for (const AnalysisEngine& e : engines) {
    out.memo_hits += e.memo_hits();
    out.memo_misses += e.memo_misses();
  }
  return out;
}

SimSweepResult SweepRunner::run_sim(const SimSweepSpec& spec) {
  validate_sim_spec(spec);
  const std::size_t n = spec.sweep.total_scenarios();
  SimSweepResult out;
  out.outcomes.resize(n);

  const SimulationEngine sim(spec.sim);  // stateless: shared by every worker
  std::exception_ptr first_error;
  std::mutex error_mu;

  const auto t0 = std::chrono::steady_clock::now();
  pool_.parallel_for(n, [&](std::size_t i, unsigned) {
    try {
      const Scenario sc = make_scenario(spec.sweep, i);

      SimScenarioOutcome& o = out.outcomes[i];  // disjoint slot per index
      o.id = sc.id;
      o.seed = sc.seed;
      o.point = static_cast<std::size_t>(i) / spec.sweep.scenarios_per_point;
      o.horizon = sim.horizon_for(sc);
      for (const Policy policy : spec.sweep.policies) {
        const SimSummary s = simulate_policy(sim, sc, policy, spec.replications, nullptr);
        o.observed_max.push_back(s.observed_max);
        o.observed_p99.push_back(s.observed_p99);
        o.released.push_back(s.released);
        o.completed.push_back(s.completed);
        o.misses.push_back(s.misses);
        o.dropped.push_back(s.dropped);
      }
    } catch (...) {
      std::lock_guard lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  if (first_error) std::rethrow_exception(first_error);
  out.elapsed_s = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

CombinedResult SweepRunner::run_combined(const SimSweepSpec& spec) {
  validate_sim_spec(spec);
  const std::size_t n = spec.sweep.total_scenarios();
  CombinedResult out;
  out.outcomes.resize(n);

  const SimulationEngine sim(spec.sim);
  std::vector<AnalysisEngine> engines(pool_.size(), AnalysisEngine(spec.sweep.engine));
  std::exception_ptr first_error;
  std::mutex error_mu;

  const auto t0 = std::chrono::steady_clock::now();
  pool_.parallel_for(n, [&](std::size_t i, unsigned worker) {
    try {
      AnalysisEngine& engine = engines[worker];
      const Scenario sc = make_scenario(spec.sweep, i);

      CombinedOutcome& o = out.outcomes[i];  // disjoint slot per index
      o.sim.id = sc.id;
      o.sim.seed = sc.seed;
      o.sim.point = static_cast<std::size_t>(i) / spec.sweep.scenarios_per_point;
      o.sim.horizon = sim.horizon_for(sc);
      std::vector<std::vector<Ticks>> per_stream_max;
      for (const Policy policy : spec.sweep.policies) {
        const Report a = engine.analyze(sc, policy);
        o.analytic_schedulable.push_back(a.schedulable);
        Ticks wcrt = 0;
        for (const profibus::MasterAnalysis& m : a.detail.masters) {
          for (const profibus::StreamResponse& s : m.streams) {
            wcrt = s.response == kNoBound ? kNoBound : std::max(wcrt, s.response);
            if (wcrt == kNoBound) break;
          }
          if (wcrt == kNoBound) break;
        }
        o.analytic_wcrt.push_back(wcrt);

        const SimSummary s = simulate_policy(sim, sc, policy, spec.replications, &per_stream_max);
        o.sim.observed_max.push_back(s.observed_max);
        o.sim.observed_p99.push_back(s.observed_p99);
        o.sim.released.push_back(s.released);
        o.sim.completed.push_back(s.completed);
        o.sim.misses.push_back(s.misses);
        o.sim.dropped.push_back(s.dropped);

        // Per-stream consistency: every bounded analytic response must
        // dominate that stream's observed max across all replications.
        std::uint64_t violations = 0;
        for (std::size_t k = 0; k < a.detail.masters.size(); ++k) {
          for (std::size_t si = 0; si < a.detail.masters[k].streams.size(); ++si) {
            const Ticks bound = a.detail.masters[k].streams[si].response;
            if (bound != kNoBound && per_stream_max[k][si] > bound) ++violations;
          }
        }
        o.bound_violations.push_back(violations);
      }
      engine.forget(sc.id);
    } catch (...) {
      std::lock_guard lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  if (first_error) std::rethrow_exception(first_error);
  out.elapsed_s = std::chrono::duration<double>(t1 - t0).count();

  for (const AnalysisEngine& e : engines) {
    out.memo_hits += e.memo_hits();
    out.memo_misses += e.memo_misses();
  }
  return out;
}

std::uint64_t CombinedResult::total_bound_violations() const noexcept {
  std::uint64_t n = 0;
  for (const CombinedOutcome& o : outcomes) {
    for (const std::uint64_t v : o.bound_violations) n += v;
  }
  return n;
}

std::uint64_t CombinedResult::accept_but_miss_count() const noexcept {
  std::uint64_t n = 0;
  for (const CombinedOutcome& o : outcomes) {
    for (std::size_t p = 0; p < o.analytic_schedulable.size(); ++p) {
      if (o.analytic_schedulable[p] && o.sim.misses[p] > 0) ++n;
    }
  }
  return n;
}

}  // namespace profisched::engine
