#include "engine/sweep_runner.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "engine/detail/hash.hpp"
#include "engine/detail/record.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "profibus/fault_bounds.hpp"
#include "sim/rng.hpp"

namespace profisched::engine {

bool has_multi_axis(const std::vector<SweepPoint>& points) {
  for (const SweepPoint& pt : points) {
    if (pt.n_masters != 0) return true;
    if (pt.beta_lo != points.front().beta_lo || pt.beta_hi != points.front().beta_hi) {
      return true;
    }
  }
  return false;
}

SweepRunner::SweepRunner(unsigned threads)
    : pool_(threads == 0 ? ThreadPool::default_threads() : threads) {}

unsigned SweepRunner::threads() const noexcept { return pool_.size(); }

std::uint64_t SweepRunner::scenario_seed(std::uint64_t sweep_seed, std::uint64_t id) {
  // SplitMix64 over (seed, id): uncorrelated per-scenario streams whatever
  // the sweep seed, and — crucially — independent of worker assignment.
  std::uint64_t state = sweep_seed ^ (id * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL);
  return sim::splitmix64(state);
}

Scenario SweepRunner::make_scenario(const SweepSpec& spec, std::uint64_t id) {
  if (spec.points.empty() || spec.scenarios_per_point == 0) {
    throw std::invalid_argument("SweepSpec: needs >= 1 point and >= 1 scenario per point");
  }
  if (id >= spec.total_scenarios()) {
    throw std::out_of_range("SweepRunner::make_scenario: id outside the sweep");
  }
  const std::size_t point = static_cast<std::size_t>(id) / spec.scenarios_per_point;
  const SweepPoint& pt = spec.points[point];

  workload::NetworkParams params = spec.base;
  params.total_u = pt.total_u;
  params.deadline_lo = pt.beta_lo;
  params.deadline_hi = pt.beta_hi;
  if (pt.n_masters != 0) params.n_masters = pt.n_masters;

  Scenario sc;
  sc.id = id;
  sc.seed = scenario_seed(spec.seed, id);
  sc.total_u = pt.total_u;
  sc.beta_lo = pt.beta_lo;
  sc.beta_hi = pt.beta_hi;
  sim::Rng rng(sc.seed);
  workload::GeneratedNetwork g = workload::random_network(params, rng);
  sc.net = std::move(g.net);
  sc.frame_specs = std::move(g.specs);
  return sc;
}

namespace {

void validate_sim_spec(const SimSweepSpec& spec) {
  if (spec.sweep.policies.empty()) {
    throw std::invalid_argument("SimSweepSpec: needs >= 1 policy");
  }
  if (spec.sweep.points.empty() || spec.sweep.scenarios_per_point == 0) {
    throw std::invalid_argument("SimSweepSpec: needs >= 1 point and >= 1 scenario per point");
  }
  if (spec.replications == 0) {
    throw std::invalid_argument("SimSweepSpec: needs >= 1 replication");
  }
  for (const Policy p : spec.sweep.policies) {
    if (!SimulationEngine::simulable(p)) {
      throw std::invalid_argument(std::string("SimSweepSpec: policy ") +
                                  std::string(to_string(p)) + " cannot be simulated");
    }
  }
}

void validate_range(IdRange range, std::uint64_t total) {
  if (range.begin > range.end || range.end > total) {
    throw std::out_of_range("SweepRunner: shard range outside the sweep");
  }
}

/// Registry handles the runner's hot loops write through. Fetched once per
/// process (function-local static) so per-scenario cost is the relaxed add
/// itself — no registry lookup, no lock. Cache accounting lives here (not in
/// per-run atomics) so the registry is the single source of truth; RunStats
/// carries per-run values computed as deltas around each run.
struct RunnerMetrics {
  obs::Counter scenarios_done = obs::Registry::global().counter("runner.scenarios_completed");
  obs::Counter ranges = obs::Registry::global().counter("runner.ranges");
  obs::Counter cache_lookups = obs::Registry::global().counter("cache.lookups");
  obs::Counter cache_hits = obs::Registry::global().counter("cache.hits");
  obs::Counter cache_misses = obs::Registry::global().counter("cache.misses");
  obs::Counter memo_hits = obs::Registry::global().counter("engine.memo_hits");
  obs::Counter memo_misses = obs::Registry::global().counter("engine.memo_misses");
  obs::Timer range_timer = obs::Registry::global().timer("runner.range");
  obs::Timer generate = obs::Registry::global().timer("runner.generate");
  obs::Timer analyze = obs::Registry::global().timer("runner.analyze");
  obs::Timer simulate = obs::Registry::global().timer("runner.simulate");
};

RunnerMetrics& runner_metrics() {
  static RunnerMetrics m;
  return m;
}

/// Simulation-kernel bridge counters: the kernel's own tallies are plain
/// per-run members (the inner event loop stays untouched); each completed
/// replication folds them into the registry here, at the one funnel every
/// sim-backed mode shares.
struct SimBridgeMetrics {
  obs::Counter replications = obs::Registry::global().counter("sim.replications");
  obs::Counter events = obs::Registry::global().counter("sim.events");
  obs::Counter pool_recycles = obs::Registry::global().counter("sim.pool_recycles");
  obs::Counter tokens_lost = obs::Registry::global().counter("sim.faults.tokens_lost");
  obs::Counter token_skips = obs::Registry::global().counter("sim.faults.token_skips");
  obs::Counter leaves = obs::Registry::global().counter("sim.faults.leaves");
  obs::Counter rejoins = obs::Registry::global().counter("sim.faults.rejoins");
  obs::Counter corrupted = obs::Registry::global().counter("sim.faults.corrupted_cycles");
  obs::Counter retrans = obs::Registry::global().counter("sim.faults.retransmissions");
  obs::Counter churn_dropped = obs::Registry::global().counter("sim.faults.churn_dropped");
};

SimBridgeMetrics& sim_bridge() {
  static SimBridgeMetrics b;
  return b;
}

/// Simulate one (scenario, policy) across every replication, reducing to the
/// sweep's scalar columns. When `per_stream_max` is non-null it receives, per
/// (master, stream), the max observed response over all replications — the
/// quantity the combined mode checks against each analytic bound.
SimSummary simulate_policy(const SimulationEngine& sim, const Scenario& sc, Policy policy,
                           std::size_t replications,
                           std::vector<std::vector<Ticks>>* per_stream_max) {
  SimSummary agg;
  if (per_stream_max != nullptr) {
    per_stream_max->assign(sc.net.n_masters(), {});
    for (std::size_t k = 0; k < sc.net.n_masters(); ++k) {
      (*per_stream_max)[k].assign(sc.net.masters[k].nh(), 0);
    }
  }
  SimBridgeMetrics& b = sim_bridge();
  for (std::size_t rep = 0; rep < replications; ++rep) {
    const sim::SimReport r = sim.simulate(sc, policy, rep);
    b.replications.add(1);
    b.events.add(r.events);
    b.pool_recycles.add(r.pool_recycles);
    b.tokens_lost.add(r.faults.tokens_lost);
    b.token_skips.add(r.faults.token_skips);
    b.leaves.add(r.faults.leaves);
    b.rejoins.add(r.faults.rejoins);
    b.corrupted.add(r.faults.corrupted_cycles);
    b.retrans.add(r.faults.retransmissions);
    b.churn_dropped.add(r.faults.churn_dropped);
    const SimSummary s = SimulationEngine::summarize(r, sim.options().quantile);
    agg.observed_max = std::max(agg.observed_max, s.observed_max);
    agg.observed_p99 = std::max(agg.observed_p99, s.observed_p99);
    agg.released += s.released;
    agg.completed += s.completed;
    agg.misses += s.misses;
    agg.dropped += s.dropped;
    if (per_stream_max != nullptr) {
      for (std::size_t k = 0; k < r.hp.size(); ++k) {
        for (std::size_t i = 0; i < r.hp[k].size(); ++i) {
          (*per_stream_max)[k][i] = std::max((*per_stream_max)[k][i], r.hp[k][i].max_response);
        }
      }
    }
  }
  return agg;
}

// --------------------------------------------------------- cache records
//
// One cache entry per (scenario, policy): the scenario half of the key is
// canonical_hash(Scenario) — for the ANALYSIS records, whose results are a
// pure function of the network content. Simulation outcomes additionally
// depend on the scenario's RNG seed (rep_seed() drives cycle-duration draws
// and the random replication phases), and equal-content different-seed
// scenarios genuinely occur in real sweeps, so the sim/combined keys fold
// sc.seed into the scenario half; serving one such scenario the other's
// record would silently break the cached-equals-recomputed guarantee. The
// params half digests the record kind, the policy, and every option that
// shapes the result, so any knob change misses cleanly instead of serving
// stale data. Payloads are small space-separated integer records (every
// column is integral, so decode(encode(x)) == x exactly) with a leading
// kind+version token; decode failures are treated as misses and overwritten,
// never trusted.

constexpr std::uint64_t kAnalysisRecordKind = 1;
constexpr std::uint64_t kSimRecordKind = 2;
constexpr std::uint64_t kCombinedRecordKind = 3;

/// Scenario half of a simulation-backed cache key: content digest + the RNG
/// seed the replication streams derive from.
std::uint64_t seeded_content_digest(const Scenario& sc) {
  return detail::Fnv1a64().u64(canonical_hash(sc)).u64(sc.seed).digest();
}

std::uint64_t analysis_params_digest(Policy policy, const EngineOptions& opt) {
  detail::Fnv1a64 h;
  h.u64(kAnalysisRecordKind)
      .u64(static_cast<std::uint64_t>(policy))
      .u64(static_cast<std::uint64_t>(opt.method))
      .u64(static_cast<std::uint64_t>(opt.formulation))
      .i64(opt.fuel);
  return h.digest();
}

std::uint64_t sim_params_digest(Policy policy, const SimOptions& opt, std::size_t replications) {
  detail::Fnv1a64 h;
  h.u64(kSimRecordKind)
      .u64(static_cast<std::uint64_t>(policy))
      .u64(static_cast<std::uint64_t>(opt.cycle_model.kind))
      .f64(opt.cycle_model.min_fraction)
      .f64(opt.cycle_model.slave_fail_prob)
      .i64(opt.horizon)
      .f64(opt.horizon_cycles)
      .i64(opt.horizon_cap)
      .u64(opt.lp_traffic ? 1 : 0)
      .u64(opt.collect_histograms ? 1 : 0)
      .f64(opt.quantile)
      .u64(replications);
  // Every fault knob shapes simulation outcomes (and the burst correlation
  // shapes replication phases), so all of them fold into the digest — a
  // faulted re-sweep can never be served a steady-state record or vice versa.
  h.f64(opt.faults.token_loss_prob)
      .i64(opt.faults.token_recovery)
      .f64(opt.faults.corruption_prob)
      .i64(opt.faults.max_retransmissions)
      .f64(opt.faults.churn_prob)
      .i64(opt.faults.churn_offline)
      .f64(opt.faults.burst_correlation);
  return h.digest();
}

std::uint64_t combined_params_digest(Policy policy, const EngineOptions& eopt,
                                     const SimOptions& sopt, std::size_t replications) {
  detail::Fnv1a64 h;
  h.u64(kCombinedRecordKind)
      .u64(analysis_params_digest(policy, eopt))
      .u64(sim_params_digest(policy, sopt, replications));
  return h.digest();
}

using detail::append_i64;
using detail::append_u64;
using detail::RecordReader;

std::string encode_analysis_record(Ticks tcycle, bool schedulable, Ticks worst_slack) {
  std::string out = "a1";
  append_i64(out, tcycle);
  append_u64(out, schedulable ? 1 : 0);
  append_i64(out, worst_slack);
  return out;
}

bool decode_analysis_record(const std::string& payload, Ticks& tcycle, bool& schedulable,
                            Ticks& worst_slack) {
  RecordReader r(payload);
  long long tc = 0, slack = 0;
  unsigned long long sched = 0;
  if (!r.tag("a1") || !r.i64(tc) || !r.u64(sched) || !r.i64(slack) || !r.done() || sched > 1) {
    return false;
  }
  tcycle = tc;
  schedulable = sched == 1;
  worst_slack = slack;
  return true;
}

std::string encode_sim_record(Ticks horizon, const SimSummary& s) {
  std::string out = "s1";
  append_i64(out, horizon);
  append_i64(out, s.observed_max);
  append_i64(out, s.observed_p99);
  append_u64(out, s.released);
  append_u64(out, s.completed);
  append_u64(out, s.misses);
  append_u64(out, s.dropped);
  return out;
}

bool decode_sim_record(const std::string& payload, Ticks& horizon, SimSummary& s) {
  RecordReader r(payload);
  long long h = 0, omax = 0, p99 = 0;
  if (!r.tag("s1") || !r.i64(h) || !r.i64(omax) || !r.i64(p99) || !r.u64(s.released) ||
      !r.u64(s.completed) || !r.u64(s.misses) || !r.u64(s.dropped) || !r.done()) {
    return false;
  }
  horizon = h;
  s.observed_max = omax;
  s.observed_p99 = p99;
  return true;
}

/// Combined records come in two formats: the historical "c1" for fault-free
/// sweeps (byte-identical to pre-fault caches) and "c2", which appends the
/// degraded-mode verdict/bound, used exactly when the spec's FaultModel is
/// active. A decode only accepts the tag matching the requesting spec, so a
/// faulted sweep can never consume a clean record's shape (the params digest
/// already separates the keys; the tag keeps the payloads self-describing).
std::string encode_combined_record(bool faulted, Ticks horizon, bool analytic_schedulable,
                                   Ticks analytic_wcrt, std::uint64_t violations,
                                   const SimSummary& s, bool degraded_schedulable,
                                   Ticks degraded_wcrt) {
  std::string out = faulted ? "c2" : "c1";
  append_i64(out, horizon);
  append_u64(out, analytic_schedulable ? 1 : 0);
  append_i64(out, analytic_wcrt);
  append_u64(out, violations);
  append_i64(out, s.observed_max);
  append_i64(out, s.observed_p99);
  append_u64(out, s.released);
  append_u64(out, s.completed);
  append_u64(out, s.misses);
  append_u64(out, s.dropped);
  if (faulted) {
    append_u64(out, degraded_schedulable ? 1 : 0);
    append_i64(out, degraded_wcrt);
  }
  return out;
}

bool decode_combined_record(const std::string& payload, bool faulted, Ticks& horizon,
                            bool& analytic_schedulable, Ticks& analytic_wcrt,
                            std::uint64_t& violations, SimSummary& s, bool& degraded_schedulable,
                            Ticks& degraded_wcrt) {
  RecordReader r(payload);
  long long h = 0, wcrt = 0, omax = 0, p99 = 0;
  unsigned long long sched = 0;
  if (!r.tag(faulted ? "c2" : "c1") || !r.i64(h) || !r.u64(sched) || !r.i64(wcrt) ||
      !r.u64(violations) || !r.i64(omax) || !r.i64(p99) || !r.u64(s.released) ||
      !r.u64(s.completed) || !r.u64(s.misses) || !r.u64(s.dropped) || sched > 1) {
    return false;
  }
  long long dwcrt = 0;
  unsigned long long dsched = 0;
  if (faulted && (!r.u64(dsched) || !r.i64(dwcrt) || dsched > 1)) return false;
  if (!r.done()) return false;
  horizon = h;
  analytic_schedulable = sched == 1;
  analytic_wcrt = wcrt;
  s.observed_max = omax;
  s.observed_p99 = p99;
  degraded_schedulable = dsched == 1;
  degraded_wcrt = dwcrt;
  return true;
}

}  // namespace

void SweepRunner::run_scenarios(std::uint64_t total, IdRange range, RunStats& stats,
                                const ScenarioFn& fn) {
  validate_range(range, total);
  const std::size_t n = static_cast<std::size_t>(range.size());
  RunnerMetrics& m = runner_metrics();
  m.ranges.add(1);
  // The heartbeat exists only when --progress asked for it; otherwise the
  // per-scenario cost is the single relaxed counter add below.
  std::unique_ptr<obs::ProgressMeter> meter;
  if (obs::progress_enabled()) {
    meter = std::make_unique<obs::ProgressMeter>("scenarios", n);
  }
  obs::Span range_span(m.range_timer);

  // A worker exception (e.g. a generation parameter the workload layer
  // rejects) must surface on the calling thread, not std::terminate the
  // process: capture the first one and rethrow after the pool drains.
  std::exception_ptr first_error;
  std::mutex error_mu;

  const auto t0 = std::chrono::steady_clock::now();
  pool_.parallel_for(n, [&](std::size_t i, unsigned worker) {
    try {
      fn(range.begin + i, i, worker);
      m.scenarios_done.add(1);
      if (meter) meter->tick();
    } catch (...) {
      std::lock_guard lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  range_span.stop();
  if (first_error) std::rethrow_exception(first_error);
  stats.elapsed_s = std::chrono::duration<double>(t1 - t0).count();
}

SweepResult SweepRunner::run(const SweepSpec& spec, ScenarioCache* cache) {
  return run(spec, IdRange{0, spec.total_scenarios()}, cache);
}

SweepResult SweepRunner::run(const SweepSpec& spec, IdRange range, ScenarioCache* cache) {
  if (spec.policies.empty()) {
    throw std::invalid_argument("SweepSpec: needs >= 1 policy");
  }
  if (spec.points.empty() || spec.scenarios_per_point == 0) {
    throw std::invalid_argument("SweepSpec: needs >= 1 point and >= 1 scenario per point");
  }
  validate_range(range, spec.total_scenarios());
  SweepResult out;
  out.outcomes.resize(static_cast<std::size_t>(range.size()));

  // One engine per worker slot: the timing memo is reused across this
  // scenario's policies without any cross-thread locking.
  std::vector<AnalysisEngine> engines(pool_.size(), AnalysisEngine(spec.engine));

  // Per-policy parameter digests are loop-invariant; hash them once.
  std::vector<std::uint64_t> params(spec.policies.size(), 0);
  if (cache != nullptr) {
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      params[p] = analysis_params_digest(spec.policies[p], spec.engine);
    }
  }
  RunnerMetrics& m = runner_metrics();
  const std::uint64_t hits0 = m.cache_hits.value(), misses0 = m.cache_misses.value();

  const auto per_scenario = [&](std::uint64_t id, std::size_t i, unsigned worker) {
    AnalysisEngine& engine = engines[worker];
    obs::Span gen_span(m.generate);
    const Scenario sc = make_scenario(spec, id);
    const std::uint64_t content = cache != nullptr ? canonical_hash(sc) : 0;
    gen_span.stop();
    const obs::Span stage_span(m.analyze);

    ScenarioOutcome& o = out.outcomes[i];  // disjoint slot per index
    o.id = sc.id;
    o.seed = sc.seed;
    o.point = static_cast<std::size_t>(id) / spec.scenarios_per_point;
    o.schedulable.reserve(spec.policies.size());
    o.worst_slack.reserve(spec.policies.size());
    if (cache == nullptr) {
      // Cross-policy batch: validate + memo-bind the scenario once and
      // share busy-period state across every policy. Identical reports,
      // fewer per-policy overheads (the cache path stays per-policy so
      // hits skip computation entirely).
      for (const Report& r : engine.analyze_all(sc, spec.policies)) {
        o.tcycle = r.tcycle;
        o.schedulable.push_back(r.schedulable);
        o.worst_slack.push_back(r.worst_slack);
      }
      engine.forget(sc.id);
      return;
    }
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      const CacheKey key{content, params[p]};
      std::string payload;
      Ticks tcycle = 0, worst_slack = 0;
      bool schedulable = false;
      m.cache_lookups.add(1);
      if (cache->load(key, payload) &&
          decode_analysis_record(payload, tcycle, schedulable, worst_slack)) {
        m.cache_hits.add(1);
        o.tcycle = tcycle;
        o.schedulable.push_back(schedulable);
        o.worst_slack.push_back(worst_slack);
        continue;
      }
      const Report r = engine.analyze(sc, spec.policies[p]);
      o.tcycle = r.tcycle;
      o.schedulable.push_back(r.schedulable);
      o.worst_slack.push_back(r.worst_slack);
      m.cache_misses.add(1);
      cache->store(key, encode_analysis_record(r.tcycle, r.schedulable, r.worst_slack));
    }
    engine.forget(sc.id);
  };
  run_scenarios(spec.total_scenarios(), range, out, per_scenario);
  out.cache_hits = m.cache_hits.value() - hits0;
  out.cache_misses = m.cache_misses.value() - misses0;

  for (const AnalysisEngine& e : engines) {
    out.memo_hits += e.memo_hits();
    out.memo_misses += e.memo_misses();
  }
  m.memo_hits.add(out.memo_hits);
  m.memo_misses.add(out.memo_misses);
  return out;
}

SimSweepResult SweepRunner::run_sim(const SimSweepSpec& spec, ScenarioCache* cache) {
  return run_sim(spec, IdRange{0, spec.sweep.total_scenarios()}, cache);
}

SimSweepResult SweepRunner::run_sim(const SimSweepSpec& spec, IdRange range,
                                    ScenarioCache* cache) {
  validate_sim_spec(spec);
  validate_range(range, spec.sweep.total_scenarios());
  SimSweepResult out;
  out.outcomes.resize(static_cast<std::size_t>(range.size()));

  const SimulationEngine sim(spec.sim);  // stateless: shared by every worker
  std::vector<std::uint64_t> params(spec.sweep.policies.size(), 0);
  if (cache != nullptr) {
    for (std::size_t p = 0; p < spec.sweep.policies.size(); ++p) {
      params[p] = sim_params_digest(spec.sweep.policies[p], spec.sim, spec.replications);
    }
  }
  RunnerMetrics& m = runner_metrics();
  const std::uint64_t hits0 = m.cache_hits.value(), misses0 = m.cache_misses.value();

  const auto per_scenario = [&](std::uint64_t id, std::size_t i, unsigned) {
    obs::Span gen_span(m.generate);
    const Scenario sc = make_scenario(spec.sweep, id);
    const std::uint64_t content = cache != nullptr ? seeded_content_digest(sc) : 0;
    gen_span.stop();
    const obs::Span stage_span(m.simulate);

    SimScenarioOutcome& o = out.outcomes[i];  // disjoint slot per index
    o.id = sc.id;
    o.seed = sc.seed;
    o.point = static_cast<std::size_t>(id) / spec.sweep.scenarios_per_point;
    o.horizon = sim.horizon_for(sc);
    for (std::size_t p = 0; p < spec.sweep.policies.size(); ++p) {
      const CacheKey key{content, params[p]};
      std::string payload;
      SimSummary s;
      Ticks horizon = 0;
      // The stored horizon must match the one this spec derives — it is a
      // pure function of (scenario, options), so a mismatch means a
      // corrupted or colliding entry and the record is refused.
      if (cache != nullptr) m.cache_lookups.add(1);
      if (cache != nullptr && cache->load(key, payload) &&
          decode_sim_record(payload, horizon, s) && horizon == o.horizon) {
        m.cache_hits.add(1);
      } else {
        s = simulate_policy(sim, sc, spec.sweep.policies[p], spec.replications, nullptr);
        if (cache != nullptr) {
          m.cache_misses.add(1);
          cache->store(key, encode_sim_record(o.horizon, s));
        }
      }
      o.observed_max.push_back(s.observed_max);
      o.observed_p99.push_back(s.observed_p99);
      o.released.push_back(s.released);
      o.completed.push_back(s.completed);
      o.misses.push_back(s.misses);
      o.dropped.push_back(s.dropped);
    }
  };
  run_scenarios(spec.sweep.total_scenarios(), range, out, per_scenario);
  out.cache_hits = m.cache_hits.value() - hits0;
  out.cache_misses = m.cache_misses.value() - misses0;
  return out;
}

CombinedResult SweepRunner::run_combined(const SimSweepSpec& spec, ScenarioCache* cache) {
  return run_combined(spec, IdRange{0, spec.sweep.total_scenarios()}, cache);
}

CombinedResult SweepRunner::run_combined(const SimSweepSpec& spec, IdRange range,
                                         ScenarioCache* cache) {
  validate_sim_spec(spec);
  validate_range(range, spec.sweep.total_scenarios());
  CombinedResult out;
  out.outcomes.resize(static_cast<std::size_t>(range.size()));

  const SimulationEngine sim(spec.sim);
  const bool faulted = spec.sim.faults.any();
  std::vector<AnalysisEngine> engines(pool_.size(), AnalysisEngine(spec.sweep.engine));
  std::vector<std::uint64_t> params(spec.sweep.policies.size(), 0);
  if (cache != nullptr) {
    for (std::size_t p = 0; p < spec.sweep.policies.size(); ++p) {
      params[p] = combined_params_digest(spec.sweep.policies[p], spec.sweep.engine, spec.sim,
                                         spec.replications);
    }
  }
  RunnerMetrics& m = runner_metrics();
  const std::uint64_t hits0 = m.cache_hits.value(), misses0 = m.cache_misses.value();

  const auto per_scenario = [&](std::uint64_t id, std::size_t i, unsigned worker) {
    AnalysisEngine& engine = engines[worker];
    obs::Span gen_span(m.generate);
    const Scenario sc = make_scenario(spec.sweep, id);
    const std::uint64_t content = cache != nullptr ? seeded_content_digest(sc) : 0;
    gen_span.stop();

    CombinedOutcome& o = out.outcomes[i];  // disjoint slot per index
    o.sim.id = sc.id;
    o.sim.seed = sc.seed;
    o.sim.point = static_cast<std::size_t>(id) / spec.sweep.scenarios_per_point;
    o.sim.horizon = sim.horizon_for(sc);
    // Without a cache, every policy's analysis is needed: batch them so the
    // scenario is validated and memo-bound once (identical reports). With a
    // cache, analysis only runs on misses — stay per-policy.
    std::vector<Report> batched;
    if (cache == nullptr) {
      const obs::Span an_span(m.analyze);
      batched = engine.analyze_all(sc, spec.sweep.policies);
    }
    // Under faults the degraded network and timing memo are shared across
    // this scenario's policies (the per-policy degraded analyses dispatch
    // through them), computed lazily so full-hit cached scenarios skip it.
    std::optional<profibus::Network> dnet;
    std::optional<profibus::TimingMemo> dmemo;
    std::vector<std::vector<Ticks>> per_stream_max;
    for (std::size_t p = 0; p < spec.sweep.policies.size(); ++p) {
      const Policy policy = spec.sweep.policies[p];
      const CacheKey key{content, params[p]};
      std::string payload;
      Ticks horizon = 0, analytic_wcrt = 0, degraded_wcrt = 0;
      bool analytic_schedulable = false, degraded_schedulable = false;
      std::uint64_t violations = 0;
      SimSummary s;
      // Horizon check as in run_sim: refuse records whose derived
      // horizon disagrees (corruption / collision guard).
      if (cache != nullptr) m.cache_lookups.add(1);
      if (cache != nullptr && cache->load(key, payload) &&
          decode_combined_record(payload, faulted, horizon, analytic_schedulable, analytic_wcrt,
                                 violations, s, degraded_schedulable, degraded_wcrt) &&
          horizon == o.sim.horizon) {
        m.cache_hits.add(1);
        o.analytic_schedulable.push_back(analytic_schedulable);
        o.analytic_wcrt.push_back(analytic_wcrt);
        o.bound_violations.push_back(violations);
        if (faulted) {
          o.degraded_schedulable.push_back(degraded_schedulable);
          o.degraded_wcrt.push_back(degraded_wcrt);
        }
        o.sim.observed_max.push_back(s.observed_max);
        o.sim.observed_p99.push_back(s.observed_p99);
        o.sim.released.push_back(s.released);
        o.sim.completed.push_back(s.completed);
        o.sim.misses.push_back(s.misses);
        o.sim.dropped.push_back(s.dropped);
        continue;
      }

      obs::Span an_span(m.analyze);
      const Report a = cache == nullptr ? std::move(batched[p]) : engine.analyze(sc, policy);
      o.analytic_schedulable.push_back(a.schedulable);
      const auto max_response = [](const profibus::NetworkAnalysis& na) {
        Ticks wcrt = 0;
        for (const profibus::MasterAnalysis& m : na.masters) {
          for (const profibus::StreamResponse& sr : m.streams) {
            wcrt = sr.response == kNoBound ? kNoBound : std::max(wcrt, sr.response);
            if (wcrt == kNoBound) break;
          }
          if (wcrt == kNoBound) break;
        }
        return wcrt;
      };
      const Ticks wcrt = max_response(a.detail);
      o.analytic_wcrt.push_back(wcrt);

      // Degraded-mode analysis: the guarantee the FAULTED simulation is held
      // to. The clean columns above keep the steady-state verdict (their gap
      // is the price of faults); the consistency checks below reference the
      // degraded bounds instead.
      profibus::NetworkAnalysis degraded;
      if (faulted) {
        if (!dnet) {
          dnet = profibus::degraded_network(sc.net, spec.sim.faults);
          dmemo = profibus::degraded_timing(*dnet, spec.sim.faults, spec.sweep.engine.method);
        }
        degraded = profibus::analyze_degraded(*dnet, *dmemo, SimulationEngine::to_ap_policy(policy),
                                              spec.sweep.engine.formulation,
                                              spec.sweep.engine.fuel);
        degraded_schedulable = degraded.schedulable;
        degraded_wcrt = max_response(degraded);
        o.degraded_schedulable.push_back(degraded_schedulable);
        o.degraded_wcrt.push_back(degraded_wcrt);
      }

      an_span.stop();
      {
        const obs::Span sim_span(m.simulate);
        s = simulate_policy(sim, sc, policy, spec.replications, &per_stream_max);
      }
      o.sim.observed_max.push_back(s.observed_max);
      o.sim.observed_p99.push_back(s.observed_p99);
      o.sim.released.push_back(s.released);
      o.sim.completed.push_back(s.completed);
      o.sim.misses.push_back(s.misses);
      o.sim.dropped.push_back(s.dropped);

      // Per-stream consistency: every bounded reference response (degraded
      // under faults) must dominate that stream's observed max across all
      // replications.
      const profibus::NetworkAnalysis& ref = faulted ? degraded : a.detail;
      violations = 0;
      for (std::size_t k = 0; k < ref.masters.size(); ++k) {
        for (std::size_t si = 0; si < ref.masters[k].streams.size(); ++si) {
          const Ticks bound = ref.masters[k].streams[si].response;
          if (bound != kNoBound && per_stream_max[k][si] > bound) ++violations;
        }
      }
      o.bound_violations.push_back(violations);
      if (cache != nullptr) {
        m.cache_misses.add(1);
        cache->store(key, encode_combined_record(faulted, o.sim.horizon, a.schedulable, wcrt,
                                                 violations, s, degraded_schedulable,
                                                 degraded_wcrt));
      }
    }
    engine.forget(sc.id);
  };
  run_scenarios(spec.sweep.total_scenarios(), range, out, per_scenario);
  out.cache_hits = m.cache_hits.value() - hits0;
  out.cache_misses = m.cache_misses.value() - misses0;

  for (const AnalysisEngine& e : engines) {
    out.memo_hits += e.memo_hits();
    out.memo_misses += e.memo_misses();
  }
  m.memo_hits.add(out.memo_hits);
  m.memo_misses.add(out.memo_misses);
  return out;
}

std::uint64_t CombinedResult::total_bound_violations() const noexcept {
  std::uint64_t n = 0;
  for (const CombinedOutcome& o : outcomes) {
    for (const std::uint64_t v : o.bound_violations) n += v;
  }
  return n;
}

std::uint64_t CombinedResult::accept_but_miss_count() const noexcept {
  std::uint64_t n = 0;
  for (const CombinedOutcome& o : outcomes) {
    // accept_basis(): degraded verdicts when the sweep ran with faults —
    // clean acceptance is not a promise the faulted run is held to.
    const std::vector<bool>& accept = o.accept_basis();
    for (std::size_t p = 0; p < accept.size(); ++p) {
      if (accept[p] && o.sim.misses[p] > 0) ++n;
    }
  }
  return n;
}

}  // namespace profisched::engine
