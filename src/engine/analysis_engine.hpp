// analysis_engine.hpp — the unified front end over the library's analyses:
// analyze(Scenario, Policy) -> Report, with per-scenario memoization of the
// computations every policy shares (T_del / T_cycle / the EDF busy periods).
//
// Running one scenario under FCFS + DM + EDF + OPA through the plain
// analyze_* entry points derives the timed-token timing four times; through
// the engine it is derived once, and the EDF offset-candidate horizon is
// likewise reused. The engine is deliberately NOT thread-safe: the sweep
// runner gives each worker its own instance (scenario memo state is cheap).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/formulation.hpp"
#include "engine/scenario.hpp"
#include "profibus/dispatching.hpp"
#include "profibus/priority_assignment.hpp"

namespace profisched::engine {

/// Outcome of one (scenario, policy) analysis.
struct Report {
  Policy policy = Policy::Fcfs;
  bool schedulable = false;
  Ticks tcycle = 0;                ///< uniform eq.-14 bound used
  Ticks tdel = 0;                  ///< worst-case token lateness (eq. 13)
  std::size_t n_streams = 0;       ///< HP streams across the ring
  std::size_t streams_meeting = 0; ///< streams whose R <= D
  /// min over streams of D − R; kNoBound when there are no streams, and
  /// negative (or very negative) when some stream misses / diverges.
  Ticks worst_slack = kNoBound;
  profibus::NetworkAnalysis detail;  ///< per-master, per-stream bounds
};

/// Tuning knobs shared by every analysis the engine dispatches.
struct EngineOptions {
  profibus::TcycleMethod method = profibus::TcycleMethod::PaperEq13;
  Formulation formulation = Formulation::PaperLiteral;
  int fuel = 1 << 16;
};

class AnalysisEngine {
 public:
  AnalysisEngine() = default;
  explicit AnalysisEngine(EngineOptions opt) : opt_(opt) {}

  /// Analyze one scenario under one policy. Timing facts (and, for EDF, the
  /// busy-period horizons) are memoized per Scenario::id, so analysing the
  /// same scenario under several policies shares them.
  [[nodiscard]] Report analyze(const Scenario& sc, Policy policy);

  /// Cross-policy batch: analyze one scenario under every listed policy,
  /// validating the network, fingerprinting it and binding the scenario memo
  /// exactly once instead of once per policy. Reports are identical to
  /// calling analyze() per policy in the same order — this is the sweep
  /// runner's per-scenario entry point.
  [[nodiscard]] std::vector<Report> analyze_all(const Scenario& sc,
                                                std::span<const Policy> policies);

  /// The memoized timing facts for a scenario (computing them on first use).
  [[nodiscard]] const profibus::TimingMemo& timing(const Scenario& sc);

  /// Drop one scenario's memo (the sweep runner calls this when a scenario's
  /// last policy has run, keeping the map O(1) per worker).
  void forget(std::uint64_t scenario_id) { memo_.erase(scenario_id); }
  void clear() { memo_.clear(); }

  [[nodiscard]] std::size_t memo_size() const noexcept { return memo_.size(); }
  [[nodiscard]] std::size_t memo_hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t memo_misses() const noexcept { return misses_; }
  [[nodiscard]] const EngineOptions& options() const noexcept { return opt_; }

 private:
  struct Memo {
    profibus::TimingMemo timing;
    std::optional<std::vector<Ticks>> edf_busy;
    // Guard against id collisions between structurally different scenarios.
    std::size_t n_streams = 0;
    Ticks ttr = 0;
    Ticks fingerprint = 0;  ///< Σ(Ch + T + D) over streams
  };

  Memo& memo_for(const Scenario& sc);
  Report analyze_with(const Scenario& sc, Policy policy, Memo& m);

  EngineOptions opt_;
  std::unordered_map<std::uint64_t, Memo> memo_;
  /// Reused by every analysis this engine dispatches; engines are per-worker
  /// (deliberately not thread-safe), so one scratch serves the whole sweep
  /// without steady-state allocations in the DM/EDF kernels.
  profibus::AnalysisScratch scratch_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace profisched::engine
