#include "engine/aggregate.hpp"

#include <stdexcept>

#include "engine/detail/serialize.hpp"

namespace profisched::engine {

using detail::fmt_double;
using detail::JsonCursor;
using detail::split;
using detail::to_double;
using detail::to_size;

namespace {

/// Masters-axis detection for the serialized layouts: any point with an
/// explicit ring size switches every row to the extended column set (mixed
/// rows would be unparseable).
bool curves_have_masters(const std::vector<CurvePoint>& points) {
  for (const CurvePoint& pt : points) {
    if (pt.n_masters != 0) return true;
  }
  return false;
}

}  // namespace

std::string SweepCurves::to_csv() const {
  const bool masters = curves_have_masters(points);
  std::string out = masters ? "u,beta_lo,beta_hi,masters,scenarios,policy,schedulable,ratio\n"
                            : "u,beta_lo,beta_hi,scenarios,policy,schedulable,ratio\n";
  for (const CurvePoint& pt : points) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      out += fmt_double(pt.total_u) + ',' + fmt_double(pt.beta_lo) + ',' +
             fmt_double(pt.beta_hi) + ',';
      if (masters) out += std::to_string(pt.n_masters) + ',';
      out += std::to_string(pt.scenarios) + ',' + policies[p] + ',' +
             std::to_string(pt.schedulable[p]) + ',' + fmt_double(pt.ratio(p)) + '\n';
    }
  }
  return out;
}

SweepCurves SweepCurves::from_csv(const std::string& csv) {
  SweepCurves out;
  std::istringstream is(csv);
  std::string line;
  if (!std::getline(is, line)) {
    throw std::invalid_argument("SweepCurves: missing/short CSV header");
  }
  // The header's column count selects the layout: 7 = classic, 8 = extended
  // with the masters axis column after beta_hi.
  const std::size_t n_cols = split(line, ',').size();
  if (n_cols != 7 && n_cols != 8) {
    throw std::invalid_argument("SweepCurves: missing/short CSV header");
  }
  const bool masters = n_cols == 8;
  // Which policies the current (last) point already has a row for. A repeated
  // policy starts a new point even when the grid keys repeat — distinct grid
  // points may share (u, beta) values, so key equality alone cannot merge.
  std::vector<bool> filled;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> cells = split(line, ',');
    if (cells.size() != n_cols) {
      throw std::invalid_argument("SweepCurves: bad CSV row '" + line + "'");
    }
    const double u = to_double(cells[0]);
    const double blo = to_double(cells[1]);
    const double bhi = to_double(cells[2]);
    const std::size_t nm = masters ? to_size(cells[3]) : 0;
    const std::size_t base = masters ? 4 : 3;
    const std::size_t scenarios = to_size(cells[base]);
    const std::string& policy = cells[base + 1];
    const std::size_t sched = to_size(cells[base + 2]);

    std::size_t p = 0;
    while (p < out.policies.size() && out.policies[p] != policy) ++p;
    if (p == out.policies.size()) out.policies.push_back(policy);

    const bool same_key = !out.points.empty() && out.points.back().total_u == u &&
                          out.points.back().beta_lo == blo &&
                          out.points.back().beta_hi == bhi &&
                          out.points.back().n_masters == nm;
    if (!same_key || (p < filled.size() && filled[p])) {
      out.points.push_back(CurvePoint{u, blo, bhi, nm, scenarios, {}});
      filled.assign(out.policies.size(), false);
    }
    CurvePoint& pt = out.points.back();
    pt.schedulable.resize(out.policies.size(), 0);
    filled.resize(out.policies.size(), false);
    pt.schedulable[p] = sched;
    filled[p] = true;
  }
  for (CurvePoint& pt : out.points) pt.schedulable.resize(out.policies.size(), 0);
  return out;
}

std::string SweepCurves::to_json() const {
  const bool masters = curves_have_masters(points);
  std::string out = "{\n  \"policies\": [";
  for (std::size_t p = 0; p < policies.size(); ++p) {
    out += (p == 0 ? "" : ", ");
    out += '"' + policies[p] + '"';
  }
  out += "],\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const CurvePoint& pt = points[i];
    out += "    {\"u\": " + fmt_double(pt.total_u) + ", \"beta_lo\": " + fmt_double(pt.beta_lo) +
           ", \"beta_hi\": " + fmt_double(pt.beta_hi);
    if (masters) out += ", \"masters\": " + std::to_string(pt.n_masters);
    out += ", \"scenarios\": " + std::to_string(pt.scenarios) + ", \"schedulable\": {";
    for (std::size_t p = 0; p < policies.size(); ++p) {
      out += (p == 0 ? "" : ", ");
      out += '"' + policies[p] + "\": " + std::to_string(pt.schedulable[p]);
    }
    out += "}}";
    out += (i + 1 < points.size() ? ",\n" : "\n");
  }
  out += "  ]\n}\n";
  return out;
}

SweepCurves SweepCurves::from_json(const std::string& json) {
  SweepCurves out;
  JsonCursor c(json);
  c.expect('{');
  c.key("policies");
  c.expect('[');
  if (!c.peek(']')) {
    for (;;) {
      out.policies.push_back(c.string());
      if (!c.peek(',')) break;
      c.expect(',');
    }
  }
  c.expect(']');
  c.expect(',');
  c.key("points");
  c.expect('[');
  if (!c.peek(']')) {
    for (;;) {
      CurvePoint pt;
      c.expect('{');
      c.key("u");
      pt.total_u = c.number();
      c.expect(',');
      c.key("beta_lo");
      pt.beta_lo = c.number();
      c.expect(',');
      c.key("beta_hi");
      pt.beta_hi = c.number();
      c.expect(',');
      if (c.try_key("masters")) {
        pt.n_masters = static_cast<std::size_t>(c.number());
        c.expect(',');
      }
      c.key("scenarios");
      pt.scenarios = static_cast<std::size_t>(c.number());
      c.expect(',');
      c.key("schedulable");
      c.expect('{');
      pt.schedulable.assign(out.policies.size(), 0);
      if (!c.peek('}')) {
        for (;;) {
          const std::string policy = c.string();
          c.expect(':');
          const auto count = static_cast<std::size_t>(c.number());
          std::size_t p = 0;
          while (p < out.policies.size() && out.policies[p] != policy) ++p;
          if (p == out.policies.size()) {
            throw std::invalid_argument("SweepCurves: unknown policy '" + policy +
                                        "' in point");
          }
          pt.schedulable[p] = count;
          if (!c.peek(',')) break;
          c.expect(',');
        }
      }
      c.expect('}');
      c.expect('}');
      out.points.push_back(std::move(pt));
      if (!c.peek(',')) break;
      c.expect(',');
    }
  }
  c.expect(']');
  c.expect('}');
  return out;
}

std::vector<std::size_t> count_exclusive(const SweepSpec& spec, const SweepResult& result,
                                         Policy yes, Policy no) {
  const auto index_of = [&](Policy p) {
    for (std::size_t i = 0; i < spec.policies.size(); ++i) {
      if (spec.policies[i] == p) return i;
    }
    throw std::invalid_argument(std::string("count_exclusive: policy ") +
                                std::string(to_string(p)) + " not in the sweep");
  };
  const std::size_t yi = index_of(yes);
  const std::size_t ni = index_of(no);
  std::vector<std::size_t> out(spec.points.size(), 0);
  for (const ScenarioOutcome& o : result.outcomes) {
    if (o.schedulable[yi] && !o.schedulable[ni]) ++out[o.point];
  }
  return out;
}

SweepCurves aggregate(const SweepSpec& spec, const SweepResult& result) {
  SweepCurves out;
  out.policies.reserve(spec.policies.size());
  for (const Policy p : spec.policies) out.policies.emplace_back(to_string(p));

  out.points.resize(spec.points.size());
  for (std::size_t i = 0; i < spec.points.size(); ++i) {
    out.points[i].total_u = spec.points[i].total_u;
    out.points[i].beta_lo = spec.points[i].beta_lo;
    out.points[i].beta_hi = spec.points[i].beta_hi;
    out.points[i].n_masters = spec.points[i].n_masters;
    out.points[i].schedulable.assign(spec.policies.size(), 0);
  }
  for (const ScenarioOutcome& o : result.outcomes) {
    CurvePoint& pt = out.points[o.point];
    ++pt.scenarios;
    for (std::size_t p = 0; p < o.schedulable.size(); ++p) {
      if (o.schedulable[p]) ++pt.schedulable[p];
    }
  }
  return out;
}

}  // namespace profisched::engine
