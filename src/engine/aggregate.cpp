#include "engine/aggregate.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace profisched::engine {

namespace {

// std::to_chars / from_chars, not printf/strtod: the serialized formats must
// not bend to the host's LC_NUMERIC (a ',' decimal separator would corrupt
// both the CSV column count and the JSON grammar).
std::string fmt_double(double v) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v, std::chars_format::fixed, 6);
  return ec == std::errc{} ? std::string(buf, end) : std::string("nan");
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::string cell;
  std::istringstream is(line);
  while (std::getline(is, cell, sep)) out.push_back(cell);
  return out;
}

double to_double(const std::string& s) {
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr == s.data()) {
    throw std::invalid_argument("SweepCurves: bad number '" + s + "'");
  }
  return v;
}

std::size_t to_size(const std::string& s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str()) throw std::invalid_argument("SweepCurves: bad count '" + s + "'");
  return static_cast<std::size_t>(v);
}

/// Cursor over the engine's own JSON output. Handles exactly the grammar
/// to_json emits (objects, arrays, strings without escapes, numbers).
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      throw std::invalid_argument(std::string("SweepCurves: expected '") + c + "' at offset " +
                                  std::to_string(pos_));
    }
    ++pos_;
  }

  [[nodiscard]] bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  [[nodiscard]] std::string string() {
    expect('"');
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
    if (pos_ >= text_.size()) throw std::invalid_argument("SweepCurves: unterminated string");
    return text_.substr(start, pos_++ - start);
  }

  [[nodiscard]] double number() {
    skip_ws();
    double v = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + pos_, text_.data() + text_.size(), v);
    if (ec != std::errc{} || ptr == text_.data() + pos_) {
      throw std::invalid_argument("SweepCurves: expected number at offset " +
                                  std::to_string(pos_));
    }
    pos_ = static_cast<std::size_t>(ptr - text_.data());
    return v;
  }

  void key(const char* name) {
    const std::string k = string();
    if (k != name) {
      throw std::invalid_argument(std::string("SweepCurves: expected key '") + name +
                                  "', got '" + k + "'");
    }
    expect(':');
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string SweepCurves::to_csv() const {
  std::string out = "u,beta_lo,beta_hi,scenarios,policy,schedulable,ratio\n";
  for (const CurvePoint& pt : points) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      out += fmt_double(pt.total_u) + ',' + fmt_double(pt.beta_lo) + ',' +
             fmt_double(pt.beta_hi) + ',' + std::to_string(pt.scenarios) + ',' + policies[p] +
             ',' + std::to_string(pt.schedulable[p]) + ',' + fmt_double(pt.ratio(p)) + '\n';
    }
  }
  return out;
}

SweepCurves SweepCurves::from_csv(const std::string& csv) {
  SweepCurves out;
  std::istringstream is(csv);
  std::string line;
  if (!std::getline(is, line) || split(line, ',').size() != 7) {
    throw std::invalid_argument("SweepCurves: missing/short CSV header");
  }
  // Which policies the current (last) point already has a row for. A repeated
  // policy starts a new point even when the grid keys repeat — distinct grid
  // points may share (u, beta) values, so key equality alone cannot merge.
  std::vector<bool> filled;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> cells = split(line, ',');
    if (cells.size() != 7) {
      throw std::invalid_argument("SweepCurves: bad CSV row '" + line + "'");
    }
    const double u = to_double(cells[0]);
    const double blo = to_double(cells[1]);
    const double bhi = to_double(cells[2]);
    const std::size_t scenarios = to_size(cells[3]);
    const std::string& policy = cells[4];
    const std::size_t sched = to_size(cells[5]);

    std::size_t p = 0;
    while (p < out.policies.size() && out.policies[p] != policy) ++p;
    if (p == out.policies.size()) out.policies.push_back(policy);

    const bool same_key = !out.points.empty() && out.points.back().total_u == u &&
                          out.points.back().beta_lo == blo &&
                          out.points.back().beta_hi == bhi;
    if (!same_key || (p < filled.size() && filled[p])) {
      out.points.push_back(CurvePoint{u, blo, bhi, scenarios, {}});
      filled.assign(out.policies.size(), false);
    }
    CurvePoint& pt = out.points.back();
    pt.schedulable.resize(out.policies.size(), 0);
    filled.resize(out.policies.size(), false);
    pt.schedulable[p] = sched;
    filled[p] = true;
  }
  for (CurvePoint& pt : out.points) pt.schedulable.resize(out.policies.size(), 0);
  return out;
}

std::string SweepCurves::to_json() const {
  std::string out = "{\n  \"policies\": [";
  for (std::size_t p = 0; p < policies.size(); ++p) {
    out += (p == 0 ? "" : ", ");
    out += '"' + policies[p] + '"';
  }
  out += "],\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const CurvePoint& pt = points[i];
    out += "    {\"u\": " + fmt_double(pt.total_u) + ", \"beta_lo\": " + fmt_double(pt.beta_lo) +
           ", \"beta_hi\": " + fmt_double(pt.beta_hi) +
           ", \"scenarios\": " + std::to_string(pt.scenarios) + ", \"schedulable\": {";
    for (std::size_t p = 0; p < policies.size(); ++p) {
      out += (p == 0 ? "" : ", ");
      out += '"' + policies[p] + "\": " + std::to_string(pt.schedulable[p]);
    }
    out += "}}";
    out += (i + 1 < points.size() ? ",\n" : "\n");
  }
  out += "  ]\n}\n";
  return out;
}

SweepCurves SweepCurves::from_json(const std::string& json) {
  SweepCurves out;
  JsonCursor c(json);
  c.expect('{');
  c.key("policies");
  c.expect('[');
  if (!c.peek(']')) {
    for (;;) {
      out.policies.push_back(c.string());
      if (!c.peek(',')) break;
      c.expect(',');
    }
  }
  c.expect(']');
  c.expect(',');
  c.key("points");
  c.expect('[');
  if (!c.peek(']')) {
    for (;;) {
      CurvePoint pt;
      c.expect('{');
      c.key("u");
      pt.total_u = c.number();
      c.expect(',');
      c.key("beta_lo");
      pt.beta_lo = c.number();
      c.expect(',');
      c.key("beta_hi");
      pt.beta_hi = c.number();
      c.expect(',');
      c.key("scenarios");
      pt.scenarios = static_cast<std::size_t>(c.number());
      c.expect(',');
      c.key("schedulable");
      c.expect('{');
      pt.schedulable.assign(out.policies.size(), 0);
      if (!c.peek('}')) {
        for (;;) {
          const std::string policy = c.string();
          c.expect(':');
          const auto count = static_cast<std::size_t>(c.number());
          std::size_t p = 0;
          while (p < out.policies.size() && out.policies[p] != policy) ++p;
          if (p == out.policies.size()) {
            throw std::invalid_argument("SweepCurves: unknown policy '" + policy +
                                        "' in point");
          }
          pt.schedulable[p] = count;
          if (!c.peek(',')) break;
          c.expect(',');
        }
      }
      c.expect('}');
      c.expect('}');
      out.points.push_back(std::move(pt));
      if (!c.peek(',')) break;
      c.expect(',');
    }
  }
  c.expect(']');
  c.expect('}');
  return out;
}

std::vector<std::size_t> count_exclusive(const SweepSpec& spec, const SweepResult& result,
                                         Policy yes, Policy no) {
  const auto index_of = [&](Policy p) {
    for (std::size_t i = 0; i < spec.policies.size(); ++i) {
      if (spec.policies[i] == p) return i;
    }
    throw std::invalid_argument(std::string("count_exclusive: policy ") +
                                std::string(to_string(p)) + " not in the sweep");
  };
  const std::size_t yi = index_of(yes);
  const std::size_t ni = index_of(no);
  std::vector<std::size_t> out(spec.points.size(), 0);
  for (const ScenarioOutcome& o : result.outcomes) {
    if (o.schedulable[yi] && !o.schedulable[ni]) ++out[o.point];
  }
  return out;
}

SweepCurves aggregate(const SweepSpec& spec, const SweepResult& result) {
  SweepCurves out;
  out.policies.reserve(spec.policies.size());
  for (const Policy p : spec.policies) out.policies.emplace_back(to_string(p));

  out.points.resize(spec.points.size());
  for (std::size_t i = 0; i < spec.points.size(); ++i) {
    out.points[i].total_u = spec.points[i].total_u;
    out.points[i].beta_lo = spec.points[i].beta_lo;
    out.points[i].beta_hi = spec.points[i].beta_hi;
    out.points[i].schedulable.assign(spec.policies.size(), 0);
  }
  for (const ScenarioOutcome& o : result.outcomes) {
    CurvePoint& pt = out.points[o.point];
    ++pt.scenarios;
    for (std::size_t p = 0; p < o.schedulable.size(); ++p) {
      if (o.schedulable[p]) ++pt.schedulable[p];
    }
  }
  return out;
}

}  // namespace profisched::engine
