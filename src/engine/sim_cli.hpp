// sim_cli.hpp — argument parsing for the `profisched simulate` sweep mode,
// kept in the library (rather than the CLI translation unit) so the argument
// validation is unit-testable: tests/engine/test_sim_cli.cpp feeds it the
// same argv slices the tool does. The strict scalar parsers every subcommand
// shares live in engine/detail/cli_parse.hpp.
#pragma once

#include <string>
#include <vector>

#include "engine/detail/cli_parse.hpp"
#include "engine/sweep_runner.hpp"

namespace profisched::engine {

/// Everything `profisched simulate` (sweep mode) needs beyond the spec.
struct SimSweepCli {
  SimSweepSpec spec;
  unsigned threads = 0;  ///< 0 = auto
  bool combined = false; ///< also analyse; emit joined consistency rows
  std::string csv_path;
  std::string json_path;
  std::string cache_dir;     ///< --cache DIR: persistent scenario-result cache
  std::string metrics_path;  ///< --metrics FILE: metrics + run-manifest JSON sidecar
  bool progress = false;     ///< --progress: stderr heartbeat while scenarios run
};

/// Parse the flags after `profisched simulate` into `out`. Returns true on
/// success; on failure returns false with a one-line diagnostic in `error`
/// (never throws). Accepted flags:
///   --scenarios N  --reps N  --masters N[,N,...]  --streams N
///   --u LO:HI:STEPS  --beta LO:HI:STEPS  --beta-lo X  --beta-hi X
///   --split w1,...,wK  --skew S
///   --policies fcfs,dm,edf  --threads N  --seed N  --ttr TICKS
///   --horizon TICKS  --cycles X  --model worst|uniform|frame
///   --quantile Q  --lp  --combined  --csv FILE  --json FILE  --cache DIR
///   --metrics FILE  --progress
///   --faults k=v[,k=v...]   with keys
///     loss=P (token-loss probability), recovery=TICKS, corrupt=P (frame
///     corruption probability), retrans=N (retransmission cap), churn=P
///     (per-pass leave probability), offline=TICKS, burst=C (release
///     correlation in [0,1])
/// Fault knobs feed SimOptions::faults (see profibus/fault_model.hpp);
/// `--faults loss=0,...` with every knob at zero is exactly the flag's
/// absence — outputs stay byte-identical to a fault-free invocation.
/// Grid validation and the u × beta × masters cross-product expansion are
/// shared with every other sweep-style subcommand via
/// engine/detail/cli_parse.hpp (expand_cli_grid).
/// `simulable_only` keeps --policies restricted to the AP-queue policies the
/// simulator implements (the simulate subcommand's rule); `profisched shard
/// --mode sweep` relaxes it to the full analysis-policy table.
[[nodiscard]] bool parse_sim_sweep_args(const std::vector<std::string>& args, SimSweepCli& out,
                                        std::string& error, bool simulable_only = true);

}  // namespace profisched::engine
