// sim_cli.hpp — argument parsing for the `profisched simulate` sweep mode,
// kept in the library (rather than the CLI translation unit) so the argument
// validation is unit-testable: tests/engine/test_sim_cli.cpp feeds it the
// same argv slices the tool does.
#pragma once

#include <string>
#include <vector>

#include "engine/sweep_runner.hpp"

namespace profisched::engine {

/// Everything `profisched simulate` (sweep mode) needs beyond the spec.
struct SimSweepCli {
  SimSweepSpec spec;
  unsigned threads = 0;  ///< 0 = auto
  bool combined = false; ///< also analyse; emit joined consistency rows
  std::string csv_path;
  std::string json_path;
};

/// Parse the flags after `profisched simulate` into `out`. Returns true on
/// success; on failure returns false with a one-line diagnostic in `error`
/// (never throws). Accepted flags:
///   --scenarios N  --reps N  --masters N  --streams N
///   --u LO:HI:STEPS  --beta-lo X  --beta-hi X
///   --policies fcfs,dm,edf  --threads N  --seed N  --ttr TICKS
///   --horizon TICKS  --cycles X  --model worst|uniform|frame
///   --lp  --combined  --csv FILE  --json FILE
[[nodiscard]] bool parse_sim_sweep_args(const std::vector<std::string>& args, SimSweepCli& out,
                                        std::string& error);

// Strict full-string scalar parses shared by every profisched subcommand:
// reject trailing garbage, negatives and overflow, and bound each value to
// its sane range (atoll's silent 0 / wraparound turned typos into
// pathological sweeps).

[[nodiscard]] bool parse_cli_count(const std::string& s, std::size_t& out,
                                   std::size_t max = std::size_t(-1));

[[nodiscard]] bool parse_cli_nonneg_double(const std::string& s, double& out);

/// Comma-separated policy names (duplicates rejected — the serialized column
/// formats key on unique policy names). `simulable_only` restricts the table
/// to the AP-queue policies the simulator implements; otherwise every
/// analysis Policy name is accepted (fcfs,dm,edf,opa,token,holistic).
[[nodiscard]] bool parse_cli_policies(const std::string& list, bool simulable_only,
                                      std::vector<Policy>& out);

}  // namespace profisched::engine
