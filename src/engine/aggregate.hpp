// aggregate.hpp — reduce per-scenario sweep outcomes into schedulability-
// ratio curves and serialize them as CSV / JSON. Both formats parse back
// (from_csv / from_json) so downstream tooling — and the round-trip tests —
// can consume what the engine emits.
#pragma once

#include <string>
#include <vector>

#include "engine/sweep_runner.hpp"

namespace profisched::engine {

/// One grid point of the aggregated curves: how many of the point's
/// scenarios each policy schedules.
struct CurvePoint {
  double total_u = 0.0;
  double beta_lo = 1.0;
  double beta_hi = 1.0;
  /// Ring-size axis value (SweepPoint::n_masters); 0 = no masters axis. When
  /// any point carries a non-zero value the serialized formats add their
  /// `masters` column — otherwise they stay byte-identical to the classic
  /// single-structure layout.
  std::size_t n_masters = 0;
  std::size_t scenarios = 0;
  std::vector<std::size_t> schedulable;  ///< indexed like SweepCurves::policies

  [[nodiscard]] double ratio(std::size_t policy) const {
    return scenarios == 0 ? 0.0
                          : static_cast<double>(schedulable[policy]) /
                                static_cast<double>(scenarios);
  }
};

/// Schedulability-ratio curves: one CurvePoint per sweep point, one series
/// per policy.
struct SweepCurves {
  std::vector<std::string> policies;  ///< series names (to_string(Policy))
  std::vector<CurvePoint> points;

  /// CSV: one row per (point, policy):
  ///   u,beta_lo,beta_hi,scenarios,policy,schedulable,ratio
  /// With a masters axis (any point's n_masters != 0) a `masters` column is
  /// inserted after beta_hi; without one the classic 7-column layout is
  /// emitted unchanged.
  [[nodiscard]] std::string to_csv() const;

  /// JSON object {"policies": [...], "points": [{..., "schedulable": {...}}]}.
  /// Points gain a "masters" key exactly when the CSV gains its column.
  [[nodiscard]] std::string to_json() const;

  /// Parse what to_csv emitted — either layout, keyed on the header's column
  /// count. Throws std::invalid_argument on malformed input. The derived
  /// `ratio` column is ignored (recomputed on demand).
  [[nodiscard]] static SweepCurves from_csv(const std::string& csv);

  /// Parse what to_json emitted (a minimal reader for exactly that shape —
  /// not a general JSON parser). Throws std::invalid_argument on mismatch.
  [[nodiscard]] static SweepCurves from_json(const std::string& json);
};

/// Reduce a sweep's outcomes against the spec that produced them.
[[nodiscard]] SweepCurves aggregate(const SweepSpec& spec, const SweepResult& result);

/// Per-point count of scenarios schedulable under `yes` but NOT under `no`
/// (the "X-only" columns of the comparison benches). Policies are looked up
/// by value in spec.policies; throws std::invalid_argument if either was not
/// part of the sweep.
[[nodiscard]] std::vector<std::size_t> count_exclusive(const SweepSpec& spec,
                                                       const SweepResult& result, Policy yes,
                                                       Policy no);

}  // namespace profisched::engine
