#include "engine/sim_cli.hpp"

#include <exception>

namespace profisched::engine {

namespace {

// `--faults key=val[,key=val...]` — the single-flag surface for the whole
// FaultModel, so shell quoting stays trivial and shard specs can forward the
// verbatim string. Validation (probability ranges, sign) is deferred to
// FaultModel::validate() so the CLI and the library reject identically.
bool parse_cli_faults(const std::string& v, profibus::FaultModel& out, std::string& error) {
  const auto fail = [&](const std::string& msg) {
    error = "--faults: " + msg;
    return false;
  };
  std::size_t pos = 0;
  while (pos < v.size()) {
    const std::size_t comma = v.find(',', pos);
    const std::string item = v.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? v.size() : comma + 1;
    // A comma with nothing after it would otherwise fall out of the loop
    // silently; treat it as the empty entry it is.
    if (comma != std::string::npos && pos >= v.size()) {
      return fail("expected key=value, got ''");
    }
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
      return fail("expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    double d = 0.0;
    std::size_t count = 0;
    if (key == "loss") {
      if (!parse_cli_nonneg_double(val, d)) return fail("loss needs a probability in [0, 1]");
      out.token_loss_prob = d;
    } else if (key == "recovery") {
      if (!parse_cli_count(val, count, 1'000'000'000'000ULL)) {
        return fail("recovery needs a tick count");
      }
      out.token_recovery = static_cast<Ticks>(count);
    } else if (key == "corrupt") {
      if (!parse_cli_nonneg_double(val, d)) return fail("corrupt needs a probability in [0, 1]");
      out.corruption_prob = d;
    } else if (key == "retrans") {
      if (!parse_cli_count(val, count, 1'000)) return fail("retrans needs an integer in [0, 1000]");
      out.max_retransmissions = static_cast<int>(count);
    } else if (key == "churn") {
      if (!parse_cli_nonneg_double(val, d)) return fail("churn needs a probability in [0, 1]");
      out.churn_prob = d;
    } else if (key == "offline") {
      if (!parse_cli_count(val, count, 1'000'000'000'000ULL)) {
        return fail("offline needs a tick count");
      }
      out.churn_offline = static_cast<Ticks>(count);
    } else if (key == "burst") {
      if (!parse_cli_nonneg_double(val, d)) return fail("burst needs a correlation in [0, 1]");
      out.burst_correlation = d;
    } else {
      return fail("unknown key '" + key +
                  "' (expected loss, recovery, corrupt, retrans, churn, offline, burst)");
    }
  }
  try {
    out.validate();
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  return true;
}

}  // namespace

bool parse_sim_sweep_args(const std::vector<std::string>& args, SimSweepCli& out,
                          std::string& error, bool simulable_only) {
  SimSweepCli cli;
  cli.spec.sweep.base.n_masters = 1;
  cli.spec.sweep.base.streams_per_master = 5;
  cli.spec.sweep.base.ttr = 3'000;
  cli.spec.sweep.scenarios_per_point = 100;
  cli.spec.sweep.policies = {Policy::Fcfs, Policy::Dm, Policy::Edf};
  GridCliArgs grid;

  const auto fail = [&](const std::string& msg) {
    error = msg;
    return false;
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto next = [&](std::string& v) {
      if (i + 1 >= args.size()) return false;
      v = args[++i];
      return true;
    };
    std::string v;
    std::size_t count = 0;
    if (arg == "--scenarios") {
      if (!next(v) || !parse_cli_count(v, cli.spec.sweep.scenarios_per_point, 100'000'000) ||
          cli.spec.sweep.scenarios_per_point == 0) {
        return fail("--scenarios needs an integer in [1, 1e8]");
      }
    } else if (arg == "--reps") {
      if (!next(v) || !parse_cli_count(v, cli.spec.replications, 10'000) ||
          cli.spec.replications == 0) {
        return fail("--reps needs an integer in [1, 10000]");
      }
    } else if (arg == "--masters") {
      if (!next(v) || v.empty()) {
        return fail("--masters needs a comma list of integers in [1, 4096]");
      }
      grid.masters = v;
    } else if (arg == "--split") {
      if (!next(v) || v.empty()) return fail("--split needs a comma list of weights");
      grid.split = v;
    } else if (arg == "--skew") {
      if (!next(v) || v.empty()) return fail("--skew needs a number >= 0");
      grid.skew = v;
    } else if (arg == "--streams") {
      if (!next(v) || !parse_cli_count(v, cli.spec.sweep.base.streams_per_master, 4'096) ||
          cli.spec.sweep.base.streams_per_master == 0) {
        return fail("--streams needs an integer in [1, 4096]");
      }
    } else if (arg == "--u") {
      if (!next(v) || v.empty()) {
        return fail("--u needs LO:HI:STEPS with numeric LO/HI and integer STEPS");
      }
      grid.u = v;
    } else if (arg == "--beta") {
      if (!next(v) || v.empty()) {
        return fail("--beta needs LO:HI:STEPS with numeric LO/HI and integer STEPS");
      }
      grid.beta = v;
    } else if (arg == "--beta-lo") {
      if (!next(v) || v.empty()) return fail("--beta-lo needs a number >= 0");
      grid.beta_lo = v;
    } else if (arg == "--beta-hi") {
      if (!next(v) || v.empty()) return fail("--beta-hi needs a number >= 0");
      grid.beta_hi = v;
    } else if (arg == "--policies") {
      if (!next(v) || !parse_cli_policies(v, simulable_only, cli.spec.sweep.policies)) {
        return fail(simulable_only
                        ? "--policies needs a comma list drawn from fcfs,dm,edf (no duplicates)"
                        : "--policies needs a comma list drawn from fcfs,dm,edf,opa,token,"
                          "holistic (no duplicates)");
      }
    } else if (arg == "--threads") {
      if (!next(v) || !parse_cli_count(v, count, 1'024)) {
        return fail("--threads needs an integer in [0, 1024]");
      }
      cli.threads = static_cast<unsigned>(count);
    } else if (arg == "--seed") {
      if (!next(v) || !parse_cli_count(v, count)) return fail("--seed needs a non-negative integer");
      cli.spec.sweep.seed = count;
    } else if (arg == "--ttr") {
      if (!next(v) || !parse_cli_count(v, count, 1'000'000'000'000'000ULL)) {
        return fail("--ttr needs a tick count");
      }
      cli.spec.sweep.base.ttr = static_cast<Ticks>(count);
    } else if (arg == "--horizon") {
      if (!next(v) || !parse_cli_count(v, count, 1'000'000'000'000ULL) || count == 0) {
        return fail("--horizon needs a tick count >= 1");
      }
      cli.spec.sim.horizon = static_cast<Ticks>(count);
    } else if (arg == "--cycles") {
      double cycles = 0.0;
      if (!next(v) || !parse_cli_nonneg_double(v, cycles) || cycles <= 0) {
        return fail("--cycles needs a number > 0");
      }
      cli.spec.sim.horizon_cycles = cycles;
    } else if (arg == "--model") {
      if (!next(v)) return fail("--model needs worst|uniform|frame");
      if (v == "worst") {
        cli.spec.sim.cycle_model.kind = sim::CycleModel::Kind::WorstCase;
      } else if (v == "uniform") {
        cli.spec.sim.cycle_model.kind = sim::CycleModel::Kind::UniformFraction;
      } else if (v == "frame") {
        cli.spec.sim.cycle_model.kind = sim::CycleModel::Kind::FrameLevel;
      } else {
        return fail("--model needs worst|uniform|frame");
      }
    } else if (arg == "--quantile") {
      double q = 0.0;
      if (!next(v) || !parse_cli_nonneg_double(v, q) || !(q > 0.0 && q <= 1.0)) {
        return fail("--quantile needs a percentile in (0, 1]");
      }
      cli.spec.sim.quantile = q;
    } else if (arg == "--faults") {
      if (!next(v) || v.empty()) {
        return fail("--faults needs key=value[,key=value...] (keys: loss, recovery, corrupt, "
                    "retrans, churn, offline, burst)");
      }
      if (!parse_cli_faults(v, cli.spec.sim.faults, error)) return false;
    } else if (arg == "--lp") {
      cli.spec.sim.lp_traffic = true;
    } else if (arg == "--combined") {
      cli.combined = true;
    } else if (arg == "--csv") {
      if (!next(v) || v.empty()) return fail("--csv needs a file path");
      cli.csv_path = v;
    } else if (arg == "--json") {
      if (!next(v) || v.empty()) return fail("--json needs a file path");
      cli.json_path = v;
    } else if (arg == "--cache") {
      if (!next(v) || v.empty()) return fail("--cache needs a directory path");
      cli.cache_dir = v;
    } else if (arg == "--metrics") {
      if (!next(v) || v.empty()) return fail("--metrics needs a file path");
      cli.metrics_path = v;
    } else if (arg == "--progress") {
      cli.progress = true;
    } else {
      return fail("unknown simulate flag '" + arg + "'");
    }
  }

  if (!expand_cli_grid(grid, cli.spec.sweep.base, cli.spec.sweep.points, error)) {
    return false;
  }
  if (cli.spec.sweep.total_scenarios() > 100'000'000) {
    return fail("sweep too large (" + std::to_string(cli.spec.sweep.total_scenarios()) +
                " scenarios); shrink the grid axes or --scenarios");
  }
  // Output destinations are checked here, before any scenario runs: a typo'd
  // directory must not cost the whole sweep.
  if (!cli.csv_path.empty() && !validate_cli_output_file(cli.csv_path, "--csv", error)) {
    return false;
  }
  if (!cli.json_path.empty() && !validate_cli_output_file(cli.json_path, "--json", error)) {
    return false;
  }
  if (!cli.metrics_path.empty() &&
      !validate_cli_output_file(cli.metrics_path, "--metrics", error)) {
    return false;
  }
  if (!cli.cache_dir.empty() && !validate_cli_output_dir(cli.cache_dir, "--cache", error)) {
    return false;
  }
  out = std::move(cli);
  error.clear();
  return true;
}

}  // namespace profisched::engine
