#include "engine/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>

namespace profisched::engine {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = std::max(1u, threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  stop();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::stop() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
}

bool ThreadPool::stopped() const {
  std::lock_guard lock(mu_);
  return stop_;
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard lock(mu_);
    // The worker loop exits once stop_ is set and the queue drains, so a job
    // accepted here would never run. The old behaviour — enqueue and silently
    // drop — turned shutdown races into vanished work; fail loudly instead.
    if (stop_) throw std::logic_error("ThreadPool: submit after stop()");
    queue_.push_back(std::move(job));
    queue_hwm_.update_max(queue_.size());
  }
  tasks_submitted_.add(1);
  cv_job_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mu_);
      cv_job_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    // Counted at dequeue, not completion: a parallel_for caller is released
    // from inside its last job (before the post-job bookkeeping here runs),
    // so completion-side counts could be snapshotted one short.
    tasks_executed_.add(1);
    const std::int64_t t0 = obs::enabled() ? obs::now_ns() : -1;
    job();
    if (t0 >= 0) task_latency_.record(static_cast<std::uint64_t>(obs::now_ns() - t0));
    {
      std::lock_guard lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, unsigned)>& fn) {
  if (n == 0) return;

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<unsigned> done_workers{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto shared = std::make_shared<Shared>();
  const auto slots = static_cast<unsigned>(std::min<std::size_t>(size(), n));

  for (unsigned slot = 0; slot < slots; ++slot) {
    submit([shared, slot, n, &fn] {
      for (;;) {
        const std::size_t i = shared->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        fn(i, slot);
      }
      {
        std::lock_guard lock(shared->mu);
        shared->done_workers.fetch_add(1, std::memory_order_release);
      }
      shared->cv.notify_one();
    });
  }

  // Wait for this call's own slots (not wait_idle: other callers may share
  // the pool).
  std::unique_lock lock(shared->mu);
  shared->cv.wait(lock, [&] { return shared->done_workers.load(std::memory_order_acquire) == slots; });
}

unsigned ThreadPool::default_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

}  // namespace profisched::engine
