// sim_aggregate.hpp — reduce simulation-sweep outcomes into observed
// acceptance curves, and join combined (analysis + simulation) outcomes into
// per-scenario consistency rows. Like engine/aggregate.hpp, every serialized
// format parses back (from_csv / from_json), so the round-trip tests and
// downstream tooling consume exactly what the engine emits.
#pragma once

#include <string>
#include <vector>

#include "engine/sweep_runner.hpp"

namespace profisched::engine {

/// One grid point of the simulated acceptance curves: per policy, how many of
/// the point's scenarios completed every replication without a deadline miss
/// (or an undelivered, dropped cycle), plus the miss/drop mass and the
/// largest observed response.
struct SimCurvePoint {
  double total_u = 0.0;
  double beta_lo = 1.0;
  double beta_hi = 1.0;
  /// Ring-size axis value (SweepPoint::n_masters); 0 = no masters axis. Any
  /// non-zero value switches the serialized formats to their extended
  /// `masters` column, exactly like SweepCurves.
  std::size_t n_masters = 0;
  std::size_t scenarios = 0;
  std::vector<std::size_t> miss_free;        ///< indexed like SimCurves::policies
  std::vector<std::uint64_t> total_misses;
  std::vector<std::uint64_t> total_dropped;
  std::vector<Ticks> max_observed;
  /// Max over the point's scenarios of the per-scenario observed percentile
  /// (SimOptions::quantile, default p99; `profisched simulate --quantile`
  /// selects it) — the tail-latency curve reported alongside the worst case.
  std::vector<Ticks> quantile_observed;

  [[nodiscard]] double ratio(std::size_t policy) const {
    return scenarios == 0 ? 0.0
                          : static_cast<double>(miss_free[policy]) /
                                static_cast<double>(scenarios);
  }
};

/// Observed (simulation) acceptance curves: one point per sweep point, one
/// series per policy.
struct SimCurves {
  std::vector<std::string> policies;
  std::vector<SimCurvePoint> points;

  /// CSV: one row per (point, policy):
  ///   u,beta_lo,beta_hi,scenarios,policy,miss_free,total_misses,total_dropped,
  ///   max_observed,quantile_observed,ratio
  /// With a masters axis a `masters` column is inserted after beta_hi;
  /// without one the classic 11-column layout is emitted unchanged.
  [[nodiscard]] std::string to_csv() const;
  /// JSON {"policies": [...], "points": [{...}]} mirroring the CSV columns
  /// (a "masters" key appears exactly when the CSV gains its column).
  [[nodiscard]] std::string to_json() const;
  /// Parse what to_csv emitted, either layout (the derived ratio column is
  /// recomputed).
  [[nodiscard]] static SimCurves from_csv(const std::string& csv);
  /// Parse what to_json emitted. Throws std::invalid_argument on mismatch.
  [[nodiscard]] static SimCurves from_json(const std::string& json);
};

/// Reduce a simulation sweep against the spec that produced it.
[[nodiscard]] SimCurves aggregate_sim(const SimSweepSpec& spec, const SimSweepResult& result);

/// One joined analysis-vs-simulation row (combined mode): a single
/// (scenario, policy) pair with the analytic verdict/bound next to the
/// observed simulation behaviour.
struct ConsistencyRow {
  std::uint64_t id = 0;
  std::uint64_t seed = 0;
  double total_u = 0.0;
  /// Grid-point provenance beyond u. Always filled by consistency_table();
  /// serialized only when the table's sweep was multi-axis (see
  /// ConsistencyTable::multi_axis).
  double beta_lo = 1.0;
  double beta_hi = 1.0;
  std::size_t n_masters = 0;  ///< 0 = no masters axis
  std::string policy;
  bool analytic_schedulable = false;
  Ticks analytic_wcrt = 0;  ///< kNoBound when some stream's iteration diverged
  /// Degraded-mode verdict/bound (fault axis only): the guarantee the faulted
  /// simulation is actually held to. Meaningful — and serialized — exactly
  /// when the table's ConsistencyTable::fault_axis is set; otherwise they keep
  /// their zero defaults.
  bool degraded_schedulable = false;
  Ticks degraded_wcrt = 0;
  Ticks observed_max = 0;
  Ticks observed_p99 = 0;
  std::uint64_t misses = 0;
  std::uint64_t completed = 0;
  std::uint64_t dropped = 0;           ///< cycles abandoned after exhausting retries
  std::uint64_t bound_violations = 0;  ///< streams with observed > bound (must be 0)
  /// The accepting analysis (degraded under faults, clean otherwise) claimed
  /// schedulability yet the simulation missed a deadline — the must-never-fire
  /// consistency flag of the suite, fault axis included.
  bool accept_but_miss = false;

  /// Bound/observed pessimism ratio; 0 when undefined (unbounded analytic
  /// WCRT or nothing observed). >= 1 whenever the analysis is sound.
  [[nodiscard]] double pessimism() const {
    if (analytic_wcrt == kNoBound || observed_max <= 0) return 0.0;
    return static_cast<double>(analytic_wcrt) / static_cast<double>(observed_max);
  }
};

/// The full joined table plus its serializations.
struct ConsistencyTable {
  std::vector<ConsistencyRow> rows;
  /// True when the producing sweep spanned more than the classic u-grid
  /// (beta axis or masters axis — engine::has_multi_axis). Switches the
  /// serialized formats to the extended beta_lo/beta_hi/masters columns;
  /// false keeps the historical layouts byte-identical. Round-trips through
  /// from_csv/from_json (keyed on the header / point grammar).
  bool multi_axis = false;
  /// True when the producing sweep ran with an active FaultModel. Adds the
  /// degraded_schedulable/degraded_wcrt columns to both formats; false keeps
  /// every zero-fault serialization byte-identical to the pre-fault layouts.
  /// Round-trips like multi_axis (header column count / JSON marker).
  bool fault_axis = false;

  /// CSV: one row per (scenario, policy):
  ///   id,seed,u,policy,analytic_schedulable,analytic_wcrt,observed_max,
  ///   observed_p99,misses,completed,dropped,bound_violations,accept_but_miss,
  ///   pessimism
  /// Multi-axis tables insert beta_lo,beta_hi,masters after u; fault-axis
  /// tables insert degraded_schedulable,degraded_wcrt after analytic_wcrt.
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::string to_json() const;
  /// Parse what to_csv emitted, either layout (the derived pessimism column
  /// is recomputed).
  [[nodiscard]] static ConsistencyTable from_csv(const std::string& csv);
  [[nodiscard]] static ConsistencyTable from_json(const std::string& json);

  /// Rows where the analysis accepted but the simulation observed a miss.
  /// A sound analysis keeps this 0 — the acceptance criterion of the suite.
  [[nodiscard]] std::size_t accept_but_miss_count() const noexcept;
  /// Total per-stream bound violations across the table (must be 0).
  [[nodiscard]] std::uint64_t total_bound_violations() const noexcept;
};

/// Join a combined run against the spec that produced it.
[[nodiscard]] ConsistencyTable consistency_table(const SimSweepSpec& spec,
                                                 const CombinedResult& result);

}  // namespace profisched::engine
