// scenario.hpp — the unit of work the batch-analysis engine operates on: one
// generated (or hand-built) PROFIBUS network plus the generation provenance
// needed to reproduce it and to aggregate results into curves.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "profibus/frame_timing.hpp"
#include "profibus/holistic.hpp"
#include "profibus/network.hpp"

namespace profisched::engine {

/// Which analysis the engine runs over a scenario. Extends the AP-queue
/// policies (profibus::ApPolicy) with the remaining analyses of the library.
enum class Policy {
  Fcfs,      ///< stock FCFS queue, eqs. 11–12
  Dm,        ///< DM-ordered AP queue, eq. 16
  Edf,       ///< EDF-ordered AP queue, eqs. 17–18
  Opa,       ///< Audsley-optimal fixed-priority AP queue
  TokenRing, ///< timed-token timing only: D_i >= T_cycle necessary condition
  Holistic,  ///< end-to-end transactions over the ring (DM messages)
};

[[nodiscard]] constexpr std::string_view to_string(Policy p) {
  switch (p) {
    case Policy::Fcfs: return "FCFS";
    case Policy::Dm: return "DM";
    case Policy::Edf: return "EDF";
    case Policy::Opa: return "OPA";
    case Policy::TokenRing: return "TOKEN";
    case Policy::Holistic: return "HOLISTIC";
  }
  return "?";
}

/// One scenario. `id` keys the engine's memo, so it must be unique within an
/// engine's lifetime (the sweep runner uses the global scenario index).
struct Scenario {
  std::uint64_t id = 0;
  std::uint64_t seed = 0;    ///< RNG seed the network was generated from
  double total_u = 0.0;      ///< UUniFast target utilization (0 = period-driven)
  double beta_lo = 1.0;      ///< deadline-spread knobs used at generation
  double beta_hi = 1.0;
  profibus::Network net;
  /// Optional end-to-end transactions for Policy::Holistic. When empty, the
  /// engine derives one single-stage transaction per stream.
  std::vector<profibus::Transaction> transactions;
  /// frame_specs[k][i] — the message-cycle frame specs behind stream i of
  /// master k (the generator's provenance for Ch). Required only by the
  /// simulation backend's FrameLevel cycle model; empty otherwise.
  std::vector<std::vector<profibus::MessageCycleSpec>> frame_specs;
};

/// Content digest of everything the analyses consume from a scenario — the
/// network structure (bus parameters, T_TR, per-master streams and
/// low-priority cycles), the holistic transactions, and the frame specs —
/// but NOT its provenance (id, seed, grid coordinates) and not the display
/// names. Two scenarios with equal canonical hashes produce identical
/// ANALYSIS results under equal engine options (analysis is a pure function
/// of the content), which is what lets the persistent result cache
/// (src/dist/result_cache.hpp) address analysis entries by content: a
/// re-sweep that regenerates the same networks hits regardless of how the
/// scenario ids shifted. Simulation outcomes additionally depend on the
/// scenario's RNG seed (the replication streams derive from it), so the
/// cache folds Scenario::seed into its simulation-record keys on top of
/// this digest. FNV-1a 64 over a length-prefixed canonical field walk,
/// stable across hosts and builds.
///
/// Multi-axis sweeps (beta / ring-size axes, asymmetric per-master splits —
/// PR 5) need no digest-version bump: every one of those knobs acts through
/// the generated CONTENT (master count, stream periods/deadlines), which the
/// field walk above already covers, and the analysis stays a pure function of
/// that content. This is load-bearing for incremental re-sweeps: extending a
/// grid with new beta values re-serves every previously computed scenario
/// from the cache (tests/engine/test_multi_axis_sweep.cpp and the CI
/// warm-cache step assert it). The committed golden-hash matrix
/// (tests/engine/test_scenario_golden_hash.cpp) fails loudly if a generator
/// or hash change ever perturbs these digests.
[[nodiscard]] std::uint64_t canonical_hash(const Scenario& sc);

}  // namespace profisched::engine
