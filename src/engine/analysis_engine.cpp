#include "engine/analysis_engine.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "profibus/edf_analysis.hpp"

namespace profisched::engine {

namespace {

using profibus::MasterAnalysis;
using profibus::NetworkAnalysis;
using profibus::StreamResponse;
using profibus::TimingMemo;

/// A NetworkAnalysis with every stream at the "no bound / miss" default —
/// what OPA reports when no fixed priority order schedules the set.
NetworkAnalysis all_miss(const profibus::Network& net, const TimingMemo& memo) {
  NetworkAnalysis na;
  na.tcycle = memo.tcycle;
  na.schedulable = false;
  na.masters.resize(net.n_masters());
  for (std::size_t k = 0; k < net.n_masters(); ++k) {
    na.masters[k].schedulable = false;
    na.masters[k].streams.resize(net.masters[k].nh());
  }
  return na;
}

/// Timed-token necessary condition: every request needs at least one full
/// token rotation, so D_i >= T_cycle^k must hold under *any* AP policy.
NetworkAnalysis token_ring_check(const profibus::Network& net, const TimingMemo& memo) {
  NetworkAnalysis na;
  na.tcycle = memo.tcycle;
  na.schedulable = true;
  na.masters.resize(net.n_masters());
  for (std::size_t k = 0; k < net.n_masters(); ++k) {
    const profibus::Master& master = net.masters[k];
    MasterAnalysis& ma = na.masters[k];
    ma.schedulable = true;
    ma.streams.resize(master.nh());
    for (std::size_t i = 0; i < master.nh(); ++i) {
      StreamResponse& r = ma.streams[i];
      r.response = memo.per_master[k];  // one token visit, best possible
      r.Q = sat_add(r.response, -master.high_streams[i].Ch);
      r.meets_deadline = r.response != kNoBound && r.response <= master.high_streams[i].D;
      if (!r.meets_deadline) ma.schedulable = false;
    }
    if (!ma.schedulable) na.schedulable = false;
  }
  return na;
}

/// Default transaction set for Policy::Holistic: one single-stage transaction
/// per stream, inheriting its period and deadline.
std::vector<profibus::Transaction> per_stream_transactions(const profibus::Network& net) {
  std::vector<profibus::Transaction> txs;
  for (std::size_t k = 0; k < net.n_masters(); ++k) {
    for (std::size_t i = 0; i < net.masters[k].nh(); ++i) {
      const profibus::MessageStream& s = net.masters[k].high_streams[i];
      profibus::Transaction tr;
      tr.stages = {profibus::TransactionStage{.master = k, .stream = i, .task_c = 1}};
      tr.period = s.T;
      tr.deadline = s.D;
      tr.name = s.name;
      txs.push_back(std::move(tr));
    }
  }
  return txs;
}

}  // namespace

namespace {

/// Cheap structural fingerprint so an id collision between different
/// networks invalidates the memo instead of serving stale timing.
Ticks network_fingerprint(const profibus::Network& net) {
  Ticks sum = 0;
  for (const profibus::Master& m : net.masters) {
    for (const profibus::MessageStream& s : m.high_streams) {
      sum = sat_add(sum, sat_add(s.Ch, sat_add(s.T, s.D)));
    }
    sum = sat_add(sum, m.longest_low_cycle);
  }
  return sum;
}

}  // namespace

AnalysisEngine::Memo& AnalysisEngine::memo_for(const Scenario& sc) {
  const Ticks fingerprint = network_fingerprint(sc.net);
  const auto it = memo_.find(sc.id);
  if (it != memo_.end() && it->second.n_streams == sc.net.total_high_streams() &&
      it->second.ttr == sc.net.ttr && it->second.fingerprint == fingerprint) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  Memo& m = memo_[sc.id];
  m.timing = profibus::compute_timing(sc.net, opt_.method);
  m.edf_busy.reset();
  m.n_streams = sc.net.total_high_streams();
  m.ttr = sc.net.ttr;
  m.fingerprint = fingerprint;
  return m;
}

const profibus::TimingMemo& AnalysisEngine::timing(const Scenario& sc) {
  return memo_for(sc).timing;
}

Report AnalysisEngine::analyze(const Scenario& sc, Policy policy) {
  // Validate up front: the memoized busy-period and token-ring paths would
  // otherwise touch stream parameters (divide by T, compare against D) before
  // any underlying analysis gets the chance to reject the network.
  sc.net.validate();
  return analyze_with(sc, policy, memo_for(sc));
}

std::vector<Report> AnalysisEngine::analyze_all(const Scenario& sc,
                                                std::span<const Policy> policies) {
  if (policies.empty()) return {};
  sc.net.validate();
  Memo& m = memo_for(sc);
  // Every policy after the first is served from the shared bind — keep the
  // hit counter equivalent to the per-policy analyze() sequence it replaces.
  hits_ += policies.size() - 1;
  std::vector<Report> out;
  out.reserve(policies.size());
  for (const Policy policy : policies) out.push_back(analyze_with(sc, policy, m));
  return out;
}

Report AnalysisEngine::analyze_with(const Scenario& sc, Policy policy, Memo& m) {
  const TimingMemo& tm = m.timing;

  Report r;
  r.policy = policy;
  r.tcycle = tm.tcycle;
  r.tdel = tm.tdel;

  switch (policy) {
    case Policy::Fcfs:
      r.detail = analyze_fcfs(sc.net, tm);
      r.schedulable = r.detail.schedulable;
      break;
    case Policy::Dm:
      r.detail = analyze_dm(sc.net, tm, opt_.formulation, opt_.fuel, &scratch_);
      r.schedulable = r.detail.schedulable;
      break;
    case Policy::Edf:
      if (!m.edf_busy) m.edf_busy = profibus::edf_busy_periods(sc.net, tm, opt_.fuel);
      r.detail = analyze_edf(sc.net, tm, nullptr, opt_.fuel, &*m.edf_busy, &scratch_);
      r.schedulable = r.detail.schedulable;
      break;
    case Policy::Opa: {
      const auto orders = audsley_stream_orders(sc.net, tm, opt_.formulation, opt_.fuel);
      r.detail = orders.has_value()
                     ? analyze_fixed_priority(sc.net, *orders, tm, opt_.formulation, opt_.fuel)
                     : all_miss(sc.net, tm);
      r.schedulable = r.detail.schedulable;
      break;
    }
    case Policy::TokenRing:
      r.detail = token_ring_check(sc.net, tm);
      r.schedulable = r.detail.schedulable;
      break;
    case Policy::Holistic: {
      const std::vector<profibus::Transaction> derived =
          sc.transactions.empty() ? per_stream_transactions(sc.net) : sc.transactions;
      profibus::HolisticOptions ho;
      ho.policy = profibus::ApPolicy::Dm;
      const profibus::HolisticResult hr = analyze_holistic(sc.net, derived, ho);
      r.detail = hr.network;
      r.schedulable = hr.converged && hr.schedulable;
      break;
    }
  }

  for (std::size_t k = 0; k < r.detail.masters.size(); ++k) {
    const MasterAnalysis& ma = r.detail.masters[k];
    for (std::size_t i = 0; i < ma.streams.size(); ++i) {
      ++r.n_streams;
      const StreamResponse& s = ma.streams[i];
      if (s.meets_deadline) ++r.streams_meeting;
      const Ticks slack = s.response == kNoBound
                              ? std::numeric_limits<Ticks>::min()
                              : sc.net.masters[k].high_streams[i].D - s.response;
      r.worst_slack = r.worst_slack == kNoBound ? slack : std::min(r.worst_slack, slack);
    }
  }
  return r;
}

}  // namespace profisched::engine
