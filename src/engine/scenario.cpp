#include "engine/scenario.hpp"

#include "engine/detail/hash.hpp"

namespace profisched::engine {

std::uint64_t canonical_hash(const Scenario& sc) {
  detail::Fnv1a64 h;
  // Every vector is length-prefixed so adjacent fields cannot alias across
  // element boundaries (e.g. one master with two streams vs two masters with
  // one stream each must digest differently).
  const profibus::BusParameters& bus = sc.net.bus;
  h.i64(bus.bits_per_char)
      .i64(bus.t_id1)
      .i64(bus.t_sl)
      .i64(bus.max_tsdr)
      .i64(bus.min_tsdr)
      .i64(bus.max_retry)
      .i64(bus.token_frame_chars)
      .i64(sc.net.ttr);

  h.u64(sc.net.masters.size());
  for (const profibus::Master& m : sc.net.masters) {
    h.i64(m.longest_low_cycle).u64(m.high_streams.size());
    for (const profibus::MessageStream& s : m.high_streams) {
      h.i64(s.Ch).i64(s.D).i64(s.T).i64(s.J);
    }
  }

  h.u64(sc.transactions.size());
  for (const profibus::Transaction& t : sc.transactions) {
    h.i64(t.period).i64(t.deadline).u64(t.stages.size());
    for (const profibus::TransactionStage& st : t.stages) {
      h.u64(st.master).u64(st.stream).i64(st.task_c);
    }
  }

  h.u64(sc.frame_specs.size());
  for (const auto& master_specs : sc.frame_specs) {
    h.u64(master_specs.size());
    for (const profibus::MessageCycleSpec& spec : master_specs) {
      h.i64(spec.request_chars).i64(spec.response_chars);
    }
  }
  return h.digest();
}

}  // namespace profisched::engine
