// simulation_engine.hpp — the engine's simulation backend: the discrete-event
// simulator (src/sim/) behind the same Scenario/Policy surface the
// AnalysisEngine exposes, so sweeps can run either backend — or both — over
// identical generated scenarios.
//
// Seeding discipline: every simulation run is keyed by (scenario seed,
// replication index) through rep_seed(), never by wall clock or worker
// identity, so a sweep's simulation outcomes are bit-identical for any thread
// count. Replication 0 releases every stream synchronously at phase 0 (the
// adversarial pattern the analyses reason about); replications >= 1 draw
// per-stream random phases in [0, T_i) from the replication's own RNG stream.
//
// The engine itself is stateless apart from its options: one instance can be
// shared by any number of workers, and every simulate() call builds a fresh
// sim::SimConfig / NetworkSim instance (the simulator keeps no global state —
// see src/sim/rng.hpp and src/sim/network_sim.cpp).
#pragma once

#include <cstdint>

#include "engine/scenario.hpp"
#include "profibus/fault_model.hpp"
#include "sim/network_sim.hpp"

namespace profisched::engine {

/// Tuning knobs of the simulation backend.
struct SimOptions {
  /// How actual message-cycle durations are drawn (default: worst case, the
  /// regime where observed maxima can approach the analytic bounds).
  sim::CycleModel cycle_model;

  /// Explicit horizon in ticks; 0 derives one per scenario as
  /// ceil(horizon_cycles · T_cycle(net)) clamped to horizon_cap.
  Ticks horizon = 0;
  double horizon_cycles = 50.0;
  Ticks horizon_cap = 20'000'000;

  /// Give every master one background low-priority generator (cycle length
  /// Cl^k, one release per T_TR). Off by default: the validation regime runs
  /// the HP streams the analyses bound.
  bool lp_traffic = false;

  /// Injected faults (token loss / corruption / churn / release bursts); all
  /// off by default. Threaded into every sim::SimConfig; burst_correlation
  /// additionally blends the random replication phases toward one
  /// network-wide draw in make_config. A default FaultModel leaves every
  /// output byte-identical to a fault-free build.
  profibus::FaultModel faults;

  /// Collect per-stream latency histograms (enables the observed-p99 column).
  bool collect_histograms = true;

  /// Which percentile of the merged response distribution the observed_p99
  /// column reports (`profisched simulate --quantile`). Default 0.99 keeps
  /// the historical column meaning; the column name stays `observed_p99` in
  /// the serialized formats regardless of the quantile chosen.
  double quantile = 0.99;
};

/// Scalar summary of one simulation run (the columns the sweep aggregates).
struct SimSummary {
  Ticks observed_max = 0;  ///< max response across every stream
  Ticks observed_p99 = 0;  ///< p99 of the merged response distribution
  std::uint64_t released = 0;
  std::uint64_t completed = 0;
  std::uint64_t misses = 0;
  std::uint64_t dropped = 0;
};

class SimulationEngine {
 public:
  SimulationEngine() = default;
  explicit SimulationEngine(SimOptions opt) : opt_(opt) {}

  /// Only the AP-queue policies have a run-time procedure to simulate.
  [[nodiscard]] static bool simulable(Policy p) noexcept {
    return p == Policy::Fcfs || p == Policy::Dm || p == Policy::Edf;
  }

  /// Map an engine policy onto the simulator's dispatching policy; throws
  /// std::invalid_argument for the analysis-only policies.
  [[nodiscard]] static profibus::ApPolicy to_ap_policy(Policy p);

  /// Deterministic RNG seed of replication `rep` of a scenario: depends only
  /// on the scenario's own seed and the replication index.
  [[nodiscard]] static std::uint64_t rep_seed(std::uint64_t scenario_seed, std::uint64_t rep);

  /// The horizon a scenario is simulated for under these options.
  [[nodiscard]] Ticks horizon_for(const Scenario& sc) const;

  /// Build the full simulator configuration for one run (exposed so tests and
  /// benches can inspect or tweak what simulate() executes).
  [[nodiscard]] sim::SimConfig make_config(const Scenario& sc, Policy policy,
                                           std::uint64_t rep = 0) const;

  /// Run one simulation of `sc` under `policy`, replication `rep`.
  [[nodiscard]] sim::SimReport simulate(const Scenario& sc, Policy policy,
                                        std::uint64_t rep = 0) const;

  /// Reduce a report to the scalar sweep columns. The observed_p99 column
  /// reports the `quantile` percentile of the merged response distribution
  /// (SimOptions::quantile for engine-driven sweeps), falling back to
  /// observed_max when the report carries no histograms.
  [[nodiscard]] static SimSummary summarize(const sim::SimReport& r, double quantile = 0.99);

  [[nodiscard]] const SimOptions& options() const noexcept { return opt_; }

 private:
  SimOptions opt_;
};

}  // namespace profisched::engine
