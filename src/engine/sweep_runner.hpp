// sweep_runner.hpp — fan thousands of generated scenarios across cores.
//
// A sweep is a grid of points (utilization × deadline spread), each point
// holding `scenarios_per_point` independently generated networks, each
// analysed under every requested policy. Scenario generation is keyed ONLY by
// (sweep seed, global scenario index): worker i regenerates scenario j from
// scratch with Rng(scenario_seed(seed, j)), and outcomes land in slot j of a
// pre-sized vector. Results are therefore bit-identical for any thread count
// — the acceptance property tests/engine/test_sweep_runner.cpp locks in.
//
// The same machinery drives every backend over one scenario range, through a
// single ranged core surface (run_scenarios): each mode is an adapter that
// sets up its engines/cache digests and hands the core a per-scenario
// callback. Every entry point takes an optional IdRange — the full-sweep
// overloads are thin wrappers passing [0, total):
//   run()          — analysis only (AnalysisEngine);
//   run_sim()      — simulation only (SimulationEngine, replicated runs with
//                    (seed, scenario, replication)-keyed RNG streams);
//   run_combined() — both on the SAME generated scenarios, joining each
//                    analytic verdict/bound with the observed simulation
//                    behaviour (the analysis-vs-simulation acceptance data);
//   opt::run_optimize() (src/opt/) — per-scenario parameter synthesis,
//                    driving the same core from outside this header.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "engine/analysis_engine.hpp"
#include "engine/scenario.hpp"
#include "engine/simulation_engine.hpp"
#include "engine/thread_pool.hpp"
#include "workload/generators.hpp"

namespace profisched::engine {

/// A contiguous range of global scenario ids, [begin, end). The distributed
/// subsystem (src/dist/) carves a sweep into these; a default-constructed
/// range is empty.
struct IdRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;  ///< exclusive

  [[nodiscard]] std::uint64_t size() const noexcept { return end - begin; }
};

/// Content address of one cached (scenario, policy, options) result:
/// `scenario` is canonical_hash(Scenario), `params` digests the record kind,
/// policy and every option that shapes the result. 128 bits total so sweeps
/// with many millions of entries stay far from birthday-collision territory.
struct CacheKey {
  std::uint64_t scenario = 0;
  std::uint64_t params = 0;
};

/// Hook the SweepRunner consults per (scenario, policy): load() returns true
/// and fills `payload` on a hit; store() persists a payload computed on a
/// miss. Implementations must be safe to call from every worker thread
/// concurrently, and must treat payloads as opaque bytes (the runner owns the
/// record format). The on-disk implementation is dist::ResultCache.
class ScenarioCache {
 public:
  virtual ~ScenarioCache() = default;
  virtual bool load(const CacheKey& key, std::string& payload) = 0;
  virtual void store(const CacheKey& key, const std::string& payload) = 0;
};

/// One grid point of a sweep: one coordinate of the u × beta × masters cross
/// product. A sweep whose points all leave n_masters at 0 is a classic
/// single-structure grid (u and/or beta only) — exactly the pre-multi-axis
/// shape, which the serialized formats keep emitting unchanged.
struct SweepPoint {
  double total_u = 0.0;  ///< UUniFast target utilization (0 = period-driven)
  double beta_lo = 1.0;  ///< deadlines drawn in [beta_lo·T, beta_hi·T]
  double beta_hi = 1.0;
  /// Ring-size axis: masters this point's networks are generated with.
  /// 0 = inherit SweepSpec::base.n_masters (no masters axis).
  std::size_t n_masters = 0;
};

/// True when `points` spans more than the classic u-grid: any explicit
/// per-point ring size, or a deadline-ratio (beta) spread that varies across
/// points. The serialized result formats switch to their extended axis
/// columns exactly when this holds, so single-axis sweeps stay byte-identical
/// to the historical goldens.
[[nodiscard]] bool has_multi_axis(const std::vector<SweepPoint>& points);

/// Everything that defines a sweep. `base` supplies the structural knobs
/// (masters, streams, frame sizes, T_TR mode, per-master load split); each
/// point overrides the utilization / deadline-spread / ring-size axes.
struct SweepSpec {
  workload::NetworkParams base;
  std::vector<SweepPoint> points;
  std::size_t scenarios_per_point = 100;
  std::vector<Policy> policies{Policy::Fcfs, Policy::Dm, Policy::Edf};
  std::uint64_t seed = 1;
  EngineOptions engine;

  [[nodiscard]] std::size_t total_scenarios() const noexcept {
    return points.size() * scenarios_per_point;
  }
};

/// Per-scenario result: one verdict per requested policy (indexed like
/// SweepSpec::policies) plus the shared timing facts.
struct ScenarioOutcome {
  std::uint64_t id = 0;
  std::uint64_t seed = 0;
  std::size_t point = 0;  ///< index into SweepSpec::points
  Ticks tcycle = 0;
  std::vector<bool> schedulable;
  std::vector<Ticks> worst_slack;
};

/// Run-wide bookkeeping every mode's result carries: wall clock plus
/// memo/cache counters. None of it is part of the deterministic data — the
/// outcome vectors alone define a run's identity.
struct RunStats {
  double elapsed_s = 0.0;      ///< wall clock
  std::size_t memo_hits = 0;   ///< timing-memo reuse across policies
  std::size_t memo_misses = 0;
  std::size_t cache_hits = 0;    ///< result-cache lookups served (0 without a cache)
  std::size_t cache_misses = 0;  ///< result-cache lookups recomputed
};

/// Whole-sweep result. `outcomes` is indexed by global scenario id (minus the
/// range's begin for a ranged run), so its content is independent of thread
/// count and scheduling order.
struct SweepResult : RunStats {
  std::vector<ScenarioOutcome> outcomes;
};

/// A sweep whose scenarios are simulated instead of (or as well as) analysed.
/// `sweep` supplies the grid / policies / seed; every policy must satisfy
/// SimulationEngine::simulable.
struct SimSweepSpec {
  SweepSpec sweep;
  SimOptions sim;
  /// Simulation runs per (scenario, policy): replication 0 is the synchronous
  /// release pattern, further replications draw random per-stream phases.
  std::size_t replications = 1;
};

/// Per-scenario simulation result: every per-policy vector is indexed like
/// SimSweepSpec::sweep.policies, aggregated across the replications.
struct SimScenarioOutcome {
  std::uint64_t id = 0;
  std::uint64_t seed = 0;
  std::size_t point = 0;  ///< index into the sweep's points
  Ticks horizon = 0;      ///< ticks each replication simulated
  std::vector<Ticks> observed_max;
  std::vector<Ticks> observed_p99;
  std::vector<std::uint64_t> released;
  std::vector<std::uint64_t> completed;
  std::vector<std::uint64_t> misses;
  /// Cycles abandoned after exhausting retries (FrameLevel model with slave
  /// failures). Tracked separately from misses: a dropped request never
  /// completes, so it records no response time — but it must not vanish, or
  /// undelivered traffic would read as miss-free.
  std::vector<std::uint64_t> dropped;
};

/// Simulation sweeps never touch the analysis memo, so memo_hits/misses stay
/// 0; the struct still carries the full RunStats so every mode reports the
/// same way.
struct SimSweepResult : RunStats {
  std::vector<SimScenarioOutcome> outcomes;  ///< indexed by global scenario id
};

/// Per-scenario joined analysis + simulation result (combined mode).
struct CombinedOutcome {
  SimScenarioOutcome sim;
  /// Analysis columns, indexed like the sweep's policies. Always the CLEAN
  /// (fault-free) analysis — under faults these retain the steady-state
  /// verdict so the degraded columns can be read against it.
  std::vector<bool> analytic_schedulable;
  /// Max over streams of the analytic response bound; kNoBound when any
  /// stream's iteration diverged.
  std::vector<Ticks> analytic_wcrt;
  /// Streams whose observed max response exceeded their (bounded) reference
  /// response bound — a correct analysis keeps this identically 0. The
  /// reference is the clean analysis for fault-free sweeps and the DEGRADED
  /// analysis (profibus/fault_bounds.hpp) when the spec injects faults: a
  /// faulted sim may legitimately exceed steady-state bounds, but never the
  /// degraded ones.
  std::vector<std::uint64_t> bound_violations;
  /// Degraded-mode verdict/bound per policy; filled only when the sweep's
  /// FaultModel is active (empty otherwise, keeping zero-fault outputs
  /// byte-identical).
  std::vector<bool> degraded_schedulable;
  std::vector<Ticks> degraded_wcrt;

  /// The acceptance column the must-never-fire miss check uses: degraded
  /// under faults, clean otherwise.
  [[nodiscard]] const std::vector<bool>& accept_basis() const noexcept {
    return degraded_schedulable.empty() ? analytic_schedulable : degraded_schedulable;
  }
};

struct CombinedResult : RunStats {
  std::vector<CombinedOutcome> outcomes;  ///< indexed by global scenario id

  /// Total streams (across scenarios and policies) whose observed response
  /// exceeded the reference bound (degraded under faults, clean otherwise).
  /// Must be 0 for a sound analysis.
  [[nodiscard]] std::uint64_t total_bound_violations() const noexcept;
  /// Scenarios×policies the reference analysis accepts but the simulation
  /// misses a deadline in. Must be 0: accept ⇒ R_i <= D_i ⇒ no observable
  /// miss. Under faults the accepting analysis is the DEGRADED one — this is
  /// the fault axis's must-never-fire flag (an accepted degraded guarantee
  /// the faulted sim violates).
  [[nodiscard]] std::uint64_t accept_but_miss_count() const noexcept;
};

class SweepRunner {
 public:
  /// `threads` = 0 picks ThreadPool::default_threads().
  explicit SweepRunner(unsigned threads = 0);

  /// Deterministic seed for one scenario: depends only on the sweep seed and
  /// the global scenario index.
  [[nodiscard]] static std::uint64_t scenario_seed(std::uint64_t sweep_seed, std::uint64_t id);

  /// Regenerate scenario `id` of the sweep (id in [0, total_scenarios())).
  [[nodiscard]] static Scenario make_scenario(const SweepSpec& spec, std::uint64_t id);

  /// Per-scenario worker callback for run_scenarios: global scenario id, the
  /// outcome slot it must write (id - range.begin), and the worker slot
  /// (index into any per-worker state such as engine vectors).
  using ScenarioFn = std::function<void(std::uint64_t id, std::size_t slot, unsigned worker)>;

  /// The one ranged execution core every mode shares: validates `range`
  /// against `total`, fans fn(id, slot, worker) across the pool for each id
  /// in [range.begin, range.end), captures the first worker exception and
  /// rethrows it on the calling thread after the pool drains, and records the
  /// wall clock in `stats`. Callers size their outcome vector to
  /// range.size() beforehand and write only their own slot — that (plus
  /// index-keyed generation) is the whole thread-count-invariance argument.
  /// Public so out-of-header modes (src/opt/) drive the identical surface.
  void run_scenarios(std::uint64_t total, IdRange range, RunStats& stats,
                     const ScenarioFn& fn);

  /// Analyse the scenarios with ids in `range` (a shard of the sweep).
  /// Outcomes land at slot id - range.begin; their content is exactly what
  /// the same slots of a [0, total) run would hold, which is what makes
  /// shard execution mergeable back into the single-process result
  /// (src/dist/). With a cache, each (scenario, policy) result is looked up
  /// by content address first and only misses are computed (and stored) —
  /// the outcomes are bit-identical either way.
  [[nodiscard]] SweepResult run(const SweepSpec& spec, IdRange range,
                                ScenarioCache* cache = nullptr);

  /// Whole-sweep wrapper: run over [0, total_scenarios()).
  [[nodiscard]] SweepResult run(const SweepSpec& spec, ScenarioCache* cache = nullptr);

  /// Simulate the ranged scenarios under every policy × `replications`.
  /// Outcomes are bit-identical for any thread count (generation and RNG
  /// streams are index-keyed).
  [[nodiscard]] SimSweepResult run_sim(const SimSweepSpec& spec, IdRange range,
                                       ScenarioCache* cache = nullptr);

  /// Whole-sweep wrapper: run_sim over [0, total_scenarios()).
  [[nodiscard]] SimSweepResult run_sim(const SimSweepSpec& spec, ScenarioCache* cache = nullptr);

  /// Analyse AND simulate the ranged scenarios, joining verdicts per policy.
  [[nodiscard]] CombinedResult run_combined(const SimSweepSpec& spec, IdRange range,
                                            ScenarioCache* cache = nullptr);

  /// Whole-sweep wrapper: run_combined over [0, total_scenarios()).
  [[nodiscard]] CombinedResult run_combined(const SimSweepSpec& spec,
                                            ScenarioCache* cache = nullptr);

  [[nodiscard]] unsigned threads() const noexcept;

 private:
  ThreadPool pool_;
};

}  // namespace profisched::engine
