#include "engine/simulation_engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "profibus/token_ring_analysis.hpp"
#include "sim/rng.hpp"

namespace profisched::engine {

profibus::ApPolicy SimulationEngine::to_ap_policy(Policy p) {
  switch (p) {
    case Policy::Fcfs: return profibus::ApPolicy::Fcfs;
    case Policy::Dm: return profibus::ApPolicy::Dm;
    case Policy::Edf: return profibus::ApPolicy::Edf;
    default:
      throw std::invalid_argument(std::string("SimulationEngine: policy ") +
                                  std::string(to_string(p)) + " has no run-time procedure");
  }
}

std::uint64_t SimulationEngine::rep_seed(std::uint64_t scenario_seed, std::uint64_t rep) {
  // SplitMix64 over (scenario seed, rep): uncorrelated streams per
  // replication, independent of which worker runs it.
  std::uint64_t state = scenario_seed ^ ((rep + 1) * 0xa0761d6478bd642fULL);
  return sim::splitmix64(state);
}

Ticks SimulationEngine::horizon_for(const Scenario& sc) const {
  if (opt_.horizon > 0) return opt_.horizon;
  const Ticks tcycle = profibus::t_cycle(sc.net);
  const double h = opt_.horizon_cycles * static_cast<double>(tcycle);
  const double capped = std::min(h, static_cast<double>(opt_.horizon_cap));
  return std::max<Ticks>(static_cast<Ticks>(std::ceil(capped)), 1);
}

sim::SimConfig SimulationEngine::make_config(const Scenario& sc, Policy policy,
                                             std::uint64_t rep) const {
  sim::SimConfig cfg;
  cfg.net = sc.net;
  cfg.policy = to_ap_policy(policy);
  cfg.horizon = horizon_for(sc);
  cfg.seed = rep_seed(sc.seed, rep);
  cfg.cycle_model = opt_.cycle_model;
  cfg.faults = opt_.faults;
  cfg.collect_histograms = opt_.collect_histograms;

  if (opt_.cycle_model.kind == sim::CycleModel::Kind::FrameLevel) {
    if (sc.frame_specs.size() != sc.net.n_masters()) {
      throw std::invalid_argument(
          "SimulationEngine: FrameLevel cycle model needs Scenario::frame_specs");
    }
    cfg.frame_specs = sc.frame_specs;
  }

  if (rep > 0) {
    // Replications beyond the synchronous one: random per-stream phases drawn
    // from a dedicated stream (cfg.seed stays reserved for in-run sampling).
    // With burst_correlation > 0 every phase is blended toward one
    // network-wide fraction drawn first, aligning releases across streams and
    // masters into correlated bursts; at 0 the draw sequence and phases are
    // exactly the historical ones. Any phasing is admissible to the analysis,
    // so bursts need no degraded bound of their own.
    std::uint64_t phase_state = cfg.seed ^ 0x2545f4914f6cdd1dULL;
    sim::Rng phase_rng(sim::splitmix64(phase_state));
    const double corr = opt_.faults.burst_correlation;
    const double common01 = corr > 0 ? phase_rng.uniform01() : 0.0;
    cfg.hp_traffic.resize(sc.net.n_masters());
    for (std::size_t k = 0; k < sc.net.n_masters(); ++k) {
      for (const profibus::MessageStream& s : sc.net.masters[k].high_streams) {
        const Ticks span = std::max<Ticks>(s.T - 1, 0);
        Ticks phase = phase_rng.uniform(span);
        if (corr > 0) {
          const double common = common01 * static_cast<double>(span);
          phase = static_cast<Ticks>(
              std::llround((1.0 - corr) * static_cast<double>(phase) + corr * common));
        }
        cfg.hp_traffic[k].push_back(sim::TrafficConfig{.phase = phase});
      }
    }
  }

  if (opt_.lp_traffic) {
    cfg.lp_traffic.resize(sc.net.n_masters());
    for (std::size_t k = 0; k < sc.net.n_masters(); ++k) {
      const Ticks cl = sc.net.masters[k].longest_low_cycle;
      if (cl > 0) {
        cfg.lp_traffic[k].push_back(
            sim::LpTraffic{.period = std::max<Ticks>(sc.net.ttr, 1), .cycle_len = cl, .phase = 0});
      }
    }
  }
  return cfg;
}

sim::SimReport SimulationEngine::simulate(const Scenario& sc, Policy policy,
                                          std::uint64_t rep) const {
  return sim::simulate(make_config(sc, policy, rep));
}

SimSummary SimulationEngine::summarize(const sim::SimReport& r, double quantile) {
  SimSummary out;
  sim::Histogram merged;
  for (const auto& master : r.hp) {
    for (const sim::StreamStats& s : master) {
      out.observed_max = std::max(out.observed_max, s.max_response);
      out.released += s.released;
      out.completed += s.completed;
      out.misses += s.deadline_misses;
      out.dropped += s.dropped;
    }
  }
  for (const auto& master : r.response_hist) {
    for (const sim::Histogram& h : master) merged.merge(h);
  }
  // The histogram quantile reports a bin upper bound; clamp to the exact
  // maximum so the reported percentile never reads above the observed worst
  // case.
  out.observed_p99 = merged.count() > 0 ? std::min(merged.quantile(quantile), out.observed_max)
                                        : out.observed_max;
  return out;
}

}  // namespace profisched::engine
