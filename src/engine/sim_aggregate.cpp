#include "engine/sim_aggregate.hpp"

#include <algorithm>
#include <stdexcept>

#include "engine/detail/serialize.hpp"

namespace profisched::engine {

using detail::fmt_double;
using detail::JsonCursor;
using detail::split;
using detail::to_double;
using detail::to_ll;
using detail::to_size;

// ---------------------------------------------------------------- SimCurves

namespace {

bool sim_curves_have_masters(const std::vector<SimCurvePoint>& points) {
  for (const SimCurvePoint& pt : points) {
    if (pt.n_masters != 0) return true;
  }
  return false;
}

}  // namespace

std::string SimCurves::to_csv() const {
  const bool masters = sim_curves_have_masters(points);
  std::string out =
      masters ? "u,beta_lo,beta_hi,masters,scenarios,policy,miss_free,total_misses,"
                "total_dropped,max_observed,quantile_observed,ratio\n"
              : "u,beta_lo,beta_hi,scenarios,policy,miss_free,total_misses,total_dropped,"
                "max_observed,quantile_observed,ratio\n";
  for (const SimCurvePoint& pt : points) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      out += fmt_double(pt.total_u) + ',' + fmt_double(pt.beta_lo) + ',' +
             fmt_double(pt.beta_hi) + ',';
      if (masters) out += std::to_string(pt.n_masters) + ',';
      out += std::to_string(pt.scenarios) + ',' + policies[p] + ',' +
             std::to_string(pt.miss_free[p]) + ',' + std::to_string(pt.total_misses[p]) + ',' +
             std::to_string(pt.total_dropped[p]) + ',' + std::to_string(pt.max_observed[p]) +
             ',' + std::to_string(pt.quantile_observed[p]) + ',' + fmt_double(pt.ratio(p)) +
             '\n';
    }
  }
  return out;
}

SimCurves SimCurves::from_csv(const std::string& csv) {
  SimCurves out;
  std::istringstream is(csv);
  std::string line;
  if (!std::getline(is, line)) {
    throw std::invalid_argument("SimCurves: missing/short CSV header");
  }
  // 11 columns = classic layout, 12 = extended with the masters column.
  const std::size_t n_cols = split(line, ',').size();
  if (n_cols != 11 && n_cols != 12) {
    throw std::invalid_argument("SimCurves: missing/short CSV header");
  }
  const bool masters = n_cols == 12;
  // Which policies the current (last) point already has a row for; a repeated
  // policy starts a new point even when grid keys repeat (distinct points may
  // share (u, beta) values).
  std::vector<bool> filled;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> cells = split(line, ',');
    if (cells.size() != n_cols) {
      throw std::invalid_argument("SimCurves: bad CSV row '" + line + "'");
    }
    const double u = to_double(cells[0]);
    const double blo = to_double(cells[1]);
    const double bhi = to_double(cells[2]);
    const std::size_t nm = masters ? to_size(cells[3]) : 0;
    const std::size_t base = masters ? 4 : 3;
    const std::size_t scenarios = to_size(cells[base]);
    const std::string& policy = cells[base + 1];

    std::size_t p = 0;
    while (p < out.policies.size() && out.policies[p] != policy) ++p;
    if (p == out.policies.size()) out.policies.push_back(policy);

    const bool same_key = !out.points.empty() && out.points.back().total_u == u &&
                          out.points.back().beta_lo == blo &&
                          out.points.back().beta_hi == bhi && out.points.back().n_masters == nm;
    if (!same_key || (p < filled.size() && filled[p])) {
      out.points.push_back(SimCurvePoint{u, blo, bhi, nm, scenarios, {}, {}, {}, {}, {}});
      filled.assign(out.policies.size(), false);
    }
    SimCurvePoint& pt = out.points.back();
    pt.miss_free.resize(out.policies.size(), 0);
    pt.total_misses.resize(out.policies.size(), 0);
    pt.total_dropped.resize(out.policies.size(), 0);
    pt.max_observed.resize(out.policies.size(), 0);
    pt.quantile_observed.resize(out.policies.size(), 0);
    filled.resize(out.policies.size(), false);
    pt.miss_free[p] = to_size(cells[base + 2]);
    pt.total_misses[p] = static_cast<std::uint64_t>(to_ll(cells[base + 3]));
    pt.total_dropped[p] = static_cast<std::uint64_t>(to_ll(cells[base + 4]));
    pt.max_observed[p] = to_ll(cells[base + 5]);
    pt.quantile_observed[p] = to_ll(cells[base + 6]);
    filled[p] = true;
  }
  for (SimCurvePoint& pt : out.points) {
    pt.miss_free.resize(out.policies.size(), 0);
    pt.total_misses.resize(out.policies.size(), 0);
    pt.total_dropped.resize(out.policies.size(), 0);
    pt.max_observed.resize(out.policies.size(), 0);
    pt.quantile_observed.resize(out.policies.size(), 0);
  }
  return out;
}

std::string SimCurves::to_json() const {
  const bool masters = sim_curves_have_masters(points);
  std::string out = "{\n  \"policies\": [";
  for (std::size_t p = 0; p < policies.size(); ++p) {
    out += (p == 0 ? "" : ", ");
    out += '"' + policies[p] + '"';
  }
  out += "],\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SimCurvePoint& pt = points[i];
    out += "    {\"u\": " + fmt_double(pt.total_u) + ", \"beta_lo\": " + fmt_double(pt.beta_lo) +
           ", \"beta_hi\": " + fmt_double(pt.beta_hi);
    if (masters) out += ", \"masters\": " + std::to_string(pt.n_masters);
    out += ", \"scenarios\": " + std::to_string(pt.scenarios) + ", \"series\": {";
    for (std::size_t p = 0; p < policies.size(); ++p) {
      out += (p == 0 ? "" : ", ");
      out += '"' + policies[p] + "\": [" + std::to_string(pt.miss_free[p]) + ", " +
             std::to_string(pt.total_misses[p]) + ", " + std::to_string(pt.total_dropped[p]) +
             ", " + std::to_string(pt.max_observed[p]) + ", " +
             std::to_string(pt.quantile_observed[p]) + ']';
    }
    out += "}}";
    out += (i + 1 < points.size() ? ",\n" : "\n");
  }
  out += "  ]\n}\n";
  return out;
}

SimCurves SimCurves::from_json(const std::string& json) {
  SimCurves out;
  JsonCursor c(json);
  c.expect('{');
  c.key("policies");
  c.expect('[');
  if (!c.peek(']')) {
    for (;;) {
      out.policies.push_back(c.string());
      if (!c.peek(',')) break;
      c.expect(',');
    }
  }
  c.expect(']');
  c.expect(',');
  c.key("points");
  c.expect('[');
  if (!c.peek(']')) {
    for (;;) {
      SimCurvePoint pt;
      c.expect('{');
      c.key("u");
      pt.total_u = c.number();
      c.expect(',');
      c.key("beta_lo");
      pt.beta_lo = c.number();
      c.expect(',');
      c.key("beta_hi");
      pt.beta_hi = c.number();
      c.expect(',');
      if (c.try_key("masters")) {
        pt.n_masters = static_cast<std::size_t>(c.number());
        c.expect(',');
      }
      c.key("scenarios");
      pt.scenarios = static_cast<std::size_t>(c.number());
      c.expect(',');
      c.key("series");
      c.expect('{');
      pt.miss_free.assign(out.policies.size(), 0);
      pt.total_misses.assign(out.policies.size(), 0);
      pt.total_dropped.assign(out.policies.size(), 0);
      pt.max_observed.assign(out.policies.size(), 0);
      pt.quantile_observed.assign(out.policies.size(), 0);
      if (!c.peek('}')) {
        for (;;) {
          const std::string policy = c.string();
          c.expect(':');
          c.expect('[');
          const auto miss_free = static_cast<std::size_t>(c.integer());
          c.expect(',');
          const auto misses = static_cast<std::uint64_t>(c.integer());
          c.expect(',');
          const auto dropped = static_cast<std::uint64_t>(c.integer());
          c.expect(',');
          const Ticks max_observed = c.integer();
          c.expect(',');
          const Ticks quantile_observed = c.integer();
          c.expect(']');
          std::size_t p = 0;
          while (p < out.policies.size() && out.policies[p] != policy) ++p;
          if (p == out.policies.size()) {
            throw std::invalid_argument("SimCurves: unknown policy '" + policy + "' in point");
          }
          pt.miss_free[p] = miss_free;
          pt.total_misses[p] = misses;
          pt.total_dropped[p] = dropped;
          pt.max_observed[p] = max_observed;
          pt.quantile_observed[p] = quantile_observed;
          if (!c.peek(',')) break;
          c.expect(',');
        }
      }
      c.expect('}');
      c.expect('}');
      out.points.push_back(std::move(pt));
      if (!c.peek(',')) break;
      c.expect(',');
    }
  }
  c.expect(']');
  c.expect('}');
  return out;
}

SimCurves aggregate_sim(const SimSweepSpec& spec, const SimSweepResult& result) {
  SimCurves out;
  out.policies.reserve(spec.sweep.policies.size());
  for (const Policy p : spec.sweep.policies) out.policies.emplace_back(to_string(p));

  out.points.resize(spec.sweep.points.size());
  for (std::size_t i = 0; i < spec.sweep.points.size(); ++i) {
    out.points[i].total_u = spec.sweep.points[i].total_u;
    out.points[i].beta_lo = spec.sweep.points[i].beta_lo;
    out.points[i].beta_hi = spec.sweep.points[i].beta_hi;
    out.points[i].n_masters = spec.sweep.points[i].n_masters;
    out.points[i].miss_free.assign(spec.sweep.policies.size(), 0);
    out.points[i].total_misses.assign(spec.sweep.policies.size(), 0);
    out.points[i].total_dropped.assign(spec.sweep.policies.size(), 0);
    out.points[i].max_observed.assign(spec.sweep.policies.size(), 0);
    out.points[i].quantile_observed.assign(spec.sweep.policies.size(), 0);
  }
  for (const SimScenarioOutcome& o : result.outcomes) {
    SimCurvePoint& pt = out.points[o.point];
    ++pt.scenarios;
    for (std::size_t p = 0; p < o.misses.size(); ++p) {
      // "Miss-free" demands clean delivery: a dropped (never-completed) cycle
      // disqualifies the scenario just like an observed deadline miss would.
      if (o.misses[p] == 0 && o.dropped[p] == 0) ++pt.miss_free[p];
      pt.total_misses[p] += o.misses[p];
      pt.total_dropped[p] += o.dropped[p];
      pt.max_observed[p] = std::max(pt.max_observed[p], o.observed_max[p]);
      pt.quantile_observed[p] = std::max(pt.quantile_observed[p], o.observed_p99[p]);
    }
  }
  return out;
}

// ---------------------------------------------------------- ConsistencyTable

std::string ConsistencyTable::to_csv() const {
  std::string out = "id,seed,u,";
  if (multi_axis) out += "beta_lo,beta_hi,masters,";
  out += "policy,analytic_schedulable,analytic_wcrt,";
  if (fault_axis) out += "degraded_schedulable,degraded_wcrt,";
  out +=
      "observed_max,observed_p99,misses,completed,dropped,bound_violations,"
      "accept_but_miss,pessimism\n";
  for (const ConsistencyRow& r : rows) {
    out += std::to_string(r.id) + ',' + std::to_string(r.seed) + ',' + fmt_double(r.total_u) +
           ',';
    if (multi_axis) {
      out += fmt_double(r.beta_lo) + ',' + fmt_double(r.beta_hi) + ',' +
             std::to_string(r.n_masters) + ',';
    }
    out += r.policy + ',' + (r.analytic_schedulable ? '1' : '0') + ',' +
           std::to_string(r.analytic_wcrt) + ',';
    if (fault_axis) {
      out += std::string(1, r.degraded_schedulable ? '1' : '0') + ',' +
             std::to_string(r.degraded_wcrt) + ',';
    }
    out += std::to_string(r.observed_max) + ',' + std::to_string(r.observed_p99) + ',' +
           std::to_string(r.misses) + ',' + std::to_string(r.completed) + ',' +
           std::to_string(r.dropped) + ',' + std::to_string(r.bound_violations) + ',' +
           (r.accept_but_miss ? '1' : '0') + ',' + fmt_double(r.pessimism()) + '\n';
  }
  return out;
}

ConsistencyTable ConsistencyTable::from_csv(const std::string& csv) {
  ConsistencyTable out;
  std::istringstream is(csv);
  std::string line;
  if (!std::getline(is, line)) {
    throw std::invalid_argument("ConsistencyTable: missing/short CSV header");
  }
  // 14 columns = classic layout; +3 for the multi-axis beta_lo/beta_hi/masters
  // block, +2 for the fault-axis degraded block — each count is distinct, so
  // the header width alone identifies the layout.
  const std::size_t n_cols = split(line, ',').size();
  if (n_cols != 14 && n_cols != 16 && n_cols != 17 && n_cols != 19) {
    throw std::invalid_argument("ConsistencyTable: missing/short CSV header");
  }
  out.multi_axis = n_cols == 17 || n_cols == 19;
  out.fault_axis = n_cols == 16 || n_cols == 19;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> cells = split(line, ',');
    if (cells.size() != n_cols) {
      throw std::invalid_argument("ConsistencyTable: bad CSV row '" + line + "'");
    }
    ConsistencyRow r;
    r.id = static_cast<std::uint64_t>(to_ll(cells[0]));
    r.seed = static_cast<std::uint64_t>(to_size(cells[1]));
    r.total_u = to_double(cells[2]);
    std::size_t c = 3;
    if (out.multi_axis) {
      r.beta_lo = to_double(cells[3]);
      r.beta_hi = to_double(cells[4]);
      r.n_masters = to_size(cells[5]);
      c = 6;
    }
    r.policy = cells[c + 0];
    r.analytic_schedulable = cells[c + 1] == "1";
    r.analytic_wcrt = to_ll(cells[c + 2]);
    c += 3;
    if (out.fault_axis) {
      r.degraded_schedulable = cells[c] == "1";
      r.degraded_wcrt = to_ll(cells[c + 1]);
      c += 2;
    }
    r.observed_max = to_ll(cells[c + 0]);
    r.observed_p99 = to_ll(cells[c + 1]);
    r.misses = static_cast<std::uint64_t>(to_ll(cells[c + 2]));
    r.completed = static_cast<std::uint64_t>(to_ll(cells[c + 3]));
    r.dropped = static_cast<std::uint64_t>(to_ll(cells[c + 4]));
    r.bound_violations = static_cast<std::uint64_t>(to_ll(cells[c + 5]));
    r.accept_but_miss = cells[c + 6] == "1";
    // The trailing pessimism column is derived; recomputed on demand.
    out.rows.push_back(std::move(r));
  }
  return out;
}

std::string ConsistencyTable::to_json() const {
  // The multi-axis / fault-axis flags must survive JSON round-trips even with
  // zero rows (the per-row keys cannot carry them then), so extended tables
  // lead with explicit markers. Classic tables keep the historical grammar.
  std::string out = "{\n";
  if (multi_axis) out += "  \"multi_axis\": true,\n";
  if (fault_axis) out += "  \"fault_axis\": true,\n";
  out += "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ConsistencyRow& r = rows[i];
    out += "    {\"id\": " + std::to_string(r.id) + ", \"seed\": " + std::to_string(r.seed) +
           ", \"u\": " + fmt_double(r.total_u);
    if (multi_axis) {
      out += ", \"beta_lo\": " + fmt_double(r.beta_lo) +
             ", \"beta_hi\": " + fmt_double(r.beta_hi) +
             ", \"masters\": " + std::to_string(r.n_masters);
    }
    out += ", \"policy\": \"" + r.policy +
           "\", \"analytic_schedulable\": " + (r.analytic_schedulable ? "true" : "false") +
           ", \"analytic_wcrt\": " + std::to_string(r.analytic_wcrt);
    if (fault_axis) {
      out += std::string(", \"degraded_schedulable\": ") +
             (r.degraded_schedulable ? "true" : "false") +
             ", \"degraded_wcrt\": " + std::to_string(r.degraded_wcrt);
    }
    out += ", \"observed_max\": " + std::to_string(r.observed_max) +
           ", \"observed_p99\": " + std::to_string(r.observed_p99) +
           ", \"misses\": " + std::to_string(r.misses) +
           ", \"completed\": " + std::to_string(r.completed) +
           ", \"dropped\": " + std::to_string(r.dropped) +
           ", \"bound_violations\": " + std::to_string(r.bound_violations) +
           ", \"accept_but_miss\": " + (r.accept_but_miss ? "true" : "false") + "}";
    out += (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out += "  ]\n}\n";
  return out;
}

namespace {

bool parse_bool_token(JsonCursor& c) {
  // The grammar emits exactly `true` / `false`; consume via string-free peek.
  if (c.peek('t')) {
    c.expect('t');
    c.expect('r');
    c.expect('u');
    c.expect('e');
    return true;
  }
  c.expect('f');
  c.expect('a');
  c.expect('l');
  c.expect('s');
  c.expect('e');
  return false;
}

}  // namespace

ConsistencyTable ConsistencyTable::from_json(const std::string& json) {
  ConsistencyTable out;
  JsonCursor c(json);
  c.expect('{');
  if (c.try_key("multi_axis")) {
    out.multi_axis = parse_bool_token(c);
    c.expect(',');
  }
  if (c.try_key("fault_axis")) {
    out.fault_axis = parse_bool_token(c);
    c.expect(',');
  }
  c.key("rows");
  c.expect('[');
  if (!c.peek(']')) {
    for (;;) {
      ConsistencyRow r;
      c.expect('{');
      c.key("id");
      r.id = static_cast<std::uint64_t>(c.uinteger());
      c.expect(',');
      c.key("seed");
      r.seed = static_cast<std::uint64_t>(c.uinteger());
      c.expect(',');
      c.key("u");
      r.total_u = c.number();
      c.expect(',');
      if (c.try_key("beta_lo")) {
        out.multi_axis = true;
        r.beta_lo = c.number();
        c.expect(',');
        c.key("beta_hi");
        r.beta_hi = c.number();
        c.expect(',');
        c.key("masters");
        r.n_masters = static_cast<std::size_t>(c.number());
        c.expect(',');
      }
      c.key("policy");
      r.policy = c.string();
      c.expect(',');
      c.key("analytic_schedulable");
      r.analytic_schedulable = parse_bool_token(c);
      c.expect(',');
      c.key("analytic_wcrt");
      r.analytic_wcrt = c.integer();
      c.expect(',');
      if (c.try_key("degraded_schedulable")) {
        out.fault_axis = true;
        r.degraded_schedulable = parse_bool_token(c);
        c.expect(',');
        c.key("degraded_wcrt");
        r.degraded_wcrt = c.integer();
        c.expect(',');
      }
      c.key("observed_max");
      r.observed_max = c.integer();
      c.expect(',');
      c.key("observed_p99");
      r.observed_p99 = c.integer();
      c.expect(',');
      c.key("misses");
      r.misses = static_cast<std::uint64_t>(c.integer());
      c.expect(',');
      c.key("completed");
      r.completed = static_cast<std::uint64_t>(c.integer());
      c.expect(',');
      c.key("dropped");
      r.dropped = static_cast<std::uint64_t>(c.integer());
      c.expect(',');
      c.key("bound_violations");
      r.bound_violations = static_cast<std::uint64_t>(c.integer());
      c.expect(',');
      c.key("accept_but_miss");
      r.accept_but_miss = parse_bool_token(c);
      c.expect('}');
      out.rows.push_back(std::move(r));
      if (!c.peek(',')) break;
      c.expect(',');
    }
  }
  c.expect(']');
  c.expect('}');
  return out;
}

std::size_t ConsistencyTable::accept_but_miss_count() const noexcept {
  std::size_t n = 0;
  for (const ConsistencyRow& r : rows) n += r.accept_but_miss ? 1 : 0;
  return n;
}

std::uint64_t ConsistencyTable::total_bound_violations() const noexcept {
  std::uint64_t n = 0;
  for (const ConsistencyRow& r : rows) n += r.bound_violations;
  return n;
}

ConsistencyTable consistency_table(const SimSweepSpec& spec, const CombinedResult& result) {
  ConsistencyTable out;
  out.multi_axis = has_multi_axis(spec.sweep.points);
  out.fault_axis = spec.sim.faults.any();
  out.rows.reserve(result.outcomes.size() * spec.sweep.policies.size());
  for (const CombinedOutcome& o : result.outcomes) {
    for (std::size_t p = 0; p < spec.sweep.policies.size(); ++p) {
      ConsistencyRow r;
      r.id = o.sim.id;
      r.seed = o.sim.seed;
      const SweepPoint& pt = spec.sweep.points[o.sim.point];
      r.total_u = pt.total_u;
      r.beta_lo = pt.beta_lo;
      r.beta_hi = pt.beta_hi;
      // Effective ring size, not the 0 sentinel: a beta-axis-only sweep still
      // switches to the extended columns, and its rows must attribute
      // themselves to the masters count the networks were generated with.
      r.n_masters = pt.n_masters != 0 ? pt.n_masters : spec.sweep.base.n_masters;
      r.policy = std::string(to_string(spec.sweep.policies[p]));
      r.analytic_schedulable = o.analytic_schedulable[p];
      r.analytic_wcrt = o.analytic_wcrt[p];
      if (out.fault_axis) {
        r.degraded_schedulable = o.degraded_schedulable[p];
        r.degraded_wcrt = o.degraded_wcrt[p];
      }
      r.observed_max = o.sim.observed_max[p];
      r.observed_p99 = o.sim.observed_p99[p];
      r.misses = o.sim.misses[p];
      r.completed = o.sim.completed[p];
      r.dropped = o.sim.dropped[p];
      r.bound_violations = o.bound_violations[p];
      // accept_basis(): the degraded verdict when the sweep ran with faults.
      r.accept_but_miss = o.accept_basis()[p] && o.sim.misses[p] > 0;
      out.rows.push_back(std::move(r));
    }
  }
  return out;
}

}  // namespace profisched::engine
