#include "obs/progress.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/metrics.hpp"

namespace profisched::obs {

namespace {

constexpr std::int64_t kHeartbeatNs = 250'000'000;  // 250 ms between lines

std::atomic<bool> g_progress{false};

}  // namespace

bool progress_enabled() noexcept { return g_progress.load(std::memory_order_relaxed); }

void set_progress_enabled(bool on) noexcept { g_progress.store(on, std::memory_order_relaxed); }

ProgressMeter::ProgressMeter(std::string label, std::uint64_t total)
    : label_(std::move(label)),
      total_(total),
      start_ns_(now_ns()),
      next_print_ns_(start_ns_ + kHeartbeatNs) {}

ProgressMeter::~ProgressMeter() {
  // A sub-heartbeat run stays silent; once a heartbeat went out, close the
  // story with the final count so logs never end mid-flight.
  if (printed_.load(std::memory_order_relaxed)) {
    print_line(done_.load(std::memory_order_relaxed), now_ns());
  }
}

void ProgressMeter::tick(std::uint64_t n) {
  const std::uint64_t done = done_.fetch_add(n, std::memory_order_relaxed) + n;
  const std::int64_t now = now_ns();
  std::int64_t deadline = next_print_ns_.load(std::memory_order_relaxed);
  if (now < deadline) return;
  // One winner per heartbeat window prints; everyone else moves on.
  if (next_print_ns_.compare_exchange_strong(deadline, now + kHeartbeatNs,
                                             std::memory_order_relaxed)) {
    printed_.store(true, std::memory_order_relaxed);
    print_line(done, now);
  }
}

void ProgressMeter::print_line(std::uint64_t done, std::int64_t now) {
  const double secs = static_cast<double>(now - start_ns_) / 1e9;
  const double rate = secs > 0.0 ? static_cast<double>(done) / secs : 0.0;
  const double pct =
      total_ > 0 ? 100.0 * static_cast<double>(done) / static_cast<double>(total_) : 0.0;
  const std::uint64_t left = done < total_ ? total_ - done : 0;
  const double eta = rate > 0.0 ? static_cast<double>(left) / rate : 0.0;
  std::fprintf(stderr, "progress: %s %" PRIu64 "/%" PRIu64 " (%.1f%%) %.0f/s eta %.1fs\n",
               label_.c_str(), done, total_, pct, rate, eta);
}

}  // namespace profisched::obs
