#include "obs/progress.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/metrics.hpp"

namespace profisched::obs {

namespace {

std::atomic<bool> g_progress{false};

}  // namespace

bool progress_enabled() noexcept { return g_progress.load(std::memory_order_relaxed); }

void set_progress_enabled(bool on) noexcept { g_progress.store(on, std::memory_order_relaxed); }

ProgressMeter::ProgressMeter(std::string label, std::uint64_t total, std::int64_t heartbeat_ns)
    : label_(std::move(label)),
      total_(total),
      heartbeat_ns_(heartbeat_ns),
      start_ns_(now_ns()),
      next_print_ns_(start_ns_ + heartbeat_ns) {}

ProgressMeter::~ProgressMeter() {
  // A sub-heartbeat run stays silent; once a heartbeat went out, close the
  // story with the final count so logs never end mid-flight. print_line
  // serializes against any still-in-flight winning tick and skips the write
  // when that tick already reported this exact count.
  if (printed_.load(std::memory_order_relaxed)) {
    print_line(done_.load(std::memory_order_relaxed), now_ns());
  }
}

void ProgressMeter::tick(std::uint64_t n) {
  const std::uint64_t done = done_.fetch_add(n, std::memory_order_relaxed) + n;
  const std::int64_t now = now_ns();
  std::int64_t deadline = next_print_ns_.load(std::memory_order_relaxed);
  if (now < deadline) return;
  // One winner per heartbeat window prints; everyone else moves on.
  if (next_print_ns_.compare_exchange_strong(deadline, now + heartbeat_ns_,
                                             std::memory_order_relaxed)) {
    printed_.store(true, std::memory_order_relaxed);
    print_line(done, now);
  }
}

std::string ProgressMeter::line(std::uint64_t done, std::int64_t now) const {
  const double secs = static_cast<double>(now - start_ns_) / 1e9;
  const double rate = secs > 0.0 ? static_cast<double>(done) / secs : 0.0;
  const double pct =
      total_ > 0 ? 100.0 * static_cast<double>(done) / static_cast<double>(total_) : 0.0;
  const std::uint64_t left = done < total_ ? total_ - done : 0;
  char buf[192];
  if (rate > 0.0) {
    std::snprintf(buf, sizeof buf,
                  "progress: %s %" PRIu64 "/%" PRIu64 " (%.1f%%) %.0f/s eta %.1fs",
                  label_.c_str(), done, total_, pct, rate,
                  static_cast<double>(left) / rate);
  } else {
    // No completions observed yet — an extrapolated "eta 0.0s" would be a
    // lie, so mark the ETA unknown instead.
    std::snprintf(buf, sizeof buf, "progress: %s %" PRIu64 "/%" PRIu64 " (%.1f%%) 0/s eta ?",
                  label_.c_str(), done, total_, pct);
  }
  return buf;
}

void ProgressMeter::print_line(std::uint64_t done, std::int64_t now) {
  std::lock_guard lock(print_mu_);
  if (done == last_printed_done_) return;  // final line already told this story
  last_printed_done_ = done;
  std::fprintf(stderr, "%s\n", line(done, now).c_str());
}

}  // namespace profisched::obs
