// progress.hpp — opt-in stderr heartbeat for long sweeps. A ProgressMeter
// counts completed work items and prints a rate-limited one-line report
// (done/total, percent, items/s, ETA) at most once per heartbeat window,
// from whichever worker thread happens to cross the deadline — the claim is
// a single CAS, so ticks never serialize on the hot path. Only the actual
// stderr write is mutex-guarded, so the final destructor line can never
// interleave with (or duplicate) a concurrently winning tick. The meter is
// only constructed when --progress was given (obs::progress_enabled());
// primary outputs are untouched either way, since everything goes to stderr.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace profisched::obs {

/// Set by the CLI iff --progress was given.
[[nodiscard]] bool progress_enabled() noexcept;
void set_progress_enabled(bool on) noexcept;

class ProgressMeter {
 public:
  /// Default spacing between heartbeat lines (250 ms).
  static constexpr std::int64_t kDefaultHeartbeatNs = 250'000'000;

  /// `heartbeat_ns` is injectable so tests can force every tick to win a
  /// window (0) without wall-clock sleeps.
  ProgressMeter(std::string label, std::uint64_t total,
                std::int64_t heartbeat_ns = kDefaultHeartbeatNs);
  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;
  /// Prints the final 100% line if any heartbeat was emitted — unless the
  /// last heartbeat already reported the final count (no duplicate close).
  ~ProgressMeter();

  void tick(std::uint64_t n = 1);

  /// Render one report line (no trailing newline). Exposed so tests can pin
  /// the format, notably the `eta ?` marker when the rate is still zero.
  [[nodiscard]] std::string line(std::uint64_t done, std::int64_t now) const;

 private:
  void print_line(std::uint64_t done, std::int64_t now);

  std::string label_;
  std::uint64_t total_;
  std::int64_t heartbeat_ns_;
  std::int64_t start_ns_;
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::int64_t> next_print_ns_;
  std::atomic<bool> printed_{false};
  std::mutex print_mu_;  // serializes stderr writes; guards last_printed_done_
  std::uint64_t last_printed_done_ = UINT64_MAX;  // sentinel: nothing printed
};

}  // namespace profisched::obs
