// progress.hpp — opt-in stderr heartbeat for long sweeps. A ProgressMeter
// counts completed work items and prints a rate-limited one-line report
// (done/total, percent, items/s, ETA) at most every 250 ms, from whichever
// worker thread happens to cross the deadline — the claim is a single CAS,
// so ticks never serialize. The meter is only constructed when --progress
// was given (obs::progress_enabled()); primary outputs are untouched either
// way, since everything goes to stderr.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace profisched::obs {

/// Set by the CLI iff --progress was given.
[[nodiscard]] bool progress_enabled() noexcept;
void set_progress_enabled(bool on) noexcept;

class ProgressMeter {
 public:
  ProgressMeter(std::string label, std::uint64_t total);
  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;
  /// Prints the final 100% line if any heartbeat was emitted.
  ~ProgressMeter();

  void tick(std::uint64_t n = 1);

 private:
  void print_line(std::uint64_t done, std::int64_t now);

  std::string label_;
  std::uint64_t total_;
  std::int64_t start_ns_;
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::int64_t> next_print_ns_;
  std::atomic<bool> printed_{false};
};

}  // namespace profisched::obs
