// manifest.hpp — the versioned metrics + run-manifest JSON sidecar emitted
// by `--metrics FILE` on every subcommand. One document records what ran
// (subcommand, argv, config digest, scenario/thread counts, wall time) and
// every registry series at exit, so an artifact's provenance and cost are
// reconstructable without rerunning. The grammar sticks to the engine's
// serialize conventions (to_chars numbers, escape-free strings) so the
// existing JsonCursor parses it and output bytes are host-independent.
//
// Schema "profisched-metrics-v1":
//   {
//     "schema": "profisched-metrics-v1",
//     "tool": "profisched", "subcommand": "sweep",
//     "argv": ["--scenarios", "40", ...],
//     "config_digest": U64,          FNV-1a of the serialized shard-spec
//     "scenarios": N, "points": N, "policies": N, "replications": N,
//     "threads": N,
//     "elapsed_s": F,                fixed-6 wall time of the whole command
//     "counters":   [{"name": S, "value": U64}, ...],        sorted by name
//     "gauges":     [{"name": S, "value": U64}, ...],
//     "timers":     [{"name": S, "count": U64, "total_ns": U64}, ...],
//     "histograms": [{"name": S, "count": U64, "sum": U64,
//                     "bins": [U64, ...]}, ...]    power-of-two bins,
//   }                                              trailing zeros trimmed
//
// Invariants metrics_check.py enforces: sum of `phase.*` timer totals is
// <= elapsed_s (phases are sequential sub-intervals of the command), cache
// hits + misses == lookups, histogram count == sum(bins), sorted unique
// series names.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace profisched::obs {

inline constexpr const char* kManifestSchema = "profisched-metrics-v1";

/// Provenance half of the sidecar: what ran and how big it was.
struct RunInfo {
  std::string tool = "profisched";
  std::string subcommand;
  std::vector<std::string> argv;  ///< flags after the subcommand, verbatim
  std::uint64_t config_digest = 0;
  std::uint64_t scenarios = 0;  ///< scenarios this process executed
  std::uint64_t points = 0;
  std::uint64_t policies = 0;
  std::uint64_t replications = 0;
  std::uint64_t threads = 0;
  double elapsed_s = 0.0;  ///< whole-command wall time
};

struct Manifest {
  RunInfo run;
  Snapshot metrics;
};

/// Serialize to the schema above. Strings are sanitized to the escape-free
/// grammar ('"', '\\', and control bytes become '?').
[[nodiscard]] std::string to_json(const Manifest& m);

/// Parse a to_json() document back. Throws std::invalid_argument on
/// malformed input or a schema mismatch.
[[nodiscard]] Manifest parse_manifest(const std::string& json);

/// Write to_json(m) to `path`; returns false on I/O failure.
[[nodiscard]] bool write_manifest_file(const std::string& path, const Manifest& m);

}  // namespace profisched::obs
