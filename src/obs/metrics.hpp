// metrics.hpp — process-wide telemetry registry: named monotonic counters,
// max-gauges, fixed-bin (power-of-two) latency histograms, and count/total
// timers with an RAII Span. The design rule is the same zero-perturbation
// discipline the dist layer runs under: instrumentation must never change a
// primary artifact byte and must never add locks, syscalls, or allocations
// to a sweep/sim inner loop.
//
//   * Counter increments are relaxed atomic adds into per-thread shards
//     (cache-line padded, indexed by a cached thread hash) that are summed
//     only at snapshot() time — no contention on the hot path.
//   * Gauges are single relaxed atomics supporting set() and update_max()
//     (high-water tracking, e.g. queue depth).
//   * Histograms bin by bit-width (bin k holds values with bit_width == k,
//     bin 0 holds zero), so record() is two relaxed adds and no float math.
//   * Timers accumulate {count, total_ns}; Span reads the steady clock only
//     when obs::enabled() was set (the CLI sets it iff --metrics was given),
//     so with the flag off a Span is a single relaxed bool load.
//
// Handles (Counter/Gauge/Timer/Histogram) are trivially copyable pointers
// into registry-owned, address-stable state; a default-constructed handle is
// a safe no-op. The global() registry is created on first use and never
// destroyed, so static-duration handles in any TU stay valid forever.
// reset() zeroes every value but keeps registration (handles stay live) —
// used by tests and by anything computing per-run deltas.
//
// Series naming scheme (documented in README "Observability"):
//   phase.*   sequential top-level CLI phases; sum(total_ns) <= run wall time
//   runner.*  SweepRunner stage spans and scenario counters (per-worker,
//             so timer totals may exceed wall time)
//   pool.*    ThreadPool task accounting
//   cache.*   runner-level memo/result-cache accounting;
//   cache.file.*  ResultCache file-level accounting (bytes, heals)
//   engine.*  analysis-engine memoisation
//   sim.*     simulation kernel bridges (events, pool recycles, faults)
//   opt.*     optimizer bisection probe counts
//   dist.*    shard/merge row + spec-validation accounting
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace profisched::obs {

/// Global switch for the *timed* instrumentation (clock reads in Span and
/// the per-task latency histogram). Counters/gauges stay live regardless —
/// they are plain relaxed arithmetic and feed always-on surfaces like the
/// CLI cache print. Set by the CLI iff --metrics was given.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotonic nanosecond clock (steady_clock under the hood).
[[nodiscard]] std::int64_t now_ns() noexcept;

namespace detail {

inline constexpr std::size_t kCounterShards = 16;
inline constexpr std::size_t kHistogramBins = 64;

/// One cache line per shard so concurrent writers never false-share.
struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> v{0};
};

/// Stable per-thread shard index in [0, kCounterShards).
[[nodiscard]] std::size_t shard_index() noexcept;

struct CounterState {
  std::string name;
  std::array<CounterCell, kCounterShards> cells{};
};

struct GaugeState {
  std::string name;
  std::atomic<std::uint64_t> v{0};
};

struct TimerState {
  std::string name;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
};

struct HistogramState {
  std::string name;
  std::atomic<std::uint64_t> sum{0};
  std::array<std::atomic<std::uint64_t>, kHistogramBins> bins{};
};

}  // namespace detail

/// Monotonic counter. add() is one relaxed fetch_add into this thread's
/// shard; value() sums shards (approximate only while writers are live).
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) noexcept {
    if (s_ != nullptr) {
      s_->cells[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept;

 private:
  friend class Registry;
  explicit Counter(detail::CounterState* s) noexcept : s_(s) {}
  detail::CounterState* s_ = nullptr;
};

/// Last-value / high-water gauge.
class Gauge {
 public:
  Gauge() = default;
  void set(std::uint64_t v) noexcept {
    if (s_ != nullptr) s_->v.store(v, std::memory_order_relaxed);
  }
  /// Raise the gauge to v if v is larger (lock-free CAS loop).
  void update_max(std::uint64_t v) noexcept {
    if (s_ == nullptr) return;
    std::uint64_t cur = s_->v.load(std::memory_order_relaxed);
    while (cur < v && !s_->v.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return s_ == nullptr ? 0 : s_->v.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeState* s) noexcept : s_(s) {}
  detail::GaugeState* s_ = nullptr;
};

/// Accumulating timer: record() adds one observation of `ns` nanoseconds.
class Timer {
 public:
  Timer() = default;
  void record(std::uint64_t ns) noexcept {
    if (s_ != nullptr) {
      s_->count.fetch_add(1, std::memory_order_relaxed);
      s_->total_ns.fetch_add(ns, std::memory_order_relaxed);
    }
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return s_ == nullptr ? 0 : s_->count.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return s_ == nullptr ? 0 : s_->total_ns.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Timer(detail::TimerState* s) noexcept : s_(s) {}
  detail::TimerState* s_ = nullptr;
};

/// Fixed-bin latency histogram: bin 0 holds value 0, bin k holds values
/// whose bit width is k (i.e. [2^(k-1), 2^k)), capped at the last bin.
class Histogram {
 public:
  Histogram() = default;
  void record(std::uint64_t v) noexcept {
    if (s_ == nullptr) return;
    std::size_t bin = 0;
    std::uint64_t x = v;
    while (x != 0) {
      ++bin;
      x >>= 1;
    }
    if (bin >= detail::kHistogramBins) bin = detail::kHistogramBins - 1;
    s_->bins[bin].fetch_add(1, std::memory_order_relaxed);
    s_->sum.fetch_add(v, std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramState* s) noexcept : s_(s) {}
  detail::HistogramState* s_ = nullptr;
};

/// RAII phase timer. Records wall nanoseconds into a Timer on stop()/dtor,
/// but only when obs::enabled() was true at construction — with metrics off
/// the constructor is one relaxed load and the destructor a branch.
class Span {
 public:
  explicit Span(Timer t) noexcept : t_(t), t0_(enabled() ? now_ns() : -1) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { stop(); }
  void stop() noexcept {
    if (t0_ >= 0) {
      t_.record(static_cast<std::uint64_t>(now_ns() - t0_));
      t0_ = -1;
    }
  }

 private:
  Timer t_;
  std::int64_t t0_;
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct TimerSample {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;  ///< sum of bins
  std::uint64_t sum = 0;    ///< sum of recorded values
  std::vector<std::uint64_t> bins;  ///< trailing zero bins trimmed
};

/// Point-in-time merge of every registered series, each kind sorted by name.
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<CounterSample> gauges;
  std::vector<TimerSample> timers;
  std::vector<HistogramSample> histograms;

  /// Value of a counter/gauge by name; 0 if absent.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const noexcept;
  [[nodiscard]] std::uint64_t gauge(std::string_view name) const noexcept;
  /// Timer sample by name; zero-valued sample (empty name) if absent.
  [[nodiscard]] TimerSample timer(std::string_view name) const noexcept;
};

/// Named-series registry. Lookup/creation takes a mutex; the returned
/// handles do not. Series state lives in deques so addresses are stable for
/// the registry's lifetime. Asking for an existing name returns a handle to
/// the same state (kinds are independent namespaces).
class Registry {
 public:
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  [[nodiscard]] Timer timer(std::string_view name);
  [[nodiscard]] Histogram histogram(std::string_view name);

  [[nodiscard]] Snapshot snapshot() const;

  /// Zero every value; registration (and all handles) stay valid.
  void reset();

  /// The process-wide registry: created on first use, never destroyed.
  [[nodiscard]] static Registry& global();

 private:
  mutable std::mutex mu_;
  std::deque<detail::CounterState> counters_;
  std::deque<detail::GaugeState> gauges_;
  std::deque<detail::TimerState> timers_;
  std::deque<detail::HistogramState> histograms_;
};

}  // namespace profisched::obs
