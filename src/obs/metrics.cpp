#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace profisched::obs {

namespace {

std::atomic<bool> g_enabled{false};

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept { g_enabled.store(on, std::memory_order_relaxed); }

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace detail {

std::size_t shard_index() noexcept {
  // One hash per thread, computed lazily and cached. +1 so the sentinel 0
  // ("not yet computed") can never collide with a real cached value.
  thread_local std::size_t cached = 0;
  if (cached == 0) {
    cached = (std::hash<std::thread::id>{}(std::this_thread::get_id()) % kCounterShards) + 1;
  }
  return cached - 1;
}

}  // namespace detail

std::uint64_t Counter::value() const noexcept {
  if (s_ == nullptr) return 0;
  std::uint64_t total = 0;
  for (const auto& cell : s_->cells) {
    total += cell.v.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Snapshot::counter(std::string_view name) const noexcept {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::uint64_t Snapshot::gauge(std::string_view name) const noexcept {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

TimerSample Snapshot::timer(std::string_view name) const noexcept {
  for (const auto& t : timers) {
    if (t.name == name) return t;
  }
  return {};
}

Counter Registry::counter(std::string_view name) {
  const std::scoped_lock lock(mu_);
  for (auto& s : counters_) {
    if (s.name == name) return Counter(&s);
  }
  auto& s = counters_.emplace_back();
  s.name = std::string(name);
  return Counter(&s);
}

Gauge Registry::gauge(std::string_view name) {
  const std::scoped_lock lock(mu_);
  for (auto& s : gauges_) {
    if (s.name == name) return Gauge(&s);
  }
  auto& s = gauges_.emplace_back();
  s.name = std::string(name);
  return Gauge(&s);
}

Timer Registry::timer(std::string_view name) {
  const std::scoped_lock lock(mu_);
  for (auto& s : timers_) {
    if (s.name == name) return Timer(&s);
  }
  auto& s = timers_.emplace_back();
  s.name = std::string(name);
  return Timer(&s);
}

Histogram Registry::histogram(std::string_view name) {
  const std::scoped_lock lock(mu_);
  for (auto& s : histograms_) {
    if (s.name == name) return Histogram(&s);
  }
  auto& s = histograms_.emplace_back();
  s.name = std::string(name);
  return Histogram(&s);
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  {
    const std::scoped_lock lock(mu_);
    out.counters.reserve(counters_.size());
    for (const auto& s : counters_) {
      std::uint64_t total = 0;
      for (const auto& cell : s.cells) total += cell.v.load(std::memory_order_relaxed);
      out.counters.push_back({s.name, total});
    }
    out.gauges.reserve(gauges_.size());
    for (const auto& s : gauges_) {
      out.gauges.push_back({s.name, s.v.load(std::memory_order_relaxed)});
    }
    out.timers.reserve(timers_.size());
    for (const auto& s : timers_) {
      out.timers.push_back({s.name, s.count.load(std::memory_order_relaxed),
                            s.total_ns.load(std::memory_order_relaxed)});
    }
    out.histograms.reserve(histograms_.size());
    for (const auto& s : histograms_) {
      HistogramSample h;
      h.name = s.name;
      h.sum = s.sum.load(std::memory_order_relaxed);
      std::size_t last = 0;
      for (std::size_t i = 0; i < detail::kHistogramBins; ++i) {
        const std::uint64_t b = s.bins[i].load(std::memory_order_relaxed);
        h.count += b;
        if (b != 0) last = i + 1;
        if (i < detail::kHistogramBins) h.bins.push_back(b);
      }
      h.bins.resize(last);  // trim trailing zero bins
      out.histograms.push_back(std::move(h));
    }
  }
  const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.timers.begin(), out.timers.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

void Registry::reset() {
  const std::scoped_lock lock(mu_);
  for (auto& s : counters_) {
    for (auto& cell : s.cells) cell.v.store(0, std::memory_order_relaxed);
  }
  for (auto& s : gauges_) s.v.store(0, std::memory_order_relaxed);
  for (auto& s : timers_) {
    s.count.store(0, std::memory_order_relaxed);
    s.total_ns.store(0, std::memory_order_relaxed);
  }
  for (auto& s : histograms_) {
    s.sum.store(0, std::memory_order_relaxed);
    for (auto& b : s.bins) b.store(0, std::memory_order_relaxed);
  }
}

Registry& Registry::global() {
  // Deliberately leaked: handles stored in static-duration objects anywhere
  // in the process must outlive every destructor.
  static Registry* g = new Registry();
  return *g;
}

}  // namespace profisched::obs
