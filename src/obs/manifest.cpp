#include "obs/manifest.hpp"

#include <cstdio>

#include "engine/detail/serialize.hpp"

namespace profisched::obs {

namespace {

using engine::detail::fmt_double;
using engine::detail::JsonCursor;

/// The engine's JSON grammar has no string escapes; keep emitted strings
/// inside it rather than teaching every reader escape handling.
std::string sanitize(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) c = '?';
  }
  return out;
}

void append_u64(std::string& out, std::uint64_t v) { out += std::to_string(v); }

}  // namespace

std::string to_json(const Manifest& m) {
  std::string out;
  out.reserve(1024);
  out += "{\n";
  out += "  \"schema\": \"";
  out += kManifestSchema;
  out += "\",\n";
  out += "  \"tool\": \"" + sanitize(m.run.tool) + "\",\n";
  out += "  \"subcommand\": \"" + sanitize(m.run.subcommand) + "\",\n";
  out += "  \"argv\": [";
  for (std::size_t i = 0; i < m.run.argv.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + sanitize(m.run.argv[i]) + "\"";
  }
  out += "],\n";
  out += "  \"config_digest\": ";
  append_u64(out, m.run.config_digest);
  out += ",\n  \"scenarios\": ";
  append_u64(out, m.run.scenarios);
  out += ",\n  \"points\": ";
  append_u64(out, m.run.points);
  out += ",\n  \"policies\": ";
  append_u64(out, m.run.policies);
  out += ",\n  \"replications\": ";
  append_u64(out, m.run.replications);
  out += ",\n  \"threads\": ";
  append_u64(out, m.run.threads);
  out += ",\n  \"elapsed_s\": " + fmt_double(m.run.elapsed_s);
  out += ",\n  \"counters\": [";
  for (std::size_t i = 0; i < m.metrics.counters.size(); ++i) {
    const auto& c = m.metrics.counters[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + sanitize(c.name) + "\", \"value\": ";
    append_u64(out, c.value);
    out += "}";
  }
  out += m.metrics.counters.empty() ? "]" : "\n  ]";
  out += ",\n  \"gauges\": [";
  for (std::size_t i = 0; i < m.metrics.gauges.size(); ++i) {
    const auto& g = m.metrics.gauges[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + sanitize(g.name) + "\", \"value\": ";
    append_u64(out, g.value);
    out += "}";
  }
  out += m.metrics.gauges.empty() ? "]" : "\n  ]";
  out += ",\n  \"timers\": [";
  for (std::size_t i = 0; i < m.metrics.timers.size(); ++i) {
    const auto& t = m.metrics.timers[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + sanitize(t.name) + "\", \"count\": ";
    append_u64(out, t.count);
    out += ", \"total_ns\": ";
    append_u64(out, t.total_ns);
    out += "}";
  }
  out += m.metrics.timers.empty() ? "]" : "\n  ]";
  out += ",\n  \"histograms\": [";
  for (std::size_t i = 0; i < m.metrics.histograms.size(); ++i) {
    const auto& h = m.metrics.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + sanitize(h.name) + "\", \"count\": ";
    append_u64(out, h.count);
    out += ", \"sum\": ";
    append_u64(out, h.sum);
    out += ", \"bins\": [";
    for (std::size_t b = 0; b < h.bins.size(); ++b) {
      if (b != 0) out += ", ";
      append_u64(out, h.bins[b]);
    }
    out += "]}";
  }
  out += m.metrics.histograms.empty() ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

Manifest parse_manifest(const std::string& json) {
  Manifest m;
  JsonCursor c(json);
  c.expect('{');
  c.key("schema");
  const std::string schema = c.string();
  if (schema != kManifestSchema) {
    throw std::invalid_argument("obs manifest: unsupported schema '" + schema + "'");
  }
  c.expect(',');
  c.key("tool");
  m.run.tool = c.string();
  c.expect(',');
  c.key("subcommand");
  m.run.subcommand = c.string();
  c.expect(',');
  c.key("argv");
  c.expect('[');
  if (!c.peek(']')) {
    do {
      m.run.argv.push_back(c.string());
    } while (c.peek(',') && (c.expect(','), true));
  }
  c.expect(']');
  c.expect(',');
  c.key("config_digest");
  m.run.config_digest = c.uinteger();
  c.expect(',');
  c.key("scenarios");
  m.run.scenarios = c.uinteger();
  c.expect(',');
  c.key("points");
  m.run.points = c.uinteger();
  c.expect(',');
  c.key("policies");
  m.run.policies = c.uinteger();
  c.expect(',');
  c.key("replications");
  m.run.replications = c.uinteger();
  c.expect(',');
  c.key("threads");
  m.run.threads = c.uinteger();
  c.expect(',');
  c.key("elapsed_s");
  m.run.elapsed_s = c.number();
  c.expect(',');

  const auto parse_named = [&](const char* section, auto&& body) {
    c.key(section);
    c.expect('[');
    if (!c.peek(']')) {
      do {
        c.expect('{');
        c.key("name");
        body(c.string());
        c.expect('}');
      } while (c.peek(',') && (c.expect(','), true));
    }
    c.expect(']');
  };

  parse_named("counters", [&](std::string name) {
    c.expect(',');
    c.key("value");
    m.metrics.counters.push_back({std::move(name), c.uinteger()});
  });
  c.expect(',');
  parse_named("gauges", [&](std::string name) {
    c.expect(',');
    c.key("value");
    m.metrics.gauges.push_back({std::move(name), c.uinteger()});
  });
  c.expect(',');
  parse_named("timers", [&](std::string name) {
    c.expect(',');
    c.key("count");
    const std::uint64_t count = c.uinteger();
    c.expect(',');
    c.key("total_ns");
    m.metrics.timers.push_back({std::move(name), count, c.uinteger()});
  });
  c.expect(',');
  parse_named("histograms", [&](std::string name) {
    HistogramSample h;
    h.name = std::move(name);
    c.expect(',');
    c.key("count");
    h.count = c.uinteger();
    c.expect(',');
    c.key("sum");
    h.sum = c.uinteger();
    c.expect(',');
    c.key("bins");
    c.expect('[');
    if (!c.peek(']')) {
      do {
        h.bins.push_back(c.uinteger());
      } while (c.peek(',') && (c.expect(','), true));
    }
    c.expect(']');
    m.metrics.histograms.push_back(std::move(h));
  });
  c.expect('}');
  return m;
}

bool write_manifest_file(const std::string& path, const Manifest& m) {
  const std::string text = to_json(m);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace profisched::obs
