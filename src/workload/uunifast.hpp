// uunifast.hpp — the UUniFast algorithm (Bini & Buttazzo): draws n per-task
// utilizations summing exactly to U, uniformly over the valid simplex. The
// standard unbiased workload generator for schedulability experiments; every
// acceptance-ratio bench in bench/ uses it.
#pragma once

#include <vector>

#include "sim/rng.hpp"

namespace profisched::workload {

/// n utilizations with Σ u_i == total_u, uniformly distributed on the
/// simplex. Requires n >= 1 and total_u > 0.
[[nodiscard]] std::vector<double> uunifast(std::size_t n, double total_u, sim::Rng& rng);

}  // namespace profisched::workload
