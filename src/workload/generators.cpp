#include "workload/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "profibus/ttr_setting.hpp"
#include "workload/uunifast.hpp"

namespace profisched::workload {

Ticks log_uniform(Ticks lo, Ticks hi, sim::Rng& rng) {
  if (lo >= hi) return lo;
  const double llo = std::log(static_cast<double>(lo));
  const double lhi = std::log(static_cast<double>(hi));
  const double v = std::exp(llo + (lhi - llo) * rng.uniform01());
  return std::clamp(static_cast<Ticks>(std::llround(v)), lo, hi);
}

TaskSet random_task_set(const TaskSetParams& p, sim::Rng& rng) {
  const std::vector<double> u = uunifast(p.n, p.total_u, rng);
  std::vector<profisched::Task> tasks;
  tasks.reserve(p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    profisched::Task t;
    t.T = log_uniform(p.t_min, p.t_max, rng);
    t.C = std::clamp<Ticks>(static_cast<Ticks>(std::llround(u[i] * static_cast<double>(t.T))),
                            1, t.T);
    const double beta = p.deadline_lo + (p.deadline_hi - p.deadline_lo) * rng.uniform01();
    t.D = std::clamp<Ticks>(static_cast<Ticks>(std::llround(beta * static_cast<double>(t.T))),
                            t.C, std::max<Ticks>(t.T, t.C));
    if (p.jitter_max > 0) t.J = rng.uniform(std::min(p.jitter_max, t.D - t.C));
    t.name = "task" + std::to_string(i);
    tasks.push_back(std::move(t));
  }
  return TaskSet{std::move(tasks)};
}

namespace {

/// Legacy generation: log-uniform periods, frame specs interleaved with the
/// period/deadline draws (the RNG draw order is load-bearing for
/// reproducibility of the pre-engine benches — do not reorder).
void fill_period_driven(const NetworkParams& p, GeneratedNetwork& out, sim::Rng& rng) {
  for (std::size_t k = 0; k < p.n_masters; ++k) {
    profibus::Master master;
    master.name = "master" + std::to_string(k);
    for (std::size_t i = 0; i < p.streams_per_master; ++i) {
      profibus::MessageCycleSpec spec{
          .request_chars = rng.uniform(p.request_chars_min, p.request_chars_max),
          .response_chars = rng.uniform(p.response_chars_min, p.response_chars_max),
      };
      profibus::MessageStream s;
      s.Ch = profibus::worst_case_cycle_time(out.net.bus, spec);
      s.T = log_uniform(p.t_min, p.t_max, rng);
      const double beta = p.deadline_lo + (p.deadline_hi - p.deadline_lo) * rng.uniform01();
      s.D = std::max<Ticks>(static_cast<Ticks>(std::llround(beta * static_cast<double>(s.T))),
                            s.Ch);
      s.name = master.name + ".s" + std::to_string(i);
      master.high_streams.push_back(std::move(s));
      out.specs[k].push_back(spec);
    }
    if (p.low_priority_traffic) {
      const profibus::MessageCycleSpec lp_spec{
          .request_chars = p.request_chars_max,
          .response_chars = p.response_chars_max,
      };
      master.longest_low_cycle = profibus::worst_case_cycle_time(out.net.bus, lp_spec);
    }
    out.net.masters.push_back(std::move(master));
  }
}

/// UUniFast generation: per-master token-service utilizations drive periods.
/// One token visit serves one request, so the load a master puts on its own
/// queue is Σ_i T_cycle/T_i — THAT is the quantity schedulability pivots on,
/// and the one UUniFast distributes: u_i drawn with Σ u_i = total_u, then
/// T_i = T_cycle/u_i. Needs a fixed T_TR (T_cycle must be known before the
/// periods exist, which rules out the eq.-15 auto mode); frame sizes and Ch
/// stay PROFIBUS-realistic exactly as in the legacy mode.
void fill_utilization_driven(const NetworkParams& p, GeneratedNetwork& out, sim::Rng& rng) {
  if (p.ttr <= 0) {
    throw std::invalid_argument(
        "random_network: total_u > 0 requires an explicit ttr (T_cycle must be "
        "known before periods can be derived from utilizations)");
  }
  // Pass 1 — structure: frame specs and cycle lengths for every stream.
  for (std::size_t k = 0; k < p.n_masters; ++k) {
    profibus::Master master;
    master.name = "master" + std::to_string(k);
    for (std::size_t i = 0; i < p.streams_per_master; ++i) {
      profibus::MessageCycleSpec spec{
          .request_chars = rng.uniform(p.request_chars_min, p.request_chars_max),
          .response_chars = rng.uniform(p.response_chars_min, p.response_chars_max),
      };
      profibus::MessageStream s;
      s.Ch = profibus::worst_case_cycle_time(out.net.bus, spec);
      s.name = master.name + ".s" + std::to_string(i);
      master.high_streams.push_back(std::move(s));
      out.specs[k].push_back(spec);
    }
    if (p.low_priority_traffic) {
      const profibus::MessageCycleSpec lp_spec{
          .request_chars = p.request_chars_max,
          .response_chars = p.response_chars_max,
      };
      master.longest_low_cycle = profibus::worst_case_cycle_time(out.net.bus, lp_spec);
    }
    out.net.masters.push_back(std::move(master));
  }
  // Pass 2 — timing: every cycle length is now known, so eq. 14 gives
  // T_cycle, and the per-master utilization shares give the periods.
  out.net.ttr = p.ttr;
  const Ticks tcycle = profibus::t_cycle(out.net);
  for (std::size_t k = 0; k < p.n_masters; ++k) {
    const std::vector<double> u = uunifast(p.streams_per_master, p.total_u, rng);
    for (std::size_t i = 0; i < p.streams_per_master; ++i) {
      profibus::MessageStream& s = out.net.masters[k].high_streams[i];
      const double ui = std::max(u[i], 1e-9);
      s.T = std::max<Ticks>(
          s.Ch, static_cast<Ticks>(std::llround(static_cast<double>(tcycle) / ui)));
      const double beta = p.deadline_lo + (p.deadline_hi - p.deadline_lo) * rng.uniform01();
      s.D = std::max<Ticks>(static_cast<Ticks>(std::llround(beta * static_cast<double>(s.T))),
                            s.Ch);
    }
  }
}

}  // namespace

GeneratedNetwork random_network(const NetworkParams& p, sim::Rng& rng) {
  GeneratedNetwork out;
  out.net.bus = profibus::BusParameters{};
  out.specs.resize(p.n_masters);

  if (p.total_u > 0) {
    fill_utilization_driven(p, out, rng);
  } else {
    fill_period_driven(p, out, rng);
  }

  if (p.ttr > 0) {
    out.net.ttr = p.ttr;
  } else {
    out.net.ttr = 1;  // placeholder so ttr_range can validate the network
    const auto best = profibus::max_schedulable_ttr(out.net);
    if (best.has_value()) {
      out.net.ttr = *best;
    } else {
      // FCFS-infeasible set: still produce a runnable network. One longest
      // cycle per master over the ring latency keeps the token moving.
      Ticks fallback = out.net.ring_latency();
      for (const profibus::Master& m : out.net.masters) {
        fallback = sat_add(fallback, m.longest_cycle());
      }
      out.net.ttr = fallback;
    }
  }
  return out;
}

}  // namespace profisched::workload
