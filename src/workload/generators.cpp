#include "workload/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "profibus/ttr_setting.hpp"
#include "workload/uunifast.hpp"

namespace profisched::workload {

std::vector<double> master_utilization_targets(const NetworkParams& p) {
  if (!p.master_split.empty() && p.master_skew != 0.0) {
    throw std::invalid_argument(
        "master_utilization_targets: master_split and master_skew are mutually exclusive");
  }
  if (p.master_skew < 0.0 || !std::isfinite(p.master_skew)) {
    throw std::invalid_argument("master_utilization_targets: master_skew must be >= 0");
  }
  const bool asymmetric = !p.master_split.empty() || p.master_skew > 0.0;
  if (asymmetric && p.total_u <= 0.0) {
    throw std::invalid_argument(
        "master_utilization_targets: master_split/master_skew require total_u > 0 "
        "(utilization-driven generation)");
  }
  if (!asymmetric) {
    // Symmetric legacy semantics: every master's queue independently carries
    // total_u — NOT a network-wide budget. Keeping this exact (the repeated
    // value is p.total_u itself) is what keeps pre-existing sweeps
    // bit-identical.
    return std::vector<double>(p.n_masters, p.total_u);
  }
  std::vector<double> weights;
  if (!p.master_split.empty()) {
    if (p.master_split.size() != p.n_masters) {
      throw std::invalid_argument("master_utilization_targets: master_split carries " +
                                  std::to_string(p.master_split.size()) + " weights for " +
                                  std::to_string(p.n_masters) + " masters");
    }
    for (const double w : p.master_split) {
      if (!std::isfinite(w) || w <= 0.0) {
        throw std::invalid_argument(
            "master_utilization_targets: split weights must be finite and > 0");
      }
    }
    weights = p.master_split;
  } else {
    weights.resize(p.n_masters);
    for (std::size_t k = 0; k < p.n_masters; ++k) {
      weights[k] = std::pow(1.0 + p.master_skew, static_cast<double>(p.n_masters - 1 - k));
      // (1+skew)^(K-1) overflows to inf (or underflows to 0) for reachable
      // inputs — e.g. 4096 masters at skew 1. inf/inf would turn every
      // target into NaN and flow silently into generated workloads; honour
      // the contract and throw instead.
      if (!std::isfinite(weights[k]) || weights[k] <= 0.0) {
        throw std::invalid_argument(
            "master_utilization_targets: master_skew produces non-finite or zero weights "
            "for this many masters; reduce master_skew or n_masters");
      }
    }
  }
  double sum = 0.0;
  for (const double w : weights) sum += w;
  if (!std::isfinite(sum)) {
    throw std::invalid_argument(
        "master_utilization_targets: per-master weights overflow; reduce master_skew, "
        "the weight magnitudes, or n_masters");
  }
  std::vector<double> targets(p.n_masters);
  for (std::size_t k = 0; k < p.n_masters; ++k) {
    targets[k] = p.total_u * (weights[k] / sum);
  }
  return targets;
}

Ticks log_uniform(Ticks lo, Ticks hi, sim::Rng& rng) {
  if (lo >= hi) return lo;
  const double llo = std::log(static_cast<double>(lo));
  const double lhi = std::log(static_cast<double>(hi));
  const double v = std::exp(llo + (lhi - llo) * rng.uniform01());
  return std::clamp(static_cast<Ticks>(std::llround(v)), lo, hi);
}

TaskSet random_task_set(const TaskSetParams& p, sim::Rng& rng) {
  const std::vector<double> u = uunifast(p.n, p.total_u, rng);
  std::vector<profisched::Task> tasks;
  tasks.reserve(p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    profisched::Task t;
    t.T = log_uniform(p.t_min, p.t_max, rng);
    t.C = std::clamp<Ticks>(static_cast<Ticks>(std::llround(u[i] * static_cast<double>(t.T))),
                            1, t.T);
    const double beta = p.deadline_lo + (p.deadline_hi - p.deadline_lo) * rng.uniform01();
    t.D = std::clamp<Ticks>(static_cast<Ticks>(std::llround(beta * static_cast<double>(t.T))),
                            t.C, std::max<Ticks>(t.T, t.C));
    if (p.jitter_max > 0) t.J = rng.uniform(std::min(p.jitter_max, t.D - t.C));
    t.name = "task" + std::to_string(i);
    tasks.push_back(std::move(t));
  }
  return TaskSet{std::move(tasks)};
}

namespace {

/// Legacy generation: log-uniform periods, frame specs interleaved with the
/// period/deadline draws (the RNG draw order is load-bearing for
/// reproducibility of the pre-engine benches — do not reorder).
void fill_period_driven(const NetworkParams& p, GeneratedNetwork& out, sim::Rng& rng) {
  for (std::size_t k = 0; k < p.n_masters; ++k) {
    profibus::Master master;
    master.name = "master" + std::to_string(k);
    for (std::size_t i = 0; i < p.streams_per_master; ++i) {
      profibus::MessageCycleSpec spec{
          .request_chars = rng.uniform(p.request_chars_min, p.request_chars_max),
          .response_chars = rng.uniform(p.response_chars_min, p.response_chars_max),
      };
      profibus::MessageStream s;
      s.Ch = profibus::worst_case_cycle_time(out.net.bus, spec);
      s.T = log_uniform(p.t_min, p.t_max, rng);
      const double beta = p.deadline_lo + (p.deadline_hi - p.deadline_lo) * rng.uniform01();
      s.D = std::max<Ticks>(static_cast<Ticks>(std::llround(beta * static_cast<double>(s.T))),
                            s.Ch);
      s.name = master.name + ".s" + std::to_string(i);
      master.high_streams.push_back(std::move(s));
      out.specs[k].push_back(spec);
    }
    if (p.low_priority_traffic) {
      const profibus::MessageCycleSpec lp_spec{
          .request_chars = p.request_chars_max,
          .response_chars = p.response_chars_max,
      };
      master.longest_low_cycle = profibus::worst_case_cycle_time(out.net.bus, lp_spec);
    }
    out.net.masters.push_back(std::move(master));
  }
}

/// UUniFast generation: per-master token-service utilizations drive periods.
/// One token visit serves one request, so the load a master puts on its own
/// queue is Σ_i T_cycle/T_i — THAT is the quantity schedulability pivots on,
/// and the one UUniFast distributes: u_i drawn with Σ u_i = total_u, then
/// T_i = T_cycle/u_i. Needs a fixed T_TR (T_cycle must be known before the
/// periods exist, which rules out the eq.-15 auto mode); frame sizes and Ch
/// stay PROFIBUS-realistic exactly as in the legacy mode.
void fill_utilization_driven(const NetworkParams& p, GeneratedNetwork& out, sim::Rng& rng) {
  if (p.ttr <= 0) {
    throw std::invalid_argument(
        "random_network: total_u > 0 requires an explicit ttr (T_cycle must be "
        "known before periods can be derived from utilizations)");
  }
  // Pass 1 — structure: frame specs and cycle lengths for every stream.
  for (std::size_t k = 0; k < p.n_masters; ++k) {
    profibus::Master master;
    master.name = "master" + std::to_string(k);
    for (std::size_t i = 0; i < p.streams_per_master; ++i) {
      profibus::MessageCycleSpec spec{
          .request_chars = rng.uniform(p.request_chars_min, p.request_chars_max),
          .response_chars = rng.uniform(p.response_chars_min, p.response_chars_max),
      };
      profibus::MessageStream s;
      s.Ch = profibus::worst_case_cycle_time(out.net.bus, spec);
      s.name = master.name + ".s" + std::to_string(i);
      master.high_streams.push_back(std::move(s));
      out.specs[k].push_back(spec);
    }
    if (p.low_priority_traffic) {
      const profibus::MessageCycleSpec lp_spec{
          .request_chars = p.request_chars_max,
          .response_chars = p.response_chars_max,
      };
      master.longest_low_cycle = profibus::worst_case_cycle_time(out.net.bus, lp_spec);
    }
    out.net.masters.push_back(std::move(master));
  }
  // Pass 2 — timing: every cycle length is now known, so eq. 14 gives
  // T_cycle, and the per-master utilization shares give the periods. In the
  // symmetric mode every target equals p.total_u, so the RNG draw sequence is
  // bit-identical to the pre-split generator.
  const std::vector<double> targets = master_utilization_targets(p);
  out.net.ttr = p.ttr;
  const Ticks tcycle = profibus::t_cycle(out.net);
  for (std::size_t k = 0; k < p.n_masters; ++k) {
    const std::vector<double> u = uunifast(p.streams_per_master, targets[k], rng);
    for (std::size_t i = 0; i < p.streams_per_master; ++i) {
      profibus::MessageStream& s = out.net.masters[k].high_streams[i];
      const double ui = std::max(u[i], 1e-9);
      s.T = std::max<Ticks>(
          s.Ch, static_cast<Ticks>(std::llround(static_cast<double>(tcycle) / ui)));
      const double beta = p.deadline_lo + (p.deadline_hi - p.deadline_lo) * rng.uniform01();
      s.D = std::max<Ticks>(static_cast<Ticks>(std::llround(beta * static_cast<double>(s.T))),
                            s.Ch);
    }
  }
}

}  // namespace

GeneratedNetwork random_network(const NetworkParams& p, sim::Rng& rng) {
  GeneratedNetwork out;
  out.net.bus = profibus::BusParameters{};
  out.specs.resize(p.n_masters);

  if (p.total_u > 0) {
    fill_utilization_driven(p, out, rng);
  } else {
    if (!p.master_split.empty() || p.master_skew != 0.0) {
      // Silently ignoring a split in period-driven mode would make the flag a
      // no-op — the kind of workload drift this layer exists to reject.
      throw std::invalid_argument(
          "random_network: master_split/master_skew require total_u > 0");
    }
    fill_period_driven(p, out, rng);
  }

  if (p.ttr > 0) {
    out.net.ttr = p.ttr;
  } else {
    out.net.ttr = 1;  // placeholder so ttr_range can validate the network
    const auto best = profibus::max_schedulable_ttr(out.net);
    if (best.has_value()) {
      out.net.ttr = *best;
    } else {
      // FCFS-infeasible set: still produce a runnable network. One longest
      // cycle per master over the ring latency keeps the token moving.
      Ticks fallback = out.net.ring_latency();
      for (const profibus::Master& m : out.net.masters) {
        fallback = sat_add(fallback, m.longest_cycle());
      }
      out.net.ttr = fallback;
    }
  }
  return out;
}

}  // namespace profisched::workload
