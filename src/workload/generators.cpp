#include "workload/generators.hpp"

#include <algorithm>
#include <cmath>

#include "profibus/ttr_setting.hpp"
#include "workload/uunifast.hpp"

namespace profisched::workload {

Ticks log_uniform(Ticks lo, Ticks hi, sim::Rng& rng) {
  if (lo >= hi) return lo;
  const double llo = std::log(static_cast<double>(lo));
  const double lhi = std::log(static_cast<double>(hi));
  const double v = std::exp(llo + (lhi - llo) * rng.uniform01());
  return std::clamp(static_cast<Ticks>(std::llround(v)), lo, hi);
}

TaskSet random_task_set(const TaskSetParams& p, sim::Rng& rng) {
  const std::vector<double> u = uunifast(p.n, p.total_u, rng);
  std::vector<profisched::Task> tasks;
  tasks.reserve(p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    profisched::Task t;
    t.T = log_uniform(p.t_min, p.t_max, rng);
    t.C = std::clamp<Ticks>(static_cast<Ticks>(std::llround(u[i] * static_cast<double>(t.T))),
                            1, t.T);
    const double beta = p.deadline_lo + (p.deadline_hi - p.deadline_lo) * rng.uniform01();
    t.D = std::clamp<Ticks>(static_cast<Ticks>(std::llround(beta * static_cast<double>(t.T))),
                            t.C, std::max<Ticks>(t.T, t.C));
    if (p.jitter_max > 0) t.J = rng.uniform(std::min(p.jitter_max, t.D - t.C));
    t.name = "task" + std::to_string(i);
    tasks.push_back(std::move(t));
  }
  return TaskSet{std::move(tasks)};
}

GeneratedNetwork random_network(const NetworkParams& p, sim::Rng& rng) {
  GeneratedNetwork out;
  out.net.bus = profibus::BusParameters{};
  out.specs.resize(p.n_masters);

  for (std::size_t k = 0; k < p.n_masters; ++k) {
    profibus::Master master;
    master.name = "master" + std::to_string(k);
    for (std::size_t i = 0; i < p.streams_per_master; ++i) {
      profibus::MessageCycleSpec spec{
          .request_chars = rng.uniform(p.request_chars_min, p.request_chars_max),
          .response_chars = rng.uniform(p.response_chars_min, p.response_chars_max),
      };
      profibus::MessageStream s;
      s.Ch = profibus::worst_case_cycle_time(out.net.bus, spec);
      s.T = log_uniform(p.t_min, p.t_max, rng);
      const double beta = p.deadline_lo + (p.deadline_hi - p.deadline_lo) * rng.uniform01();
      s.D = std::max<Ticks>(static_cast<Ticks>(std::llround(beta * static_cast<double>(s.T))),
                            s.Ch);
      s.name = master.name + ".s" + std::to_string(i);
      master.high_streams.push_back(std::move(s));
      out.specs[k].push_back(spec);
    }
    if (p.low_priority_traffic) {
      const profibus::MessageCycleSpec lp_spec{
          .request_chars = p.request_chars_max,
          .response_chars = p.response_chars_max,
      };
      master.longest_low_cycle = profibus::worst_case_cycle_time(out.net.bus, lp_spec);
    }
    out.net.masters.push_back(std::move(master));
  }

  if (p.ttr > 0) {
    out.net.ttr = p.ttr;
  } else {
    out.net.ttr = 1;  // placeholder so ttr_range can validate the network
    const auto best = profibus::max_schedulable_ttr(out.net);
    if (best.has_value()) {
      out.net.ttr = *best;
    } else {
      // FCFS-infeasible set: still produce a runnable network. One longest
      // cycle per master over the ring latency keeps the token moving.
      Ticks fallback = out.net.ring_latency();
      for (const profibus::Master& m : out.net.masters) {
        fallback = sat_add(fallback, m.longest_cycle());
      }
      out.net.ttr = fallback;
    }
  }
  return out;
}

}  // namespace profisched::workload
