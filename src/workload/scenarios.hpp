// scenarios.hpp — named distributed computer-controlled system (DCCS)
// configurations of the kind the paper's introduction motivates: sensors
// polled at high rates, actuators updated on deadlines tighter than their
// periods, and supervisory traffic in the background. Used by the examples
// and by the benches that need a fixed, meaningful workload rather than a
// random sweep.
//
// All times are in bit-times at 500 kbit/s (1 ms = 500 ticks).
#pragma once

#include "profibus/network.hpp"

namespace profisched::workload::scenarios {

using profisched::Ticks;

/// Ticks per millisecond at the scenario baud rate (500 kbit/s).
inline constexpr Ticks kTicksPerMs = 500;

/// A three-master manufacturing cell:
///  * master 0 — cell controller: 2 supervisory streams, slack deadlines;
///  * master 1 — robot controller: 4 streams incl. a 6 ms-deadline
///    emergency-stop poll and joint-position sensors;
///  * master 2 — conveyor PLC: 3 streams (photo-eye poll, drive setpoint,
///    diagnostics).
/// Every master also carries low-priority parametrisation traffic.
/// T_TR is set to the eq.-15 maximum for the stream set.
[[nodiscard]] profibus::Network factory_cell();

/// A single-master process-monitoring station with n_streams sensor polls of
/// identical frames, periods stepping ×1.5 from `base_period_ms`, and
/// deadlines equal to periods. The simplest non-trivial configuration — used
/// by the quickstart example.
[[nodiscard]] profibus::Network process_monitoring(std::size_t n_streams = 5,
                                                   Ticks base_period_ms = 20);

/// A deadline-inversion stress case: one stream with a deadline barely above
/// T_cycle and several lax streams on the same master. FCFS cannot schedule
/// it (R = nh·T_cycle for everyone); the DM/EDF AP queue can. This is the
/// paper's concluding claim in miniature, and experiment E10's kernel.
[[nodiscard]] profibus::Network tight_deadline_mix();

}  // namespace profisched::workload::scenarios
