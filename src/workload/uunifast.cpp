#include "workload/uunifast.hpp"

#include <cmath>
#include <stdexcept>

namespace profisched::workload {

std::vector<double> uunifast(std::size_t n, double total_u, sim::Rng& rng) {
  if (n < 1 || total_u <= 0.0) throw std::invalid_argument("uunifast: n >= 1, total_u > 0");
  std::vector<double> u(n);
  double sum = total_u;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double next =
        sum * std::pow(rng.uniform01(), 1.0 / static_cast<double>(n - 1 - i));
    u[i] = sum - next;
    sum = next;
  }
  u[n - 1] = sum;
  return u;
}

}  // namespace profisched::workload
