#include "workload/scenarios.hpp"

#include "profibus/ttr_setting.hpp"

namespace profisched::workload::scenarios {

namespace {

using profibus::BusParameters;
using profibus::Master;
using profibus::MessageCycleSpec;
using profibus::MessageStream;
using profibus::Network;

constexpr Ticks ms(Ticks v) { return v * kTicksPerMs; }

MessageStream stream(const BusParameters& bus, std::string name, Ticks req_chars, Ticks resp_chars,
                     Ticks period, Ticks deadline) {
  MessageStream s;
  s.Ch = profibus::worst_case_cycle_time(bus, MessageCycleSpec{req_chars, resp_chars});
  s.T = period;
  s.D = deadline;
  s.name = std::move(name);
  return s;
}

void set_best_ttr(Network& net) {
  net.ttr = 1;
  if (const auto best = profibus::max_schedulable_ttr(net); best.has_value() && *best >= 1) {
    net.ttr = *best;
  } else {
    net.ttr = sat_add(net.ring_latency(), ms(2));
  }
}

}  // namespace

Network factory_cell() {
  Network net;
  net.bus = BusParameters{};

  // Deadlines are sized against the retry-inclusive worst-case cycle lengths
  // (a 30×30-char cycle with one retry is ≈ 2.4 ms at 500 kbit/s, and T_del
  // alone is ≈ 7.8 ms for this ring), so that the eq.-15 T_TR maximum exists
  // and the network is schedulable under every policy — the healthy baseline
  // the examples and validation tests build on.
  Master cell;
  cell.name = "cell-controller";
  cell.high_streams = {
      stream(net.bus, "cell.production-status", 20, 30, ms(200), ms(150)),
      stream(net.bus, "cell.alarm-summary", 12, 20, ms(100), ms(80)),
  };
  cell.longest_low_cycle =
      profibus::worst_case_cycle_time(net.bus, MessageCycleSpec{40, 40});

  Master robot;
  robot.name = "robot-controller";
  robot.high_streams = {
      stream(net.bus, "robot.e-stop-poll", 8, 8, ms(50), ms(40)),
      stream(net.bus, "robot.joint-positions", 10, 36, ms(60), ms(50)),
      stream(net.bus, "robot.gripper-cmd", 14, 8, ms(90), ms(70)),
      stream(net.bus, "robot.tool-status", 10, 24, ms(200), ms(150)),
  };
  robot.longest_low_cycle =
      profibus::worst_case_cycle_time(net.bus, MessageCycleSpec{30, 30});

  Master conveyor;
  conveyor.name = "conveyor-plc";
  conveyor.high_streams = {
      stream(net.bus, "conveyor.photo-eye", 8, 8, ms(40), ms(35)),
      stream(net.bus, "conveyor.drive-setpoint", 16, 8, ms(80), ms(60)),
      stream(net.bus, "conveyor.diagnostics", 12, 30, ms(200), ms(180)),
  };
  conveyor.longest_low_cycle =
      profibus::worst_case_cycle_time(net.bus, MessageCycleSpec{30, 30});

  net.masters = {cell, robot, conveyor};
  set_best_ttr(net);
  return net;
}

Network process_monitoring(std::size_t n_streams, Ticks base_period_ms) {
  Network net;
  net.bus = BusParameters{};

  Master station;
  station.name = "monitoring-station";
  Ticks period = ms(base_period_ms);
  for (std::size_t i = 0; i < n_streams; ++i) {
    station.high_streams.push_back(stream(net.bus, "sensor" + std::to_string(i), 10, 14,
                                          period, period));
    period = period * 3 / 2;
  }
  net.masters = {station};
  set_best_ttr(net);
  return net;
}

Network tight_deadline_mix() {
  Network net;
  net.bus = BusParameters{};

  Master m;
  m.name = "mixed-master";
  m.high_streams = {
      stream(net.bus, "urgent.e-stop", 8, 8, ms(40), ms(30)),  // tight deadline
      stream(net.bus, "lax.level-reading", 12, 20, ms(50), ms(50)),
      stream(net.bus, "lax.temperature", 12, 20, ms(80), ms(80)),
      stream(net.bus, "lax.flow-rate", 12, 20, ms(100), ms(100)),
  };
  m.longest_low_cycle = profibus::worst_case_cycle_time(net.bus, MessageCycleSpec{25, 25});

  net.masters = {m};
  // Size T_TR for the *lax* streams (D = 50 ms, nh = 4 → T_cycle = 12.5 ms):
  // every lax stream then exactly meets the FCFS bound nh·T_cycle = 50 ms,
  // while the urgent stream (D = 30 ms) misses it — yet fits comfortably
  // inside the DM/EDF bound of 2·T_cycle = 25 ms. Only the *dispatching*
  // differs; the network parameters are identical across policies.
  net.ttr = 1;
  const Ticks tdel = profibus::t_del(net);
  net.ttr = std::max<Ticks>(floor_div(ms(50), 4) - tdel, sat_add(net.ring_latency(), ms(1)));
  return net;
}

}  // namespace profisched::workload::scenarios
