// generators.hpp — random task-set and PROFIBUS-network generators for the
// experiments (substrate S8 of DESIGN.md).
//
// Task sets follow the standard schedulability-experiment recipe: UUniFast
// utilizations, log-uniform periods (so short and long periods are equally
// represented per decade), C = round(u·T) clamped to >= 1, and deadlines
// drawn in [beta_lo·T, beta_hi·T] (beta_lo = beta_hi = 1 gives D = T).
//
// Networks are built from frame-level message specs so Ch values are
// PROFIBUS-realistic rather than arbitrary integers.
#pragma once

#include "core/task.hpp"
#include "profibus/network.hpp"
#include "sim/rng.hpp"

namespace profisched::workload {

using profisched::TaskSet;
using profisched::Ticks;

/// Parameters for random task-set generation.
struct TaskSetParams {
  std::size_t n = 5;            ///< number of tasks
  double total_u = 0.6;         ///< target utilization (UUniFast)
  Ticks t_min = 100;            ///< period range (log-uniform)
  Ticks t_max = 10'000;
  double deadline_lo = 1.0;     ///< D drawn uniform in [lo·T, hi·T]
  double deadline_hi = 1.0;
  Ticks jitter_max = 0;         ///< J drawn uniform in [0, min(jitter_max, D−C)]
};

/// Draw one random task set. C >= 1 always; D clamped to [C, …]; the
/// resulting set always passes TaskSet::validate().
[[nodiscard]] TaskSet random_task_set(const TaskSetParams& p, sim::Rng& rng);

/// Parameters for random PROFIBUS network generation.
struct NetworkParams {
  std::size_t n_masters = 3;
  std::size_t streams_per_master = 4;
  Ticks t_min = 20'000;         ///< stream period range in bit-times
  Ticks t_max = 400'000;        ///< (20k bits @500kbit/s = 40 ms)
  double deadline_lo = 0.5;     ///< D uniform in [lo·T, hi·T]
  double deadline_hi = 1.0;
  Ticks request_chars_min = 10; ///< action-frame sizes (chars)
  Ticks request_chars_max = 30;
  Ticks response_chars_min = 10;
  Ticks response_chars_max = 30;
  bool low_priority_traffic = true;  ///< give each master an LP cycle length
  Ticks ttr = 0;  ///< 0 = set T_TR automatically to the eq.-15 maximum (or a
                  ///  fallback when the set is FCFS-infeasible)
  double total_u = 0.0;  ///< > 0: UUniFast-driven generation. Each master's
                         ///  token-service utilizations u_i (= T_cycle/T_i,
                         ///  the load one request per token visit puts on the
                         ///  queue) are drawn summing to that master's target
                         ///  (master_utilization_targets), and periods
                         ///  derived as T_i = T_cycle/u_i; t_min/t_max are
                         ///  ignored. Requires an explicit ttr (> 0). 0 keeps
                         ///  the legacy log-uniform period draw.
  /// Explicit per-master load weights (asymmetric split). Empty = symmetric
  /// mode: every master is independently loaded to total_u (the legacy
  /// semantics every pre-existing sweep used). Non-empty: total_u becomes a
  /// NETWORK-wide budget split as u_k = total_u * w_k / Σw, so the per-master
  /// targets sum to total_u exactly. Requires size() == n_masters, every
  /// weight finite and > 0, total_u > 0, and master_skew == 0.
  std::vector<double> master_split;
  /// Geometric skew (>= 0). 0 = off. When > 0, masters get weights
  /// w_k = (1+skew)^(n_masters-1-k): consecutive masters' targets differ by
  /// exactly (1+skew), master 0 is the hottest, and — like master_split —
  /// the per-master targets sum to total_u. Mutually exclusive with
  /// master_split; requires total_u > 0.
  double master_skew = 0.0;
};

/// The per-master UUniFast targets `random_network` distributes within each
/// master (deterministic, no RNG): symmetric legacy mode repeats total_u
/// n_masters times; the split/skew modes divide total_u as documented on
/// NetworkParams. Throws std::invalid_argument on every invalid combination
/// (split size mismatch, non-positive/non-finite weights, negative skew,
/// split together with skew, split/skew without total_u > 0).
[[nodiscard]] std::vector<double> master_utilization_targets(const NetworkParams& p);

/// Generated network plus the frame specs behind each stream's Ch (needed by
/// the FrameLevel simulation model).
struct GeneratedNetwork {
  profibus::Network net;
  std::vector<std::vector<profibus::MessageCycleSpec>> specs;
};

/// Draw one random network. When p.ttr == 0, T_TR is set to the eq.-15
/// maximum if the stream set admits one, otherwise to ring latency + longest
/// cycle (a functional, if not schedulable, configuration).
[[nodiscard]] GeneratedNetwork random_network(const NetworkParams& p, sim::Rng& rng);

/// Log-uniform integer draw in [lo, hi].
[[nodiscard]] Ticks log_uniform(Ticks lo, Ticks hi, sim::Rng& rng);

}  // namespace profisched::workload
