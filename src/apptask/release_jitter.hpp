// release_jitter.hpp — deriving message release jitter from the application
// task layer (§4.1 of the paper).
//
// Messages "inherit from sending tasks both their period and priority level".
// The paper describes two task models:
//
//  * Model A (AutoSuspend): one task generates the request (initial part,
//    C_pre), auto-suspends until the response arrives, then processes it
//    (final part, C_post). The message's release jitter is the worst-case
//    response time of the *initial part*.
//
//  * Model B (SeparateTasks): a sending task and a receiving task. The
//    message's release jitter is the worst-case response time of the whole
//    sending task: "the message can be released close to the worst-case
//    response time of the task; and in the subsequent release ... as soon as
//    the arrival of that new task's instance".
//
// In both cases J_i = R_part − BCR_part, where BCR is the best-case response
// of the relevant part. We use BCR = C_part (the part runs immediately and
// uninterrupted), the standard conservative choice: it can only enlarge J,
// never shrink it, so the message-level bounds of §4.3 stay safe.
//
// The processor schedules the application tasks preemptively (the paper:
// "most probably in a preemptive context") under fixed priorities or EDF.
#pragma once

#include <vector>

#include "core/schedulability.hpp"

namespace profisched::apptask {

using profisched::Policy;
using profisched::TaskSet;
using profisched::Ticks;

/// One message-generating application task.
struct SenderTask {
  Ticks C_pre = 0;   ///< generate + queue the request (model A: initial part;
                     ///  model B: the whole sending task's C)
  Ticks C_post = 0;  ///< process the response (model A only; 0 for model B)
  Ticks D = 0;       ///< the task's relative deadline
  Ticks T = 0;       ///< period — inherited by the message stream
};

/// §4.1's two application task models.
enum class TaskModel {
  AutoSuspend,    ///< model A — jitter from the initial part's response time
  SeparateTasks,  ///< model B — jitter from the sending task's response time
};

/// Per-stream derived values.
struct JitterResult {
  std::vector<Ticks> jitter;      ///< J_i for each sender (kNoBound if unbounded)
  std::vector<Ticks> generation;  ///< g_i — worst-case generation delay (= R of
                                  ///  the queue-inserting part; feeds E = g+Q+C+d)
  bool all_bounded = false;
};

/// Compute release jitter for every sender under the given processor
/// scheduling policy (preemptive fixed-priority DM or preemptive EDF — the
/// §2 analyses of this library).
///
/// The analysed task set contains, for each sender, the part that ends with
/// queue insertion (C_pre) plus — as additional interference under model A —
/// the response-processing part (C_post) modelled as a separate task of the
/// same period (it competes for the processor like any other work; paper:
/// each pair of sending/receiving parts is never runnable simultaneously, so
/// this is conservative, never optimistic).
[[nodiscard]] JitterResult derive_release_jitter(const std::vector<SenderTask>& senders,
                                                 TaskModel model, Policy processor_policy);

}  // namespace profisched::apptask
