// processor_sim.hpp — an exact event-driven uniprocessor scheduler simulator.
//
// Substrate S7 (DESIGN.md): the paper's §4 rests on uniprocessor
// schedulability results, so the test suite cross-validates every analytical
// bound in core/ against this simulator — for any release phasing, the
// observed response of each task must never exceed the analytic worst case,
// and for the critical phasings it should reach (or closely approach) it.
//
// Supports the four policy combinations of §2: fixed-priority and EDF, each
// preemptive and non-preemptive. Execution times are the worst case C (the
// analyses bound exactly that situation); releases are strictly periodic from
// per-task phases, which is how the adversarial phasings of the analyses are
// expressed.
#pragma once

#include <span>
#include <vector>

#include "core/priority_assignment.hpp"
#include "core/task.hpp"

namespace profisched::apptask {

using profisched::PriorityOrder;
using profisched::TaskSet;
using profisched::Ticks;

/// Scheduler variants of §2 of the paper.
enum class ProcPolicy {
  FpPreemptive,     ///< fixed priority, preemptive (Joseph–Pandya regime)
  FpNonPreemptive,  ///< fixed priority, non-preemptive (paper eqs. 1–2)
  EdfPreemptive,    ///< EDF, preemptive (paper eqs. 6–8)
  EdfNonPreemptive, ///< EDF, non-preemptive (paper eqs. 9–10)
};

/// Per-task observations over one simulation run.
struct ProcSimResult {
  std::vector<Ticks> max_response;      ///< 0 when no job completed
  std::vector<std::uint64_t> jobs_completed;
  std::vector<std::uint64_t> deadline_misses;
};

/// Simulate the task set on one processor over [0, horizon].
///
/// `phases[i]` is task i's first release (empty span = synchronous release at
/// 0). For fixed-priority policies `order` gives the priority order (highest
/// first); when null, deadline-monotonic order is used. EDF breaks deadline
/// ties by task index (any tie-break is admissible w.r.t. the bounds).
[[nodiscard]] ProcSimResult simulate_processor(const TaskSet& ts, ProcPolicy policy, Ticks horizon,
                                               std::span<const Ticks> phases = {},
                                               const PriorityOrder* order = nullptr);

}  // namespace profisched::apptask
