#include "apptask/processor_sim.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace profisched::apptask {

namespace {

struct Job {
  std::size_t task = 0;
  Ticks release = 0;
  Ticks abs_deadline = 0;
  Ticks remaining = 0;
};

bool is_preemptive(ProcPolicy p) {
  return p == ProcPolicy::FpPreemptive || p == ProcPolicy::EdfPreemptive;
}
bool is_edf(ProcPolicy p) {
  return p == ProcPolicy::EdfPreemptive || p == ProcPolicy::EdfNonPreemptive;
}

}  // namespace

ProcSimResult simulate_processor(const TaskSet& ts, ProcPolicy policy, Ticks horizon,
                                 std::span<const Ticks> phases, const PriorityOrder* order) {
  const std::size_t n = ts.size();
  if (!phases.empty() && phases.size() != n) {
    throw std::invalid_argument("simulate_processor: phases size mismatch");
  }

  const PriorityOrder dm = deadline_monotonic_order(ts);
  const std::vector<std::size_t> rank = priority_ranks(order ? *order : dm);

  ProcSimResult out;
  out.max_response.assign(n, 0);
  out.jobs_completed.assign(n, 0);
  out.deadline_misses.assign(n, 0);

  std::vector<Ticks> next_release(n);
  for (std::size_t i = 0; i < n; ++i) next_release[i] = phases.empty() ? 0 : phases[i];

  std::vector<Job> ready;  // small sets: linear scans beat a heap here
  Ticks now = 0;
  constexpr std::size_t kFree = std::numeric_limits<std::size_t>::max();

  const auto release_due = [&](Ticks t) {
    for (std::size_t i = 0; i < n; ++i) {
      while (next_release[i] <= t) {
        ready.push_back(Job{i, next_release[i], sat_add(next_release[i], ts[i].D), ts[i].C});
        next_release[i] = sat_add(next_release[i], ts[i].T);
      }
    }
  };

  const auto earliest_release = [&] {
    Ticks e = kNoBound;
    for (const Ticks r : next_release) e = std::min(e, r);
    return e;
  };

  const auto pick = [&]() -> std::size_t {
    std::size_t best = kFree;
    for (std::size_t j = 0; j < ready.size(); ++j) {
      if (best == kFree) {
        best = j;
        continue;
      }
      const Job& a = ready[j];
      const Job& b = ready[best];
      if (is_edf(policy)) {
        if (a.abs_deadline < b.abs_deadline ||
            (a.abs_deadline == b.abs_deadline && a.task < b.task)) {
          best = j;
        }
      } else {
        if (rank[a.task] < rank[b.task] ||
            (rank[a.task] == rank[b.task] && a.release < b.release)) {
          best = j;
        }
      }
    }
    return best;
  };

  release_due(now);
  while (now < horizon) {
    if (ready.empty()) {
      const Ticks e = earliest_release();
      if (e == kNoBound || e >= horizon) break;
      now = e;
      release_due(now);
      continue;
    }

    const std::size_t j = pick();
    Job& job = ready[j];

    // Preemptive: run to completion or to the next release, whichever comes
    // first — a newly released job may preempt. Non-preemptive: a dispatched
    // job always runs to completion.
    const Ticks run_until = is_preemptive(policy)
                                ? std::min(sat_add(now, job.remaining), earliest_release())
                                : sat_add(now, job.remaining);

    const Ticks ran = run_until - now;
    job.remaining -= ran;
    now = run_until;

    if (job.remaining == 0) {
      const Ticks response = now - job.release;
      out.max_response[job.task] = std::max(out.max_response[job.task], response);
      ++out.jobs_completed[job.task];
      if (response > ts[job.task].D) ++out.deadline_misses[job.task];
      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(j));
    }
    release_due(now);
  }
  return out;
}

}  // namespace profisched::apptask
