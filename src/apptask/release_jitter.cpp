#include "apptask/release_jitter.hpp"

#include <stdexcept>

namespace profisched::apptask {

JitterResult derive_release_jitter(const std::vector<SenderTask>& senders, TaskModel model,
                                   Policy processor_policy) {
  if (processor_policy != Policy::DeadlineMonotonic && processor_policy != Policy::Edf) {
    throw std::invalid_argument(
        "derive_release_jitter: the AP processor is preemptive — use "
        "Policy::DeadlineMonotonic or Policy::Edf");
  }

  // Build the analysed task set: one "pre" task per sender (the part whose
  // response time is the jitter), plus under model A one "post" task per
  // sender carrying the response-processing load.
  std::vector<profisched::Task> tasks;
  std::vector<std::size_t> pre_index(senders.size());
  for (std::size_t i = 0; i < senders.size(); ++i) {
    const SenderTask& s = senders[i];
    if (s.C_pre < 1 || s.T < 1 || s.D < 1) {
      throw std::invalid_argument("derive_release_jitter: sender fields must be positive");
    }
    pre_index[i] = tasks.size();
    tasks.push_back(profisched::Task{.C = s.C_pre, .D = s.D, .T = s.T, .J = 0,
                                     .name = "pre" + std::to_string(i)});
  }
  if (model == TaskModel::AutoSuspend) {
    for (std::size_t i = 0; i < senders.size(); ++i) {
      const SenderTask& s = senders[i];
      if (s.C_post > 0) {
        tasks.push_back(profisched::Task{.C = s.C_post, .D = s.D, .T = s.T, .J = 0,
                                         .name = "post" + std::to_string(i)});
      }
    }
  }
  const TaskSet ts{std::move(tasks)};
  const profisched::Verdict v = profisched::analyze(ts, processor_policy);

  JitterResult out;
  out.jitter.resize(senders.size());
  out.generation.resize(senders.size());
  out.all_bounded = true;
  for (std::size_t i = 0; i < senders.size(); ++i) {
    const Ticks r = v.per_task[pre_index[i]].response;
    out.generation[i] = r;
    if (r == profisched::kNoBound) {
      out.jitter[i] = profisched::kNoBound;
      out.all_bounded = false;
    } else {
      // J = worst-case − best-case response of the queue-inserting part;
      // best case is the part running immediately and uninterrupted.
      out.jitter[i] = r - senders[i].C_pre;
    }
  }
  return out;
}

}  // namespace profisched::apptask
