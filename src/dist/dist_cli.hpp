// dist/dist_cli.hpp — argument parsing for the `profisched shard` and
// `profisched merge` subcommands, kept in the library so the validation is
// unit-testable (tests/dist/test_dist_cli.cpp) exactly like the simulate
// parser in engine/sim_cli.hpp. Both parsers use the shared strict scalar
// table from engine/detail/cli_parse.hpp.
#pragma once

#include <string>
#include <vector>

#include "dist/shard.hpp"

namespace profisched::dist {

/// Everything `profisched shard` needs: which shard of which plan, where the
/// artifact goes, and the full sweep spec (same flags and defaults as the
/// sweep/simulate subcommands — a shard MUST describe its sweep identically
/// to the single-process run it will be compared against).
struct ShardCli {
  ShardSpec shard;
  std::uint64_t index = 0;  ///< 0-based (the CLI's k/K form is 1-based)
  std::uint64_t count = 1;
  std::string out_path;
  std::string cache_dir;     ///< optional --cache DIR
  unsigned threads = 0;      ///< 0 = auto
  std::string metrics_path;  ///< --metrics FILE: metrics + run-manifest JSON sidecar
  bool progress = false;     ///< --progress: stderr heartbeat while scenarios run
};

/// Parse the flags after `profisched shard`. Accepts --shard k/K (required,
/// 1 <= k <= K), --out FILE (required), --mode sweep|simulate|combined|
/// optimize (default sweep), --cache DIR, --method paper|refined, and every
/// sweep flag of `profisched simulate` (--scenarios/--u/--policies/...). In
/// sweep mode --policies admits the full analysis table (opa, token,
/// holistic); simulate/combined modes keep the simulable-only restriction;
/// optimize mode shares `profisched optimize`'s flag table instead (search
/// brackets included, policies restricted to the optimizable four). Returns
/// true on success; false with a one-line diagnostic in `error` (never
/// throws).
[[nodiscard]] bool parse_shard_args(const std::vector<std::string>& args, ShardCli& out,
                                    std::string& error);

/// Everything `profisched merge` needs: the shard artifact files plus where
/// the merged CSV/JSON go.
struct MergeCli {
  std::vector<std::string> inputs;
  std::string csv_path;
  std::string json_path;
  std::string metrics_path;  ///< --metrics FILE: metrics + run-manifest JSON sidecar
};

/// Parse the flags after `profisched merge`: [--csv FILE] [--json FILE]
/// [--metrics FILE] SHARD_FILE... (at least one artifact; anything starting
/// with "--" that is not a known flag is rejected rather than read as a file
/// name).
[[nodiscard]] bool parse_merge_args(const std::vector<std::string>& args, MergeCli& out,
                                    std::string& error);

}  // namespace profisched::dist
