#include "dist/result_cache.hpp"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <thread>

namespace profisched::dist {

namespace fs = std::filesystem;

namespace {

constexpr const char* kMagic = "profisched-cache";

void append_hex64(std::string& out, std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) out += kDigits[(v >> shift) & 0xf];
}

}  // namespace

std::string ResultCache::entry_name(const engine::CacheKey& key) {
  std::string name;
  name.reserve(32);
  append_hex64(name, key.scenario);
  append_hex64(name, key.params);
  return name;
}

std::string ResultCache::entry_path(const engine::CacheKey& key) const {
  const std::string name = entry_name(key);
  return dir_ + '/' + name.substr(0, 2) + '/' + name;
}

ResultCache::ResultCache(std::string dir, std::chrono::seconds orphan_min_age)
    : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (!fs::is_directory(dir_, ec)) {
    throw std::runtime_error("ResultCache: cannot create cache directory '" + dir_ + "'");
  }
  sweep_orphaned_tmp(orphan_min_age);
}

std::uint64_t ResultCache::sweep_orphaned_tmp(std::chrono::seconds min_age) {
  // A writer that died between create and rename() leaves its scratch file
  // behind forever — nothing else ever opens a `*.tmp.*` name. The age gate
  // is what makes the sweep safe against writers that are merely alive in
  // another process right now: their scratch files are seconds old.
  std::uint64_t reaped = 0;
  std::error_code ec;
  const auto now = fs::file_time_type::clock::now();
  fs::recursive_directory_iterator it(dir_, fs::directory_options::skip_permission_denied, ec);
  const fs::recursive_directory_iterator end;
  while (!ec && it != end) {
    const fs::path path = it->path();
    const bool is_file = it->is_regular_file(ec);
    if (!ec && is_file && path.filename().string().find(".tmp.") != std::string::npos) {
      const auto mtime = fs::last_write_time(path, ec);
      if (!ec && now - mtime >= min_age) {
        std::error_code rm_ec;
        if (fs::remove(path, rm_ec)) ++reaped;
      }
    }
    ec.clear();
    it.increment(ec);
  }
  if (reaped > 0) {
    orphans_reaped_.fetch_add(reaped);
    obs_orphans_.add(reaped);
  }
  return reaped;
}

bool ResultCache::load(const engine::CacheKey& key, std::string& payload) {
  // `heal` distinguishes "no entry" from "entry present but refused": the
  // refused file will be recomputed and overwritten — a self-heal worth
  // counting separately from cold misses.
  const auto miss = [this](bool heal = false) {
    ++misses_;
    obs_misses_.add(1);
    if (heal) obs_heals_.add(1);
    return false;
  };
  std::ifstream is(entry_path(key), std::ios::binary);
  if (!is) return miss();

  // Header: "<magic> v<version>\nkey <32 hex>\nlen <bytes>\n<payload>".
  // Every mismatch — wrong version, foreign key (hash collision or renamed
  // file), bad length, short read, trailing junk — rejects the entry.
  std::string magic, version, kw, key_hex, len_str;
  if (!(is >> magic >> version >> kw >> key_hex) || magic != kMagic ||
      version != 'v' + std::to_string(kFormatVersion) || kw != "key" ||
      key_hex != entry_name(key)) {
    return miss(true);
  }
  std::size_t len = 0;
  if (!(is >> kw >> len_str) || kw != "len") return miss(true);
  try {
    len = std::stoul(len_str);
  } catch (...) {
    return miss(true);
  }
  if (is.get() != '\n' || len > (std::size_t{1} << 30)) return miss(true);

  std::string body(len, '\0');
  is.read(body.data(), static_cast<std::streamsize>(len));
  if (static_cast<std::size_t>(is.gcount()) != len || is.get() != std::ifstream::traits_type::eof()) {
    return miss(true);
  }
  payload = std::move(body);
  ++hits_;
  obs_hits_.add(1);
  obs_bytes_read_.add(len);
  return true;
}

void ResultCache::store(const engine::CacheKey& key, const std::string& payload) {
  try {
    const std::string final_path = entry_path(key);
    // The 2-hex fan-out subdirectory; idempotent and cheap, and keeping it
    // per-store (rather than 256 mkdirs up front) leaves an unused cache
    // directory empty.
    std::error_code dir_ec;
    fs::create_directories(fs::path(final_path).parent_path(), dir_ec);
    // Temp name unique across threads AND processes sharing the directory —
    // the pid is what separates two single-threaded processes whose main
    // threads can hash identically and whose counters both start at 0.
    std::ostringstream tmp;
    tmp << final_path << ".tmp." << ::getpid() << '.'
        << std::hash<std::thread::id>{}(std::this_thread::get_id()) << '.'
        << tmp_seq_.fetch_add(1);
    const std::string tmp_path = tmp.str();
    {
      std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
      os << kMagic << " v" << kFormatVersion << '\n'
         << "key " << entry_name(key) << '\n'
         << "len " << payload.size() << '\n'
         << payload;
      os.flush();
      if (!os.good()) {
        os.close();
        std::error_code ec;
        fs::remove(tmp_path, ec);
        return;  // advisory: a failed store is just a future miss
      }
    }
    std::error_code ec;
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
      fs::remove(tmp_path, ec);
      return;
    }
    ++stores_;
    obs_stores_.add(1);
    obs_bytes_written_.add(payload.size());
  } catch (...) {
    // Never let cache I/O take down the sweep.
  }
}

}  // namespace profisched::dist
