#include "dist/shard.hpp"

#include <sstream>
#include <stdexcept>

#include "engine/detail/serialize.hpp"
#include "obs/metrics.hpp"

namespace profisched::dist {

namespace {

/// Shard/merge telemetry: row counts in and out of artifacts plus how many
/// cross-shard spec validations the merge performed.
struct DistMetrics {
  obs::Counter rows_written = obs::Registry::global().counter("dist.shard.rows_written");
  obs::Counter artifacts = obs::Registry::global().counter("dist.merge.artifacts");
  obs::Counter spec_validations = obs::Registry::global().counter("dist.merge.spec_validations");
  obs::Counter rows_merged = obs::Registry::global().counter("dist.merge.rows_merged");
};

DistMetrics& dist_metrics() {
  static DistMetrics m;
  return m;
}

}  // namespace

using engine::detail::fmt_double_exact;
using engine::detail::to_double;
using engine::detail::to_ll;
using engine::detail::to_size;

std::string_view to_string(SweepMode m) {
  switch (m) {
    case SweepMode::Analysis: return "analysis";
    case SweepMode::Sim: return "sim";
    case SweepMode::Combined: return "combined";
    case SweepMode::Optimize: return "optimize";
  }
  return "?";
}

ShardPlan ShardPlan::split(std::uint64_t total, std::uint64_t count) {
  if (count == 0) throw std::invalid_argument("ShardPlan: shard count must be >= 1");
  ShardPlan plan;
  plan.total = total;
  plan.ranges.reserve(static_cast<std::size_t>(count));
  const std::uint64_t base = total / count;
  const std::uint64_t extra = total % count;
  std::uint64_t begin = 0;
  for (std::uint64_t k = 0; k < count; ++k) {
    const std::uint64_t size = base + (k < extra ? 1 : 0);
    plan.ranges.push_back(engine::IdRange{begin, begin + size});
    begin += size;
  }
  return plan;
}

namespace {

constexpr const char* kMagic = "profisched-shard v1";

[[nodiscard]] const char* method_name(profibus::TcycleMethod m) {
  return m == profibus::TcycleMethod::PaperEq13 ? "paper" : "refined";
}

[[nodiscard]] profibus::TcycleMethod parse_method(const std::string& s) {
  if (s == "paper") return profibus::TcycleMethod::PaperEq13;
  if (s == "refined") return profibus::TcycleMethod::PerMasterRefined;
  throw std::invalid_argument("shard artifact: unknown tcycle method '" + s + "'");
}

[[nodiscard]] const char* formulation_name(Formulation f) {
  return f == Formulation::PaperLiteral ? "literal" : "refined";
}

[[nodiscard]] Formulation parse_formulation(const std::string& s) {
  if (s == "literal") return Formulation::PaperLiteral;
  if (s == "refined") return Formulation::Refined;
  throw std::invalid_argument("shard artifact: unknown formulation '" + s + "'");
}

[[nodiscard]] const char* cycle_kind_name(sim::CycleModel::Kind k) {
  switch (k) {
    case sim::CycleModel::Kind::WorstCase: return "worst";
    case sim::CycleModel::Kind::UniformFraction: return "uniform";
    case sim::CycleModel::Kind::FrameLevel: return "frame";
  }
  return "?";
}

[[nodiscard]] sim::CycleModel::Kind parse_cycle_kind(const std::string& s) {
  if (s == "worst") return sim::CycleModel::Kind::WorstCase;
  if (s == "uniform") return sim::CycleModel::Kind::UniformFraction;
  if (s == "frame") return sim::CycleModel::Kind::FrameLevel;
  throw std::invalid_argument("shard artifact: unknown cycle model '" + s + "'");
}

[[nodiscard]] SweepMode parse_mode(const std::string& s) {
  if (s == "analysis") return SweepMode::Analysis;
  if (s == "sim") return SweepMode::Sim;
  if (s == "combined") return SweepMode::Combined;
  if (s == "optimize") return SweepMode::Optimize;
  throw std::invalid_argument("shard artifact: unknown mode '" + s + "'");
}

[[nodiscard]] engine::Policy parse_policy_name(const std::string& s) {
  for (const engine::Policy p :
       {engine::Policy::Fcfs, engine::Policy::Dm, engine::Policy::Edf, engine::Policy::Opa,
        engine::Policy::TokenRing, engine::Policy::Holistic}) {
    if (s == engine::to_string(p)) return p;
  }
  throw std::invalid_argument("shard artifact: unknown policy '" + s + "'");
}

/// Line-oriented reader over an artifact: each fetch pops one line, checks
/// its leading keyword, and returns the remaining space-separated tokens.
/// peek_keyword() looks at the next line's keyword without consuming it, so
/// optional spec lines (split/skew) parse without a format version bump.
class LineReader {
 public:
  explicit LineReader(const std::string& text) : is_(text) {}

  /// Keyword (first token) of the next line; "" at end of input.
  std::string peek_keyword() {
    if (!fetch()) return "";
    const std::size_t space = pending_.find(' ');
    return pending_.substr(0, space);
  }

  /// Pop the next line, expecting `keyword` and a token count in
  /// [n_tokens, n_tokens_max] (n_tokens_max = 0 means exactly n_tokens;
  /// SIZE_MAX would read as "unbounded" at the call sites).
  std::vector<std::string> line(const char* keyword, std::size_t n_tokens,
                                std::size_t n_tokens_max = 0) {
    if (n_tokens_max == 0) n_tokens_max = n_tokens;
    if (!fetch()) {
      throw std::invalid_argument(std::string("shard artifact: missing '") + keyword + "' line");
    }
    std::vector<std::string> tokens = engine::detail::split(pending_, ' ');
    pending_valid_ = false;
    if (tokens.empty() || tokens[0] != keyword || tokens.size() < n_tokens + 1 ||
        tokens.size() > n_tokens_max + 1) {
      throw std::invalid_argument(std::string("shard artifact: malformed '") + keyword +
                                  "' line: '" + pending_ + "'");
    }
    tokens.erase(tokens.begin());
    return tokens;
  }

  void literal(const char* expected) {
    if (!fetch() || pending_ != expected) {
      throw std::invalid_argument(std::string("shard artifact: expected '") + expected + "'");
    }
    pending_valid_ = false;
  }

 private:
  bool fetch() {
    if (!pending_valid_) pending_valid_ = static_cast<bool>(std::getline(is_, pending_));
    return pending_valid_;
  }

  std::istringstream is_;
  std::string pending_;
  bool pending_valid_ = false;
};

[[nodiscard]] std::uint64_t to_u64(const std::string& s) {
  return static_cast<std::uint64_t>(to_size(s));
}

[[nodiscard]] bool to_bool01(const std::string& s) {
  if (s == "0") return false;
  if (s == "1") return true;
  throw std::invalid_argument("shard artifact: expected 0/1 flag, got '" + s + "'");
}

void append_spec(std::string& out, const ShardSpec& sh) {
  const engine::SweepSpec& sw = sh.spec.sweep;
  const workload::NetworkParams& b = sw.base;
  const engine::SimOptions& so = sh.spec.sim;
  out += "mode ";
  out += to_string(sh.mode);
  out += '\n';
  out += "seed " + std::to_string(sw.seed) + '\n';
  out += "scenarios-per-point " + std::to_string(sw.scenarios_per_point) + '\n';
  out += "policies ";
  for (std::size_t p = 0; p < sw.policies.size(); ++p) {
    out += (p == 0 ? "" : ",");
    out += engine::to_string(sw.policies[p]);
  }
  out += '\n';
  out += std::string("engine ") + method_name(sw.engine.method) + ' ' +
         formulation_name(sw.engine.formulation) + ' ' + std::to_string(sw.engine.fuel) + '\n';
  out += "base " + std::to_string(b.n_masters) + ' ' + std::to_string(b.streams_per_master) +
         ' ' + std::to_string(b.t_min) + ' ' + std::to_string(b.t_max) + ' ' +
         fmt_double_exact(b.deadline_lo) + ' ' + fmt_double_exact(b.deadline_hi) + ' ' +
         std::to_string(b.request_chars_min) + ' ' + std::to_string(b.request_chars_max) + ' ' +
         std::to_string(b.response_chars_min) + ' ' + std::to_string(b.response_chars_max) +
         ' ' + (b.low_priority_traffic ? '1' : '0') + ' ' + std::to_string(b.ttr) + ' ' +
         fmt_double_exact(b.total_u) + '\n';
  // Asymmetric-split provenance, emitted only when active: a classic
  // symmetric sweep's spec block stays byte-identical to the pre-multi-axis
  // format (and merge's byte-compare keeps rejecting mixed-split shard sets).
  if (!b.master_split.empty()) {
    out += "split";
    for (const double w : b.master_split) out += ' ' + fmt_double_exact(w);
    out += '\n';
  }
  if (b.master_skew != 0.0) out += "skew " + fmt_double_exact(b.master_skew) + '\n';
  out += "points " + std::to_string(sw.points.size()) + '\n';
  for (const engine::SweepPoint& pt : sw.points) {
    out += "point " + fmt_double_exact(pt.total_u) + ' ' + fmt_double_exact(pt.beta_lo) + ' ' +
           fmt_double_exact(pt.beta_hi);
    // Ring-size axis override carried as an optional 4th token.
    if (pt.n_masters != 0) out += ' ' + std::to_string(pt.n_masters);
    out += '\n';
  }
  out += std::string("sim ") + cycle_kind_name(so.cycle_model.kind) + ' ' +
         fmt_double_exact(so.cycle_model.min_fraction) + ' ' +
         fmt_double_exact(so.cycle_model.slave_fail_prob) + ' ' + std::to_string(so.horizon) +
         ' ' + fmt_double_exact(so.horizon_cycles) + ' ' + std::to_string(so.horizon_cap) + ' ' +
         (so.lp_traffic ? '1' : '0') + ' ' + (so.collect_histograms ? '1' : '0') + ' ' +
         fmt_double_exact(so.quantile) + ' ' + std::to_string(sh.spec.replications) + '\n';
  // Fault-injection knobs, emitted only when any are active: a zero-fault
  // spec block stays byte-identical to the pre-fault format, and merge's
  // spec byte-compare automatically refuses mixed fault/zero-fault shard
  // sets.
  if (so.faults.any()) {
    const profibus::FaultModel& f = so.faults;
    out += "faults " + fmt_double_exact(f.token_loss_prob) + ' ' +
           std::to_string(f.token_recovery) + ' ' + fmt_double_exact(f.corruption_prob) + ' ' +
           std::to_string(f.max_retransmissions) + ' ' + fmt_double_exact(f.churn_prob) + ' ' +
           std::to_string(f.churn_offline) + ' ' + fmt_double_exact(f.burst_correlation) + '\n';
  }
  // Optimize-mode search brackets, emitted only in that mode so every other
  // mode's spec block stays byte-identical to the pre-optimizer format.
  if (sh.mode == SweepMode::Optimize) {
    const opt::OptimizeOptions& oo = sh.optimize;
    out += "optimize " + std::to_string(oo.scale_lo_q) + ' ' + std::to_string(oo.scale_hi_q) +
           ' ' + std::to_string(oo.ttr_cap) + ' ' + std::to_string(oo.dratio_lo_q) + ' ' +
           std::to_string(oo.dratio_hi_q) + '\n';
  }
}

[[nodiscard]] ShardSpec read_spec(LineReader& r) {
  ShardSpec sh;
  sh.mode = parse_mode(r.line("mode", 1)[0]);
  engine::SweepSpec& sw = sh.spec.sweep;
  sw.seed = to_u64(r.line("seed", 1)[0]);
  sw.scenarios_per_point = to_size(r.line("scenarios-per-point", 1)[0]);

  sw.policies.clear();
  for (const std::string& name : engine::detail::split(r.line("policies", 1)[0], ',')) {
    sw.policies.push_back(parse_policy_name(name));
  }
  if (sw.policies.empty()) throw std::invalid_argument("shard artifact: empty policy list");

  const std::vector<std::string> eng = r.line("engine", 3);
  sw.engine.method = parse_method(eng[0]);
  sw.engine.formulation = parse_formulation(eng[1]);
  sw.engine.fuel = static_cast<int>(to_ll(eng[2]));

  const std::vector<std::string> base = r.line("base", 13);
  workload::NetworkParams& b = sw.base;
  b.n_masters = to_size(base[0]);
  b.streams_per_master = to_size(base[1]);
  b.t_min = to_ll(base[2]);
  b.t_max = to_ll(base[3]);
  b.deadline_lo = to_double(base[4]);
  b.deadline_hi = to_double(base[5]);
  b.request_chars_min = to_ll(base[6]);
  b.request_chars_max = to_ll(base[7]);
  b.response_chars_min = to_ll(base[8]);
  b.response_chars_max = to_ll(base[9]);
  b.low_priority_traffic = to_bool01(base[10]);
  b.ttr = to_ll(base[11]);
  b.total_u = to_double(base[12]);

  if (r.peek_keyword() == "split") {
    const std::vector<std::string> weights = r.line("split", 1, 4'096);
    b.master_split.reserve(weights.size());
    for (const std::string& w : weights) b.master_split.push_back(to_double(w));
  }
  if (r.peek_keyword() == "skew") b.master_skew = to_double(r.line("skew", 1)[0]);

  const std::size_t n_points = to_size(r.line("points", 1)[0]);
  sw.points.clear();
  for (std::size_t i = 0; i < n_points; ++i) {
    const std::vector<std::string> pt = r.line("point", 3, 4);
    sw.points.push_back(engine::SweepPoint{to_double(pt[0]), to_double(pt[1]), to_double(pt[2]),
                                           pt.size() == 4 ? to_size(pt[3]) : 0});
  }

  const std::vector<std::string> so = r.line("sim", 10);
  engine::SimOptions& o = sh.spec.sim;
  o.cycle_model.kind = parse_cycle_kind(so[0]);
  o.cycle_model.min_fraction = to_double(so[1]);
  o.cycle_model.slave_fail_prob = to_double(so[2]);
  o.horizon = to_ll(so[3]);
  o.horizon_cycles = to_double(so[4]);
  o.horizon_cap = to_ll(so[5]);
  o.lp_traffic = to_bool01(so[6]);
  o.collect_histograms = to_bool01(so[7]);
  o.quantile = to_double(so[8]);
  sh.spec.replications = to_size(so[9]);

  if (r.peek_keyword() == "faults") {
    const std::vector<std::string> f = r.line("faults", 7);
    o.faults.token_loss_prob = to_double(f[0]);
    o.faults.token_recovery = to_ll(f[1]);
    o.faults.corruption_prob = to_double(f[2]);
    o.faults.max_retransmissions = static_cast<int>(to_ll(f[3]));
    o.faults.churn_prob = to_double(f[4]);
    o.faults.churn_offline = to_ll(f[5]);
    o.faults.burst_correlation = to_double(f[6]);
    o.faults.validate();
  }

  if (sh.mode == SweepMode::Optimize) {
    const std::vector<std::string> oo = r.line("optimize", 5);
    sh.optimize.scale_lo_q = to_ll(oo[0]);
    sh.optimize.scale_hi_q = to_ll(oo[1]);
    sh.optimize.ttr_cap = to_ll(oo[2]);
    sh.optimize.dratio_lo_q = to_ll(oo[3]);
    sh.optimize.dratio_hi_q = to_ll(oo[4]);
  }
  return sh;
}

}  // namespace

std::string serialize_spec(const ShardSpec& spec) {
  std::string out;
  append_spec(out, spec);
  return out;
}

ShardSpec parse_spec(const std::string& text) {
  LineReader r(text);
  const ShardSpec spec = read_spec(r);
  // A spec block is exactly what serialize_spec emitted — anything after the
  // last spec line means the sender framed it wrong.
  if (!r.peek_keyword().empty()) {
    throw std::invalid_argument("shard spec: trailing data after spec block");
  }
  return spec;
}

std::string ShardArtifact::to_text() const {
  const std::size_t n_pol = spec.spec.sweep.policies.size();
  std::string out = kMagic;
  out += '\n';
  append_spec(out, spec);
  out += "shard " + std::to_string(shard_index) + ' ' + std::to_string(shard_count) + '\n';
  out += "range " + std::to_string(range.begin) + ' ' + std::to_string(range.end) + '\n';

  const auto append_sim_outcome = [&](const engine::SimScenarioOutcome& o) {
    out += "o " + std::to_string(o.id) + ' ' + std::to_string(o.seed) + ' ' +
           std::to_string(o.point) + ' ' + std::to_string(o.horizon);
    for (std::size_t p = 0; p < n_pol; ++p) {
      out += ' ' + std::to_string(o.observed_max[p]) + ' ' + std::to_string(o.observed_p99[p]) +
             ' ' + std::to_string(o.released[p]) + ' ' + std::to_string(o.completed[p]) + ' ' +
             std::to_string(o.misses[p]) + ' ' + std::to_string(o.dropped[p]);
    }
  };

  switch (spec.mode) {
    case SweepMode::Analysis:
      out += "outcomes " + std::to_string(analysis.size()) + '\n';
      for (const engine::ScenarioOutcome& o : analysis) {
        out += "o " + std::to_string(o.id) + ' ' + std::to_string(o.seed) + ' ' +
               std::to_string(o.point) + ' ' + std::to_string(o.tcycle);
        for (std::size_t p = 0; p < n_pol; ++p) {
          out += std::string(" ") + (o.schedulable[p] ? '1' : '0') + ' ' +
                 std::to_string(o.worst_slack[p]);
        }
        out += '\n';
      }
      break;
    case SweepMode::Sim:
      out += "outcomes " + std::to_string(sim.size()) + '\n';
      for (const engine::SimScenarioOutcome& o : sim) {
        append_sim_outcome(o);
        out += '\n';
      }
      break;
    case SweepMode::Combined: {
      // Fault-axis rows append the degraded verdict/bound per policy; the
      // zero-fault row grammar is byte-identical to the pre-fault format.
      const bool faulted = spec.spec.sim.faults.any();
      out += "outcomes " + std::to_string(combined.size()) + '\n';
      for (const engine::CombinedOutcome& o : combined) {
        append_sim_outcome(o.sim);
        for (std::size_t p = 0; p < n_pol; ++p) {
          out += std::string(" ") + (o.analytic_schedulable[p] ? '1' : '0') + ' ' +
                 std::to_string(o.analytic_wcrt[p]) + ' ' + std::to_string(o.bound_violations[p]);
          if (faulted) {
            out += std::string(" ") + (o.degraded_schedulable[p] ? '1' : '0') + ' ' +
                   std::to_string(o.degraded_wcrt[p]);
          }
        }
        out += '\n';
      }
      break;
    }
    case SweepMode::Optimize:
      out += "outcomes " + std::to_string(optimize.size()) + '\n';
      for (const opt::OptimizeOutcome& o : optimize) {
        out += "o " + std::to_string(o.id) + ' ' + std::to_string(o.seed) + ' ' +
               std::to_string(o.point);
        // breakdown_u rides along in shortest-round-trip form so a merged
        // result equals the direct run bit-for-bit without regenerating the
        // scenario (it is the exact double the shard computed).
        for (std::size_t p = 0; p < n_pol; ++p) {
          const opt::PolicyOptimum& po = o.per_policy[p];
          out += std::string(" ") + (po.schedulable ? '1' : '0') + ' ' +
                 std::to_string(po.breakdown_q) + ' ' + (po.breakdown_cap ? '1' : '0') + ' ' +
                 fmt_double_exact(po.breakdown_u) + ' ' + std::to_string(po.max_ttr) + ' ' +
                 (po.ttr_cap_hit ? '1' : '0') + ' ' + std::to_string(po.min_dratio_q) + ' ' +
                 (po.dratio_floor ? '1' : '0');
        }
        out += '\n';
      }
      break;
  }
  out += "end\n";
  std::size_t rows = combined.size();
  if (spec.mode == SweepMode::Analysis) rows = analysis.size();
  if (spec.mode == SweepMode::Sim) rows = sim.size();
  if (spec.mode == SweepMode::Optimize) rows = optimize.size();
  dist_metrics().rows_written.add(rows);
  return out;
}

ShardArtifact ShardArtifact::from_text(const std::string& text) {
  LineReader r(text);
  r.literal(kMagic);
  ShardArtifact art;
  art.spec = read_spec(r);
  const std::size_t n_pol = art.spec.spec.sweep.policies.size();

  const std::vector<std::string> sh = r.line("shard", 2);
  art.shard_index = to_u64(sh[0]);
  art.shard_count = to_u64(sh[1]);
  const std::vector<std::string> rg = r.line("range", 2);
  art.range.begin = to_u64(rg[0]);
  art.range.end = to_u64(rg[1]);
  if (art.range.begin > art.range.end) {
    throw std::invalid_argument("shard artifact: inverted range");
  }
  const std::size_t n_rows = to_size(r.line("outcomes", 1)[0]);

  const auto read_sim_outcome = [&](const std::vector<std::string>& t, std::size_t base,
                                    engine::SimScenarioOutcome& o) {
    o.id = to_u64(t[base + 0]);
    o.seed = to_u64(t[base + 1]);
    o.point = to_size(t[base + 2]);
    o.horizon = to_ll(t[base + 3]);
    for (std::size_t p = 0; p < n_pol; ++p) {
      const std::size_t c = base + 4 + p * 6;
      o.observed_max.push_back(to_ll(t[c + 0]));
      o.observed_p99.push_back(to_ll(t[c + 1]));
      o.released.push_back(to_u64(t[c + 2]));
      o.completed.push_back(to_u64(t[c + 3]));
      o.misses.push_back(to_u64(t[c + 4]));
      o.dropped.push_back(to_u64(t[c + 5]));
    }
  };

  for (std::size_t i = 0; i < n_rows; ++i) {
    switch (art.spec.mode) {
      case SweepMode::Analysis: {
        const std::vector<std::string> t = r.line("o", 4 + n_pol * 2);
        engine::ScenarioOutcome o;
        o.id = to_u64(t[0]);
        o.seed = to_u64(t[1]);
        o.point = to_size(t[2]);
        o.tcycle = to_ll(t[3]);
        for (std::size_t p = 0; p < n_pol; ++p) {
          o.schedulable.push_back(to_bool01(t[4 + p * 2]));
          o.worst_slack.push_back(to_ll(t[5 + p * 2]));
        }
        art.analysis.push_back(std::move(o));
        break;
      }
      case SweepMode::Sim: {
        const std::vector<std::string> t = r.line("o", 4 + n_pol * 6);
        engine::SimScenarioOutcome o;
        read_sim_outcome(t, 0, o);
        art.sim.push_back(std::move(o));
        break;
      }
      case SweepMode::Combined: {
        const bool faulted = art.spec.spec.sim.faults.any();
        const std::size_t per_pol = faulted ? 5 : 3;
        const std::vector<std::string> t = r.line("o", 4 + n_pol * (6 + per_pol));
        engine::CombinedOutcome o;
        read_sim_outcome(t, 0, o.sim);
        const std::size_t base = 4 + n_pol * 6;
        for (std::size_t p = 0; p < n_pol; ++p) {
          o.analytic_schedulable.push_back(to_bool01(t[base + p * per_pol + 0]));
          o.analytic_wcrt.push_back(to_ll(t[base + p * per_pol + 1]));
          o.bound_violations.push_back(to_u64(t[base + p * per_pol + 2]));
          if (faulted) {
            o.degraded_schedulable.push_back(to_bool01(t[base + p * per_pol + 3]));
            o.degraded_wcrt.push_back(to_ll(t[base + p * per_pol + 4]));
          }
        }
        art.combined.push_back(std::move(o));
        break;
      }
      case SweepMode::Optimize: {
        const std::vector<std::string> t = r.line("o", 3 + n_pol * 8);
        opt::OptimizeOutcome o;
        o.id = to_u64(t[0]);
        o.seed = to_u64(t[1]);
        o.point = to_size(t[2]);
        for (std::size_t p = 0; p < n_pol; ++p) {
          const std::size_t c = 3 + p * 8;
          opt::PolicyOptimum po;
          po.schedulable = to_bool01(t[c + 0]);
          po.breakdown_q = to_ll(t[c + 1]);
          po.breakdown_cap = to_bool01(t[c + 2]);
          po.breakdown_u = to_double(t[c + 3]);
          po.max_ttr = to_ll(t[c + 4]);
          po.ttr_cap_hit = to_bool01(t[c + 5]);
          po.min_dratio_q = to_ll(t[c + 6]);
          po.dratio_floor = to_bool01(t[c + 7]);
          o.per_policy.push_back(po);
        }
        art.optimize.push_back(std::move(o));
        break;
      }
    }
  }
  r.literal("end");
  return art;
}

ShardArtifact ShardRunner::run(const ShardSpec& spec, std::uint64_t index, std::uint64_t count,
                               engine::ScenarioCache* cache) {
  if (index >= count) {
    throw std::invalid_argument("ShardRunner: shard index must be < shard count");
  }
  const ShardPlan plan = ShardPlan::split(spec.total_scenarios(), count);
  ShardArtifact art;
  art.spec = spec;
  art.shard_index = index;
  art.shard_count = count;
  art.range = plan.ranges[static_cast<std::size_t>(index)];
  switch (spec.mode) {
    case SweepMode::Analysis: {
      engine::SweepResult r = runner_.run(spec.spec.sweep, art.range, cache);
      art.analysis = std::move(r.outcomes);
      art.cache_hits = r.cache_hits;
      art.cache_misses = r.cache_misses;
      break;
    }
    case SweepMode::Sim: {
      engine::SimSweepResult r = runner_.run_sim(spec.spec, art.range, cache);
      art.sim = std::move(r.outcomes);
      art.cache_hits = r.cache_hits;
      art.cache_misses = r.cache_misses;
      break;
    }
    case SweepMode::Combined: {
      engine::CombinedResult r = runner_.run_combined(spec.spec, art.range, cache);
      art.combined = std::move(r.outcomes);
      art.cache_hits = r.cache_hits;
      art.cache_misses = r.cache_misses;
      break;
    }
    case SweepMode::Optimize: {
      opt::OptimizeResult r =
          opt::run_optimize(runner_, opt::OptimizeSpec{spec.spec.sweep, spec.optimize},
                            art.range, cache);
      art.optimize = std::move(r.outcomes);
      art.cache_hits = r.cache_hits;
      art.cache_misses = r.cache_misses;
      break;
    }
  }
  return art;
}

MergedSweep merge_shards(const std::vector<ShardArtifact>& shards) {
  if (shards.empty()) throw std::invalid_argument("merge: no shard artifacts");

  const std::string spec_block = serialize_spec(shards[0].spec);
  const std::uint64_t count = shards[0].shard_count;
  const std::uint64_t total = shards[0].spec.total_scenarios();
  if (count == 0) throw std::invalid_argument("merge: shard count 0");
  if (shards.size() != count) {
    throw std::invalid_argument("merge: got " + std::to_string(shards.size()) +
                                " artifacts for a " + std::to_string(count) + "-shard sweep");
  }

  DistMetrics& dm = dist_metrics();
  dm.artifacts.add(shards.size());

  std::vector<const ShardArtifact*> by_index(static_cast<std::size_t>(count), nullptr);
  for (const ShardArtifact& s : shards) {
    dm.spec_validations.add(1);
    if (serialize_spec(s.spec) != spec_block) {
      throw std::invalid_argument("merge: shard " + std::to_string(s.shard_index) +
                                  " was produced under a different spec");
    }
    if (s.shard_count != count) {
      throw std::invalid_argument("merge: shard counts disagree (" + std::to_string(count) +
                                  " vs " + std::to_string(s.shard_count) + ")");
    }
    if (s.shard_index >= count) {
      throw std::invalid_argument("merge: shard index " + std::to_string(s.shard_index) +
                                  " outside plan of " + std::to_string(count));
    }
    auto*& slot = by_index[static_cast<std::size_t>(s.shard_index)];
    if (slot != nullptr) {
      throw std::invalid_argument("merge: duplicate shard index " +
                                  std::to_string(s.shard_index));
    }
    slot = &s;
  }

  // The planner carves [0, N) contiguously in index order, so the manifests
  // must tile it exactly — any gap or overlap means a shard ran under a
  // different plan (or was hand-edited) and the merge would be silently
  // wrong.
  std::uint64_t cursor = 0;
  for (std::uint64_t k = 0; k < count; ++k) {
    const ShardArtifact& s = *by_index[static_cast<std::size_t>(k)];
    if (s.range.begin != cursor) {
      throw std::invalid_argument(
          "merge: shard " + std::to_string(k) + " starts at id " +
          std::to_string(s.range.begin) + ", expected " + std::to_string(cursor) +
          (s.range.begin > cursor ? " (gap)" : " (overlap)"));
    }
    if (s.range.end < s.range.begin || s.range.end > total) {
      throw std::invalid_argument("merge: shard " + std::to_string(k) + " range exceeds sweep");
    }
    cursor = s.range.end;
  }
  if (cursor != total) {
    throw std::invalid_argument("merge: shards cover [0, " + std::to_string(cursor) +
                                ") but the sweep has " + std::to_string(total) + " scenarios");
  }

  MergedSweep merged;
  merged.spec = shards[0].spec;
  const std::size_t n = static_cast<std::size_t>(total);
  const std::size_t spp = merged.spec.spec.sweep.scenarios_per_point;

  const auto check_row = [&](std::uint64_t expected_id, std::uint64_t id, std::size_t point) {
    if (id != expected_id || point != static_cast<std::size_t>(id) / spp) {
      throw std::invalid_argument("merge: outcome row for id " + std::to_string(id) +
                                  " contradicts its shard's declared range");
    }
  };

  switch (merged.spec.mode) {
    case SweepMode::Analysis:
      merged.analysis.outcomes.resize(n);
      break;
    case SweepMode::Sim:
      merged.sim.outcomes.resize(n);
      break;
    case SweepMode::Combined:
      merged.combined.outcomes.resize(n);
      break;
    case SweepMode::Optimize:
      merged.optimize.outcomes.resize(n);
      break;
  }
  for (std::uint64_t k = 0; k < count; ++k) {
    const ShardArtifact& s = *by_index[static_cast<std::size_t>(k)];
    std::size_t rows = s.combined.size();
    if (s.spec.mode == SweepMode::Analysis) rows = s.analysis.size();
    if (s.spec.mode == SweepMode::Sim) rows = s.sim.size();
    if (s.spec.mode == SweepMode::Optimize) rows = s.optimize.size();
    if (rows != static_cast<std::size_t>(s.range.size())) {
      throw std::invalid_argument("merge: shard " + std::to_string(k) + " carries " +
                                  std::to_string(rows) + " outcomes for a range of " +
                                  std::to_string(s.range.size()));
    }
    dm.rows_merged.add(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      const std::uint64_t id = s.range.begin + i;
      switch (merged.spec.mode) {
        case SweepMode::Analysis:
          check_row(id, s.analysis[i].id, s.analysis[i].point);
          merged.analysis.outcomes[static_cast<std::size_t>(id)] = s.analysis[i];
          break;
        case SweepMode::Sim:
          check_row(id, s.sim[i].id, s.sim[i].point);
          merged.sim.outcomes[static_cast<std::size_t>(id)] = s.sim[i];
          break;
        case SweepMode::Combined:
          check_row(id, s.combined[i].sim.id, s.combined[i].sim.point);
          merged.combined.outcomes[static_cast<std::size_t>(id)] = s.combined[i];
          break;
        case SweepMode::Optimize:
          check_row(id, s.optimize[i].id, s.optimize[i].point);
          merged.optimize.outcomes[static_cast<std::size_t>(id)] = s.optimize[i];
          break;
      }
    }
  }
  return merged;
}

}  // namespace profisched::dist
