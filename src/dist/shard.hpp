// dist/shard.hpp — distributed sweep execution: split one sweep spec into K
// disjoint scenario-id ranges, run each shard through the engine's
// SweepRunner (in this process, another process, or another machine — a shard
// is just a CLI invocation), and merge the per-shard artifacts back into the
// exact result the single-process run would have produced.
//
// The whole subsystem leans on one engine invariant: scenario generation and
// simulation seeding are keyed ONLY by (sweep seed, global scenario id), so a
// shard that runs ids [b, e) computes byte-for-byte the slots [b, e) of the
// full run. Merging is therefore pure bookkeeping — place each shard's
// outcomes at their global ids — plus loud validation: every artifact must
// carry an identical spec block, and the ranges must tile [0, N) with no gap
// or overlap. The merged result feeds the same aggregate()/aggregate_sim()/
// consistency_table() reducers the single-process subcommands use, which is
// what makes `profisched merge` output byte-identical to `profisched sweep`
// / `profisched simulate` (CI cmp-checks this).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "engine/sweep_runner.hpp"
#include "opt/optimizer.hpp"

namespace profisched::dist {

/// Which engine backend a sharded sweep drives (the three SweepRunner modes
/// plus the optimizer, which fans through the same ranged core).
enum class SweepMode {
  Analysis,  ///< SweepRunner::run      — `profisched sweep`
  Sim,       ///< SweepRunner::run_sim  — `profisched simulate`
  Combined,  ///< SweepRunner::run_combined — `profisched simulate --combined`
  Optimize,  ///< opt::run_optimize    — `profisched optimize`
};

[[nodiscard]] std::string_view to_string(SweepMode m);

/// Split [0, total) into `count` disjoint contiguous ranges whose sizes
/// differ by at most one (the first total % count shards get the extra
/// scenario). count > total yields trailing empty ranges — legal, they merge
/// like any other shard.
struct ShardPlan {
  std::uint64_t total = 0;
  std::vector<engine::IdRange> ranges;

  /// Throws std::invalid_argument when count == 0.
  [[nodiscard]] static ShardPlan split(std::uint64_t total, std::uint64_t count);
};

/// Everything that defines a sharded sweep: the mode plus the full spec. The
/// sim half (spec.sim / spec.replications) is carried — and spec-compared —
/// in every mode so two shards generated with different flags can never
/// merge silently.
struct ShardSpec {
  SweepMode mode = SweepMode::Analysis;
  engine::SimSweepSpec spec;
  /// Search brackets for Optimize mode. Carried (and spec-compared) only in
  /// that mode: the other modes' spec blocks stay byte-identical to the
  /// pre-optimizer format.
  opt::OptimizeOptions optimize;

  [[nodiscard]] std::uint64_t total_scenarios() const noexcept {
    return spec.sweep.total_scenarios();
  }
};

/// One executed shard: the spec it ran under, its position in the plan, and
/// the outcome rows of its id range (exactly one of the four vectors is
/// populated, per mode). Serializes to a line-oriented text artifact that
/// parses back exactly (detail/serialize.hpp primitives: locale-independent,
/// doubles in shortest-round-trip form).
struct ShardArtifact {
  ShardSpec spec;
  std::uint64_t shard_index = 0;  ///< 0-based position in the plan
  std::uint64_t shard_count = 1;
  engine::IdRange range;

  std::vector<engine::ScenarioOutcome> analysis;
  std::vector<engine::SimScenarioOutcome> sim;
  std::vector<engine::CombinedOutcome> combined;
  std::vector<opt::OptimizeOutcome> optimize;

  /// Result-cache statistics of the run that produced this artifact, from
  /// the SweepRunner's own counters (which treat undecodable or mismatched
  /// entries as the recomputes they are). Runtime-only: to_text()/from_text()
  /// do not carry them.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;

  [[nodiscard]] std::string to_text() const;
  /// Throws std::invalid_argument on any malformed or truncated artifact.
  [[nodiscard]] static ShardArtifact from_text(const std::string& text);
};

/// The canonical spec block shared by every artifact of one sweep; merge
/// compares these byte-for-byte to reject mixed-spec shard sets.
[[nodiscard]] std::string serialize_spec(const ShardSpec& spec);

/// Inverse of serialize_spec: parse one standalone spec block (the serve
/// protocol ships specs in exactly this form). Throws std::invalid_argument
/// on any malformed, truncated, or trailing-data input.
[[nodiscard]] ShardSpec parse_spec(const std::string& text);

/// Executes single shards through the engine's ranged sweep entry points.
class ShardRunner {
 public:
  /// `threads` = 0 picks ThreadPool::default_threads().
  explicit ShardRunner(unsigned threads = 0) : runner_(threads) {}

  /// Run shard `index` of a `count`-shard plan over the spec. The optional
  /// cache is the same hook the single-process runs take (dist::ResultCache).
  /// Throws std::invalid_argument for index >= count.
  [[nodiscard]] ShardArtifact run(const ShardSpec& spec, std::uint64_t index,
                                  std::uint64_t count,
                                  engine::ScenarioCache* cache = nullptr);

  [[nodiscard]] unsigned threads() const noexcept { return runner_.threads(); }
  [[nodiscard]] engine::SweepRunner& runner() noexcept { return runner_; }

 private:
  engine::SweepRunner runner_;
};

/// A merged sweep: the common spec plus the reassembled whole-sweep result
/// (the vector matching spec.mode is populated, indexed by global id).
struct MergedSweep {
  ShardSpec spec;
  engine::SweepResult analysis;
  engine::SimSweepResult sim;
  engine::CombinedResult combined;
  opt::OptimizeResult optimize;
};

/// Reassemble one sweep from its shard artifacts. Validation is strict and
/// throws std::invalid_argument on: no artifacts, differing spec blocks or
/// shard counts, duplicate shard indices, ranges that overlap or leave a gap
/// in [0, N), and outcome rows that contradict their declared range.
[[nodiscard]] MergedSweep merge_shards(const std::vector<ShardArtifact>& shards);

}  // namespace profisched::dist
