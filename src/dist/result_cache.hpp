// dist/result_cache.hpp — the persistent, content-addressed scenario-result
// store behind `profisched sweep/simulate/shard --cache <dir>`.
//
// One entry per (scenario, policy, options) cache key, one file per entry,
// named by the key's 128-bit hex and fanned out into 256 subdirectories on
// the first hex byte (flat directories degrade sharply at the many-millions-
// of-entries scale the CacheKey design targets). Entries carry a versioned
// header plus a key echo and payload length, so a format bump invalidates
// every old entry
// wholesale and a truncated, corrupted, or hash-colliding file is rejected
// as a miss — the engine then recomputes and overwrites it. Stores write to
// a unique temp file and rename() into place: within one directory that is
// atomic on POSIX, so any number of concurrent writers (threads or whole
// processes sharing the directory) race benignly — a reader sees either no
// entry or one complete entry, never a torn one.
//
// The cache is strictly advisory: every I/O failure degrades to a miss or a
// dropped store, never an exception out of load()/store() — a flaky disk
// must not kill a sweep that could simply recompute.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "engine/sweep_runner.hpp"
#include "obs/metrics.hpp"

namespace profisched::dist {

class ResultCache final : public engine::ScenarioCache {
 public:
  /// Bump to invalidate every existing on-disk entry (the header carries it).
  static constexpr std::uint32_t kFormatVersion = 1;

  /// A `*.tmp.*` writer scratch file older than this at open time is treated
  /// as an orphan (its writer died between create and rename) and reaped. Any
  /// live writer renames within seconds, so 15 minutes is a wide safety
  /// margin for concurrent processes sharing the directory.
  static constexpr std::chrono::seconds kDefaultOrphanMinAge{15 * 60};

  /// Creates `dir` (and parents) if missing; throws std::runtime_error when
  /// the directory cannot be created at all. On open, sweeps orphaned temp
  /// files at least `orphan_min_age` old (age-gated so a concurrent writer's
  /// in-flight temp file is never touched).
  explicit ResultCache(std::string dir,
                       std::chrono::seconds orphan_min_age = kDefaultOrphanMinAge);

  bool load(const engine::CacheKey& key, std::string& payload) override;
  void store(const engine::CacheKey& key, const std::string& payload) override;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_.load(); }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_.load(); }
  [[nodiscard]] std::uint64_t stores() const noexcept { return stores_.load(); }
  /// Orphaned temp files reaped by the open-time sweep.
  [[nodiscard]] std::uint64_t orphans_reaped() const noexcept { return orphans_reaped_.load(); }

  /// Entry file name for a key: 32 lower-case hex digits.
  [[nodiscard]] static std::string entry_name(const engine::CacheKey& key);

  /// Full path of a key's entry file: <dir>/<first 2 hex>/<entry_name>.
  [[nodiscard]] std::string entry_path(const engine::CacheKey& key) const;

 private:
  /// Delete `*.tmp.*` scratch files under dir_ whose mtime is at least
  /// `min_age` in the past; returns how many were removed. Advisory like all
  /// cache I/O: any filesystem error just leaves the file for the next open.
  std::uint64_t sweep_orphaned_tmp(std::chrono::seconds min_age);

  std::string dir_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> orphans_reaped_{0};
  std::atomic<std::uint64_t> tmp_seq_{0};  ///< unique temp-file suffix source

  // File-level telemetry, distinct from the runner's record-level cache.*
  // series: bytes moved and "heals" — entries that existed but were refused
  // (wrong version / foreign key / bad length / short read) and will be
  // recomputed and overwritten.
  obs::Counter obs_hits_ = obs::Registry::global().counter("cache.file.hits");
  obs::Counter obs_misses_ = obs::Registry::global().counter("cache.file.misses");
  obs::Counter obs_heals_ = obs::Registry::global().counter("cache.file.corruption_heals");
  obs::Counter obs_stores_ = obs::Registry::global().counter("cache.file.stores");
  obs::Counter obs_orphans_ = obs::Registry::global().counter("cache.file.orphans_reaped");
  obs::Counter obs_bytes_read_ = obs::Registry::global().counter("cache.file.bytes_read");
  obs::Counter obs_bytes_written_ = obs::Registry::global().counter("cache.file.bytes_written");
};

}  // namespace profisched::dist
