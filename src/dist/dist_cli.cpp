#include "dist/dist_cli.hpp"

#include "engine/sim_cli.hpp"
#include "opt/opt_cli.hpp"

namespace profisched::dist {

bool parse_shard_args(const std::vector<std::string>& args, ShardCli& out, std::string& error) {
  ShardCli cli;
  bool have_shard = false;
  const auto fail = [&](const std::string& msg) {
    error = msg;
    return false;
  };

  // First pass: peel off the shard-specific flags, leaving the sweep flags
  // for the shared simulate parser (so both subcommands keep one flag table
  // and identical defaults — the byte-identity of merged output depends on a
  // shard describing its sweep exactly as `sweep`/`simulate` would).
  std::vector<std::string> sweep_args;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto next = [&](std::string& v) {
      if (i + 1 >= args.size()) return false;
      v = args[++i];
      return true;
    };
    std::string v;
    if (arg == "--mode") {
      if (!next(v)) return fail("--mode needs sweep|simulate|combined|optimize");
      if (v == "sweep") cli.shard.mode = SweepMode::Analysis;
      else if (v == "simulate") cli.shard.mode = SweepMode::Sim;
      else if (v == "combined") cli.shard.mode = SweepMode::Combined;
      else if (v == "optimize") cli.shard.mode = SweepMode::Optimize;
      else return fail("--mode needs sweep|simulate|combined|optimize");
    } else if (arg == "--shard") {
      if (!next(v)) return fail("--shard needs k/K (e.g. 2/4)");
      const std::size_t slash = v.find('/');
      std::size_t k = 0, count = 0;
      if (slash == std::string::npos ||
          !engine::parse_cli_count(v.substr(0, slash), k, 1'000'000) ||
          !engine::parse_cli_count(v.substr(slash + 1), count, 1'000'000) || k == 0 ||
          count == 0 || k > count) {
        return fail("--shard needs k/K with 1 <= k <= K");
      }
      cli.index = k - 1;  // CLI is 1-based, the plan is 0-based
      cli.count = count;
      have_shard = true;
    } else if (arg == "--out") {
      if (!next(v) || v.empty()) return fail("--out needs a file path");
      cli.out_path = v;
    } else if (arg == "--method") {
      if (!next(v)) return fail("--method needs paper|refined");
      if (v == "paper") cli.shard.spec.sweep.engine.method = profibus::TcycleMethod::PaperEq13;
      else if (v == "refined") {
        cli.shard.spec.sweep.engine.method = profibus::TcycleMethod::PerMasterRefined;
      } else {
        return fail("--method needs paper|refined");
      }
    } else {
      sweep_args.push_back(arg);
    }
  }

  const engine::EngineOptions engine_opts = cli.shard.spec.sweep.engine;  // --method survives
  if (cli.shard.mode == SweepMode::Optimize) {
    // Optimize mode shares the optimize subcommand's flag table (search
    // brackets included) the same way the other modes share simulate's.
    opt::OptimizeCli opt_cli;
    if (!opt::parse_optimize_args(sweep_args, opt_cli, error)) return false;
    if (!opt_cli.csv_path.empty() || !opt_cli.json_path.empty()) {
      return fail("shard emits one artifact via --out; merge the artifacts to get CSV/JSON");
    }
    cli.shard.spec.sweep = std::move(opt_cli.spec.sweep);
    cli.shard.optimize = opt_cli.spec.options;
    cli.threads = opt_cli.threads;
    cli.cache_dir = std::move(opt_cli.cache_dir);
    cli.metrics_path = std::move(opt_cli.metrics_path);
    cli.progress = opt_cli.progress;
  } else {
    engine::SimSweepCli sweep_cli;
    if (!engine::parse_sim_sweep_args(sweep_args, sweep_cli, error,
                                      /*simulable_only=*/cli.shard.mode != SweepMode::Analysis)) {
      return false;
    }
    if (!sweep_cli.csv_path.empty() || !sweep_cli.json_path.empty()) {
      return fail("shard emits one artifact via --out; merge the artifacts to get CSV/JSON");
    }
    if (sweep_cli.combined) {
      return fail("use --mode combined instead of --combined");
    }
    cli.shard.spec = std::move(sweep_cli.spec);
    cli.threads = sweep_cli.threads;
    cli.cache_dir = std::move(sweep_cli.cache_dir);
    cli.metrics_path = std::move(sweep_cli.metrics_path);
    cli.progress = sweep_cli.progress;
  }
  cli.shard.spec.sweep.engine = engine_opts;

  if (!have_shard) return fail("--shard k/K is required");
  if (cli.out_path.empty()) return fail("--out FILE is required");
  // --cache/--metrics went through the delegated parsers' up-front checks;
  // --out is shard's own flag, so it gets the same treatment here.
  if (!engine::validate_cli_output_file(cli.out_path, "--out", error)) return false;
  out = std::move(cli);
  error.clear();
  return true;
}

bool parse_merge_args(const std::vector<std::string>& args, MergeCli& out, std::string& error) {
  MergeCli cli;
  const auto fail = [&](const std::string& msg) {
    error = msg;
    return false;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto next = [&](std::string& v) {
      if (i + 1 >= args.size()) return false;
      v = args[++i];
      return true;
    };
    std::string v;
    if (arg == "--csv") {
      if (!next(v) || v.empty()) return fail("--csv needs a file path");
      cli.csv_path = v;
    } else if (arg == "--json") {
      if (!next(v) || v.empty()) return fail("--json needs a file path");
      cli.json_path = v;
    } else if (arg == "--metrics") {
      if (!next(v) || v.empty()) return fail("--metrics needs a file path");
      cli.metrics_path = v;
    } else if (arg.rfind("--", 0) == 0) {
      return fail("unknown merge flag '" + arg + "'");
    } else {
      cli.inputs.push_back(arg);
    }
  }
  if (cli.inputs.empty()) return fail("merge needs at least one shard artifact file");
  if (!cli.csv_path.empty() &&
      !engine::validate_cli_output_file(cli.csv_path, "--csv", error)) {
    return false;
  }
  if (!cli.json_path.empty() &&
      !engine::validate_cli_output_file(cli.json_path, "--json", error)) {
    return false;
  }
  if (!cli.metrics_path.empty() &&
      !engine::validate_cli_output_file(cli.metrics_path, "--metrics", error)) {
    return false;
  }
  out = std::move(cli);
  error.clear();
  return true;
}

}  // namespace profisched::dist
