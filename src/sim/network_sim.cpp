#include "sim/network_sim.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

namespace profisched::sim {

namespace {

using profibus::ApPolicy;
using profibus::Master;
using profibus::MessageStream;

/// Per-master run-time state.
struct MasterState {
  explicit MasterState(ApPolicy policy) : dispatcher(policy) {}

  Dispatcher dispatcher;
  std::deque<Ticks> lp_queue;  ///< pending low-priority cycle lengths (FCFS)
  Ticks last_token_arrival = 0;  ///< T_RR timer start (pseudocode init: 0)
  bool online = true;            ///< false while churned off the ring
  TokenStats token;
  std::vector<StreamStats> streams;
  std::vector<Histogram> hist;  ///< sized only when histograms requested
};

// Phases of one token visit (see network_sim.hpp header comment).
enum class Phase : std::uint8_t { GuaranteedHp, HpWhile, LpWhile };

/// The simulator's pooled event representation: a tag plus a small payload,
/// stored by value in the kernel's slot pool — no allocation per event. The
/// kinds mirror exactly the continuations the seed-era simulator captured in
/// per-event std::functions; the dispatch switch in Simulation::handle()
/// replays the same bodies, so schedule order, sequence numbers and RNG draw
/// order are unchanged and traces stay byte-identical (regression:
/// tests/sim/test_event_pool.cpp).
struct SimEvent {
  enum class Kind : std::uint8_t {
    TokenArrival,  ///< token reaches `master`
    HpGenStep,     ///< release generator of (master, stream) at nominal t0
    HpRelease,     ///< jitter-delayed release of (master, stream)
    LpRelease,     ///< LP generator of master, lp-config index `stream`, at t0
    HpCycleEnd,    ///< HP cycle of `req` completes; t0 = tth_expiry, t1 = visit_start
    LpCycleEnd,    ///< LP cycle completes; t0 = tth_expiry, t1 = visit_start
    Rejoin,        ///< churned `master` re-enters the ring
  };

  Kind kind = Kind::TokenArrival;
  Phase phase = Phase::GuaranteedHp;  ///< HpCycleEnd: phase to resume
  bool dropped = false;               ///< HpCycleEnd: cycle lost to retries
  std::uint32_t master = 0;
  std::uint32_t stream = 0;
  Ticks t0 = 0;
  Ticks t1 = 0;
  PendingRequest req{};  ///< HpCycleEnd only
};

/// The whole simulation; wires the kernel, the masters and the generators.
/// Seed of the dedicated fault RNG stream: derived from the run seed, but a
/// stream of its own so enabling faults never perturbs the main sequence of
/// cycle-duration / jitter draws (and disabling them never consumes a draw).
std::uint64_t fault_stream_seed(std::uint64_t seed) {
  std::uint64_t state = seed ^ 0x8bb84b93962eacc9ULL;
  return splitmix64(state);
}

class Simulation {
 public:
  explicit Simulation(const SimConfig& cfg)
      : cfg_(cfg), rng_(cfg.seed), frng_(fault_stream_seed(cfg.seed)) {
    cfg_.net.validate();
    cfg_.faults.validate();
    if (cfg_.horizon < 1) throw std::invalid_argument("SimConfig: horizon must be >= 1");
    const std::size_t n = cfg_.net.n_masters();
    if (!cfg_.hp_traffic.empty() && cfg_.hp_traffic.size() != n) {
      throw std::invalid_argument("SimConfig: hp_traffic shape mismatch");
    }
    if (!cfg_.lp_traffic.empty() && cfg_.lp_traffic.size() != n) {
      throw std::invalid_argument("SimConfig: lp_traffic shape mismatch");
    }
    if (cfg_.cycle_model.kind == CycleModel::Kind::FrameLevel && cfg_.frame_specs.size() != n) {
      throw std::invalid_argument("SimConfig: FrameLevel cycle model needs frame_specs");
    }
    masters_.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
      masters_.emplace_back(cfg_.policy);
      masters_.back().streams.resize(cfg_.net.masters[k].nh());
      if (cfg_.collect_histograms) masters_.back().hist.resize(cfg_.net.masters[k].nh());
    }
  }

  SimReport run() {
    arm_generators();
    kernel_.at(0, SimEvent{.kind = SimEvent::Kind::TokenArrival, .master = 0});
    kernel_.run_until(cfg_.horizon, [this](SimEvent& e) { handle(e); });
    return collect();
  }

 private:
  /// The tag dispatch: each case is the body of the lambda the seed-era
  /// simulator would have captured for this continuation, verbatim.
  void handle(const SimEvent& e) {
    const std::size_t k = e.master;
    switch (e.kind) {
      case SimEvent::Kind::TokenArrival:
        on_token_arrival(k);
        break;
      case SimEvent::Kind::HpGenStep: {
        const Ticks nominal = e.t0;
        const ReleaseProcess::Step step = procs_[k][e.stream].step(nominal, rng_);
        if (step.release <= kernel_.now()) {
          // No jitter delay: release inline so a request released at the same
          // instant as a token arrival is visible to that very token visit.
          do_release(k, e.stream);
        } else {
          kernel_.at(step.release, SimEvent{.kind = SimEvent::Kind::HpRelease,
                                            .master = e.master,
                                            .stream = e.stream});
        }
        schedule_hp_release(e.master, e.stream, step.next_nominal);
        break;
      }
      case SimEvent::Kind::HpRelease:
        do_release(k, e.stream);
        break;
      case SimEvent::Kind::LpRelease: {
        const LpTraffic& lp = cfg_.lp_traffic[k][e.stream];
        masters_[k].lp_queue.push_back(lp.cycle_len);
        schedule_lp_release(e.master, e.stream, sat_add(e.t0, lp.period));
        break;
      }
      case SimEvent::Kind::HpCycleEnd: {
        MasterState& mm = masters_[k];
        StreamStats& st = mm.streams[e.req.stream];
        if (e.dropped) {
          ++st.dropped;
          trace(TraceKind::CycleDropped, k, e.req.stream, 0);
        } else {
          const Ticks response = kernel_.now() - e.req.release;
          st.record_completion(response, cfg_.net.masters[k].high_streams[e.req.stream].D);
          if (!mm.hist.empty()) mm.hist[e.req.stream].add(response);
          trace(TraceKind::CycleEnd, k, e.req.stream, response);
        }
        mm.dispatcher.complete_head();
        token_phase(k, e.t0, e.phase, e.t1);
        break;
      }
      case SimEvent::Kind::LpCycleEnd:
        masters_[k].lp_queue.pop_front();
        ++lp_completed_;
        trace(TraceKind::LpCycleEnd, k, SIZE_MAX, 0);
        token_phase(k, e.t0, Phase::LpWhile, e.t1);
        break;
      case SimEvent::Kind::Rejoin: {
        MasterState& m = masters_[k];
        m.online = true;
        // A rejoining station initializes its T_RR timer on ring entry, as on
        // the pseudocode's start-up: the first visit is not astronomically
        // "late" from its own perspective.
        m.last_token_arrival = kernel_.now();
        ++faults_.rejoins;
        trace(TraceKind::StationRejoin, k, SIZE_MAX, 0);
        notify(FaultKind::StationRejoined, k, SIZE_MAX, 0);
        break;
      }
    }
  }

  // ---- traffic --------------------------------------------------------

  void arm_generators() {
    procs_.resize(masters_.size());
    for (std::size_t k = 0; k < masters_.size(); ++k) {
      const Master& master = cfg_.net.masters[k];
      procs_[k].reserve(master.nh());
      for (std::size_t i = 0; i < master.nh(); ++i) {
        const TrafficConfig tc =
            cfg_.hp_traffic.empty() ? TrafficConfig{} : cfg_.hp_traffic[k][i];
        procs_[k].emplace_back(tc, master.high_streams[i].T);
        schedule_hp_release(static_cast<std::uint32_t>(k), static_cast<std::uint32_t>(i),
                            tc.phase);
      }
      if (!cfg_.lp_traffic.empty()) {
        for (std::size_t l = 0; l < cfg_.lp_traffic[k].size(); ++l) {
          schedule_lp_release(static_cast<std::uint32_t>(k), static_cast<std::uint32_t>(l),
                              cfg_.lp_traffic[k][l].phase);
        }
      }
    }
  }

  void schedule_hp_release(std::uint32_t k, std::uint32_t i, Ticks nominal) {
    if (nominal > cfg_.horizon) return;
    kernel_.at(nominal, SimEvent{.kind = SimEvent::Kind::HpGenStep,
                                 .master = k,
                                 .stream = i,
                                 .t0 = nominal});
  }

  void do_release(std::size_t k, std::size_t i) {
    const MessageStream& s = cfg_.net.masters[k].high_streams[i];
    StreamStats& st = masters_[k].streams[i];
    ++st.released;
    if (!masters_[k].online) {
      // The station is off the ring: the request has no queue to enter.
      // Counted as dropped (never a miss — it records no response time), the
      // same disqualifying effect dropped FrameLevel cycles already have on
      // the miss-free aggregates.
      ++st.dropped;
      ++faults_.churn_dropped;
      trace(TraceKind::ChurnDrop, k, i, 0);
      notify(FaultKind::ChurnDrop, k, i, 0);
      return;
    }
    trace(TraceKind::Release, k, i, 0);
    masters_[k].dispatcher.release(PendingRequest{
        .stream = i,
        .release = kernel_.now(),
        .abs_deadline = sat_add(kernel_.now(), s.D),
        .rel_deadline = s.D,
        .seq = next_seq_++,
    });
    st.max_queue_depth_seen = std::max(st.max_queue_depth_seen,
                                       static_cast<Ticks>(masters_[k].dispatcher.pending()));
  }

  void schedule_lp_release(std::uint32_t k, std::uint32_t lp_index, Ticks at) {
    if (at > cfg_.horizon || cfg_.lp_traffic[k][lp_index].period < 1) return;
    kernel_.at(at, SimEvent{.kind = SimEvent::Kind::LpRelease,
                            .master = k,
                            .stream = lp_index,
                            .t0 = at});
  }

  // ---- the token-passing procedure (paper §3.1) -----------------------

  void on_token_arrival(std::size_t k) {
    MasterState& m = masters_[k];
    const Ticks now = kernel_.now();
    const Ticks trr = now - m.last_token_arrival;
    m.last_token_arrival = now;
    m.token.record_arrival(trr, cfg_.net.ttr);
    trace(TraceKind::TokenArrival, k, SIZE_MAX, trr);

    const Ticks tth = cfg_.net.ttr - trr;  // may be <= 0 (late token)
    const Ticks tth_expiry = sat_add(now, std::max<Ticks>(tth, 0));
    token_phase(k, tth_expiry, Phase::GuaranteedHp, now);
  }

  void token_phase(std::size_t k, Ticks tth_expiry, Phase phase, Ticks visit_start) {
    MasterState& m = masters_[k];
    const Ticks now = kernel_.now();
    const bool budget = now < tth_expiry;  // "T_TH > 0", tested at cycle start

    switch (phase) {
      case Phase::GuaranteedHp:
        // One high-priority cycle per visit regardless of token lateness.
        if (m.dispatcher.has_pending()) {
          start_hp_cycle(k, tth_expiry, Phase::HpWhile, visit_start);
          return;
        }
        [[fallthrough]];
      case Phase::HpWhile:
        if (budget && m.dispatcher.has_pending()) {
          start_hp_cycle(k, tth_expiry, Phase::HpWhile, visit_start);
          return;
        }
        [[fallthrough]];
      case Phase::LpWhile:
        // Prose rule: LP only when no HP pending; an HP arrival during the LP
        // phase is served first (never hurts HP response times).
        if (budget && m.dispatcher.has_pending()) {
          start_hp_cycle(k, tth_expiry, Phase::LpWhile, visit_start);
          return;
        }
        if (budget && !m.lp_queue.empty()) {
          start_lp_cycle(k, tth_expiry, visit_start);
          return;
        }
        break;
    }
    pass_token(k, visit_start);
  }

  void start_hp_cycle(std::size_t k, Ticks tth_expiry, Phase next_phase, Ticks visit_start) {
    MasterState& m = masters_[k];
    const PendingRequest req = m.dispatcher.head();
    const MessageStream& s = cfg_.net.masters[k].high_streams[req.stream];

    bool dropped = false;
    const Ticks dur = corrupted_duration(k, req.stream, sample_hp_duration(k, req.stream, s, dropped));
    trace(TraceKind::CycleStart, k, req.stream, dur);
    note_overrun(m, k, tth_expiry, dur);

    kernel_.after(dur, SimEvent{.kind = SimEvent::Kind::HpCycleEnd,
                                .phase = next_phase,
                                .dropped = dropped,
                                .master = static_cast<std::uint32_t>(k),
                                .t0 = tth_expiry,
                                .t1 = visit_start,
                                .req = req});
  }

  void start_lp_cycle(std::size_t k, Ticks tth_expiry, Ticks visit_start) {
    MasterState& m = masters_[k];
    const Ticks dur = corrupted_duration(k, SIZE_MAX, m.lp_queue.front());
    trace(TraceKind::LpCycleStart, k, SIZE_MAX, dur);
    note_overrun(m, k, tth_expiry, dur);
    kernel_.after(dur, SimEvent{.kind = SimEvent::Kind::LpCycleEnd,
                                .master = static_cast<std::uint32_t>(k),
                                .t0 = tth_expiry,
                                .t1 = visit_start});
  }

  void note_overrun(MasterState& m, std::size_t k, Ticks tth_expiry, Ticks dur) {
    // sat_add, not raw +: a saturated cycle length (kNoBound from the
    // FrameLevel retry path under extreme bus parameters) must compare as
    // "past the expiry", not wrap negative and read as within budget.
    const Ticks now = kernel_.now();
    const Ticks end = sat_add(now, dur);
    if (now < tth_expiry && end > tth_expiry) {
      ++m.token.tth_overruns;
      trace(TraceKind::TthOverrun, k, SIZE_MAX, end - tth_expiry);
    }
  }

  void pass_token(std::size_t k, Ticks visit_start) {
    MasterState& m = masters_[k];
    m.token.total_hold = sat_add(m.token.total_hold, kernel_.now() - visit_start);
    trace(TraceKind::TokenPass, k, SIZE_MAX, 0);

    // Churn: after completing a visit, a master other than 0 may drop off
    // the ring (master 0 stays, so there is always a token holder).
    if (cfg_.faults.churn_prob > 0 && k != 0 && masters_[k].online &&
        frng_.chance(cfg_.faults.churn_prob)) {
      leave_ring(k);
    }

    const Ticks pass = profibus::token_pass_time(cfg_.net.bus);
    Ticks dur = pass;
    std::size_t next = (k + 1) % masters_.size();
    while (!masters_[next].online) {
      // Offline successor: the pass times out after one slot time and the
      // token is re-addressed to the following station.
      dur = sat_add(dur, sat_add(cfg_.net.bus.t_sl, pass));
      ++faults_.token_skips;
      trace(TraceKind::TokenSkip, next, SIZE_MAX, 0);
      notify(FaultKind::TokenSkip, next, SIZE_MAX, 0);
      next = (next + 1) % masters_.size();
    }

    // Token loss: the pass fails and the ring recovers the token out-of-band
    // after a bounded delay — at most one recovery per pass, so a rotation
    // accumulates at most n · token_recovery of loss dead time (the term
    // fault_bounds.hpp charges).
    if (cfg_.faults.token_loss_prob > 0 && frng_.chance(cfg_.faults.token_loss_prob)) {
      ++faults_.tokens_lost;
      trace(TraceKind::TokenLost, k, SIZE_MAX, cfg_.faults.token_recovery);
      notify(FaultKind::TokenLost, k, SIZE_MAX, cfg_.faults.token_recovery);
      dur = sat_add(dur, cfg_.faults.token_recovery);
    }

    kernel_.after(dur, SimEvent{.kind = SimEvent::Kind::TokenArrival,
                                .master = static_cast<std::uint32_t>(next)});
  }

  void leave_ring(std::size_t k) {
    MasterState& m = masters_[k];
    m.online = false;
    ++faults_.leaves;
    trace(TraceKind::StationLeave, k, SIZE_MAX, cfg_.faults.churn_offline);
    notify(FaultKind::StationLeft, k, SIZE_MAX, cfg_.faults.churn_offline);
    // A station off the ring loses its outgoing queues: every pending request
    // is abandoned (dropped, never missed — it records no response time).
    m.dispatcher.drain([&](const PendingRequest& req) {
      ++m.streams[req.stream].dropped;
      ++faults_.churn_dropped;
      trace(TraceKind::ChurnDrop, k, req.stream, 0);
      notify(FaultKind::ChurnDrop, k, req.stream, 0);
    });
    m.lp_queue.clear();
    kernel_.after(cfg_.faults.churn_offline,
                  SimEvent{.kind = SimEvent::Kind::Rejoin,
                           .master = static_cast<std::uint32_t>(k)});
  }

  /// Frame corruption: each transmission attempt of a message cycle is
  /// corrupted with corruption_prob, retransmitted at most max_retransmissions
  /// times, and the final attempt always delivers — so corruption stretches a
  /// cycle to at most (1 + R) x its sampled length but never drops it.
  Ticks corrupted_duration(std::size_t k, std::size_t stream, Ticks base) {
    if (cfg_.faults.corruption_prob <= 0) return base;
    int extra = 0;
    while (extra < cfg_.faults.max_retransmissions &&
           frng_.chance(cfg_.faults.corruption_prob)) {
      ++extra;
    }
    if (extra == 0) return base;
    ++faults_.corrupted_cycles;
    faults_.retransmissions += static_cast<std::uint64_t>(extra);
    trace(TraceKind::FrameCorrupted, k, stream, extra);
    notify(FaultKind::FrameCorrupted, k, stream, extra);
    return sat_mul(static_cast<Ticks>(1 + extra), base);
  }

  // ---- message-cycle duration models ----------------------------------

  Ticks sample_hp_duration(std::size_t k, std::size_t i, const MessageStream& s, bool& dropped) {
    dropped = false;
    switch (cfg_.cycle_model.kind) {
      case CycleModel::Kind::WorstCase:
        return s.Ch;
      case CycleModel::Kind::UniformFraction: {
        const auto lo = static_cast<Ticks>(
            std::ceil(cfg_.cycle_model.min_fraction * static_cast<double>(s.Ch)));
        return rng_.uniform(std::max<Ticks>(lo, 1), s.Ch);
      }
      case CycleModel::Kind::FrameLevel:
        return frame_level_duration(cfg_.frame_specs[k][i], dropped);
    }
    return s.Ch;
  }

  Ticks frame_level_duration(const profibus::MessageCycleSpec& spec, bool& dropped) {
    const profibus::BusParameters& bus = cfg_.net.bus;
    const Ticks request = profibus::frame_time(bus, spec.request_chars);
    const Ticks response = profibus::frame_time(bus, spec.response_chars);

    int fails = 0;
    while (fails <= bus.max_retry && rng_.chance(cfg_.cycle_model.slave_fail_prob)) ++fails;

    if (fails > bus.max_retry) {  // original attempt + every retry timed out
      dropped = true;
      return sat_add(sat_mul(fails, sat_add(request, bus.t_sl)), bus.t_id1);
    }
    const Ticks turnaround = rng_.uniform(bus.min_tsdr, bus.max_tsdr);
    Ticks dur = sat_add(sat_add(sat_add(request, turnaround), response), bus.t_id1);
    for (int f = 0; f < fails; ++f) dur = sat_add(dur, sat_add(request, bus.t_sl));
    return dur;
  }

  // ---- reporting -------------------------------------------------------

  void trace(TraceKind kind, std::size_t master, std::size_t stream, Ticks detail) {
    if (cfg_.trace != nullptr) {
      cfg_.trace->record(TraceEvent{kernel_.now(), kind, master, stream, detail});
    }
  }

  void notify(FaultKind kind, std::size_t master, std::size_t stream, Ticks detail) {
    if (cfg_.listener != nullptr) {
      cfg_.listener->on_fault(FaultEvent{kernel_.now(), kind, master, stream, detail});
    }
  }

  SimReport collect() {
    SimReport r;
    r.horizon = cfg_.horizon;
    r.events = kernel_.events_processed();
    r.pool_recycles = kernel_.pool_recycles();
    r.faults = faults_;
    r.lp_cycles_completed = lp_completed_;
    r.hp.reserve(masters_.size());
    r.token.reserve(masters_.size());
    for (MasterState& m : masters_) {
      r.hp.push_back(std::move(m.streams));
      r.token.push_back(m.token);
      if (cfg_.collect_histograms) r.response_hist.push_back(std::move(m.hist));
    }
    return r;
  }

  SimConfig cfg_;
  Rng rng_;
  /// Dedicated fault stream: consulted only behind per-knob `> 0` gates, so
  /// disabling faults never perturbs rng_'s draw sequence (zero-fault runs
  /// stay byte-identical) and enabling one knob never shifts another's draws
  /// relative to the main traffic.
  Rng frng_;
  FaultStats faults_;
  BasicKernel<SimEvent> kernel_;
  std::vector<MasterState> masters_;
  /// Release processes per (master, stream): immutable after arming, so the
  /// generator events carry only (master, stream, nominal) instead of a
  /// per-event copy.
  std::vector<std::vector<ReleaseProcess>> procs_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t lp_completed_ = 0;
};

}  // namespace

SimReport simulate(const SimConfig& cfg) { return Simulation(cfg).run(); }

}  // namespace profisched::sim
