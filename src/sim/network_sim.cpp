#include "sim/network_sim.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

namespace profisched::sim {

namespace {

using profibus::ApPolicy;
using profibus::Master;
using profibus::MessageStream;

/// Per-master run-time state.
struct MasterState {
  explicit MasterState(ApPolicy policy) : dispatcher(policy) {}

  Dispatcher dispatcher;
  std::deque<Ticks> lp_queue;  ///< pending low-priority cycle lengths (FCFS)
  Ticks last_token_arrival = 0;  ///< T_RR timer start (pseudocode init: 0)
  TokenStats token;
  std::vector<StreamStats> streams;
  std::vector<Histogram> hist;  ///< sized only when histograms requested
};

// Phases of one token visit (see network_sim.hpp header comment).
enum class Phase : std::uint8_t { GuaranteedHp, HpWhile, LpWhile };

/// The simulator's pooled event representation: a tag plus a small payload,
/// stored by value in the kernel's slot pool — no allocation per event. The
/// kinds mirror exactly the continuations the seed-era simulator captured in
/// per-event std::functions; the dispatch switch in Simulation::handle()
/// replays the same bodies, so schedule order, sequence numbers and RNG draw
/// order are unchanged and traces stay byte-identical (regression:
/// tests/sim/test_event_pool.cpp).
struct SimEvent {
  enum class Kind : std::uint8_t {
    TokenArrival,  ///< token reaches `master`
    HpGenStep,     ///< release generator of (master, stream) at nominal t0
    HpRelease,     ///< jitter-delayed release of (master, stream)
    LpRelease,     ///< LP generator of master, lp-config index `stream`, at t0
    HpCycleEnd,    ///< HP cycle of `req` completes; t0 = tth_expiry, t1 = visit_start
    LpCycleEnd,    ///< LP cycle completes; t0 = tth_expiry, t1 = visit_start
  };

  Kind kind = Kind::TokenArrival;
  Phase phase = Phase::GuaranteedHp;  ///< HpCycleEnd: phase to resume
  bool dropped = false;               ///< HpCycleEnd: cycle lost to retries
  std::uint32_t master = 0;
  std::uint32_t stream = 0;
  Ticks t0 = 0;
  Ticks t1 = 0;
  PendingRequest req{};  ///< HpCycleEnd only
};

/// The whole simulation; wires the kernel, the masters and the generators.
class Simulation {
 public:
  explicit Simulation(const SimConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {
    cfg_.net.validate();
    if (cfg_.horizon < 1) throw std::invalid_argument("SimConfig: horizon must be >= 1");
    const std::size_t n = cfg_.net.n_masters();
    if (!cfg_.hp_traffic.empty() && cfg_.hp_traffic.size() != n) {
      throw std::invalid_argument("SimConfig: hp_traffic shape mismatch");
    }
    if (!cfg_.lp_traffic.empty() && cfg_.lp_traffic.size() != n) {
      throw std::invalid_argument("SimConfig: lp_traffic shape mismatch");
    }
    if (cfg_.cycle_model.kind == CycleModel::Kind::FrameLevel && cfg_.frame_specs.size() != n) {
      throw std::invalid_argument("SimConfig: FrameLevel cycle model needs frame_specs");
    }
    masters_.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
      masters_.emplace_back(cfg_.policy);
      masters_.back().streams.resize(cfg_.net.masters[k].nh());
      if (cfg_.collect_histograms) masters_.back().hist.resize(cfg_.net.masters[k].nh());
    }
  }

  SimReport run() {
    arm_generators();
    kernel_.at(0, SimEvent{.kind = SimEvent::Kind::TokenArrival, .master = 0});
    kernel_.run_until(cfg_.horizon, [this](SimEvent& e) { handle(e); });
    return collect();
  }

 private:
  /// The tag dispatch: each case is the body of the lambda the seed-era
  /// simulator would have captured for this continuation, verbatim.
  void handle(const SimEvent& e) {
    const std::size_t k = e.master;
    switch (e.kind) {
      case SimEvent::Kind::TokenArrival:
        on_token_arrival(k);
        break;
      case SimEvent::Kind::HpGenStep: {
        const Ticks nominal = e.t0;
        const ReleaseProcess::Step step = procs_[k][e.stream].step(nominal, rng_);
        if (step.release <= kernel_.now()) {
          // No jitter delay: release inline so a request released at the same
          // instant as a token arrival is visible to that very token visit.
          do_release(k, e.stream);
        } else {
          kernel_.at(step.release, SimEvent{.kind = SimEvent::Kind::HpRelease,
                                            .master = e.master,
                                            .stream = e.stream});
        }
        schedule_hp_release(e.master, e.stream, step.next_nominal);
        break;
      }
      case SimEvent::Kind::HpRelease:
        do_release(k, e.stream);
        break;
      case SimEvent::Kind::LpRelease: {
        const LpTraffic& lp = cfg_.lp_traffic[k][e.stream];
        masters_[k].lp_queue.push_back(lp.cycle_len);
        schedule_lp_release(e.master, e.stream, sat_add(e.t0, lp.period));
        break;
      }
      case SimEvent::Kind::HpCycleEnd: {
        MasterState& mm = masters_[k];
        StreamStats& st = mm.streams[e.req.stream];
        if (e.dropped) {
          ++st.dropped;
          trace(TraceKind::CycleDropped, k, e.req.stream, 0);
        } else {
          const Ticks response = kernel_.now() - e.req.release;
          st.record_completion(response, cfg_.net.masters[k].high_streams[e.req.stream].D);
          if (!mm.hist.empty()) mm.hist[e.req.stream].add(response);
          trace(TraceKind::CycleEnd, k, e.req.stream, response);
        }
        mm.dispatcher.complete_head();
        token_phase(k, e.t0, e.phase, e.t1);
        break;
      }
      case SimEvent::Kind::LpCycleEnd:
        masters_[k].lp_queue.pop_front();
        ++lp_completed_;
        trace(TraceKind::LpCycleEnd, k, SIZE_MAX, 0);
        token_phase(k, e.t0, Phase::LpWhile, e.t1);
        break;
    }
  }

  // ---- traffic --------------------------------------------------------

  void arm_generators() {
    procs_.resize(masters_.size());
    for (std::size_t k = 0; k < masters_.size(); ++k) {
      const Master& master = cfg_.net.masters[k];
      procs_[k].reserve(master.nh());
      for (std::size_t i = 0; i < master.nh(); ++i) {
        const TrafficConfig tc =
            cfg_.hp_traffic.empty() ? TrafficConfig{} : cfg_.hp_traffic[k][i];
        procs_[k].emplace_back(tc, master.high_streams[i].T);
        schedule_hp_release(static_cast<std::uint32_t>(k), static_cast<std::uint32_t>(i),
                            tc.phase);
      }
      if (!cfg_.lp_traffic.empty()) {
        for (std::size_t l = 0; l < cfg_.lp_traffic[k].size(); ++l) {
          schedule_lp_release(static_cast<std::uint32_t>(k), static_cast<std::uint32_t>(l),
                              cfg_.lp_traffic[k][l].phase);
        }
      }
    }
  }

  void schedule_hp_release(std::uint32_t k, std::uint32_t i, Ticks nominal) {
    if (nominal > cfg_.horizon) return;
    kernel_.at(nominal, SimEvent{.kind = SimEvent::Kind::HpGenStep,
                                 .master = k,
                                 .stream = i,
                                 .t0 = nominal});
  }

  void do_release(std::size_t k, std::size_t i) {
    const MessageStream& s = cfg_.net.masters[k].high_streams[i];
    StreamStats& st = masters_[k].streams[i];
    ++st.released;
    trace(TraceKind::Release, k, i, 0);
    masters_[k].dispatcher.release(PendingRequest{
        .stream = i,
        .release = kernel_.now(),
        .abs_deadline = sat_add(kernel_.now(), s.D),
        .rel_deadline = s.D,
        .seq = next_seq_++,
    });
    st.max_queue_depth_seen = std::max(st.max_queue_depth_seen,
                                       static_cast<Ticks>(masters_[k].dispatcher.pending()));
  }

  void schedule_lp_release(std::uint32_t k, std::uint32_t lp_index, Ticks at) {
    if (at > cfg_.horizon || cfg_.lp_traffic[k][lp_index].period < 1) return;
    kernel_.at(at, SimEvent{.kind = SimEvent::Kind::LpRelease,
                            .master = k,
                            .stream = lp_index,
                            .t0 = at});
  }

  // ---- the token-passing procedure (paper §3.1) -----------------------

  void on_token_arrival(std::size_t k) {
    MasterState& m = masters_[k];
    const Ticks now = kernel_.now();
    const Ticks trr = now - m.last_token_arrival;
    m.last_token_arrival = now;
    m.token.record_arrival(trr, cfg_.net.ttr);
    trace(TraceKind::TokenArrival, k, SIZE_MAX, trr);

    const Ticks tth = cfg_.net.ttr - trr;  // may be <= 0 (late token)
    const Ticks tth_expiry = now + std::max<Ticks>(tth, 0);
    token_phase(k, tth_expiry, Phase::GuaranteedHp, now);
  }

  void token_phase(std::size_t k, Ticks tth_expiry, Phase phase, Ticks visit_start) {
    MasterState& m = masters_[k];
    const Ticks now = kernel_.now();
    const bool budget = now < tth_expiry;  // "T_TH > 0", tested at cycle start

    switch (phase) {
      case Phase::GuaranteedHp:
        // One high-priority cycle per visit regardless of token lateness.
        if (m.dispatcher.has_pending()) {
          start_hp_cycle(k, tth_expiry, Phase::HpWhile, visit_start);
          return;
        }
        [[fallthrough]];
      case Phase::HpWhile:
        if (budget && m.dispatcher.has_pending()) {
          start_hp_cycle(k, tth_expiry, Phase::HpWhile, visit_start);
          return;
        }
        [[fallthrough]];
      case Phase::LpWhile:
        // Prose rule: LP only when no HP pending; an HP arrival during the LP
        // phase is served first (never hurts HP response times).
        if (budget && m.dispatcher.has_pending()) {
          start_hp_cycle(k, tth_expiry, Phase::LpWhile, visit_start);
          return;
        }
        if (budget && !m.lp_queue.empty()) {
          start_lp_cycle(k, tth_expiry, visit_start);
          return;
        }
        break;
    }
    pass_token(k, visit_start);
  }

  void start_hp_cycle(std::size_t k, Ticks tth_expiry, Phase next_phase, Ticks visit_start) {
    MasterState& m = masters_[k];
    const PendingRequest req = m.dispatcher.head();
    const MessageStream& s = cfg_.net.masters[k].high_streams[req.stream];

    bool dropped = false;
    const Ticks dur = sample_hp_duration(k, req.stream, s, dropped);
    trace(TraceKind::CycleStart, k, req.stream, dur);
    note_overrun(m, k, tth_expiry, dur);

    kernel_.after(dur, SimEvent{.kind = SimEvent::Kind::HpCycleEnd,
                                .phase = next_phase,
                                .dropped = dropped,
                                .master = static_cast<std::uint32_t>(k),
                                .t0 = tth_expiry,
                                .t1 = visit_start,
                                .req = req});
  }

  void start_lp_cycle(std::size_t k, Ticks tth_expiry, Ticks visit_start) {
    MasterState& m = masters_[k];
    const Ticks dur = m.lp_queue.front();
    trace(TraceKind::LpCycleStart, k, SIZE_MAX, dur);
    note_overrun(m, k, tth_expiry, dur);
    kernel_.after(dur, SimEvent{.kind = SimEvent::Kind::LpCycleEnd,
                                .master = static_cast<std::uint32_t>(k),
                                .t0 = tth_expiry,
                                .t1 = visit_start});
  }

  void note_overrun(MasterState& m, std::size_t k, Ticks tth_expiry, Ticks dur) {
    const Ticks now = kernel_.now();
    if (now < tth_expiry && now + dur > tth_expiry) {
      ++m.token.tth_overruns;
      trace(TraceKind::TthOverrun, k, SIZE_MAX, now + dur - tth_expiry);
    }
  }

  void pass_token(std::size_t k, Ticks visit_start) {
    MasterState& m = masters_[k];
    m.token.total_hold = sat_add(m.token.total_hold, kernel_.now() - visit_start);
    trace(TraceKind::TokenPass, k, SIZE_MAX, 0);
    const Ticks dur = profibus::token_pass_time(cfg_.net.bus);
    const std::size_t next = (k + 1) % masters_.size();
    kernel_.after(dur, SimEvent{.kind = SimEvent::Kind::TokenArrival,
                                .master = static_cast<std::uint32_t>(next)});
  }

  // ---- message-cycle duration models ----------------------------------

  Ticks sample_hp_duration(std::size_t k, std::size_t i, const MessageStream& s, bool& dropped) {
    dropped = false;
    switch (cfg_.cycle_model.kind) {
      case CycleModel::Kind::WorstCase:
        return s.Ch;
      case CycleModel::Kind::UniformFraction: {
        const auto lo = static_cast<Ticks>(
            std::ceil(cfg_.cycle_model.min_fraction * static_cast<double>(s.Ch)));
        return rng_.uniform(std::max<Ticks>(lo, 1), s.Ch);
      }
      case CycleModel::Kind::FrameLevel:
        return frame_level_duration(cfg_.frame_specs[k][i], dropped);
    }
    return s.Ch;
  }

  Ticks frame_level_duration(const profibus::MessageCycleSpec& spec, bool& dropped) {
    const profibus::BusParameters& bus = cfg_.net.bus;
    const Ticks request = profibus::frame_time(bus, spec.request_chars);
    const Ticks response = profibus::frame_time(bus, spec.response_chars);

    int fails = 0;
    while (fails <= bus.max_retry && rng_.chance(cfg_.cycle_model.slave_fail_prob)) ++fails;

    if (fails > bus.max_retry) {  // original attempt + every retry timed out
      dropped = true;
      return sat_add(sat_mul(fails, sat_add(request, bus.t_sl)), bus.t_id1);
    }
    const Ticks turnaround = rng_.uniform(bus.min_tsdr, bus.max_tsdr);
    Ticks dur = sat_add(sat_add(sat_add(request, turnaround), response), bus.t_id1);
    for (int f = 0; f < fails; ++f) dur = sat_add(dur, sat_add(request, bus.t_sl));
    return dur;
  }

  // ---- reporting -------------------------------------------------------

  void trace(TraceKind kind, std::size_t master, std::size_t stream, Ticks detail) {
    if (cfg_.trace != nullptr) {
      cfg_.trace->record(TraceEvent{kernel_.now(), kind, master, stream, detail});
    }
  }

  SimReport collect() {
    SimReport r;
    r.horizon = cfg_.horizon;
    r.events = kernel_.events_processed();
    r.lp_cycles_completed = lp_completed_;
    r.hp.reserve(masters_.size());
    r.token.reserve(masters_.size());
    for (MasterState& m : masters_) {
      r.hp.push_back(std::move(m.streams));
      r.token.push_back(m.token);
      if (cfg_.collect_histograms) r.response_hist.push_back(std::move(m.hist));
    }
    return r;
  }

  SimConfig cfg_;
  Rng rng_;
  BasicKernel<SimEvent> kernel_;
  std::vector<MasterState> masters_;
  /// Release processes per (master, stream): immutable after arming, so the
  /// generator events carry only (master, stream, nominal) instead of a
  /// per-event copy.
  std::vector<std::vector<ReleaseProcess>> procs_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t lp_completed_ = 0;
};

}  // namespace

SimReport simulate(const SimConfig& cfg) { return Simulation(cfg).run(); }

}  // namespace profisched::sim
