// trace.hpp — optional event trace for the network simulator: a bounded
// record of protocol-level events (token arrivals/passes, message-cycle
// starts/ends, request releases, TTH overruns) that can be rendered as a
// text timeline. Used for debugging dispatching behaviour and by the
// trace-driven example; costs nothing when not attached.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/time_types.hpp"

namespace profisched::sim {

enum class TraceKind : std::uint8_t {
  TokenArrival,   ///< token received (detail = observed TRR)
  TokenPass,      ///< token forwarded to the successor
  Release,        ///< HP request entered the dispatcher (stream = which)
  CycleStart,     ///< HP message cycle started (stream = which)
  CycleEnd,       ///< HP message cycle finished (detail = response time)
  CycleDropped,   ///< cycle abandoned after exhausting retries
  LpCycleStart,   ///< low-priority cycle started
  LpCycleEnd,     ///< low-priority cycle finished
  TthOverrun,     ///< a cycle started with budget but outlived it
  // Injected-fault kinds (appended so existing renders stay byte-identical):
  TokenLost,      ///< token pass lost (detail = recovery delay)
  TokenSkip,      ///< token re-addressed past an offline station
  StationLeave,   ///< master left the ring (detail = offline duration)
  StationRejoin,  ///< master re-entered the ring
  FrameCorrupted, ///< message cycle corrupted (detail = retransmissions)
  ChurnDrop,      ///< pending/arriving request abandoned (offline master)
};

[[nodiscard]] const char* to_string(TraceKind kind);

/// One trace record. `master` always identifies the station; `stream` is the
/// HP stream index where applicable (npos otherwise); `detail` is
/// kind-specific (TRR, response time, cycle length, …).
struct TraceEvent {
  Ticks time = 0;
  TraceKind kind{};
  std::size_t master = 0;
  std::size_t stream = SIZE_MAX;
  Ticks detail = 0;
};

/// Bounded in-memory trace. When full, recording stops (the head of the run
/// is usually what matters; a ring buffer would lose the context that makes
/// traces readable). `dropped()` reports how many events did not fit.
class Trace {
 public:
  explicit Trace(std::size_t capacity = 1 << 16) : capacity_(capacity) {}

  void record(TraceEvent event) {
    if (events_.size() < capacity_) {
      events_.push_back(event);
    } else {
      ++dropped_;
    }
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// Render as a human-readable timeline, one line per event:
  ///   "     1234  m0  CycleEnd    stream=2 detail=599"
  /// `stream_names[master][stream]`, when provided, replaces indices.
  [[nodiscard]] std::string render(
      const std::vector<std::vector<std::string>>* stream_names = nullptr) const;

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace profisched::sim
