// event_queue.hpp — the simulator's time-ordered event queue.
//
// A binary min-heap keyed on (time, sequence number). ORDERING INVARIANT:
// the sequence number makes same-instant events fire in scheduling order,
// which keeps runs deterministic regardless of heap tie-breaking — every
// comparison below goes through (time, seq) and nothing else.
//
// Pooled storage: the heap itself holds only 24-byte (time, seq, slot)
// entries, so sift operations move small trivially-copyable records; the
// payloads live beside it in a slot pool whose freed slots are recycled
// through a free list. Once the pool reaches the run's high-water mark,
// schedule()/pop() no longer touch the allocator — the property that
// replaced the seed-era queue, which heap-allocated a std::function per
// event (and popped via the const_cast idiom; owning the heap vector
// directly makes pop() a plain std::pop_heap + move).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/time_types.hpp"

namespace profisched::sim {

/// A popped event: when it fired, its scheduling rank, and its payload.
template <class Payload>
struct BasicEvent {
  Ticks time = 0;
  std::uint64_t seq = 0;  ///< insertion order, breaks same-time ties FIFO
  Payload payload{};
};

/// Min-heap of Payload values ordered by (time, seq), with pooled payload
/// slots. Payload only needs to be movable.
template <class Payload>
class BasicEventQueue {
 public:
  /// Schedule `payload` at absolute time `at`.
  void schedule(Ticks at, Payload payload) {
    std::uint32_t slot;
    if (free_.empty()) {
      slot = static_cast<std::uint32_t>(pool_.size());
      pool_.push_back(std::move(payload));
    } else {
      slot = free_.back();
      free_.pop_back();
      pool_[slot] = std::move(payload);
      ++recycled_;
    }
    heap_.push_back(Entry{at, next_seq_++, slot});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Pool slots reused from the free list (vs freshly grown) — how much of
  /// the pooling actually paid off; surfaced in the telemetry sidecar.
  [[nodiscard]] std::uint64_t recycled() const noexcept { return recycled_; }

  /// High-water slot count: peak live+free pool size over the run.
  [[nodiscard]] std::size_t pool_high_water() const noexcept { return pool_.size(); }

  /// Time of the earliest pending event (kNoBound when empty).
  [[nodiscard]] Ticks next_time() const noexcept {
    return heap_.empty() ? kNoBound : heap_.front().time;
  }

  /// Remove and return the earliest event; its slot returns to the free
  /// list. Precondition: !empty().
  [[nodiscard]] BasicEvent<Payload> pop() {
    assert(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const Entry e = heap_.back();
    heap_.pop_back();
    BasicEvent<Payload> out{e.time, e.seq, std::move(pool_[e.slot])};
    free_.push_back(e.slot);
    return out;
  }

 private:
  struct Entry {
    Ticks time;
    std::uint64_t seq;
    std::uint32_t slot;  ///< index into pool_
  };
  /// "a fires later than b" — std::push_heap/pop_heap keep the *earliest*
  /// (time, seq) at front under this comparison.
  struct Later {
    [[nodiscard]] bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::vector<Entry> heap_;
  std::vector<Payload> pool_;
  std::vector<std::uint32_t> free_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t recycled_ = 0;
};

/// A scheduled callback — the generic (type-erased) event surface.
struct Event {
  Ticks time = 0;
  std::uint64_t seq = 0;
  std::function<void()> action;
};

/// The generic queue: callbacks as payloads. Hot simulators (network_sim)
/// use BasicEventQueue over a small tag-dispatched payload instead, which
/// avoids a std::function per event entirely.
class EventQueue {
 public:
  /// Schedule `action` at absolute time `at`.
  void schedule(Ticks at, std::function<void()> action) { q_.schedule(at, std::move(action)); }

  [[nodiscard]] bool empty() const noexcept { return q_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return q_.size(); }
  [[nodiscard]] Ticks next_time() const noexcept { return q_.next_time(); }

  /// Remove and return the earliest event. Precondition: !empty().
  [[nodiscard]] Event pop() {
    BasicEvent<std::function<void()>> e = q_.pop();
    return Event{e.time, e.seq, std::move(e.payload)};
  }

 private:
  BasicEventQueue<std::function<void()>> q_;
};

}  // namespace profisched::sim
