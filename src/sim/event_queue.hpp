// event_queue.hpp — the simulator's time-ordered event queue.
//
// A binary min-heap keyed on (time, sequence number); the sequence number
// makes same-instant events fire in scheduling order, which keeps runs
// deterministic regardless of heap tie-breaking.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "core/time_types.hpp"

namespace profisched::sim {

/// A scheduled callback.
struct Event {
  Ticks time = 0;
  std::uint64_t seq = 0;  ///< insertion order, breaks same-time ties FIFO
  std::function<void()> action;
};

class EventQueue {
 public:
  /// Schedule `action` at absolute time `at`.
  void schedule(Ticks at, std::function<void()> action) {
    heap_.push(Entry{at, next_seq_++, std::move(action)});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest pending event (kNoBound when empty).
  [[nodiscard]] Ticks next_time() const { return heap_.empty() ? kNoBound : heap_.top().time; }

  /// Remove and return the earliest event. Precondition: !empty().
  [[nodiscard]] Event pop() {
    // std::priority_queue::top() is const&; the move is safe because we pop
    // immediately after — const_cast is the documented idiom for this.
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    return Event{e.time, e.seq, std::move(e.action)};
  }

 private:
  struct Entry {
    Ticks time;
    std::uint64_t seq;
    std::function<void()> action;
    bool operator>(const Entry& o) const noexcept {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace profisched::sim
