// listener.hpp — observer hook for fault events, in the spirit of adevs'
// EventListener: a virtual interface registered on the simulation
// configuration, notified synchronously as each injected fault takes effect.
// Lets tests and tooling watch the fault stream without threading new state
// through the trace or the stats plumbing; costs nothing when not attached.
#pragma once

#include <cstdint>

#include "core/time_types.hpp"

namespace profisched::sim {

/// What kind of injected fault fired.
enum class FaultKind : std::uint8_t {
  TokenLost,        ///< a token pass was lost; detail = recovery delay
  TokenSkip,        ///< the token was re-addressed past an offline station
  StationLeft,      ///< master left the ring; detail = offline duration
  StationRejoined,  ///< master re-entered the ring
  FrameCorrupted,   ///< a message cycle was corrupted; detail = retransmissions
  ChurnDrop,        ///< a pending/arriving request was abandoned (offline master)
};

/// One observed fault. `master` identifies the station; `stream` is the HP
/// stream index where applicable (SIZE_MAX otherwise); `detail` is
/// kind-specific (see FaultKind).
struct FaultEvent {
  Ticks time = 0;
  FaultKind kind{};
  std::size_t master = 0;
  std::size_t stream = SIZE_MAX;
  Ticks detail = 0;
};

/// Attach to SimConfig::listener to observe fault injection as it happens.
/// Called from inside the simulation loop on the simulating thread; must not
/// re-enter the simulator. Not owned; must outlive the run.
class SimListener {
 public:
  virtual ~SimListener() = default;
  virtual void on_fault(const FaultEvent& event) = 0;
};

}  // namespace profisched::sim
