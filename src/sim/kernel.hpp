// kernel.hpp — minimal discrete-event simulation kernel: a clock plus the
// event queue. Components schedule continuations against the kernel; the
// kernel advances time to each event in order until the horizon.
#pragma once

#include <cassert>

#include "sim/event_queue.hpp"

namespace profisched::sim {

class Kernel {
 public:
  [[nodiscard]] Ticks now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }

  /// Schedule `action` `delay` ticks from now (delay >= 0).
  void after(Ticks delay, std::function<void()> action) {
    assert(delay >= 0);
    queue_.schedule(sat_add(now_, delay), std::move(action));
  }

  /// Schedule at an absolute time (must not be in the past).
  void at(Ticks time, std::function<void()> action) {
    assert(time >= now_);
    queue_.schedule(time, std::move(action));
  }

  /// Run events until the queue empties or the next event is after `horizon`.
  /// Events exactly at the horizon still fire. Returns events processed.
  std::uint64_t run_until(Ticks horizon) {
    std::uint64_t n = 0;
    while (!queue_.empty() && queue_.next_time() <= horizon) {
      Event e = queue_.pop();
      now_ = e.time;
      e.action();
      ++n;
    }
    processed_ += n;
    return n;
  }

 private:
  Ticks now_ = 0;
  std::uint64_t processed_ = 0;
  EventQueue queue_;
};

}  // namespace profisched::sim
