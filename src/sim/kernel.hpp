// kernel.hpp — minimal discrete-event simulation kernel: a clock plus the
// event queue. Components schedule continuations against the kernel; the
// kernel advances time to each event in order until the horizon.
//
// BasicKernel<Payload> is the pooled, tag-dispatched form: events are plain
// values and run_until takes the handler that interprets them — no
// allocation per event. Kernel is the generic std::function surface the
// tests and ad-hoc users keep.
#pragma once

#include <cassert>
#include <utility>

#include "sim/event_queue.hpp"

namespace profisched::sim {

template <class Payload>
class BasicKernel {
 public:
  [[nodiscard]] Ticks now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }

  /// Schedule `payload` `delay` ticks from now (delay >= 0).
  void after(Ticks delay, Payload payload) {
    assert(delay >= 0);
    queue_.schedule(sat_add(now_, delay), std::move(payload));
  }

  /// Schedule at an absolute time (must not be in the past).
  void at(Ticks time, Payload payload) {
    assert(time >= now_);
    queue_.schedule(time, std::move(payload));
  }

  /// Run events until the queue empties or the next event is after `horizon`,
  /// passing each payload to `handle`. Events exactly at the horizon still
  /// fire. Returns events processed by this call.
  template <class Handler>
  std::uint64_t run_until(Ticks horizon, Handler&& handle) {
    std::uint64_t n = 0;
    while (!queue_.empty() && queue_.next_time() <= horizon) {
      BasicEvent<Payload> e = queue_.pop();
      now_ = e.time;
      handle(e.payload);
      ++n;
    }
    processed_ += n;
    return n;
  }

 private:
  Ticks now_ = 0;
  std::uint64_t processed_ = 0;
  BasicEventQueue<Payload> queue_;
};

/// Generic kernel: callback payloads, invoked directly.
class Kernel : public BasicKernel<std::function<void()>> {
 public:
  std::uint64_t run_until(Ticks horizon) {
    return BasicKernel::run_until(horizon, [](std::function<void()>& action) { action(); });
  }
};

}  // namespace profisched::sim
