// kernel.hpp — minimal discrete-event simulation kernel: a clock plus the
// event queue. Components schedule continuations against the kernel; the
// kernel advances time to each event in order until the horizon.
//
// BasicKernel<Payload> is the pooled, tag-dispatched form: events are plain
// values and run_until takes the handler that interprets them — no
// allocation per event. Kernel is the generic std::function surface the
// tests and ad-hoc users keep.
#pragma once

#include <stdexcept>
#include <utility>

#include "sim/event_queue.hpp"

namespace profisched::sim {

template <class Payload>
class BasicKernel {
 public:
  [[nodiscard]] Ticks now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }
  [[nodiscard]] std::uint64_t pool_recycles() const noexcept { return queue_.recycled(); }
  [[nodiscard]] std::size_t pool_high_water() const noexcept { return queue_.pool_high_water(); }

  /// Schedule `payload` `delay` ticks from now. Throws std::invalid_argument
  /// on a negative delay — always, not just in Debug builds: run_until sets
  /// now_ = event.time, so a past-time schedule would silently rewind the
  /// clock and corrupt event ordering for the rest of the run.
  void after(Ticks delay, Payload payload) {
    if (delay < 0) throw std::invalid_argument("BasicKernel::after: negative delay");
    queue_.schedule(sat_add(now_, delay), std::move(payload));
  }

  /// Schedule at an absolute time. Throws std::invalid_argument when `time`
  /// precedes now() (same always-on guard as after()). A saturated time
  /// (kNoBound) is legal: the event simply never fires under a finite
  /// horizon and cannot starve earlier events (the queue orders by time).
  void at(Ticks time, Payload payload) {
    if (time < now_) throw std::invalid_argument("BasicKernel::at: time precedes now()");
    queue_.schedule(time, std::move(payload));
  }

  /// Run events until the queue empties or the next event is after `horizon`,
  /// passing each payload to `handle`. Events exactly at the horizon still
  /// fire. Returns events processed by this call.
  template <class Handler>
  std::uint64_t run_until(Ticks horizon, Handler&& handle) {
    std::uint64_t n = 0;
    while (!queue_.empty() && queue_.next_time() <= horizon) {
      BasicEvent<Payload> e = queue_.pop();
      now_ = e.time;
      handle(e.payload);
      ++n;
    }
    processed_ += n;
    return n;
  }

 private:
  Ticks now_ = 0;
  std::uint64_t processed_ = 0;
  BasicEventQueue<Payload> queue_;
};

/// Generic kernel: callback payloads, invoked directly.
class Kernel : public BasicKernel<std::function<void()>> {
 public:
  std::uint64_t run_until(Ticks horizon) {
    return BasicKernel::run_until(horizon, [](std::function<void()>& action) { action(); });
  }
};

}  // namespace profisched::sim
