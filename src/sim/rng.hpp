// rng.hpp — small, fast, reproducible PRNG for the simulator (xoshiro256**,
// seeded via SplitMix64). Header-only; deliberately not <random>'s engines so
// that simulation runs are bit-reproducible across standard libraries.
//
// Thread-safety audit (PR 2, locked in by tests/sim/test_concurrent_sim.cpp):
// this header holds NO global or thread-local state — splitmix64 advances
// only the state the caller passes in, and every Rng owns its entire state as
// instance members. A single Rng instance is not safe to share across threads
// without external synchronization, but distinct instances are fully
// independent, which is what the engine's parallel simulation sweeps rely on
// (one (seed, scenario, replication)-keyed Rng per run).
#pragma once

#include <array>
#include <cstdint>

#include "core/time_types.hpp"

namespace profisched::sim {

/// SplitMix64 — used only to expand a user seed into xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna, public domain reference algorithm).
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed = 1) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound] (bound inclusive; bound >= 0).
  /// Debiased via rejection sampling.
  [[nodiscard]] constexpr Ticks uniform(Ticks bound) noexcept {
    if (bound <= 0) return 0;
    const auto range = static_cast<std::uint64_t>(bound) + 1;
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
    std::uint64_t v = next();
    while (v >= limit) v = next();
    return static_cast<Ticks>(v % range);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] constexpr Ticks uniform(Ticks lo, Ticks hi) noexcept {
    return lo + uniform(hi - lo);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] constexpr double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  [[nodiscard]] constexpr bool chance(double p) noexcept { return uniform01() < p; }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace profisched::sim
