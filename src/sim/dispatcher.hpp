// dispatcher.hpp — the outgoing-queue architecture of one master, in the two
// shapes the paper compares (§1, §4):
//
//  * FCFS: the stock PROFIBUS high-priority outgoing queue. Requests go
//    straight into an unbounded FIFO in the communication stack.
//  * DM/EDF: a priority-ordered queue at the application-process level; the
//    communication-stack FCFS queue is limited to ONE pending request (the
//    paper: "this length control ... can be trivially achieved by the proper
//    use of a local management service"). The stack slot refills from the AP
//    queue head each time a message cycle completes — which is what creates
//    the bounded, one-T_cycle priority inversion the analyses charge as
//    T*_cycle: a just-queued lax request may sit in the slot when an urgent
//    one arrives, and the slot is never revoked.
//
// DM orders by the stream's relative deadline, EDF by the request's absolute
// deadline; ties resolve FIFO via the release sequence number, so behaviour
// is deterministic.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <optional>
#include <set>

#include "core/time_types.hpp"
#include "profibus/dispatching.hpp"

namespace profisched::sim {

/// One pending high-priority request.
struct PendingRequest {
  std::size_t stream = 0;      ///< index into the master's high_streams
  Ticks release = 0;           ///< AP-queue insertion instant
  Ticks abs_deadline = 0;      ///< release + D
  Ticks rel_deadline = 0;      ///< the stream's D (DM key)
  std::uint64_t seq = 0;       ///< global release counter (FIFO tie-break)
};

/// Outgoing-queue state of one master.
class Dispatcher {
 public:
  explicit Dispatcher(profibus::ApPolicy policy) : policy_(policy) {}

  [[nodiscard]] profibus::ApPolicy policy() const noexcept { return policy_; }

  /// A new request enters the architecture.
  void release(const PendingRequest& req) {
    if (policy_ == profibus::ApPolicy::Fcfs) {
      stack_.push_back(req);
      return;
    }
    if (stack_.empty()) {
      stack_.push_back(req);  // the one-deep stack slot was free
    } else {
      ap_.insert(Keyed{key_of(req), req});
    }
  }

  /// Is any high-priority request ready for transmission?
  [[nodiscard]] bool has_pending() const noexcept { return !stack_.empty(); }

  /// The request the MAC layer would transmit next. Precondition: has_pending().
  [[nodiscard]] const PendingRequest& head() const {
    assert(!stack_.empty());
    return stack_.front();
  }

  /// Message cycle of head() completed: free the stack slot and, under a
  /// priority policy, refill it from the AP queue.
  void complete_head() {
    assert(!stack_.empty());
    stack_.pop_front();
    if (policy_ != profibus::ApPolicy::Fcfs && stack_.empty() && !ap_.empty()) {
      stack_.push_back(ap_.begin()->req);
      ap_.erase(ap_.begin());
    }
  }

  /// Total requests waiting anywhere in the architecture.
  [[nodiscard]] std::size_t pending() const noexcept { return stack_.size() + ap_.size(); }

  /// Abandon every pending request (the station left the ring), invoking
  /// `fn(req)` on each — stack slot first, then the AP queue in priority
  /// order, so the callback sequence is deterministic.
  template <class Fn>
  void drain(Fn&& fn) {
    for (const PendingRequest& r : stack_) fn(r);
    stack_.clear();
    for (const Keyed& kv : ap_) fn(kv.req);
    ap_.clear();
  }

 private:
  struct Key {
    Ticks primary;       ///< D (DM) or absolute deadline (EDF)
    std::uint64_t seq;   ///< FIFO among equals
    auto operator<=>(const Key&) const = default;
  };
  struct Keyed {
    Key key;
    PendingRequest req;
    bool operator<(const Keyed& o) const noexcept { return key < o.key; }
  };

  [[nodiscard]] Key key_of(const PendingRequest& r) const noexcept {
    return policy_ == profibus::ApPolicy::Dm ? Key{r.rel_deadline, r.seq}
                                             : Key{r.abs_deadline, r.seq};
  }

  profibus::ApPolicy policy_;
  std::deque<PendingRequest> stack_;  ///< communication-stack FCFS queue
  std::multiset<Keyed> ap_;           ///< AP-level priority queue (empty for FCFS)
};

}  // namespace profisched::sim
