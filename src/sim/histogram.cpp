#include "sim/histogram.hpp"

#include <algorithm>
#include <cstdio>

namespace profisched::sim {

Ticks Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    seen += bins_[i];
    if (seen > target) return std::min(bin_upper(i), max_);
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

std::string Histogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%llu mean=%.1f p50=%lld p95=%lld p99=%lld max=%lld",
                static_cast<unsigned long long>(count_), mean(),
                static_cast<long long>(quantile(0.50)), static_cast<long long>(quantile(0.95)),
                static_cast<long long>(quantile(0.99)), static_cast<long long>(max_));
  return buf;
}

}  // namespace profisched::sim
