// network_sim.hpp — the discrete-event PROFIBUS network simulator (substrate
// S6 of DESIGN.md).
//
// The master run-time procedure is a direct transcription of the paper's
// §3.1 pseudocode:
//
//   At the token arrival at station k:
//     T_TH ← T_TR − T_RR ;  restart T_RR
//     IF waiting high-priority messages: execute ONE high-priority cycle
//       (even if the token is late);
//     WHILE T_TH > 0 AND pending high-priority cycles: execute them;
//     WHILE T_TH > 0 AND pending low-priority cycles:  execute them;
//     pass the token to station k+1 (mod n).
//
// T_TH is tested only at message-cycle *starts*; a cycle in flight always
// completes (the T_TH overrun the analysis's T_del accounts for). One
// deliberate reading choice, documented here because the printed pseudocode
// and prose differ: the prose says low-priority cycles run only "if there are
// no high priority messages pending", so if a high-priority request arrives
// while the master is in its low-priority phase (and T_TH remains), we serve
// it before more low-priority traffic. With the paper's worst-case phasings
// this choice is unobservable; under random traffic it only reduces HP
// response times, keeping the analytic bounds valid.
//
// Message-cycle durations come from a CycleModel:
//   * WorstCase    — always the stream's Ch (deterministic; used by the
//                    validation benches so observed maxima can approach the
//                    analytic bounds);
//   * UniformFraction — uniform in [fraction·Ch, Ch];
//   * FrameLevel   — request + sampled slave turnaround + response + idle,
//                    with per-attempt slave failures triggering retries up to
//                    bus.max_retry (never exceeding the worst-case Ch by
//                    construction). Requires per-stream frame specs.
#pragma once

#include <optional>
#include <vector>

#include "profibus/dispatching.hpp"
#include "profibus/fault_model.hpp"
#include "sim/dispatcher.hpp"
#include "sim/histogram.hpp"
#include "sim/kernel.hpp"
#include "sim/listener.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "sim/traffic.hpp"

namespace profisched::sim {

/// How the simulator draws actual message-cycle durations.
struct CycleModel {
  enum class Kind { WorstCase, UniformFraction, FrameLevel } kind = Kind::WorstCase;
  double min_fraction = 0.5;  ///< UniformFraction lower bound as share of Ch
  double slave_fail_prob = 0.0;  ///< FrameLevel: per-attempt response loss
};

/// Background low-priority traffic of one master (no deadlines — only load).
struct LpTraffic {
  Ticks period = 0;
  Ticks cycle_len = 0;  ///< its message-cycle duration (contributes to Cl^k)
  Ticks phase = 0;
};

/// Complete simulation configuration.
struct SimConfig {
  profibus::Network net;
  profibus::ApPolicy policy = profibus::ApPolicy::Fcfs;

  /// hp_traffic[k][i] — release process of stream i of master k. When empty,
  /// every stream is periodic with phase 0 and no jitter (the synchronous
  /// pattern).
  std::vector<std::vector<TrafficConfig>> hp_traffic;

  /// lp_traffic[k] — background generators of master k. When empty, no LP
  /// traffic (analysis then relies on Cl^k = 0 too).
  std::vector<std::vector<LpTraffic>> lp_traffic;

  /// frame_specs[k][i] — required iff cycle_model.kind == FrameLevel.
  std::vector<std::vector<profibus::MessageCycleSpec>> frame_specs;

  CycleModel cycle_model;

  /// Injected faults (token loss, corruption, churn); default: all off. The
  /// fault draws come from a dedicated RNG stream derived from `seed`, gated
  /// behind per-knob `> 0` checks, so a default FaultModel leaves the run —
  /// events, main-RNG draws, traces, stats — byte-identical to pre-fault
  /// builds (regression: the PR-4 trace golden).
  profibus::FaultModel faults;

  std::uint64_t seed = 1;
  Ticks horizon = 0;  ///< simulate [0, horizon]

  /// Optional protocol-event trace sink (not owned; must outlive the run).
  Trace* trace = nullptr;

  /// Optional fault observer (adevs EventListener style): notified
  /// synchronously per injected fault. Not owned; must outlive the run.
  SimListener* listener = nullptr;

  /// When true, SimReport::response_hist carries a per-stream latency
  /// histogram in addition to the scalar StreamStats.
  bool collect_histograms = false;
};

/// Run one simulation; returns the collected statistics.
///
/// Re-entrant: each call builds a private Simulation (kernel, dispatchers,
/// RNG, stats) from a copy of `cfg`, and nothing in src/sim/ touches global
/// mutable state, so concurrent calls — the engine's parallel simulation
/// sweeps — are safe and bit-identical to serial runs with the same seed
/// (regression: tests/sim/test_concurrent_sim.cpp). The optional `cfg.trace`
/// sink is the one shared-state hatch: give each concurrent run its own.
[[nodiscard]] SimReport simulate(const SimConfig& cfg);

}  // namespace profisched::sim
