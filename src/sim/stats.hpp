// stats.hpp — statistics the simulator collects: per-stream response-time
// aggregates and per-master token behaviour (observed TRR maxima, TTH
// overruns). These are exactly the observables the paper's analysis bounds,
// so the validation benches compare them 1:1 against T_cycle / R_i.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/time_types.hpp"
#include "sim/histogram.hpp"

namespace profisched::sim {

/// Aggregate over the completed message cycles of one stream.
struct StreamStats {
  std::uint64_t released = 0;   ///< requests generated
  std::uint64_t completed = 0;  ///< message cycles finished
  std::uint64_t deadline_misses = 0;
  std::uint64_t dropped = 0;    ///< cycles abandoned after exhausting retries
  Ticks max_response = 0;
  Ticks total_response = 0;     ///< for the mean
  Ticks max_queue_depth_seen = 0;

  void record_completion(Ticks response, Ticks deadline) {
    ++completed;
    max_response = std::max(max_response, response);
    total_response = sat_add(total_response, response);
    if (response > deadline) ++deadline_misses;
  }

  [[nodiscard]] double mean_response() const {
    return completed == 0 ? 0.0
                          : static_cast<double>(total_response) / static_cast<double>(completed);
  }
};

/// Aggregate over one master's token visits.
struct TokenStats {
  std::uint64_t visits = 0;
  std::uint64_t tth_overruns = 0;   ///< cycles started with TTH > 0 that finished after it expired
  std::uint64_t late_tokens = 0;    ///< arrivals with TRR >= TTR
  Ticks max_trr = 0;                ///< largest observed real token rotation time
  Ticks total_hold = 0;             ///< total time holding the token

  void record_arrival(Ticks trr, Ticks ttr) {
    ++visits;
    max_trr = std::max(max_trr, trr);
    if (trr >= ttr) ++late_tokens;
  }
};

/// Network-wide counters of injected faults (see profibus::FaultModel). All
/// zero when no fault knob is active — and a zero-fault run's report is
/// byte-for-byte the pre-fault report, these fields aside.
struct FaultStats {
  std::uint64_t tokens_lost = 0;       ///< token passes that suffered a loss
  std::uint64_t token_skips = 0;       ///< passes re-addressed over offline stations
  std::uint64_t leaves = 0;            ///< stations that left the ring
  std::uint64_t rejoins = 0;           ///< stations that re-entered it
  std::uint64_t corrupted_cycles = 0;  ///< message cycles with >= 1 corruption
  std::uint64_t retransmissions = 0;   ///< total extra transmission attempts
  std::uint64_t churn_dropped = 0;     ///< requests abandoned at/while offline

  [[nodiscard]] std::uint64_t total() const noexcept {
    return tokens_lost + token_skips + leaves + rejoins + corrupted_cycles + retransmissions +
           churn_dropped;
  }
};

/// Full simulation report.
struct SimReport {
  /// hp[k][i] — stream i of master k (same indexing as profibus::Network).
  std::vector<std::vector<StreamStats>> hp;
  std::vector<TokenStats> token;

  /// Per-stream response-time histograms; empty unless
  /// SimConfig::collect_histograms was set. Indexed like `hp`.
  std::vector<std::vector<Histogram>> response_hist;
  FaultStats faults;  ///< injected-fault counters (all zero without faults)
  std::uint64_t lp_cycles_completed = 0;
  std::uint64_t events = 0;
  std::uint64_t pool_recycles = 0;  ///< event-pool slot reuses (telemetry)
  Ticks horizon = 0;

  /// Largest observed response across every stream of every master.
  [[nodiscard]] Ticks max_response_overall() const {
    Ticks m = 0;
    for (const auto& master : hp)
      for (const StreamStats& s : master) m = std::max(m, s.max_response);
    return m;
  }

  /// Total deadline misses across the network.
  [[nodiscard]] std::uint64_t total_misses() const {
    std::uint64_t n = 0;
    for (const auto& master : hp)
      for (const StreamStats& s : master) n += s.deadline_misses;
    return n;
  }
};

}  // namespace profisched::sim
