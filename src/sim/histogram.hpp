// histogram.hpp — fixed-layout latency histogram for simulator statistics:
// hybrid linear/log2 bins (exact small values, bounded memory for tails),
// exact count/sum, and percentile queries answered from the bins.
//
// Layout: values in [0, linear_limit) land in unit-width linear bins; larger
// values land in one bin per power of two. This keeps sub-tick precision
// where responses cluster and never allocates per-sample.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/time_types.hpp"

namespace profisched::sim {

class Histogram {
 public:
  static constexpr Ticks kLinearLimit = 256;
  static constexpr std::size_t kLogBins = 48;  // covers up to 2^(8+48)

  void add(Ticks value, std::uint64_t weight = 1) {
    if (value < 0) value = 0;
    count_ += weight;
    sum_ += static_cast<double>(value) * static_cast<double>(weight);
    max_ = value > max_ ? value : max_;
    bins_[bin_index(value)] += weight;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] Ticks max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Upper bound of the bin containing the q-quantile (q in [0, 1]).
  /// Exact for values below kLinearLimit; within a factor of 2 above.
  [[nodiscard]] Ticks quantile(double q) const;

  /// Merge another histogram (same layout) into this one.
  void merge(const Histogram& other);

  /// Short text rendering: count, mean, p50/p95/p99, max.
  [[nodiscard]] std::string summary() const;

 private:
  [[nodiscard]] static std::size_t bin_index(Ticks value) noexcept {
    if (value < kLinearLimit) return static_cast<std::size_t>(value);
    std::size_t log_bin = 0;
    Ticks v = value >> 8;  // kLinearLimit == 2^8
    while (v > 1 && log_bin + 1 < kLogBins) {
      v >>= 1;
      ++log_bin;
    }
    return static_cast<std::size_t>(kLinearLimit) + log_bin;
  }

  /// Upper bound of a bin's value range.
  [[nodiscard]] static Ticks bin_upper(std::size_t index) noexcept {
    if (index < static_cast<std::size_t>(kLinearLimit)) return static_cast<Ticks>(index);
    const std::size_t log_bin = index - static_cast<std::size_t>(kLinearLimit);
    return (kLinearLimit << (log_bin + 1)) - 1;
  }

  std::array<std::uint64_t, static_cast<std::size_t>(kLinearLimit) + kLogBins> bins_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  Ticks max_ = 0;
};

}  // namespace profisched::sim
