// traffic.hpp — request release processes for the simulator.
//
// Each high-priority stream gets a TrafficConfig describing *when* its
// requests enter the AP queue. The analysis worst case is synchronous,
// maximum-rate arrival; random phases/jitter exercise average behaviour;
// sporadic mode releases at T plus a random gap (minimum inter-arrival T,
// like the paper's footnote 3).
#pragma once

#include "core/time_types.hpp"
#include "sim/rng.hpp"

namespace profisched::sim {

struct TrafficConfig {
  Ticks phase = 0;       ///< first release instant
  Ticks jitter = 0;      ///< each release delayed by uniform [0, jitter]
  bool sporadic = false; ///< add uniform [0, T] gap between releases
};

/// Stateful release-time generator for one stream.
class ReleaseProcess {
 public:
  ReleaseProcess(TrafficConfig cfg, Ticks period) : cfg_(cfg), period_(period) {}

  /// Nominal arrival instant of release #k (k from 0), before jitter.
  /// Periodic: phase + k·T. Sporadic: previous nominal + T + gap.
  [[nodiscard]] Ticks first_nominal() const { return cfg_.phase; }

  /// Advance past a nominal arrival, returning the pair (actual release,
  /// next nominal arrival).
  struct Step {
    Ticks release;       ///< nominal + jitter sample
    Ticks next_nominal;  ///< schedule the generator again at this time
  };
  [[nodiscard]] Step step(Ticks nominal, Rng& rng) const {
    const Ticks release = sat_add(nominal, rng.uniform(cfg_.jitter));
    Ticks gap = period_;
    if (cfg_.sporadic) gap = sat_add(gap, rng.uniform(period_));
    return {release, sat_add(nominal, gap)};
  }

 private:
  TrafficConfig cfg_;
  Ticks period_;
};

}  // namespace profisched::sim
