#include "sim/trace.hpp"

#include <cstdio>

namespace profisched::sim {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::TokenArrival: return "TokenArrival";
    case TraceKind::TokenPass: return "TokenPass";
    case TraceKind::Release: return "Release";
    case TraceKind::CycleStart: return "CycleStart";
    case TraceKind::CycleEnd: return "CycleEnd";
    case TraceKind::CycleDropped: return "CycleDropped";
    case TraceKind::LpCycleStart: return "LpCycleStart";
    case TraceKind::LpCycleEnd: return "LpCycleEnd";
    case TraceKind::TthOverrun: return "TthOverrun";
    case TraceKind::TokenLost: return "TokenLost";
    case TraceKind::TokenSkip: return "TokenSkip";
    case TraceKind::StationLeave: return "StationLeave";
    case TraceKind::StationRejoin: return "StationRejoin";
    case TraceKind::FrameCorrupted: return "FrameCorrupted";
    case TraceKind::ChurnDrop: return "ChurnDrop";
  }
  return "?";
}

std::string Trace::render(const std::vector<std::vector<std::string>>* stream_names) const {
  std::string out;
  out.reserve(events_.size() * 48);
  char line[160];
  for (const TraceEvent& e : events_) {
    const char* label = nullptr;
    if (stream_names != nullptr && e.stream != SIZE_MAX && e.master < stream_names->size() &&
        e.stream < (*stream_names)[e.master].size()) {
      label = (*stream_names)[e.master][e.stream].c_str();
    }
    if (label != nullptr) {
      std::snprintf(line, sizeof line, "%10lld  m%zu  %-13s %-24s detail=%lld\n",
                    static_cast<long long>(e.time), e.master, to_string(e.kind), label,
                    static_cast<long long>(e.detail));
    } else if (e.stream != SIZE_MAX) {
      std::snprintf(line, sizeof line, "%10lld  m%zu  %-13s stream=%zu detail=%lld\n",
                    static_cast<long long>(e.time), e.master, to_string(e.kind), e.stream,
                    static_cast<long long>(e.detail));
    } else {
      std::snprintf(line, sizeof line, "%10lld  m%zu  %-13s detail=%lld\n",
                    static_cast<long long>(e.time), e.master, to_string(e.kind),
                    static_cast<long long>(e.detail));
    }
    out += line;
  }
  if (dropped_ > 0) {
    std::snprintf(line, sizeof line, "… %llu further events dropped (trace capacity)\n",
                  static_cast<unsigned long long>(dropped_));
    out += line;
  }
  return out;
}

}  // namespace profisched::sim
