// Unit tests for the network model (masters, streams, ring aggregates).
#include "profibus/network.hpp"

#include <gtest/gtest.h>

namespace profisched::profibus {
namespace {

Master demo_master() {
  Master m;
  m.name = "m";
  m.high_streams = {
      MessageStream{.Ch = 300, .D = 5000, .T = 10000, .J = 0, .name = "a"},
      MessageStream{.Ch = 500, .D = 8000, .T = 20000, .J = 0, .name = "b"},
  };
  m.longest_low_cycle = 400;
  return m;
}

TEST(Master, CountsAndMaxima) {
  const Master m = demo_master();
  EXPECT_EQ(m.nh(), 2u);
  EXPECT_EQ(m.longest_high_cycle(), 500);
  EXPECT_EQ(m.longest_cycle(), 500);  // HP dominates LP here
}

TEST(Master, LowPriorityCanDominateLongestCycle) {
  Master m = demo_master();
  m.longest_low_cycle = 900;
  EXPECT_EQ(m.longest_cycle(), 900);  // C_M = max{max Ch, Cl}
}

TEST(Master, NoHighStreams) {
  Master m;
  m.longest_low_cycle = 250;
  EXPECT_EQ(m.nh(), 0u);
  EXPECT_EQ(m.longest_high_cycle(), 0);
  EXPECT_EQ(m.longest_cycle(), 250);
}

TEST(Network, TotalsAndLatency) {
  Network net;
  net.masters = {demo_master(), demo_master(), demo_master()};
  net.ttr = 10'000;
  EXPECT_EQ(net.n_masters(), 3u);
  EXPECT_EQ(net.total_high_streams(), 6u);
  EXPECT_EQ(net.ring_latency(), 3 * token_pass_time(net.bus));
}

TEST(NetworkValidation, AcceptsHealthyNetwork) {
  Network net;
  net.masters = {demo_master()};
  net.ttr = 10'000;
  EXPECT_NO_THROW(net.validate());
}

TEST(NetworkValidation, RejectsEmptyRing) {
  Network net;
  net.ttr = 10'000;
  EXPECT_THROW(net.validate(), std::invalid_argument);
}

TEST(NetworkValidation, RejectsNonPositiveTtr) {
  Network net;
  net.masters = {demo_master()};
  net.ttr = 0;
  EXPECT_THROW(net.validate(), std::invalid_argument);
}

TEST(StreamValidation, RejectsBadFields) {
  MessageStream s{.Ch = 0, .D = 10, .T = 10, .J = 0, .name = "x"};
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = MessageStream{.Ch = 5, .D = 0, .T = 10, .J = 0, .name = "x"};
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = MessageStream{.Ch = 5, .D = 10, .T = 0, .J = 0, .name = "x"};
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = MessageStream{.Ch = 5, .D = 10, .T = 10, .J = -1, .name = "x"};
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(NetworkValidation, PropagatesToStreams) {
  Network net;
  Master bad = demo_master();
  bad.high_streams[0].Ch = 0;
  net.masters = {bad};
  net.ttr = 10'000;
  EXPECT_THROW(net.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace profisched::profibus
