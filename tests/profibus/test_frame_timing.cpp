// Unit tests for PROFIBUS frame/message-cycle timing.
#include "profibus/frame_timing.hpp"

#include <algorithm>

#include <gtest/gtest.h>

namespace profisched::profibus {
namespace {

BusParameters default_bus() { return BusParameters{}; }

TEST(FrameTime, CharsTimesBits) {
  const BusParameters bus = default_bus();
  EXPECT_EQ(frame_time(bus, 1), 11);
  EXPECT_EQ(frame_time(bus, 10), 110);
}

TEST(WorstCaseCycle, NoRetriesHandComputed) {
  BusParameters bus = default_bus();
  bus.max_retry = 0;
  const MessageCycleSpec spec{.request_chars = 10, .response_chars = 20};
  // success path: 110 + 60 + 220 + 37 = 427; all-fail: 110 + 100 + 37 = 247.
  EXPECT_EQ(worst_case_cycle_time(bus, spec), 427);
}

TEST(WorstCaseCycle, RetriesAddRequestPlusSlotTime) {
  BusParameters bus = default_bus();
  bus.max_retry = 2;
  const MessageCycleSpec spec{.request_chars = 10, .response_chars = 20};
  // success path: 427 + 2·(110 + 100) = 847.
  EXPECT_EQ(worst_case_cycle_time(bus, spec), 847);
}

TEST(WorstCaseCycle, AllTimeoutPathCanDominate) {
  // Tiny response frame: t_sl (100) > max_tsdr + response (60 + 11), so the
  // all-timeout path is the worst case.
  BusParameters bus = default_bus();
  bus.max_retry = 1;
  const MessageCycleSpec spec{.request_chars = 10, .response_chars = 1};
  const Ticks success = 1 * (110 + 100) + 110 + 60 + 11 + 37;   // 428
  const Ticks all_fail = 2 * (110 + 100) + 37;                  // 457
  EXPECT_EQ(worst_case_cycle_time(bus, spec), std::max(success, all_fail));
  EXPECT_EQ(worst_case_cycle_time(bus, spec), 457);
}

TEST(BestCaseCycle, UsesMinTurnaroundNoRetries) {
  BusParameters bus = default_bus();
  bus.max_retry = 3;  // retries must not affect the best case
  const MessageCycleSpec spec{.request_chars = 10, .response_chars = 20};
  EXPECT_EQ(best_case_cycle_time(bus, spec), 110 + 11 + 220 + 37);
}

TEST(BestCaseCycle, NeverExceedsWorstCase) {
  const BusParameters bus = default_bus();
  for (Ticks req = 1; req <= 40; req += 3) {
    for (Ticks resp = 1; resp <= 40; resp += 7) {
      const MessageCycleSpec spec{req, resp};
      EXPECT_LE(best_case_cycle_time(bus, spec), worst_case_cycle_time(bus, spec))
          << req << "x" << resp;
    }
  }
}

TEST(TokenPassTime, FrameTimePlusIdle) {
  const BusParameters bus = default_bus();
  EXPECT_EQ(token_pass_time(bus), 3 * 11 + 37);
}

TEST(BusValidation, RejectsSlotTimeNotAboveTurnaround) {
  BusParameters bus = default_bus();
  bus.t_sl = bus.max_tsdr;  // a response at max turnaround would always "time out"
  EXPECT_THROW(bus.validate(), std::invalid_argument);
}

TEST(BusValidation, RejectsInvertedTurnaroundRange) {
  BusParameters bus = default_bus();
  bus.min_tsdr = bus.max_tsdr + 1;
  EXPECT_THROW(bus.validate(), std::invalid_argument);
}

TEST(BusValidation, RejectsNonPositiveChar) {
  BusParameters bus = default_bus();
  bus.bits_per_char = 0;
  EXPECT_THROW(bus.validate(), std::invalid_argument);
}

TEST(SpecValidation, RejectsEmptyFrames) {
  MessageCycleSpec spec{.request_chars = 0, .response_chars = 5};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = MessageCycleSpec{.request_chars = 5, .response_chars = 0};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

// Property: worst-case cycle time is monotone in every size/retry parameter.
class CycleMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(CycleMonotonicity, MonotoneInRetries) {
  BusParameters bus = default_bus();
  const MessageCycleSpec spec{.request_chars = 12, .response_chars = 18};
  bus.max_retry = GetParam();
  const Ticks base = worst_case_cycle_time(bus, spec);
  bus.max_retry = GetParam() + 1;
  EXPECT_GT(worst_case_cycle_time(bus, spec), base);
}

TEST_P(CycleMonotonicity, MonotoneInFrameSizes) {
  const BusParameters bus = default_bus();
  const Ticks n = GetParam() + 1;
  const Ticks base = worst_case_cycle_time(bus, MessageCycleSpec{n, n});
  EXPECT_GT(worst_case_cycle_time(bus, MessageCycleSpec{n + 1, n}), base);
  EXPECT_GE(worst_case_cycle_time(bus, MessageCycleSpec{n, n + 1}), base);
}

INSTANTIATE_TEST_SUITE_P(Retries, CycleMonotonicity, ::testing::Values(0, 1, 2, 4, 8));

}  // namespace
}  // namespace profisched::profibus
