// Unit tests for the EDF AP-queue message analysis (paper eqs. 17–18).
#include "profibus/edf_analysis.hpp"

#include <gtest/gtest.h>

#include "profibus/dm_analysis.hpp"

namespace profisched::profibus {
namespace {

Network one_master(std::vector<MessageStream> streams, Ticks ttr = 2'000) {
  Network net;
  net.ttr = ttr;
  Master m;
  m.name = "m0";
  m.high_streams = std::move(streams);
  net.masters = {m};
  return net;
}

MessageStream s(Ticks d, Ticks t, Ticks j = 0) {
  return MessageStream{.Ch = 300, .D = d, .T = t, .J = j, .name = ""};
}

TEST(EdfAnalysis, HandComputedTwoStreams) {
  // T_cycle = 2300, L = 4600, both streams' only candidate offset is a = 0.
  const Network net = one_master({s(5'000, 20'000), s(12'000, 30'000)});
  const NetworkAnalysis a = analyze_edf(net);
  ASSERT_TRUE(a.schedulable);
  // s0 at a=0: later-deadline s1 may hold the stack slot → T* = T_cycle,
  // no earlier-deadline interference → R = 2·T_cycle.
  EXPECT_EQ(a.masters[0].streams[0].response, 4'600);
  // s1 at a=0: s0 has earlier deadline → one interfering slot, no blocking
  // → R = 2·T_cycle.
  EXPECT_EQ(a.masters[0].streams[1].response, 4'600);
}

TEST(EdfAnalysis, SingleStreamIsOneTcycle) {
  const Network net = one_master({s(5'000, 20'000)});
  const NetworkAnalysis a = analyze_edf(net);
  EXPECT_EQ(a.masters[0].streams[0].response, 2'300);
  EXPECT_EQ(a.masters[0].streams[0].Q, 0);
}

TEST(EdfAnalysis, TightStreamBeatsFcfs) {
  const Network net = one_master(
      {s(5'000, 100'000), s(50'000, 100'000), s(60'000, 100'000), s(70'000, 100'000)});
  const NetworkAnalysis edf = analyze_edf(net);
  const NetworkAnalysis fcfs = analyze_fcfs(net);
  EXPECT_LT(edf.masters[0].streams[0].response, fcfs.masters[0].streams[0].response);
  EXPECT_TRUE(edf.schedulable);
  EXPECT_FALSE(fcfs.schedulable);
}

TEST(EdfAnalysis, ReportsCriticalOffsetDiagnostics) {
  const Network net = one_master({s(5'000, 20'000), s(12'000, 30'000)});
  std::vector<std::vector<EdfStreamDetail>> detail;
  const NetworkAnalysis a = analyze_edf(net, TcycleMethod::PaperEq13, &detail);
  ASSERT_EQ(detail.size(), 1u);
  ASSERT_EQ(detail[0].size(), 2u);
  EXPECT_GE(detail[0][0].offsets_examined, 1u);
  EXPECT_TRUE(a.schedulable);
}

TEST(EdfAnalysis, OverloadedMasterReportsUnschedulable) {
  // Σ T_cycle/T > 1: the token visits cannot keep up with request arrivals.
  const Network net = one_master({s(2'000, 2'000), s(3'000, 2'100)});
  const NetworkAnalysis a = analyze_edf(net);
  EXPECT_FALSE(a.schedulable);
  EXPECT_EQ(a.masters[0].streams[0].response, kNoBound);
}

TEST(EdfAnalysis, JitterInflatesResponses) {
  const Network base = one_master({s(5'000, 20'000), s(12'000, 30'000)});
  const Network jit = one_master({s(5'000, 20'000, 15'000), s(12'000, 30'000)});
  const Ticks r_base = analyze_edf(base).masters[0].streams[1].response;
  const Ticks r_jit = analyze_edf(jit).masters[0].streams[1].response;
  EXPECT_GE(r_jit, r_base);
}

TEST(EdfAnalysis, EqualStreamsSymmetric) {
  const Network net = one_master({s(20'000, 50'000), s(20'000, 50'000), s(20'000, 50'000)});
  const NetworkAnalysis a = analyze_edf(net);
  const Ticks r0 = a.masters[0].streams[0].response;
  for (const StreamResponse& r : a.masters[0].streams) EXPECT_EQ(r.response, r0);
  // All three pending at once: the last-served one needs 3 slots; blocking
  // cannot apply (no later deadline exists at a=0 for identical streams), but
  // non-zero offsets can still produce one. R ∈ [3, 4]·T_cycle.
  EXPECT_GE(r0, 3 * 2'300);
  EXPECT_LE(r0, 4 * 2'300);
}

TEST(EdfAnalysis, DmAndEdfAgreeOnTwoStreamCase) {
  // With two widely-spaced streams both analyses settle on 2·T_cycle.
  const Network net = one_master({s(5'000, 100'000), s(50'000, 100'000)});
  const NetworkAnalysis edf = analyze_edf(net);
  const NetworkAnalysis dm = analyze_dm(net);
  EXPECT_EQ(edf.masters[0].streams[0].response, dm.masters[0].streams[0].response);
  EXPECT_EQ(edf.masters[0].streams[1].response, dm.masters[0].streams[1].response);
}

TEST(EdfAnalysis, SchedulesDeadlineSetDmCannot) {
  // A five-stream set (found by randomized search, kept as a regression
  // anchor for the paper's "EDF supports tighter deadlines" claim): DM's
  // static deadline ranking overloads one stream, while EDF's per-request
  // deadline windows cap the interference and every stream fits.
  Network net;
  net.ttr = 2'626;
  Master m;
  m.high_streams = {
      MessageStream{.Ch = 387, .D = 11'600, .T = 13'573, .J = 0, .name = "s0"},
      MessageStream{.Ch = 474, .D = 7'464, .T = 9'790, .J = 0, .name = "s1"},
      MessageStream{.Ch = 482, .D = 20'907, .T = 26'794, .J = 0, .name = "s2"},
      MessageStream{.Ch = 329, .D = 20'158, .T = 22'344, .J = 0, .name = "s3"},
      MessageStream{.Ch = 309, .D = 13'770, .T = 31'006, .J = 0, .name = "s4"},
  };
  net.masters = {m};
  const NetworkAnalysis dm = analyze_dm(net);
  const NetworkAnalysis edf = analyze_edf(net);
  EXPECT_FALSE(dm.schedulable);
  EXPECT_TRUE(edf.schedulable);
}

TEST(EdfAnalysis, MultiMasterIndependence) {
  Network net;
  net.ttr = 2'000;
  Master a, b;
  a.high_streams = {s(50'000, 100'000), s(60'000, 100'000)};
  b.high_streams = {s(50'000, 100'000)};
  net.masters = {a, b};
  const NetworkAnalysis r = analyze_edf(net);
  const Ticks tc = 2'000 + 600;
  EXPECT_EQ(r.masters[1].streams[0].response, tc);
}

// Property sweep: the tightest-deadline stream under EDF never does worse
// than under FCFS.
class EdfVsFcfsSweep : public ::testing::TestWithParam<int> {};

TEST_P(EdfVsFcfsSweep, TightestStreamNeverWorseThanFcfs) {
  std::vector<MessageStream> streams{s(5'000, 100'000)};
  for (int i = 0; i < GetParam(); ++i) streams.push_back(s(50'000 + 1'000 * i, 100'000));
  const Network net = one_master(std::move(streams));
  const NetworkAnalysis edf = analyze_edf(net);
  const NetworkAnalysis fcfs = analyze_fcfs(net);
  EXPECT_LE(edf.masters[0].streams[0].response, fcfs.masters[0].streams[0].response);
}

INSTANTIATE_TEST_SUITE_P(LaxSiblings, EdfVsFcfsSweep, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace profisched::profibus
