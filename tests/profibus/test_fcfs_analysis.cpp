// Unit tests for the FCFS worst-case response analysis (paper eqs. 11–12).
#include "profibus/fcfs_analysis.hpp"

#include <gtest/gtest.h>

namespace profisched::profibus {
namespace {

Network one_master(std::initializer_list<Ticks> deadlines, Ticks ttr = 2'000) {
  Network net;
  net.ttr = ttr;
  Master m;
  m.name = "m0";
  int i = 0;
  for (const Ticks d : deadlines) {
    m.high_streams.push_back(
        MessageStream{.Ch = 300, .D = d, .T = 100'000, .J = 0, .name = "s" + std::to_string(i++)});
  }
  net.masters = {m};
  return net;
}

TEST(FcfsAnalysis, ResponseIsNhTimesTcycleForEveryStream) {
  const Network net = one_master({50'000, 60'000, 70'000});
  const NetworkAnalysis a = analyze_fcfs(net);
  const Ticks tc = t_cycle(net);  // 2000 + 300
  ASSERT_EQ(a.masters.size(), 1u);
  for (const StreamResponse& r : a.masters[0].streams) {
    EXPECT_EQ(r.response, 3 * tc);  // eq. 11: independent of D and T
  }
  EXPECT_TRUE(a.schedulable);
}

TEST(FcfsAnalysis, QueuingDelayExcludesOwnCycle) {
  const Network net = one_master({50'000});
  const NetworkAnalysis a = analyze_fcfs(net);
  const Ticks tc = t_cycle(net);
  EXPECT_EQ(a.masters[0].streams[0].Q, tc - 300);  // Q = nh·T_cycle − Ch
  EXPECT_EQ(a.masters[0].streams[0].response, tc);
}

TEST(FcfsAnalysis, DeadlineBoundaryExact) {
  // D exactly at nh·T_cycle is schedulable; one tick below is not (eq. 12
  // uses >=).
  Network net = one_master({1, 1, 1});
  const Ticks bound = 3 * t_cycle(net);
  net.masters[0].high_streams[0].D = bound;
  net.masters[0].high_streams[1].D = bound;
  net.masters[0].high_streams[2].D = bound;
  EXPECT_TRUE(analyze_fcfs(net).schedulable);
  net.masters[0].high_streams[1].D = bound - 1;
  const NetworkAnalysis a = analyze_fcfs(net);
  EXPECT_FALSE(a.schedulable);
  EXPECT_TRUE(a.masters[0].streams[0].meets_deadline);
  EXPECT_FALSE(a.masters[0].streams[1].meets_deadline);
}

TEST(FcfsAnalysis, TightDeadlinePunishedByLaxSiblings) {
  // The FCFS pathology the paper targets: adding lax streams to a master
  // inflates the tight stream's bound until it misses.
  Network net = one_master({8'000});
  EXPECT_TRUE(analyze_fcfs(net).schedulable);  // 1·(2000+300) <= 8000
  net.masters[0].high_streams.push_back(
      MessageStream{.Ch = 300, .D = 90'000, .T = 100'000, .J = 0, .name = "lax1"});
  net.masters[0].high_streams.push_back(
      MessageStream{.Ch = 300, .D = 90'000, .T = 100'000, .J = 0, .name = "lax2"});
  net.masters[0].high_streams.push_back(
      MessageStream{.Ch = 300, .D = 90'000, .T = 100'000, .J = 0, .name = "lax3"});
  const NetworkAnalysis a = analyze_fcfs(net);
  EXPECT_FALSE(a.schedulable);
  EXPECT_FALSE(a.masters[0].streams[0].meets_deadline);  // 4·2300 = 9200 > 8000
}

TEST(FcfsAnalysis, MultiMasterIndependentNh) {
  Network net;
  net.ttr = 5'000;
  Master small, big;
  small.name = "small";
  small.high_streams = {MessageStream{.Ch = 200, .D = 500'000, .T = 500'000, .J = 0, .name = ""}};
  big.name = "big";
  for (int i = 0; i < 4; ++i) {
    big.high_streams.push_back(
        MessageStream{.Ch = 200, .D = 500'000, .T = 500'000, .J = 0, .name = ""});
  }
  net.masters = {small, big};
  const NetworkAnalysis a = analyze_fcfs(net);
  const Ticks tc = t_cycle(net);  // 5000 + 200 + 200
  EXPECT_EQ(a.masters[0].streams[0].response, 1 * tc);
  EXPECT_EQ(a.masters[1].streams[0].response, 4 * tc);
}

TEST(FcfsAnalysis, RefinedTcycleTightensBounds) {
  Network net;
  net.ttr = 5'000;
  Master a, b;
  a.high_streams = {MessageStream{.Ch = 900, .D = 500'000, .T = 500'000, .J = 0, .name = ""}};
  b.high_streams = {MessageStream{.Ch = 100, .D = 500'000, .T = 500'000, .J = 0, .name = ""}};
  net.masters = {a, b};
  const NetworkAnalysis paper = analyze_fcfs(net, TcycleMethod::PaperEq13);
  const NetworkAnalysis refined = analyze_fcfs(net, TcycleMethod::PerMasterRefined);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_LE(refined.masters[k].streams[0].response, paper.masters[k].streams[0].response);
  }
}

TEST(FcfsAnalysis, MasterWithoutHighStreamsIsVacuouslySchedulable) {
  Network net = one_master({50'000});
  Master lp_only;
  lp_only.longest_low_cycle = 400;
  net.masters.push_back(lp_only);
  const NetworkAnalysis a = analyze_fcfs(net);
  EXPECT_TRUE(a.schedulable);
  EXPECT_TRUE(a.masters[1].streams.empty());
  EXPECT_TRUE(a.masters[1].schedulable);
  // …but its LP traffic still worsens everyone's T_cycle via T_del.
  EXPECT_EQ(a.tcycle, net.ttr + 300 + 400);
}

}  // namespace
}  // namespace profisched::profibus
