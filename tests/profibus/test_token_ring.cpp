// Unit tests for T_del / T_cycle (paper eqs. 13–14) and the per-master
// refinement.
#include "profibus/token_ring_analysis.hpp"

#include <gtest/gtest.h>

namespace profisched::profibus {
namespace {

Network three_master_net() {
  Network net;
  net.ttr = 10'000;
  for (int k = 0; k < 3; ++k) {
    Master m;
    m.name = "m" + std::to_string(k);
    // Longest cycles 400 / 700 / 300 — C_M mixes HP and LP maxima.
    m.high_streams = {
        MessageStream{.Ch = 200 + 100 * k, .D = 50'000, .T = 50'000, .J = 0, .name = "s0"},
        MessageStream{.Ch = 400 - 100 * k, .D = 60'000, .T = 60'000, .J = 0, .name = "s1"},
    };
    m.longest_low_cycle = (k == 1) ? 700 : 100;
    net.masters.push_back(std::move(m));
  }
  return net;
}

TEST(TDel, SumsLongestCyclePerMaster) {
  const Network net = three_master_net();
  // C_M: m0 = max{200,400,100} = 400; m1 = max{300,300,700} = 700;
  // m2 = max{400,200,100} = 400.
  EXPECT_EQ(t_del(net), 400 + 700 + 400);
}

TEST(TCycle, TtrPlusTdel) {
  const Network net = three_master_net();
  EXPECT_EQ(t_cycle(net), 10'000 + 1500);
}

TEST(TCyclePerMaster, PaperMethodIsUniform) {
  const Network net = three_master_net();
  const std::vector<Ticks> tc = t_cycle_per_master(net, TcycleMethod::PaperEq13);
  ASSERT_EQ(tc.size(), 3u);
  for (const Ticks v : tc) EXPECT_EQ(v, t_cycle(net));
}

TEST(TCyclePerMaster, RefinedNeverExceedsPaperBound) {
  const Network net = three_master_net();
  const std::vector<Ticks> refined = t_cycle_per_master(net, TcycleMethod::PerMasterRefined);
  const Ticks uniform = t_cycle(net);
  for (const Ticks v : refined) {
    EXPECT_LE(v, uniform);
    EXPECT_GT(v, net.ttr);  // some lateness is always possible with traffic
  }
}

TEST(TCyclePerMaster, RefinedHandComputedAsymmetricRing) {
  // Ring m0 → m1 → m2. C_M = {400, 700, 400}; Ch-max = {400, 300, 400}.
  // Lateness at m0 = max over overrunner j:
  //   j=0: 400 + Ch(m1) + Ch(m2) = 400+300+400 = 1100
  //   j=1: 700 + Ch(m2) = 1100
  //   j=2: 400
  // → 1100. (The uniform eq.-13 bound charges 1500.)
  const Network net = three_master_net();
  const std::vector<Ticks> refined = t_cycle_per_master(net, TcycleMethod::PerMasterRefined);
  EXPECT_EQ(refined[0], 10'000 + 1100);
  // m1: j=0 → 400 + nothing between 0 and 1 = 400; j=1 (self, full loop):
  // 700 + Ch(m2) + Ch(m0) = 1500; j=2 → 400 + Ch(m0) = 800. → 1500.
  EXPECT_EQ(refined[1], 10'000 + 1500);
  // m2: j=0 → 400+300=700; j=1 → 700; j=2 self → 400 + 300 + 400 = 1100.
  EXPECT_EQ(refined[2], 10'000 + 1100);
}

TEST(TDel, SingleMasterIsItsLongestCycle) {
  Network net;
  net.ttr = 5'000;
  Master m;
  m.high_streams = {MessageStream{.Ch = 333, .D = 9'999, .T = 9'999, .J = 0, .name = ""}};
  net.masters = {m};
  EXPECT_EQ(t_del(net), 333);
  EXPECT_EQ(t_cycle(net), 5'333);
}

TEST(TDel, GrowsLinearlyWithRingSize) {
  Network net;
  net.ttr = 1'000;
  Ticks prev = 0;
  for (int k = 0; k < 8; ++k) {
    Master m;
    m.high_streams = {MessageStream{.Ch = 250, .D = 99'999, .T = 99'999, .J = 0, .name = ""}};
    net.masters.push_back(m);
    const Ticks cur = t_del(net);
    EXPECT_EQ(cur, prev + 250);
    prev = cur;
  }
}

}  // namespace
}  // namespace profisched::profibus
