// Unit tests for message-level fixed-priority assignment (arbitrary orders
// and Audsley's OPA at the AP level).
#include "profibus/priority_assignment.hpp"

#include <gtest/gtest.h>

#include "profibus/dm_analysis.hpp"

namespace profisched::profibus {
namespace {

Network one_master(std::vector<MessageStream> streams, Ticks ttr = 2'000) {
  Network net;
  net.ttr = ttr;
  Master m;
  m.name = "m0";
  m.high_streams = std::move(streams);
  net.masters = {m};
  return net;
}

MessageStream s(Ticks d, Ticks t, Ticks j = 0) {
  return MessageStream{.Ch = 300, .D = d, .T = t, .J = j, .name = ""};
}

TEST(FixedPriority, DmOrdersMatchAnalyzeDm) {
  const Network net = one_master({s(9'000, 100'000), s(5'000, 100'000), s(50'000, 100'000)});
  const NetworkAnalysis via_orders = analyze_fixed_priority(net, deadline_monotonic_orders(net));
  const NetworkAnalysis direct = analyze_dm(net);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(via_orders.masters[0].streams[i].response, direct.masters[0].streams[i].response);
    EXPECT_EQ(via_orders.masters[0].streams[i].Q, direct.masters[0].streams[i].Q);
  }
  EXPECT_EQ(via_orders.schedulable, direct.schedulable);
}

TEST(FixedPriority, InvertedOrderPunishesTheTightStream) {
  const Network net = one_master({s(5'000, 100'000), s(50'000, 100'000)});
  const NetworkOrders inverted{{1, 0}};  // lax stream on top
  const NetworkAnalysis a = analyze_fixed_priority(net, inverted);
  // Tight stream now lowest priority: no blocking but one interference slot:
  // w = 2300, R = 4600 <= 5000 still fine here, but strictly more than its
  // DM bound’s... equal actually; check the *lax* stream got the top bound.
  EXPECT_EQ(a.masters[0].streams[1].response, 2 * 2'300);
  EXPECT_EQ(a.masters[0].streams[0].response, 2 * 2'300);
}

TEST(FixedPriority, ValidatesOrderShape) {
  const Network net = one_master({s(5'000, 100'000), s(50'000, 100'000)});
  EXPECT_THROW((void)analyze_fixed_priority(net, NetworkOrders{}), std::invalid_argument);
  EXPECT_THROW((void)analyze_fixed_priority(net, NetworkOrders{{0}}), std::invalid_argument);
}

TEST(MessageOpa, FindsOrderWhenDmWorks) {
  const Network net = one_master({s(5'000, 100'000), s(9'000, 100'000), s(50'000, 100'000)});
  ASSERT_TRUE(analyze_dm(net).schedulable);
  const auto orders = audsley_stream_orders(net);
  ASSERT_TRUE(orders.has_value());
  EXPECT_TRUE(analyze_fixed_priority(net, *orders).schedulable);
}

TEST(MessageOpa, ReturnsNulloptOnHopelessSet) {
  const Network net = one_master({s(2'000, 2'000), s(2'000, 2'100)});
  EXPECT_FALSE(audsley_stream_orders(net).has_value());
}

TEST(MessageOpa, FoundOrderAlwaysVerifies) {
  // Property over a deterministic family: whenever OPA returns an order, the
  // full analysis under that order must be schedulable.
  for (Ticks d0 = 4'800; d0 <= 7'200; d0 += 300) {
    const Network net = one_master({s(d0, 9'000), s(9'200, 50'000), s(12'000, 60'000)});
    const auto orders = audsley_stream_orders(net);
    if (orders.has_value()) {
      EXPECT_TRUE(analyze_fixed_priority(net, *orders).schedulable) << "d0=" << d0;
    } else {
      EXPECT_FALSE(analyze_dm(net).schedulable) << "d0=" << d0;  // OPA optimal: DM must fail too
    }
  }
}

TEST(MessageOpa, BeatsDmOnConstructedSet) {
  // DM is not optimal here because interference depends on *periods*, which
  // DM ignores. s2 has a short period (3450 < 2·T_cycle) and a mid deadline:
  // DM ranks it above s3, whose window then collects TWO s2 slots:
  //   DM (s1>s2>s3): R_s3 = 3·2300 + 2300 = 9200 > D_s3 = 8050 → miss.
  // Demoting s2 to the bottom fixes everything (T_cycle = 2300):
  //   s1: B + own = 4600 <= 5750; s3 at rank 1: 2·2300 + 2300 = 6900 <= 8050;
  //   s2 at the bottom: no blocking, one slot each from s1/s3 within w = 4600
  //   → R = 6900 <= 7360. OPA must find such an order.
  const Network net = one_master({
      s(5'750, 100'000),  // s1: tightest D
      s(7'360, 3'450),    // s2: mid D, SHORT period
      s(8'050, 100'000),  // s3: laxest D
  });
  EXPECT_FALSE(analyze_dm(net).schedulable);
  const auto opa = audsley_stream_orders(net);
  ASSERT_TRUE(opa.has_value());
  EXPECT_TRUE(analyze_fixed_priority(net, *opa).schedulable);
  // And the found order indeed demotes the short-period stream.
  EXPECT_EQ((*opa)[0].back(), 1u);
}

TEST(MessageOpa, MultiMasterIndependentSearch) {
  Network net;
  net.ttr = 2'000;
  Master a, b;
  a.high_streams = {s(50'000, 100'000), s(60'000, 100'000)};
  b.high_streams = {s(50'000, 100'000)};
  net.masters = {a, b};
  const auto orders = audsley_stream_orders(net);
  ASSERT_TRUE(orders.has_value());
  EXPECT_EQ((*orders)[0].size(), 2u);
  EXPECT_EQ((*orders)[1].size(), 1u);
}

}  // namespace
}  // namespace profisched::profibus
