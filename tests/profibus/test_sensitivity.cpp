// Unit tests for network-level sensitivity analysis, on the unified
// predicate-based SensitivityResult API.
#include "profibus/sensitivity.hpp"

#include <gtest/gtest.h>

#include "profibus/ttr_setting.hpp"
#include "workload/scenarios.hpp"

namespace profisched::profibus {
namespace {

Network demo() { return workload::scenarios::factory_cell(); }

TEST(NetSensitivity, UnschedulableHasNoHeadroom) {
  const Network net = workload::scenarios::tight_deadline_mix();
  // FCFS fails already; DM holds.
  EXPECT_FALSE(frame_scaling_headroom(net, network_test_for(ApPolicy::Fcfs)).feasible);
  EXPECT_TRUE(frame_scaling_headroom(net, network_test_for(ApPolicy::Dm)).feasible);
}

TEST(NetSensitivity, FrameGrowthBoundaryExact) {
  const Network net = demo();
  for (const ApPolicy policy : {ApPolicy::Fcfs, ApPolicy::Dm, ApPolicy::Edf}) {
    const auto q = frame_scaling_headroom(net, network_test_for(policy));
    ASSERT_TRUE(q.feasible) << to_string(policy);
    EXPECT_GE(q.value, sensitivity::kScaleOne);
    // Exactness: schedulable at q, not at q+1 (unless capped).
    if (!q.cap_hit) {
      const Network grown = with_scaled_frames(net, q.value + 1);
      EXPECT_FALSE(analyze_network(grown, policy).schedulable) << to_string(policy);
    }
  }
}

TEST(NetSensitivity, PriorityQueuesHaveMoreFrameHeadroomThanFcfs) {
  // factory_cell's T_TR sits at the eq.-15 maximum: FCFS has zero slack, so
  // DM/EDF must tolerate at least as much frame growth.
  const Network net = demo();
  const auto f = frame_scaling_headroom(net, network_test_for(ApPolicy::Fcfs));
  const auto d = frame_scaling_headroom(net, network_test_for(ApPolicy::Dm));
  ASSERT_TRUE(f.feasible && d.feasible);
  EXPECT_GE(d.value, f.value);
}

TEST(NetSensitivity, DeadlineMarginMatchesResponseBoundForFcfs) {
  // Under FCFS the response is nh·T_cycle regardless of D, so the minimal
  // sustainable deadline IS the bound.
  const Network net = demo();
  const NetworkAnalysis a = analyze_network(net, ApPolicy::Fcfs);
  const auto d = stream_deadline_margin(net, network_test_for(ApPolicy::Fcfs), 1, 0);
  ASSERT_TRUE(d.feasible);
  EXPECT_EQ(d.value, a.masters[1].streams[0].response);
}

TEST(NetSensitivity, DmDeadlineMarginBelowFcfs) {
  // The tightest robot stream can sustain a smaller deadline under DM than
  // under FCFS — the paper's claim as a margin statement.
  const Network net = demo();
  const auto fcfs = stream_deadline_margin(net, network_test_for(ApPolicy::Fcfs), 1, 0);
  const auto dm = stream_deadline_margin(net, network_test_for(ApPolicy::Dm), 1, 0);
  ASSERT_TRUE(fcfs.feasible && dm.feasible);
  EXPECT_LT(dm.value, fcfs.value);
}

TEST(NetSensitivity, MaxTtrForFcfsMatchesEq15) {
  // The generic search must reproduce the closed-form eq.-15 maximum.
  const Network net = demo();
  const auto searched = max_schedulable_ttr(net, network_test_for(ApPolicy::Fcfs));
  const auto closed_form = max_schedulable_ttr(net);
  ASSERT_TRUE(searched.feasible && closed_form.has_value());
  EXPECT_EQ(searched.value, *closed_form);
}

TEST(NetSensitivity, MaxTtrOrderedByPolicyStrength) {
  const Network net = demo();
  const auto f = max_schedulable_ttr(net, network_test_for(ApPolicy::Fcfs));
  const auto d = max_schedulable_ttr(net, network_test_for(ApPolicy::Dm));
  ASSERT_TRUE(f.feasible && d.feasible);
  EXPECT_GT(d.value, f.value);  // E9's observation, now as an exact margin
}

TEST(NetSensitivity, DeadlineMarginUnattainableWhenMasterOverloaded) {
  Network net;
  net.ttr = 2'000;
  Master m;
  m.high_streams = {
      MessageStream{.Ch = 300, .D = 2'000, .T = 2'000, .J = 0, .name = ""},
      MessageStream{.Ch = 300, .D = 3'000, .T = 2'100, .J = 0, .name = ""},
  };
  net.masters = {m};
  EXPECT_FALSE(stream_deadline_margin(net, network_test_for(ApPolicy::Dm), 0, 1).feasible);
}

TEST(NetSensitivity, MinDeadlineRatioBoundaryExact) {
  const Network net = demo();
  for (const ApPolicy policy : {ApPolicy::Dm, ApPolicy::Edf}) {
    const auto test = network_test_for(policy);
    const auto beta = min_deadline_ratio(net, test);
    ASSERT_TRUE(beta.feasible) << to_string(policy);
    EXPECT_TRUE(test(with_deadline_ratio(net, beta.value))) << to_string(policy);
    if (!beta.cap_hit) {
      EXPECT_FALSE(test(with_deadline_ratio(net, beta.value - 1))) << to_string(policy);
    }
  }
}

TEST(NetSensitivity, MessageUtilizationSumsStreams) {
  Network net;
  net.ttr = 2'000;
  Master m;
  m.high_streams = {
      MessageStream{.Ch = 100, .D = 1'000, .T = 1'000, .J = 0, .name = ""},
      MessageStream{.Ch = 300, .D = 2'000, .T = 2'000, .J = 0, .name = ""},
  };
  net.masters = {m, m};
  EXPECT_DOUBLE_EQ(message_utilization(net), 2 * (0.1 + 0.15));
}

}  // namespace
}  // namespace profisched::profibus
