// Unit tests for network-level sensitivity analysis.
#include "profibus/sensitivity.hpp"

#include <gtest/gtest.h>

#include "profibus/ttr_setting.hpp"
#include "workload/scenarios.hpp"

namespace profisched::profibus {
namespace {

Network demo() { return workload::scenarios::factory_cell(); }

TEST(NetSensitivity, UnschedulableHasNoHeadroom) {
  const Network net = workload::scenarios::tight_deadline_mix();
  EXPECT_FALSE(frame_growth_headroom(net, ApPolicy::Fcfs).has_value());  // FCFS fails already
  EXPECT_TRUE(frame_growth_headroom(net, ApPolicy::Dm).has_value());
}

TEST(NetSensitivity, FrameGrowthBoundaryExact) {
  const Network net = demo();
  for (const ApPolicy policy : {ApPolicy::Fcfs, ApPolicy::Dm, ApPolicy::Edf}) {
    const auto q = frame_growth_headroom(net, policy);
    ASSERT_TRUE(q.has_value()) << to_string(policy);
    EXPECT_GE(*q, 1024);
    // Exactness: schedulable at q, not at q+1 (unless capped).
    if (*q < 64 * 1024) {
      Network grown = net;
      for (auto& m : grown.masters) {
        for (auto& s : m.high_streams) s.Ch = ceil_div(sat_mul(s.Ch, *q + 1), 1024);
        m.longest_low_cycle = ceil_div(sat_mul(m.longest_low_cycle, *q + 1), 1024);
      }
      EXPECT_FALSE(analyze_network(grown, policy).schedulable) << to_string(policy);
    }
  }
}

TEST(NetSensitivity, PriorityQueuesHaveMoreFrameHeadroomThanFcfs) {
  // factory_cell's T_TR sits at the eq.-15 maximum: FCFS has zero slack, so
  // DM/EDF must tolerate at least as much frame growth.
  const Network net = demo();
  const auto f = frame_growth_headroom(net, ApPolicy::Fcfs);
  const auto d = frame_growth_headroom(net, ApPolicy::Dm);
  ASSERT_TRUE(f.has_value() && d.has_value());
  EXPECT_GE(*d, *f);
}

TEST(NetSensitivity, DeadlineMarginMatchesResponseBoundForFcfs) {
  // Under FCFS the response is nh·T_cycle regardless of D, so the minimal
  // sustainable deadline IS the bound.
  const Network net = demo();
  const NetworkAnalysis a = analyze_network(net, ApPolicy::Fcfs);
  const auto d = stream_deadline_margin(net, ApPolicy::Fcfs, 1, 0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, a.masters[1].streams[0].response);
}

TEST(NetSensitivity, DmDeadlineMarginBelowFcfs) {
  // The tightest robot stream can sustain a smaller deadline under DM than
  // under FCFS — the paper's claim as a margin statement.
  const Network net = demo();
  const auto fcfs = stream_deadline_margin(net, ApPolicy::Fcfs, 1, 0);
  const auto dm = stream_deadline_margin(net, ApPolicy::Dm, 1, 0);
  ASSERT_TRUE(fcfs.has_value() && dm.has_value());
  EXPECT_LT(*dm, *fcfs);
}

TEST(NetSensitivity, MaxTtrForFcfsMatchesEq15) {
  // The generic search must reproduce the closed-form eq.-15 maximum.
  const Network net = demo();
  const auto searched = max_schedulable_ttr_for(net, ApPolicy::Fcfs);
  const auto closed_form = max_schedulable_ttr(net);
  ASSERT_TRUE(searched.has_value() && closed_form.has_value());
  EXPECT_EQ(*searched, *closed_form);
}

TEST(NetSensitivity, MaxTtrOrderedByPolicyStrength) {
  const Network net = demo();
  const auto f = max_schedulable_ttr_for(net, ApPolicy::Fcfs);
  const auto d = max_schedulable_ttr_for(net, ApPolicy::Dm);
  ASSERT_TRUE(f.has_value() && d.has_value());
  EXPECT_GT(*d, *f);  // E9's observation, now as an exact margin
}

TEST(NetSensitivity, DeadlineMarginUnattainableWhenMasterOverloaded) {
  Network net;
  net.ttr = 2'000;
  Master m;
  m.high_streams = {
      MessageStream{.Ch = 300, .D = 2'000, .T = 2'000, .J = 0, .name = ""},
      MessageStream{.Ch = 300, .D = 3'000, .T = 2'100, .J = 0, .name = ""},
  };
  net.masters = {m};
  EXPECT_FALSE(stream_deadline_margin(net, ApPolicy::Dm, 0, 1).has_value());
}

}  // namespace
}  // namespace profisched::profibus
