// Unit tests for the DM AP-queue message analysis (paper eq. 16).
#include "profibus/dm_analysis.hpp"

#include <gtest/gtest.h>

namespace profisched::profibus {
namespace {

// One master, Ch = 300 everywhere, T_TR = 2000 → T_cycle = 2300.
Network one_master(std::vector<MessageStream> streams, Ticks ttr = 2'000) {
  Network net;
  net.ttr = ttr;
  Master m;
  m.name = "m0";
  m.high_streams = std::move(streams);
  net.masters = {m};
  return net;
}

MessageStream s(Ticks d, Ticks t, Ticks j = 0) {
  return MessageStream{.Ch = 300, .D = d, .T = t, .J = j, .name = ""};
}

TEST(DmAnalysis, HandComputedThreeStreams) {
  const Network net = one_master({s(5'000, 100'000), s(9'000, 100'000), s(50'000, 100'000)});
  const NetworkAnalysis a = analyze_dm(net);
  ASSERT_TRUE(a.schedulable);
  const Ticks tc = 2'300;
  // Tightest stream: blocking T_cycle, no interference → R = 2·T_cycle.
  EXPECT_EQ(a.masters[0].streams[0].response, 2 * tc);
  // Middle: blocking + one interference slot within w → R = 3·T_cycle.
  EXPECT_EQ(a.masters[0].streams[1].response, 3 * tc);
  // Lowest priority: no blocking (T* = 0) → R = 3·T_cycle as well.
  EXPECT_EQ(a.masters[0].streams[2].response, 3 * tc);
}

TEST(DmAnalysis, TightStreamBeatsFcfsBound) {
  // The paper's headline: under DM the tight-deadline stream gets
  // 2·T_cycle instead of FCFS's nh·T_cycle.
  const Network net = one_master(
      {s(5'000, 100'000), s(50'000, 100'000), s(60'000, 100'000), s(70'000, 100'000)});
  const NetworkAnalysis dm = analyze_dm(net);
  const NetworkAnalysis fcfs = analyze_fcfs(net);
  EXPECT_EQ(dm.masters[0].streams[0].response, 2 * 2'300);
  EXPECT_EQ(fcfs.masters[0].streams[0].response, 4 * 2'300);
  EXPECT_TRUE(dm.schedulable);
  EXPECT_FALSE(fcfs.schedulable);  // 9'200 > 5'000
}

TEST(DmAnalysis, LowestPriorityStreamHasNoBlocking) {
  const Network net = one_master({s(5'000, 100'000), s(90'000, 100'000)});
  const NetworkAnalysis a = analyze_dm(net);
  // Lowest: T* = 0, one hp slot → w = T_cycle, R = 2·T_cycle.
  EXPECT_EQ(a.masters[0].streams[1].Q, 2'300);
  EXPECT_EQ(a.masters[0].streams[1].response, 2 * 2'300);
}

TEST(DmAnalysis, SingleStreamEqualsFcfs) {
  const Network net = one_master({s(5'000, 100'000)});
  EXPECT_EQ(analyze_dm(net).masters[0].streams[0].response,
            analyze_fcfs(net).masters[0].streams[0].response);
}

TEST(DmAnalysis, ShortPeriodInterferersCountRepeatedly) {
  // hp stream with period < w contributes multiple T_cycle slots.
  const Network net = one_master({s(4'000, 4'000), s(90'000, 200'000)});
  const NetworkAnalysis a = analyze_dm(net);
  // Lowest: w = ⌈w/4000⌉·2300 from w0 = 2300: w=2300→⌈2300/4000⌉=1→2300 ✓;
  // R = 2300 + 2300 = 4600.
  EXPECT_EQ(a.masters[0].streams[1].response, 4'600);
}

TEST(DmAnalysis, JitterOfHigherPriorityInflatesResponse) {
  const Network base = one_master({s(5'000, 100'000), s(9'000, 100'000)});
  const Network jit = one_master({s(5'000, 100'000, 98'000), s(9'000, 100'000)});
  const Ticks r_base = analyze_dm(base).masters[0].streams[1].response;
  const Ticks r_jit = analyze_dm(jit).masters[0].streams[1].response;
  // Lowest priority: B = 0, one hp slot → w = 2'300, R = 4'600. With J = 98'000
  // on the hp stream, ⌈(2'300 + 98'000)/100'000⌉ = 2 slots → R = 6'900.
  EXPECT_EQ(r_base, 4'600);
  EXPECT_EQ(r_jit, 6'900);
}

TEST(DmAnalysis, OverloadedMasterReportsUnschedulable) {
  // Period below T_cycle: the token cannot keep up; the fixed point diverges.
  const Network net = one_master({s(2'000, 2'000), s(3'000, 2'100)});
  const NetworkAnalysis a = analyze_dm(net);
  EXPECT_FALSE(a.schedulable);
  EXPECT_EQ(a.masters[0].streams[1].response, kNoBound);
}

TEST(DmAnalysis, DeadlineTieBreaksByIndexDeterministically) {
  const Network net = one_master({s(9'000, 100'000), s(9'000, 100'000), s(9'000, 100'000)});
  const NetworkAnalysis a = analyze_dm(net);
  // Stable sort: index order is the tie order. Rank 0: B + own = 2·T_cycle.
  // Rank 1: B + 1 hp slot + own = 3·T_cycle. Rank 2 (lowest): B = 0 but two
  // hp slots → 3·T_cycle too.
  EXPECT_EQ(a.masters[0].streams[0].response, 2 * 2'300);
  EXPECT_EQ(a.masters[0].streams[1].response, 3 * 2'300);
  EXPECT_EQ(a.masters[0].streams[2].response, 3 * 2'300);
}

TEST(DmAnalysis, RefinedStartTimeFormDominatesLiteral) {
  // For the message adaptation the start-time form ⌊w/T⌋+1 counts at least as
  // many interfering slots as the printed ⌈w/T⌉ — the literal eq. 16 is the
  // (slightly) optimistic one here, mirroring the eq.-3 situation.
  const Network net =
      one_master({s(5'000, 6'000), s(9'000, 11'000), s(50'000, 100'000)});
  const NetworkAnalysis lit = analyze_dm(net, TcycleMethod::PaperEq13, Formulation::PaperLiteral);
  const NetworkAnalysis ref = analyze_dm(net, TcycleMethod::PaperEq13, Formulation::Refined);
  for (std::size_t i = 0; i < 3; ++i) {
    const Ticks rl = lit.masters[0].streams[i].response;
    const Ticks rr = ref.masters[0].streams[i].response;
    if (rl != kNoBound && rr != kNoBound) {
      EXPECT_GE(rr, rl) << "stream " << i;
    }
  }
}

TEST(DmAnalysis, MultiMasterIndependence) {
  // Streams only interfere within their master; across masters only T_cycle
  // couples them.
  Network net;
  net.ttr = 2'000;
  Master a, b;
  a.high_streams = {s(50'000, 100'000), s(60'000, 100'000)};
  b.high_streams = {s(50'000, 100'000)};
  net.masters = {a, b};
  const NetworkAnalysis r = analyze_dm(net);
  const Ticks tc = 2'000 + 300 + 300;
  EXPECT_EQ(r.masters[1].streams[0].response, tc);        // alone: no blocking, no hp
  EXPECT_EQ(r.masters[0].streams[0].response, 2 * tc);    // blocked by sibling
}

// Property sweep: under DM the tightest stream of a master always does at
// least as well as under FCFS (2·T_cycle vs nh·T_cycle).
class DmVsFcfsSweep : public ::testing::TestWithParam<int> {};

TEST_P(DmVsFcfsSweep, TightestStreamNeverWorseThanFcfs) {
  std::vector<MessageStream> streams{s(5'000, 100'000)};
  for (int i = 0; i < GetParam(); ++i) streams.push_back(s(50'000 + 1'000 * i, 100'000));
  const Network net = one_master(std::move(streams));
  const NetworkAnalysis dm = analyze_dm(net);
  const NetworkAnalysis fcfs = analyze_fcfs(net);
  EXPECT_LE(dm.masters[0].streams[0].response, fcfs.masters[0].streams[0].response);
}

INSTANTIATE_TEST_SUITE_P(LaxSiblings, DmVsFcfsSweep, ::testing::Values(1, 2, 3, 5, 8, 12));

}  // namespace
}  // namespace profisched::profibus
