// Unit tests for T_TR parameter setting (paper eq. 15).
#include "profibus/ttr_setting.hpp"

#include <gtest/gtest.h>

#include "profibus/fcfs_analysis.hpp"

namespace profisched::profibus {
namespace {

Network demo(Ticks tight_deadline) {
  Network net;
  net.ttr = 1;  // placeholder; the functions under test ignore/replace it
  Master m;
  m.high_streams = {
      MessageStream{.Ch = 300, .D = tight_deadline, .T = 200'000, .J = 0, .name = "tight"},
      MessageStream{.Ch = 300, .D = 100'000, .T = 200'000, .J = 0, .name = "lax"},
  };
  m.longest_low_cycle = 500;
  net.masters = {m};
  return net;
}

TEST(TtrRange, HandComputedUpperBound) {
  // nh = 2, T_del = max{300,300,500} = 500.
  // bound = min(⌊20'000/2⌋, ⌊100'000/2⌋) − 500 = 10'000 − 500 = 9'500.
  const Network net = demo(20'000);
  const TtrRange r = ttr_range_fcfs(net);
  EXPECT_EQ(r.max, 9'500);
  EXPECT_TRUE(r.feasible());
}

TEST(TtrRange, DefaultFloorIsRingLatencyPlusOne) {
  const Network net = demo(20'000);
  EXPECT_EQ(ttr_range_fcfs(net).min, net.ring_latency() + 1);
}

TEST(TtrRange, CallerCanOverrideFloor) {
  const Network net = demo(20'000);
  EXPECT_EQ(ttr_range_fcfs(net, Ticks{4'000}).min, 4'000);
}

TEST(TtrRange, InfeasibleWhenDeadlinesTooTight) {
  // bound = ⌊900/2⌋ − 500 = −50 < floor.
  const Network net = demo(900);
  const TtrRange r = ttr_range_fcfs(net);
  EXPECT_FALSE(r.feasible());
  EXPECT_FALSE(max_schedulable_ttr(net).has_value());
}

TEST(MaxSchedulableTtr, BoundaryIsExactlySchedulable) {
  // Setting T_TR to the eq.-15 maximum must make the FCFS analysis pass, and
  // one tick more must make it fail — eq. 15 is tight w.r.t. eq. 12.
  Network net = demo(20'000);
  const auto best = max_schedulable_ttr(net);
  ASSERT_TRUE(best.has_value());
  net.ttr = *best;
  EXPECT_TRUE(analyze_fcfs(net).schedulable);
  net.ttr = *best + 1;
  EXPECT_FALSE(analyze_fcfs(net).schedulable);
}

TEST(MaxSchedulableTtr, MultiMasterTakesTheGlobalMinimum) {
  Network net = demo(20'000);
  Master other;
  other.high_streams = {
      MessageStream{.Ch = 200, .D = 6'000, .T = 200'000, .J = 0, .name = "very-tight"},
  };
  net.masters.push_back(other);
  // T_del = 500 + 200 = 700. Master 2: ⌊6000/1⌋ − 700 = 5'300;
  // master 1: ⌊20'000/2⌋ − 700 = 9'300 → min 5'300.
  const auto best = max_schedulable_ttr(net);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, 5'300);
}

TEST(TtrRange, StreamlessMastersDontConstrain) {
  Network net = demo(20'000);
  Master lp_only;
  lp_only.longest_low_cycle = 100;
  net.masters.push_back(lp_only);
  // T_del rises to 600 but no new stream constraint appears.
  EXPECT_EQ(ttr_range_fcfs(net).max, 10'000 - 600);
}

// Sweep: the eq.-15 bound is monotone in the tight stream's deadline.
class TtrDeadlineSweep : public ::testing::TestWithParam<Ticks> {};

TEST_P(TtrDeadlineSweep, BoundMonotoneInDeadline) {
  const Ticks d = GetParam();
  const Ticks lo = ttr_range_fcfs(demo(d)).max;
  const Ticks hi = ttr_range_fcfs(demo(d + 2'000)).max;
  EXPECT_LE(lo, hi);
}

INSTANTIATE_TEST_SUITE_P(Deadlines, TtrDeadlineSweep,
                         ::testing::Values(2'000, 5'000, 10'000, 20'000, 50'000));

}  // namespace
}  // namespace profisched::profibus
