// Unit tests for the degraded-mode bounds (profibus/fault_bounds.hpp): the
// dead-time arithmetic, retransmission frame scaling, the degenerate
// zero-fault case collapsing to the clean analysis, monotonicity of the
// degraded bounds against the clean ones, and saturation safety.
#include <gtest/gtest.h>

#include "profibus/dispatching.hpp"
#include "profibus/fault_bounds.hpp"
#include "profibus/frame_timing.hpp"
#include "profibus/token_ring_analysis.hpp"

namespace profisched::profibus {
namespace {

MessageStream stream(Ticks ch, Ticks d, Ticks t) {
  return MessageStream{.Ch = ch, .D = d, .T = t, .J = 0, .name = ""};
}

Network ring(std::size_t n_masters, Ticks ttr) {
  Network net;
  net.ttr = ttr;
  for (std::size_t k = 0; k < n_masters; ++k) {
    Master m;
    m.high_streams = {stream(500, 60'000, 15'000), stream(300, 90'000, 30'000)};
    net.masters.push_back(m);
  }
  return net;
}

TEST(FaultBounds, DeadTimeIsZeroWithoutLossOrChurn) {
  const Network net = ring(3, 6'000);
  FaultModel f;
  EXPECT_EQ(degraded_dead_time(net, f), 0);
  // Corruption and bursts alone add no rotation dead time (they act through
  // frame scaling / release phasing instead).
  f.corruption_prob = 0.5;
  f.max_retransmissions = 4;
  f.burst_correlation = 1.0;
  EXPECT_EQ(degraded_dead_time(net, f), 0);
}

TEST(FaultBounds, DeadTimeMatchesTheDerivation) {
  const Network net = ring(4, 6'000);
  FaultModel f;
  f.token_loss_prob = 0.01;
  f.token_recovery = 2'000;
  // n losses per rotation.
  EXPECT_EQ(degraded_dead_time(net, f), 4 * 2'000);
  // Plus (n-1) churn skips at t_sl + token_pass_time each.
  f.churn_prob = 0.01;
  const Ticks per_skip = net.bus.t_sl + token_pass_time(net.bus);
  EXPECT_EQ(degraded_dead_time(net, f), 4 * 2'000 + 3 * per_skip);
  // A single-master ring has nothing to skip.
  const Network solo = ring(1, 6'000);
  EXPECT_EQ(degraded_dead_time(solo, f), 2'000);
}

TEST(FaultBounds, DegradedNetworkScalesFramesByRetransmissionCap) {
  const Network net = ring(2, 6'000);
  FaultModel f;
  f.corruption_prob = 0.2;
  f.max_retransmissions = 2;
  const Network dnet = degraded_network(net, f);
  for (std::size_t k = 0; k < net.n_masters(); ++k) {
    for (std::size_t i = 0; i < net.masters[k].high_streams.size(); ++i) {
      EXPECT_EQ(dnet.masters[k].high_streams[i].Ch,
                3 * net.masters[k].high_streams[i].Ch);
    }
  }
  // No corruption (or a zero retransmission cap) leaves the network as-is.
  FaultModel off;
  off.max_retransmissions = 5;
  EXPECT_EQ(degraded_network(net, off).masters[0].high_streams[0].Ch,
            net.masters[0].high_streams[0].Ch);
  FaultModel no_cap;
  no_cap.corruption_prob = 0.9;
  no_cap.max_retransmissions = 0;
  EXPECT_EQ(degraded_network(net, no_cap).masters[0].high_streams[0].Ch,
            net.masters[0].high_streams[0].Ch);
}

TEST(FaultBounds, DegradedTimingAddsDeadTimeEverywhere) {
  const Network net = ring(3, 6'000);
  FaultModel f;
  f.token_loss_prob = 0.1;
  f.token_recovery = 1'500;
  const TimingMemo clean = compute_timing(net);
  const TimingMemo degraded = degraded_timing(net, f);
  const Ticks dead = degraded_dead_time(net, f);
  ASSERT_GT(dead, 0);
  EXPECT_EQ(degraded.tdel, clean.tdel + dead);
  EXPECT_EQ(degraded.tcycle, clean.tcycle + dead);
  ASSERT_EQ(degraded.per_master.size(), clean.per_master.size());
  for (std::size_t k = 0; k < clean.per_master.size(); ++k) {
    EXPECT_EQ(degraded.per_master[k], clean.per_master[k] + dead);
  }
}

TEST(FaultBounds, ZeroFaultAnalysisCollapsesToClean) {
  const Network net = ring(2, 6'000);
  const FaultModel none;
  for (const ApPolicy policy : {ApPolicy::Fcfs, ApPolicy::Dm, ApPolicy::Edf}) {
    const NetworkAnalysis clean = analyze_network(net, policy);
    const NetworkAnalysis degraded = analyze_degraded(net, none, policy);
    EXPECT_EQ(degraded.schedulable, clean.schedulable);
    ASSERT_EQ(degraded.masters.size(), clean.masters.size());
    for (std::size_t k = 0; k < clean.masters.size(); ++k) {
      ASSERT_EQ(degraded.masters[k].streams.size(), clean.masters[k].streams.size());
      for (std::size_t i = 0; i < clean.masters[k].streams.size(); ++i) {
        EXPECT_EQ(degraded.masters[k].streams[i].response, clean.masters[k].streams[i].response);
      }
    }
  }
}

// Faults only ever weaken the guarantee: every degraded per-stream bound
// dominates its clean counterpart, and a degraded accept implies more than
// the clean accept — never less.
TEST(FaultBounds, DegradedBoundsDominateCleanBounds) {
  const Network net = ring(3, 8'000);
  FaultModel f;
  f.token_loss_prob = 0.05;
  f.token_recovery = 2'000;
  f.corruption_prob = 0.1;
  f.max_retransmissions = 1;
  f.churn_prob = 0.02;
  for (const ApPolicy policy : {ApPolicy::Fcfs, ApPolicy::Dm, ApPolicy::Edf}) {
    const NetworkAnalysis clean = analyze_network(net, policy);
    const NetworkAnalysis degraded = analyze_degraded(net, f, policy);
    EXPECT_LE(degraded.schedulable, clean.schedulable);
    for (std::size_t k = 0; k < clean.masters.size(); ++k) {
      for (std::size_t i = 0; i < clean.masters[k].streams.size(); ++i) {
        const Ticks cb = clean.masters[k].streams[i].response;
        const Ticks db = degraded.masters[k].streams[i].response;
        if (cb == kNoBound) continue;
        EXPECT_TRUE(db == kNoBound || db >= cb)
            << "policy " << static_cast<int>(policy) << " stream " << k << '/' << i;
      }
    }
  }
}

TEST(FaultBounds, DeadTimeSaturatesInsteadOfWrapping) {
  const Network net = ring(4, 6'000);
  FaultModel f;
  f.token_loss_prob = 0.5;
  f.token_recovery = kNoBound / 2;
  const Ticks dead = degraded_dead_time(net, f);
  EXPECT_EQ(dead, kNoBound);  // 4 · (kNoBound/2) saturates
  const TimingMemo memo = degraded_timing(net, f);
  EXPECT_EQ(memo.tcycle, kNoBound);
  EXPECT_GE(memo.tdel, 0);
  for (const Ticks t : memo.per_master) EXPECT_EQ(t, kNoBound);
}

}  // namespace
}  // namespace profisched::profibus
