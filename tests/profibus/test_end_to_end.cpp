// Unit tests for the end-to-end delay composition E = g + Q + C + d (§4.2).
#include "profibus/end_to_end.hpp"

#include <gtest/gtest.h>

#include "profibus/dm_analysis.hpp"

namespace profisched::profibus {
namespace {

Network demo_net() {
  Network net;
  net.ttr = 2'000;
  Master m;
  m.high_streams = {
      MessageStream{.Ch = 300, .D = 20'000, .T = 100'000, .J = 0, .name = "a"},
      MessageStream{.Ch = 300, .D = 50'000, .T = 100'000, .J = 0, .name = "b"},
  };
  net.masters = {m};
  return net;
}

TEST(EndToEndBound, AddsHostDelaysAroundNetworkResponse) {
  StreamResponse r;
  r.response = 4'600;
  r.Q = 2'300;
  const HostDelays host{.generation = 500, .delivery = 200};
  EXPECT_EQ(end_to_end_bound(host, r), 500 + 4'600 + 200);
}

TEST(EndToEndBound, PropagatesUnbounded) {
  StreamResponse r;  // default: kNoBound
  EXPECT_EQ(end_to_end_bound(HostDelays{100, 100}, r), kNoBound);
}

TEST(EndToEndBound, ZeroHostDelaysReduceToNetworkBound) {
  StreamResponse r;
  r.response = 4'600;
  EXPECT_EQ(end_to_end_bound(HostDelays{}, r), 4'600);
}

TEST(EndToEndSchedulable, AcceptsWhenSlackCoversHostDelays) {
  const Network net = demo_net();
  const NetworkAnalysis a = analyze_dm(net);
  ASSERT_TRUE(a.schedulable);
  const std::vector<std::vector<HostDelays>> host{{{500, 200}, {500, 200}}};
  EXPECT_TRUE(end_to_end_schedulable(net, a, host));
}

TEST(EndToEndSchedulable, RejectsWhenHostDelaysEatTheSlack) {
  const Network net = demo_net();
  const NetworkAnalysis a = analyze_dm(net);
  const Ticks r0 = a.masters[0].streams[0].response;
  const Ticks slack = net.masters[0].high_streams[0].D - r0;
  const std::vector<std::vector<HostDelays>> host{{{slack, 1}, {0, 0}}};  // 1 tick over
  EXPECT_FALSE(end_to_end_schedulable(net, a, host));
}

TEST(EndToEndSchedulable, BoundaryExact) {
  const Network net = demo_net();
  const NetworkAnalysis a = analyze_dm(net);
  const Ticks r0 = a.masters[0].streams[0].response;
  const Ticks slack = net.masters[0].high_streams[0].D - r0;
  const std::vector<std::vector<HostDelays>> host{{{slack, 0}, {0, 0}}};
  EXPECT_TRUE(end_to_end_schedulable(net, a, host));
}

TEST(EndToEndSchedulable, ThrowsOnShapeMismatch) {
  const Network net = demo_net();
  const NetworkAnalysis a = analyze_dm(net);
  const std::vector<std::vector<HostDelays>> wrong_masters{};
  EXPECT_THROW((void)end_to_end_schedulable(net, a, wrong_masters), std::invalid_argument);
  const std::vector<std::vector<HostDelays>> wrong_streams{{{0, 0}}};
  EXPECT_THROW((void)end_to_end_schedulable(net, a, wrong_streams), std::invalid_argument);
}

}  // namespace
}  // namespace profisched::profibus
