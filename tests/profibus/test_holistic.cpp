// Unit tests for the holistic multi-master transaction analysis.
#include "profibus/holistic.hpp"

#include <gtest/gtest.h>

namespace profisched::profibus {
namespace {

MessageStream s(Ticks d, Ticks t) {
  return MessageStream{.Ch = 300, .D = d, .T = t, .J = 0, .name = ""};
}

/// Two masters, one stream each, generous T_TR.
Network two_masters() {
  Network net;
  net.ttr = 5'000;
  Master a, b;
  a.name = "a";
  a.high_streams = {s(40'000, 100'000)};
  b.name = "b";
  b.high_streams = {s(40'000, 100'000)};
  net.masters = {a, b};
  return net;
}

Transaction chain(Ticks period, Ticks deadline) {
  Transaction tr;
  tr.name = "sense-act";
  tr.period = period;
  tr.deadline = deadline;
  tr.stages = {
      TransactionStage{.master = 0, .stream = 0, .task_c = 200},
      TransactionStage{.master = 1, .stream = 0, .task_c = 300},
  };
  return tr;
}

TEST(Holistic, SimpleChainConvergesAndDecomposes) {
  const Network net = two_masters();
  const HolisticResult r = analyze_holistic(net, {chain(100'000, 60'000)});
  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(r.schedulable);
  ASSERT_EQ(r.response.size(), 1u);
  // End-to-end = stage responses chained; each stage >= task C + one T_cycle.
  const Ticks tcycle = t_cycle(net);
  EXPECT_GE(r.response[0], 200 + tcycle + 300 + tcycle);
  EXPECT_LE(r.response[0], 60'000);
  // Stage responses are cumulative and non-decreasing.
  ASSERT_EQ(r.stage_response[0].size(), 2u);
  EXPECT_LT(r.stage_response[0][0], r.stage_response[0][1]);
  EXPECT_EQ(r.response[0], r.stage_response[0][1]);
}

TEST(Holistic, TightDeadlineReportedUnschedulable) {
  const Network net = two_masters();
  const HolisticResult r = analyze_holistic(net, {chain(100'000, 2'000)});
  ASSERT_TRUE(r.converged);  // the fixed point exists; the deadline just fails
  EXPECT_FALSE(r.schedulable);
  EXPECT_GT(r.response[0], 2'000);
}

TEST(Holistic, JitterCouplesConcurrentTransactions) {
  // Two transactions sharing master 0: the second's stream jitter (inherited
  // from its sender task, delayed by the first's task) inflates the first's
  // message interference — the holistic loop must settle above the isolated
  // bounds.
  Network net = two_masters();
  net.masters[0].high_streams.push_back(s(40'000, 100'000));

  Transaction t1 = chain(100'000, 80'000);
  Transaction t2;
  t2.name = "monitor";
  t2.period = 50'000;
  t2.deadline = 45'000;
  t2.stages = {TransactionStage{.master = 0, .stream = 1, .task_c = 400}};

  const HolisticResult together = analyze_holistic(net, {t1, t2});
  ASSERT_TRUE(together.converged);

  const HolisticResult alone = analyze_holistic(net, {t1});
  ASSERT_TRUE(alone.converged);
  EXPECT_GE(together.response[0], alone.response[0]);
}

TEST(Holistic, StagePeriodsInheritTransactionPeriod) {
  Network net = two_masters();
  net.masters[0].high_streams[0].T = 7;  // will be overridden
  const HolisticResult r = analyze_holistic(net, {chain(100'000, 60'000)});
  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(r.schedulable);
}

TEST(Holistic, SaturatedHostDiverges) {
  Network net = two_masters();
  Transaction tr = chain(1'000, 900);  // period 1000 but task_c 200+… C=200 on
  // master 0 every 1000 plus message service 5'300 >> period: hopeless.
  const HolisticResult r = analyze_holistic(net, {tr});
  EXPECT_FALSE(r.schedulable);
}

TEST(Holistic, ValidatesStageReferences) {
  const Network net = two_masters();
  Transaction bad = chain(100'000, 60'000);
  bad.stages[1].stream = 9;
  EXPECT_THROW((void)analyze_holistic(net, {bad}), std::invalid_argument);

  Transaction empty;
  empty.period = 100;
  empty.deadline = 100;
  EXPECT_THROW((void)analyze_holistic(net, {empty}), std::invalid_argument);
}

TEST(Holistic, EdfPolicyOption) {
  const Network net = two_masters();
  HolisticOptions opt;
  opt.policy = ApPolicy::Edf;
  const HolisticResult r = analyze_holistic(net, {chain(100'000, 60'000)}, opt);
  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(r.schedulable);
}

TEST(Holistic, MoreStagesMoreLatency) {
  Network net = two_masters();
  net.masters[0].high_streams.push_back(s(40'000, 100'000));
  Transaction three = chain(100'000, 80'000);
  three.stages.push_back(TransactionStage{.master = 0, .stream = 1, .task_c = 200});
  const HolisticResult two_r = analyze_holistic(net, {chain(100'000, 80'000)});
  const HolisticResult three_r = analyze_holistic(net, {three});
  ASSERT_TRUE(two_r.converged && three_r.converged);
  EXPECT_GT(three_r.response[0], two_r.response[0]);
}

}  // namespace
}  // namespace profisched::profibus
