// Unit tests for release-jitter derivation (§4.1, task models A and B).
#include "apptask/release_jitter.hpp"

#include <gtest/gtest.h>

namespace profisched::apptask {
namespace {

std::vector<SenderTask> two_senders() {
  return {
      SenderTask{.C_pre = 2, .C_post = 3, .D = 20, .T = 20},
      SenderTask{.C_pre = 4, .C_post = 1, .D = 50, .T = 50},
  };
}

TEST(ReleaseJitter, ModelBHandComputedUnderDm) {
  // Model B ignores C_post. DM order: sender0 (D=20) above sender1.
  //   R_pre0 = 2 → J0 = 0.
  //   R_pre1 = 4 + ⌈w/20⌉·2 → w = 6 → J1 = 6 − 4 = 2.
  const JitterResult r =
      derive_release_jitter(two_senders(), TaskModel::SeparateTasks, Policy::DeadlineMonotonic);
  ASSERT_TRUE(r.all_bounded);
  EXPECT_EQ(r.jitter[0], 0);
  EXPECT_EQ(r.jitter[1], 2);
  EXPECT_EQ(r.generation[0], 2);
  EXPECT_EQ(r.generation[1], 6);
}

TEST(ReleaseJitter, ModelAAddsPostProcessingInterference) {
  // Model A includes each sender's C_post as competing work, so jitters can
  // only grow relative to model B.
  const JitterResult a =
      derive_release_jitter(two_senders(), TaskModel::AutoSuspend, Policy::DeadlineMonotonic);
  const JitterResult b =
      derive_release_jitter(two_senders(), TaskModel::SeparateTasks, Policy::DeadlineMonotonic);
  ASSERT_TRUE(a.all_bounded && b.all_bounded);
  for (std::size_t i = 0; i < 2; ++i) EXPECT_GE(a.jitter[i], b.jitter[i]) << i;
}

TEST(ReleaseJitter, EdfPolicySupported) {
  const JitterResult r =
      derive_release_jitter(two_senders(), TaskModel::SeparateTasks, Policy::Edf);
  ASSERT_TRUE(r.all_bounded);
  EXPECT_GE(r.jitter[1], 0);
  EXPECT_EQ(r.jitter[0] + 2, r.generation[0]);  // J = R − C_pre always
}

TEST(ReleaseJitter, HighestPriorityTaskHasZeroJitter) {
  const JitterResult r =
      derive_release_jitter(two_senders(), TaskModel::SeparateTasks, Policy::DeadlineMonotonic);
  EXPECT_EQ(r.jitter[0], 0);  // nothing above it, runs immediately
}

TEST(ReleaseJitter, RejectsNonPreemptivePolicies) {
  EXPECT_THROW((void)derive_release_jitter(two_senders(), TaskModel::SeparateTasks,
                                           Policy::NpDeadlineMonotonic),
               std::invalid_argument);
  EXPECT_THROW(
      (void)derive_release_jitter(two_senders(), TaskModel::SeparateTasks, Policy::RateMonotonic),
      std::invalid_argument);
}

TEST(ReleaseJitter, RejectsBadSenderFields) {
  std::vector<SenderTask> bad{SenderTask{.C_pre = 0, .C_post = 0, .D = 10, .T = 10}};
  EXPECT_THROW((void)derive_release_jitter(bad, TaskModel::SeparateTasks, Policy::Edf),
               std::invalid_argument);
}

TEST(ReleaseJitter, OverloadedProcessorReportsUnbounded) {
  const std::vector<SenderTask> senders{
      SenderTask{.C_pre = 10, .C_post = 0, .D = 10, .T = 10},
      SenderTask{.C_pre = 5, .C_post = 0, .D = 20, .T = 20},
  };  // U = 1.25 under model B
  const JitterResult r =
      derive_release_jitter(senders, TaskModel::SeparateTasks, Policy::DeadlineMonotonic);
  EXPECT_FALSE(r.all_bounded);
  EXPECT_EQ(r.jitter[1], profisched::kNoBound);
}

TEST(ReleaseJitter, MoreInterferenceMeansMoreJitter) {
  std::vector<SenderTask> senders = two_senders();
  const Ticks base =
      derive_release_jitter(senders, TaskModel::SeparateTasks, Policy::DeadlineMonotonic)
          .jitter[1];
  senders[0].C_pre = 6;  // heavier high-priority sender
  const Ticks heavier =
      derive_release_jitter(senders, TaskModel::SeparateTasks, Policy::DeadlineMonotonic)
          .jitter[1];
  EXPECT_GT(heavier, base);
}

}  // namespace
}  // namespace profisched::apptask
