// Unit tests for the uniprocessor scheduler simulator — the validation
// substrate for every §2 analysis.
#include "apptask/processor_sim.hpp"

#include <gtest/gtest.h>

namespace profisched::apptask {
namespace {

using profisched::Task;

TaskSet classic() {
  return TaskSet{{
      Task{.C = 3, .D = 7, .T = 7, .J = 0, .name = ""},
      Task{.C = 3, .D = 12, .T = 12, .J = 0, .name = ""},
      Task{.C = 5, .D = 20, .T = 20, .J = 0, .name = ""},
  }};
}

TEST(ProcSim, PreemptiveFpMatchesClassicResponseTimes) {
  // Synchronous release is the fixed-priority critical instant, so one
  // hyperperiod of simulation must reach exactly R = {3, 6, 20}.
  const TaskSet ts = classic();
  const ProcSimResult r =
      simulate_processor(ts, ProcPolicy::FpPreemptive, ts.hyperperiod() * 2);
  EXPECT_EQ(r.max_response[0], 3);
  EXPECT_EQ(r.max_response[1], 6);
  EXPECT_EQ(r.max_response[2], 20);
  EXPECT_EQ(r.deadline_misses[0] + r.deadline_misses[1] + r.deadline_misses[2], 0u);
}

TEST(ProcSim, PreemptionActuallyHappens) {
  // Low-priority job started at 0 is preempted by the high-priority release
  // at 2: its response = 2 + 2 + 3 … wait — synchronous release: hp first.
  // Use phases to start lp alone: lp at 0 (C=5), hp at 2 (C=2).
  // Preemptive: lp runs [0,2), hp [2,4), lp [4,7). R_lp = 7, R_hp = 2.
  const TaskSet ts{{
      Task{.C = 2, .D = 10, .T = 100, .J = 0, .name = "hp"},
      Task{.C = 5, .D = 50, .T = 100, .J = 0, .name = "lp"},
  }};
  const std::vector<Ticks> phases{2, 0};
  const ProcSimResult r = simulate_processor(ts, ProcPolicy::FpPreemptive, 100, phases);
  EXPECT_EQ(r.max_response[0], 2);
  EXPECT_EQ(r.max_response[1], 7);
}

TEST(ProcSim, NonPreemptiveBlocksInstead) {
  // Same phasing, non-preemptive: lp runs [0,5), hp waits → R_hp = 5−2+2 = 5.
  const TaskSet ts{{
      Task{.C = 2, .D = 10, .T = 100, .J = 0, .name = "hp"},
      Task{.C = 5, .D = 50, .T = 100, .J = 0, .name = "lp"},
  }};
  const std::vector<Ticks> phases{2, 0};
  const ProcSimResult r = simulate_processor(ts, ProcPolicy::FpNonPreemptive, 100, phases);
  EXPECT_EQ(r.max_response[0], 5);
  EXPECT_EQ(r.max_response[1], 5);
}

TEST(ProcSim, EdfPicksEarliestAbsoluteDeadline) {
  // τ0: C=2 D=20; τ1: C=2 D=5. Synchronous: τ1 (deadline 5) first even
  // though τ0 has lower index.
  const TaskSet ts{{
      Task{.C = 2, .D = 20, .T = 100, .J = 0, .name = ""},
      Task{.C = 2, .D = 5, .T = 100, .J = 0, .name = ""},
  }};
  const ProcSimResult r = simulate_processor(ts, ProcPolicy::EdfPreemptive, 100);
  EXPECT_EQ(r.max_response[1], 2);
  EXPECT_EQ(r.max_response[0], 4);
}

TEST(ProcSim, EdfPreemptsOnEarlierDeadlineArrival) {
  // Long job (D=50) starts at 0; tight job (D=5) arrives at 1 and preempts.
  const TaskSet ts{{
      Task{.C = 10, .D = 50, .T = 100, .J = 0, .name = "long"},
      Task{.C = 2, .D = 5, .T = 100, .J = 0, .name = "tight"},
  }};
  const std::vector<Ticks> phases{0, 1};
  const ProcSimResult r = simulate_processor(ts, ProcPolicy::EdfPreemptive, 100, phases);
  EXPECT_EQ(r.max_response[1], 2);   // [1,3)
  EXPECT_EQ(r.max_response[0], 12);  // [0,1) + [3,12)… 1+2+9 → completes at 12
}

TEST(ProcSim, NonPreemptiveEdfSuffersBlocking) {
  const TaskSet ts{{
      Task{.C = 10, .D = 50, .T = 100, .J = 0, .name = "long"},
      Task{.C = 2, .D = 5, .T = 100, .J = 0, .name = "tight"},
  }};
  const std::vector<Ticks> phases{0, 1};
  const ProcSimResult r = simulate_processor(ts, ProcPolicy::EdfNonPreemptive, 100, phases);
  EXPECT_EQ(r.max_response[1], 11);  // waits out the long job: completes at 12
  EXPECT_EQ(r.deadline_misses[1], 1u);
}

TEST(ProcSim, CountsJobsOverHorizon) {
  const TaskSet ts{{Task{.C = 1, .D = 10, .T = 10, .J = 0, .name = ""}}};
  const ProcSimResult r = simulate_processor(ts, ProcPolicy::FpPreemptive, 100);
  EXPECT_EQ(r.jobs_completed[0], 10u);  // releases at 0,10,…,90
}

TEST(ProcSim, CustomPriorityOrderRespected) {
  // Give the *longer-deadline* task top priority: it should finish first.
  const TaskSet ts{{
      Task{.C = 2, .D = 5, .T = 100, .J = 0, .name = ""},
      Task{.C = 2, .D = 50, .T = 100, .J = 0, .name = ""},
  }};
  const PriorityOrder inverted{1, 0};
  const ProcSimResult r =
      simulate_processor(ts, ProcPolicy::FpPreemptive, 100, {}, &inverted);
  EXPECT_EQ(r.max_response[1], 2);
  EXPECT_EQ(r.max_response[0], 4);
  EXPECT_EQ(r.deadline_misses[0], 0u);  // 4 <= 5 still
}

TEST(ProcSim, DeadlineMissesDetected) {
  const TaskSet ts{{
      Task{.C = 4, .D = 4, .T = 8, .J = 0, .name = ""},
      Task{.C = 4, .D = 5, .T = 8, .J = 0, .name = ""},
  }};  // U = 1, D < T: second task must miss under FP
  const ProcSimResult r = simulate_processor(ts, ProcPolicy::FpPreemptive, 80);
  EXPECT_GT(r.deadline_misses[1], 0u);
}

TEST(ProcSim, PhasesValidateSize) {
  const TaskSet ts = classic();
  const std::vector<Ticks> wrong{0, 0};
  EXPECT_THROW((void)simulate_processor(ts, ProcPolicy::FpPreemptive, 100, wrong),
               std::invalid_argument);
}

TEST(ProcSim, IdleGapsAreSkipped) {
  const TaskSet ts{{Task{.C = 1, .D = 1'000'000, .T = 1'000'000, .J = 0, .name = ""}}};
  const ProcSimResult r = simulate_processor(ts, ProcPolicy::EdfPreemptive, 5'000'000);
  EXPECT_EQ(r.jobs_completed[0], 5u);  // fast despite the huge horizon
}

}  // namespace
}  // namespace profisched::apptask
