// ResultCache contract: hit-after-miss determinism (cached results
// bit-identical to recomputed ones, across all three sweep modes),
// version-mismatch invalidation, corrupted-entry rejection, incremental
// policy-set re-sweeps, and concurrent writers sharing one directory (this
// suite runs under the CI TSan job via the dist_ test-name filter).
#include "dist/result_cache.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "engine/aggregate.hpp"
#include "engine/sim_aggregate.hpp"

namespace profisched::dist {
namespace {

namespace fs = std::filesystem;

/// Fresh cache directory per test, removed on destruction.
class CacheDir {
 public:
  explicit CacheDir(const char* name)
      : path_((fs::temp_directory_path() / "profisched_cache_test" / name).string()) {
    fs::remove_all(path_);
  }
  ~CacheDir() { fs::remove_all(fs::path(path_).parent_path()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

engine::SweepSpec small_sweep() {
  engine::SweepSpec spec;
  spec.base.n_masters = 2;
  spec.base.streams_per_master = 3;
  spec.base.ttr = 3'000;
  spec.points = {engine::SweepPoint{0.3, 0.5, 1.0}, engine::SweepPoint{0.8, 0.5, 1.0}};
  spec.scenarios_per_point = 5;
  spec.policies = {engine::Policy::Fcfs, engine::Policy::Dm};
  spec.seed = 7;
  return spec;
}

void expect_same_outcomes(const engine::SweepResult& a, const engine::SweepResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].id, b.outcomes[i].id);
    EXPECT_EQ(a.outcomes[i].seed, b.outcomes[i].seed);
    EXPECT_EQ(a.outcomes[i].tcycle, b.outcomes[i].tcycle);
    EXPECT_EQ(a.outcomes[i].schedulable, b.outcomes[i].schedulable);
    EXPECT_EQ(a.outcomes[i].worst_slack, b.outcomes[i].worst_slack);
  }
}

TEST(ResultCache, PayloadRoundTrip) {
  const CacheDir dir("roundtrip");
  ResultCache cache(dir.path());
  const engine::CacheKey key{0x1234'5678'9abc'def0ULL, 42};
  std::string payload;
  EXPECT_FALSE(cache.load(key, payload));
  cache.store(key, "a1 100 1 7\nwith embedded newline");
  ASSERT_TRUE(cache.load(key, payload));
  EXPECT_EQ(payload, "a1 100 1 7\nwith embedded newline");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.stores(), 1u);
}

TEST(ResultCache, HitAfterMissIsBitIdentical) {
  const CacheDir dir("deterministic");
  const engine::SweepSpec spec = small_sweep();
  engine::SweepRunner runner(2);
  const engine::SweepResult plain = runner.run(spec);

  ResultCache cache(dir.path());
  const engine::SweepResult cold = runner.run(spec, &cache);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, spec.total_scenarios() * spec.policies.size());

  const engine::SweepResult warm = runner.run(spec, &cache);
  EXPECT_EQ(warm.cache_hits, spec.total_scenarios() * spec.policies.size());
  EXPECT_EQ(warm.cache_misses, 0u);

  expect_same_outcomes(plain, cold);
  expect_same_outcomes(plain, warm);
  EXPECT_EQ(engine::aggregate(spec, warm).to_csv(), engine::aggregate(spec, plain).to_csv());
}

TEST(ResultCache, SimAndCombinedModesHitWarm) {
  const CacheDir dir("sim");
  engine::SimSweepSpec spec;
  spec.sweep = small_sweep();
  spec.replications = 2;
  engine::SweepRunner runner(2);
  ResultCache cache(dir.path());

  const engine::SimSweepResult plain = runner.run_sim(spec);
  const engine::SimSweepResult cold = runner.run_sim(spec, &cache);
  const engine::SimSweepResult warm = runner.run_sim(spec, &cache);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_EQ(engine::aggregate_sim(spec, warm).to_csv(),
            engine::aggregate_sim(spec, plain).to_csv());

  // Combined records are keyed separately (they carry the joined columns):
  // the sim-mode entries above must not leak into combined mode.
  const engine::CombinedResult cplain = runner.run_combined(spec);
  const engine::CombinedResult ccold = runner.run_combined(spec, &cache);
  EXPECT_EQ(ccold.cache_hits, 0u);
  const engine::CombinedResult cwarm = runner.run_combined(spec, &cache);
  EXPECT_EQ(cwarm.cache_misses, 0u);
  EXPECT_EQ(engine::consistency_table(spec, cwarm).to_csv(),
            engine::consistency_table(spec, cplain).to_csv());
}

TEST(ResultCache, PolicySetChangeRecomputesOnlyMisses) {
  const CacheDir dir("policies");
  engine::SweepSpec spec = small_sweep();
  spec.policies = {engine::Policy::Fcfs};
  engine::SweepRunner runner(2);
  ResultCache cache(dir.path());
  (void)runner.run(spec, &cache);

  // Adding DM and EDF re-sweeps the same scenarios: FCFS entries hit, only
  // the new policies compute (ROADMAP's "incremental re-sweep" item).
  spec.policies = {engine::Policy::Fcfs, engine::Policy::Dm, engine::Policy::Edf};
  const engine::SweepResult extended = runner.run(spec, &cache);
  EXPECT_EQ(extended.cache_hits, spec.total_scenarios());
  EXPECT_EQ(extended.cache_misses, 2 * spec.total_scenarios());

  engine::SweepRunner reference(2);
  expect_same_outcomes(reference.run(spec), extended);
}

TEST(ResultCache, AddedUPointsReuseExistingEntries) {
  const CacheDir dir("upoints");
  engine::SweepSpec spec = small_sweep();
  engine::SweepRunner runner(2);
  ResultCache cache(dir.path());
  (void)runner.run(spec, &cache);

  // Appending a u-point keeps the existing points' ids — and the cache is
  // content-addressed anyway, so every previously-swept scenario hits.
  engine::SweepSpec wider = spec;
  wider.points.push_back(engine::SweepPoint{1.1, 0.5, 1.0});
  const engine::SweepResult r = runner.run(wider, &cache);
  EXPECT_EQ(r.cache_hits, spec.total_scenarios() * spec.policies.size());
  EXPECT_EQ(r.cache_misses, wider.scenarios_per_point * wider.policies.size());
}

TEST(ResultCache, VersionMismatchInvalidates) {
  const CacheDir dir("version");
  ResultCache cache(dir.path());
  const engine::CacheKey key{1, 2};
  cache.store(key, "payload");
  const std::string entry = cache.entry_path(key);

  // Rewrite the entry as a future format version: load must reject it (and
  // a subsequent store/load cycle must recover the slot).
  {
    std::ofstream os(entry, std::ios::binary | std::ios::trunc);
    os << "profisched-cache v999\nkey " << ResultCache::entry_name(key) << "\nlen 7\npayload";
  }
  std::string payload;
  EXPECT_FALSE(cache.load(key, payload));
  cache.store(key, "payload");
  EXPECT_TRUE(cache.load(key, payload));
  EXPECT_EQ(payload, "payload");
}

TEST(ResultCache, CorruptedEntriesAreRejected) {
  const CacheDir dir("corrupt");
  ResultCache cache(dir.path());
  const engine::CacheKey key{3, 4};
  cache.store(key, "intact payload bytes");
  const std::string entry = cache.entry_path(key);
  std::string payload;

  const auto write_entry = [&](const std::string& bytes) {
    std::ofstream os(entry, std::ios::binary | std::ios::trunc);
    os << bytes;
  };
  // Truncated payload, garbage, empty file, and a key echo that does not
  // match the filename (a renamed/colliding entry) must all read as misses.
  write_entry("profisched-cache v1\nkey " + ResultCache::entry_name(key) + "\nlen 20\nshort");
  EXPECT_FALSE(cache.load(key, payload));
  write_entry("complete garbage");
  EXPECT_FALSE(cache.load(key, payload));
  write_entry("");
  EXPECT_FALSE(cache.load(key, payload));
  write_entry("profisched-cache v1\nkey 00000000000000000000000000000000\nlen 3\nabc");
  EXPECT_FALSE(cache.load(key, payload));

  // A corrupted entry in a live sweep is recomputed and healed, not trusted.
  const engine::SweepSpec spec = small_sweep();
  engine::SweepRunner runner(2);
  ResultCache swept(dir.path());
  (void)runner.run(spec, &swept);
  for (const auto& e : fs::recursive_directory_iterator(dir.path())) {
    if (!e.is_regular_file()) continue;  // skip the fan-out subdirectories
    std::ofstream os(e.path(), std::ios::binary | std::ios::trunc);
    os << "junk";
  }
  const engine::SweepResult healed = runner.run(spec, &swept);
  EXPECT_EQ(healed.cache_hits, 0u);  // every entry was junk
  const engine::SweepResult warm = runner.run(spec, &swept);
  EXPECT_EQ(warm.cache_misses, 0u);  // ...and every entry got rewritten
  engine::SweepRunner reference(2);
  expect_same_outcomes(reference.run(spec), warm);
}

TEST(ResultCache, EqualContentDifferentSeedScenariosDoNotShareSimRecords) {
  // Adversarial construction: one stream per master with every generator
  // knob pinned (fixed frame sizes, beta_lo == beta_hi, no LP traffic,
  // UUniFast with n = 1 is deterministic) makes every scenario of a point
  // byte-identical in CONTENT while keeping distinct RNG seeds. Simulation
  // outcomes still differ across them (replication draws derive from the
  // seed), so a cache that keyed sim records by content alone would serve
  // scenario 0's record to every sibling and silently corrupt the sweep.
  const CacheDir dir("seeded");
  engine::SimSweepSpec spec;
  spec.sweep.base.n_masters = 1;
  spec.sweep.base.streams_per_master = 1;
  spec.sweep.base.request_chars_min = spec.sweep.base.request_chars_max = 20;
  spec.sweep.base.response_chars_min = spec.sweep.base.response_chars_max = 20;
  spec.sweep.base.low_priority_traffic = false;
  spec.sweep.base.ttr = 3'000;
  spec.sweep.points = {engine::SweepPoint{0.9, 1.0, 1.0}};
  spec.sweep.scenarios_per_point = 4;
  spec.sweep.policies = {engine::Policy::Fcfs};
  spec.sweep.seed = 5;
  spec.replications = 3;  // reps >= 1 draw random phases from the seed
  spec.sim.cycle_model.kind = sim::CycleModel::Kind::UniformFraction;

  const engine::Scenario s0 = engine::SweepRunner::make_scenario(spec.sweep, 0);
  const engine::Scenario s1 = engine::SweepRunner::make_scenario(spec.sweep, 1);
  ASSERT_EQ(engine::canonical_hash(s0), engine::canonical_hash(s1));  // setup is adversarial
  ASSERT_NE(s0.seed, s1.seed);

  engine::SweepRunner runner(2);
  const engine::SimSweepResult plain = runner.run_sim(spec);
  // The distinct seeds genuinely matter: sibling scenarios observe different
  // maxima (uniform cycle draws + random phases).
  EXPECT_NE(plain.outcomes[0].observed_max, plain.outcomes[1].observed_max);

  ResultCache cache(dir.path());
  (void)runner.run_sim(spec, &cache);
  const engine::SimSweepResult warm = runner.run_sim(spec, &cache);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(engine::aggregate_sim(spec, warm).to_csv(),
            engine::aggregate_sim(spec, plain).to_csv());
  for (std::size_t i = 0; i < plain.outcomes.size(); ++i) {
    EXPECT_EQ(warm.outcomes[i].observed_max, plain.outcomes[i].observed_max) << i;
    EXPECT_EQ(warm.outcomes[i].misses, plain.outcomes[i].misses) << i;
  }
}

TEST(ResultCache, OpenSweepsOldOrphanTmpFilesButSparesFreshOnes) {
  const CacheDir dir("orphans");
  const engine::CacheKey key{0xabcd, 0xef01};
  fs::path real_entry;
  {
    // Populate one real entry, then plant writer scratch files around it as
    // if two processes died mid-store: one long ago, one a moment ago.
    ResultCache seeder(dir.path());
    seeder.store(key, "kept payload");
    real_entry = seeder.entry_path(key);
  }
  const fs::path old_orphan = real_entry.string() + ".tmp.4242.77.0";
  const fs::path fresh_orphan = real_entry.string() + ".tmp.4243.88.1";
  std::ofstream(old_orphan) << "half-written";
  std::ofstream(fresh_orphan) << "still being written";
  fs::last_write_time(old_orphan, fs::file_time_type::clock::now() - std::chrono::hours(2));

  ResultCache cache(dir.path(), /*orphan_min_age=*/std::chrono::minutes(5));
  EXPECT_EQ(cache.orphans_reaped(), 1u);
  EXPECT_FALSE(fs::exists(old_orphan));      // the dead writer's leak is gone
  EXPECT_TRUE(fs::exists(fresh_orphan));     // a live writer's file survives
  std::string payload;
  EXPECT_TRUE(cache.load(key, payload));     // real entries are never touched
  EXPECT_EQ(payload, "kept payload");
}

TEST(ResultCache, OrphanSweepIgnoresNonTmpNamesAndEmptyDirs) {
  const CacheDir dir("orphans_safe");
  // Opening a brand-new (empty) directory sweeps nothing and must not throw.
  ResultCache first(dir.path(), std::chrono::seconds(0));
  EXPECT_EQ(first.orphans_reaped(), 0u);

  // With min_age 0 every tmp file qualifies immediately; entry files and
  // oddly-named bystanders still survive because only `*.tmp.*` is reaped.
  const engine::CacheKey key{7, 9};
  first.store(key, "payload");
  const fs::path bystander = fs::path(dir.path()) / "README";
  std::ofstream(bystander) << "not a scratch file";
  std::ofstream(first.entry_path(key) + ".tmp.1.2.3") << "orphan";

  ResultCache second(dir.path(), std::chrono::seconds(0));
  EXPECT_EQ(second.orphans_reaped(), 1u);
  EXPECT_TRUE(fs::exists(bystander));
  std::string payload;
  EXPECT_TRUE(second.load(key, payload));
  EXPECT_EQ(payload, "payload");
}

TEST(ResultCache, ConcurrentWritersSharingOneDirectory) {
  const CacheDir dir("concurrent");
  const engine::SweepSpec spec = small_sweep();
  engine::SweepRunner reference(2);
  const engine::SweepResult plain = reference.run(spec);

  // Two populators race on one cold directory — as two processes sharing a
  // cache would. Each uses its own multi-threaded runner, so stores collide
  // both within and across ResultCache instances.
  ResultCache a(dir.path()), b(dir.path());
  engine::SweepResult ra, rb;
  std::thread ta([&] { ra = engine::SweepRunner(2).run(spec, &a); });
  std::thread tb([&] { rb = engine::SweepRunner(2).run(spec, &b); });
  ta.join();
  tb.join();
  expect_same_outcomes(plain, ra);
  expect_same_outcomes(plain, rb);

  ResultCache warm_cache(dir.path());
  const engine::SweepResult warm = reference.run(spec, &warm_cache);
  EXPECT_EQ(warm.cache_misses, 0u);
  expect_same_outcomes(plain, warm);
}

}  // namespace
}  // namespace profisched::dist
