// ShardPlan properties: for any (total, count) the ranges tile [0, total)
// contiguously with sizes differing by at most one — the invariant the merge
// validator (and therefore the byte-identity of merged sweeps) rests on.
#include "dist/shard.hpp"

#include <gtest/gtest.h>

namespace profisched::dist {
namespace {

void expect_tiles(std::uint64_t total, std::uint64_t count) {
  const ShardPlan plan = ShardPlan::split(total, count);
  ASSERT_EQ(plan.ranges.size(), count);
  EXPECT_EQ(plan.total, total);
  std::uint64_t cursor = 0, min_size = total + 1, max_size = 0;
  for (const engine::IdRange& r : plan.ranges) {
    EXPECT_EQ(r.begin, cursor) << "gap/overlap at " << cursor;
    EXPECT_LE(r.begin, r.end);
    min_size = std::min(min_size, r.size());
    max_size = std::max(max_size, r.size());
    cursor = r.end;
  }
  EXPECT_EQ(cursor, total) << "ranges must cover the whole sweep";
  EXPECT_LE(max_size - min_size, 1u) << "load balance: sizes differ by at most 1";
}

TEST(ShardPlan, TilesTheIdSpaceForManyShapes) {
  for (const std::uint64_t total : {0ULL, 1ULL, 2ULL, 7ULL, 100ULL, 101ULL, 1000ULL}) {
    for (const std::uint64_t count : {1ULL, 2ULL, 3ULL, 5ULL, 7ULL, 16ULL}) {
      expect_tiles(total, count);
    }
  }
}

TEST(ShardPlan, UnevenSplitFrontloadsTheRemainder) {
  const ShardPlan plan = ShardPlan::split(10, 3);
  EXPECT_EQ(plan.ranges[0].size(), 4u);  // 10 = 4 + 3 + 3
  EXPECT_EQ(plan.ranges[1].size(), 3u);
  EXPECT_EQ(plan.ranges[2].size(), 3u);
}

TEST(ShardPlan, MoreShardsThanScenariosYieldsEmptyTails) {
  const ShardPlan plan = ShardPlan::split(2, 5);
  EXPECT_EQ(plan.ranges[0].size(), 1u);
  EXPECT_EQ(plan.ranges[1].size(), 1u);
  for (std::size_t k = 2; k < 5; ++k) EXPECT_EQ(plan.ranges[k].size(), 0u);
}

TEST(ShardPlan, RejectsZeroShards) {
  EXPECT_THROW((void)ShardPlan::split(10, 0), std::invalid_argument);
}

}  // namespace
}  // namespace profisched::dist
