// Argument validation of `profisched shard` and `profisched merge` — exactly
// what the CLI feeds to parse_shard_args/parse_merge_args, exercised as
// library calls (the dist mirror of tests/engine/test_sim_cli.cpp).
#include "dist/dist_cli.hpp"

#include <gtest/gtest.h>

namespace profisched::dist {
namespace {

ShardCli shard_ok(const std::vector<std::string>& args) {
  ShardCli cli;
  std::string error;
  EXPECT_TRUE(parse_shard_args(args, cli, error)) << error;
  EXPECT_TRUE(error.empty());
  return cli;
}

std::string shard_fail(const std::vector<std::string>& args) {
  ShardCli cli;
  std::string error;
  EXPECT_FALSE(parse_shard_args(args, cli, error));
  EXPECT_FALSE(error.empty());
  return error;
}

TEST(ShardCliParse, MinimalInvocationMatchesSweepDefaults) {
  const ShardCli cli = shard_ok({"--shard", "2/4", "--out", "shard.2"});
  EXPECT_EQ(cli.shard.mode, SweepMode::Analysis);
  EXPECT_EQ(cli.index, 1u);  // CLI k is 1-based, the plan is 0-based
  EXPECT_EQ(cli.count, 4u);
  EXPECT_EQ(cli.out_path, "shard.2");
  // The sweep spec must default exactly like `profisched sweep`/`simulate`,
  // or merged output could never be byte-identical to the single-process run.
  EXPECT_EQ(cli.shard.spec.sweep.base.n_masters, 1u);
  EXPECT_EQ(cli.shard.spec.sweep.base.streams_per_master, 5u);
  EXPECT_EQ(cli.shard.spec.sweep.base.ttr, 3'000);
  EXPECT_EQ(cli.shard.spec.sweep.scenarios_per_point, 100u);
  EXPECT_EQ(cli.shard.spec.sweep.points.size(), 9u);
  EXPECT_EQ(cli.shard.spec.sweep.policies.size(), 3u);
  EXPECT_EQ(cli.shard.spec.replications, 1u);
  EXPECT_TRUE(cli.cache_dir.empty());
}

TEST(ShardCliParse, ModeAndSweepFlagsFlowThrough) {
  const ShardCli cli =
      shard_ok({"--mode", "combined", "--shard", "1/2", "--out", "s", "--scenarios", "17",
                "--u", "0.2:0.8:4", "--reps", "3", "--threads", "5", "--cache", "cdir"});
  EXPECT_EQ(cli.shard.mode, SweepMode::Combined);
  EXPECT_EQ(cli.shard.spec.sweep.scenarios_per_point, 17u);
  EXPECT_EQ(cli.shard.spec.sweep.points.size(), 4u);
  EXPECT_EQ(cli.shard.spec.replications, 3u);
  EXPECT_EQ(cli.threads, 5u);
  EXPECT_EQ(cli.cache_dir, "cdir");
  EXPECT_EQ(cli.shard.total_scenarios(), 68u);
}

TEST(ShardCliParse, SweepModeAdmitsAnalysisOnlyPolicies) {
  // --mode after --policies must still relax the policy table (the shard
  // flags are peeled in a first pass, so order cannot matter).
  const ShardCli cli = shard_ok(
      {"--policies", "fcfs,opa,holistic", "--mode", "sweep", "--shard", "1/1", "--out", "s"});
  EXPECT_EQ(cli.shard.spec.sweep.policies.size(), 3u);
  EXPECT_EQ(cli.shard.spec.sweep.policies[1], engine::Policy::Opa);
}

TEST(ShardCliParse, MethodSelectsTcycleComputation) {
  const ShardCli cli = shard_ok({"--shard", "1/1", "--out", "s", "--method", "refined"});
  EXPECT_EQ(cli.shard.spec.sweep.engine.method, profibus::TcycleMethod::PerMasterRefined);
}

TEST(ShardCliParse, RejectsBadInvocations) {
  (void)shard_fail({"--out", "s"});                                   // missing --shard
  (void)shard_fail({"--shard", "1/2"});                               // missing --out
  (void)shard_fail({"--shard", "0/2", "--out", "s"});                 // k is 1-based
  (void)shard_fail({"--shard", "3/2", "--out", "s"});                 // k > K
  (void)shard_fail({"--shard", "12", "--out", "s"});                  // not k/K
  (void)shard_fail({"--shard", "1/2", "--out", "s", "--mode", "x"});  // bad mode
  (void)shard_fail({"--shard", "1/1", "--out", "s", "--nope"});       // unknown flag
  (void)shard_fail({"--shard", "1/1", "--out", "s", "--csv", "f"});   // artifacts only
  (void)shard_fail({"--shard", "1/1", "--out", "s", "--combined"});   // spelled --mode combined
  // Simulable-only policy table outside sweep mode.
  (void)shard_fail({"--mode", "simulate", "--policies", "opa", "--shard", "1/1", "--out", "s"});
}

TEST(ShardCliParse, OutputDestinationsAreValidatedUpFront) {
  EXPECT_NE(shard_fail({"--shard", "1/1", "--out", "/nonexistent_profisched/s.1"}).find("--out"),
            std::string::npos);
  EXPECT_NE(shard_fail({"--shard", "1/1", "--out", "s", "--cache", "/dev/null/c"}).find("--cache"),
            std::string::npos);
  EXPECT_NE(shard_fail({"--shard", "1/1", "--out", "s", "--metrics",
                        "/nonexistent_profisched/m.json"})
                .find("--metrics"),
            std::string::npos);
}

MergeCli merge_ok(const std::vector<std::string>& args) {
  MergeCli cli;
  std::string error;
  EXPECT_TRUE(parse_merge_args(args, cli, error)) << error;
  return cli;
}

TEST(MergeCliParse, CollectsInputsAndOutputs) {
  const MergeCli cli =
      merge_ok({"--csv", "out.csv", "shard.1", "--json", "out.json", "shard.2", "shard.3"});
  EXPECT_EQ(cli.csv_path, "out.csv");
  EXPECT_EQ(cli.json_path, "out.json");
  ASSERT_EQ(cli.inputs.size(), 3u);
  EXPECT_EQ(cli.inputs[0], "shard.1");
  EXPECT_EQ(cli.inputs[2], "shard.3");
}

TEST(MergeCliParse, RejectsBadInvocations) {
  MergeCli cli;
  std::string error;
  EXPECT_FALSE(parse_merge_args({}, cli, error));                    // no inputs
  EXPECT_FALSE(parse_merge_args({"--csv", "x"}, cli, error));        // still no inputs
  EXPECT_FALSE(parse_merge_args({"--csv"}, cli, error));             // dangling value
  EXPECT_FALSE(parse_merge_args({"--wat", "s.1"}, cli, error));      // unknown flag
  // Output destinations fail up front, before any shard artifact is read.
  EXPECT_FALSE(parse_merge_args({"--csv", "/nonexistent_profisched/o.csv", "s.1"}, cli, error));
  EXPECT_NE(error.find("--csv"), std::string::npos) << error;
  EXPECT_FALSE(parse_merge_args({"--json", "/nonexistent_profisched/o.json", "s.1"}, cli, error));
  EXPECT_NE(error.find("--json"), std::string::npos) << error;
}

}  // namespace
}  // namespace profisched::dist
