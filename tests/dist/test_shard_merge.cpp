// The distributed subsystem's headline guarantee: for K ∈ {1, 2, 5}, running
// a sweep as K shards (through the full artifact serialization round trip,
// exactly as separate processes would exchange them) and merging produces
// CSV/JSON output byte-identical to the single-process run — for all three
// modes. Plus the loud-failure side: overlapping, missing, or mixed-spec
// shard sets must be rejected, and artifact parsing must reject corruption.
#include "dist/shard.hpp"

#include <gtest/gtest.h>

#include "engine/aggregate.hpp"
#include "engine/sim_aggregate.hpp"

namespace profisched::dist {
namespace {

ShardSpec small_spec(SweepMode mode) {
  ShardSpec sh;
  sh.mode = mode;
  sh.spec.sweep.base.n_masters = 2;
  sh.spec.sweep.base.streams_per_master = 3;
  sh.spec.sweep.base.ttr = 3'000;
  sh.spec.sweep.points = {engine::SweepPoint{0.3, 0.5, 1.0}, engine::SweepPoint{0.7, 0.5, 1.0}};
  sh.spec.sweep.scenarios_per_point = 6;
  sh.spec.sweep.policies = {engine::Policy::Fcfs, engine::Policy::Dm, engine::Policy::Edf};
  sh.spec.sweep.seed = 99;
  sh.spec.replications = 2;
  return sh;
}

/// Run the spec as `count` shards, round-tripping every artifact through its
/// text form, and return the merged sweep.
MergedSweep run_sharded(const ShardSpec& spec, std::uint64_t count) {
  ShardRunner runner(2);
  std::vector<ShardArtifact> artifacts;
  for (std::uint64_t k = 0; k < count; ++k) {
    const ShardArtifact art = runner.run(spec, k, count);
    artifacts.push_back(ShardArtifact::from_text(art.to_text()));  // wire round trip
  }
  return merge_shards(artifacts);
}

TEST(ShardMerge, AnalysisModeMergesByteIdentical) {
  const ShardSpec spec = small_spec(SweepMode::Analysis);
  engine::SweepRunner single(2);
  const engine::SweepCurves reference =
      engine::aggregate(spec.spec.sweep, single.run(spec.spec.sweep));
  for (const std::uint64_t k : {1ULL, 2ULL, 5ULL}) {
    const MergedSweep merged = run_sharded(spec, k);
    const engine::SweepCurves curves = engine::aggregate(spec.spec.sweep, merged.analysis);
    EXPECT_EQ(curves.to_csv(), reference.to_csv()) << k << " shards";
    EXPECT_EQ(curves.to_json(), reference.to_json()) << k << " shards";
  }
}

TEST(ShardMerge, SimModeMergesByteIdentical) {
  const ShardSpec spec = small_spec(SweepMode::Sim);
  engine::SweepRunner single(2);
  const engine::SimCurves reference = engine::aggregate_sim(spec.spec, single.run_sim(spec.spec));
  for (const std::uint64_t k : {1ULL, 2ULL, 5ULL}) {
    const MergedSweep merged = run_sharded(spec, k);
    const engine::SimCurves curves = engine::aggregate_sim(spec.spec, merged.sim);
    EXPECT_EQ(curves.to_csv(), reference.to_csv()) << k << " shards";
    EXPECT_EQ(curves.to_json(), reference.to_json()) << k << " shards";
  }
}

TEST(ShardMerge, CombinedModeMergesByteIdentical) {
  const ShardSpec spec = small_spec(SweepMode::Combined);
  engine::SweepRunner single(2);
  const engine::ConsistencyTable reference =
      engine::consistency_table(spec.spec, single.run_combined(spec.spec));
  for (const std::uint64_t k : {1ULL, 2ULL, 5ULL}) {
    const MergedSweep merged = run_sharded(spec, k);
    const engine::ConsistencyTable table = engine::consistency_table(spec.spec, merged.combined);
    EXPECT_EQ(table.to_csv(), reference.to_csv()) << k << " shards";
    EXPECT_EQ(table.to_json(), reference.to_json()) << k << " shards";
  }
}

TEST(ShardMerge, ArtifactTextRoundTripsEveryField) {
  const ShardSpec spec = small_spec(SweepMode::Combined);
  ShardRunner runner(1);
  const ShardArtifact art = runner.run(spec, 1, 3);
  const ShardArtifact back = ShardArtifact::from_text(art.to_text());
  EXPECT_EQ(back.shard_index, 1u);
  EXPECT_EQ(back.shard_count, 3u);
  EXPECT_EQ(back.range.begin, art.range.begin);
  EXPECT_EQ(back.range.end, art.range.end);
  EXPECT_EQ(serialize_spec(back.spec), serialize_spec(art.spec));
  EXPECT_EQ(back.to_text(), art.to_text());  // emitting again reproduces the bytes
}

// The fault axis travels the wire: a faulted combined run round-trips its
// degraded verdicts through the artifact text, sharded merges stay
// byte-identical to the single-process run, and the `faults` spec line —
// emitted only when a knob is active — makes merge's spec byte-compare
// refuse mixed faulted/zero-fault shard sets automatically.
TEST(ShardMerge, FaultedCombinedShardsRoundTripAndMerge) {
  ShardSpec spec = small_spec(SweepMode::Combined);
  spec.spec.sim.faults.token_loss_prob = 0.03;
  spec.spec.sim.faults.token_recovery = 900;
  spec.spec.sim.faults.corruption_prob = 0.04;
  spec.spec.sim.faults.max_retransmissions = 2;
  spec.spec.sim.faults.churn_prob = 0.01;
  spec.spec.sim.faults.churn_offline = 6'000;
  spec.spec.sim.faults.burst_correlation = 0.25;

  // Spec serialization carries the knobs exactly; the zero-fault form omits
  // the line entirely (zero-fault byte-identity with pre-fault artifacts).
  const std::string with_faults = serialize_spec(spec);
  EXPECT_NE(with_faults.find("\nfaults 0.03 900 0.04 2 0.01 6000 0.25\n"), std::string::npos);
  ShardSpec clean = spec;
  clean.spec.sim.faults = profibus::FaultModel{};
  EXPECT_EQ(serialize_spec(clean).find("faults"), std::string::npos);
  // Artifact round trip preserves the spec knobs and degraded outcome columns.
  ShardRunner runner(2);
  const ShardArtifact art = runner.run(spec, 0, 2);
  ASSERT_FALSE(art.combined.empty());
  ASSERT_FALSE(art.combined[0].degraded_schedulable.empty());
  const ShardArtifact back = ShardArtifact::from_text(art.to_text());
  EXPECT_EQ(serialize_spec(back.spec), with_faults);
  EXPECT_DOUBLE_EQ(back.spec.spec.sim.faults.token_loss_prob, 0.03);
  EXPECT_EQ(back.spec.spec.sim.faults.churn_offline, 6'000);
  ASSERT_EQ(back.combined.size(), art.combined.size());
  for (std::size_t i = 0; i < art.combined.size(); ++i) {
    EXPECT_EQ(back.combined[i].degraded_schedulable, art.combined[i].degraded_schedulable);
    EXPECT_EQ(back.combined[i].degraded_wcrt, art.combined[i].degraded_wcrt);
  }
  EXPECT_EQ(back.to_text(), art.to_text());

  // Sharded faulted run merges byte-identical to single-process.
  engine::SweepRunner single(2);
  const engine::ConsistencyTable reference =
      engine::consistency_table(spec.spec, single.run_combined(spec.spec));
  ASSERT_TRUE(reference.fault_axis);
  const MergedSweep merged = run_sharded(spec, 2);
  const engine::ConsistencyTable table = engine::consistency_table(spec.spec, merged.combined);
  EXPECT_EQ(table.to_csv(), reference.to_csv());
  EXPECT_EQ(table.to_json(), reference.to_json());

  // Mixed faulted/zero-fault shard sets are refused by the spec compare.
  ShardRunner one(1);
  std::vector<ShardArtifact> mixed = {one.run(spec, 0, 2), one.run(clean, 1, 2)};
  EXPECT_THROW((void)merge_shards(mixed), std::invalid_argument);
}

TEST(ShardMerge, RejectsMissingShard) {
  const ShardSpec spec = small_spec(SweepMode::Analysis);
  ShardRunner runner(1);
  std::vector<ShardArtifact> arts;
  arts.push_back(runner.run(spec, 0, 3));
  arts.push_back(runner.run(spec, 2, 3));
  EXPECT_THROW((void)merge_shards(arts), std::invalid_argument);  // 2 of 3
  arts.push_back(runner.run(spec, 1, 3));
  EXPECT_NO_THROW((void)merge_shards(arts));  // all 3 in any order is fine
}

TEST(ShardMerge, RejectsDuplicateShard) {
  const ShardSpec spec = small_spec(SweepMode::Analysis);
  ShardRunner runner(1);
  std::vector<ShardArtifact> arts = {runner.run(spec, 0, 2), runner.run(spec, 0, 2)};
  EXPECT_THROW((void)merge_shards(arts), std::invalid_argument);
}

TEST(ShardMerge, RejectsOverlappingRanges) {
  const ShardSpec spec = small_spec(SweepMode::Analysis);
  ShardRunner runner(1);
  std::vector<ShardArtifact> arts = {runner.run(spec, 0, 2), runner.run(spec, 1, 2)};
  // Widen shard 1's claimed range into shard 0's territory: the tiling check
  // must notice even though both artifacts individually look sane.
  arts[1].range.begin -= 1;
  arts[1].analysis.insert(arts[1].analysis.begin(), arts[0].analysis.back());
  EXPECT_THROW((void)merge_shards(arts), std::invalid_argument);
}

TEST(ShardMerge, RejectsMixedSpecs) {
  const ShardSpec spec = small_spec(SweepMode::Analysis);
  ShardSpec other = spec;
  other.spec.sweep.seed = 100;  // different sweep → different artifact spec block
  ShardRunner runner(1);
  std::vector<ShardArtifact> arts = {runner.run(spec, 0, 2), runner.run(other, 1, 2)};
  EXPECT_THROW((void)merge_shards(arts), std::invalid_argument);
}

TEST(ShardMerge, RejectsMixedModes) {
  ShardRunner runner(1);
  std::vector<ShardArtifact> arts = {runner.run(small_spec(SweepMode::Analysis), 0, 2),
                                     runner.run(small_spec(SweepMode::Sim), 1, 2)};
  EXPECT_THROW((void)merge_shards(arts), std::invalid_argument);
}

TEST(ShardMerge, RejectsEmptyAndCorruptArtifacts) {
  EXPECT_THROW((void)merge_shards({}), std::invalid_argument);
  EXPECT_THROW((void)ShardArtifact::from_text(""), std::invalid_argument);
  EXPECT_THROW((void)ShardArtifact::from_text("not a shard artifact\n"), std::invalid_argument);

  const ShardSpec spec = small_spec(SweepMode::Analysis);
  ShardRunner runner(1);
  const std::string text = runner.run(spec, 0, 1).to_text();
  // Truncation anywhere (drop the trailing "end\n" sentinel and the last row)
  // must be caught rather than merged short.
  EXPECT_THROW((void)ShardArtifact::from_text(text.substr(0, text.size() / 2)),
               std::invalid_argument);
  // A tampered outcome row (id not matching the declared range) is rejected
  // at merge time.
  ShardArtifact art = ShardArtifact::from_text(text);
  art.analysis[0].id += 1;
  EXPECT_THROW((void)merge_shards({art}), std::invalid_argument);
}

}  // namespace
}  // namespace profisched::dist
