// Optimize mode through the distributed subsystem (PR 6): K ∈ {1, 3} shard
// runs — each artifact round-tripped through its text form — must merge into
// tables byte-identical to the single-process run; artifacts must carry the
// search brackets in their spec block (so mixed-bracket shard sets are
// rejected); and the artifact text must round-trip every optimize field.
#include <gtest/gtest.h>

#include "dist/shard.hpp"
#include "opt/opt_aggregate.hpp"

namespace profisched::dist {
namespace {

ShardSpec optimize_spec() {
  ShardSpec sh;
  sh.mode = SweepMode::Optimize;
  sh.spec.sweep.base.n_masters = 2;
  sh.spec.sweep.base.streams_per_master = 3;
  sh.spec.sweep.base.ttr = 3'000;
  sh.spec.sweep.points = {engine::SweepPoint{0.3, 0.5, 1.0}, engine::SweepPoint{0.7, 0.5, 1.0}};
  sh.spec.sweep.scenarios_per_point = 6;
  sh.spec.sweep.policies = {engine::Policy::Fcfs, engine::Policy::Dm, engine::Policy::Edf};
  sh.spec.sweep.seed = 99;
  return sh;
}

opt::OptimizeSpec as_opt_spec(const ShardSpec& sh) {
  return opt::OptimizeSpec{sh.spec.sweep, sh.optimize};
}

MergedSweep run_sharded(const ShardSpec& spec, std::uint64_t count) {
  ShardRunner runner(2);
  std::vector<ShardArtifact> artifacts;
  for (std::uint64_t k = 0; k < count; ++k) {
    const ShardArtifact art = runner.run(spec, k, count);
    artifacts.push_back(ShardArtifact::from_text(art.to_text()));  // wire round trip
  }
  return merge_shards(artifacts);
}

TEST(OptimizeShard, MergesByteIdenticalForOneAndThreeShards) {
  const ShardSpec spec = optimize_spec();
  engine::SweepRunner single(2);
  const opt::OptimizeTable reference =
      opt::aggregate_optimize(as_opt_spec(spec), opt::run_optimize(single, as_opt_spec(spec)));
  for (const std::uint64_t k : {1ULL, 3ULL}) {
    const MergedSweep merged = run_sharded(spec, k);
    const opt::OptimizeTable table =
        opt::aggregate_optimize(as_opt_spec(merged.spec), merged.optimize);
    EXPECT_EQ(table.to_csv(), reference.to_csv()) << k << " shards";
    EXPECT_EQ(table.to_json(), reference.to_json()) << k << " shards";
  }
}

TEST(OptimizeShard, ArtifactTextRoundTripsEveryField) {
  const ShardSpec spec = optimize_spec();
  ShardRunner runner(1);
  const ShardArtifact art = runner.run(spec, 1, 3);
  ASSERT_FALSE(art.optimize.empty());
  const ShardArtifact back = ShardArtifact::from_text(art.to_text());
  EXPECT_EQ(back.spec.mode, SweepMode::Optimize);
  EXPECT_EQ(back.spec.optimize.scale_lo_q, spec.optimize.scale_lo_q);
  EXPECT_EQ(back.spec.optimize.scale_hi_q, spec.optimize.scale_hi_q);
  EXPECT_EQ(back.spec.optimize.ttr_cap, spec.optimize.ttr_cap);
  ASSERT_EQ(back.optimize.size(), art.optimize.size());
  for (std::size_t i = 0; i < art.optimize.size(); ++i) {
    for (std::size_t p = 0; p < art.optimize[i].per_policy.size(); ++p) {
      const opt::PolicyOptimum& a = art.optimize[i].per_policy[p];
      const opt::PolicyOptimum& b = back.optimize[i].per_policy[p];
      EXPECT_EQ(a.schedulable, b.schedulable);
      EXPECT_EQ(a.breakdown_q, b.breakdown_q);
      EXPECT_EQ(a.breakdown_u, b.breakdown_u);  // shortest-round-trip doubles
      EXPECT_EQ(a.max_ttr, b.max_ttr);
      EXPECT_EQ(a.min_dratio_q, b.min_dratio_q);
    }
  }
  EXPECT_EQ(back.to_text(), art.to_text());
}

TEST(OptimizeShard, RejectsMixedSearchBrackets) {
  const ShardSpec spec = optimize_spec();
  ShardRunner runner(1);
  ShardSpec widened = spec;
  widened.optimize.ttr_cap *= 2;
  std::vector<ShardArtifact> arts = {runner.run(spec, 0, 2), runner.run(widened, 1, 2)};
  EXPECT_THROW((void)merge_shards(arts), std::invalid_argument);
}

TEST(OptimizeShard, NonOptimizeSpecBlocksStayBracketFree) {
  // The optimize options line must not leak into the other modes' spec
  // blocks — their artifact format is frozen.
  ShardSpec analysis = optimize_spec();
  analysis.mode = SweepMode::Analysis;
  EXPECT_EQ(serialize_spec(analysis).find("optimize"), std::string::npos);
  EXPECT_NE(serialize_spec(optimize_spec()).find("\noptimize "), std::string::npos);
}

}  // namespace
}  // namespace profisched::dist
