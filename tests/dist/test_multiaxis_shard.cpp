// Distributed execution over the PR-5 multi-axis grids: shard ranges tile the
// flattened u × beta × masters cross product, artifacts carry the new spec
// fields (per-point ring sizes, split weights, skew) through their text form
// exactly, and K-shard merges stay byte-identical to single-process runs for
// all three modes. Also the loud-failure side: shards produced under
// different splits must refuse to merge.
#include "dist/shard.hpp"

#include <gtest/gtest.h>

#include "engine/aggregate.hpp"
#include "engine/sim_aggregate.hpp"

namespace profisched::dist {
namespace {

/// u × beta × masters cross product with an asymmetric (skewed) base — every
/// new axis and split knob in one spec.
ShardSpec multi_axis_spec(SweepMode mode) {
  ShardSpec sh;
  sh.mode = mode;
  sh.spec.sweep.base.n_masters = 2;
  sh.spec.sweep.base.streams_per_master = 3;
  sh.spec.sweep.base.ttr = 3'000;
  for (const std::size_t m : {std::size_t{2}, std::size_t{3}}) {
    for (const double b : {0.7, 1.0}) {
      for (const double u : {0.4, 0.9}) {
        sh.spec.sweep.points.push_back(engine::SweepPoint{u, b, b, m});
      }
    }
  }
  sh.spec.sweep.scenarios_per_point = 4;
  sh.spec.sweep.policies = {engine::Policy::Fcfs, engine::Policy::Dm, engine::Policy::Edf};
  sh.spec.sweep.seed = 404;
  sh.spec.sweep.base.master_skew = 0.5;
  sh.spec.replications = 2;
  return sh;
}

MergedSweep run_sharded(const ShardSpec& spec, std::uint64_t count) {
  ShardRunner runner(2);
  std::vector<ShardArtifact> artifacts;
  for (std::uint64_t k = 0; k < count; ++k) {
    const ShardArtifact art = runner.run(spec, k, count);
    artifacts.push_back(ShardArtifact::from_text(art.to_text()));  // wire round trip
  }
  return merge_shards(artifacts);
}

TEST(MultiAxisShard, AnalysisModeMergesByteIdentical) {
  const ShardSpec spec = multi_axis_spec(SweepMode::Analysis);
  engine::SweepRunner single(2);
  const engine::SweepCurves reference =
      engine::aggregate(spec.spec.sweep, single.run(spec.spec.sweep));
  for (const std::uint64_t k : {1ULL, 3ULL, 7ULL}) {
    const MergedSweep merged = run_sharded(spec, k);
    const engine::SweepCurves curves = engine::aggregate(spec.spec.sweep, merged.analysis);
    EXPECT_EQ(curves.to_csv(), reference.to_csv()) << k << " shards";
    EXPECT_EQ(curves.to_json(), reference.to_json()) << k << " shards";
  }
}

TEST(MultiAxisShard, SimModeMergesByteIdentical) {
  const ShardSpec spec = multi_axis_spec(SweepMode::Sim);
  engine::SweepRunner single(2);
  const engine::SimCurves reference = engine::aggregate_sim(spec.spec, single.run_sim(spec.spec));
  for (const std::uint64_t k : {1ULL, 3ULL}) {
    const MergedSweep merged = run_sharded(spec, k);
    const engine::SimCurves curves = engine::aggregate_sim(spec.spec, merged.sim);
    EXPECT_EQ(curves.to_csv(), reference.to_csv()) << k << " shards";
    EXPECT_EQ(curves.to_json(), reference.to_json()) << k << " shards";
  }
}

TEST(MultiAxisShard, CombinedModeMergesByteIdentical) {
  const ShardSpec spec = multi_axis_spec(SweepMode::Combined);
  engine::SweepRunner single(2);
  const engine::ConsistencyTable reference =
      engine::consistency_table(spec.spec, single.run_combined(spec.spec));
  EXPECT_TRUE(reference.multi_axis);
  for (const std::uint64_t k : {1ULL, 3ULL}) {
    const MergedSweep merged = run_sharded(spec, k);
    const engine::ConsistencyTable table = engine::consistency_table(spec.spec, merged.combined);
    EXPECT_EQ(table.to_csv(), reference.to_csv()) << k << " shards";
    EXPECT_EQ(table.to_json(), reference.to_json()) << k << " shards";
  }
}

TEST(MultiAxisShard, SpecBlockRoundTripsEveryNewField) {
  ShardSpec spec = multi_axis_spec(SweepMode::Analysis);
  const std::string text = serialize_spec(spec);
  EXPECT_NE(text.find("skew "), std::string::npos);

  ShardRunner runner(1);
  const ShardArtifact art = runner.run(spec, 0, 2);
  const ShardArtifact back = ShardArtifact::from_text(art.to_text());
  EXPECT_EQ(serialize_spec(back.spec), serialize_spec(art.spec));
  EXPECT_EQ(back.spec.spec.sweep.base.master_skew, 0.5);
  ASSERT_EQ(back.spec.spec.sweep.points.size(), art.spec.spec.sweep.points.size());
  for (std::size_t i = 0; i < back.spec.spec.sweep.points.size(); ++i) {
    EXPECT_EQ(back.spec.spec.sweep.points[i].n_masters,
              art.spec.spec.sweep.points[i].n_masters);
    EXPECT_EQ(back.spec.spec.sweep.points[i].beta_lo, art.spec.spec.sweep.points[i].beta_lo);
  }

  // Explicit weight vectors round-trip bit-exactly through the text form.
  ShardSpec weighted = multi_axis_spec(SweepMode::Analysis);
  weighted.spec.sweep.base.master_skew = 0.0;
  weighted.spec.sweep.base.master_split = {0.5, 0.3, 0.2};
  for (engine::SweepPoint& pt : weighted.spec.sweep.points) pt.n_masters = 3;
  const ShardArtifact wart = ShardRunner(1).run(weighted, 0, 2);
  const ShardArtifact wback = ShardArtifact::from_text(wart.to_text());
  EXPECT_EQ(wback.spec.spec.sweep.base.master_split, weighted.spec.sweep.base.master_split);
  EXPECT_NE(serialize_spec(wback.spec).find("split "), std::string::npos);
}

TEST(MultiAxisShard, ClassicSpecBlockStaysLegacyFormatted) {
  ShardSpec classic;
  classic.mode = SweepMode::Analysis;
  classic.spec.sweep.base.ttr = 3'000;
  classic.spec.sweep.points = {engine::SweepPoint{0.3, 0.5, 1.0}};
  classic.spec.sweep.scenarios_per_point = 2;
  const std::string text = serialize_spec(classic);
  EXPECT_EQ(text.find("split"), std::string::npos);
  EXPECT_EQ(text.find("skew"), std::string::npos);
  // Point lines keep their historical 3-token shape.
  EXPECT_NE(text.find("point 0.3 0.5 1\n"), std::string::npos);
}

TEST(MultiAxisShard, MixedSplitShardSetsRefuseToMerge) {
  const ShardSpec spec = multi_axis_spec(SweepMode::Analysis);
  ShardSpec other = spec;
  other.spec.sweep.base.master_skew = 0.9;  // different split -> different workloads

  ShardRunner runner(1);
  std::vector<ShardArtifact> artifacts;
  artifacts.push_back(ShardArtifact::from_text(runner.run(spec, 0, 2).to_text()));
  artifacts.push_back(ShardArtifact::from_text(runner.run(other, 1, 2).to_text()));
  EXPECT_THROW((void)merge_shards(artifacts), std::invalid_argument);
}

}  // namespace
}  // namespace profisched::dist
