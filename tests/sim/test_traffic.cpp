// Unit tests for the release processes.
#include "sim/traffic.hpp"

#include <gtest/gtest.h>

namespace profisched::sim {
namespace {

TEST(ReleaseProcess, PeriodicNoJitterIsExact) {
  Rng rng(1);
  const ReleaseProcess p(TrafficConfig{.phase = 100, .jitter = 0, .sporadic = false}, 50);
  EXPECT_EQ(p.first_nominal(), 100);
  Ticks nominal = 100;
  for (int i = 0; i < 20; ++i) {
    const auto step = p.step(nominal, rng);
    EXPECT_EQ(step.release, nominal);            // no jitter: release == nominal
    EXPECT_EQ(step.next_nominal, nominal + 50);  // strict period
    nominal = step.next_nominal;
  }
}

TEST(ReleaseProcess, JitterDelaysWithinBound) {
  Rng rng(2);
  const ReleaseProcess p(TrafficConfig{.phase = 0, .jitter = 7, .sporadic = false}, 50);
  Ticks nominal = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto step = p.step(nominal, rng);
    EXPECT_GE(step.release, nominal);
    EXPECT_LE(step.release, nominal + 7);
    EXPECT_EQ(step.next_nominal, nominal + 50);  // jitter never shifts the period grid
    nominal = step.next_nominal;
  }
}

TEST(ReleaseProcess, SporadicGapAtLeastPeriod) {
  Rng rng(3);
  const ReleaseProcess p(TrafficConfig{.phase = 0, .jitter = 0, .sporadic = true}, 50);
  Ticks nominal = 0;
  bool saw_gap_above_period = false;
  for (int i = 0; i < 1000; ++i) {
    const auto step = p.step(nominal, rng);
    const Ticks gap = step.next_nominal - nominal;
    EXPECT_GE(gap, 50);       // minimum inter-arrival = T (paper footnote 3)
    EXPECT_LE(gap, 100);      // bounded extra
    saw_gap_above_period |= (gap > 50);
    nominal = step.next_nominal;
  }
  EXPECT_TRUE(saw_gap_above_period);
}

TEST(ReleaseProcess, DeterministicForSameSeed) {
  const ReleaseProcess p(TrafficConfig{.phase = 0, .jitter = 9, .sporadic = true}, 30);
  Rng a(5), b(5);
  Ticks na = 0, nb = 0;
  for (int i = 0; i < 100; ++i) {
    const auto sa = p.step(na, a);
    const auto sb = p.step(nb, b);
    EXPECT_EQ(sa.release, sb.release);
    EXPECT_EQ(sa.next_nominal, sb.next_nominal);
    na = sa.next_nominal;
    nb = sb.next_nominal;
  }
}

}  // namespace
}  // namespace profisched::sim
