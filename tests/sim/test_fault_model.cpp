// Unit tests for the fault-injection layer: knob validation, the injection
// mechanics of each fault class (token loss, frame corruption, ring churn),
// listener/stats agreement, seeded determinism, and — the load-bearing
// guarantee — that a zero-probability FaultModel leaves the simulation
// byte-identical to a fault-free run (the fault RNG must never be consulted).
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "profibus/fault_model.hpp"
#include "sim/network_sim.hpp"
#include "sim/trace.hpp"

namespace profisched::sim {
namespace {

using profibus::ApPolicy;
using profibus::FaultModel;
using profibus::Master;
using profibus::MessageStream;
using profibus::Network;

MessageStream stream(Ticks ch, Ticks d, Ticks t) {
  return MessageStream{.Ch = ch, .D = d, .T = t, .J = 0, .name = ""};
}

Network ring(std::size_t n_masters, Ticks ttr) {
  Network net;
  net.ttr = ttr;
  for (std::size_t k = 0; k < n_masters; ++k) {
    Master m;
    m.high_streams = {stream(500, 40'000, 10'000), stream(300, 60'000, 20'000)};
    net.masters.push_back(m);
  }
  return net;
}

SimConfig base_config(std::size_t n_masters = 2, Ticks horizon = 200'000) {
  SimConfig cfg;
  cfg.net = ring(n_masters, 5'000);
  cfg.policy = ApPolicy::Fcfs;
  cfg.horizon = horizon;
  cfg.seed = 42;
  return cfg;
}

std::string render_run(SimConfig cfg) {
  Trace trace(1 << 16);
  cfg.trace = &trace;
  const SimReport r = simulate(cfg);
  std::ostringstream out;
  out << "events=" << r.events << '\n';
  for (std::size_t k = 0; k < r.hp.size(); ++k) {
    for (std::size_t i = 0; i < r.hp[k].size(); ++i) {
      const StreamStats& s = r.hp[k][i];
      out << k << '/' << i << ' ' << s.released << ' ' << s.completed << ' '
          << s.deadline_misses << ' ' << s.dropped << ' ' << s.max_response << '\n';
    }
  }
  out << trace.render();
  return out.str();
}

/// Counts every observer callback per kind, for cross-checking FaultStats.
struct CountingListener final : SimListener {
  std::vector<FaultEvent> events;
  void on_fault(const FaultEvent& e) override { events.push_back(e); }
  [[nodiscard]] std::size_t count(FaultKind k) const {
    std::size_t n = 0;
    for (const FaultEvent& e : events) n += e.kind == k ? 1 : 0;
    return n;
  }
};

TEST(FaultModel, ValidateRejectsBadKnobs) {
  const auto bad = [](auto&& mutate) {
    FaultModel f;
    mutate(f);
    EXPECT_THROW(f.validate(), std::invalid_argument);
  };
  bad([](FaultModel& f) { f.token_loss_prob = -0.1; });
  bad([](FaultModel& f) { f.token_loss_prob = 1.5; });
  bad([](FaultModel& f) { f.corruption_prob = 2.0; });
  bad([](FaultModel& f) { f.churn_prob = -1.0; });
  bad([](FaultModel& f) { f.burst_correlation = 1.01; });
  bad([](FaultModel& f) { f.token_recovery = -1; });
  bad([](FaultModel& f) { f.churn_offline = -5; });
  bad([](FaultModel& f) { f.max_retransmissions = -2; });
  FaultModel ok;
  ok.token_loss_prob = 1.0;
  ok.corruption_prob = 0.5;
  ok.churn_prob = 0.25;
  ok.burst_correlation = 1.0;
  EXPECT_NO_THROW(ok.validate());
}

TEST(FaultModel, AnyReflectsActiveKnobs) {
  FaultModel f;
  EXPECT_FALSE(f.any());
  // Deterministic knobs alone (no probability) keep the model inert.
  f.token_recovery = 10'000;
  f.churn_offline = 5'000;
  f.max_retransmissions = 7;
  EXPECT_FALSE(f.any());
  f.token_loss_prob = 0.01;
  EXPECT_TRUE(f.any());
  f = FaultModel{};
  f.burst_correlation = 0.5;
  EXPECT_TRUE(f.any());
}

// The zero-fault guarantee: probabilities at zero mean the fault RNG is never
// drawn from and every observable byte matches a config that never mentioned
// faults — whatever the deterministic knobs are set to.
TEST(FaultModel, ZeroProbabilityIsByteIdenticalToFaultFree) {
  SimConfig plain = base_config();
  SimConfig zeroed = base_config();
  zeroed.faults.token_recovery = 50'000;
  zeroed.faults.churn_offline = 99'999;
  zeroed.faults.max_retransmissions = 9;
  const std::string a = render_run(plain);
  const std::string b = render_run(zeroed);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);

  const SimReport r = simulate(zeroed);
  EXPECT_EQ(r.faults.total(), 0u);
}

TEST(FaultModel, TokenLossDelaysEveryPassByRecovery) {
  SimConfig cfg = base_config(1, 100'000);
  cfg.faults.token_loss_prob = 1.0;  // every pass loses the token
  cfg.faults.token_recovery = 2'500;
  const SimReport r = simulate(cfg);
  EXPECT_GT(r.faults.tokens_lost, 0u);
  EXPECT_EQ(r.faults.token_skips, 0u);  // single master: nothing to skip

  // The same horizon without loss completes strictly more token rotations,
  // so loss at probability one must not be free.
  SimConfig clean = base_config(1, 100'000);
  const SimReport rc = simulate(clean);
  EXPECT_LT(r.events, rc.events);
}

TEST(FaultModel, CorruptionStretchesCyclesAndCountsRetransmissions) {
  SimConfig cfg = base_config(1, 150'000);
  cfg.faults.corruption_prob = 1.0;  // every cycle corrupts to the cap
  cfg.faults.max_retransmissions = 3;
  CountingListener listener;
  cfg.listener = &listener;
  const SimReport r = simulate(cfg);
  ASSERT_GT(r.faults.corrupted_cycles, 0u);
  // At probability one each corrupted cycle burns the full retransmission cap.
  EXPECT_EQ(r.faults.retransmissions, r.faults.corrupted_cycles * 3);
  EXPECT_EQ(listener.count(FaultKind::FrameCorrupted), r.faults.corrupted_cycles);
  for (const FaultEvent& e : listener.events) {
    if (e.kind == FaultKind::FrameCorrupted) EXPECT_EQ(e.detail, 3);
  }
  // A (1+3)x stretched 500-tick cycle must show up in observed responses.
  const SimReport clean = simulate(base_config(1, 150'000));
  EXPECT_GT(r.hp[0][0].max_response, clean.hp[0][0].max_response);
}

TEST(FaultModel, ChurnTakesStationsOfflineAndBack) {
  SimConfig cfg = base_config(3, 400'000);
  cfg.faults.churn_prob = 1.0;  // every non-anchor master leaves after holding
  cfg.faults.churn_offline = 20'000;
  CountingListener listener;
  cfg.listener = &listener;
  const SimReport r = simulate(cfg);
  EXPECT_GT(r.faults.leaves, 0u);
  EXPECT_GT(r.faults.rejoins, 0u);
  EXPECT_GT(r.faults.token_skips, 0u);  // passes hop over offline stations
  EXPECT_GE(r.faults.leaves, r.faults.rejoins);  // a leave precedes its rejoin
  EXPECT_EQ(listener.count(FaultKind::StationLeft), r.faults.leaves);
  EXPECT_EQ(listener.count(FaultKind::StationRejoined), r.faults.rejoins);
  EXPECT_EQ(listener.count(FaultKind::TokenSkip), r.faults.token_skips);
  // Master 0 anchors the ring: it never leaves.
  for (const FaultEvent& e : listener.events) {
    if (e.kind == FaultKind::StationLeft) EXPECT_NE(e.master, 0u);
  }
  // Releases while offline are dropped, not missed: they must be accounted.
  EXPECT_EQ(listener.count(FaultKind::ChurnDrop), r.faults.churn_dropped);
  std::uint64_t dropped = 0;
  for (const auto& master : r.hp) {
    for (const StreamStats& s : master) dropped += s.dropped;
  }
  EXPECT_EQ(dropped, r.faults.churn_dropped);
}

TEST(FaultModel, ListenerAgreesWithStatsAcrossAllKinds) {
  SimConfig cfg = base_config(3, 300'000);
  cfg.faults.token_loss_prob = 0.3;
  cfg.faults.token_recovery = 1'000;
  cfg.faults.corruption_prob = 0.2;
  cfg.faults.max_retransmissions = 2;
  cfg.faults.churn_prob = 0.1;
  cfg.faults.churn_offline = 15'000;
  CountingListener listener;
  cfg.listener = &listener;
  const SimReport r = simulate(cfg);
  EXPECT_EQ(listener.count(FaultKind::TokenLost), r.faults.tokens_lost);
  EXPECT_EQ(listener.count(FaultKind::TokenSkip), r.faults.token_skips);
  EXPECT_EQ(listener.count(FaultKind::StationLeft), r.faults.leaves);
  EXPECT_EQ(listener.count(FaultKind::StationRejoined), r.faults.rejoins);
  EXPECT_EQ(listener.count(FaultKind::FrameCorrupted), r.faults.corrupted_cycles);
  EXPECT_EQ(listener.count(FaultKind::ChurnDrop), r.faults.churn_dropped);
  EXPECT_GT(r.faults.total(), 0u);
}

TEST(FaultModel, FaultedRunsAreSeedDeterministic) {
  SimConfig cfg = base_config(3, 250'000);
  cfg.faults.token_loss_prob = 0.2;
  cfg.faults.token_recovery = 800;
  cfg.faults.corruption_prob = 0.15;
  cfg.faults.churn_prob = 0.05;
  cfg.faults.churn_offline = 10'000;
  const std::string a = render_run(cfg);
  const std::string b = render_run(cfg);
  EXPECT_EQ(a, b);
  cfg.seed = 43;
  const std::string c = render_run(cfg);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace profisched::sim
