// Regression suite for the pooled event queue: the rework from the
// std::function min-heap to the tag-dispatched, slot-recycled representation
// must be unobservable. Two angles:
//
//  * queue level — randomized schedule/pop interleavings against a
//    straightforward reference heap (the pre-rework representation),
//    asserting identical (time, seq) pop order;
//  * simulator level — seeded end-to-end runs compared byte-for-byte against
//    committed golden trace renderings produced by the pre-rework simulator
//    (regenerate deliberately with PROFISCHED_REGEN_GOLDEN=1).
#include <cstdlib>
#include <fstream>
#include <functional>
#include <queue>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/network_sim.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"
#include "workload/generators.hpp"

namespace profisched::sim {
namespace {

constexpr const char* kGoldenPath = "tests/golden/sim_trace_pr4.txt";

// ------------------------------------------------------------ queue level

/// The pre-rework representation: std::priority_queue over (time, seq).
class ReferenceQueue {
 public:
  void schedule(Ticks at, int id) { heap_.push(Entry{at, next_seq_++, id}); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] Ticks next_time() const { return heap_.empty() ? kNoBound : heap_.top().time; }
  struct Popped {
    Ticks time;
    std::uint64_t seq;
    int id;
  };
  Popped pop() {
    Entry e = heap_.top();
    heap_.pop();
    return {e.time, e.seq, e.id};
  }

 private:
  struct Entry {
    Ticks time;
    std::uint64_t seq;
    int id;
    bool operator>(const Entry& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

TEST(EventPool, RandomizedInterleavingsMatchReferenceHeap) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    EventQueue q;
    ReferenceQueue ref;
    int next_id = 0;
    int last_popped = -1;

    for (int step = 0; step < 2000; ++step) {
      const bool push = q.empty() || rng.chance(0.55);
      if (push) {
        const Ticks at = rng.uniform(0, 50);  // dense times force seq tie-breaks
        const int id = next_id++;
        q.schedule(at, [id, &last_popped] { last_popped = id; });
        ref.schedule(at, id);
      } else {
        ASSERT_EQ(q.next_time(), ref.next_time());
        const Event e = q.pop();
        const ReferenceQueue::Popped r = ref.pop();
        e.action();
        ASSERT_EQ(e.time, r.time);
        ASSERT_EQ(e.seq, r.seq);
        ASSERT_EQ(last_popped, r.id);
      }
    }
    while (!q.empty()) {
      const Event e = q.pop();
      const ReferenceQueue::Popped r = ref.pop();
      e.action();
      ASSERT_EQ(e.time, r.time);
      ASSERT_EQ(e.seq, r.seq);
      ASSERT_EQ(last_popped, r.id);
    }
    ASSERT_TRUE(ref.empty());
  }
}

TEST(EventPool, SlotRecyclingSurvivesInterleavedChurn) {
  // Drain-and-refill cycles exercise the free list: after the first cycle no
  // schedule() should need fresh slots.
  EventQueue q;
  Ticks t = 0;
  std::vector<Ticks> popped;
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (int i = 0; i < 32; ++i) q.schedule(t + (i * 7) % 13, [] {});
    while (!q.empty()) popped.push_back(q.pop().time);
    t += 13;
  }
  ASSERT_EQ(popped.size(), 50u * 32u);
  for (std::size_t i = 1; i < popped.size(); ++i) {
    if (popped[i - 1] / 13 == popped[i] / 13) {  // within one cycle: ordered
      EXPECT_LE(popped[i - 1] % 13 + 0, popped[i] % 13 + 13);  // times ascend per cycle
    }
  }
}

// -------------------------------------------------------- simulator level

/// One deterministic end-to-end run, rendered into a stable text form that
/// captures the complete observable behaviour: every trace record plus the
/// report's counters.
std::string run_and_render(profibus::ApPolicy policy, CycleModel model, bool lp, bool jitter,
                           std::uint64_t seed) {
  workload::NetworkParams p;
  p.n_masters = 2;
  p.streams_per_master = 3;
  p.low_priority_traffic = lp;
  Rng gen_rng(seed);
  workload::GeneratedNetwork g = workload::random_network(p, gen_rng);

  SimConfig cfg;
  cfg.net = g.net;
  cfg.policy = policy;
  cfg.cycle_model = model;
  cfg.seed = seed * 977;
  cfg.horizon = 120'000;
  if (model.kind == CycleModel::Kind::FrameLevel) cfg.frame_specs = g.specs;
  if (jitter) {
    cfg.hp_traffic.resize(cfg.net.n_masters());
    for (std::size_t k = 0; k < cfg.net.n_masters(); ++k) {
      for (std::size_t i = 0; i < cfg.net.masters[k].nh(); ++i) {
        TrafficConfig tc;
        tc.phase = static_cast<Ticks>(137 * (k + 1) * (i + 1));
        tc.jitter = 500;
        tc.sporadic = (i % 2) == 1;
        cfg.hp_traffic[k].push_back(tc);
      }
    }
  }
  if (lp) {
    cfg.lp_traffic.resize(cfg.net.n_masters());
    for (std::size_t k = 0; k < cfg.net.n_masters(); ++k) {
      cfg.lp_traffic[k].push_back(LpTraffic{50'000, 4'000, 11'000});
    }
  }

  Trace trace(1 << 18);
  cfg.trace = &trace;
  const SimReport r = simulate(cfg);

  std::ostringstream out;
  out << "== policy=" << static_cast<int>(policy) << " model=" << static_cast<int>(model.kind)
      << " lp=" << lp << " jitter=" << jitter << " seed=" << seed << "\n";
  out << "events=" << r.events << " lp_cycles=" << r.lp_cycles_completed
      << " trace_dropped=" << trace.dropped() << "\n";
  for (std::size_t k = 0; k < r.hp.size(); ++k) {
    for (std::size_t i = 0; i < r.hp[k].size(); ++i) {
      const StreamStats& s = r.hp[k][i];
      out << "m" << k << "s" << i << " released=" << s.released << " completed=" << s.completed
          << " misses=" << s.deadline_misses << " dropped=" << s.dropped
          << " max=" << s.max_response
          << "\n";
    }
  }
  out << trace.render();
  return out.str();
}

std::string full_corpus() {
  std::string all;
  using profibus::ApPolicy;
  all += run_and_render(ApPolicy::Fcfs, CycleModel{}, /*lp=*/true, /*jitter=*/false, 7);
  all += run_and_render(ApPolicy::Dm, CycleModel{}, /*lp=*/true, /*jitter=*/true, 11);
  all += run_and_render(ApPolicy::Edf,
                        CycleModel{CycleModel::Kind::UniformFraction, 0.4, 0.0},
                        /*lp=*/true, /*jitter=*/true, 13);
  all += run_and_render(ApPolicy::Dm, CycleModel{CycleModel::Kind::FrameLevel, 0.5, 0.05},
                        /*lp=*/false, /*jitter=*/true, 17);
  return all;
}

// Fault injection rides the same pooled queue: fault-scheduled events
// (recovery-delayed token arrivals, rejoins) landing on the same tick as
// regular events must keep the (time, seq) FIFO order, so a faulted seeded
// run renders byte-identically every time — the same determinism contract
// the zero-fault golden locks down.
std::string faulted_render(std::uint64_t seed) {
  workload::NetworkParams p;
  p.n_masters = 3;
  p.streams_per_master = 3;
  Rng gen_rng(seed);
  workload::GeneratedNetwork g = workload::random_network(p, gen_rng);

  SimConfig cfg;
  cfg.net = g.net;
  cfg.policy = profibus::ApPolicy::Dm;
  cfg.horizon = 400'000;
  cfg.seed = seed;
  // recovery/offline deliberately multiples of nothing in particular so the
  // delayed arrivals collide with regular token passes on shared ticks.
  cfg.faults.token_loss_prob = 0.25;
  cfg.faults.token_recovery = 70;  // == token pass time: same-tick collisions
  cfg.faults.corruption_prob = 0.2;
  cfg.faults.max_retransmissions = 2;
  cfg.faults.churn_prob = 0.1;
  cfg.faults.churn_offline = 7'000;

  Trace trace(1 << 18);
  cfg.trace = &trace;
  const SimReport r = simulate(cfg);
  std::ostringstream out;
  out << "events=" << r.events << " lost=" << r.faults.tokens_lost
      << " skips=" << r.faults.token_skips << " corrupted=" << r.faults.corrupted_cycles
      << " leaves=" << r.faults.leaves << " rejoins=" << r.faults.rejoins
      << " dropped=" << r.faults.churn_dropped << "\n";
  out << trace.render();
  return out.str();
}

TEST(EventPool, FaultedSameTickEventsStayDeterministic) {
  for (const std::uint64_t seed : {3u, 23u, 71u}) {
    const std::string a = faulted_render(seed);
    const std::string b = faulted_render(seed);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "seed " << seed;
  }
  // The injection is live in this configuration, not vacuously deterministic.
  EXPECT_EQ(faulted_render(3).find(" lost=0 "), std::string::npos);
  EXPECT_NE(faulted_render(3), faulted_render(23));
}

TEST(EventPool, SeededTracesMatchPreReworkGolden) {
  const std::string got = full_corpus();
  if (std::getenv("PROFISCHED_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
    out << got;
    GTEST_SKIP() << "regenerated " << kGoldenPath;
  }
  std::ifstream in(kGoldenPath, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing " << kGoldenPath
                         << " (run with PROFISCHED_REGEN_GOLDEN=1 to create)";
  std::ostringstream want;
  want << in.rdbuf();
  // Byte-identical: the pooled queue must not change event order, RNG draw
  // order, or any observable statistic.
  ASSERT_EQ(got, want.str());
}

}  // namespace
}  // namespace profisched::sim
