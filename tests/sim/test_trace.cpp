// Unit tests for the simulator's protocol-event trace.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "sim/network_sim.hpp"

namespace profisched::sim {
namespace {

TEST(Trace, RecordsUpToCapacityThenCountsDrops) {
  Trace t(3);
  for (Ticks i = 0; i < 5; ++i) t.record(TraceEvent{i, TraceKind::Release, 0, 0, 0});
  EXPECT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.dropped(), 2u);
  EXPECT_EQ(t.events()[2].time, 2);
}

TEST(Trace, KindNamesStable) {
  EXPECT_STREQ(to_string(TraceKind::TokenArrival), "TokenArrival");
  EXPECT_STREQ(to_string(TraceKind::CycleEnd), "CycleEnd");
  EXPECT_STREQ(to_string(TraceKind::TthOverrun), "TthOverrun");
}

TEST(Trace, RenderContainsEventsAndDropNote) {
  Trace t(1);
  t.record(TraceEvent{42, TraceKind::CycleEnd, 1, 2, 599});
  t.record(TraceEvent{43, TraceKind::Release, 0, 0, 0});
  const std::string s = t.render();
  EXPECT_NE(s.find("CycleEnd"), std::string::npos);
  EXPECT_NE(s.find("m1"), std::string::npos);
  EXPECT_NE(s.find("detail=599"), std::string::npos);
  EXPECT_NE(s.find("dropped"), std::string::npos);
}

TEST(Trace, RenderUsesStreamNames) {
  Trace t;
  t.record(TraceEvent{1, TraceKind::CycleStart, 0, 1, 300});
  const std::vector<std::vector<std::string>> names{{"alpha", "beta"}};
  EXPECT_NE(t.render(&names).find("beta"), std::string::npos);
}

TEST(Trace, SimulatorEmitsCoherentEventStream) {
  profibus::Network net;
  net.ttr = 100'000;
  profibus::Master m;
  m.high_streams = {
      profibus::MessageStream{.Ch = 300, .D = 50'000, .T = 10'000, .J = 0, .name = ""}};
  net.masters = {m};

  Trace trace;
  SimConfig cfg;
  cfg.net = net;
  cfg.horizon = 50'000;
  cfg.trace = &trace;
  const SimReport r = simulate(cfg);
  ASSERT_FALSE(trace.empty());

  // Coherence: every CycleEnd is preceded by a CycleStart of the same stream;
  // counts match the report; timestamps are non-decreasing.
  std::size_t starts = 0, ends = 0, arrivals = 0;
  Ticks prev = 0;
  int open_cycles = 0;
  for (const TraceEvent& e : trace.events()) {
    EXPECT_GE(e.time, prev);
    prev = e.time;
    switch (e.kind) {
      case TraceKind::CycleStart:
        ++starts;
        ++open_cycles;
        break;
      case TraceKind::CycleEnd:
        ++ends;
        --open_cycles;
        EXPECT_GE(open_cycles, 0);
        break;
      case TraceKind::TokenArrival:
        ++arrivals;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(ends, r.hp[0][0].completed);
  EXPECT_GE(starts, ends);
  EXPECT_EQ(arrivals, r.token[0].visits);
}

TEST(Trace, NullTraceCostsNothingAndChangesNothing) {
  profibus::Network net;
  net.ttr = 10'000;
  profibus::Master m;
  m.high_streams = {
      profibus::MessageStream{.Ch = 300, .D = 5'000, .T = 2'000, .J = 0, .name = ""}};
  net.masters = {m};

  SimConfig cfg;
  cfg.net = net;
  cfg.horizon = 200'000;
  const SimReport without = simulate(cfg);
  Trace trace;
  cfg.trace = &trace;
  const SimReport with = simulate(cfg);
  EXPECT_EQ(without.hp[0][0].max_response, with.hp[0][0].max_response);
  EXPECT_EQ(without.events, with.events);
}

}  // namespace
}  // namespace profisched::sim
