// Unit tests for multi-master interactions in the network simulator: token
// circulation fairness, cross-master isolation of the AP queues, and the
// one-HP-per-visit guarantee under a perpetually late token.
#include <gtest/gtest.h>

#include "sim/network_sim.hpp"

namespace profisched::sim {
namespace {

using profibus::ApPolicy;
using profibus::Master;
using profibus::MessageStream;
using profibus::Network;

MessageStream stream(Ticks ch, Ticks d, Ticks t) {
  return MessageStream{.Ch = ch, .D = d, .T = t, .J = 0, .name = ""};
}

Network ring(std::size_t n, Ticks ttr) {
  Network net;
  net.ttr = ttr;
  for (std::size_t k = 0; k < n; ++k) {
    Master m;
    m.name = "m" + std::to_string(k);
    m.high_streams = {stream(300, 400'000, 20'000)};
    net.masters.push_back(std::move(m));
  }
  return net;
}

TEST(MultiMaster, TokenVisitsEveryMasterEqually) {
  SimConfig cfg;
  cfg.net = ring(4, 50'000);
  cfg.horizon = 1'000'000;
  const SimReport r = simulate(cfg);
  ASSERT_EQ(r.token.size(), 4u);
  const std::uint64_t v0 = r.token[0].visits;
  EXPECT_GT(v0, 100u);
  for (const TokenStats& t : r.token) {
    EXPECT_NEAR(static_cast<double>(t.visits), static_cast<double>(v0), 1.0);
  }
}

TEST(MultiMaster, EveryStreamServedOnEveryMaster) {
  SimConfig cfg;
  cfg.net = ring(5, 50'000);
  cfg.horizon = 1'000'000;
  const SimReport r = simulate(cfg);
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_GT(r.hp[k][0].completed, 40u) << "master " << k;
    EXPECT_EQ(r.hp[k][0].deadline_misses, 0u) << "master " << k;
  }
}

TEST(MultiMaster, ApQueuesAreIsolatedAcrossMasters) {
  // A backlog on master 0 must not reorder or delay master 1's stream beyond
  // the shared token rotation: master 1 keeps completing with small response.
  Network net = ring(2, 200'000);
  for (int i = 0; i < 5; ++i) {
    net.masters[0].high_streams.push_back(stream(300, 400'000, 20'000));
  }
  SimConfig cfg;
  cfg.net = net;
  cfg.policy = ApPolicy::Dm;
  cfg.horizon = 1'000'000;
  const SimReport r = simulate(cfg);
  EXPECT_GT(r.hp[1][0].completed, 40u);
  // Master 1's stream waits at most its own cycle + master 0's whole burst +
  // token passes — far below a rotation-quantized bound.
  EXPECT_LE(r.hp[1][0].max_response, 300 + 6 * 300 + 2 * 70);
}

TEST(MultiMaster, LateTokenStillGuaranteesOneHpPerVisit) {
  // T_TR = 1 makes the token permanently late on a 3-master ring; each master
  // still progresses at one HP cycle per visit (the §3.1 guarantee).
  SimConfig cfg;
  cfg.net = ring(3, 1);
  cfg.horizon = 2'000'000;
  const SimReport r = simulate(cfg);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_GT(r.token[k].late_tokens, 10u) << "master " << k;
    EXPECT_GT(r.hp[k][0].completed, 40u) << "master " << k;
  }
  // Rotation under full backlog: 3 × (one HP cycle + token pass) = 1110;
  // all masters observe the same steady rotation.
  EXPECT_LE(r.token[0].max_trr, 3 * (300 + 70) + 70);
}

TEST(MultiMaster, StaggeredPhasesReduceContention) {
  Network net = ring(3, 20'000);
  SimConfig cfg;
  cfg.net = net;
  cfg.horizon = 1'000'000;
  cfg.hp_traffic = {{TrafficConfig{.phase = 0}},
                    {TrafficConfig{.phase = 7'000}},
                    {TrafficConfig{.phase = 14'000}}};
  const SimReport staggered = simulate(cfg);
  cfg.hp_traffic.clear();  // synchronous
  const SimReport sync = simulate(cfg);
  Ticks worst_staggered = 0, worst_sync = 0;
  for (std::size_t k = 0; k < 3; ++k) {
    worst_staggered = std::max(worst_staggered, staggered.hp[k][0].max_response);
    worst_sync = std::max(worst_sync, sync.hp[k][0].max_response);
  }
  EXPECT_LE(worst_staggered, worst_sync + 70);  // staggering never hurts much
}

}  // namespace
}  // namespace profisched::sim
