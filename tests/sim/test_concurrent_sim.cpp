// Regression for the src/sim re-entrancy audit: the simulator keeps NO hidden
// global state — not in the PRNG (sim::Rng is all instance state, seeded
// deterministically), not in the kernel, not in the dispatchers — so any
// number of NetworkSim instances can run concurrently and each produces
// exactly the trace and report a serial run with the same seed produces.
// This is the property the engine's parallel simulation sweeps stand on.
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/network_sim.hpp"
#include "workload/generators.hpp"

namespace profisched {
namespace {

using profibus::ApPolicy;

/// A randomized config that exercises every RNG consumer the simulator has:
/// jittered + sporadic traffic, sub-worst-case cycle durations, LP load.
sim::SimConfig stochastic_config(std::uint64_t seed) {
  sim::Rng rng(404);
  workload::NetworkParams p;
  p.n_masters = 3;
  p.streams_per_master = 3;
  const workload::GeneratedNetwork g = workload::random_network(p, rng);

  sim::SimConfig cfg;
  cfg.net = g.net;
  cfg.policy = ApPolicy::Edf;
  cfg.horizon = 2'000'000;
  cfg.seed = seed;
  cfg.cycle_model.kind = sim::CycleModel::Kind::UniformFraction;
  cfg.cycle_model.min_fraction = 0.3;
  cfg.collect_histograms = true;
  cfg.hp_traffic.resize(cfg.net.n_masters());
  for (std::size_t k = 0; k < cfg.net.n_masters(); ++k) {
    for (std::size_t i = 0; i < cfg.net.masters[k].nh(); ++i) {
      cfg.hp_traffic[k].push_back(sim::TrafficConfig{
          .phase = static_cast<Ticks>(100 * k + 37 * i),
          .jitter = cfg.net.masters[k].high_streams[i].T / 10,
          .sporadic = (i % 2) == 1,
      });
    }
  }
  cfg.lp_traffic.resize(cfg.net.n_masters());
  for (std::size_t k = 0; k < cfg.net.n_masters(); ++k) {
    cfg.lp_traffic[k].push_back(sim::LpTraffic{
        .period = cfg.net.ttr * 2, .cycle_len = cfg.net.masters[k].longest_low_cycle, .phase = 0});
  }
  return cfg;
}

void expect_identical(const sim::Trace& ta, const sim::SimReport& ra, const sim::Trace& tb,
                      const sim::SimReport& rb) {
  ASSERT_EQ(ta.events().size(), tb.events().size());
  for (std::size_t e = 0; e < ta.events().size(); ++e) {
    const sim::TraceEvent& x = ta.events()[e];
    const sim::TraceEvent& y = tb.events()[e];
    ASSERT_EQ(x.time, y.time) << "event " << e;
    ASSERT_EQ(x.kind, y.kind) << "event " << e;
    ASSERT_EQ(x.master, y.master) << "event " << e;
    ASSERT_EQ(x.stream, y.stream) << "event " << e;
    ASSERT_EQ(x.detail, y.detail) << "event " << e;
  }
  ASSERT_EQ(ra.events, rb.events);
  ASSERT_EQ(ra.lp_cycles_completed, rb.lp_cycles_completed);
  ASSERT_EQ(ra.hp.size(), rb.hp.size());
  for (std::size_t k = 0; k < ra.hp.size(); ++k) {
    for (std::size_t i = 0; i < ra.hp[k].size(); ++i) {
      EXPECT_EQ(ra.hp[k][i].released, rb.hp[k][i].released);
      EXPECT_EQ(ra.hp[k][i].completed, rb.hp[k][i].completed);
      EXPECT_EQ(ra.hp[k][i].max_response, rb.hp[k][i].max_response);
      EXPECT_EQ(ra.hp[k][i].total_response, rb.hp[k][i].total_response);
      EXPECT_EQ(ra.hp[k][i].deadline_misses, rb.hp[k][i].deadline_misses);
    }
    EXPECT_EQ(ra.token[k].visits, rb.token[k].visits);
    EXPECT_EQ(ra.token[k].max_trr, rb.token[k].max_trr);
    EXPECT_EQ(ra.token[k].total_hold, rb.token[k].total_hold);
  }
}

TEST(ConcurrentSim, SameSeedInstancesSteppedConcurrentlyProduceIdenticalTraces) {
  constexpr std::size_t kInstances = 4;  // all same seed, racing on 1+ cores
  std::vector<sim::Trace> traces(kInstances, sim::Trace(1 << 18));
  std::vector<sim::SimReport> reports(kInstances);

  std::vector<std::thread> threads;
  threads.reserve(kInstances);
  for (std::size_t t = 0; t < kInstances; ++t) {
    threads.emplace_back([&, t] {
      sim::SimConfig cfg = stochastic_config(/*seed=*/1234);
      cfg.trace = &traces[t];
      reports[t] = sim::simulate(cfg);
    });
  }
  for (std::thread& th : threads) th.join();

  for (std::size_t t = 1; t < kInstances; ++t) {
    expect_identical(traces[0], reports[0], traces[t], reports[t]);
  }
  // And the concurrent runs match a fully serial one (no cross-instance
  // contamination in either direction).
  sim::Trace serial_trace(1 << 18);
  sim::SimConfig cfg = stochastic_config(1234);
  cfg.trace = &serial_trace;
  const sim::SimReport serial = sim::simulate(cfg);
  expect_identical(traces[0], reports[0], serial_trace, serial);
  EXPECT_GT(serial_trace.events().size(), 100u);  // the property is not vacuous
}

TEST(ConcurrentSim, DifferentSeedsStayIndependentUnderConcurrency) {
  // Two different seeds simulated concurrently must each equal their own
  // serial baseline — a shared RNG would cross the streams.
  sim::SimReport concurrent_a, concurrent_b;
  sim::Trace trace_a(1 << 18), trace_b(1 << 18);
  std::thread ta([&] {
    sim::SimConfig cfg = stochastic_config(7);
    cfg.trace = &trace_a;
    concurrent_a = sim::simulate(cfg);
  });
  std::thread tb([&] {
    sim::SimConfig cfg = stochastic_config(8);
    cfg.trace = &trace_b;
    concurrent_b = sim::simulate(cfg);
  });
  ta.join();
  tb.join();

  sim::Trace base_a(1 << 18), base_b(1 << 18);
  sim::SimConfig cfg_a = stochastic_config(7);
  cfg_a.trace = &base_a;
  const sim::SimReport serial_a = sim::simulate(cfg_a);
  sim::SimConfig cfg_b = stochastic_config(8);
  cfg_b.trace = &base_b;
  const sim::SimReport serial_b = sim::simulate(cfg_b);

  expect_identical(trace_a, concurrent_a, base_a, serial_a);
  expect_identical(trace_b, concurrent_b, base_b, serial_b);
  // Different seeds genuinely diverge (the comparison above is meaningful).
  EXPECT_NE(concurrent_a.events, concurrent_b.events);
}

}  // namespace
}  // namespace profisched
