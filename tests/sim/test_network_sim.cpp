// Unit tests for the discrete-event PROFIBUS network simulator. Scenarios
// are small enough that the exact event timeline is hand-computed in the
// comments (token pass time tp = 3·11 + 37 = 70 with default bus parameters).
#include "sim/network_sim.hpp"

#include <gtest/gtest.h>

namespace profisched::sim {
namespace {

using profibus::ApPolicy;
using profibus::Master;
using profibus::MessageStream;
using profibus::Network;

MessageStream stream(Ticks ch, Ticks d, Ticks t) {
  return MessageStream{.Ch = ch, .D = d, .T = t, .J = 0, .name = ""};
}

Network single_master_net(std::vector<MessageStream> streams, Ticks ttr) {
  Network net;
  net.ttr = ttr;
  Master m;
  m.high_streams = std::move(streams);
  net.masters = {m};
  return net;
}

TEST(NetworkSim, SingleStreamFirstCycleImmediate) {
  SimConfig cfg;
  cfg.net = single_master_net({stream(300, 50'000, 10'000)}, 100'000);
  cfg.policy = ApPolicy::Fcfs;
  cfg.horizon = 95'000;
  const SimReport r = simulate(cfg);
  ASSERT_EQ(r.hp.size(), 1u);
  ASSERT_EQ(r.hp[0].size(), 1u);
  const StreamStats& s = r.hp[0][0];
  // Release at t=0, token arrives at t=0 with the request already queued:
  // the first response is exactly Ch. Later releases may wait out a token
  // pass (70), never more: max response <= Ch + 70.
  EXPECT_GE(s.completed, 9u);
  EXPECT_EQ(s.deadline_misses, 0u);
  EXPECT_LE(s.max_response, 300 + 70);
  EXPECT_GE(s.max_response, 300);
}

TEST(NetworkSim, IdleRingRotatesAtTokenPassTime) {
  Network net;
  net.ttr = 10'000;
  Master a, b;
  a.high_streams = {stream(300, 900'000, 900'000)};
  b.high_streams = {stream(300, 900'000, 900'000)};
  net.masters = {a, b};

  SimConfig cfg;
  cfg.net = net;
  cfg.horizon = 50'000;
  // Push the only releases far past the horizon: the ring stays idle.
  cfg.hp_traffic = {{TrafficConfig{.phase = 800'000}}, {TrafficConfig{.phase = 800'000}}};
  const SimReport r = simulate(cfg);
  // Steady-state rotation = 2 token passes = 140.
  EXPECT_EQ(r.token[0].max_trr, 140);
  EXPECT_EQ(r.token[1].max_trr, 140);
  EXPECT_GT(r.token[0].visits, 300u);
  EXPECT_EQ(r.token[0].late_tokens, 0u);
}

TEST(NetworkSim, DmQueueOvertakesFcfsForTightStream) {
  // Three lax streams release at t=0, the tight one at t=1 (while the first
  // lax cycle occupies the bus). FCFS serves it fourth (completes at 1200);
  // DM promotes it to second (completes at 600).
  const std::vector<MessageStream> streams = {
      stream(300, 90'000, 200'000),  // lax0
      stream(300, 91'000, 200'000),  // lax1
      stream(300, 92'000, 200'000),  // lax2
      stream(300, 1'000, 200'000),   // tight
  };
  SimConfig cfg;
  cfg.net = single_master_net(streams, 100'000);
  cfg.horizon = 150'000;
  cfg.hp_traffic = {{TrafficConfig{.phase = 0}, TrafficConfig{.phase = 0},
                     TrafficConfig{.phase = 0}, TrafficConfig{.phase = 1}}};

  cfg.policy = ApPolicy::Fcfs;
  const SimReport fcfs = simulate(cfg);
  cfg.policy = ApPolicy::Dm;
  const SimReport dm = simulate(cfg);

  EXPECT_EQ(fcfs.hp[0][3].max_response, 1'199);  // 4·300 − 1
  EXPECT_EQ(dm.hp[0][3].max_response, 599);      // 2·300 − 1
  EXPECT_EQ(fcfs.hp[0][3].deadline_misses, 1u);  // 1'199 > 1'000
  EXPECT_EQ(dm.hp[0][3].deadline_misses, 0u);
  // The lax streams pay for it under DM, but only within one cycle's worth.
  EXPECT_GE(dm.hp[0][2].max_response, fcfs.hp[0][2].max_response);
}

TEST(NetworkSim, EdfQueueOrdersByAbsoluteDeadline) {
  // Same release pattern; EDF also promotes the tight stream (abs deadline
  // 1'001 beats 90'000+).
  const std::vector<MessageStream> streams = {
      stream(300, 90'000, 200'000),
      stream(300, 91'000, 200'000),
      stream(300, 1'000, 200'000),
  };
  SimConfig cfg;
  cfg.net = single_master_net(streams, 100'000);
  cfg.horizon = 150'000;
  cfg.hp_traffic = {
      {TrafficConfig{.phase = 0}, TrafficConfig{.phase = 0}, TrafficConfig{.phase = 1}}};
  cfg.policy = ApPolicy::Edf;
  const SimReport r = simulate(cfg);
  EXPECT_EQ(r.hp[0][2].max_response, 599);
}

TEST(NetworkSim, TthOverrunIsCountedOnce) {
  // T_TR = 100 < Ch = 300: the guaranteed HP cycle starts with TTH > 0 (first
  // visit: TRR = 0 → TTH = 100) and finishes past expiry → one overrun.
  SimConfig cfg;
  cfg.net = single_master_net({stream(300, 50'000, 100'000)}, 100);
  cfg.horizon = 5'000;
  const SimReport r = simulate(cfg);
  EXPECT_GE(r.token[0].tth_overruns, 1u);
}

TEST(NetworkSim, LowPriorityStarvesWhenTokenBudgetExhausted) {
  // T_TR = 1: only the very first visit (TRR = 0 → TTH = 1) has budget for a
  // single LP cycle; afterwards TRR >= rotation >> 1, so TTH <= 0 forever.
  Network net;
  net.ttr = 1;
  Master m;
  m.longest_low_cycle = 200;
  net.masters = {m};

  SimConfig cfg;
  cfg.net = net;
  cfg.horizon = 200'000;
  cfg.lp_traffic = {{LpTraffic{.period = 1'000, .cycle_len = 200, .phase = 0}}};
  const SimReport r = simulate(cfg);
  EXPECT_EQ(r.lp_cycles_completed, 1u);
}

TEST(NetworkSim, LowPriorityFlowsWithGenerousBudget) {
  Network net;
  net.ttr = 50'000;
  Master m;
  m.longest_low_cycle = 200;
  net.masters = {m};

  SimConfig cfg;
  cfg.net = net;
  cfg.horizon = 100'000;
  cfg.lp_traffic = {{LpTraffic{.period = 1'000, .cycle_len = 200, .phase = 0}}};
  const SimReport r = simulate(cfg);
  EXPECT_GE(r.lp_cycles_completed, 90u);
}

TEST(NetworkSim, HighPriorityPreemptsLowPriorityPhase) {
  // One guaranteed HP message per visit even with a hopelessly late token:
  // T_TR = 1 starves LP (see above) but HP still progresses.
  SimConfig cfg;
  cfg.net = single_master_net({stream(300, 500'000, 5'000)}, 1);
  cfg.horizon = 100'000;
  const SimReport r = simulate(cfg);
  EXPECT_GE(r.hp[0][0].completed, 15u);
  EXPECT_EQ(r.hp[0][0].deadline_misses, 0u);
  EXPECT_GT(r.token[0].late_tokens, 0u);
}

TEST(NetworkSim, FrameLevelAllFailuresDropAfterRetries) {
  Network net = single_master_net({stream(847, 50'000, 10'000)}, 100'000);
  SimConfig cfg;
  cfg.net = net;
  cfg.horizon = 95'000;
  cfg.cycle_model = CycleModel{.kind = CycleModel::Kind::FrameLevel,
                               .min_fraction = 0.5,
                               .slave_fail_prob = 1.0};
  cfg.frame_specs = {{profibus::MessageCycleSpec{10, 20}}};
  const SimReport r = simulate(cfg);
  EXPECT_EQ(r.hp[0][0].completed, 0u);
  EXPECT_GE(r.hp[0][0].dropped, 9u);
}

TEST(NetworkSim, FrameLevelDurationsNeverExceedWorstCase) {
  const profibus::MessageCycleSpec spec{10, 20};
  Network net;
  net.ttr = 100'000;
  Master m;
  m.high_streams = {stream(profibus::worst_case_cycle_time(net.bus, spec), 50'000, 2'000)};
  net.masters = {m};

  SimConfig cfg;
  cfg.net = net;
  cfg.horizon = 400'000;
  cfg.cycle_model = CycleModel{.kind = CycleModel::Kind::FrameLevel,
                               .min_fraction = 0.5,
                               .slave_fail_prob = 0.3};
  cfg.frame_specs = {{spec}};
  cfg.seed = 99;
  const SimReport r = simulate(cfg);
  // With sub-worst-case durations and a free bus, responses stay within
  // Ch + one token pass.
  EXPECT_GT(r.hp[0][0].completed, 100u);
  EXPECT_LE(r.hp[0][0].max_response, net.masters[0].high_streams[0].Ch + 70);
}

TEST(NetworkSim, DeterministicForSameSeed) {
  SimConfig cfg;
  cfg.net = single_master_net({stream(300, 5'000, 2'000), stream(400, 9'000, 3'000)}, 10'000);
  cfg.horizon = 500'000;
  cfg.policy = ApPolicy::Edf;
  cfg.hp_traffic = {{TrafficConfig{.phase = 0, .jitter = 500, .sporadic = true},
                     TrafficConfig{.phase = 7, .jitter = 300, .sporadic = false}}};
  cfg.seed = 12345;
  const SimReport a = simulate(cfg);
  const SimReport b = simulate(cfg);
  EXPECT_EQ(a.hp[0][0].max_response, b.hp[0][0].max_response);
  EXPECT_EQ(a.hp[0][0].completed, b.hp[0][0].completed);
  EXPECT_EQ(a.hp[0][1].total_response, b.hp[0][1].total_response);
  EXPECT_EQ(a.token[0].max_trr, b.token[0].max_trr);
  EXPECT_EQ(a.events, b.events);
}

TEST(NetworkSim, ConfigValidation) {
  SimConfig cfg;
  cfg.net = single_master_net({stream(300, 5'000, 2'000)}, 10'000);
  cfg.horizon = 0;  // invalid
  EXPECT_THROW((void)simulate(cfg), std::invalid_argument);

  cfg.horizon = 1'000;
  cfg.hp_traffic = {{}, {}};  // wrong master count
  EXPECT_THROW((void)simulate(cfg), std::invalid_argument);

  cfg.hp_traffic.clear();
  cfg.cycle_model.kind = CycleModel::Kind::FrameLevel;  // but no specs
  EXPECT_THROW((void)simulate(cfg), std::invalid_argument);
}

TEST(NetworkSim, UniformFractionStaysWithinBand) {
  SimConfig cfg;
  cfg.net = single_master_net({stream(1'000, 50'000, 2'000)}, 100'000);
  cfg.horizon = 300'000;
  cfg.cycle_model = CycleModel{.kind = CycleModel::Kind::UniformFraction, .min_fraction = 0.5};
  const SimReport r = simulate(cfg);
  ASSERT_GT(r.hp[0][0].completed, 50u);
  EXPECT_LE(r.hp[0][0].max_response, 1'000 + 70);
  // Mean response must sit clearly below the worst case (durations ~ U[500, 1000]).
  EXPECT_LT(r.hp[0][0].mean_response(), 900.0);
}

TEST(NetworkSim, MaxQueueDepthObserved) {
  // Four simultaneous releases: the dispatcher must have held 4 requests.
  const std::vector<MessageStream> streams = {
      stream(300, 90'000, 200'000), stream(300, 90'000, 200'000),
      stream(300, 90'000, 200'000), stream(300, 90'000, 200'000)};
  SimConfig cfg;
  cfg.net = single_master_net(streams, 100'000);
  cfg.horizon = 50'000;
  const SimReport r = simulate(cfg);
  Ticks depth = 0;
  for (const StreamStats& s : r.hp[0]) depth = std::max(depth, s.max_queue_depth_seen);
  EXPECT_EQ(depth, 4);
}

}  // namespace
}  // namespace profisched::sim
