// Unit tests for the reproducible PRNG.
#include "sim/rng.hpp"

#include <gtest/gtest.h>

namespace profisched::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformRespectsInclusiveBound) {
  Rng rng(7);
  bool hit_zero = false, hit_max = false;
  for (int i = 0; i < 20'000; ++i) {
    const Ticks v = rng.uniform(5);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 5);
    hit_zero |= (v == 0);
    hit_max |= (v == 5);
  }
  EXPECT_TRUE(hit_zero);
  EXPECT_TRUE(hit_max);
}

TEST(Rng, UniformZeroBoundIsZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(0), 0);
}

TEST(Rng, UniformRangeForm) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const Ticks v = rng.uniform(10, 20);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 20);
  }
}

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 100'000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 100'000, 0.5, 0.01);  // LLN sanity
}

TEST(Rng, ChanceMatchesProbabilityRoughly) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / 100'000.0, 0.25, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, UniformIsRoughlyUnbiased) {
  Rng rng(19);
  std::array<int, 8> buckets{};
  for (int i = 0; i < 80'000; ++i) buckets[static_cast<std::size_t>(rng.uniform(7))]++;
  for (const int b : buckets) EXPECT_NEAR(b, 10'000, 500);
}

}  // namespace
}  // namespace profisched::sim
